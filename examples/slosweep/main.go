// SLO sweep: trace the accuracy-latency frontier of the three scheduling
// strategies from the paper's Figure 2 — content-agnostic (MinCost),
// content-aware with the detector-shared ResNet50 feature, and
// content-aware with the external MobileNetV2 feature — across latency
// objectives from 30 fps to 10 fps on a simulated TX2.
//
//	go run ./examples/slosweep
package main

import (
	"fmt"
	"log"

	"litereconfig/internal/contend"
	"litereconfig/internal/core"
	"litereconfig/internal/fixture"
	"litereconfig/internal/harness"
	"litereconfig/internal/simlat"
)

func main() {
	log.SetFlags(0)
	log.Println("training scheduler models...")
	set, err := fixture.Small()
	if err != nil {
		log.Fatal(err)
	}

	strategies := []struct {
		name   string
		policy core.Policy
	}{
		{"content-agnostic (MinCost)", core.PolicyMinCost},
		{"content-aware ResNet50", core.PolicyMaxContentResNet},
		{"content-aware MobileNetV2", core.PolicyMaxContentMobileNet},
		{"full cost-benefit (LiteReconfig)", core.PolicyFull},
	}
	slos := []float64{33.3, 40, 50, 66.7, 80, 100}

	fmt.Printf("%-34s", "strategy \\ SLO (ms)")
	for _, s := range slos {
		fmt.Printf(" %9.1f", s)
	}
	fmt.Println()
	for _, st := range strategies {
		fmt.Printf("%-34s", st.name)
		for _, slo := range slos {
			p, err := core.NewPipeline(core.Options{
				Models: set.Models, SLO: slo, Policy: st.policy,
			})
			if err != nil {
				log.Fatal(err)
			}
			res := harness.Evaluate(p, set.Corpus.Val, simlat.TX2, slo,
				contend.Fixed{}, 11)
			cell := fmt.Sprintf("%.1f", res.MAP()*100)
			if !res.MeetsSLO() {
				cell = "F(" + cell + ")"
			}
			fmt.Printf(" %9s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\ncells show mAP%; F(x) marks strategies whose P95 latency violates the SLO.")
	fmt.Println("Note the Figure 2 shape: the cheap detector-shared ResNet50 feature pays off,")
	fmt.Println("while MobileNetV2's 154 ms extraction cost erases its content-awareness gain")
	fmt.Println("at tight objectives; the full cost-benefit scheduler tracks the best of both.")
}
