// Multistream: serve a growing number of concurrent camera streams on
// one simulated board and watch (1) cross-stream contention rise as the
// board fills, (2) SLO attainment degrade, and (3) the Full policy react
// to its neighbors — reconfiguring branches as the coupled contention
// climbs — while the content-agnostic MinCost variant sits on its one
// cheap branch.
//
//	go run ./examples/multistream
package main

import (
	"fmt"
	"log"

	"litereconfig/internal/core"
	"litereconfig/internal/fixture"
	"litereconfig/internal/serve"
	"litereconfig/internal/vid"
)

const (
	slo    = 33.3 // ms per frame (30 fps)
	frames = 100
)

// board serves n streams of the given policy and returns the report.
func board(set *fixture.Setup, n int, policy core.Policy) *serve.Result {
	srv, err := serve.New(serve.Options{Models: set.Models, GPUSlots: 2})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v := vid.Generate(fmt.Sprintf("cam%d", i), 9000+int64(i),
			vid.GenConfig{Frames: frames})
		if _, err := srv.Submit(serve.StreamConfig{
			Name: fmt.Sprintf("cam%d", i), Video: v, SLO: slo,
			Policy: policy, Seed: 50 + int64(i),
		}); err != nil {
			log.Fatal(err)
		}
	}
	return srv.Drain()
}

func main() {
	log.SetFlags(0)
	log.Println("training scheduler models...")
	set, err := fixture.Small()
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: the board fills up. Every stream runs the full
	// LiteReconfig policy; the only contention is the other streams.
	fmt.Printf("\n=== one board, more and more streams (SLO %.1f ms) ===\n", slo)
	fmt.Printf("%8s  %14s  %10s  %10s  %8s\n",
		"streams", "cross-cont", "attain", "violation", "switches")
	for _, n := range []int{1, 2, 4, 8} {
		r := board(set, n, core.PolicyFull)
		violation, switches := 0.0, 0
		for _, st := range r.Streams {
			violation += st.ViolationRate / float64(len(r.Streams))
			switches += st.Switches
		}
		fmt.Printf("%8d  %14.2f  %9.0f%%  %9.1f%%  %8d\n",
			n, r.MeanContention, r.AttainRate*100, violation*100, switches)
	}

	// Part 2: how do the variants steer on a crowded board? Both sense
	// the coupled contention and reconfigure away from blown budgets
	// (cost-awareness), but only the Full policy keeps spending on heavy
	// content features to pick the most accurate branch that still fits.
	fmt.Println("\n=== 8 crowded streams: Full vs MinCost ===")
	for _, p := range []core.Policy{core.PolicyFull, core.PolicyMinCost} {
		r := board(set, 8, p)
		switches, heavy := 0, 0
		mAP := 0.0
		for _, st := range r.Streams {
			switches += st.Switches
			mAP += st.MAP / float64(len(r.Streams))
			for _, n := range st.Raw.FeatureUse {
				heavy += n
			}
		}
		fmt.Printf("%-22s attain=%3.0f%%  mAP=%5.1f%%  switches=%2d  heavy-feature-decisions=%3d\n",
			r.Streams[0].Policy, r.AttainRate*100, mAP*100, switches, heavy)
	}
	fmt.Println("\nBoth variants reconfigure as their neighbors heat the board, but")
	fmt.Println("only Full pays for content features to steer the reconfiguration.")
}
