// Drift: demonstrate the online-drift adaptation of Sec. 6. The
// scheduler's offline latency profile assumes a healthy TX2, but the
// actual board thermally throttles its CPU to 1.8x the profiled cost.
// The CPU-drift estimator senses the gap from observed tracker latencies
// and re-plans; without it the tracker-heavy branches blow through the
// SLO stream-long.
//
//	go run ./examples/drift
package main

import (
	"fmt"
	"log"

	"litereconfig/internal/contend"
	"litereconfig/internal/core"
	"litereconfig/internal/fixture"
	"litereconfig/internal/harness"
	"litereconfig/internal/simlat"
)

const slo = 33.3

func main() {
	log.SetFlags(0)
	log.Println("training scheduler models...")
	set, err := fixture.Small()
	if err != nil {
		log.Fatal(err)
	}

	// The real board: CPU 1.8x slower than the profile (throttling).
	throttled := simlat.TX2
	throttled.Name = "tx2-throttled"
	throttled.CPUFactor = 1.8
	assumed := simlat.TX2 // what the offline profile was measured on

	fmt.Printf("device: TX2 with CPU thermally throttled to 1.8x profiled cost; SLO %.1f ms\n\n", slo)
	for _, mode := range []struct {
		label   string
		disable bool
	}{
		{"with drift estimator (default)", false},
		{"without drift estimator (ablation)", true},
	} {
		p, err := core.NewPipeline(core.Options{
			Models: set.Models, SLO: slo, Policy: core.PolicyFull,
			AssumedDevice:            &assumed,
			DisableDriftCompensation: mode.disable,
		})
		if err != nil {
			log.Fatal(err)
		}
		r := harness.Evaluate(p, set.Corpus.Val, throttled, slo, contend.Fixed{}, 9)
		fmt.Printf("%-36s mAP %.1f%%  p95 %5.1f ms  SLO violations %5.2f%%\n",
			mode.label, r.MAP()*100, r.Latency.P95(),
			r.Latency.ViolationRate(slo)*100)
	}
	fmt.Println("\nThe estimator watches observed-vs-predicted tracker cost each GoF and")
	fmt.Println("scales its CPU latency estimates, steering toward detector-heavier or")
	fmt.Println("shorter-GoF branches that the throttled CPU can still sustain.")
}
