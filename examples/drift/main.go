// Drift: demonstrate the two online-drift mechanisms of Sec. 6. The
// scheduler's offline latency profile assumes a healthy TX2, but the
// actual board thermally throttles its CPU to 1.8x the profiled cost.
// Three ways to face that:
//
//   - the hand-built EWMA drift estimator senses the gap from observed
//     tracker latencies and scales the CPU estimates (the default);
//   - nothing (ablation) — frozen models plan with stale costs and
//     tracker-heavy branches blow through the SLO stream-long;
//   - online refit (package adapt) — with the estimator off, a
//     challenger copy of the models learns the drift into its own
//     coefficients from realized GoF outcomes and is promoted champion
//     once it provably predicts better.
//
// The "pred err" column is the mean |predicted − realized| per-frame
// GoF latency error — the adaptation subsystem's acceptance metric.
//
//	go run ./examples/drift
package main

import (
	"fmt"
	"log"
	"math"

	"litereconfig/internal/adapt"
	"litereconfig/internal/contend"
	"litereconfig/internal/core"
	"litereconfig/internal/fixture"
	"litereconfig/internal/harness"
	"litereconfig/internal/obs"
	"litereconfig/internal/simlat"
)

const slo = 33.3

// meanAbsErr is the mean |predicted − realized| per-frame GoF latency
// over all completed decisions.
func meanAbsErr(ds []obs.Decision) float64 {
	sum, n := 0.0, 0
	for _, d := range ds {
		if d.GoFFrames <= 0 {
			continue
		}
		sum += math.Abs(d.PredLatencyMS - d.RealizedMS)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func main() {
	log.SetFlags(0)
	log.Println("training scheduler models...")
	set, err := fixture.Small()
	if err != nil {
		log.Fatal(err)
	}

	// The real board: CPU 1.8x slower than the profile (throttling).
	throttled := simlat.TX2
	throttled.Name = "tx2-throttled"
	throttled.CPUFactor = 1.8
	assumed := simlat.TX2 // what the offline profile was measured on

	fmt.Printf("device: TX2 with CPU thermally throttled to 1.8x profiled cost; SLO %.1f ms\n\n", slo)
	for _, mode := range []struct {
		label   string
		disable bool
		adapt   *adapt.Config
	}{
		{"drift estimator (default)", false, nil},
		{"frozen models, no estimator (ablation)", true, nil},
		{"online refit, no estimator", true, &adapt.Config{Label: "s0"}},
	} {
		observer := obs.New()
		p, err := core.NewPipeline(core.Options{
			Models: set.Models, SLO: slo, Policy: core.PolicyFull,
			AssumedDevice:            &assumed,
			DisableDriftCompensation: mode.disable,
			Adapt:                    mode.adapt,
			Observer:                 observer.StreamObserver(0, "drift"),
		})
		if err != nil {
			log.Fatal(err)
		}
		r := harness.Evaluate(p, set.Corpus.Val, throttled, slo, contend.Fixed{}, 9)
		line := fmt.Sprintf("%-40s mAP %.1f%%  p95 %5.1f ms  SLO violations %5.2f%%  pred err %.2f ms",
			mode.label, r.MAP()*100, r.Latency.P95(),
			r.Latency.ViolationRate(slo)*100, meanAbsErr(observer.Decisions()))
		if a := p.Sched.Adapter(); a != nil {
			line += fmt.Sprintf("  [%s, %d refits, %d promotions]",
				a.VersionLabel(), a.Refits(), a.Promotions())
		}
		fmt.Println(line)
	}
	fmt.Println("\nThe estimator watches observed-vs-predicted tracker cost each GoF and")
	fmt.Println("scales its CPU latency estimates. Online refit reaches the same place")
	fmt.Println("without the hand-built sensor: it learns the throttle into the latency")
	fmt.Println("model itself (a global CPU-side multiplier plus per-branch corrections)")
	fmt.Println("and swaps the refit models in via champion-challenger promotion.")
}
