// Featurecost: trace the cost-benefit analyzer's decisions — which
// heavy-weight content features the full LiteReconfig scheduler recruits
// at different latency objectives and contention levels, and what they
// cost (Sec. 3.4 of the paper).
//
//	go run ./examples/featurecost
package main

import (
	"fmt"
	"log"
	"sort"

	"litereconfig/internal/contend"
	"litereconfig/internal/core"
	"litereconfig/internal/feat"
	"litereconfig/internal/fixture"
	"litereconfig/internal/harness"
	"litereconfig/internal/simlat"
)

func main() {
	log.SetFlags(0)
	log.Println("training scheduler models...")
	set, err := fixture.Small()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("feature menu (Table 1 costs, TX2 ms):")
	for _, k := range feat.HeavyKinds() {
		s := feat.SpecOf(k)
		shared := ""
		if s.ExtractSharedMS < s.ExtractMS {
			shared = fmt.Sprintf(" (%.1f when shared with the detector)", s.ExtractSharedMS)
		}
		fmt.Printf("  %-12s extract %7.2f%s + predict %5.2f\n",
			k, s.ExtractMS, shared, s.PredictMS)
	}

	fmt.Println("\ncost-benefit decisions per scenario:")
	fmt.Printf("%-28s %-10s %s\n", "scenario", "decisions", "features recruited (count)")
	for _, sc := range []struct {
		slo float64
		g   float64
	}{
		{20, 0}, {33.3, 0}, {50, 0}, {100, 0},
		{33.3, 0.5}, {100, 0.5},
	} {
		p, err := core.NewPipeline(core.Options{
			Models: set.Models, SLO: sc.slo, Policy: core.PolicyFull,
		})
		if err != nil {
			log.Fatal(err)
		}
		harness.Evaluate(p, set.Corpus.Val, simlat.TX2, sc.slo,
			contend.Fixed{G: sc.g}, 5)
		use := p.Sched.FeatureUse()
		var parts []string
		for _, k := range feat.HeavyKinds() {
			if n := use[k]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s(%d)", k, n))
			}
		}
		sort.Strings(parts)
		line := "none (content-agnostic)"
		if len(parts) > 0 {
			line = fmt.Sprint(parts)
		}
		fmt.Printf("SLO %5.1f ms, %2.0f%% contention  %-10d %s\n",
			sc.slo, sc.g*100, p.Sched.Decisions(), line)
	}
	fmt.Println("\nThe analyzer prices each feature's extraction+prediction against its")
	fmt.Println("benefit-table gain: MobileNetV2's 154 ms stall never fits a tight SLO,")
	fmt.Println("while the detector-shared ResNet50 feature is nearly free.")
}
