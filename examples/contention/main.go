// Contention: demonstrate LiteReconfig adapting to GPU contention that
// turns on and off mid-stream, versus a contention-unaware baseline
// (YOLO+) that blows through its latency objective the moment a
// co-located application grabs the GPU.
//
//	go run ./examples/contention
package main

import (
	"fmt"
	"log"

	"litereconfig/internal/baseline"
	"litereconfig/internal/contend"
	"litereconfig/internal/core"
	"litereconfig/internal/detect"
	"litereconfig/internal/fixture"
	"litereconfig/internal/harness"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

const slo = 50.0 // ms per frame (20 fps)

func main() {
	log.SetFlags(0)
	log.Println("training scheduler models...")
	set, err := fixture.Small()
	if err != nil {
		log.Fatal(err)
	}

	// Background load: quiet for 120 frames, then a co-located app takes
	// 50% of the GPU for 120 frames, repeating.
	cg := contend.Phased{Phases: []contend.Phase{
		{Frames: 120, G: 0},
		{Frames: 120, G: 0.5},
	}}

	videos := make([]*vid.Video, 4)
	for i := range videos {
		videos[i] = vid.Generate(fmt.Sprintf("cam%d", i), 7000+int64(i),
			vid.GenConfig{Frames: 240})
	}

	lr, err := core.NewPipeline(core.Options{
		Models: set.Models, SLO: slo, Policy: core.PolicyFull,
	})
	if err != nil {
		log.Fatal(err)
	}
	yolo := baseline.NewEnhanced("YOLO+", detect.YOLOv3, slo, simlat.TX2,
		set.Corpus.DetTrain)

	fmt.Printf("SLO: %.0f ms per frame; contention: 0%% <-> 50%% every 120 frames\n\n", slo)
	for _, p := range []harness.Protocol{lr, yolo} {
		res := harness.Evaluate(p, videos, simlat.TX2, slo, cg, 99)
		status := "meets SLO"
		if !res.MeetsSLO() {
			status = "VIOLATES SLO"
		}
		fmt.Printf("%-14s mAP %.1f%%  p95 %6.1f ms  violations %5.2f%%  switches %3d  -> %s\n",
			p.Name(), res.MAP()*100, res.Latency.P95(),
			res.Latency.ViolationRate(slo)*100, res.Switches, status)
	}

	// Show LiteReconfig's reaction frame by frame around a phase change.
	fmt.Println("\nLiteReconfig per-frame latency around the contention onset (frames 110-135):")
	lr2, _ := core.NewPipeline(core.Options{
		Models: set.Models, SLO: slo, Policy: core.PolicyFull,
	})
	res := harness.Evaluate(lr2, videos[:1], simlat.TX2, slo, cg, 99)
	samples := res.Latency.Samples()
	for f := 110; f < 135 && f < len(samples); f++ {
		bar := ""
		for i := 0.0; i < samples[f]; i += 2 {
			bar += "#"
		}
		fmt.Printf("  frame %3d  %6.1f ms  %s\n", f, samples[f], bar)
	}
}
