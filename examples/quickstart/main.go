// Quickstart: build a LiteReconfig system, stream one synthetic video
// through it under a 30 fps latency objective on a simulated Jetson TX2,
// and print what the scheduler decided and what the detector saw.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"litereconfig/internal/contend"
	"litereconfig/internal/core"
	"litereconfig/internal/fixture"
	"litereconfig/internal/harness"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

func main() {
	log.SetFlags(0)

	// 1. Offline phase: train the scheduler's predictors. fixture.Small
	// generates a compact corpus and trains in a couple of seconds; use
	// cmd/lrtrain for the full pipeline.
	log.Println("training scheduler models (offline phase)...")
	set, err := fixture.Small()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build the full LiteReconfig pipeline: cost-benefit feature
	// selection + content-aware accuracy prediction + switching-cost
	// aware branch optimization, targeting 33.3 ms per frame (30 fps).
	pipeline, err := core.NewPipeline(core.Options{
		Models: set.Models,
		SLO:    33.3,
		Policy: core.PolicyFull,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. A fresh streaming video the system has never seen.
	video := vid.Generate("quickstart", 424242, vid.GenConfig{Frames: 240})
	fmt.Printf("video: %d frames, %d objects in frame 0, content %q (speed %.1f px/frame)\n",
		video.Len(), len(video.Frames[0].Objects), video.Profile.Archetype, video.Profile.Speed)

	// 4. Run it on a simulated TX2 with no GPU contention.
	res := harness.Evaluate(pipeline, []*vid.Video{video},
		simlat.TX2, 33.3, contend.Fixed{G: 0}, 1)

	// 5. Inspect the outcome.
	fmt.Printf("\n%s\n", res.Summary())
	fmt.Printf("SLO violation rate: %.2f%% (target < 5%%)\n",
		res.Latency.ViolationRate(33.3)*100)
	fmt.Printf("distinct branches used: %d, switches: %d\n",
		res.BranchCoverage, res.Switches)
	fmt.Printf("content features consulted: %v\n", res.FeatureUse)

	fmt.Println("\nfirst-frame detections:")
	for _, d := range res.Frames[0].Dets {
		fmt.Printf("  %-12s score %.2f at %v\n", d.Class, d.Score, d.Box)
	}
	fmt.Println("\nper-component latency:", res.Breakdown)
}
