package litereconfig

import (
	"fmt"

	"litereconfig/internal/core"
	"litereconfig/internal/serve"
	"litereconfig/internal/simlat"
)

// ServerConfig configures a multi-stream serving engine.
type ServerConfig struct {
	// Device is the simulated board shared by all streams. Default TX2.
	Device Device
	// GPUSlots bounds how many streams execute simultaneously; foreign
	// occupancy is normalized by it. Default 2.
	GPUSlots int
	// MaxOccupancy is the admission threshold on aggregate GPU
	// occupancy. Default 2 x GPUSlots.
	MaxOccupancy float64
	// Coupling scales the other streams' occupancy into a stream's
	// contention level. Default 0.5.
	Coupling float64
	// QueueLimit bounds the admission queue; submissions beyond it are
	// rejected with an error (backpressure). Default 16.
	QueueLimit int
	// RoundMS is the simulated length of one board round. Default 200.
	RoundMS float64
	// Faults, when set, injects the configured deterministic fault
	// schedule into every served stream (override per stream with
	// StreamOptions.Faults) and engages graceful degradation: the
	// scheduler's watchdog and circuit breaker, plus the engine's
	// per-stream health machine (healthy → degraded → quarantined) with
	// panic containment and bounded round retry.
	Faults *FaultConfig
	// RetryLimit is how many recovered worker panics one stream may
	// accumulate before quarantine. Zero means the default (2); negative
	// means quarantine on the first panic.
	RetryLimit int
	// StallRounds quarantines a stream after this many consecutive
	// rounds with zero frame progress. Zero means the default (10).
	StallRounds int
	// Observer, when set, records engine metrics (per-round occupancy,
	// queue depth, admissions, rejections, per-stream contention) and the
	// scheduler decision trace of every served stream. Recording is
	// passive: an observed run takes the same decisions as an unobserved
	// one. Read it after Drain via MetricsText / WriteTrace.
	Observer *Observer
	// Adapt, when set, turns on online model adaptation for every served
	// stream: each stream refits a challenger copy of its cloned models
	// from its own realized GoF outcomes, and promoted champions are
	// committed to a board-wide versioned registry. Nil means frozen
	// models.
	Adapt *AdaptConfig
	// ReplayTrace enriches every recorded decision with the scheduler's
	// full input set for offline counterfactual replay (lrreplay /
	// internal replay engine). Requires Observer; off by default.
	ReplayTrace bool
}

// Server multiplexes concurrent video streams over one simulated board,
// coupling each stream's GPU contention to the other streams' measured
// occupancy. Build with NewServer, feed with Submit, finish with Drain.
type Server struct {
	srv *serve.Server
}

// NewServer builds a multi-stream serving engine from trained models.
func NewServer(models *Models, cfg ServerConfig) (*Server, error) {
	if models == nil {
		return nil, fmt.Errorf("litereconfig: models are required")
	}
	opts := serve.Options{
		Models:       models.m,
		GPUSlots:     cfg.GPUSlots,
		MaxOccupancy: cfg.MaxOccupancy,
		Coupling:     cfg.Coupling,
		QueueLimit:   cfg.QueueLimit,
		RoundMS:      cfg.RoundMS,
		Faults:       cfg.Faults.inner(),
		RetryLimit:   cfg.RetryLimit,
		StallRounds:  cfg.StallRounds,
		Observer:     cfg.Observer.inner(),
		Adapt:        cfg.Adapt.inner(),
		ReplayTrace:  cfg.ReplayTrace,
	}
	if cfg.Device != "" {
		dev, ok := simlat.DeviceByName(string(cfg.Device))
		if !ok {
			return nil, fmt.Errorf("litereconfig: unknown device %q", cfg.Device)
		}
		opts.Device = dev
	}
	srv, err := serve.New(opts)
	if err != nil {
		return nil, err
	}
	return &Server{srv: srv}, nil
}

// StreamOptions describes one stream submitted to a Server.
type StreamOptions struct {
	// Name labels the stream in reports. Default "stream-<id>".
	Name string
	// SLO is the stream's per-frame latency objective in simulated
	// milliseconds. Required.
	SLO float64
	// Class groups streams for aggregate SLO attainment (e.g. "gold").
	// Default: derived from the SLO.
	Class string
	// Policy is the scheduler variant. Default Full.
	Policy Policy
	// Seed fixes the stream's stochastic realization.
	Seed int64
	// BaseContention is a contention floor external to the served
	// streams (e.g. a co-located non-video workload).
	BaseContention float64
	// ContentionTrace replays a recorded per-frame external contention
	// floor instead of the constant BaseContention; frames past the end
	// of the trace hold its last level.
	ContentionTrace []float64
	// Faults overrides the server-wide fault schedule for this stream.
	Faults *FaultConfig
}

// StreamHandle identifies a submitted stream; after Drain it exposes the
// stream's report.
type StreamHandle struct {
	h *serve.Stream
}

// ID returns the stream's server-assigned id (submission order).
func (h *StreamHandle) ID() int { return h.h.ID() }

// Name returns the stream's label.
func (h *StreamHandle) Name() string { return h.h.Name() }

// Report returns the stream's report, or an error before the server has
// drained the stream to completion.
func (h *StreamHandle) Report() (*StreamReport, error) {
	r := h.h.Result()
	if r == nil {
		return nil, fmt.Errorf("litereconfig: stream %q not finished (call Drain first)", h.Name())
	}
	rep := streamReport(r)
	return &rep, nil
}

// Submit queues one video stream for service. It returns an error when
// the admission queue is full (backpressure), when the server is
// draining, or when the options are invalid.
func (s *Server) Submit(v *Video, opts StreamOptions) (*StreamHandle, error) {
	if v == nil {
		return nil, fmt.Errorf("litereconfig: no video")
	}
	policy, err := corePolicy(opts.Policy)
	if err != nil {
		return nil, err
	}
	h, err := s.srv.Submit(serve.StreamConfig{
		Name:            opts.Name,
		Video:           v.v,
		SLO:             opts.SLO,
		Class:           opts.Class,
		Policy:          policy,
		Seed:            opts.Seed,
		BaseContention:  opts.BaseContention,
		ContentionTrace: opts.ContentionTrace,
		Faults:          opts.Faults.inner(),
	})
	if err != nil {
		return nil, err
	}
	return &StreamHandle{h: h}, nil
}

// Drain stops intake, serves every admitted and queued stream to
// completion, shuts the worker pool down, and returns the report. It is
// idempotent.
func (s *Server) Drain() (*ServerReport, error) {
	return serverReport(s.srv.Drain()), nil
}

// serverReport converts an internal drain result to the public type.
func serverReport(res *serve.Result) *ServerReport {
	rep := &ServerReport{
		Rejected:       res.Rejected,
		Quarantined:    res.Quarantined,
		Panics:         res.Panics,
		Rounds:         res.Rounds,
		AttainRate:     res.AttainRate,
		MeanContention: res.MeanContention,
		TotalFrames:    res.TotalFrames,
		Promotions:     res.Promotions,
		Demotions:      res.Demotions,
		Refits:         res.Refits,
	}
	for _, sr := range res.Streams {
		rep.Streams = append(rep.Streams, streamReport(&sr))
	}
	for _, c := range res.Classes {
		rep.Classes = append(rep.Classes, ClassReport{
			Class:         c.Class,
			Streams:       c.Streams,
			Attained:      c.Attained,
			AttainRate:    c.AttainRate,
			ViolationRate: c.ViolationRate,
			MeanMAP:       c.MeanMAP,
		})
	}
	return rep
}

// StreamReport is one stream's outcome: the usual per-stream Report plus
// the serving-specific coupling metrics.
type StreamReport struct {
	ID     int
	Name   string
	Class  string
	SLO    float64
	Policy string
	Frames int
	Report
	// MeanContention is the average cross-stream contention level the
	// board applied to this stream.
	MeanContention float64
	// MeanOccupancy is the fraction of the stream's timeline spent in
	// GPU work.
	MeanOccupancy float64
	// Rounds the stream ran; WaitRounds it spent queued for admission.
	Rounds     int
	WaitRounds int
	// Health is the stream's final health state ("healthy", "degraded",
	// "quarantined"); Panics counts recovered worker panics. A
	// Quarantined stream was retired before completing its video
	// (QuarantineReason says why) and never counts as attaining its SLO.
	Health           string
	Panics           int
	Quarantined      bool
	QuarantineReason string
	// Board names the board that served (and retired) the stream; empty
	// for single-board servers. Migrations counts fleet-level board
	// hand-offs the stream went through.
	Board      string
	Migrations int
	// Adapt summarizes the stream's online-adaptation activity (zero
	// when ServerConfig.Adapt is nil).
	Adapt AdaptReport
}

// ClassReport aggregates SLO attainment over one class of streams.
type ClassReport struct {
	Class         string
	Streams       int
	Attained      int
	AttainRate    float64
	ViolationRate float64
	MeanMAP       float64
}

// ServerReport is the aggregate outcome of Server.Drain.
type ServerReport struct {
	// Streams holds per-stream reports in submission order.
	Streams []StreamReport
	// Classes holds per-class SLO attainment, sorted by class name.
	Classes []ClassReport
	// Rejected counts submissions refused by backpressure.
	Rejected int
	// Quarantined counts streams retired before completion; Panics
	// counts recovered worker panics across all streams.
	Quarantined int
	Panics      int
	// Rounds is the number of board rounds the drain ran.
	Rounds int
	// AttainRate is the overall fraction of streams meeting their SLO.
	AttainRate float64
	// MeanContention is the average cross-stream contention the board
	// generated — zero only when streams never overlapped.
	MeanContention float64
	TotalFrames    int
	// Promotions, Demotions and Refits sum online-adaptation activity
	// across all streams (zero when ServerConfig.Adapt is nil).
	Promotions int
	Demotions  int
	Refits     int
}

// streamReport converts an internal stream row to the public type.
func streamReport(r *serve.StreamResult) StreamReport {
	rep := StreamReport{
		ID:     r.ID,
		Name:   r.Name,
		Class:  r.Class,
		SLO:    r.SLO,
		Policy: r.Policy,
		Frames: r.Frames,
		Report: Report{
			MAP:            r.MAP,
			MeanMS:         r.MeanMS,
			P95MS:          r.P95MS,
			MeetsSLO:       r.MeetsSLO,
			ViolationRate:  r.ViolationRate,
			BranchCoverage: r.BranchCoverage,
			Switches:       r.Switches,
			FeatureUse:     map[string]int{},
		},
		MeanContention:   r.MeanContention,
		MeanOccupancy:    r.MeanOccupancy,
		Rounds:           r.Rounds,
		WaitRounds:       r.WaitRounds,
		Health:           r.Health,
		Panics:           r.Panics,
		Quarantined:      r.Quarantined,
		QuarantineReason: r.QuarantineReason,
		Board:            r.Board,
		Migrations:       r.Migrations,
		Adapt: AdaptReport{
			ModelVersion: r.ModelVersion,
			Promotions:   r.Promotions,
			Demotions:    r.Demotions,
			Refits:       r.Refits,
		},
	}
	if r.Raw != nil {
		for k, n := range r.Raw.FeatureUse {
			rep.FeatureUse[k.String()] = n
		}
		rep.Breakdown = breakdownMap(r.Raw.Breakdown)
	}
	return rep
}

// corePolicy maps the public Policy to the scheduler variant.
func corePolicy(p Policy) (core.Policy, error) {
	switch p {
	case "", Full:
		return core.PolicyFull, nil
	case MinCost:
		return core.PolicyMinCost, nil
	case MaxContentResNet:
		return core.PolicyMaxContentResNet, nil
	case MaxContentMobileNet:
		return core.PolicyMaxContentMobileNet, nil
	}
	return 0, fmt.Errorf("litereconfig: unknown policy %q", p)
}
