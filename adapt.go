package litereconfig

import (
	"litereconfig/internal/adapt"
)

// AdaptConfig enables online model adaptation: the scheduler shadows
// every decision, refits a challenger copy of its models from realized
// Group-of-Frames outcomes (recursive-least-squares latency
// coefficients, per-branch bias, a global CPU-side multiplier, accuracy
// recalibration, observed switch costs), and swaps the challenger in as
// champion — only at a GoF barrier, and only once it has provably
// predicted better for a sustained window (champion–challenger
// rollout). A regressing champion is rolled back the same way. The
// zero value of every field means its default; pass &AdaptConfig{} for
// the stock tuning.
type AdaptConfig struct {
	// WarmupSamples is how many GoF outcomes the adapter only watches
	// before refitting (the contention/drift sensors are still
	// converging). Default 4.
	WarmupSamples int
	// MinSamples is how many shadow-scored outcomes a challenger needs
	// before it may be promoted. Default 12.
	MinSamples int
	// PromoteWindow is the promotion hysteresis: the challenger must
	// beat the champion's shadow error by Margin (relative, default
	// 0.08) for this many consecutive GoF barriers. Default 4.
	PromoteWindow int
	Margin        float64
	// DemoteWindow and DemoteMargin govern rollback of a promoted
	// champion whose shadow error regresses. Defaults 8 and 0.3.
	DemoteWindow int
	DemoteMargin float64
}

// inner converts to the internal config, nil-safe.
func (a *AdaptConfig) inner() *adapt.Config {
	if a == nil {
		return nil
	}
	return &adapt.Config{
		WarmupSamples: a.WarmupSamples,
		MinSamples:    a.MinSamples,
		PromoteWindow: a.PromoteWindow,
		Margin:        a.Margin,
		DemoteWindow:  a.DemoteWindow,
		DemoteMargin:  a.DemoteMargin,
	}
}

// AdaptReport summarizes one stream's (or system's) online-adaptation
// activity. All zero when adaptation is off.
type AdaptReport struct {
	// ModelVersion is the registry label of the final champion ("v0"
	// until the first promotion).
	ModelVersion string
	// Promotions, Demotions and Refits count rollout actions and
	// challenger updates.
	Promotions int
	Demotions  int
	Refits     int
}
