// Package litereconfig is a cost- and content-aware reconfiguration
// system for video object detection under latency objectives, a
// reproduction of "LiteReconfig: Cost and Content Aware Reconfiguration
// of Video Object Detection Systems for Mobile GPUs" (EuroSys 2022).
//
// The system pairs a multi-branch execution kernel — a Faster R-CNN
// detector plus four object trackers, with knobs for input shape,
// proposal count, tracker type, Group-of-Frames size and tracker
// downsampling — with a scheduler that, at every GoF boundary, performs a
// cost-benefit analysis to pick which content features to extract, runs
// content-aware accuracy predictors, and solves a switching-cost-aware
// constrained optimization to select the execution branch that maximizes
// accuracy within the latency SLO.
//
// Hardware, CNNs and the video dataset are simulated (see DESIGN.md):
// all latencies are deterministic simulated milliseconds on Jetson
// TX2/AGX Xavier device profiles.
//
// Basic use:
//
//	models, _ := litereconfig.TrainModels(litereconfig.TrainOptions{})
//	sys, _ := litereconfig.NewSystem(models, litereconfig.Config{
//		SLO: 33.3, Device: litereconfig.TX2,
//	})
//	video := litereconfig.GenerateVideo(42, 240)
//	report, _ := sys.ProcessVideo(video)
//	fmt.Printf("mAP %.1f%% at P95 %.1f ms\n", report.MAP*100, report.P95MS)
//
// For serving many concurrent streams on one board — with each stream's
// GPU contention derived from the other streams' measured occupancy —
// see NewServer / Server.Submit / Server.Drain.
package litereconfig

import (
	"fmt"
	"io"

	"litereconfig/internal/contend"
	"litereconfig/internal/core"
	"litereconfig/internal/fault"
	"litereconfig/internal/fixture"
	"litereconfig/internal/harness"
	"litereconfig/internal/metric"
	"litereconfig/internal/obs"
	"litereconfig/internal/sched"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

// Device selects the simulated mobile-GPU board.
type Device string

// The two boards of the paper's evaluation.
const (
	TX2    Device = "tx2"
	Xavier Device = "xv"
)

// Policy selects the scheduler variant.
type Policy string

// Scheduler variants (Sec. 4 of the paper).
const (
	// Full is the complete LiteReconfig: cost-benefit feature selection
	// plus switching-cost-aware optimization. The default.
	Full Policy = "full"
	// MinCost is the content-agnostic variant (light features only).
	MinCost Policy = "mincost"
	// MaxContentResNet always uses the detector-shared ResNet50 feature.
	MaxContentResNet Policy = "maxcontent-resnet"
	// MaxContentMobileNet always uses the external MobileNetV2 feature.
	MaxContentMobileNet Policy = "maxcontent-mobilenet"
)

// TrainOptions sizes the offline training phase.
type TrainOptions struct {
	// Videos is the number of scheduler-training videos. Default 24.
	Videos int
	// FramesPerVideo is each training video's length. Default 240.
	FramesPerVideo int
	// Seed drives corpus generation and training. Default 7.
	Seed int64
	// BranchSpace is "small" (20 branches), "medium" (300, default) or
	// "full" (528).
	BranchSpace string
}

// Models is the trained scheduler bundle: accuracy predictors, latency
// regressions, benefit table, switching-cost model.
type Models struct{ m *sched.Models }

// TrainModels runs the offline phase: generates the corpus, measures
// every branch on the training snippets, and trains the predictors.
func TrainModels(opts TrainOptions) (*Models, error) {
	if opts.Videos == 0 {
		opts.Videos = 24
	}
	if opts.FramesPerVideo == 0 {
		opts.FramesPerVideo = 240
	}
	if opts.Seed == 0 {
		opts.Seed = 7
	}
	cfg := sched.Config{Seed: opts.Seed, ProjDim: 24, Hidden: []int{48}}
	switch opts.BranchSpace {
	case "", "medium":
		cfg.Branches = fixture.MediumBranches()
	case "small":
		cfg.Branches = fixture.SmallBranches()
	case "full":
		// nil means mbek.DefaultBranches via applyDefaults.
	default:
		return nil, fmt.Errorf("litereconfig: unknown branch space %q", opts.BranchSpace)
	}
	videos := make([]*vid.Video, opts.Videos)
	for i := range videos {
		videos[i] = vid.Generate(fmt.Sprintf("train_%03d", i),
			opts.Seed+100000+int64(i), vid.GenConfig{Frames: opts.FramesPerVideo})
	}
	ds := sched.Collect(cfg, videos)
	m, err := sched.Train(cfg, ds)
	if err != nil {
		return nil, err
	}
	return &Models{m: m}, nil
}

// Save writes the models in gob format.
func (m *Models) Save(w io.Writer) error { return m.m.Save(w) }

// LoadModels reads models written by Save.
func LoadModels(r io.Reader) (*Models, error) {
	inner, err := sched.Load(r)
	if err != nil {
		return nil, err
	}
	return &Models{m: inner}, nil
}

// Branches returns the number of execution branches the models cover.
func (m *Models) Branches() int { return len(m.m.Branches) }

// Observer collects run telemetry: a metrics registry (counters,
// gauges, latency histograms) and a structured trace of every scheduler
// decision taken at a Group-of-Frames boundary — selected features,
// cost-benefit verdict, chosen branch, predicted versus realized GoF
// latency, switch cost, SLO-feasible branch count. Recording is passive
// and timestamped by the simulated clock, so an observed run takes
// exactly the same decisions as an unobserved one, and fixed-seed runs
// write byte-identical traces.
//
// One Observer may be shared by a System or a Server; it is safe for
// concurrent use.
type Observer struct{ o *obs.Observer }

// NewObserver builds an empty observer.
func NewObserver() *Observer { return &Observer{o: obs.New()} }

// inner returns the internal sink, nil-safe.
func (ob *Observer) inner() *obs.Observer {
	if ob == nil {
		return nil
	}
	return ob.o
}

// MetricsText renders a point-in-time snapshot of the metrics registry
// in Prometheus exposition format.
func (ob *Observer) MetricsText() string { return ob.inner().Snapshot().Text() }

// WriteTrace writes the scheduler decision trace as JSON Lines, one
// decision per line, ordered by (stream, decision sequence).
func (ob *Observer) WriteTrace(w io.Writer) error { return ob.inner().WriteTrace(w) }

// Decisions returns the number of scheduler decisions recorded so far.
func (ob *Observer) Decisions() int { return len(ob.inner().Decisions()) }

// FaultConfig is a deterministic, rate-driven fault-injection schedule
// for chaos testing: every rate is a per-opportunity probability (per
// GoF boundary for spikes, stalls and worker panics; per extraction for
// feature failures; per frame for contention-burst starts), and every
// draw is keyed by (seed, class, frame), so a fixed seed yields the same
// fault schedule — and byte-identical decision traces — on every run.
// Graceful degradation (the scheduler's latency watchdog and
// heavy-feature circuit breaker, and the serving engine's per-stream
// health machine) engages automatically whenever faults are configured.
type FaultConfig struct {
	// Seed drives every draw; each stream mixes in its own seed.
	Seed int64
	// SpikeRate injects latency spikes of SpikeMS (default 40 ms) at GoF
	// boundaries.
	SpikeRate float64
	SpikeMS   float64
	// ExtractFailRate fails heavy-feature extractions (cost still paid).
	ExtractFailRate float64
	// BurstRate starts contention bursts of BurstLevel (default 0.4)
	// lasting BurstFrames frames (default 30).
	BurstRate   float64
	BurstLevel  float64
	BurstFrames int
	// StallRate freezes the stream for StallMS (default 250 ms) at GoF
	// boundaries.
	StallRate float64
	StallMS   float64
	// PanicRate panics the worker goroutine running the stream's round;
	// the serving engine contains the panic, retries the round a bounded
	// number of times, then quarantines the stream. (Single-video
	// System runs ignore PanicRate: there is no worker pool to crash.)
	PanicRate float64
}

// ParseFaultSpec parses the -faults command-line grammar: comma-separated
// key=value pairs over the keys seed, spike, spike_ms, extract, burst,
// burst_level, burst_frames, stall, stall_ms, panic. Example:
//
//	spike=0.05,extract=0.1,stall=0.01,seed=42
func ParseFaultSpec(spec string) (*FaultConfig, error) {
	c, err := fault.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return &FaultConfig{
		Seed: c.Seed, SpikeRate: c.SpikeRate, SpikeMS: c.SpikeMS,
		ExtractFailRate: c.ExtractFailRate,
		BurstRate:       c.BurstRate, BurstLevel: c.BurstLevel, BurstFrames: c.BurstFrames,
		StallRate: c.StallRate, StallMS: c.StallMS,
		PanicRate: c.PanicRate,
	}, nil
}

// inner converts to the internal config, nil-safe.
func (f *FaultConfig) inner() *fault.Config {
	if f == nil {
		return nil
	}
	return &fault.Config{
		Seed: f.Seed, SpikeRate: f.SpikeRate, SpikeMS: f.SpikeMS,
		ExtractFailRate: f.ExtractFailRate,
		BurstRate:       f.BurstRate, BurstLevel: f.BurstLevel, BurstFrames: f.BurstFrames,
		StallRate: f.StallRate, StallMS: f.StallMS,
		PanicRate: f.PanicRate,
	}
}

// Config configures a runtime System.
type Config struct {
	// SLO is the per-frame latency objective in (simulated) milliseconds.
	SLO float64
	// Device is the simulated board. Default TX2.
	Device Device
	// Policy is the scheduler variant. Default Full.
	Policy Policy
	// GPUContention is the fixed background GPU contention level in
	// [0, 0.99] (the paper evaluates 0 and 0.5).
	GPUContention float64
	// Seed fixes the run's stochastic realization. Default 1.
	Seed int64
	// Faults, when set, injects the configured deterministic fault
	// schedule into every ProcessVideo run and engages graceful
	// degradation (watchdog branch ladder + heavy-feature circuit
	// breaker).
	Faults *FaultConfig
	// Observer, when set, records metrics and the scheduler decision
	// trace for every ProcessVideo run.
	Observer *Observer
	// Adapt, when set, closes the loop from realized GoF outcomes back
	// to the scheduler's predictors: online refit with champion–
	// challenger rollout (see AdaptConfig). Nil means frozen models.
	Adapt *AdaptConfig
	// ReplayTrace enriches every recorded decision with the scheduler's
	// full input set for offline counterfactual replay (the lrreplay
	// tool / internal replay engine). Requires Observer; off by default
	// — with the flag off, traces are byte-identical to older builds.
	ReplayTrace bool
}

// System is a configured LiteReconfig pipeline ready to process videos.
type System struct {
	pipeline *core.Pipeline
	dev      simlat.Device
	cfg      Config
}

// NewSystem builds a runtime system from trained models.
func NewSystem(models *Models, cfg Config) (*System, error) {
	if models == nil {
		return nil, fmt.Errorf("litereconfig: models are required")
	}
	if cfg.Device == "" {
		cfg.Device = TX2
	}
	dev, ok := simlat.DeviceByName(string(cfg.Device))
	if !ok {
		return nil, fmt.Errorf("litereconfig: unknown device %q", cfg.Device)
	}
	policy, err := corePolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	p, err := core.NewPipeline(core.Options{
		Models: models.m, SLO: cfg.SLO, Policy: policy,
		Faults:      cfg.Faults.inner(),
		Observer:    cfg.Observer.inner().StreamObserver(0, "system"),
		Adapt:       cfg.Adapt.inner(),
		ReplayTrace: cfg.ReplayTrace,
	})
	if err != nil {
		return nil, err
	}
	p.FaultSeed = cfg.Seed
	return &System{pipeline: p, dev: dev, cfg: cfg}, nil
}

// Video is a synthetic annotated video clip.
type Video struct{ v *vid.Video }

// GenerateVideo creates a deterministic synthetic video with the given
// seed and frame count.
func GenerateVideo(seed int64, frames int) *Video {
	return &Video{v: vid.Generate(fmt.Sprintf("video_%d", seed), seed,
		vid.GenConfig{Frames: frames})}
}

// Frames returns the video length.
func (v *Video) Frames() int { return v.v.Len() }

// Report summarizes one processed stream.
type Report struct {
	// MAP is the mean average precision at IoU 0.5 over all frames.
	MAP float64
	// MeanMS and P95MS are the per-frame latency statistics in simulated
	// milliseconds (averaged per Group-of-Frames, as in the paper).
	MeanMS float64
	P95MS  float64
	// MeetsSLO reports whether the P95 latency stayed within the SLO.
	MeetsSLO bool
	// ViolationRate is the fraction of frames over the SLO.
	ViolationRate float64
	// BranchCoverage is the number of distinct execution branches used.
	BranchCoverage int
	// Switches is the number of branch reconfigurations.
	Switches int
	// FeatureUse counts scheduler decisions per content feature name.
	FeatureUse map[string]int
	// Breakdown is the mean per-frame latency (simulated ms) of each
	// system component ("detector", "tracker", "scheduler", "switch", …),
	// the Figure 3 decomposition.
	Breakdown map[string]float64
	// WatchdogOverruns counts realized GoFs that blew the SLO while
	// graceful degradation was active; BreakerOpens counts heavy-feature
	// circuit-breaker trips. Both are zero for unfaulted runs.
	WatchdogOverruns int
	BreakerOpens     int
	// Adapt summarizes the run's online-adaptation activity (zero when
	// Config.Adapt is nil).
	Adapt AdaptReport
}

// ProcessVideo streams one or more videos through the system and returns
// the aggregate report. Each call is an independent run (fresh clock and
// kernel state).
func (s *System) ProcessVideo(videos ...*Video) (*Report, error) {
	if len(videos) == 0 {
		return nil, fmt.Errorf("litereconfig: no videos")
	}
	inner := make([]*vid.Video, len(videos))
	for i, v := range videos {
		inner[i] = v.v
	}
	res := harness.Evaluate(s.pipeline, inner, s.dev, s.cfg.SLO,
		contend.Fixed{G: s.cfg.GPUContention}, s.cfg.Seed)
	rep := &Report{
		MAP:            res.MAP(),
		MeanMS:         res.Latency.Mean(),
		P95MS:          res.Latency.P95(),
		MeetsSLO:       res.MeetsSLO(),
		ViolationRate:  res.Latency.ViolationRate(s.cfg.SLO),
		BranchCoverage: res.BranchCoverage,
		Switches:       res.Switches,
		FeatureUse:     map[string]int{},
	}
	for k, n := range res.FeatureUse {
		rep.FeatureUse[k.String()] = n
	}
	rep.Breakdown = breakdownMap(res.Breakdown)
	rep.WatchdogOverruns = s.pipeline.Sched.Overruns()
	rep.BreakerOpens = s.pipeline.Sched.BreakerOpens()
	if a := s.pipeline.Sched.Adapter(); a != nil {
		rep.Adapt = AdaptReport{
			ModelVersion: a.VersionLabel(),
			Promotions:   a.Promotions(),
			Demotions:    a.Demotions(),
			Refits:       a.Refits(),
		}
	}
	return rep, nil
}

// breakdownMap flattens a component breakdown into per-frame means.
func breakdownMap(b *metric.Breakdown) map[string]float64 {
	out := map[string]float64{}
	if b == nil {
		return out
	}
	for _, c := range b.Components() {
		out[c] = b.PerFrame(c)
	}
	return out
}
