package litereconfig

import (
	"bytes"
	"strings"
	"testing"
)

func TestFleetPublicAPI(t *testing.T) {
	models := apiFixture(t)

	if _, err := NewFleet(nil, FleetConfig{Boards: []BoardSpec{{}}}); err == nil {
		t.Fatal("nil models must error")
	}
	if _, err := NewFleet(models, FleetConfig{
		Boards: []BoardSpec{{Name: "b0", Device: "nope"}}}); err == nil {
		t.Fatal("unknown board device must error")
	}

	specs, err := ParseBoardFaultSpecs("spike=0.01;b1:panic=0.3,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	if BoardFaultConfig(specs, "b1").PanicRate != 0.3 {
		t.Fatalf("b1 spec not scoped: %+v", specs)
	}
	if BoardFaultConfig(specs, "b0").SpikeRate != 0.01 {
		t.Fatalf("fleet-wide default not applied to b0: %+v", specs)
	}

	obsv := NewObserver()
	fl, err := NewFleet(models, FleetConfig{
		Boards:   []BoardSpec{{Name: "b0"}, {Name: "b1", Device: Xavier}},
		Observer: obsv,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Submit(nil, StreamOptions{SLO: 50}); err == nil {
		t.Fatal("nil video must error")
	}
	for i := 0; i < 4; i++ {
		if _, err := fl.Submit(GenerateVideo(int64(i), 40), StreamOptions{
			SLO: 100, Seed: int64(i) + 1, Class: "gold",
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := fl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Streams) != 4 || rep.Placed != 4 {
		t.Fatalf("streams=%d placed=%d, want 4/4", len(rep.Streams), rep.Placed)
	}
	if len(rep.Boards) != 2 {
		t.Fatalf("boards = %d, want 2", len(rep.Boards))
	}
	for _, row := range rep.Streams {
		if row.Board != "b0" && row.Board != "b1" {
			t.Fatalf("stream %s has no board label: %+v", row.Name, row)
		}
		if row.Frames != 40 {
			t.Fatalf("stream %s frames = %d, want 40", row.Name, row.Frames)
		}
	}
	for _, b := range rep.Boards {
		if b.Report == nil {
			t.Fatalf("board %s missing its drain report", b.Name)
		}
	}
	if !strings.Contains(rep.Summary(), "fleet:") {
		t.Fatalf("summary missing fleet line:\n%s", rep.Summary())
	}
	var buf bytes.Buffer
	if err := rep.WriteFleetTrace(&buf); err != nil || buf.Len() == 0 {
		t.Fatalf("fleet trace: err=%v len=%d", err, buf.Len())
	}
	if !strings.Contains(obsv.MetricsText(), "fleet_placements_total 4") {
		t.Fatal("fleet metrics missing from the shared registry")
	}
}
