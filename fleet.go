package litereconfig

import (
	"fmt"
	"io"

	"litereconfig/internal/fault"
	"litereconfig/internal/fleet"
	"litereconfig/internal/serve"
	"litereconfig/internal/simlat"
)

// BoardSpec describes one board of a fleet: a simulated device running
// its own serving engine. Zero fields take the serving engine's
// defaults (see ServerConfig).
type BoardSpec struct {
	// Name labels the board in reports, metrics and traces. Default
	// "board-<index>".
	Name string
	// Device is the board's hardware profile. Default TX2.
	Device Device
	// GPUSlots, MaxOccupancy, Coupling, QueueLimit, RoundMS, RetryLimit
	// and StallRounds configure the board's serving engine exactly like
	// the same ServerConfig fields.
	GPUSlots     int
	MaxOccupancy float64
	Coupling     float64
	QueueLimit   int
	RoundMS      float64
	RetryLimit   int
	StallRounds  int
	// Faults is the board-scoped fault environment: every stream served
	// by this board inherits it unless the stream carries its own fault
	// config. A stream migrated to another board sheds this board's
	// faults and inherits the destination's.
	Faults *FaultConfig
}

// FleetConfig configures a multi-board fleet dispatcher.
type FleetConfig struct {
	// Boards describes the fleet's boards. At least one is required.
	Boards []BoardSpec
	// QueueLimit bounds the fleet-wide admission queue; submissions
	// beyond it are rejected with an error (backpressure). Default 64.
	QueueLimit int
	// BoardPanicLimit quarantines a board once its recovered worker
	// panics reach this count, evacuating its streams to the surviving
	// boards. Default 3.
	BoardPanicLimit int
	// Hysteresis is how many consecutive fleet barriers a stream's SLO
	// must look infeasible on its board before the fleet migrates it.
	// Default 2.
	Hysteresis int
	// CloneMS is the model-clone share of the migration hand-off cost in
	// device milliseconds; the detector warm-up share comes from the
	// switching-cost model. Default 25.
	CloneMS float64
	// MaxMigrations caps per-stream board hand-offs. Default 3.
	MaxMigrations int
	// SafetyFactor shrinks SLOs to planning budgets for placement and
	// migration scoring. Default 0.88.
	SafetyFactor float64
	// DisableMigration turns off live migration (both SLO-driven and
	// board-quarantine evacuation) — the ablation baseline.
	DisableMigration bool
	// Observer, when set, records every board's metrics and decision
	// traces (board-labeled) plus the fleet's own placement/migration
	// trace. Read it after Run via the FleetReport accessors.
	Observer *Observer
	// Adapt, when set, turns on online model adaptation on every board:
	// each board gets its own versioned registry, and every stream refits
	// a challenger from its realized GoF outcomes (champion–challenger
	// rollout; see AdaptConfig). Nil means frozen models fleet-wide.
	Adapt *AdaptConfig
	// AdaptStagger stages the rollout board by board: only the first
	// board starts with promotions enabled, and each subsequent board's
	// gate opens once the previous board's registry records a promotion.
	// Refitting and shadow scoring run everywhere regardless — the gate
	// only holds back champion swaps.
	AdaptStagger bool
	// ReplayTrace enriches every board's recorded decisions with the
	// scheduler input payload for offline counterfactual replay
	// (lrreplay / internal replay engine). Requires Observer; off by
	// default.
	ReplayTrace bool
}

// Fleet dispatches video streams over several simulated boards,
// placing each stream where the scheduler's predicted best feasible
// branch maximizes accuracy under the stream's SLO, and live-migrating
// streams off boards that fail or become too contended. Build with
// NewFleet, feed with Submit, finish with Run.
type Fleet struct {
	f *fleet.Fleet
}

// NewFleet builds a fleet dispatcher from trained models.
func NewFleet(models *Models, cfg FleetConfig) (*Fleet, error) {
	if models == nil {
		return nil, fmt.Errorf("litereconfig: models are required")
	}
	opts := fleet.Options{
		Models:           models.m,
		QueueLimit:       cfg.QueueLimit,
		BoardPanicLimit:  cfg.BoardPanicLimit,
		Hysteresis:       cfg.Hysteresis,
		CloneMS:          cfg.CloneMS,
		MaxMigrations:    cfg.MaxMigrations,
		SafetyFactor:     cfg.SafetyFactor,
		DisableMigration: cfg.DisableMigration,
		Observer:         cfg.Observer.inner(),
		Adapt:            cfg.Adapt.inner(),
		AdaptStagger:     cfg.AdaptStagger,
		ReplayTrace:      cfg.ReplayTrace,
	}
	for _, bs := range cfg.Boards {
		bc := fleet.BoardConfig{
			Name:         bs.Name,
			GPUSlots:     bs.GPUSlots,
			MaxOccupancy: bs.MaxOccupancy,
			Coupling:     bs.Coupling,
			QueueLimit:   bs.QueueLimit,
			RoundMS:      bs.RoundMS,
			RetryLimit:   bs.RetryLimit,
			StallRounds:  bs.StallRounds,
			Faults:       bs.Faults.inner(),
		}
		if bs.Device != "" {
			dev, ok := simlat.DeviceByName(string(bs.Device))
			if !ok {
				return nil, fmt.Errorf("litereconfig: board %q: unknown device %q", bs.Name, bs.Device)
			}
			bc.Device = dev
		}
		opts.Boards = append(opts.Boards, bc)
	}
	f, err := fleet.New(opts)
	if err != nil {
		return nil, err
	}
	return &Fleet{f: f}, nil
}

// Submit enqueues one stream for fleet placement and returns its
// fleet-assigned id. It returns an error when the fleet queue is full
// (backpressure), when the fleet is already running, or when the
// options are invalid.
func (f *Fleet) Submit(v *Video, opts StreamOptions) (int, error) {
	if v == nil {
		return 0, fmt.Errorf("litereconfig: no video")
	}
	policy, err := corePolicy(opts.Policy)
	if err != nil {
		return 0, err
	}
	return f.f.Submit(serve.StreamConfig{
		Name:            opts.Name,
		Video:           v.v,
		SLO:             opts.SLO,
		Class:           opts.Class,
		Policy:          policy,
		Seed:            opts.Seed,
		BaseContention:  opts.BaseContention,
		ContentionTrace: opts.ContentionTrace,
		Faults:          opts.Faults.inner(),
	})
}

// Run drives the fleet to completion — placing queued streams, stepping
// every board in lockstep barriers, migrating streams off quarantined
// or SLO-infeasible boards — and returns the merged report. It may be
// called once.
func (f *Fleet) Run() (*FleetReport, error) {
	r := f.f.Run()
	rep := &FleetReport{
		Rejected:    r.Rejected,
		Placed:      r.Placed,
		Migrations:  r.Migrations,
		Retired:     r.Retired,
		Quarantined: r.Quarantined,
		Panics:      r.Panics,
		Barriers:    r.Barriers,
		AttainRate:  r.AttainRate,
		Promotions:  r.Promotions,
		Demotions:   r.Demotions,
		Refits:      r.Refits,
		AdaptBoards: r.AdaptBoards,
		r:           r,
	}
	for i := range r.Boards {
		b := &r.Boards[i]
		rep.Boards = append(rep.Boards, BoardReport{
			Name:        b.Name,
			Quarantined: b.Quarantined,
			Rounds:      b.Rounds,
			Panics:      b.Panics,
			Report:      serverReport(b.Result),
		})
	}
	for i := range r.Streams {
		rep.Streams = append(rep.Streams, streamReport(&r.Streams[i]))
	}
	return rep, nil
}

// BoardReport is one board's slice of the fleet report.
type BoardReport struct {
	Name string
	// Quarantined marks a board the fleet took out of rotation after too
	// many worker panics.
	Quarantined bool
	// Rounds the board ran; Panics its recovered worker panics.
	Rounds int
	Panics int
	// Report is the board's own drain report.
	Report *ServerReport
}

// FleetReport is the aggregate outcome of Fleet.Run.
type FleetReport struct {
	// Boards holds per-board reports in board order.
	Boards []BoardReport
	// Streams holds every stream's row, merged across boards and sorted
	// by fleet id. A migrated stream appears once, reported by the board
	// that finished it — its Board and Migrations fields tell the story.
	Streams []StreamReport
	// Rejected counts fleet-level backpressure rejections. Placed,
	// Migrations and Retired count placement actions: initial
	// placements, live board hand-offs, and streams retired because no
	// board could take them.
	Rejected   int
	Placed     int
	Migrations int
	Retired    int
	// Quarantined counts streams that ended quarantined; Panics sums
	// recovered worker panics fleet-wide.
	Quarantined int
	Panics      int
	// Barriers is how many fleet barriers the run took.
	Barriers int
	// AttainRate is the fleet-wide fraction of streams that completed
	// within their SLO.
	AttainRate float64
	// Promotions, Demotions and Refits sum online-adaptation activity
	// fleet-wide; AdaptBoards is how many boards ended with their rollout
	// gate open (all zero when FleetConfig.Adapt is nil).
	Promotions  int
	Demotions   int
	Refits      int
	AdaptBoards int

	r *fleet.Report
}

// Summary renders the fleet report as text: the fleet line, then each
// board with its own summary indented beneath it.
func (r *FleetReport) Summary() string { return r.r.Summary() }

// WriteFleetTrace writes the fleet placement/migration trace as JSON
// Lines. Fixed-seed runs write byte-identical fleet traces.
func (r *FleetReport) WriteFleetTrace(w io.Writer) error { return r.r.WriteFleetTrace(w) }

// WriteTrace writes the merged scheduler decision trace as JSON Lines.
func (r *FleetReport) WriteTrace(w io.Writer) error { return r.r.WriteTrace(w) }

// ParseBoardFaultSpecs parses the board-scoped fault grammar used by
// lrfleet's -faults flag: semicolon-separated entries, each either a
// bare ParseFaultSpec spec (the fleet-wide default, keyed "*") or
// "<board>:<spec>" scoping a schedule to one named board. Example:
//
//	spike=0.01;b1:panic=0.2,stall=0.1
func ParseBoardFaultSpecs(spec string) (map[string]*FaultConfig, error) {
	m, err := fault.ParseBoardSpecs(spec)
	if err != nil {
		return nil, err
	}
	out := map[string]*FaultConfig{}
	for board, c := range m {
		out[board] = &FaultConfig{
			Seed: c.Seed, SpikeRate: c.SpikeRate, SpikeMS: c.SpikeMS,
			ExtractFailRate: c.ExtractFailRate,
			BurstRate:       c.BurstRate, BurstLevel: c.BurstLevel, BurstFrames: c.BurstFrames,
			StallRate: c.StallRate, StallMS: c.StallMS,
			PanicRate: c.PanicRate,
		}
	}
	return out, nil
}

// BoardFaultConfig resolves one board's schedule from a
// ParseBoardFaultSpecs map: the board's own entry if present, else the
// "*" fleet-wide default, else nil.
func BoardFaultConfig(specs map[string]*FaultConfig, board string) *FaultConfig {
	if c, ok := specs[board]; ok {
		return c
	}
	return specs["*"]
}
