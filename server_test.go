package litereconfig

import (
	"testing"
)

func TestServerValidation(t *testing.T) {
	if _, err := NewServer(nil, ServerConfig{}); err == nil {
		t.Fatal("missing models must error")
	}
	models := apiFixture(t)
	if _, err := NewServer(models, ServerConfig{Device: "npu9000"}); err == nil {
		t.Fatal("unknown device must error")
	}
	srv, err := NewServer(models, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(nil, StreamOptions{SLO: 33}); err == nil {
		t.Fatal("nil video must error")
	}
	if _, err := srv.Submit(GenerateVideo(1, 20), StreamOptions{SLO: 33,
		Policy: "bogus"}); err == nil {
		t.Fatal("unknown policy must error")
	}
	if _, err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestServerMultiStream(t *testing.T) {
	models := apiFixture(t)
	srv, err := NewServer(models, ServerConfig{GPUSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	var handles []*StreamHandle
	for i := 0; i < 4; i++ {
		opts := StreamOptions{SLO: 33.3, Class: "gold", Seed: int64(i) + 1}
		if i%2 == 1 {
			opts = StreamOptions{SLO: 90, Class: "silver", Policy: MinCost,
				Seed: int64(i) + 1}
		}
		h, err := srv.Submit(GenerateVideo(700+int64(i), 60), opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Report(); err == nil {
			t.Fatal("report before drain must error")
		}
		handles = append(handles, h)
	}
	rep, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Streams) != 4 || rep.TotalFrames != 240 {
		t.Fatalf("streams=%d frames=%d", len(rep.Streams), rep.TotalFrames)
	}
	if rep.MeanContention <= 0 {
		t.Fatal("co-located streams must contend")
	}
	if len(rep.Classes) != 2 || rep.Classes[0].Class != "gold" ||
		rep.Classes[1].Class != "silver" {
		t.Fatalf("classes = %+v", rep.Classes)
	}
	for i, h := range handles {
		sr, err := h.Report()
		if err != nil {
			t.Fatal(err)
		}
		if sr.ID != i || sr.Frames != 60 {
			t.Fatalf("handle %d report: %+v", i, sr)
		}
		if sr.MAP <= 0 || sr.MAP > 1 {
			t.Fatalf("stream %d mAP = %v", i, sr.MAP)
		}
		if len(sr.Breakdown) == 0 || sr.Breakdown["detector"] <= 0 {
			t.Fatalf("stream %d missing breakdown: %+v", i, sr.Breakdown)
		}
	}
	// Submissions after drain are refused.
	if _, err := srv.Submit(GenerateVideo(99, 20), StreamOptions{SLO: 50}); err == nil {
		t.Fatal("submit after drain must error")
	}
}

func TestPublicAdaptWiring(t *testing.T) {
	// AdaptConfig must thread through every public entry point: the
	// single-system facade, the serving engine, and the fleet.
	models := apiFixture(t)

	sys, err := NewSystem(models, Config{SLO: 33.3, Adapt: &AdaptConfig{WarmupSamples: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.ProcessVideo(GenerateVideo(4242, 60))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Adapt.ModelVersion == "" || rep.Adapt.Refits == 0 {
		t.Fatalf("system report carries no adapt state: %+v", rep.Adapt)
	}

	srv, err := NewServer(models, ServerConfig{GPUSlots: 2,
		Adapt: &AdaptConfig{WarmupSamples: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := srv.Submit(GenerateVideo(800+int64(i), 60),
			StreamOptions{SLO: 50, Seed: int64(i) + 1}); err != nil {
			t.Fatal(err)
		}
	}
	srep, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if srep.Refits == 0 {
		t.Fatal("adapted server report counts no refits")
	}
	rowRefits := 0
	for _, sr := range srep.Streams {
		if sr.Adapt.ModelVersion == "" {
			t.Fatalf("stream %s has no model version", sr.Name)
		}
		rowRefits += sr.Adapt.Refits
	}
	if rowRefits != srep.Refits {
		t.Fatalf("server refits %d != row sum %d", srep.Refits, rowRefits)
	}

	fl, err := NewFleet(models, FleetConfig{
		Boards: []BoardSpec{{Name: "b0"}, {Name: "b1"}},
		Adapt:  &AdaptConfig{WarmupSamples: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := fl.Submit(GenerateVideo(900+int64(i), 60),
			StreamOptions{SLO: 50, Seed: int64(i) + 1}); err != nil {
			t.Fatal(err)
		}
	}
	frep, err := fl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if frep.Refits == 0 {
		t.Fatal("adapted fleet report counts no refits")
	}
	if frep.AdaptBoards != 2 {
		t.Fatalf("unstaggered fleet adapt boards = %d, want 2", frep.AdaptBoards)
	}
}

func TestReportExposesBreakdown(t *testing.T) {
	models := apiFixture(t)
	sys, err := NewSystem(models, Config{SLO: 33.3})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.ProcessVideo(GenerateVideo(4242, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Breakdown) == 0 {
		t.Fatal("breakdown missing from public report")
	}
	if rep.Breakdown["detector"] <= 0 || rep.Breakdown["scheduler"] <= 0 {
		t.Fatalf("breakdown components missing: %+v", rep.Breakdown)
	}
	sum := 0.0
	for _, ms := range rep.Breakdown {
		sum += ms
	}
	// The per-component means must add up to about the per-frame mean.
	if sum <= 0 || sum > rep.MeanMS*1.5 || sum < rep.MeanMS*0.5 {
		t.Fatalf("breakdown sum %.2f inconsistent with mean %.2f", sum, rep.MeanMS)
	}
}
