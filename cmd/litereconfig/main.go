// Command litereconfig mirrors the paper artifact's LiteReconfig.py: it
// runs one protocol on one simulated device under a latency SLO and a
// GPU contention level, over the validation corpus, and writes per-frame
// detection and latency logs plus a summary.
//
// Usage (mirroring the artifact's flags):
//
//	litereconfig --gl 0 --lat_req 33.3 --mobile_device tx2 \
//	             --protocol LiteReconfig --models models.gob \
//	             --output test/executor_LiteReconfig.txt
//
// Protocols: LiteReconfig, MinCost, MaxContent_ResNet,
// MaxContent_MobileNet, ApproxDet, SSD, YOLO.
//
// For the scheduler-driven protocols, -trace <file> writes every
// scheduler decision as JSON Lines and -metrics prints the run's metrics
// registry in Prometheus exposition format. -faults injects a seeded
// deterministic fault schedule (e.g. -faults spike=0.05,extract=0.1)
// and engages the scheduler's graceful-degradation machinery.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"litereconfig/internal/contend"
	"litereconfig/internal/core"
	"litereconfig/internal/fault"
	"litereconfig/internal/fixture"
	"litereconfig/internal/harness"
	"litereconfig/internal/obs"
	"litereconfig/internal/report"
	"litereconfig/internal/sched"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

// protocolName maps the artifact-style protocol flag to the report
// package's canonical protocol names.
func protocolName(flag string) (string, error) {
	switch strings.ToLower(flag) {
	case "litereconfig":
		return "LiteReconfig", nil
	case "mincost", "litereconfig-mincost":
		return "LiteReconfig-MinCost", nil
	case "maxcontent_resnet", "smartadapt_rpn":
		return "LiteReconfig-MaxContent-ResNet", nil
	case "maxcontent_mobilenet", "smartadapt_mobilenet":
		return "LiteReconfig-MaxContent-MobileNet", nil
	case "approxdet":
		return "ApproxDet", nil
	case "ssd", "ssd+":
		return "SSD+", nil
	case "yolo", "yolo+":
		return "YOLO+", nil
	}
	return "", fmt.Errorf("unknown protocol %q", flag)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("litereconfig: ")

	gl := flag.Float64("gl", 0, "GPU contention level in percent (0-99)")
	latReq := flag.Float64("lat_req", 33.3, "latency SLO in ms per frame")
	device := flag.String("mobile_device", "tx2", "device: tx2 or xv")
	protoFlag := flag.String("protocol", "LiteReconfig", "protocol to run")
	modelFile := flag.String("models", "", "trained model file from lrtrain (trains a small model set if empty)")
	output := flag.String("output", "", "output file prefix; writes <prefix>_det.txt and <prefix>_lat.txt")
	valVideos := flag.Int("val_videos", 20, "validation videos")
	frames := flag.Int("frames", 240, "frames per validation video")
	seed := flag.Int64("seed", 7, "corpus seed")
	traceFile := flag.String("trace", "", "write the scheduler decision trace (JSON Lines) to this file")
	metrics := flag.Bool("metrics", false, "print the metrics registry (Prometheus exposition format) after the run")
	faults := flag.String("faults", "", "fault-injection spec, e.g. spike=0.05,extract=0.1,burst=0.02,stall=0.01 (empty = no faults)")
	flag.Parse()

	dev, ok := simlat.DeviceByName(*device)
	if !ok {
		log.Fatalf("unknown device %q (want tx2 or xv)", *device)
	}
	name, err := protocolName(*protoFlag)
	if err != nil {
		log.Fatal(err)
	}

	// Models: load from file or train a compact set on the fly.
	var models *sched.Models
	if *modelFile != "" {
		models, err = sched.LoadFile(*modelFile)
		if err != nil {
			log.Fatalf("load models: %v", err)
		}
		log.Printf("loaded %s (%d branches)", *modelFile, len(models.Branches))
	} else {
		log.Printf("no --models given; training a compact model set (use lrtrain for the full pipeline)")
		set, err := fixture.Small()
		if err != nil {
			log.Fatalf("training failed: %v", err)
		}
		models = set.Models
	}

	// Validation corpus (disjoint seed range from training, Sec. 5.2).
	val := make([]*vid.Video, *valVideos)
	for i := range val {
		val[i] = vid.Generate(fmt.Sprintf("val_%03d", i),
			*seed+200000+int64(i), vid.GenConfig{Frames: *frames})
	}

	// Protocol setup via the shared experiment builder. SSD+/YOLO+ need
	// offline profiling videos.
	setup := &fixture.Setup{Models: models, Corpus: &vid.Corpus{Val: val}}
	setup.Corpus.DetTrain = make([]*vid.Video, 8)
	for i := range setup.Corpus.DetTrain {
		setup.Corpus.DetTrain[i] = vid.Generate(fmt.Sprintf("prof_%03d", i),
			*seed+int64(i), vid.GenConfig{Frames: *frames})
	}
	sc := report.Scenario{Device: dev, Contention: *gl / 100, SLO: *latReq}
	p, err := report.BuildProtocol(setup, name, sc)
	if err != nil {
		log.Fatal(err)
	}

	if *faults != "" {
		fc, err := fault.ParseSpec(*faults)
		if err != nil {
			log.Fatalf("bad --faults: %v", err)
		}
		if fc.Seed == 0 {
			fc.Seed = *seed
		}
		pl, ok := p.(*core.Pipeline)
		if !ok {
			log.Fatalf("protocol %s has no scheduler; --faults requires a scheduler-driven protocol", name)
		}
		pl.Faults = fc
		pl.FaultSeed = *seed
		log.Printf("fault injection on: %s (seed %d)", *faults, *seed)
	}

	var observer *obs.Observer
	if *traceFile != "" || *metrics {
		observer = obs.New()
		if pl, ok := p.(*core.Pipeline); ok {
			pl.SetObserver(observer.StreamObserver(0, name))
		} else {
			log.Printf("protocol %s has no scheduler decisions; trace will be empty", name)
		}
	}

	log.Printf("running %s on %s, SLO %.1f ms, %.0f%% GPU contention, %d videos",
		name, dev.Name, *latReq, *gl, len(val))
	res := harness.Evaluate(p, val, dev, *latReq, contend.Fixed{G: *gl / 100}, 1234)

	fmt.Println(res.Summary())
	fmt.Printf("violation rate: %.2f%% | mean %.2f ms | P95 %.2f ms | branches used: %d | switches: %d\n",
		res.Latency.ViolationRate(*latReq)*100, res.Latency.Mean(),
		res.Latency.P95(), res.BranchCoverage, res.Switches)
	if len(res.FeatureUse) > 0 {
		fmt.Printf("content features used: %v over %d frames\n", res.FeatureUse, res.Breakdown.Frames())
	}
	if *faults != "" {
		if pl, ok := p.(*core.Pipeline); ok {
			fmt.Printf("degradation: watchdog overruns %d | breaker opens %d | degrade level %d\n",
				pl.Sched.Overruns(), pl.Sched.BreakerOpens(), pl.Sched.DegradeLevel())
		}
	}

	if *output != "" {
		if err := writeLogs(*output, res); err != nil {
			log.Fatal(err)
		}
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		if err := observer.WriteTrace(f); err != nil {
			log.Fatalf("trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("trace: %v", err)
		}
		log.Printf("wrote %d decisions to %s", len(observer.Decisions()), *traceFile)
	}
	if *metrics {
		fmt.Println()
		fmt.Print(observer.Snapshot().Text())
	}
}

// writeLogs emits the artifact-style per-frame detection and latency
// files.
func writeLogs(prefix string, res *harness.Result) error {
	base := strings.TrimSuffix(prefix, filepath.Ext(prefix))
	if dir := filepath.Dir(base); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	det, err := os.Create(base + "_det.txt")
	if err != nil {
		return err
	}
	defer det.Close()
	for fi, fr := range res.Frames {
		for _, d := range fr.Dets {
			fmt.Fprintf(det, "%d %s %.3f %.1f %.1f %.1f %.1f\n",
				fi, d.Class, d.Score, d.Box.X, d.Box.Y, d.Box.MaxX(), d.Box.MaxY())
		}
	}
	lat, err := os.Create(base + "_lat.txt")
	if err != nil {
		return err
	}
	defer lat.Close()
	for i, v := range res.Latency.Samples() {
		fmt.Fprintf(lat, "%d %.4f\n", i, v)
	}
	log.Printf("wrote %s_det.txt and %s_lat.txt", base, base)
	return det.Close()
}
