package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"litereconfig/internal/harness"
	"litereconfig/internal/metric"
	"litereconfig/internal/vid"
)

func TestProtocolNameMapping(t *testing.T) {
	cases := map[string]string{
		"LiteReconfig":         "LiteReconfig",
		"litereconfig":         "LiteReconfig",
		"MinCost":              "LiteReconfig-MinCost",
		"MaxContent_ResNet":    "LiteReconfig-MaxContent-ResNet",
		"SmartAdapt_RPN":       "LiteReconfig-MaxContent-ResNet", // artifact alias
		"MaxContent_MobileNet": "LiteReconfig-MaxContent-MobileNet",
		"ApproxDet":            "ApproxDet",
		"SSD":                  "SSD+",
		"yolo+":                "YOLO+",
	}
	for in, want := range cases {
		got, err := protocolName(in)
		if err != nil || got != want {
			t.Errorf("protocolName(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := protocolName("selsa"); err == nil {
		t.Error("unsupported protocol should error")
	}
}

func TestWriteLogs(t *testing.T) {
	dir := t.TempDir()
	v := vid.Generate("v", 1, vid.GenConfig{Frames: 3})
	res := &harness.Result{}
	for _, f := range v.Frames {
		res.Frames = append(res.Frames, metric.FrameResult{
			Truth: f.Objects,
			Dets: []metric.Detection{{Class: vid.Car,
				Box: f.Objects[0].Box, Score: 0.9}},
		})
		res.Latency.Add(12.5)
	}
	prefix := filepath.Join(dir, "sub", "executor_test.txt")
	if err := writeLogs(prefix, res); err != nil {
		t.Fatal(err)
	}
	det, err := os.ReadFile(filepath.Join(dir, "sub", "executor_test_det.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(det), "\n"); lines != 3 {
		t.Fatalf("det lines = %d, want 3", lines)
	}
	if !strings.Contains(string(det), "car") {
		t.Fatalf("det log missing class name:\n%s", det)
	}
	lat, err := os.ReadFile(filepath.Join(dir, "sub", "executor_test_lat.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(lat), "\n"); lines != 3 {
		t.Fatalf("lat lines = %d, want 3", lines)
	}
	if !strings.Contains(string(lat), "12.5") {
		t.Fatalf("lat log missing sample:\n%s", lat)
	}
}
