// Command lrload runs a named open-world workload scenario against the
// fleet: seeded open-loop arrivals (constant, diurnal or flash-crowd
// rate curves, heavy-tailed session lengths) stamped with tenant and
// SLO tier, served under weighted-fair admission with tier preemption —
// or the FIFO ablation — and reports per-tier SLO attainment and tail
// latency.
//
// Usage:
//
//	lrload -scenario flashcrowd -scale small -out BENCH_workload.json
//	lrload -scenario flashcrowd -no_wfq          # FIFO ablation
//	lrload -scenario flashcrowd -compare         # both, plus the delta
//	lrload -scenario flashcrowd -bench_risk -out BENCH_risk.json
//	                                             # risk vs mean admission
//
// Scenarios: diurnal (day/night rate curve), flashcrowd (steady trickle
// plus one intense burst), heavytail (flat rate, elephant-and-mice
// session lengths). Scales: small (CI smoke), medium, large.
//
// The default policy is WFQ admission with tier preemption: gold
// (weight 4) outranks silver (2) outranks best-effort (1), and a board
// evicts best-effort streams when a higher tier's SLO is infeasible
// under its occupancy. -no_wfq reverts to the single FIFO queue with no
// preemption — the closed-loop engine's behavior — and -compare runs
// both on the same arrival schedule and emits the gold-tier attainment
// delta.
//
// Observability: -trace and -fleet_trace write the scheduler decision
// and fleet workload traces (JSON Lines, byte-identical across runs for
// a fixed seed — arrivals, departures and preemptions included);
// -metrics dumps the per-tier/per-tenant labeled metrics registry.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"litereconfig/internal/fixture"
	"litereconfig/internal/fleet"
	"litereconfig/internal/metric"
	"litereconfig/internal/obs"
	"litereconfig/internal/sched"
	"litereconfig/internal/serve"
	"litereconfig/internal/simlat"
	"litereconfig/internal/workload"
)

// tierBench is one tier's row of the workload bench artifact.
type tierBench struct {
	Tier           string  `json:"tier"`
	SLOMS          float64 `json:"slo_ms"`
	Weight         int     `json:"weight"`
	Arrivals       int     `json:"arrivals"`
	Completed      int     `json:"completed"`
	Rejected       int     `json:"rejected"`
	Preemptions    int     `json:"preemptions"`
	PreemptRetired int     `json:"preempt_retired"`
	Attained       int     `json:"attained"`
	AttainRate     float64 `json:"attain_rate"`
	MeanMS         float64 `json:"mean_ms"`
	P99MS          float64 `json:"p99_ms"`
	ViolationRate  float64 `json:"violation_rate"`
}

// runBench is one policy's full-run results.
type runBench struct {
	Policy      string      `json:"policy"`
	Arrivals    int         `json:"arrivals"`
	Streams     int         `json:"streams"`
	Rejected    int         `json:"rejected"`
	Preemptions int         `json:"preemptions"`
	AttainRate  float64     `json:"attain_rate"`
	Barriers    int         `json:"barriers"`
	Tiers       []tierBench `json:"tiers"`
}

// benchOut is the BENCH_workload.json schema; the risk-admission bench
// (-bench_risk, BENCH_risk.json) reuses it with Bench "risk" and the
// risk_* / coverage fields populated.
type benchOut struct {
	Bench           string     `json:"bench"`
	Scenario        string     `json:"scenario"`
	Scale           string     `json:"scale"`
	Seed            int64      `json:"seed"`
	Device          string     `json:"device"`
	Boards          int        `json:"boards"`
	GPUSlots        int        `json:"gpu_slots"`
	Runs            []runBench `json:"runs"`
	GoldAttainDelta *float64   `json:"gold_attain_delta,omitempty"`
	// Risk bench extras: the admission quantile, the gold-tier deltas of
	// the risk run against the mean ablation (positive = risk admission
	// wins: fewer SLO misses, lower p99), and the empirical
	// prediction-interval coverage of the risk run per branch.
	RiskQ              float64            `json:"risk_q,omitempty"`
	GoldViolationDelta *float64           `json:"gold_violation_delta,omitempty"`
	GoldP99DeltaMS     *float64           `json:"gold_p99_delta_ms,omitempty"`
	OverallCoverage    *float64           `json:"overall_coverage,omitempty"`
	CoverageSamples    int                `json:"coverage_samples,omitempty"`
	Coverage           map[string]float64 `json:"coverage,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lrload: ")

	scenario := flag.String("scenario", "flashcrowd", "workload scenario: diurnal, flashcrowd or heavytail")
	scale := flag.String("scale", "small", "scenario scale: small, medium or large")
	seed := flag.Int64("seed", 7, "workload seed (arrival times, tiers, tenants, videos)")
	boards := flag.Int("boards", 1, "number of boards in the fleet")
	device := flag.String("mobile_device", "tx2", "device for every board: tx2 or xv")
	gpuSlots := flag.Int("gpu_slots", 2, "per-board worker pool size / GPU slot count")
	maxOcc := flag.Float64("max_occupancy", 0, "per-board admission occupancy threshold (0 = engine default)")
	coupling := flag.Float64("coupling", serve.DefaultCoupling, "per-board cross-stream occupancy-to-contention coupling")
	roundMS := flag.Float64("round_ms", serve.DefaultRoundMS, "simulated board round length in ms")
	noWFQ := flag.Bool("no_wfq", false, "FIFO ablation: single submission-order queue, no preemption")
	compare := flag.Bool("compare", false, "run both WFQ+preemption and the FIFO ablation on the same schedule")
	riskQ := flag.Float64("risk_q", 0, "probabilistic SLO admission quantile in (0,1), e.g. 0.95 (0 = legacy mean admission)")
	benchRisk := flag.Bool("bench_risk", false, "run the scenario under risk admission (at -risk_q, default 0.95) and the mean ablation on the same schedule, and emit the risk bench artifact (tail SLO misses + calibration coverage)")
	covBand := flag.String("coverage_band", "", "with -bench_risk: fail (exit 1) unless overall p95 interval coverage lands in \"lo,hi\", e.g. 0.90,0.99 — the CI calibration smoke")
	outFile := flag.String("out", "", "write the bench artifact (JSON) to this file")
	modelFile := flag.String("models", "", "trained model file from lrtrain (trains a small model set if empty)")
	traceFile := flag.String("trace", "", "write the merged scheduler decision trace (JSON Lines) to this file")
	fleetTrace := flag.String("fleet_trace", "", "write the fleet workload trace (JSON Lines) to this file")
	metrics := flag.Bool("metrics", false, "print the metrics registry (Prometheus exposition format) after the run")
	flag.Parse()

	dev, ok := simlat.DeviceByName(*device)
	if !ok {
		log.Fatalf("unknown device %q (want tx2 or xv)", *device)
	}
	wcfg, err := workload.Scenario(*scenario, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}

	var models *sched.Models
	if *modelFile != "" {
		models, err = sched.LoadFile(*modelFile)
		if err != nil {
			log.Fatalf("load models: %v", err)
		}
		log.Printf("loaded %s (%d branches)", *modelFile, len(models.Branches))
	} else {
		log.Printf("no -models given; training a compact model set (use lrtrain for the full pipeline)")
		set, err := fixture.Small()
		if err != nil {
			log.Fatalf("training failed: %v", err)
		}
		models = set.Models
	}

	runOne := func(wfq bool, observed bool, risk float64) (*fleet.Report, runBench) {
		sched, err := workload.Generate(wcfg)
		if err != nil {
			log.Fatal(err)
		}
		var observer *obs.Observer
		// Risk runs always observe: the calibration report needs the
		// decision trace.
		if (observed && (*traceFile != "" || *fleetTrace != "" || *metrics)) || risk > 0 {
			observer = obs.New()
		}
		var boardCfgs []fleet.BoardConfig
		for i := 0; i < *boards; i++ {
			boardCfgs = append(boardCfgs, fleet.BoardConfig{
				Name:         fmt.Sprintf("b%d", i),
				Device:       dev,
				GPUSlots:     *gpuSlots,
				MaxOccupancy: *maxOcc,
				Coupling:     *coupling,
				RoundMS:      *roundMS,
			})
		}
		opts := fleet.Options{
			Models:       models,
			Boards:       boardCfgs,
			Source:       sched,
			TickMS:       *roundMS,
			Observer:     observer,
			RiskQuantile: risk,
		}
		if wfq {
			opts.Admission = serve.AdmissionWFQ
			opts.ClassWeights = workload.Weights(wcfg.Tiers)
			opts.Preempt = true
		}
		fl, err := fleet.New(opts)
		if err != nil {
			log.Fatal(err)
		}
		rep := fl.Run()
		run := summarizeRun(rep, wcfg.Tiers, wfq)
		if risk > 0 {
			run.Policy += fmt.Sprintf("+risk-q%g", risk)
		}
		return rep, run
	}

	policyName := func(wfq bool) string {
		if wfq {
			return "wfq+preempt"
		}
		return "fifo"
	}

	out := benchOut{
		Bench:    "workload",
		Scenario: *scenario,
		Scale:    *scale,
		Seed:     *seed,
		Device:   dev.Name,
		Boards:   *boards,
		GPUSlots: *gpuSlots,
	}
	var mainRep *fleet.Report
	switch {
	case *benchRisk:
		q := *riskQ
		if q == 0 {
			q = 0.95
		}
		out.Bench = "risk"
		out.RiskQ = q
		wfq := !*noWFQ
		log.Printf("scenario %s/%s seed %d: risk admission q=%g vs mean ablation (%s)",
			*scenario, *scale, *seed, q, policyName(wfq))
		repR, runR := runOne(wfq, true, q)
		_, runM := runOne(wfq, false, 0)
		out.Runs = append(out.Runs, runR, runM)
		dViol := tierRow(runM, "gold").ViolationRate - tierRow(runR, "gold").ViolationRate
		dP99 := tierRow(runM, "gold").P99MS - tierRow(runR, "gold").P99MS
		out.GoldViolationDelta = &dViol
		out.GoldP99DeltaMS = &dP99
		if cal := obs.RiskCalibration(repR.Decisions()); cal != nil {
			cov, n := cal.Overall()
			out.OverallCoverage = &cov
			out.CoverageSamples = n
			out.Coverage = map[string]float64{}
			for _, k := range cal.Keys() {
				c, _ := cal.Coverage(k)
				out.Coverage[k] = c
			}
			fmt.Print(cal.Report())
		}
		if *covBand != "" {
			var lo, hi float64
			if _, err := fmt.Sscanf(*covBand, "%f,%f", &lo, &hi); err != nil {
				log.Fatalf("bad -coverage_band %q (want lo,hi): %v", *covBand, err)
			}
			if out.OverallCoverage == nil {
				log.Fatal("coverage band requested but the run produced no risk decisions")
			}
			if c := *out.OverallCoverage; c < lo || c > hi {
				log.Fatalf("calibration smoke FAILED: overall p95 coverage %.3f outside [%.2f, %.2f] (%d decisions)",
					c, lo, hi, out.CoverageSamples)
			}
			log.Printf("calibration smoke ok: coverage %.3f in [%.2f, %.2f] (%d decisions)",
				*out.OverallCoverage, lo, hi, out.CoverageSamples)
		}
		mainRep = repR
	case *compare:
		log.Printf("scenario %s/%s seed %d: comparing wfq+preempt vs fifo", *scenario, *scale, *seed)
		repW, runW := runOne(true, true, *riskQ)
		_, runF := runOne(false, false, *riskQ)
		out.Runs = append(out.Runs, runW, runF)
		delta := tierAttain(runW, "gold") - tierAttain(runF, "gold")
		out.GoldAttainDelta = &delta
		mainRep = repW
	default:
		wfq := !*noWFQ
		log.Printf("scenario %s/%s seed %d: policy %s", *scenario, *scale, *seed, policyName(wfq))
		rep, run := runOne(wfq, true, *riskQ)
		out.Runs = append(out.Runs, run)
		mainRep = rep
	}

	fmt.Print(mainRep.Summary())
	for _, run := range out.Runs {
		fmt.Printf("policy %s: arrivals=%d streams=%d rejected=%d preemptions=%d attain=%.0f%%\n",
			run.Policy, run.Arrivals, run.Streams, run.Rejected,
			run.Preemptions, run.AttainRate*100)
		for _, t := range run.Tiers {
			fmt.Printf("  tier %-10s slo=%5.1fms arrivals=%d completed=%d rejected=%d attained=%d (%.0f%%) p99=%.1fms preempt=%d\n",
				t.Tier, t.SLOMS, t.Arrivals, t.Completed, t.Rejected,
				t.Attained, t.AttainRate*100, t.P99MS, t.Preemptions)
		}
	}
	if out.GoldAttainDelta != nil {
		fmt.Printf("gold attain delta (wfq - fifo): %+.0f%%\n", *out.GoldAttainDelta*100)
	}

	if *outFile != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*outFile, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *outFile)
	}

	writeTrace := func(path string, write func(io.Writer) error, what string, n int) {
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("%s: %v", what, err)
		}
		if err := write(f); err != nil {
			log.Fatalf("%s: %v", what, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("%s: %v", what, err)
		}
		log.Printf("wrote %d %s to %s", n, what, path)
	}
	if *traceFile != "" {
		writeTrace(*traceFile, mainRep.WriteTrace, "decisions", len(mainRep.Decisions()))
	}
	if *fleetTrace != "" {
		writeTrace(*fleetTrace, mainRep.WriteFleetTrace, "fleet events", len(mainRep.FleetEvents()))
	}
	if *metrics {
		fmt.Println()
		fmt.Print(mainRep.Metrics().Text())
	}
}

// summarizeRun folds a fleet report into the bench row set: per-tier
// conservation counts from the report's Classes plus tail latency
// pooled over each tier's per-frame samples.
func summarizeRun(rep *fleet.Report, tiers []workload.Tier, wfq bool) runBench {
	run := runBench{
		Arrivals:    rep.Arrivals,
		Streams:     len(rep.Streams),
		Rejected:    rep.Rejected,
		Preemptions: rep.Preemptions,
		AttainRate:  rep.AttainRate,
		Barriers:    rep.Barriers,
	}
	if wfq {
		run.Policy = "wfq+preempt"
	} else {
		run.Policy = "fifo"
	}
	classes := map[string]serve.ClassStats{}
	for _, c := range rep.Classes {
		classes[c.Class] = c
	}
	for _, tier := range tiers {
		c := classes[tier.Name]
		tb := tierBench{
			Tier:           tier.Name,
			SLOMS:          tier.SLOMS,
			Weight:         tier.Weight,
			Arrivals:       rep.ArrivalsByClass[tier.Name],
			Completed:      c.Completed,
			Rejected:       c.Rejected,
			Preemptions:    c.Preemptions,
			PreemptRetired: c.PreemptRetired,
			Attained:       c.Attained,
			AttainRate:     c.AttainRate,
			ViolationRate:  c.ViolationRate,
		}
		var pool metric.LatencySeries
		for i := range rep.Streams {
			r := &rep.Streams[i]
			if r.Class != tier.Name || r.Raw == nil {
				continue
			}
			for _, ms := range r.Raw.Latency.Samples() {
				pool.Add(ms)
			}
		}
		tb.MeanMS = pool.Mean()
		tb.P99MS = pool.P99()
		run.Tiers = append(run.Tiers, tb)
	}
	return run
}

// tierAttain reads one tier's attainment rate out of a run row.
func tierAttain(run runBench, tier string) float64 {
	return tierRow(run, tier).AttainRate
}

// tierRow reads one tier's bench row (zero value when absent).
func tierRow(run runBench, tier string) tierBench {
	for _, t := range run.Tiers {
		if t.Tier == tier {
			return t
		}
	}
	return tierBench{}
}
