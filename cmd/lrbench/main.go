// Command lrbench regenerates the paper's tables and figures from the
// simulation. Each experiment prints the same rows/series the paper
// reports (Sec. 5): Table 1 (feature costs), Table 2 (main comparison),
// Table 3 (accuracy-optimized baselines), Table 4 (per-feature
// effectiveness), Figure 2 (motivation curve), Figure 3 (latency
// breakdown), Figure 4 (branch coverage), Figure 5 (switching-cost
// heatmaps).
//
// Usage:
//
//	lrbench -exp table2           # one experiment
//	lrbench -exp all              # everything
//	lrbench -exp table2 -scale small   # quick, small fixture
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"litereconfig/internal/fixture"
	"litereconfig/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lrbench: ")

	exp := flag.String("exp", "all", "experiment: table1, table2, table3, table4, fig2, fig3, fig4, fig5 or all")
	scale := flag.String("scale", "full", "fixture scale: small (seconds) or full (tens of seconds)")
	flag.Parse()

	var set *fixture.Setup
	var err error
	t0 := time.Now()
	switch *scale {
	case "small":
		set, err = fixture.Small()
	case "full":
		set, err = fixture.Full()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	if err != nil {
		log.Fatalf("fixture: %v", err)
	}
	log.Printf("fixture ready in %v (%d branches, %d val videos)",
		time.Since(t0).Round(time.Millisecond), len(set.Models.Branches), len(set.Corpus.Val))

	wanted := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		wanted[strings.TrimSpace(e)] = true
	}
	all := wanted["all"]
	run := func(name string, fn func() (string, error)) {
		if !all && !wanted[name] {
			return
		}
		t := time.Now()
		out, err := fn()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("\n%s\n", out)
		log.Printf("%s done in %v", name, time.Since(t).Round(time.Millisecond))
	}

	run("table1", func() (string, error) {
		return report.FormatTable1(report.RunTable1()), nil
	})
	run("table2", func() (string, error) {
		rows, err := report.RunTable2(set, nil)
		if err != nil {
			return "", err
		}
		return report.FormatTable2(rows), nil
	})
	run("table3", func() (string, error) {
		rows, err := report.RunTable3(set)
		if err != nil {
			return "", err
		}
		return report.FormatTable3(rows), nil
	})
	run("table4", func() (string, error) {
		rows, err := report.RunTable4(set)
		if err != nil {
			return "", err
		}
		return report.FormatTable4(rows), nil
	})
	run("fig2", func() (string, error) {
		pts, err := report.RunFig2(set)
		if err != nil {
			return "", err
		}
		return report.FormatFig2(pts), nil
	})
	run("fig3", func() (string, error) {
		rows, err := report.RunFig3(set)
		if err != nil {
			return "", err
		}
		return report.FormatFig3(rows), nil
	})
	run("fig4", func() (string, error) {
		rows, err := report.RunFig4(set)
		if err != nil {
			return "", err
		}
		return report.FormatFig4(rows), nil
	})
	run("fig5", func() (string, error) {
		d, err := report.RunFig5(set)
		if err != nil {
			return "", err
		}
		return report.FormatFig5(d), nil
	})
}
