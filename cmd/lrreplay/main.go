// Command lrreplay is the counterfactual replay engine's CLI: it
// re-runs the LiteReconfig scheduler over decision traces captured with
// -replay_trace (lrserve or lrfleet), either verbatim — the fidelity
// check, where the unchanged policy must reproduce every recorded
// decision exactly — or under altered knobs, estimating what a
// different configuration would have done to SLO attainment and
// accuracy without re-running the simulation.
//
// Replay a recorded trace under its recorded configuration and assert
// bit-exact fidelity:
//
//	lrserve -streams 8 -frames 240 -replay_trace -trace run.jsonl.gz
//	lrreplay -identity run.jsonl.gz
//
// Sweep the SLO over the same capture and compare against the recorded
// baseline:
//
//	lrreplay -slo_sweep 15,33.3,50,100 -compare run.jsonl.gz
//
// What-if knobs: -policy forces a scheduler variant over every
// decision, -degrade off|sim ablates or re-simulates the watchdog
// ladder, and -models adapted -registry reg.gob re-predicts from an
// adapted bundle out of the online-adaptation registry instead of the
// recorded tables. -risk_q overrides the probabilistic-admission
// quantile (0 forces mean admission over a risk-recorded corpus), and
// -risk_sweep replays the corpus across a quantile ladder:
//
//	lrreplay -risk_sweep 0,0.9,0.95,0.99 -compare run.jsonl.gz
//
// -bench runs a self-contained benchmark — record a seeded serve
// scenario in-process, identity-replay it, sweep the SLO — and writes
// the BENCH_replay.json artifact with the replayed-GoFs-per-second
// throughput and the replay-vs-simulation speedup.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"litereconfig/internal/adapt"
	"litereconfig/internal/fixture"
	"litereconfig/internal/obs"
	"litereconfig/internal/replay"
	"litereconfig/internal/sched"
	"litereconfig/internal/serve"
	"litereconfig/internal/vid"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lrreplay: ")

	modelMode := flag.String("models", "frozen", "prediction source: frozen (the recorded tables) or adapted (re-predict from a registry snapshot)")
	modelFile := flag.String("model_file", "", "trained bundle from lrtrain supplying the branch space and benefit table (trains the compact fixture set if empty)")
	registry := flag.String("registry", "", "adaptation registry gob (lrtrain -registry_out / lrserve -registry_out); required with -models adapted")
	version := flag.String("version", "", "registry version label to replay with (default: the newest committed version)")
	slo := flag.Float64("slo", 0, "override every decision's SLO in ms (0 = as recorded)")
	sloSweep := flag.String("slo_sweep", "", "comma-separated SLO list in ms; replays the corpus once per point and prints the sweep")
	riskSweep := flag.String("risk_sweep", "", "comma-separated admission-quantile list, e.g. 0,0.9,0.95,0.99; replays the corpus once per quantile (0 = mean admission) and prints the sweep")
	riskQ := flag.String("risk_q", "", "override the admission quantile for every decision: a value in [0,1), where 0 forces mean admission even over risk-recorded corpora (empty = as recorded)")
	safety := flag.Float64("safety", 0, "override the planning safety factor (0 = as recorded)")
	policy := flag.String("policy", "", "override the scheduler variant for every decision: full, mincost, maxcontent-resnet, maxcontent-mobilenet, force-<feature> (empty = as recorded)")
	degrade := flag.String("degrade", "recorded", "graceful-degradation treatment: recorded, off or sim")
	identity := flag.Bool("identity", false, "assert the fidelity invariant: exit non-zero unless every decision replays bit-exactly")
	compare := flag.Bool("compare", false, "print the recorded baseline next to each replayed outcome, with deltas")
	show := flag.Int("show", 5, "divergent decisions to print when the identity check fails")
	bench := flag.String("bench", "", "run the self-contained replay benchmark and write its JSON report to this file (e.g. BENCH_replay.json)")
	benchStreams := flag.Int("bench_streams", 8, "streams in the benchmark scenario")
	benchFrames := flag.Int("bench_frames", 240, "frames per stream in the benchmark scenario")
	seed := flag.Int64("seed", 7, "base seed for the benchmark scenario")
	flag.Parse()

	degradeKnob, err := replay.ParseDegrade(*degrade)
	if err != nil {
		log.Fatal(err)
	}
	models, usePred := loadModels(*modelMode, *modelFile, *registry, *version)
	base := replay.Config{
		Models:              models,
		SLOMS:               *slo,
		SafetyFactor:        *safety,
		Degrade:             degradeKnob,
		Policy:              *policy,
		UseModelPredictions: usePred,
	}
	if *riskQ != "" {
		v, err := strconv.ParseFloat(strings.TrimSpace(*riskQ), 64)
		if err != nil {
			log.Fatalf("bad -risk_q: %v", err)
		}
		base.RiskQuantile = &v
	}

	if *bench != "" {
		runBench(*bench, base, *sloSweep, *benchStreams, *benchFrames, *seed)
		return
	}

	paths := flag.Args()
	if len(paths) == 0 {
		log.Fatal("no traces given (usage: lrreplay [flags] trace.jsonl[.gz] | trace-dir ...)")
	}
	corpus, err := replay.Load(paths...)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("corpus: %d decisions (%d frames) across %d files, %.1f s simulated; %d fleet events ride along",
		corpus.Decisions(), corpus.Frames(), len(corpus.Files), corpus.SimMS()/1e3, corpus.FleetEvents())

	if *sloSweep != "" {
		points, err := parseFloats(*sloSweep)
		if err != nil {
			log.Fatalf("bad -slo_sweep: %v", err)
		}
		runSweep(corpus, base, points, *compare)
		return
	}

	if *riskSweep != "" {
		points, err := parseFloats(*riskSweep)
		if err != nil {
			log.Fatalf("bad -risk_sweep: %v", err)
		}
		runRiskSweep(corpus, base, points, *compare)
		return
	}

	e, err := replay.New(base)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	res, err := e.Replay(corpus)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(t0)
	log.Printf("replayed %d decisions in %v (%.0f GoFs/sec)",
		len(res.Redecisions), wall.Round(time.Microsecond), rate(res.Replayed.GoFs, wall))

	printOutcome("replayed", res.Replayed)
	if *compare {
		printOutcome("recorded", res.Recorded)
		fmt.Printf("%-10s attain %+6.2f pp   acc %+6.2f pp   lat %+7.2f ms\n", "delta",
			100*(res.Replayed.AttainRate-res.Recorded.AttainRate),
			100*(res.Replayed.MeanAccuracy-res.Recorded.MeanAccuracy),
			res.Replayed.MeanMS-res.Recorded.MeanMS)
	}
	reportFidelity(res, len(res.Redecisions), *identity, *show)
}

// loadModels resolves the -models mode to a bundle and the prediction
// source. frozen replays the recorded tables; adapted re-predicts from
// a registry snapshot.
func loadModels(mode, modelFile, registryPath, version string) (*sched.Models, bool) {
	switch strings.ToLower(strings.TrimSpace(mode)) {
	case "", "frozen":
		if registryPath != "" {
			log.Fatal("-registry only applies with -models adapted")
		}
		return loadBundle(modelFile), false
	case "adapted":
		if registryPath == "" {
			log.Fatal("-models adapted needs -registry <gob>")
		}
		if modelFile != "" {
			log.Fatal("-model_file conflicts with -models adapted (the registry supplies the bundle)")
		}
		reg, err := adapt.LoadRegistryFile(registryPath)
		if err != nil {
			log.Fatal(err)
		}
		vs := reg.Versions()
		if len(vs) == 0 {
			log.Fatalf("registry %s is empty", registryPath)
		}
		label := version
		if label == "" {
			label = vs[len(vs)-1].Label
		}
		m := reg.Get(label)
		if m == nil {
			var names []string
			for _, v := range vs {
				names = append(names, v.Label)
			}
			log.Fatalf("registry %s has no version %q (have %s)",
				registryPath, label, strings.Join(names, ", "))
		}
		log.Printf("replaying with adapted bundle %s from %s (%d versions)",
			label, registryPath, len(vs))
		return m, true
	}
	log.Fatalf("unknown -models mode %q (want frozen or adapted)", mode)
	return nil, false
}

func loadBundle(modelFile string) *sched.Models {
	if modelFile != "" {
		m, err := sched.LoadFile(modelFile)
		if err != nil {
			log.Fatalf("load models: %v", err)
		}
		log.Printf("loaded %s (%d branches)", modelFile, len(m.Branches))
		return m
	}
	log.Printf("no -model_file given; training the compact fixture set (must match the recording's bundle for identity)")
	set, err := fixture.Small()
	if err != nil {
		log.Fatalf("training failed: %v", err)
	}
	return set.Models
}

// runSweep replays the corpus once per SLO point and prints the sweep
// table: the counterfactual attainment/accuracy at each objective, and
// with -compare the recorded stream judged against the same objective.
func runSweep(corpus *replay.Corpus, base replay.Config, points []float64, compare bool) {
	if compare {
		fmt.Printf("%8s  %9s %8s %9s  |  %9s %8s  |  %9s %8s  %s\n",
			"slo(ms)", "attain", "acc", "lat(ms)", "rec-att", "rec-acc", "d-att", "d-acc", "diverged")
	} else {
		fmt.Printf("%8s  %9s %8s %9s  %s\n", "slo(ms)", "attain", "acc", "lat(ms)", "diverged")
	}
	for _, p := range points {
		cfg := base
		cfg.SLOMS = p
		e, err := replay.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := e.Replay(corpus)
		if err != nil {
			log.Fatal(err)
		}
		if compare {
			fmt.Printf("%8.1f  %8.2f%% %7.2f%% %9.2f  |  %8.2f%% %7.2f%%  |  %+8.2f %+8.2f  %d\n",
				p, 100*res.Replayed.AttainRate, 100*res.Replayed.MeanAccuracy, res.Replayed.MeanMS,
				100*res.Recorded.AttainRate, 100*res.Recorded.MeanAccuracy,
				100*(res.Replayed.AttainRate-res.Recorded.AttainRate),
				100*(res.Replayed.MeanAccuracy-res.Recorded.MeanAccuracy),
				res.DivergedDecisions)
		} else {
			fmt.Printf("%8.1f  %8.2f%% %7.2f%% %9.2f  %d\n",
				p, 100*res.Replayed.AttainRate, 100*res.Replayed.MeanAccuracy,
				res.Replayed.MeanMS, res.DivergedDecisions)
		}
	}
}

// runRiskSweep replays the corpus once per admission quantile and
// prints the counterfactual sweep: what attainment, accuracy and
// latency the same captured inputs would have produced had the
// scheduler admitted on each q-quantile (0 = mean admission) — the
// offline way to pick a risk level before serving with it.
func runRiskSweep(corpus *replay.Corpus, base replay.Config, points []float64, compare bool) {
	if compare {
		fmt.Printf("%8s  %9s %8s %9s  |  %9s %8s  |  %9s %8s  %s\n",
			"risk_q", "attain", "acc", "lat(ms)", "rec-att", "rec-acc", "d-att", "d-acc", "diverged")
	} else {
		fmt.Printf("%8s  %9s %8s %9s  %s\n", "risk_q", "attain", "acc", "lat(ms)", "diverged")
	}
	for _, p := range points {
		q := p
		cfg := base
		cfg.RiskQuantile = &q
		e, err := replay.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := e.Replay(corpus)
		if err != nil {
			log.Fatal(err)
		}
		if compare {
			fmt.Printf("%8.3f  %8.2f%% %7.2f%% %9.2f  |  %8.2f%% %7.2f%%  |  %+8.2f %+8.2f  %d\n",
				p, 100*res.Replayed.AttainRate, 100*res.Replayed.MeanAccuracy, res.Replayed.MeanMS,
				100*res.Recorded.AttainRate, 100*res.Recorded.MeanAccuracy,
				100*(res.Replayed.AttainRate-res.Recorded.AttainRate),
				100*(res.Replayed.MeanAccuracy-res.Recorded.MeanAccuracy),
				res.DivergedDecisions)
		} else {
			fmt.Printf("%8.3f  %8.2f%% %7.2f%% %9.2f  %d\n",
				p, 100*res.Replayed.AttainRate, 100*res.Replayed.MeanAccuracy,
				res.Replayed.MeanMS, res.DivergedDecisions)
		}
	}
}

func printOutcome(label string, o replay.Outcome) {
	fmt.Printf("%-10s attain %6.2f%%   acc %6.2f%%   lat %7.2f ms   (%d decisions, %d GoFs, %d frames)\n",
		label, 100*o.AttainRate, 100*o.MeanAccuracy, o.MeanMS, o.Decisions, o.GoFs, o.Frames)
}

// reportFidelity prints the divergence stats and, under -identity,
// makes them fatal.
func reportFidelity(res *replay.Result, total int, identity bool, show int) {
	if res.DivergedDecisions == 0 && res.MissingHeavy == 0 {
		log.Printf("fidelity: %d/%d decisions reproduced exactly", total, total)
		return
	}
	log.Printf("fidelity: %d/%d decisions diverged, %d content-blind feature selections",
		res.DivergedDecisions, total, res.MissingHeavy)
	if !identity {
		return
	}
	for i, rd := range res.Divergences() {
		if i >= show {
			break
		}
		log.Printf("  %s stream %d gen %d seq %d: %v -> branch %s",
			rd.File, rd.Stream, rd.Gen, rd.Seq, rd.Diverged, rd.Branch)
	}
	log.Fatal("identity check FAILED")
}

// benchReport is the BENCH_replay.json schema.
type benchReport struct {
	Scenario struct {
		Streams int       `json:"streams"`
		Frames  int       `json:"frames"`
		Seed    int64     `json:"seed"`
		SLOsMS  []float64 `json:"slos_ms"`
	} `json:"scenario"`
	RecordWallMS float64 `json:"record_wall_ms"`
	Decisions    int     `json:"decisions"`
	GoFs         int     `json:"gofs"`
	Frames       int     `json:"frames"`
	SimMS        float64 `json:"sim_ms"`
	Identity     struct {
		ReplayWallMS    float64 `json:"replay_wall_ms"`
		GoFsPerSec      float64 `json:"gofs_per_sec"`
		Diverged        int     `json:"diverged"`
		SpeedupVsRecord float64 `json:"speedup_vs_record"`
		SpeedupVsSim    float64 `json:"speedup_vs_sim"`
	} `json:"identity"`
	SLOSweep []benchPoint `json:"slo_sweep"`
}

type benchPoint struct {
	SLOMS          float64 `json:"slo_ms"`
	Attain         float64 `json:"attain"`
	RecordedAttain float64 `json:"recorded_attain"`
	AttainDelta    float64 `json:"attain_delta"`
	MeanAcc        float64 `json:"mean_accuracy"`
	RecordedAcc    float64 `json:"recorded_mean_accuracy"`
	AccDelta       float64 `json:"accuracy_delta"`
	MeanMS         float64 `json:"mean_ms"`
	Diverged       int     `json:"diverged"`
	ReplayWallMS   float64 `json:"replay_wall_ms"`
	GoFsPerSec     float64 `json:"gofs_per_sec"`
}

// runBench records a seeded serve scenario in-process with the replay
// payload on, identity-replays it (any divergence is fatal — a
// benchmark of an infidel replay is worthless), sweeps the SLO, and
// writes the JSON report.
func runBench(path string, base replay.Config, sloSweep string, streams, frames int, seed int64) {
	if base.Policy != "" || base.SLOMS != 0 || base.SafetyFactor != 0 ||
		base.Degrade != replay.DegradeRecorded || base.UseModelPredictions ||
		base.RiskQuantile != nil {
		log.Fatal("-bench runs the canonical identity + sweep configuration; drop the what-if flags")
	}
	sweep := []float64{15, 33.3, 50, 100}
	if sloSweep != "" {
		var err error
		if sweep, err = parseFloats(sloSweep); err != nil {
			log.Fatalf("bad -slo_sweep: %v", err)
		}
	}
	slos := []float64{33.3, 50, 100}

	var rep benchReport
	rep.Scenario.Streams = streams
	rep.Scenario.Frames = frames
	rep.Scenario.Seed = seed
	rep.Scenario.SLOsMS = slos

	log.Printf("recording: %d streams x %d frames, WFQ, replay payload on", streams, frames)
	observer := obs.New()
	t0 := time.Now()
	srv, err := serve.New(serve.Options{
		Models:       base.Models,
		Observer:     observer,
		ReplayTrace:  true,
		Admission:    serve.AdmissionWFQ,
		ClassWeights: map[string]int{"33.3ms": 4, "50ms": 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < streams; i++ {
		v := vid.Generate(fmt.Sprintf("bench_%03d", i), seed+900+int64(i),
			vid.GenConfig{Frames: frames})
		if _, err := srv.Submit(serve.StreamConfig{
			Video:          v,
			SLO:            slos[i%len(slos)],
			Seed:           seed + int64(i),
			BaseContention: 0.25,
		}); err != nil {
			log.Fatal(err)
		}
	}
	srv.Drain()
	recordWall := time.Since(t0)
	corpus := replay.FromDecisions("bench", observer.Decisions())
	rep.RecordWallMS = ms(recordWall)
	rep.Decisions = corpus.Decisions()
	rep.Frames = corpus.Frames()
	rep.SimMS = corpus.SimMS()
	log.Printf("recorded %d decisions in %v (%.1f s simulated)",
		rep.Decisions, recordWall.Round(time.Millisecond), rep.SimMS/1e3)

	e, err := replay.New(base)
	if err != nil {
		log.Fatal(err)
	}
	// Warm once (page in the tables), then time the identity pass.
	if _, err := e.Replay(corpus); err != nil {
		log.Fatal(err)
	}
	t1 := time.Now()
	res, err := e.Replay(corpus)
	if err != nil {
		log.Fatal(err)
	}
	replayWall := time.Since(t1)
	if res.DivergedDecisions != 0 || res.MissingHeavy != 0 {
		log.Fatalf("identity replay diverged on %d decisions (%d content-blind) — benchmark aborted",
			res.DivergedDecisions, res.MissingHeavy)
	}
	rep.GoFs = res.Replayed.GoFs
	rep.Identity.ReplayWallMS = ms(replayWall)
	rep.Identity.GoFsPerSec = rate(res.Replayed.GoFs, replayWall)
	rep.Identity.SpeedupVsRecord = ratio(recordWall, replayWall)
	rep.Identity.SpeedupVsSim = rep.SimMS / ms(replayWall)
	log.Printf("identity: %d decisions bit-exact in %v (%.0f GoFs/sec, %.0fx vs recording, %.0fx vs simulated time)",
		rep.Decisions, replayWall.Round(time.Microsecond), rep.Identity.GoFsPerSec,
		rep.Identity.SpeedupVsRecord, rep.Identity.SpeedupVsSim)

	for _, p := range sweep {
		cfg := base
		cfg.SLOMS = p
		se, err := replay.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		t := time.Now()
		sres, err := se.Replay(corpus)
		if err != nil {
			log.Fatal(err)
		}
		w := time.Since(t)
		rep.SLOSweep = append(rep.SLOSweep, benchPoint{
			SLOMS:          p,
			Attain:         sres.Replayed.AttainRate,
			RecordedAttain: sres.Recorded.AttainRate,
			AttainDelta:    sres.Replayed.AttainRate - sres.Recorded.AttainRate,
			MeanAcc:        sres.Replayed.MeanAccuracy,
			RecordedAcc:    sres.Recorded.MeanAccuracy,
			AccDelta:       sres.Replayed.MeanAccuracy - sres.Recorded.MeanAccuracy,
			MeanMS:         sres.Replayed.MeanMS,
			Diverged:       sres.DivergedDecisions,
			ReplayWallMS:   ms(w),
			GoFsPerSec:     rate(sres.Replayed.GoFs, w),
		})
		log.Printf("sweep slo %6.1f ms: attain %6.2f%% (recorded %6.2f%%), acc %5.2f%%, %d re-decided",
			p, 100*sres.Replayed.AttainRate, 100*sres.Recorded.AttainRate,
			100*sres.Replayed.MeanAccuracy, sres.DivergedDecisions)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", path)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func rate(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

func ratio(num, den time.Duration) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
