// Command lrtrain runs the offline training pipeline of the scheduler
// (Sec. 4 / 5.2): it generates the synthetic corpus, executes every
// execution branch over the scheduler-training snippets to collect
// accuracy and latency labels, trains the content-aware accuracy
// predictors, the per-branch latency regressions and the benefit table,
// and writes the bundle to a model file consumed by `litereconfig` and
// `lrbench`.
//
// Usage:
//
//	lrtrain -out models.gob [-space small|medium|full] [-videos 20]
//	        [-frames 240] [-seed 7] [-epochs 250]
//
// Inspection: -load <file> skips retraining, loads an existing bundle
// and prints its evaluation summary (bundle contents, adaptation
// calibration state, and a quick held-out run). -save_registry <file>
// writes a versioned model registry seeded with the bundle as the
// offline baseline "offline.v0" — the starting point for online
// adaptation (see the serving engine's Adapt option).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"litereconfig/internal/adapt"
	"litereconfig/internal/contend"
	"litereconfig/internal/core"
	"litereconfig/internal/fixture"
	"litereconfig/internal/harness"
	"litereconfig/internal/mbek"
	"litereconfig/internal/sched"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lrtrain: ")

	out := flag.String("out", "models.gob", "output model file")
	space := flag.String("space", "medium", "branch space: small, medium or full")
	videos := flag.Int("videos", 20, "scheduler-training videos")
	frames := flag.Int("frames", 240, "frames per video")
	seed := flag.Int64("seed", 7, "corpus and training seed")
	epochs := flag.Int("epochs", 250, "max training epochs")
	snippet := flag.Int("snippet", 100, "snippet length N (look-ahead window)")
	stride := flag.Int("stride", 35, "snippet stride")
	load := flag.String("load", "", "load this model file and print its evaluation summary instead of retraining")
	slo := flag.Float64("slo", 50, "per-frame SLO in ms for the -load evaluation run")
	registryOut := flag.String("save_registry", "", "also write a versioned model registry seeded with the bundle as offline baseline")
	flag.Parse()

	if *load != "" {
		models, err := sched.LoadFile(*load)
		if err != nil {
			log.Fatalf("load models: %v", err)
		}
		summarize(models, *load, *seed, *slo)
		if *registryOut != "" {
			saveRegistry(*registryOut, models)
		}
		return
	}

	var branches []mbek.Branch
	switch *space {
	case "small":
		branches = fixture.SmallBranches()
	case "medium":
		branches = fixture.MediumBranches()
	case "full":
		branches = mbek.DefaultBranches()
	default:
		log.Fatalf("unknown branch space %q (want small, medium or full)", *space)
	}

	log.Printf("generating %d training videos (%d frames each)", *videos, *frames)
	train := make([]*vid.Video, *videos)
	for i := range train {
		train[i] = vid.Generate(fmt.Sprintf("sched_%03d", i),
			*seed+100000+int64(i), vid.GenConfig{Frames: *frames})
	}

	cfg := sched.Config{
		Branches:   branches,
		SnippetLen: *snippet, SnippetStride: *stride,
		Seed: *seed, Epochs: *epochs,
		ProjDim: 24, Hidden: []int{48},
	}

	t0 := time.Now()
	log.Printf("collecting labels: %d branches x training snippets", len(branches))
	ds := sched.Collect(cfg, train)
	log.Printf("collected %d labeled snippets in %v", len(ds.Samples), time.Since(t0).Round(time.Millisecond))

	t1 := time.Now()
	log.Printf("training predictors (light + 5 content towers + %d latency regressions)", 2*len(branches))
	models, err := sched.Train(cfg, ds)
	if err != nil {
		log.Fatalf("training failed: %v", err)
	}
	log.Printf("trained in %v", time.Since(t1).Round(time.Millisecond))

	if err := models.SaveFile(*out); err != nil {
		log.Fatalf("save failed: %v", err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		log.Fatalf("stat output: %v", err)
	}
	log.Printf("wrote %s (%d branches, %.1f MB)", *out, len(models.Branches),
		float64(st.Size())/1e6)
	if *registryOut != "" {
		saveRegistry(*registryOut, models)
	}
}

// summarize prints a loaded bundle's contents, its online-adaptation
// calibration state, and a quick held-out evaluation run (fresh videos
// the training corpus never saw, fixed contention, Full policy).
func summarize(models *sched.Models, path string, seed int64, slo float64) {
	fmt.Printf("%s: %d branches, feature seed %d, %d content towers, %d latency regressions\n",
		path, len(models.Branches), models.FeatureSeed, len(models.ContentNets),
		len(models.LatDet)+len(models.LatTrk))
	if models.Ben != nil {
		fmt.Printf("benefit table: %d budgets\n", len(models.Ben.BudgetsMS))
	}
	adapted := 0
	for _, b := range models.LatBiasMS {
		if b != 0 {
			adapted++
		}
	}
	if adapted > 0 || models.AccScale != 0 || models.LatCPUAdj != 0 {
		fmt.Printf("adaptation state: %d/%d branch latency biases, acc recalibration %.4f·a%+.4f, CPU adj x%.4f\n",
			adapted, len(models.LatBiasMS), identity(models.AccScale), models.AccBias,
			identity(models.LatCPUAdj))
	} else {
		fmt.Println("adaptation state: none (freshly trained / pre-adaptation bundle)")
	}

	dev, _ := simlat.DeviceByName("tx2")
	p, err := core.NewPipeline(core.Options{Models: models, SLO: slo, Policy: core.PolicyFull})
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}
	eval := make([]*vid.Video, 3)
	for i := range eval {
		eval[i] = vid.Generate(fmt.Sprintf("eval_%03d", i), seed+700000+int64(i),
			vid.GenConfig{Frames: 120})
	}
	r := harness.Evaluate(p, eval, dev, slo, contend.Fixed{}, seed)
	status := "VIOLATED"
	if r.MeetsSLO() {
		status = "ok"
	}
	fmt.Printf("evaluation (%d held-out videos, SLO %.1f ms, %s): mAP=%.1f%% mean=%.1fms p95=%.1fms [%s]\n",
		len(eval), slo, dev.Name, 100*r.MAP(), r.Latency.Mean(), r.Latency.Percentile(95), status)
}

// identity maps the calibration fields' 0-means-identity encoding to
// the printable multiplier.
func identity(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// saveRegistry writes a one-version registry holding the bundle as the
// offline baseline, ready to seed a board's online adaptation.
func saveRegistry(path string, models *sched.Models) {
	reg := adapt.NewRegistry()
	if err := reg.Commit(adapt.Version{
		Label:  "offline.v0",
		Source: "offline",
		Stream: "offline",
	}, models); err != nil {
		log.Fatalf("registry: %v", err)
	}
	if err := reg.SaveFile(path); err != nil {
		log.Fatalf("save registry: %v", err)
	}
	log.Printf("wrote registry %s (1 version: offline.v0)", path)
}
