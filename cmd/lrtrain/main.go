// Command lrtrain runs the offline training pipeline of the scheduler
// (Sec. 4 / 5.2): it generates the synthetic corpus, executes every
// execution branch over the scheduler-training snippets to collect
// accuracy and latency labels, trains the content-aware accuracy
// predictors, the per-branch latency regressions and the benefit table,
// and writes the bundle to a model file consumed by `litereconfig` and
// `lrbench`.
//
// Usage:
//
//	lrtrain -out models.gob [-space small|medium|full] [-videos 20]
//	        [-frames 240] [-seed 7] [-epochs 250]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"litereconfig/internal/fixture"
	"litereconfig/internal/mbek"
	"litereconfig/internal/sched"
	"litereconfig/internal/vid"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lrtrain: ")

	out := flag.String("out", "models.gob", "output model file")
	space := flag.String("space", "medium", "branch space: small, medium or full")
	videos := flag.Int("videos", 20, "scheduler-training videos")
	frames := flag.Int("frames", 240, "frames per video")
	seed := flag.Int64("seed", 7, "corpus and training seed")
	epochs := flag.Int("epochs", 250, "max training epochs")
	snippet := flag.Int("snippet", 100, "snippet length N (look-ahead window)")
	stride := flag.Int("stride", 35, "snippet stride")
	flag.Parse()

	var branches []mbek.Branch
	switch *space {
	case "small":
		branches = fixture.SmallBranches()
	case "medium":
		branches = fixture.MediumBranches()
	case "full":
		branches = mbek.DefaultBranches()
	default:
		log.Fatalf("unknown branch space %q (want small, medium or full)", *space)
	}

	log.Printf("generating %d training videos (%d frames each)", *videos, *frames)
	train := make([]*vid.Video, *videos)
	for i := range train {
		train[i] = vid.Generate(fmt.Sprintf("sched_%03d", i),
			*seed+100000+int64(i), vid.GenConfig{Frames: *frames})
	}

	cfg := sched.Config{
		Branches:   branches,
		SnippetLen: *snippet, SnippetStride: *stride,
		Seed: *seed, Epochs: *epochs,
		ProjDim: 24, Hidden: []int{48},
	}

	t0 := time.Now()
	log.Printf("collecting labels: %d branches x training snippets", len(branches))
	ds := sched.Collect(cfg, train)
	log.Printf("collected %d labeled snippets in %v", len(ds.Samples), time.Since(t0).Round(time.Millisecond))

	t1 := time.Now()
	log.Printf("training predictors (light + 5 content towers + %d latency regressions)", 2*len(branches))
	models, err := sched.Train(cfg, ds)
	if err != nil {
		log.Fatalf("training failed: %v", err)
	}
	log.Printf("trained in %v", time.Since(t1).Round(time.Millisecond))

	if err := models.SaveFile(*out); err != nil {
		log.Fatalf("save failed: %v", err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		log.Fatalf("stat output: %v", err)
	}
	log.Printf("wrote %s (%d branches, %.1f MB)", *out, len(models.Branches),
		float64(st.Size())/1e6)
}
