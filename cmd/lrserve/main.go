// Command lrserve runs the multi-stream serving engine: N concurrent
// video streams multiplexed over one simulated board, where each
// stream's GPU contention is the measured occupancy of the other
// streams. It prints per-stream rows and the per-class SLO attainment.
//
// Usage:
//
//	lrserve --streams 8 --slos 33.3,50 --mobile_device tx2 \
//	        --gpu_slots 2 --coupling 0.5 --frames 120
//
// The --slos list is cycled across streams; --policies (cycled the same
// way) mixes scheduler variants, e.g. --policies full,mincost to watch
// the Full policy adapt to cross-stream contention while MinCost does
// not.
//
// Observability: -trace <file> writes every scheduler decision (one JSON
// object per line, byte-identical across runs for fixed seeds), and
// -metrics dumps the engine's metrics registry in Prometheus exposition
// format after the drain.
//
// Chaos: -faults injects a deterministic seeded fault schedule
// (latency spikes, feature-extraction failures, contention bursts,
// stream stalls, worker panics) and engages graceful degradation —
// e.g. -faults spike=0.05,extract=0.1,panic=0.005. Same seed, same
// faults, same trace.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"litereconfig/internal/adapt"
	"litereconfig/internal/core"
	"litereconfig/internal/fault"
	"litereconfig/internal/fixture"
	"litereconfig/internal/obs"
	"litereconfig/internal/sched"
	"litereconfig/internal/serve"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

// parsePolicy maps a policy flag token to the scheduler variant.
func parsePolicy(s string) (core.Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "full", "litereconfig":
		return core.PolicyFull, nil
	case "mincost":
		return core.PolicyMinCost, nil
	case "maxcontent-resnet", "resnet":
		return core.PolicyMaxContentResNet, nil
	case "maxcontent-mobilenet", "mobilenet":
		return core.PolicyMaxContentMobileNet, nil
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}

// parseFloats splits a comma-separated float list.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lrserve: ")

	streams := flag.Int("streams", 8, "number of concurrent streams")
	slos := flag.String("slos", "33.3,50", "comma-separated per-frame SLOs in ms, cycled across streams")
	policies := flag.String("policies", "full", "comma-separated scheduler policies, cycled across streams (full, mincost, maxcontent-resnet, maxcontent-mobilenet)")
	device := flag.String("mobile_device", "tx2", "device: tx2 or xv")
	gpuSlots := flag.Int("gpu_slots", 2, "worker pool size / GPU slot count")
	maxOcc := flag.Float64("max_occupancy", 0, "admission threshold on aggregate GPU occupancy (default 2 x gpu_slots)")
	coupling := flag.Float64("coupling", serve.DefaultCoupling, "cross-stream occupancy-to-contention coupling")
	roundMS := flag.Float64("round_ms", serve.DefaultRoundMS, "simulated board round length in ms")
	queueLimit := flag.Int("queue_limit", serve.DefaultQueueLimit, "admission queue capacity (backpressure beyond it)")
	frames := flag.Int("frames", 120, "frames per stream video")
	seed := flag.Int64("seed", 7, "base seed for stream videos")
	faults := flag.String("faults", "", "fault-injection spec, e.g. spike=0.05,extract=0.1,burst=0.02,stall=0.01,panic=0.005 (empty = no faults)")
	retryLimit := flag.Int("retry_limit", serve.DefaultRetryLimit, "recovered worker panics a stream may accumulate before quarantine")
	stallRounds := flag.Int("stall_rounds", serve.DefaultStallRounds, "consecutive zero-progress rounds before a stream is quarantined")
	modelFile := flag.String("models", "", "trained model file from lrtrain (trains a small model set if empty)")
	adaptOn := flag.Bool("adapt", false, "enable online model adaptation (per-stream refit with champion-challenger rollout into a board registry)")
	registryOut := flag.String("registry_out", "", "save the board's adaptation registry (gob) after the drain, for lrreplay -models adapted (needs -adapt)")
	traceFile := flag.String("trace", "", "write the scheduler decision trace (JSON Lines) to this file; a .gz suffix gzip-compresses it")
	replayTrace := flag.Bool("replay_trace", false, "enrich the decision trace with the scheduler-input replay payload (for lrreplay); traces get large")
	riskQ := flag.Float64("risk_q", 0, "probabilistic SLO admission quantile in (0,1), e.g. 0.95: admit branches on the q-quantile latency and print the risk-calibration report after the drain (0 = legacy mean admission)")
	metrics := flag.Bool("metrics", false, "print the metrics registry (Prometheus exposition format) after the drain")
	flag.Parse()

	dev, ok := simlat.DeviceByName(*device)
	if !ok {
		log.Fatalf("unknown device %q (want tx2 or xv)", *device)
	}
	sloList, err := parseFloats(*slos)
	if err != nil {
		log.Fatalf("bad --slos: %v", err)
	}
	var policyList []core.Policy
	for _, tok := range strings.Split(*policies, ",") {
		p, err := parsePolicy(tok)
		if err != nil {
			log.Fatal(err)
		}
		policyList = append(policyList, p)
	}
	var faultCfg *fault.Config
	if *faults != "" {
		faultCfg, err = fault.ParseSpec(*faults)
		if err != nil {
			log.Fatalf("bad --faults: %v", err)
		}
		if faultCfg.Seed == 0 {
			faultCfg.Seed = *seed
		}
	}

	var models *sched.Models
	if *modelFile != "" {
		models, err = sched.LoadFile(*modelFile)
		if err != nil {
			log.Fatalf("load models: %v", err)
		}
		log.Printf("loaded %s (%d branches)", *modelFile, len(models.Branches))
	} else {
		log.Printf("no --models given; training a compact model set (use lrtrain for the full pipeline)")
		set, err := fixture.Small()
		if err != nil {
			log.Fatalf("training failed: %v", err)
		}
		models = set.Models
	}

	var observer *obs.Observer
	if *traceFile != "" || *metrics || *riskQ > 0 {
		observer = obs.New() // risk mode needs the trace for the calibration report
	}

	var adaptCfg *adapt.Config
	if *adaptOn {
		adaptCfg = &adapt.Config{}
	}

	srv, err := serve.New(serve.Options{
		Models:       models,
		Device:       dev,
		GPUSlots:     *gpuSlots,
		MaxOccupancy: *maxOcc,
		Coupling:     *coupling,
		RoundMS:      *roundMS,
		QueueLimit:   *queueLimit,
		Faults:       faultCfg,
		RetryLimit:   *retryLimit,
		StallRounds:  *stallRounds,
		Observer:     observer,
		Adapt:        adaptCfg,
		ReplayTrace:  *replayTrace,
		RiskQuantile: *riskQ,
	})
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("serving %d streams on %s: %d GPU slots, coupling %.2f, round %.0f ms",
		*streams, dev.Name, srv.Options().GPUSlots, srv.Options().Coupling,
		srv.Options().RoundMS)
	if faultCfg != nil {
		log.Printf("fault injection on: %s (seed %d)", *faults, *seed)
	}
	submitted := 0
	for i := 0; i < *streams; i++ {
		slo := sloList[i%len(sloList)]
		policy := policyList[i%len(policyList)]
		v := vid.Generate(fmt.Sprintf("live_%03d", i), *seed+300000+int64(i),
			vid.GenConfig{Frames: *frames})
		_, err := srv.Submit(serve.StreamConfig{
			Name:   fmt.Sprintf("stream-%d", i),
			Video:  v,
			SLO:    slo,
			Policy: policy,
			Seed:   *seed + int64(i),
		})
		if err != nil {
			log.Printf("stream %d: %v", i, err)
			continue
		}
		submitted++
	}
	log.Printf("%d/%d streams accepted, draining...", submitted, *streams)

	res := srv.Drain()
	for i := range res.Streams {
		fmt.Println(res.Streams[i].Summary())
	}
	fmt.Println()
	fmt.Print(res.Summary())

	if *riskQ > 0 {
		if cal := obs.RiskCalibration(res.Decisions()); cal != nil {
			fmt.Println()
			fmt.Print(cal.Report())
		}
	}

	if reg := srv.AdaptRegistry(); reg != nil && reg.Len() > 0 {
		fmt.Println()
		fmt.Println("model registry:")
		for _, v := range reg.Versions() {
			fmt.Printf("  %-10s %-8s parent=%-10s err %.2f->%.2f ms (%d samples)\n",
				v.Label, v.Source, v.Parent, v.ChampErrMS, v.ChalErrMS, v.Samples)
		}
	}

	if *registryOut != "" {
		reg := srv.AdaptRegistry()
		if reg == nil {
			log.Fatal("-registry_out needs -adapt")
		}
		if err := reg.SaveFile(*registryOut); err != nil {
			log.Fatalf("save registry: %v", err)
		}
		log.Printf("wrote registry %s (%d versions)", *registryOut, reg.Len())
	}

	if *traceFile != "" {
		f, err := obs.CreateTrace(*traceFile)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		if err := res.WriteTrace(f); err != nil {
			log.Fatalf("trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("trace: %v", err)
		}
		log.Printf("wrote %d decisions to %s", len(res.Decisions()), *traceFile)
	}
	if *metrics {
		fmt.Println()
		fmt.Print(res.Metrics().Text())
	}
}
