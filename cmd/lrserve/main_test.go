package main

import (
	"testing"

	"litereconfig/internal/core"
)

func TestParsePolicy(t *testing.T) {
	cases := map[string]core.Policy{
		"":                     core.PolicyFull,
		"full":                 core.PolicyFull,
		"LiteReconfig":         core.PolicyFull,
		"MinCost":              core.PolicyMinCost,
		" mincost ":            core.PolicyMinCost,
		"maxcontent-resnet":    core.PolicyMaxContentResNet,
		"resnet":               core.PolicyMaxContentResNet,
		"maxcontent-mobilenet": core.PolicyMaxContentMobileNet,
		"mobilenet":            core.PolicyMaxContentMobileNet,
	}
	for in, want := range cases {
		got, err := parsePolicy(in)
		if err != nil || got != want {
			t.Errorf("parsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parsePolicy("selsa"); err == nil {
		t.Error("unsupported policy should error")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("33.3, 50,90")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 33.3 || got[1] != 50 || got[2] != 90 {
		t.Fatalf("parseFloats = %v", got)
	}
	if _, err := parseFloats("33,abc"); err == nil {
		t.Error("bad float should error")
	}
}
