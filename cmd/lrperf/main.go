// Command lrperf is the continuous performance driver: it sweeps the
// perf configuration matrix — {streams, boards, contention, faults,
// adapt, admission} × {small, medium} — and emits a comparable JSON
// report (BENCH_perf.json) with wall-clock mean/p50/p99 per simulated
// GoF, GoF throughput per wall second, and allocs/op + bytes/op on the
// scheduler decision path. With -compare it gates the fresh run against
// a committed baseline: any allocs/op growth fails hard, wall time
// fails beyond a soft calibration-normalized tolerance.
//
// Usage:
//
//	lrperf -scale all -out BENCH_perf.json
//	lrperf -scale small -compare BENCH_perf.json         # CI gate
//	lrperf -scale all -out BENCH_perf.json -campaign before.json
package main

import (
	"flag"
	"fmt"
	"os"

	"litereconfig/internal/fixture"
	"litereconfig/internal/perf"
)

func main() {
	var (
		scale    = flag.String("scale", "small", "matrix scale: small|medium|all")
		cellsSub = flag.String("cells", "", "only run cells whose name contains this substring")
		out      = flag.String("out", "", "write the JSON report to this path")
		compare  = flag.String("compare", "", "gate this run against the baseline report at this path")
		wallTol  = flag.Float64("wall_tol", 0.15, "soft wall-time tolerance for -compare (negative disables)")
		seed     = flag.Int64("seed", 1, "sweep seed (drives every cell's realization)")
		decOps   = flag.Int("decision_ops", 300, "measured iterations of the decision-path alloc loop")
		campaign = flag.String("campaign", "", "before-report path: embed a before/after campaign record in -out")
		note     = flag.String("campaign_note", "", "free-text note stored with the campaign record")
		quiet    = flag.Bool("q", false, "suppress per-cell progress lines")
	)
	flag.Parse()

	cells, err := perf.Matrix(*scale)
	if err != nil {
		fatal(err)
	}
	cells = perf.FilterCells(cells, *cellsSub)
	if len(cells) == 0 {
		fatal(fmt.Errorf("no cells match -cells %q at -scale %q", *cellsSub, *scale))
	}

	set, err := fixture.Small()
	if err != nil {
		fatal(fmt.Errorf("train fixture models: %w", err))
	}

	opts := perf.RunOptions{Seed: *seed, DecisionOps: *decOps}
	if !*quiet {
		opts.Log = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	rep, err := perf.Run(set.Models, cells, opts)
	if err != nil {
		fatal(err)
	}

	if *campaign != "" {
		before, err := loadReport(*campaign)
		if err != nil {
			fatal(fmt.Errorf("load campaign before-report: %w", err))
		}
		rep.Campaign = perf.BuildCampaign(before, rep, *note)
	}

	if *out != "" {
		b, err := rep.Marshal()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d cells)\n", *out, len(rep.Cells))
	}

	if *compare != "" {
		base, err := loadReport(*compare)
		if err != nil {
			fatal(fmt.Errorf("load baseline: %w", err))
		}
		gate := perf.Compare(rep, base, *wallTol)
		fmt.Print(gate.Summary())
		if !gate.OK() {
			os.Exit(1)
		}
	}

	if *out == "" && *compare == "" {
		b, err := rep.Marshal()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(b)
	}
}

func loadReport(path string) (*perf.Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return perf.Unmarshal(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lrperf:", err)
	os.Exit(1)
}
