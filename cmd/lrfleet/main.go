// Command lrfleet runs the multi-board fleet dispatcher: N streams
// placed over M simulated boards by cost/content-aware placement, with
// live stream migration off boards that fail or become too contended.
//
// Usage:
//
//	lrfleet --boards 3 --streams 9 --slos 50,100 --mobile_device tx2 \
//	        --faults "b1:panic=0.3" --fleet_trace fleet.jsonl
//
// Placement scores every healthy board with capacity: the stream's
// predicted contention there (the board's occupancy folded through its
// coupling), the resulting per-branch latency, and the best feasible
// branch's predicted accuracy under the stream's SLO. The stream goes
// to the board whose best feasible branch maximizes accuracy; when no
// board has a feasible branch it is placed best-effort.
//
// Migration: a board whose recovered worker panics reach
// --board_panic_limit is quarantined and its streams are evacuated; a
// stream whose SLO stays infeasible on its board for --hysteresis
// barriers moves to a board with a feasible branch. Every hand-off is
// charged a migration cost (model clone plus detector warm-up).
// --no_migration disables both — the ablation baseline.
//
// Chaos: --faults takes a board-scoped spec — semicolon-separated
// entries, each a plain fault spec (fleet-wide default) or
// "<board>:<spec>" for one board, e.g. "spike=0.01;b1:panic=0.3".
// Board labels are validated against the fleet (b0..bN-1); an unknown
// label is a configuration error, not a silent no-op.
//
// Crash recovery: fail-stop board faults ("b1:crash=9" kills board b1
// permanently at round 9; "b2:blackout=5" makes b2 unresponsive for a
// few rounds) are recovered through fleet-held checkpoints: every
// --checkpoint_interval barriers each board serializes per-stream
// recovery state; a board silent past its --lease_barriers heartbeat
// lease gets --recovery_retries probes with exponential backoff (a
// blackout rides them out), then is declared dead in fleet virtual
// time, fenced, and its streams are restored onto surviving boards,
// replaying only the GoFs since their last checkpoint.
//
// Observability: -trace writes the merged scheduler decision trace,
// -fleet_trace the fleet placement/migration trace (both JSON Lines,
// byte-identical across runs for fixed seeds), and -metrics dumps the
// board-labeled metrics registry in Prometheus exposition format.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"strconv"
	"strings"

	"litereconfig/internal/adapt"
	"litereconfig/internal/core"
	"litereconfig/internal/fault"
	"litereconfig/internal/fixture"
	"litereconfig/internal/fleet"
	"litereconfig/internal/obs"
	"litereconfig/internal/sched"
	"litereconfig/internal/serve"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

// parsePolicy maps a policy flag token to the scheduler variant.
func parsePolicy(s string) (core.Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "full", "litereconfig":
		return core.PolicyFull, nil
	case "mincost":
		return core.PolicyMinCost, nil
	case "maxcontent-resnet", "resnet":
		return core.PolicyMaxContentResNet, nil
	case "maxcontent-mobilenet", "mobilenet":
		return core.PolicyMaxContentMobileNet, nil
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}

// parseFloats splits a comma-separated float list.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lrfleet: ")

	boards := flag.Int("boards", 3, "number of boards in the fleet")
	streams := flag.Int("streams", 9, "number of streams to submit")
	slos := flag.String("slos", "50,100", "comma-separated per-frame SLOs in ms, cycled across streams")
	policies := flag.String("policies", "full", "comma-separated scheduler policies, cycled across streams (full, mincost, maxcontent-resnet, maxcontent-mobilenet)")
	device := flag.String("mobile_device", "tx2", "device for every board: tx2 or xv")
	gpuSlots := flag.Int("gpu_slots", 2, "per-board worker pool size / GPU slot count")
	coupling := flag.Float64("coupling", serve.DefaultCoupling, "per-board cross-stream occupancy-to-contention coupling")
	roundMS := flag.Float64("round_ms", serve.DefaultRoundMS, "simulated board round length in ms")
	frames := flag.Int("frames", 120, "frames per stream video")
	seed := flag.Int64("seed", 7, "base seed for stream videos")
	faults := flag.String("faults", "", `board-scoped fault spec: semicolon-separated entries, each "<spec>" (fleet-wide) or "<board>:<spec>", e.g. "spike=0.01;b1:panic=0.3"`)
	panicLimit := flag.Int("board_panic_limit", fleet.DefaultBoardPanicLimit, "recovered worker panics before a board is quarantined and evacuated")
	hysteresis := flag.Int("hysteresis", fleet.DefaultHysteresis, "consecutive infeasible barriers before an SLO-driven migration")
	maxMigrations := flag.Int("max_migrations", fleet.DefaultMaxMigrations, "per-stream board hand-off cap")
	cloneMS := flag.Float64("clone_ms", fleet.DefaultCloneMS, "model-clone share of the migration cost in ms")
	noMigration := flag.Bool("no_migration", false, "disable live migration (ablation baseline)")
	ckptInterval := flag.Int("checkpoint_interval", fleet.DefaultCheckpointInterval, "fleet barriers between checkpoint sweeps for crash recovery (negative disables checkpointing)")
	leaseBarriers := flag.Int("lease_barriers", 0, "missed barrier heartbeats before a board is suspect (0 = default)")
	recoveryRetries := flag.Int("recovery_retries", 0, "probes a suspect board gets before it is declared dead (0 = default, negative = none)")
	adaptOn := flag.Bool("adapt", false, "enable online model adaptation on every board (per-stream refit with champion-challenger rollout)")
	adaptStagger := flag.Bool("adapt_stagger", false, "stage the adaptation rollout board by board: each board's promotions unlock only after the previous board promoted (requires -adapt)")
	modelFile := flag.String("models", "", "trained model file from lrtrain (trains a small model set if empty)")
	traceFile := flag.String("trace", "", "write the merged scheduler decision trace (JSON Lines) to this file; a .gz suffix gzip-compresses it")
	fleetTrace := flag.String("fleet_trace", "", "write the fleet placement/migration trace (JSON Lines) to this file; a .gz suffix gzip-compresses it")
	replayTrace := flag.Bool("replay_trace", false, "enrich the decision trace with the scheduler-input replay payload (for lrreplay); traces get large")
	riskQ := flag.Float64("risk_q", 0, "probabilistic SLO admission quantile in (0,1), e.g. 0.95: boards admit branches on the q-quantile latency and placement ranks boards by SLO-attainment probability (0 = legacy mean admission)")
	metrics := flag.Bool("metrics", false, "print the metrics registry (Prometheus exposition format) after the run")
	flag.Parse()

	dev, ok := simlat.DeviceByName(*device)
	if !ok {
		log.Fatalf("unknown device %q (want tx2 or xv)", *device)
	}
	sloList, err := parseFloats(*slos)
	if err != nil {
		log.Fatalf("bad --slos: %v", err)
	}
	var policyList []core.Policy
	for _, tok := range strings.Split(*policies, ",") {
		p, err := parsePolicy(tok)
		if err != nil {
			log.Fatal(err)
		}
		policyList = append(policyList, p)
	}
	faultSpecs := map[string]*fault.Config{}
	if *faults != "" {
		faultSpecs, err = fault.ParseBoardSpecs(*faults)
		if err != nil {
			log.Fatalf("bad --faults: %v", err)
		}
		boardNames := make([]string, *boards)
		for i := range boardNames {
			boardNames[i] = fmt.Sprintf("b%d", i)
		}
		if err := fault.ValidateBoards(faultSpecs, boardNames); err != nil {
			log.Fatalf("bad --faults: %v", err)
		}
		for _, c := range faultSpecs {
			if c.Seed == 0 {
				c.Seed = *seed
			}
		}
	}

	var models *sched.Models
	if *modelFile != "" {
		models, err = sched.LoadFile(*modelFile)
		if err != nil {
			log.Fatalf("load models: %v", err)
		}
		log.Printf("loaded %s (%d branches)", *modelFile, len(models.Branches))
	} else {
		log.Printf("no --models given; training a compact model set (use lrtrain for the full pipeline)")
		set, err := fixture.Small()
		if err != nil {
			log.Fatalf("training failed: %v", err)
		}
		models = set.Models
	}

	var observer *obs.Observer
	if *traceFile != "" || *fleetTrace != "" || *metrics {
		observer = obs.New()
	}

	var boardCfgs []fleet.BoardConfig
	for i := 0; i < *boards; i++ {
		name := fmt.Sprintf("b%d", i)
		boardCfgs = append(boardCfgs, fleet.BoardConfig{
			Name:     name,
			Device:   dev,
			GPUSlots: *gpuSlots,
			Coupling: *coupling,
			RoundMS:  *roundMS,
			Faults:   fault.BoardConfig(faultSpecs, name),
		})
	}
	var adaptCfg *adapt.Config
	if *adaptOn {
		adaptCfg = &adapt.Config{}
	} else if *adaptStagger {
		log.Fatal("-adapt_stagger requires -adapt")
	}
	fl, err := fleet.New(fleet.Options{
		Models:             models,
		Boards:             boardCfgs,
		BoardPanicLimit:    *panicLimit,
		Hysteresis:         *hysteresis,
		MaxMigrations:      *maxMigrations,
		CloneMS:            *cloneMS,
		DisableMigration:   *noMigration,
		Observer:           observer,
		Adapt:              adaptCfg,
		AdaptStagger:       *adaptStagger,
		CheckpointInterval: *ckptInterval,
		LeaseBarriers:      *leaseBarriers,
		RecoveryRetries:    *recoveryRetries,
		RecoverySeed:       *seed,
		ReplayTrace:        *replayTrace,
		RiskQuantile:       *riskQ,
	})
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("fleet of %d boards on %s: %d GPU slots each, coupling %.2f, round %.0f ms",
		*boards, dev.Name, *gpuSlots, *coupling, *roundMS)
	if *faults != "" {
		log.Printf("fault injection on: %s (seed %d)", *faults, *seed)
	}
	submitted := 0
	for i := 0; i < *streams; i++ {
		v := vid.Generate(fmt.Sprintf("fleet_%03d", i), *seed+300000+int64(i),
			vid.GenConfig{Frames: *frames})
		_, err := fl.Submit(serve.StreamConfig{
			Name:   fmt.Sprintf("stream-%d", i),
			Video:  v,
			SLO:    sloList[i%len(sloList)],
			Policy: policyList[i%len(policyList)],
			Seed:   *seed + int64(i),
		})
		if err != nil {
			log.Printf("stream %d: %v", i, err)
			continue
		}
		submitted++
	}
	log.Printf("%d/%d streams accepted, running...", submitted, *streams)

	rep := fl.Run()
	for i := range rep.Streams {
		fmt.Println(rep.Streams[i].Summary())
	}
	fmt.Println()
	fmt.Print(rep.Summary())

	writeTrace := func(path string, write func(io.Writer) error, what string, n int) {
		f, err := obs.CreateTrace(path)
		if err != nil {
			log.Fatalf("%s: %v", what, err)
		}
		if err := write(f); err != nil {
			log.Fatalf("%s: %v", what, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("%s: %v", what, err)
		}
		log.Printf("wrote %d %s to %s", n, what, path)
	}
	if *traceFile != "" {
		writeTrace(*traceFile, rep.WriteTrace, "decisions", len(rep.Decisions()))
	}
	if *fleetTrace != "" {
		writeTrace(*fleetTrace, rep.WriteFleetTrace, "fleet events", len(rep.FleetEvents()))
	}
	if *metrics {
		fmt.Println()
		fmt.Print(rep.Metrics().Text())
	}
}
