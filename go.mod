module litereconfig

go 1.22
