package litereconfig

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (Sec. 5), plus ablations of the design choices
// called out in DESIGN.md §5. Each benchmark regenerates its experiment
// on the shared Full fixture (built once per process, ~20 s), prints the
// paper-style table once, and reports the headline simulated metrics via
// b.ReportMetric — so `go test -bench . -benchmem` both exercises the
// simulation and emits the reproduced rows.
//
// Absolute numbers are simulated milliseconds; compare *shapes* with the
// paper (see EXPERIMENTS.md).

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"
	"testing"

	"litereconfig/internal/adapt"
	"litereconfig/internal/contend"
	"litereconfig/internal/core"
	"litereconfig/internal/fixture"
	"litereconfig/internal/harness"
	"litereconfig/internal/mbek"
	"litereconfig/internal/metric"
	"litereconfig/internal/obs"
	"litereconfig/internal/report"
	"litereconfig/internal/serve"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

// benchSetup returns the shared Full fixture (trained models + corpus).
func benchSetup(b *testing.B) *fixture.Setup {
	b.Helper()
	set, err := fixture.Full()
	if err != nil {
		b.Fatal(err)
	}
	return set
}

// printOnce guards the one-time table printouts.
var printOnce sync.Map

func printTable(key, table string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", table)
	}
}

// BenchmarkTable1FeatureCosts regenerates Table 1 (feature registry and
// extraction/prediction costs).
func BenchmarkTable1FeatureCosts(b *testing.B) {
	var rows []report.Table1Row
	for i := 0; i < b.N; i++ {
		rows = report.RunTable1()
	}
	printTable("table1", report.FormatTable1(rows))
	b.ReportMetric(float64(len(rows)), "features")
}

// BenchmarkTable2MainComparison regenerates the paper's main result: the
// protocol lineup across devices, SLOs and contention levels. One
// iteration covers one representative scenario block (TX2, 0% and 50%,
// all SLOs); the printed table covers the full grid.
func BenchmarkTable2MainComparison(b *testing.B) {
	set := benchSetup(b)
	full, err := report.RunTable2(set, nil)
	if err != nil {
		b.Fatal(err)
	}
	printTable("table2", report.FormatTable2(full))

	// Headline cell: LiteReconfig on TX2 at 33.3 ms, no contention (C1).
	var mAP, p95 float64
	for _, r := range full {
		if r.Protocol == "LiteReconfig" && r.Scenario.Device.Name == "tx2" &&
			r.Scenario.Contention == 0 && r.Scenario.SLO == 33.3 {
			mAP, p95 = r.MAP, r.P95
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.RunCell(set, "LiteReconfig",
			report.Scenario{Device: simlat.TX2, SLO: 33.3}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mAP*100, "mAP%")
	b.ReportMetric(p95, "p95ms")
}

// BenchmarkTable3AccuracyOptimized regenerates the comparison with the
// accuracy-optimized baselines (SELSA, MEGA, REPP, EfficientDet,
// AdaScale) on the TX2 with no SLO.
func BenchmarkTable3AccuracyOptimized(b *testing.B) {
	set := benchSetup(b)
	var rows []report.Table3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = report.RunTable3(set)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("table3", report.FormatTable3(rows))
	// Speedup of LiteReconfig@33.3 over SELSA (C3).
	var lr, selsa float64
	for _, r := range rows {
		switch r.Label {
		case "LiteReconfig, 33.3 ms":
			lr = r.MeanMS
		case "SELSA-ResNet-50":
			selsa = r.MeanMS
		}
	}
	if lr > 0 {
		b.ReportMetric(selsa/lr, "xSELSA")
	}
}

// BenchmarkTable4FeatureEffectiveness regenerates the per-feature
// effectiveness study (each content feature forced, overhead ignored).
func BenchmarkTable4FeatureEffectiveness(b *testing.B) {
	set := benchSetup(b)
	var rows []report.Table4Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = report.RunTable4(set)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("table4", report.FormatTable4(rows))
	// Best single-feature gain over "none" at 100 ms.
	var none, best float64
	for _, r := range rows {
		if r.SLO != 100 {
			continue
		}
		if r.Feature == "none" {
			none = r.MAP
		} else if r.MAP > best {
			best = r.MAP
		}
	}
	b.ReportMetric((best-none)*100, "gain_mAP%")
}

// BenchmarkFig2MotivationCurve regenerates the accuracy-vs-latency curve
// of the three strategies (content-agnostic, MaxContent-ResNet,
// MaxContent-MobileNet).
func BenchmarkFig2MotivationCurve(b *testing.B) {
	set := benchSetup(b)
	var pts []report.Fig2Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = report.RunFig2(set)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("fig2", report.FormatFig2(pts))
	b.ReportMetric(float64(len(pts)), "points")
}

// BenchmarkFig3LatencyBreakdown regenerates the per-component latency
// breakdown (% of SLO in detector / tracker / scheduler / switch).
func BenchmarkFig3LatencyBreakdown(b *testing.B) {
	set := benchSetup(b)
	var rows []report.Fig3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = report.RunFig3(set)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("fig3", report.FormatFig3(rows))
	// LiteReconfig's scheduling overhead share at 33.3 ms (paper: <10%).
	for _, r := range rows {
		if r.Protocol == "LiteReconfig" && r.SLO == 33.3 {
			b.ReportMetric(r.SchedulerPct+r.SwitchPct, "overhead%")
		}
	}
}

// BenchmarkFig4BranchCoverage regenerates the branch-coverage comparison.
func BenchmarkFig4BranchCoverage(b *testing.B) {
	set := benchSetup(b)
	var rows []report.Fig4Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = report.RunFig4(set)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("fig4", report.FormatFig4(rows))
	for _, r := range rows {
		if r.Protocol == "LiteReconfig" && r.SLO == 33.3 {
			b.ReportMetric(float64(r.Coverage), "branches")
		}
	}
}

// BenchmarkFig5SwitchingCost regenerates the offline switching-cost
// matrix and the online observed switch-cost heatmaps.
func BenchmarkFig5SwitchingCost(b *testing.B) {
	set := benchSetup(b)
	var d *report.Fig5Data
	var err error
	for i := 0; i < b.N; i++ {
		d, err = report.RunFig5(set)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("fig5", report.FormatFig5(d))
	// Mean offline switch cost (paper: generally below 10 ms).
	var sum float64
	var n int
	for i := range d.Offline {
		for j := range d.Offline[i] {
			if i != j {
				sum += d.Offline[i][j]
				n++
			}
		}
	}
	b.ReportMetric(sum/float64(n), "mean_switch_ms")
}

// ablationCell runs the full LiteReconfig pipeline with modified options
// in the (TX2, 50 ms, 50% contention) cell — the scenario where the
// cost-aware machinery earns its keep.
func ablationCell(b *testing.B, set *fixture.Setup, mutate func(*core.Options)) *harness.Result {
	b.Helper()
	opts := core.Options{Models: set.Models, SLO: 50, Policy: core.PolicyFull}
	if mutate != nil {
		mutate(&opts)
	}
	p, err := core.NewPipeline(opts)
	if err != nil {
		b.Fatal(err)
	}
	return harness.Evaluate(p, set.Corpus.Val, simlat.TX2, 50,
		contend.Fixed{G: 0.5}, 1234)
}

// BenchmarkAblationSwitchCost removes the switching-cost term C(b0, b)
// from the latency constraint (Eq. 3) and reports the effect on switch
// count and SLO violations.
func BenchmarkAblationSwitchCost(b *testing.B) {
	set := benchSetup(b)
	var with, without *harness.Result
	for i := 0; i < b.N; i++ {
		with = ablationCell(b, set, nil)
		without = ablationCell(b, set, func(o *core.Options) { o.DisableSwitchCost = true })
	}
	printTable("ablation-switch", fmt.Sprintf(
		"Ablation: switching-cost term (TX2, 50 ms, 50%% contention)\n"+
			"  with C(b0,b):    mAP %.1f%%  p95 %.1f ms  switches %d\n"+
			"  without C(b0,b): mAP %.1f%%  p95 %.1f ms  switches %d\n",
		with.MAP()*100, with.Latency.P95(), with.Switches,
		without.MAP()*100, without.Latency.P95(), without.Switches))
	b.ReportMetric(float64(without.Switches-with.Switches), "extra_switches")
}

// BenchmarkAblationHysteresis removes the reconfiguration hysteresis (the
// guard against fruitless switches).
func BenchmarkAblationHysteresis(b *testing.B) {
	set := benchSetup(b)
	var with, without *harness.Result
	for i := 0; i < b.N; i++ {
		with = ablationCell(b, set, nil)
		without = ablationCell(b, set, func(o *core.Options) { o.Hysteresis = -1 })
	}
	printTable("ablation-hysteresis", fmt.Sprintf(
		"Ablation: switch hysteresis (TX2, 50 ms, 50%% contention)\n"+
			"  with hysteresis:    mAP %.1f%%  switches %d\n"+
			"  without hysteresis: mAP %.1f%%  switches %d\n",
		with.MAP()*100, with.Switches, without.MAP()*100, without.Switches))
	b.ReportMetric(float64(without.Switches-with.Switches), "extra_switches")
}

// BenchmarkAblationCostWeight disables the accuracy-equivalent pricing of
// scheduler latency in the feature-selection objective, reverting to a
// constraint-only cost model.
func BenchmarkAblationCostWeight(b *testing.B) {
	set := benchSetup(b)
	var with, without *harness.Result
	for i := 0; i < b.N; i++ {
		with = ablationCell(b, set, nil)
		without = ablationCell(b, set, func(o *core.Options) { o.CostWeight = -1 })
	}
	schedShare := func(r *harness.Result) float64 {
		return r.Breakdown.PerFrame("scheduler") / 50 * 100
	}
	printTable("ablation-costweight", fmt.Sprintf(
		"Ablation: feature-cost pricing in the selection objective (TX2, 50 ms, 50%% contention)\n"+
			"  with pricing:    mAP %.1f%%  scheduler %.1f%% of SLO  p95 %.1f ms\n"+
			"  without pricing: mAP %.1f%%  scheduler %.1f%% of SLO  p95 %.1f ms\n",
		with.MAP()*100, schedShare(with), with.Latency.P95(),
		without.MAP()*100, schedShare(without), without.Latency.P95()))
	b.ReportMetric(schedShare(without)-schedShare(with), "extra_overhead%")
}

// BenchmarkAblationSafetyFactor removes the planning headroom (safety
// factor 1.0 instead of 0.90) and reports the SLO violation rate.
func BenchmarkAblationSafetyFactor(b *testing.B) {
	set := benchSetup(b)
	var with, without *harness.Result
	for i := 0; i < b.N; i++ {
		with = ablationCell(b, set, nil)
		without = ablationCell(b, set, func(o *core.Options) { o.SafetyFactor = 1.0 })
	}
	printTable("ablation-safety", fmt.Sprintf(
		"Ablation: planning safety factor (TX2, 50 ms, 50%% contention)\n"+
			"  factor 0.90: mAP %.1f%%  p95 %.1f ms  violations %.2f%%\n"+
			"  factor 1.00: mAP %.1f%%  p95 %.1f ms  violations %.2f%%\n",
		with.MAP()*100, with.Latency.P95(), with.Latency.ViolationRate(50)*100,
		without.MAP()*100, without.Latency.P95(), without.Latency.ViolationRate(50)*100))
	b.ReportMetric(without.Latency.ViolationRate(50)*100, "violation%")
}

// BenchmarkAblationContentionSensor contrasts the deployed configuration
// (contention sensed from detector latencies) with an oracle that reads
// the simulator's true contention level.
func BenchmarkAblationContentionSensor(b *testing.B) {
	set := benchSetup(b)
	var sensed, oracle *harness.Result
	for i := 0; i < b.N; i++ {
		sensed = ablationCell(b, set, nil)
		oracle = ablationCell(b, set, func(o *core.Options) { o.OracleContention = true })
	}
	printTable("ablation-sensor", fmt.Sprintf(
		"Ablation: contention sensing vs oracle (TX2, 50 ms, 50%% contention)\n"+
			"  sensed:  mAP %.1f%%  p95 %.1f ms  violations %.2f%%\n"+
			"  oracle:  mAP %.1f%%  p95 %.1f ms  violations %.2f%%\n",
		sensed.MAP()*100, sensed.Latency.P95(), sensed.Latency.ViolationRate(50)*100,
		oracle.MAP()*100, oracle.Latency.P95(), oracle.Latency.ViolationRate(50)*100))
	b.ReportMetric((oracle.MAP()-sensed.MAP())*100, "oracle_gain_mAP%")
}

// BenchmarkAblationDriftCompensation contrasts the CPU-drift estimator
// (Sec. 6 online drift) against trusting the offline profile, on a board
// whose CPU throttles to 1.8x the profiled cost.
func BenchmarkAblationDriftCompensation(b *testing.B) {
	set := benchSetup(b)
	throttled := simlat.TX2
	throttled.Name = "tx2-hot"
	throttled.CPUFactor = 1.8
	assumed := simlat.TX2
	run := func(disable bool) *harness.Result {
		p, err := core.NewPipeline(core.Options{Models: set.Models, SLO: 33.3,
			Policy: core.PolicyFull, AssumedDevice: &assumed,
			DisableDriftCompensation: disable})
		if err != nil {
			b.Fatal(err)
		}
		return harness.Evaluate(p, set.Corpus.Val, throttled, 33.3,
			contend.Fixed{}, 1234)
	}
	var with, without *harness.Result
	for i := 0; i < b.N; i++ {
		with = run(false)
		without = run(true)
	}
	printTable("ablation-drift", fmt.Sprintf(
		"Ablation: CPU-drift estimator on a throttled board (TX2 CPU x1.8, 33.3 ms)\n"+
			"  with estimator:    mAP %.1f%%  p95 %.1f ms  violations %.2f%%\n"+
			"  without estimator: mAP %.1f%%  p95 %.1f ms  violations %.2f%%\n",
		with.MAP()*100, with.Latency.P95(), with.Latency.ViolationRate(33.3)*100,
		without.MAP()*100, without.Latency.P95(), without.Latency.ViolationRate(33.3)*100))
	b.ReportMetric(without.Latency.ViolationRate(33.3)*100, "uncomp_violation%")
}

// BenchmarkEndToEndPipeline measures the raw simulation throughput of the
// full system (frames simulated per wall-clock second).
func BenchmarkEndToEndPipeline(b *testing.B) {
	set := benchSetup(b)
	video := set.Corpus.Val[0]
	p, err := core.NewPipeline(core.Options{Models: set.Models, SLO: 33.3,
		Policy: core.PolicyFull})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	frames := 0
	for i := 0; i < b.N; i++ {
		harness.Evaluate(p, set.Corpus.Val[:1], simlat.TX2, 33.3, contend.Fixed{}, int64(i))
		frames += video.Len()
	}
	b.ReportMetric(float64(frames)/b.Elapsed().Seconds(), "frames/s")
}

// benchServeResult is the BENCH_serve.json schema: the serving engine's
// headline numbers, recorded by CI on every run so the perf trajectory
// is visible across commits. Latencies are simulated milliseconds over
// GoF-averaged per-frame samples, merged across all streams.
type benchServeResult struct {
	Streams    int     `json:"streams"`
	Frames     int     `json:"frames"`
	MeanMS     float64 `json:"mean_gof_ms"`
	P99MS      float64 `json:"p99_gof_ms"`
	AttainRate float64 `json:"slo_attain_rate"`
}

// BenchmarkServeEngine drives the multi-stream serving engine — six
// streams with mixed SLOs on one board — and writes BENCH_serve.json
// with the merged mean/p99 GoF latency and the SLO attainment rate.
func BenchmarkServeEngine(b *testing.B) {
	set, err := fixture.Small()
	if err != nil {
		b.Fatal(err)
	}
	var out benchServeResult
	for i := 0; i < b.N; i++ {
		srv, err := serve.New(serve.Options{Models: set.Models})
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < 6; s++ {
			v := vid.Generate(fmt.Sprintf("bench_serve_%d", s), 500+int64(s),
				vid.GenConfig{Frames: 90})
			if _, err := srv.Submit(serve.StreamConfig{
				Video: v, SLO: []float64{50, 100}[s%2], Seed: int64(s) + 1,
			}); err != nil {
				b.Fatal(err)
			}
		}
		res := srv.Drain()
		var lat metric.LatencySeries
		out = benchServeResult{AttainRate: res.AttainRate}
		for _, sr := range res.Streams {
			out.Streams++
			out.Frames += sr.Frames
			if sr.Raw != nil {
				for _, ms := range sr.Raw.Latency.Samples() {
					lat.Add(ms)
				}
			}
		}
		out.MeanMS, out.P99MS = lat.Mean(), lat.P99()
	}
	b.ReportMetric(out.MeanMS, "mean_gof_ms")
	b.ReportMetric(out.P99MS, "p99_gof_ms")
	b.ReportMetric(out.AttainRate*100, "attain%")

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// benchAdaptResult is the BENCH_adapt.json schema: the online-adaptation
// subsystem's headline numbers under the examples/drift scenario (1.8x
// CPU-throttle, hand-built drift estimator disabled). ErrReduction is
// the tentpole acceptance metric — the fraction of the frozen models'
// mean |predicted − realized| GoF latency error that refit removes
// (the acceptance floor is 0.40).
type benchAdaptResult struct {
	FrozenErrMS  float64 `json:"frozen_err_ms"`
	AdaptedErrMS float64 `json:"adapted_err_ms"`
	ErrReduction float64 `json:"err_reduction"`
	Promotions   int     `json:"promotions"`
	Demotions    int     `json:"demotions"`
	Refits       int     `json:"refits"`
}

// BenchmarkAdaptDrift runs the seeded CPU-throttle drift scenario with
// frozen and with online-refit models and writes BENCH_adapt.json with
// the prediction-error reduction and the rollout counts.
func BenchmarkAdaptDrift(b *testing.B) {
	set, err := fixture.Small()
	if err != nil {
		b.Fatal(err)
	}
	throttled := simlat.TX2
	throttled.Name = "tx2-throttled"
	throttled.CPUFactor = 1.8
	assumed := simlat.TX2

	run := func(cfg *adapt.Config) (*obs.Observer, *core.Scheduler) {
		observer := obs.New()
		p, err := core.NewPipeline(core.Options{
			Models: set.Models, SLO: 33.3, Policy: core.PolicyFull,
			AssumedDevice:            &assumed,
			DisableDriftCompensation: true,
			Adapt:                    cfg,
			Observer:                 observer.StreamObserver(0, "drift"),
		})
		if err != nil {
			b.Fatal(err)
		}
		harness.Evaluate(p, set.Corpus.Val, throttled, 33.3, contend.Fixed{}, 9)
		return observer, p.Sched
	}
	meanAbsErr := func(ds []obs.Decision) float64 {
		sum, n := 0.0, 0
		for _, d := range ds {
			if d.GoFFrames <= 0 {
				continue
			}
			sum += math.Abs(d.PredLatencyMS - d.RealizedMS)
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}

	var out benchAdaptResult
	for i := 0; i < b.N; i++ {
		frozenObs, _ := run(nil)
		adaptObs, sch := run(&adapt.Config{Label: "s0"})
		a := sch.Adapter()
		out = benchAdaptResult{
			FrozenErrMS:  meanAbsErr(frozenObs.Decisions()),
			AdaptedErrMS: meanAbsErr(adaptObs.Decisions()),
			Promotions:   a.Promotions(),
			Demotions:    a.Demotions(),
			Refits:       a.Refits(),
		}
		if out.FrozenErrMS > 0 {
			out.ErrReduction = 1 - out.AdaptedErrMS/out.FrozenErrMS
		}
	}
	b.ReportMetric(out.FrozenErrMS, "frozen_err_ms")
	b.ReportMetric(out.AdaptedErrMS, "adapted_err_ms")
	b.ReportMetric(out.ErrReduction*100, "err_reduction%")

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_adapt.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDecisionPath isolates the scheduler's per-GoF decision — the
// hot path the zero-allocation campaign (DESIGN.md §14) keeps off the
// heap. Run with -benchmem: a nonzero allocs/op here is the regression
// the cmd/lrperf CI gate fails on, and this benchmark is the quick local
// repro for it.
func BenchmarkDecisionPath(b *testing.B) {
	set := benchSetup(b)
	models, err := set.Models.Clone()
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewPipeline(core.Options{
		Models: models,
		SLO:    50,
		Policy: core.PolicyFull,
	})
	if err != nil {
		b.Fatal(err)
	}
	clock := simlat.NewClock(simlat.TX2, 1)
	clock.SetContention(0.2)
	k := mbek.NewKernel(p.Det, clock)
	v := vid.Generate("bench-decision", 42, vid.GenConfig{Frames: 120})
	k.Start(v)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := v.Frames[i%len(v.Frames)]
		br := p.Sched.Decide(k, clock, v, f)
		k.SetBranch(br, i)
	}
}
