package metric

import (
	"fmt"
	"math"
	"sort"
)

// LatencySeries accumulates per-frame latency samples (simulated
// milliseconds) and answers the statistics the paper reports: mean, P95
// (its SLO metric), and the SLO violation rate. Samples keep their
// insertion order; percentile queries sort a cached copy.
type LatencySeries struct {
	samples []float64
	sorted  []float64 // cache; nil when stale
	scratch []float64 // PercentileSince window buffer, reused across calls
}

// Add appends one latency sample.
func (s *LatencySeries) Add(ms float64) {
	s.samples = append(s.samples, ms)
	s.sorted = nil
}

// Count returns the number of samples.
func (s *LatencySeries) Count() int { return len(s.samples) }

// Samples returns the samples in insertion (chronological) order. The
// returned slice is a copy.
func (s *LatencySeries) Samples() []float64 {
	return append([]float64(nil), s.samples...)
}

// PercentileSince returns the p-th percentile (nearest rank) of the
// samples from index i onward, or 0 when the index is at or past the
// end (including an empty series) — the recent-window statistic the
// serving engine reads at each round barrier for every stream. The
// window is sorted on a scratch buffer owned by the series and reused
// across calls, so a barrier sweep allocates nothing once the buffer
// has grown to the window size; the series' own order and cache are
// untouched.
func (s *LatencySeries) PercentileSince(i int, p float64) float64 {
	if i < 0 {
		i = 0
	}
	if i >= len(s.samples) {
		return 0
	}
	win := append(s.scratch[:0], s.samples[i:]...)
	s.scratch = win
	sort.Float64s(win)
	if p <= 0 {
		return win[0]
	}
	if p >= 100 {
		return win[len(win)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(win))))
	if rank < 1 {
		rank = 1
	}
	return win[rank-1]
}

// Mean returns the arithmetic mean, or 0 with no samples.
func (s *LatencySeries) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.samples {
		sum += v
	}
	return sum / float64(len(s.samples))
}

// ensureSorted refreshes the sorted cache.
func (s *LatencySeries) ensureSorted() {
	if s.sorted == nil {
		s.sorted = append([]float64(nil), s.samples...)
		sort.Float64s(s.sorted)
	}
}

// Percentile returns the p-th percentile (p in [0, 100]) using the
// nearest-rank method. It returns 0 with no samples.
func (s *LatencySeries) Percentile(p float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.sorted[0]
	}
	if p >= 100 {
		return s.sorted[len(s.sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.sorted))))
	if rank < 1 {
		rank = 1
	}
	return s.sorted[rank-1]
}

// P95 returns the 95th-percentile latency, the paper's headline latency
// metric (it targets an SLO violation rate under 5%).
func (s *LatencySeries) P95() float64 { return s.Percentile(95) }

// P99 returns the 99th-percentile latency, the tail the serving bench
// records alongside the mean.
func (s *LatencySeries) P99() float64 { return s.Percentile(99) }

// Max returns the maximum sample, or 0 with no samples.
func (s *LatencySeries) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.sorted[len(s.sorted)-1]
}

// ViolationRate returns the fraction of samples strictly above slo.
func (s *LatencySeries) ViolationRate(slo float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	n := 0
	for _, v := range s.samples {
		if v > slo {
			n++
		}
	}
	return float64(n) / float64(len(s.samples))
}

// MeetsSLO reports whether the P95 latency is within the SLO — the
// paper's pass/fail criterion for a protocol (rows marked "F" in Table 2
// violate it).
func (s *LatencySeries) MeetsSLO(slo float64) bool {
	return s.Count() > 0 && s.P95() <= slo+1e-9
}

// Breakdown accumulates per-component latency totals, feeding the
// Figure 3 "percentage latency of each system component" plot. Components
// are free-form labels such as "detector", "tracker", "scheduler",
// "switch".
type Breakdown struct {
	totals map[string]float64
	frames int
}

// NewBreakdown returns an empty breakdown accumulator.
func NewBreakdown() *Breakdown {
	return &Breakdown{totals: map[string]float64{}}
}

// Charge adds ms of latency to the named component.
func (b *Breakdown) Charge(component string, ms float64) {
	b.totals[component] += ms
}

// AddFrames records that n frames were processed (the denominator for
// per-frame averages).
func (b *Breakdown) AddFrames(n int) { b.frames += n }

// Frames returns the number of frames recorded.
func (b *Breakdown) Frames() int { return b.frames }

// PerFrame returns the mean per-frame latency of the named component.
func (b *Breakdown) PerFrame(component string) float64 {
	if b.frames == 0 {
		return 0
	}
	return b.totals[component] / float64(b.frames)
}

// Total returns the accumulated latency of the named component.
func (b *Breakdown) Total(component string) float64 { return b.totals[component] }

// Components returns the component names in sorted order.
func (b *Breakdown) Components() []string {
	out := make([]string, 0, len(b.totals))
	for k := range b.totals {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Merge adds all of other's totals and frame count into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for k, v := range other.totals {
		b.totals[k] += v
	}
	b.frames += other.frames
}

// String renders the per-frame breakdown for debugging.
func (b *Breakdown) String() string {
	s := ""
	for _, c := range b.Components() {
		s += fmt.Sprintf("%s=%.2fms/frame ", c, b.PerFrame(c))
	}
	return s
}
