package metric

import (
	"math/rand"
	"testing"

	"litereconfig/internal/geom"
	"litereconfig/internal/vid"
)

// randomScene builds a random frame-result set.
func randomScene(rng *rand.Rand, frames, objects int) []FrameResult {
	out := make([]FrameResult, frames)
	for f := range out {
		for o := 0; o < objects; o++ {
			b := geom.Rect{X: rng.Float64() * 300, Y: rng.Float64() * 300,
				W: 20 + rng.Float64()*40, H: 20 + rng.Float64()*40}
			cls := vid.Class(rng.Intn(5))
			out[f].Truth = append(out[f].Truth, vid.Object{ID: o, Class: cls, Box: b})
			if rng.Float64() < 0.8 {
				jb := b.Translate(rng.NormFloat64()*4, rng.NormFloat64()*4)
				out[f].Dets = append(out[f].Dets, Detection{
					Class: cls, Box: jb, Score: rng.Float64(),
				})
			}
		}
	}
	return out
}

func TestAPBoundedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		frames := randomScene(rng, 1+rng.Intn(20), 1+rng.Intn(4))
		m := MeanAP(frames, DefaultIoU)
		if m < 0 || m > 1 {
			t.Fatalf("mAP out of [0,1]: %v", m)
		}
		for cls, r := range PerClassAP(frames, DefaultIoU) {
			if r.AP < 0 || r.AP > 1 {
				t.Fatalf("AP[%v] out of range: %v", cls, r.AP)
			}
			if r.Matched > r.Truths {
				t.Fatalf("matched %d > truths %d", r.Matched, r.Truths)
			}
		}
	}
}

func TestFalsePositiveNeverIncreasesAP(t *testing.T) {
	// Property: inserting a detection that matches no ground truth of its
	// class can only lower (or keep) every class's AP, at any score.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 80; trial++ {
		frames := randomScene(rng, 1+rng.Intn(10), 1+rng.Intn(3))
		before := PerClassAP(frames, DefaultIoU)

		fi := rng.Intn(len(frames))
		cls := vid.Class(rng.Intn(5))
		// A far-away box cannot reach IoU 0.5 with anything in [0,340].
		fp := Detection{Class: cls,
			Box:   geom.Rect{X: 5000, Y: 5000, W: 30, H: 30},
			Score: rng.Float64()}
		frames[fi].Dets = append(frames[fi].Dets, fp)

		after := PerClassAP(frames, DefaultIoU)
		for c, b := range before {
			if after[c].AP > b.AP+1e-12 {
				t.Fatalf("trial %d: AP[%v] rose %.6f -> %.6f after FP insertion",
					trial, c, b.AP, after[c].AP)
			}
		}
	}
}

func TestMatchingIsOneToOne(t *testing.T) {
	// Property: the number of matched detections never exceeds the number
	// of ground-truth objects per class.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		frames := randomScene(rng, 5, 3)
		// Duplicate every detection to stress the dedup path.
		for fi := range frames {
			frames[fi].Dets = append(frames[fi].Dets, frames[fi].Dets...)
		}
		for cls, r := range PerClassAP(frames, DefaultIoU) {
			if r.Matched > r.Truths {
				t.Fatalf("class %v matched %d > %d truths", cls, r.Matched, r.Truths)
			}
		}
	}
}

func TestLooserIoUNeverLowersAP(t *testing.T) {
	// Property: relaxing the IoU threshold can only help.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		frames := randomScene(rng, 8, 3)
		strict := MeanAP(frames, 0.7)
		loose := MeanAP(frames, 0.3)
		if loose < strict-1e-12 {
			t.Fatalf("loosening IoU lowered mAP: %.4f -> %.4f", strict, loose)
		}
	}
}
