package metric

import (
	"math"
	"math/rand"
	"testing"

	"litereconfig/internal/geom"
	"litereconfig/internal/vid"
)

func box(x, y, w, h float64) geom.Rect { return geom.Rect{X: x, Y: y, W: w, H: h} }

func TestPerfectDetectionsGiveAPOne(t *testing.T) {
	frames := []FrameResult{
		{
			Truth: []vid.Object{{ID: 1, Class: vid.Car, Box: box(0, 0, 10, 10)}},
			Dets:  []Detection{{Class: vid.Car, Box: box(0, 0, 10, 10), Score: 0.9}},
		},
		{
			Truth: []vid.Object{{ID: 1, Class: vid.Car, Box: box(5, 5, 10, 10)}},
			Dets:  []Detection{{Class: vid.Car, Box: box(5, 5, 10, 10), Score: 0.8}},
		},
	}
	if got := MeanAP(frames, DefaultIoU); math.Abs(got-1) > 1e-9 {
		t.Fatalf("mAP = %v, want 1", got)
	}
}

func TestNoDetectionsGiveAPZero(t *testing.T) {
	frames := []FrameResult{
		{Truth: []vid.Object{{ID: 1, Class: vid.Dog, Box: box(0, 0, 10, 10)}}},
	}
	if got := MeanAP(frames, DefaultIoU); got != 0 {
		t.Fatalf("mAP = %v, want 0", got)
	}
}

func TestFalsePositivesLowerAP(t *testing.T) {
	clean := []FrameResult{
		{
			Truth: []vid.Object{{ID: 1, Class: vid.Car, Box: box(0, 0, 10, 10)}},
			Dets:  []Detection{{Class: vid.Car, Box: box(0, 0, 10, 10), Score: 0.5}},
		},
	}
	// A higher-scoring false positive ranks above the true positive.
	noisy := []FrameResult{
		{
			Truth: clean[0].Truth,
			Dets: append([]Detection{
				{Class: vid.Car, Box: box(50, 50, 10, 10), Score: 0.9},
			}, clean[0].Dets...),
		},
	}
	apClean := MeanAP(clean, DefaultIoU)
	apNoisy := MeanAP(noisy, DefaultIoU)
	if apNoisy >= apClean {
		t.Fatalf("FP did not lower AP: clean=%v noisy=%v", apClean, apNoisy)
	}
	// With 1 GT: ranked list is [FP, TP] -> precision at recall 1 is 1/2.
	if math.Abs(apNoisy-0.5) > 1e-9 {
		t.Fatalf("AP with leading FP = %v, want 0.5", apNoisy)
	}
}

func TestLowIoUDetectionIsFalsePositive(t *testing.T) {
	frames := []FrameResult{
		{
			Truth: []vid.Object{{ID: 1, Class: vid.Car, Box: box(0, 0, 10, 10)}},
			Dets:  []Detection{{Class: vid.Car, Box: box(8, 8, 10, 10), Score: 0.9}},
		},
	}
	if got := MeanAP(frames, DefaultIoU); got != 0 {
		t.Fatalf("mAP = %v, want 0 (IoU below threshold)", got)
	}
	// The same detection passes a lower threshold.
	if got := MeanAP(frames, 0.01); math.Abs(got-1) > 1e-9 {
		t.Fatalf("mAP at loose threshold = %v, want 1", got)
	}
}

func TestDuplicateDetectionsPenalized(t *testing.T) {
	// Two detections on the same ground truth: the second is a FP.
	frames := []FrameResult{
		{
			Truth: []vid.Object{{ID: 1, Class: vid.Car, Box: box(0, 0, 10, 10)}},
			Dets: []Detection{
				{Class: vid.Car, Box: box(0, 0, 10, 10), Score: 0.9},
				{Class: vid.Car, Box: box(1, 1, 10, 10), Score: 0.8},
			},
		},
	}
	got := MeanAP(frames, DefaultIoU)
	if math.Abs(got-1) > 1e-9 {
		// AP is 1 here: TP comes first, recall reaches 1 at precision 1,
		// and the envelope keeps AP at 1 despite the trailing duplicate.
		t.Fatalf("mAP = %v, want 1 (duplicate ranks after TP)", got)
	}
	per := PerClassAP(frames, DefaultIoU)
	if r := per[vid.Car]; r.Matched != 1 || r.Truths != 1 {
		t.Fatalf("matched=%d truths=%d, want 1/1", r.Matched, r.Truths)
	}
}

func TestWrongClassNeverMatches(t *testing.T) {
	frames := []FrameResult{
		{
			Truth: []vid.Object{{ID: 1, Class: vid.Car, Box: box(0, 0, 10, 10)}},
			Dets:  []Detection{{Class: vid.Dog, Box: box(0, 0, 10, 10), Score: 0.9}},
		},
	}
	if got := MeanAP(frames, DefaultIoU); got != 0 {
		t.Fatalf("mAP = %v, want 0 for class mismatch", got)
	}
}

func TestMeanAPAveragesOverClasses(t *testing.T) {
	// Car detected perfectly, Dog missed entirely: mAP = 0.5.
	frames := []FrameResult{
		{
			Truth: []vid.Object{
				{ID: 1, Class: vid.Car, Box: box(0, 0, 10, 10)},
				{ID: 2, Class: vid.Dog, Box: box(30, 30, 10, 10)},
			},
			Dets: []Detection{{Class: vid.Car, Box: box(0, 0, 10, 10), Score: 0.9}},
		},
	}
	if got := MeanAP(frames, DefaultIoU); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("mAP = %v, want 0.5", got)
	}
}

func TestHalfRecallAP(t *testing.T) {
	// Two GT objects, one detected: AP = 0.5 (precision 1 up to recall 0.5).
	frames := []FrameResult{
		{
			Truth: []vid.Object{
				{ID: 1, Class: vid.Car, Box: box(0, 0, 10, 10)},
				{ID: 2, Class: vid.Car, Box: box(50, 50, 10, 10)},
			},
			Dets: []Detection{{Class: vid.Car, Box: box(0, 0, 10, 10), Score: 0.9}},
		},
	}
	if got := MeanAP(frames, DefaultIoU); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("mAP = %v, want 0.5", got)
	}
}

func TestScoreOrderingMatters(t *testing.T) {
	// Better-calibrated scores (TPs ranked above FPs) must yield higher AP
	// for the same detection set.
	truth := []vid.Object{
		{ID: 1, Class: vid.Car, Box: box(0, 0, 10, 10)},
		{ID: 2, Class: vid.Car, Box: box(40, 40, 10, 10)},
	}
	good := []FrameResult{{Truth: truth, Dets: []Detection{
		{Class: vid.Car, Box: box(0, 0, 10, 10), Score: 0.9},
		{Class: vid.Car, Box: box(40, 40, 10, 10), Score: 0.8},
		{Class: vid.Car, Box: box(80, 80, 10, 10), Score: 0.1},
	}}}
	bad := []FrameResult{{Truth: truth, Dets: []Detection{
		{Class: vid.Car, Box: box(0, 0, 10, 10), Score: 0.2},
		{Class: vid.Car, Box: box(40, 40, 10, 10), Score: 0.1},
		{Class: vid.Car, Box: box(80, 80, 10, 10), Score: 0.9},
	}}}
	if MeanAP(good, DefaultIoU) <= MeanAP(bad, DefaultIoU) {
		t.Fatalf("score ordering not rewarded: good=%v bad=%v",
			MeanAP(good, DefaultIoU), MeanAP(bad, DefaultIoU))
	}
}

func TestAPMonotoneInNoise(t *testing.T) {
	// Property: increasing localization noise can only reduce (or keep)
	// AP, averaged over many random scenes.
	rng := rand.New(rand.NewSource(42))
	apAtNoise := func(noise float64) float64 {
		var frames []FrameResult
		for f := 0; f < 60; f++ {
			var fr FrameResult
			for o := 0; o < 3; o++ {
				b := box(rng.Float64()*200, rng.Float64()*200, 30, 30)
				fr.Truth = append(fr.Truth, vid.Object{ID: o, Class: vid.Car, Box: b})
				jb := b.Translate(rng.NormFloat64()*noise, rng.NormFloat64()*noise)
				fr.Dets = append(fr.Dets, Detection{Class: vid.Car, Box: jb, Score: rng.Float64()})
			}
			frames = append(frames, fr)
		}
		return MeanAP(frames, DefaultIoU)
	}
	a0, a5, a20 := apAtNoise(0), apAtNoise(5), apAtNoise(20)
	if !(a0 >= a5 && a5 >= a20) {
		t.Fatalf("AP not monotone in noise: %v %v %v", a0, a5, a20)
	}
	if a0 < 0.999 {
		t.Fatalf("zero-noise AP = %v, want ~1", a0)
	}
}

func TestEmptyInput(t *testing.T) {
	if MeanAP(nil, DefaultIoU) != 0 {
		t.Error("nil frames should give 0")
	}
	if len(PerClassAP([]FrameResult{{}}, DefaultIoU)) != 0 {
		t.Error("no ground truth should give empty per-class map")
	}
}
