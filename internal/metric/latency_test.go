package metric

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestLatencyBasics(t *testing.T) {
	var s LatencySeries
	if s.Mean() != 0 || s.P95() != 0 || s.Max() != 0 || s.Count() != 0 {
		t.Fatal("empty series should be all zeros")
	}
	for _, v := range []float64{10, 20, 30, 40} {
		s.Add(v)
	}
	if s.Count() != 4 {
		t.Fatalf("count = %d", s.Count())
	}
	if math.Abs(s.Mean()-25) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Max() != 40 {
		t.Fatalf("max = %v", s.Max())
	}
}

func TestPercentileNearestRank(t *testing.T) {
	var s LatencySeries
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 1}, {50, 50}, {95, 95}, {100, 100}, {150, 100},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if s.P95() != 95 {
		t.Errorf("P95 = %v", s.P95())
	}
}

func TestPercentileAfterInterleavedAdds(t *testing.T) {
	// Adding after a percentile query must re-sort.
	var s LatencySeries
	s.Add(5)
	s.Add(1)
	if s.Percentile(100) != 5 {
		t.Fatal("initial max wrong")
	}
	s.Add(10)
	if s.Percentile(100) != 10 {
		t.Fatal("series did not re-sort after Add")
	}
}

func TestViolationRateAndMeetsSLO(t *testing.T) {
	var s LatencySeries
	for i := 0; i < 100; i++ {
		if i < 96 {
			s.Add(10)
		} else {
			s.Add(50)
		}
	}
	if got := s.ViolationRate(30); math.Abs(got-0.04) > 1e-12 {
		t.Fatalf("violation rate = %v, want 0.04", got)
	}
	// 4% of samples exceed 30ms, so P95 <= 30: the SLO holds.
	if !s.MeetsSLO(30) {
		t.Fatal("SLO should hold with 4% violations")
	}
	// With 6% violations it must fail.
	var s2 LatencySeries
	for i := 0; i < 100; i++ {
		if i < 94 {
			s2.Add(10)
		} else {
			s2.Add(50)
		}
	}
	if s2.MeetsSLO(30) {
		t.Fatal("SLO should fail with 6% violations")
	}
	var empty LatencySeries
	if empty.MeetsSLO(1000) {
		t.Fatal("empty series never meets an SLO")
	}
}

func TestPercentileMatchesSortedIndexQuick(t *testing.T) {
	f := func(raw []float64) bool {
		var s LatencySeries
		var clean []float64
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
			clean = append(clean, v)
		}
		if len(clean) == 0 {
			return true
		}
		sort.Float64s(clean)
		p := 95.0
		rank := int(math.Ceil(p / 100 * float64(len(clean))))
		if rank < 1 {
			rank = 1
		}
		return s.Percentile(p) == clean[rank-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var s LatencySeries
	for i := 0; i < 1000; i++ {
		s.Add(rng.Float64() * 100)
	}
	if s.Mean() < s.Percentile(0) || s.Mean() > s.Max() {
		t.Fatalf("mean %v outside [min %v, max %v]", s.Mean(), s.Percentile(0), s.Max())
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown()
	b.Charge("detector", 100)
	b.Charge("tracker", 20)
	b.Charge("detector", 50)
	b.AddFrames(10)
	if b.Total("detector") != 150 {
		t.Fatalf("detector total = %v", b.Total("detector"))
	}
	if b.PerFrame("detector") != 15 {
		t.Fatalf("detector per-frame = %v", b.PerFrame("detector"))
	}
	if b.PerFrame("tracker") != 2 {
		t.Fatalf("tracker per-frame = %v", b.PerFrame("tracker"))
	}
	if b.Frames() != 10 {
		t.Fatalf("frames = %d", b.Frames())
	}
	comps := b.Components()
	if len(comps) != 2 || comps[0] != "detector" || comps[1] != "tracker" {
		t.Fatalf("components = %v", comps)
	}

	b2 := NewBreakdown()
	b2.Charge("scheduler", 5)
	b2.AddFrames(5)
	b.Merge(b2)
	if b.Frames() != 15 || b.Total("scheduler") != 5 {
		t.Fatalf("merge failed: frames=%d sched=%v", b.Frames(), b.Total("scheduler"))
	}
	if b.String() == "" {
		t.Fatal("String should not be empty")
	}
	zero := NewBreakdown()
	if zero.PerFrame("x") != 0 {
		t.Fatal("per-frame with zero frames should be 0")
	}
}
