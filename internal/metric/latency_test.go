package metric

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestLatencyBasics(t *testing.T) {
	var s LatencySeries
	if s.Mean() != 0 || s.P95() != 0 || s.Max() != 0 || s.Count() != 0 {
		t.Fatal("empty series should be all zeros")
	}
	for _, v := range []float64{10, 20, 30, 40} {
		s.Add(v)
	}
	if s.Count() != 4 {
		t.Fatalf("count = %d", s.Count())
	}
	if math.Abs(s.Mean()-25) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Max() != 40 {
		t.Fatalf("max = %v", s.Max())
	}
}

func TestPercentileNearestRank(t *testing.T) {
	var s LatencySeries
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 1}, {50, 50}, {95, 95}, {100, 100}, {150, 100},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if s.P95() != 95 {
		t.Errorf("P95 = %v", s.P95())
	}
}

func TestPercentileAfterInterleavedAdds(t *testing.T) {
	// Adding after a percentile query must re-sort.
	var s LatencySeries
	s.Add(5)
	s.Add(1)
	if s.Percentile(100) != 5 {
		t.Fatal("initial max wrong")
	}
	s.Add(10)
	if s.Percentile(100) != 10 {
		t.Fatal("series did not re-sort after Add")
	}
}

func TestViolationRateAndMeetsSLO(t *testing.T) {
	var s LatencySeries
	for i := 0; i < 100; i++ {
		if i < 96 {
			s.Add(10)
		} else {
			s.Add(50)
		}
	}
	if got := s.ViolationRate(30); math.Abs(got-0.04) > 1e-12 {
		t.Fatalf("violation rate = %v, want 0.04", got)
	}
	// 4% of samples exceed 30ms, so P95 <= 30: the SLO holds.
	if !s.MeetsSLO(30) {
		t.Fatal("SLO should hold with 4% violations")
	}
	// With 6% violations it must fail.
	var s2 LatencySeries
	for i := 0; i < 100; i++ {
		if i < 94 {
			s2.Add(10)
		} else {
			s2.Add(50)
		}
	}
	if s2.MeetsSLO(30) {
		t.Fatal("SLO should fail with 6% violations")
	}
	var empty LatencySeries
	if empty.MeetsSLO(1000) {
		t.Fatal("empty series never meets an SLO")
	}
}

func TestPercentileMatchesSortedIndexQuick(t *testing.T) {
	f := func(raw []float64) bool {
		var s LatencySeries
		var clean []float64
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
			clean = append(clean, v)
		}
		if len(clean) == 0 {
			return true
		}
		sort.Float64s(clean)
		p := 95.0
		rank := int(math.Ceil(p / 100 * float64(len(clean))))
		if rank < 1 {
			rank = 1
		}
		return s.Percentile(p) == clean[rank-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var s LatencySeries
	for i := 0; i < 1000; i++ {
		s.Add(rng.Float64() * 100)
	}
	if s.Mean() < s.Percentile(0) || s.Mean() > s.Max() {
		t.Fatalf("mean %v outside [min %v, max %v]", s.Mean(), s.Percentile(0), s.Max())
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown()
	b.Charge("detector", 100)
	b.Charge("tracker", 20)
	b.Charge("detector", 50)
	b.AddFrames(10)
	if b.Total("detector") != 150 {
		t.Fatalf("detector total = %v", b.Total("detector"))
	}
	if b.PerFrame("detector") != 15 {
		t.Fatalf("detector per-frame = %v", b.PerFrame("detector"))
	}
	if b.PerFrame("tracker") != 2 {
		t.Fatalf("tracker per-frame = %v", b.PerFrame("tracker"))
	}
	if b.Frames() != 10 {
		t.Fatalf("frames = %d", b.Frames())
	}
	comps := b.Components()
	if len(comps) != 2 || comps[0] != "detector" || comps[1] != "tracker" {
		t.Fatalf("components = %v", comps)
	}

	b2 := NewBreakdown()
	b2.Charge("scheduler", 5)
	b2.AddFrames(5)
	b.Merge(b2)
	if b.Frames() != 15 || b.Total("scheduler") != 5 {
		t.Fatalf("merge failed: frames=%d sched=%v", b.Frames(), b.Total("scheduler"))
	}
	if b.String() == "" {
		t.Fatal("String should not be empty")
	}
	zero := NewBreakdown()
	if zero.PerFrame("x") != 0 {
		t.Fatal("per-frame with zero frames should be 0")
	}
}

// TestPercentileSinceEdges audits the window edges: an index at or past
// the end (including an empty series) must return 0 rather than panic,
// and extreme p values on a one-sample window must both return that
// sample.
func TestPercentileSinceEdges(t *testing.T) {
	var s LatencySeries
	if got := s.PercentileSince(0, 95); got != 0 {
		t.Fatalf("empty series: got %v, want 0", got)
	}
	if got := s.Percentile(0); got != 0 {
		t.Fatalf("Percentile(0) on empty series: got %v, want 0", got)
	}
	s.Add(42)
	if got := s.PercentileSince(1, 95); got != 0 { // i == len(samples)
		t.Fatalf("i==len: got %v, want 0", got)
	}
	if got := s.PercentileSince(5, 95); got != 0 { // i past the end
		t.Fatalf("i>len: got %v, want 0", got)
	}
	for _, p := range []float64{-10, 0, 50, 100, 150} {
		if got := s.PercentileSince(0, p); got != 42 {
			t.Fatalf("1-sample window p=%v: got %v, want 42", p, got)
		}
	}
	if got := s.PercentileSince(-3, 100); got != 42 { // negative index clamps
		t.Fatalf("negative index: got %v, want 42", got)
	}
}

// TestPercentileSinceScratchReuse proves the reusable scratch buffer
// changes neither results nor the series' own state: interleaved
// windows at different offsets keep matching a fresh copy+sort, the
// chronological sample order survives, and a steady-state call
// allocates nothing.
func TestPercentileSinceScratchReuse(t *testing.T) {
	var s LatencySeries
	rng := rand.New(rand.NewSource(17))
	naive := func(i int, p float64) float64 {
		win := append([]float64(nil), s.Samples()[i:]...)
		sort.Float64s(win)
		rank := int(math.Ceil(p / 100 * float64(len(win))))
		if rank < 1 {
			rank = 1
		}
		return win[rank-1]
	}
	for n := 0; n < 400; n++ {
		s.Add(rng.Float64() * 100)
		for _, i := range []int{0, n / 2, n} {
			for _, p := range []float64{50, 95, 99} {
				if got, want := s.PercentileSince(i, p), naive(i, p); got != want {
					t.Fatalf("n=%d i=%d p=%v: got %v, want %v", n, i, p, got, want)
				}
			}
		}
	}
	before := s.Samples()
	s.PercentileSince(0, 95)
	after := s.Samples()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("PercentileSince reordered the series' samples")
		}
	}
	allocs := testing.AllocsPerRun(100, func() { s.PercentileSince(100, 95) })
	if allocs != 0 {
		t.Fatalf("steady-state PercentileSince allocates %v/op, want 0", allocs)
	}
}

// TestPercentileSinceRankBoundaries pins the nearest-rank convention on
// exact quantile boundaries: with a 20-sample window, p exactly on a
// k/20 boundary selects the k-th smallest (ceil rounds nothing), and an
// epsilon above bumps to the next rank. It also proves the window start
// is honored exactly: samples before the since-index never leak into
// the rank, and the window boundary between two segments splits the
// quantiles accordingly. The preemption controller relies on this to
// invert the configured admission quantile (tailPct) rather than a
// pre-sorted global tail.
func TestPercentileSinceRankBoundaries(t *testing.T) {
	var s LatencySeries
	// A decoy prefix of huge samples the window must exclude.
	for i := 0; i < 5; i++ {
		s.Add(1e6)
	}
	// Window: 1..20 in shuffled insertion order.
	order := []float64{13, 2, 20, 7, 16, 1, 9, 18, 4, 11, 6, 15, 3, 19, 8, 12, 5, 17, 10, 14}
	for _, v := range order {
		s.Add(v)
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{5, 1},      // ceil(0.05*20) = 1st
		{50, 10},    // exact boundary: ceil(10) = 10th
		{50.0001, 11}, // epsilon above bumps the rank
		{90, 18},    // exact boundary
		{95, 19},    // the admission default
		{99, 20},    // ceil(19.8) = 20th
		{100, 20},   // max
	}
	for _, c := range cases {
		if got := s.PercentileSince(5, c.p); got != c.want {
			t.Fatalf("p=%v over window [5:]: got %v, want %v", c.p, got, c.want)
		}
	}
	// The decoy prefix shifts the whole-series quantiles: 25 samples,
	// p50 rank ceil(12.5) = 13th smallest = 13, and the upper tail is
	// all decoy.
	if got := s.PercentileSince(0, 50); got != 13 {
		t.Fatalf("whole-series p50: got %v, want 13", got)
	}
	if got := s.PercentileSince(0, 99); got != 1e6 {
		t.Fatalf("whole-series p99 should hit the decoys: got %v", got)
	}
	// Quantile inversion across admission settings: the q-quantile of the
	// same window is monotone in q, as the preemption controller assumes
	// when it plans against 100*RiskQuantile instead of the default 95.
	prev := 0.0
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		v := s.PercentileSince(5, 100*q)
		if v < prev {
			t.Fatalf("quantile not monotone: p%v -> %v after %v", 100*q, v, prev)
		}
		prev = v
	}
}
