// Package metric implements the evaluation metrics of the paper: VOC-style
// mean average precision at IoU 0.5 for detection quality, and latency
// percentile statistics (mean, P95, SLO violation rate) for timing.
package metric

import (
	"sort"

	"litereconfig/internal/geom"
	"litereconfig/internal/vid"
)

// Detection is one detector (or tracker) output box with a confidence
// score in [0, 1].
type Detection struct {
	Class vid.Class
	Box   geom.Rect
	Score float64
}

// FrameResult pairs one frame's ground truth with the system's detections
// on that frame.
type FrameResult struct {
	Truth []vid.Object
	Dets  []Detection
}

// DefaultIoU is the matching threshold used by the VID protocol.
const DefaultIoU = 0.5

// flatDet is a detection flattened across frames for the ranked sweep.
type flatDet struct {
	frame int
	det   Detection
}

// APResult holds the per-class average precision and ground-truth count.
type APResult struct {
	AP      float64
	Truths  int
	Matched int
}

// PerClassAP computes VOC-style average precision per class over the
// given frames at the given IoU threshold. Classes with no ground truth
// are omitted from the result.
func PerClassAP(frames []FrameResult, iouThresh float64) map[vid.Class]APResult {
	// Gather per-class ground truth counts and detections.
	truthCount := map[vid.Class]int{}
	dets := map[vid.Class][]flatDet{}
	for fi, fr := range frames {
		for _, o := range fr.Truth {
			truthCount[o.Class]++
		}
		for _, d := range fr.Dets {
			dets[d.Class] = append(dets[d.Class], flatDet{frame: fi, det: d})
		}
	}

	out := make(map[vid.Class]APResult, len(truthCount))
	for cls, n := range truthCount {
		ap, matched := classAP(frames, dets[cls], cls, n, iouThresh)
		out[cls] = APResult{AP: ap, Truths: n, Matched: matched}
	}
	return out
}

// classAP runs the ranked greedy matching sweep for one class.
func classAP(frames []FrameResult, ds []flatDet, cls vid.Class, nTruth int, iouThresh float64) (ap float64, matched int) {
	if nTruth == 0 {
		return 0, 0
	}
	// Sort detections by descending score; ties broken by frame then box
	// for determinism.
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].det.Score != ds[j].det.Score {
			return ds[i].det.Score > ds[j].det.Score
		}
		return ds[i].frame < ds[j].frame
	})

	// used[frame] marks ground-truth objects already claimed.
	used := make(map[int][]bool, len(frames))
	tp := make([]int, 0, len(ds))
	fp := make([]int, 0, len(ds))
	cumTP, cumFP := 0, 0
	for _, fd := range ds {
		fr := frames[fd.frame]
		if used[fd.frame] == nil {
			used[fd.frame] = make([]bool, len(fr.Truth))
		}
		bestIoU := 0.0
		bestIdx := -1
		for gi, o := range fr.Truth {
			if o.Class != cls {
				continue
			}
			iou := fd.det.Box.IoU(o.Box)
			if iou > bestIoU {
				bestIoU = iou
				bestIdx = gi
			}
		}
		if bestIdx >= 0 && bestIoU >= iouThresh && !used[fd.frame][bestIdx] {
			used[fd.frame][bestIdx] = true
			cumTP++
		} else {
			cumFP++
		}
		tp = append(tp, cumTP)
		fp = append(fp, cumFP)
	}
	matched = cumTP

	// Precision/recall curve with the monotone precision envelope
	// (all-point interpolation, as in the post-2010 VOC protocol).
	n := len(tp)
	if n == 0 {
		return 0, 0
	}
	prec := make([]float64, n)
	rec := make([]float64, n)
	for i := 0; i < n; i++ {
		prec[i] = float64(tp[i]) / float64(tp[i]+fp[i])
		rec[i] = float64(tp[i]) / float64(nTruth)
	}
	// Envelope: precision at recall r is the max precision at recall >= r.
	for i := n - 2; i >= 0; i-- {
		if prec[i] < prec[i+1] {
			prec[i] = prec[i+1]
		}
	}
	prevRec := 0.0
	for i := 0; i < n; i++ {
		ap += (rec[i] - prevRec) * prec[i]
		prevRec = rec[i]
	}
	return ap, matched
}

// MeanAP computes the mean of the per-class APs (the paper's mAP metric)
// over the given frames. Frames with no ground truth anywhere yield 0.
func MeanAP(frames []FrameResult, iouThresh float64) float64 {
	per := PerClassAP(frames, iouThresh)
	if len(per) == 0 {
		return 0
	}
	// Sum in sorted class order: map iteration order is random and float
	// addition is not associative, so an unordered sum would make mAP
	// differ in the last ulp across calls on identical inputs.
	classes := make([]vid.Class, 0, len(per))
	for cls := range per {
		classes = append(classes, cls)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	var sum float64
	for _, cls := range classes {
		sum += per[cls].AP
	}
	return sum / float64(len(per))
}
