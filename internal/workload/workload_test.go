package workload

import (
	"math"
	"reflect"
	"testing"
)

func testConfig(seed int64) Config {
	return Config{
		Seed:      seed,
		HorizonMS: 4000,
		Processes: []Process{Constant{PerSec: 2}, Flash{AtMS: 1000, DurationMS: 1000, PerSec: 6}},
		MinFrames: 24, MaxFrames: 72, TailAlpha: 1.5,
	}
}

// The whole point of the generator: a fixed seed is a pure function of
// the config — same arrival times, tiers, tenants, lengths and seeds.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Arrivals) == 0 {
		t.Fatal("no arrivals generated")
	}
	if !reflect.DeepEqual(a.Arrivals, b.Arrivals) {
		t.Fatal("same config, different arrival schedules")
	}
	c, err := Generate(testConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Arrivals, c.Arrivals) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// Arrivals must respect the horizon, be time-ordered, stay within the
// session-length bounds, and only carry tiers from the configured set.
func TestGenerateBounds(t *testing.T) {
	cfg := testConfig(7)
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tiers := map[string]bool{}
	for _, tr := range DefaultTiers() {
		tiers[tr.Name] = true
	}
	last := 0.0
	seeds := map[int64]bool{}
	for i, a := range s.Arrivals {
		if a.Index != i {
			t.Fatalf("arrival %d has Index %d", i, a.Index)
		}
		if a.AtMS < last || a.AtMS >= cfg.HorizonMS {
			t.Fatalf("arrival %d at %.1fms out of order or past horizon", i, a.AtMS)
		}
		last = a.AtMS
		if !tiers[a.Tier.Name] {
			t.Fatalf("arrival %d has unknown tier %q", i, a.Tier.Name)
		}
		if a.Frames < cfg.MinFrames || a.Frames > cfg.MaxFrames {
			t.Fatalf("arrival %d session length %d outside [%d, %d]",
				i, a.Frames, cfg.MinFrames, cfg.MaxFrames)
		}
		if a.Tenant == "" {
			t.Fatalf("arrival %d has no tenant", i)
		}
		if seeds[a.Seed] {
			t.Fatalf("arrival %d reuses stream seed %d", i, a.Seed)
		}
		seeds[a.Seed] = true
	}
}

// StreamConfig materialization must be deterministic and carry the
// tier's SLO, class, and the arrival's tenant and seed.
func TestArrivalStreamConfig(t *testing.T) {
	s, err := Generate(testConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	a := s.Arrivals[0]
	c1, c2 := a.StreamConfig(), a.StreamConfig()
	if c1.Name != c2.Name || c1.Seed != c2.Seed {
		t.Fatal("StreamConfig not deterministic")
	}
	if !reflect.DeepEqual(c1.Video, c2.Video) {
		t.Fatal("video generation not deterministic")
	}
	if c1.SLO != a.Tier.SLOMS || c1.Class != a.Tier.Name || c1.Tenant != a.Tenant {
		t.Fatalf("StreamConfig %+v does not match arrival %+v", c1, a)
	}
	if len(c1.Video.Frames) != a.Frames {
		t.Fatalf("video has %d frames, arrival says %d", len(c1.Video.Frames), a.Frames)
	}
}

// Take must hand out arrivals in order as virtual time passes, and
// Reset must rewind for the next ablation run.
func TestScheduleTakeAndReset(t *testing.T) {
	s, err := Generate(testConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	var got int
	for now := 0.0; now <= testConfig(5).HorizonMS+200; now += 200 {
		for _, cfg := range s.Take(now) {
			if cfg.Video == nil {
				t.Fatal("materialized config without video")
			}
			got++
		}
	}
	if got != len(s.Arrivals) {
		t.Fatalf("Take handed out %d of %d arrivals", got, len(s.Arrivals))
	}
	if !s.Exhausted() {
		t.Fatal("schedule not exhausted after full sweep")
	}
	s.Reset()
	if s.Exhausted() {
		t.Fatal("Reset did not rewind")
	}
	if n := len(s.Take(testConfig(5).HorizonMS)); n != len(s.Arrivals) {
		t.Fatalf("after Reset, Take(horizon) = %d arrivals, want %d", n, len(s.Arrivals))
	}
}

// Rate processes: diurnal starts at its trough and peaks mid-period;
// flash is a rectangle; peaks bound rates.
func TestProcessShapes(t *testing.T) {
	d := Diurnal{Base: 1, Amplitude: 4, PeriodMS: 2000}
	if got := d.Rate(0); math.Abs(got-1) > 1e-9 {
		t.Fatalf("diurnal trough = %v, want 1", got)
	}
	if got := d.Rate(1000); math.Abs(got-5) > 1e-9 {
		t.Fatalf("diurnal peak = %v, want 5", got)
	}
	fl := Flash{AtMS: 100, DurationMS: 50, PerSec: 9}
	if fl.Rate(99) != 0 || fl.Rate(100) != 9 || fl.Rate(149) != 9 || fl.Rate(150) != 0 {
		t.Fatal("flash rectangle edges wrong")
	}
	for _, p := range []Process{d, fl, Constant{PerSec: 3}} {
		for tMS := 0.0; tMS < 4000; tMS += 37 {
			if p.Rate(tMS) > p.Peak()+1e-9 {
				t.Fatalf("%T rate %v exceeds peak %v at t=%v", p, p.Rate(tMS), p.Peak(), tMS)
			}
		}
	}
}

// Tier shares must roughly steer the mix: with enough arrivals the
// best-effort majority outnumbers the gold minority.
func TestTierShares(t *testing.T) {
	cfg := testConfig(3)
	cfg.HorizonMS = 60000
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	by := s.ByTier()
	if by["besteffort"] <= by["gold"] {
		t.Fatalf("tier mix %v: best-effort (share 0.5) should outnumber gold (share 0.2)", by)
	}
	total := 0
	for _, n := range by {
		total += n
	}
	if total != len(s.Arrivals) {
		t.Fatalf("ByTier total %d != %d arrivals", total, len(s.Arrivals))
	}
}

func TestScenarios(t *testing.T) {
	for _, name := range ScenarioNames() {
		for _, scale := range ScaleNames() {
			cfg, err := Scenario(name, scale, 7)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, scale, err)
			}
			s, err := Generate(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, scale, err)
			}
			if len(s.Arrivals) == 0 {
				t.Fatalf("%s/%s generated no arrivals", name, scale)
			}
		}
	}
	if _, err := Scenario("nope", "small", 1); err == nil {
		t.Fatal("unknown scenario must error")
	}
	if _, err := Scenario("diurnal", "huge", 1); err == nil {
		t.Fatal("unknown scale must error")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Seed: 1}); err == nil {
		t.Fatal("missing horizon/processes must error")
	}
	if _, err := Generate(Config{Seed: 1, HorizonMS: 100}); err == nil {
		t.Fatal("missing processes must error")
	}
	bad := testConfig(1)
	bad.Tiers = []Tier{{Name: "x", Share: -1}}
	if _, err := Generate(bad); err == nil {
		t.Fatal("negative share must error")
	}
	zero := testConfig(1)
	zero.Tiers = []Tier{{Name: "x", Share: 0}}
	if _, err := Generate(zero); err == nil {
		t.Fatal("zero share sum must error")
	}
}

// Heavy-tailed session lengths: a smaller alpha must push more mass
// toward the long end of the range.
func TestHeavyTailLengths(t *testing.T) {
	mean := func(alpha float64) float64 {
		cfg := testConfig(9)
		cfg.HorizonMS = 30000
		cfg.MinFrames, cfg.MaxFrames, cfg.TailAlpha = 24, 240, alpha
		s, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, a := range s.Arrivals {
			sum += a.Frames
		}
		return float64(sum) / float64(len(s.Arrivals))
	}
	if heavy, light := mean(1.05), mean(3.0); heavy <= light {
		t.Fatalf("alpha 1.05 mean %0.1f should exceed alpha 3.0 mean %0.1f", heavy, light)
	}
}
