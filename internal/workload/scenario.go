package workload

import "fmt"

// ScenarioNames lists the named workload scenarios, in the order the
// CLI documents them.
func ScenarioNames() []string { return []string{"diurnal", "flashcrowd", "heavytail"} }

// ScaleNames lists the scenario scales.
func ScaleNames() []string { return []string{"small", "medium", "large"} }

// scaleFactor maps a scale name to its horizon multiplier. "small" is
// sized for CI smoke runs under the race detector.
func scaleFactor(scale string) (float64, error) {
	switch scale {
	case "", "small":
		return 1, nil
	case "medium":
		return 2, nil
	case "large":
		return 4, nil
	}
	return 0, fmt.Errorf("workload: unknown scale %q (want small, medium or large)", scale)
}

// Scenario builds the config of a named scenario at the given scale.
// Scales stretch the horizon (and the time-structured processes with
// it); rates are per-second and stay fixed, so a larger scale means
// proportionally more arrivals of the same character.
//
//   - "diurnal": a sinusoidal day/night cycle over the default tiers —
//     load swings between a quiet trough and a busy peak, twice.
//   - "flashcrowd": a light steady trickle plus one intense burst in
//     the first half — the regime where FIFO admission lets best-effort
//     backlog starve gold streams and WFQ+preemption must not.
//   - "heavytail": a flat Poisson stream whose session lengths are
//     strongly heavy-tailed — a few marathon streams among many short
//     ones, the elephants-and-mice mix.
func Scenario(name, scale string, seed int64) (Config, error) {
	f, err := scaleFactor(scale)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{Seed: seed, Tiers: DefaultTiers(), Tenants: 4}
	switch name {
	case "diurnal":
		cfg.HorizonMS = 6000 * f
		cfg.Processes = []Process{
			Diurnal{Base: 0.5, Amplitude: 3, PeriodMS: 3000 * f},
		}
		cfg.MinFrames, cfg.MaxFrames, cfg.TailAlpha = 24, 72, 1.8
	case "flashcrowd":
		cfg.HorizonMS = 5000 * f
		cfg.Processes = []Process{
			Constant{PerSec: 1.5},
			Flash{AtMS: 1000 * f, DurationMS: 1500 * f, PerSec: 10},
		}
		cfg.MinFrames, cfg.MaxFrames, cfg.TailAlpha = 24, 72, 1.8
	case "heavytail":
		cfg.HorizonMS = 5000 * f
		cfg.Processes = []Process{Constant{PerSec: 2}}
		cfg.MinFrames, cfg.MaxFrames, cfg.TailAlpha = 24, 240, 1.1
	default:
		return Config{}, fmt.Errorf("workload: unknown scenario %q (want %v)",
			name, ScenarioNames())
	}
	return cfg, nil
}
