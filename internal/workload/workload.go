// Package workload is the open-world traffic engine: a seeded,
// deterministic generator of open-loop stream arrivals for the fleet
// dispatcher. Arrivals are drawn from composable rate processes
// (constant-rate Poisson, diurnal curves, flash-crowd bursts) by
// thinning a homogeneous Poisson stream at the summed peak rate; each
// arrival is stamped with a tenant and an SLO tier and carries a
// heavy-tailed session length (bounded Pareto), so a fixed seed always
// yields the same arrival sequence, the same videos and the same
// stream configs — the workload-side half of the repository's
// byte-identical-trace invariant.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"litereconfig/internal/serve"
	"litereconfig/internal/vid"
)

// Tier is one tenant service class: the SLO its streams are served
// under, the weighted-fair-queueing weight that ranks it against other
// tiers, and its share of generated arrivals.
type Tier struct {
	// Name is the SLO class label carried on stream configs, report
	// rows and trace events (e.g. "gold").
	Name string
	// SLOMS is the tier's per-frame latency objective in simulated ms.
	SLOMS float64
	// Weight is the tier's WFQ weight: admission share under backlog,
	// and preemption rank (higher evicts lower).
	Weight int
	// Share is the fraction of arrivals stamped with this tier; the
	// shares of a tier set are normalized at generation time.
	Share float64
}

// DefaultTiers is the three-tier gold/silver/best-effort split used by
// the named scenarios: a latency-critical gold minority, a silver
// middle and a best-effort majority.
func DefaultTiers() []Tier {
	return []Tier{
		{Name: "gold", SLOMS: 33.3, Weight: 4, Share: 0.2},
		{Name: "silver", SLOMS: 50, Weight: 2, Share: 0.3},
		{Name: "besteffort", SLOMS: 100, Weight: 1, Share: 0.5},
	}
}

// Weights returns the serve/fleet ClassWeights map for a tier set.
func Weights(tiers []Tier) map[string]int {
	w := make(map[string]int, len(tiers))
	for _, t := range tiers {
		w[t.Name] = t.Weight
	}
	return w
}

// Process is one time-varying component of the arrival rate. The
// generator sums all configured processes and draws arrivals by
// thinning at the summed peak, so components compose additively.
type Process interface {
	// Rate returns the component's arrival rate, in streams per
	// simulated second, at simulated time tMS.
	Rate(tMS float64) float64
	// Peak returns an upper bound on Rate over any horizon; thinning
	// needs it to bound the proposal rate.
	Peak() float64
}

// Constant is a homogeneous Poisson component: PerSec arrivals per
// simulated second, flat over the horizon.
type Constant struct{ PerSec float64 }

// Rate implements Process.
func (c Constant) Rate(float64) float64 { return c.PerSec }

// Peak implements Process.
func (c Constant) Peak() float64 { return c.PerSec }

// Diurnal is a sinusoidal rate curve — the day/night load cycle scaled
// down to simulated time: Base arrivals/s plus an Amplitude swing over
// PeriodMS, starting at the trough.
type Diurnal struct {
	Base, Amplitude float64
	PeriodMS        float64
}

// Rate implements Process.
func (d Diurnal) Rate(tMS float64) float64 {
	if d.PeriodMS <= 0 {
		return d.Base
	}
	phase := 2 * math.Pi * tMS / d.PeriodMS
	return d.Base + d.Amplitude*(1-math.Cos(phase))/2
}

// Peak implements Process.
func (d Diurnal) Peak() float64 { return d.Base + d.Amplitude }

// Flash is a flash-crowd burst: PerSec extra arrivals per second during
// [AtMS, AtMS+DurationMS), zero outside.
type Flash struct {
	AtMS, DurationMS float64
	PerSec           float64
}

// Rate implements Process.
func (f Flash) Rate(tMS float64) float64 {
	if tMS >= f.AtMS && tMS < f.AtMS+f.DurationMS {
		return f.PerSec
	}
	return 0
}

// Peak implements Process.
func (f Flash) Peak() float64 { return f.PerSec }

// Config describes one workload to generate.
type Config struct {
	// Seed fixes the whole arrival realization: times, tiers, tenants,
	// session lengths and video content.
	Seed int64
	// HorizonMS is the generation window in simulated milliseconds;
	// arrivals land in [0, HorizonMS).
	HorizonMS float64
	// Tiers is the tier set arrivals are stamped from (shares are
	// normalized). Default DefaultTiers().
	Tiers []Tier
	// Processes are the additive rate components. At least one is
	// required.
	Processes []Process
	// Tenants is how many distinct tenants arrivals are spread over
	// (uniformly). Default 4.
	Tenants int
	// MinFrames/MaxFrames bound the per-stream session length in
	// frames; lengths are bounded-Pareto between them. Defaults 30/120.
	MinFrames, MaxFrames int
	// TailAlpha is the bounded-Pareto shape for session lengths: the
	// smaller, the heavier the tail (more mass near MaxFrames). Default
	// 1.5; values >= ~3 are effectively light-tailed.
	TailAlpha float64
}

func (c Config) withDefaults() Config {
	if len(c.Tiers) == 0 {
		c.Tiers = DefaultTiers()
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.MinFrames <= 0 {
		c.MinFrames = 30
	}
	if c.MaxFrames < c.MinFrames {
		c.MaxFrames = 4 * c.MinFrames
	}
	if c.TailAlpha <= 0 {
		c.TailAlpha = 1.5
	}
	return c
}

// Arrival is one generated stream arrival.
type Arrival struct {
	// Index is the arrival's position in the schedule (time order).
	Index int
	// AtMS is the arrival time on the fleet's virtual clock.
	AtMS float64
	// Tier and Tenant stamp the arrival's service class and owner.
	Tier   Tier
	Tenant string
	// Frames is the session length; Seed the stream's private seed
	// (video content and stochastic realization).
	Frames int
	Seed   int64
}

// StreamConfig materializes the arrival into a servable stream config,
// generating its video deterministically from the arrival's seed.
func (a Arrival) StreamConfig() serve.StreamConfig {
	name := fmt.Sprintf("%s-%s-a%d", a.Tier.Name, a.Tenant, a.Index)
	return serve.StreamConfig{
		Name:   name,
		Video:  vid.Generate(name, a.Seed, vid.GenConfig{Frames: a.Frames}),
		SLO:    a.Tier.SLOMS,
		Class:  a.Tier.Name,
		Tenant: a.Tenant,
		Seed:   a.Seed,
	}
}

// Generate draws the full arrival schedule for a config. The same
// config always yields the same schedule.
func Generate(cfg Config) (*Schedule, error) {
	cfg = cfg.withDefaults()
	if cfg.HorizonMS <= 0 {
		return nil, fmt.Errorf("workload: positive HorizonMS required")
	}
	if len(cfg.Processes) == 0 {
		return nil, fmt.Errorf("workload: at least one rate process required")
	}
	peak := 0.0
	for _, p := range cfg.Processes {
		peak += p.Peak()
	}
	if peak <= 0 {
		return nil, fmt.Errorf("workload: summed peak rate must be positive")
	}
	shareSum := 0.0
	for _, t := range cfg.Tiers {
		if t.Share < 0 {
			return nil, fmt.Errorf("workload: tier %q has negative share", t.Name)
		}
		shareSum += t.Share
	}
	if shareSum <= 0 {
		return nil, fmt.Errorf("workload: tier shares sum to zero")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	rate := func(tMS float64) float64 {
		r := 0.0
		for _, p := range cfg.Processes {
			r += p.Rate(tMS)
		}
		return r
	}

	sched := &Schedule{cfg: cfg}
	// Non-homogeneous Poisson by thinning: propose at the summed peak
	// rate, accept each proposal with probability rate(t)/peak. One rng
	// drives everything in a fixed draw order, so the realization is a
	// pure function of the seed.
	t := 0.0
	for {
		t += rng.ExpFloat64() / peak * 1000 // peak is per second, t in ms
		if t >= cfg.HorizonMS {
			break
		}
		if rng.Float64()*peak > rate(t) {
			continue
		}
		u := rng.Float64() * shareSum
		tier := cfg.Tiers[len(cfg.Tiers)-1]
		acc := 0.0
		for _, tr := range cfg.Tiers {
			acc += tr.Share
			if u < acc {
				tier = tr
				break
			}
		}
		idx := len(sched.Arrivals)
		sched.Arrivals = append(sched.Arrivals, Arrival{
			Index:  idx,
			AtMS:   t,
			Tier:   tier,
			Tenant: fmt.Sprintf("t%d", rng.Intn(cfg.Tenants)),
			Frames: boundedPareto(rng, cfg.MinFrames, cfg.MaxFrames, cfg.TailAlpha),
			// Distinct, seed-derived stream seeds: a large odd stride keeps
			// sibling streams decorrelated without colliding for any idx.
			Seed: cfg.Seed + int64(idx)*1_000_003 + 1,
		})
	}
	return sched, nil
}

// boundedPareto draws a session length in [min, max] from a bounded
// Pareto distribution with shape alpha (inverse-CDF sampling).
func boundedPareto(rng *rand.Rand, min, max int, alpha float64) int {
	if max <= min {
		return min
	}
	l, h := float64(min), float64(max)
	u := rng.Float64()
	lh := math.Pow(l/h, alpha)
	x := l / math.Pow(1-u*(1-lh), 1/alpha)
	n := int(x)
	if n < min {
		n = min
	}
	if n > max {
		n = max
	}
	return n
}

// Schedule is a generated arrival sequence, consumable as a
// fleet.Source: Take hands out the configs of arrivals due at the
// polled virtual time, materializing each video on demand.
type Schedule struct {
	cfg      Config
	Arrivals []Arrival
	next     int
}

// Config returns the (defaulted) config the schedule was drawn from.
func (s *Schedule) Config() Config { return s.cfg }

// Take returns the stream configs of all arrivals due at or before
// nowMS, in arrival order, consuming them.
func (s *Schedule) Take(nowMS float64) []serve.StreamConfig {
	var out []serve.StreamConfig
	for s.next < len(s.Arrivals) && s.Arrivals[s.next].AtMS <= nowMS {
		out = append(out, s.Arrivals[s.next].StreamConfig())
		s.next++
	}
	return out
}

// Exhausted reports that every arrival has been taken.
func (s *Schedule) Exhausted() bool { return s.next >= len(s.Arrivals) }

// Reset rewinds the schedule so it can drive another run.
func (s *Schedule) Reset() { s.next = 0 }

// ByTier counts the schedule's arrivals per tier name.
func (s *Schedule) ByTier() map[string]int {
	out := map[string]int{}
	for _, a := range s.Arrivals {
		out[a.Tier.Name]++
	}
	return out
}
