package ckpt

import "sort"

// Detector defaults.
const (
	// DefaultLeaseBarriers is how many consecutive missed barrier
	// heartbeats make a board suspect.
	DefaultLeaseBarriers = 2
	// DefaultMaxRetries is how many probes a suspect board gets before
	// it is declared dead — enough to ride out a short blackout.
	DefaultMaxRetries = 2
	// DefaultBackoffBase is the first retry delay in barriers; each
	// further probe doubles it.
	DefaultBackoffBase = 2
)

// DetectorConfig tunes the virtual-time failure detector.
type DetectorConfig struct {
	// LeaseBarriers is the heartbeat lease: a board missing this many
	// consecutive barriers becomes suspect. Zero takes the default.
	LeaseBarriers int
	// MaxRetries bounds the probes a suspect board gets before death is
	// declared. Zero takes the default; negative means no retries
	// (death on the first probe).
	MaxRetries int
	// BackoffBase is the first probe delay in barriers, doubled per
	// probe, plus seeded jitter in [0, BackoffBase). Zero takes the
	// default.
	BackoffBase int
	// Seed drives the jitter; fixed seeds give identical schedules.
	Seed int64
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.LeaseBarriers <= 0 {
		c.LeaseBarriers = DefaultLeaseBarriers
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	return c
}

// Transition is one detector state change, emitted in deterministic
// (board-name) order within a barrier.
type Transition struct {
	Board   string
	Barrier int
	// Kind is "suspect" (lease expired), "probe" (a retry fired and the
	// board is still silent), "recovered" (a suspect board beat again —
	// a blackout ended) or "dead" (retries exhausted; permanent).
	Kind string
	// Attempt numbers the probe for "probe"/"dead" transitions.
	Attempt int
}

type boardState struct {
	lastBeat  int
	suspect   bool
	attempt   int
	nextProbe int
	dead      bool
}

// Detector is the fleet's virtual-time failure detector: boards renew
// a lease by beating (being steppable) at each barrier; a board silent
// past its lease becomes suspect and gets bounded retries with
// deterministic exponential backoff plus seeded jitter — riding out
// transient blackouts — before being declared dead. Time is the fleet
// barrier index; no wall-clock is consulted anywhere.
type Detector struct {
	cfg    DetectorConfig
	boards []string
	state  map[string]*boardState
}

// NewDetector builds a detector over the named boards, all considered
// alive with a fresh lease at barrier 0.
func NewDetector(cfg DetectorConfig, boards []string) *Detector {
	d := &Detector{
		cfg:    cfg.withDefaults(),
		boards: append([]string(nil), boards...),
		state:  make(map[string]*boardState, len(boards)),
	}
	sort.Strings(d.boards)
	for _, b := range d.boards {
		d.state[b] = &boardState{}
	}
	return d
}

// Observe advances the detector to the given barrier with the set of
// boards that beat (were steppable) there, and returns the transitions
// in board-name order. A dead board stays dead — the caller must fence
// it — even if a late beat would have arrived.
func (d *Detector) Observe(barrier int, beats map[string]bool) []Transition {
	var out []Transition
	for _, b := range d.boards {
		st := d.state[b]
		if st.dead {
			continue
		}
		if beats[b] {
			st.lastBeat = barrier
			if st.suspect {
				st.suspect = false
				st.attempt = 0
				out = append(out, Transition{Board: b, Barrier: barrier, Kind: "recovered"})
			}
			continue
		}
		if !st.suspect {
			if barrier-st.lastBeat >= d.cfg.LeaseBarriers {
				st.suspect = true
				st.attempt = 0
				st.nextProbe = barrier + d.backoff(b, 0)
				out = append(out, Transition{Board: b, Barrier: barrier, Kind: "suspect"})
			}
			continue
		}
		if barrier >= st.nextProbe {
			st.attempt++
			if st.attempt > d.cfg.MaxRetries {
				st.dead = true
				out = append(out, Transition{Board: b, Barrier: barrier, Kind: "dead", Attempt: st.attempt})
				continue
			}
			st.nextProbe = barrier + d.backoff(b, st.attempt)
			out = append(out, Transition{Board: b, Barrier: barrier, Kind: "probe", Attempt: st.attempt})
		}
	}
	return out
}

// backoff returns the probe delay for the given attempt: BackoffBase
// doubled per attempt, plus deterministic jitter in [0, BackoffBase)
// keyed by (seed, board, attempt) — retries de-correlate across boards
// without any randomness source shared with the simulation.
func (d *Detector) backoff(board string, attempt int) int {
	if attempt > 16 {
		attempt = 16 // cap the shift; leases are a handful of barriers
	}
	base := d.cfg.BackoffBase << uint(attempt)
	h := d.cfg.Seed
	for _, c := range []byte(board) {
		h = h*131 + int64(c)
	}
	h = h*1000003 + int64(attempt+1)*7919
	jitter := int(uint64(h) % uint64(d.cfg.BackoffBase))
	return base + jitter
}

// Dead reports whether the board has been declared dead.
func (d *Detector) Dead(board string) bool {
	st := d.state[board]
	return st != nil && st.dead
}

// Suspect reports whether the board is currently suspect (lease
// expired, retries not yet exhausted).
func (d *Detector) Suspect(board string) bool {
	st := d.state[board]
	return st != nil && st.suspect && !st.dead
}

// LastBeat returns the barrier of the board's most recent heartbeat
// (0 before its first).
func (d *Detector) LastBeat(board string) int {
	st := d.state[board]
	if st == nil {
		return 0
	}
	return st.lastBeat
}
