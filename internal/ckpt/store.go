// Package ckpt is the fleet-held half of the crash-recovery layer: a
// store for per-stream checkpoints cut at board round barriers (plus a
// mirror of committed adapter model versions, so a restore can warm-
// start from a stream's adapted champion), and a deterministic
// virtual-time failure detector that declares boards dead from missed
// barrier heartbeats — no wall-clock anywhere, so fixed-seed fleet runs
// stay byte-identical.
//
// Everything in the package is driven single-threaded from the fleet
// dispatcher's barrier loop; nothing is safe for concurrent use.
package ckpt

import (
	"encoding/gob"
	"io"
	"sort"

	"litereconfig/internal/sched"
	"litereconfig/internal/serve"
)

// Entry is one stored checkpoint with its provenance: the board that
// cut it and the fleet barrier it was cut at (the replay bound is
// judged against this barrier).
type Entry struct {
	Board   string
	Barrier int
	Ck      serve.Checkpoint
}

// Store holds the fleet's newest checkpoint per stream. The store
// lives fleet-side, so it survives any board's fail-stop; a crashed
// board's streams are restored from exactly what is here.
type Store struct {
	entries map[int]Entry
	models  map[string]*sched.Models
}

// NewStore returns an empty checkpoint store.
func NewStore() *Store {
	return &Store{
		entries: map[int]Entry{},
		models:  map[string]*sched.Models{},
	}
}

// Put records the newest checkpoint for its stream, replacing any
// older one.
func (s *Store) Put(board string, barrier int, ck serve.Checkpoint) {
	s.entries[ck.ID] = Entry{Board: board, Barrier: barrier, Ck: ck}
}

// Has reports whether the stream has a stored checkpoint.
func (s *Store) Has(id int) bool {
	_, ok := s.entries[id]
	return ok
}

// Get returns the stream's stored checkpoint entry.
func (s *Store) Get(id int) (Entry, bool) {
	e, ok := s.entries[id]
	return e, ok
}

// Drop discards the stream's checkpoint — called when the stream
// finishes (nothing left to recover) or after a successful restore
// re-homes it (the next capture pass re-checkpoints it under its new
// board).
func (s *Store) Drop(id int) { delete(s.entries, id) }

// Len returns the number of streams with a stored checkpoint.
func (s *Store) Len() int { return len(s.entries) }

// Board returns the checkpoints cut by the named board, in stream-id
// order — the deterministic restore order after that board dies.
func (s *Store) Board(board string) []Entry {
	var out []Entry
	for _, e := range s.entries {
		if e.Board == board {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ck.ID < out[j].Ck.ID })
	return out
}

// Rehome re-attributes a stored checkpoint to a new board without
// refreshing its content — used when a stream migrates or restores
// between capture sweeps, so a subsequent death of the *new* board
// still recovers it.
func (s *Store) Rehome(id int, board string) {
	if e, ok := s.entries[id]; ok {
		e.Board = board
		s.entries[id] = e
	}
}

// MirrorModel records a committed adapter model version. The Models
// pointer is the registry's immutable snapshot, shared not copied;
// restores clone it per stream exactly as Submit clones base models.
func (s *Store) MirrorModel(label string, m *sched.Models) {
	if m != nil {
		s.models[label] = m
	}
}

// Model resolves a mirrored model version, or nil when the label was
// never committed (including "" and the pre-promotion "v0", which name
// the base models).
func (s *Store) Model(label string) *sched.Models { return s.models[label] }

// Save gob-encodes the checkpoint entries — the store's durability
// format, proving every checkpoint is serializable plain data. The
// model mirror is process-local (the adapt registry owns gob
// persistence of model snapshots) and is not written.
func (s *Store) Save(w io.Writer) error {
	ids := make([]int, 0, len(s.entries))
	for id := range s.entries {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]Entry, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.entries[id])
	}
	return gob.NewEncoder(w).Encode(out)
}

// Load replaces the store's entries with a gob stream written by Save.
func (s *Store) Load(r io.Reader) error {
	var in []Entry
	if err := gob.NewDecoder(r).Decode(&in); err != nil {
		return err
	}
	s.entries = make(map[int]Entry, len(in))
	for _, e := range in {
		s.entries[e.Ck.ID] = e
	}
	return nil
}
