package ckpt

import (
	"bytes"
	"reflect"
	"testing"

	"litereconfig/internal/serve"
	"litereconfig/internal/vid"
)

func ck(id int, gofs int) serve.Checkpoint {
	return serve.Checkpoint{
		ID: id,
		Cfg: serve.StreamConfig{
			Name:  "s",
			Video: vid.Generate("ck", int64(id), vid.GenConfig{Frames: 8}),
			SLO:   50,
		},
		Frames: gofs * 8,
		GoFs:   gofs,
		SimMS:  float64(gofs) * 100,
	}
}

func TestStoreNewestWinsAndBoardOrder(t *testing.T) {
	s := NewStore()
	s.Put("b0", 0, ck(3, 1))
	s.Put("b0", 0, ck(1, 1))
	s.Put("b0", 4, ck(3, 2)) // newer sweep replaces
	s.Put("b1", 4, ck(2, 1))

	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	e, ok := s.Get(3)
	if !ok || e.Barrier != 4 || e.Ck.GoFs != 2 {
		t.Fatalf("Get(3) = %+v, %v; want the barrier-4 checkpoint", e, ok)
	}
	b0 := s.Board("b0")
	if len(b0) != 2 || b0[0].Ck.ID != 1 || b0[1].Ck.ID != 3 {
		t.Fatalf("Board(b0) ids wrong: %+v", b0)
	}

	// Rehome moves attribution without touching content.
	s.Rehome(2, "b0")
	if got := s.Board("b1"); len(got) != 0 {
		t.Fatalf("b1 still owns %d entries after rehome", len(got))
	}
	if got := s.Board("b0"); len(got) != 3 {
		t.Fatalf("b0 owns %d entries after rehome, want 3", len(got))
	}

	s.Drop(1)
	if s.Has(1) || s.Len() != 2 {
		t.Fatal("Drop(1) did not remove the entry")
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	s.Put("b0", 2, ck(1, 1))
	s.Put("b1", 2, ck(7, 3))
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r := NewStore()
	if err := r.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("loaded %d entries, want 2", r.Len())
	}
	a, _ := s.Get(7)
	b, _ := r.Get(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", b, a)
	}
}

// beatAll returns a heartbeat set covering every board except the
// listed silent ones.
func beatAll(boards []string, silent ...string) map[string]bool {
	m := map[string]bool{}
	for _, b := range boards {
		m[b] = true
	}
	for _, s := range silent {
		delete(m, s)
	}
	return m
}

func TestDetectorDeclaresCrashDead(t *testing.T) {
	boards := []string{"b0", "b1"}
	d := NewDetector(DetectorConfig{Seed: 7}, boards)

	deadAt := -1
	sawSuspect, probes := false, 0
	for barrier := 1; barrier <= 40 && deadAt < 0; barrier++ {
		for _, tr := range d.Observe(barrier, beatAll(boards, "b1")) {
			if tr.Board != "b1" {
				t.Fatalf("transition for healthy board: %+v", tr)
			}
			switch tr.Kind {
			case "suspect":
				sawSuspect = true
			case "probe":
				probes++
			case "dead":
				deadAt = barrier
			}
		}
	}
	if !sawSuspect || probes != DefaultMaxRetries || deadAt < 0 {
		t.Fatalf("suspect=%v probes=%d deadAt=%d; want full suspect->probe->dead ladder",
			sawSuspect, probes, deadAt)
	}
	if !d.Dead("b1") || d.Dead("b0") {
		t.Fatal("Dead() flags wrong board")
	}
	// Death is sticky: a late beat (blackout returning after the fleet
	// acted) must not resurrect the board.
	if trs := d.Observe(deadAt+1, beatAll(boards)); len(trs) != 0 {
		t.Fatalf("dead board produced transitions on late beat: %+v", trs)
	}
	if !d.Dead("b1") {
		t.Fatal("late beat resurrected a dead board")
	}
}

func TestDetectorRidesOutBlackout(t *testing.T) {
	boards := []string{"b0", "b1"}
	d := NewDetector(DetectorConfig{Seed: 7}, boards)

	// b1 silent for DefaultBlackoutRounds barriers, then back.
	recovered := false
	for barrier := 1; barrier <= 10; barrier++ {
		beats := beatAll(boards)
		if barrier >= 3 && barrier < 6 {
			delete(beats, "b1")
		}
		for _, tr := range d.Observe(barrier, beats) {
			if tr.Kind == "dead" {
				t.Fatalf("blackout declared dead at barrier %d", barrier)
			}
			if tr.Kind == "recovered" {
				recovered = true
			}
		}
	}
	if d.Dead("b1") || d.Suspect("b1") {
		t.Fatal("board still suspect/dead after blackout ended")
	}
	if !recovered {
		t.Fatal("no recovered transition after the blackout ended")
	}
}

func TestDetectorBackoffDeterministicAndExponential(t *testing.T) {
	d1 := NewDetector(DetectorConfig{Seed: 11}, []string{"b0", "b1"})
	d2 := NewDetector(DetectorConfig{Seed: 11}, []string{"b0", "b1"})
	for attempt := 0; attempt < 5; attempt++ {
		a, b := d1.backoff("b0", attempt), d2.backoff("b0", attempt)
		if a != b {
			t.Fatalf("same seed, different backoff at attempt %d: %d vs %d", attempt, a, b)
		}
		base := DefaultBackoffBase << attempt
		if a < base || a >= base+DefaultBackoffBase {
			t.Fatalf("attempt %d backoff %d outside [%d,%d)", attempt, a, base, base+DefaultBackoffBase)
		}
	}
	// Different seeds or boards shift the jitter somewhere in the range.
	d3 := NewDetector(DetectorConfig{Seed: 12}, []string{"b0"})
	diff := false
	for attempt := 0; attempt < 8; attempt++ {
		if d1.backoff("b0", attempt) != d3.backoff("b0", attempt) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("jitter identical across seeds for every attempt; seeding is dead")
	}
}

func TestDetectorNoRetriesDiesOnFirstProbe(t *testing.T) {
	boards := []string{"b0"}
	d := NewDetector(DetectorConfig{MaxRetries: -1, Seed: 3}, boards)
	dead := false
	for barrier := 1; barrier <= 20 && !dead; barrier++ {
		for _, tr := range d.Observe(barrier, map[string]bool{}) {
			if tr.Kind == "dead" {
				dead = true
			}
		}
	}
	if !dead {
		t.Fatal("MaxRetries<0 board never died")
	}
}
