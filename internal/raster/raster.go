// Package raster renders synthetic video frames into small RGB pixel
// buffers. The Histogram-of-Colors and Histogram-of-Oriented-Gradients
// feature extractors (package feat) run real image-processing code over
// these buffers; only the pixel content is synthetic.
//
// The renderer draws a procedurally textured background (amount of
// texture follows the video's clutter level) and one shaded rectangle per
// ground-truth object with a class-dependent base color. That is enough
// for color and gradient statistics to carry information about the scene:
// crowded frames have many color modes; cluttered frames have strong
// gradients everywhere; large objects shift the histogram toward their
// class color.
package raster

import (
	"math"

	"litereconfig/internal/vid"
)

// Image is a tightly packed 8-bit RGB image.
type Image struct {
	W, H int
	Pix  []byte // len = W*H*3, row-major, RGB
}

// New allocates a black image.
func New(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]byte, w*h*3)}
}

// At returns the RGB triple at (x, y).
func (im *Image) At(x, y int) (r, g, b byte) {
	i := (y*im.W + x) * 3
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// set writes the RGB triple at (x, y) without bounds checking.
func (im *Image) set(x, y int, r, g, b byte) {
	i := (y*im.W + x) * 3
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}

// Gray returns the luma of the pixel at (x, y) in [0, 255].
func (im *Image) Gray(x, y int) float64 {
	r, g, b := im.At(x, y)
	return 0.299*float64(r) + 0.587*float64(g) + 0.114*float64(b)
}

// classColor returns a stable, well-separated base color per class using
// a golden-ratio hue walk.
func classColor(c vid.Class) (r, g, b float64) {
	hue := math.Mod(float64(c)*0.61803398875, 1.0)
	return hsv(hue, 0.65, 0.85)
}

// hsv converts HSV (each in [0,1]) to RGB in [0,255].
func hsv(h, s, v float64) (r, g, b float64) {
	i := int(h * 6)
	f := h*6 - float64(i)
	p := v * (1 - s)
	q := v * (1 - f*s)
	t := v * (1 - (1-f)*s)
	var rr, gg, bb float64
	switch i % 6 {
	case 0:
		rr, gg, bb = v, t, p
	case 1:
		rr, gg, bb = q, v, p
	case 2:
		rr, gg, bb = p, v, t
	case 3:
		rr, gg, bb = p, q, v
	case 4:
		rr, gg, bb = t, p, v
	default:
		rr, gg, bb = v, p, q
	}
	return rr * 255, gg * 255, bb * 255
}

// hash2 is a small integer hash used for deterministic value noise.
func hash2(x, y, seed int64) uint64 {
	h := uint64(x)*0x9E3779B97F4A7C15 ^ uint64(y)*0xC2B2AE3D27D4EB4F ^ uint64(seed)*0x165667B19E3779F9
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h
}

// noise returns deterministic value noise in [0, 1) for lattice point
// (x, y) under the given seed.
func noise(x, y, seed int64) float64 {
	return float64(hash2(x, y, seed)&0xFFFFFF) / float64(1<<24)
}

// smoothNoise returns bilinearly interpolated value noise at a continuous
// coordinate, giving blob-like background texture.
func smoothNoise(fx, fy float64, seed int64) float64 {
	x0, y0 := math.Floor(fx), math.Floor(fy)
	tx, ty := fx-x0, fy-y0
	ix, iy := int64(x0), int64(y0)
	n00 := noise(ix, iy, seed)
	n10 := noise(ix+1, iy, seed)
	n01 := noise(ix, iy+1, seed)
	n11 := noise(ix+1, iy+1, seed)
	top := n00 + (n10-n00)*tx
	bot := n01 + (n11-n01)*tx
	return top + (bot-top)*ty
}

// Render draws frame f of video v into a w x h image. The same frame
// always renders to the same pixels.
func Render(v *vid.Video, f vid.Frame, w, h int) *Image {
	im := New(w, h)
	seed := v.Seed

	// Background: a scene-stable base color plus clutter-scaled texture
	// that drifts slowly with the frame index (camera shake).
	baseHue := noise(int64(0x5CE11E), 0, seed)
	br, bg, bb := hsv(baseHue, 0.25, 0.55)
	clutter := v.Profile.Clutter
	drift := float64(f.Index) * 0.07
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// Two octaves of value noise.
			n := 0.7*smoothNoise(float64(x)/7+drift, float64(y)/7, seed) +
				0.3*smoothNoise(float64(x)/2.5+drift, float64(y)/2.5, seed+1)
			m := 1 + clutter*(n-0.5)*1.4
			im.set(x, y, clampByte(br*m), clampByte(bg*m), clampByte(bb*m))
		}
	}

	// Objects: shaded rectangles in class color, scaled from native
	// coordinates to the raster. Drawn in ID order for determinism.
	sx := float64(w) / float64(v.Width)
	sy := float64(h) / float64(v.Height)
	for _, o := range f.Objects {
		cr, cg, cb := classColor(o.Class)
		// Stable per-object shade jitter so instances are distinguishable.
		shade := 0.8 + 0.4*noise(int64(o.ID), 7, seed)
		x0 := int(o.Box.X * sx)
		y0 := int(o.Box.Y * sy)
		x1 := int(math.Ceil(o.Box.MaxX() * sx))
		y1 := int(math.Ceil(o.Box.MaxY() * sy))
		x0, y0 = clampInt(x0, 0, w-1), clampInt(y0, 0, h-1)
		x1, y1 = clampInt(x1, x0+1, w), clampInt(y1, y0+1, h)
		for y := y0; y < y1; y++ {
			// Vertical shading gradient gives every object strong
			// horizontal gradient response in HOG.
			g := 0.75 + 0.5*float64(y-y0)/math.Max(1, float64(y1-y0))
			for x := x0; x < x1; x++ {
				t := 0.9 + 0.2*noise(int64(x), int64(y), seed+int64(o.ID))
				m := shade * g * t
				im.set(x, y, clampByte(cr*m), clampByte(cg*m), clampByte(cb*m))
			}
		}
	}
	return im
}

func clampByte(v float64) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
