package raster

import (
	"bytes"
	"testing"

	"litereconfig/internal/vid"
)

func testVideo(seed int64) *vid.Video {
	return vid.Generate("v", seed, vid.GenConfig{Frames: 10})
}

func TestRenderDeterministic(t *testing.T) {
	v := testVideo(1)
	a := Render(v, v.Frames[3], 48, 48)
	b := Render(v, v.Frames[3], 48, 48)
	if !bytes.Equal(a.Pix, b.Pix) {
		t.Fatal("same frame rendered differently")
	}
	c := Render(v, v.Frames[4], 48, 48)
	if bytes.Equal(a.Pix, c.Pix) {
		t.Fatal("different frames rendered identically")
	}
}

func TestRenderDimensions(t *testing.T) {
	v := testVideo(2)
	im := Render(v, v.Frames[0], 64, 32)
	if im.W != 64 || im.H != 32 {
		t.Fatalf("dims = %dx%d", im.W, im.H)
	}
	if len(im.Pix) != 64*32*3 {
		t.Fatalf("pix length = %d", len(im.Pix))
	}
}

func TestObjectsVisibleInRender(t *testing.T) {
	// A frame with objects should differ from the same scene with the
	// objects removed — i.e. objects actually hit pixels.
	v := testVideo(3)
	f := v.Frames[0]
	if len(f.Objects) == 0 {
		t.Skip("seed produced empty first frame")
	}
	with := Render(v, f, 64, 64)
	without := Render(v, vid.Frame{Index: f.Index}, 64, 64)
	if bytes.Equal(with.Pix, without.Pix) {
		t.Fatal("objects left no trace in the render")
	}
}

func TestClutterIncreasesTexture(t *testing.T) {
	// Higher clutter must raise background gradient energy.
	mk := func(clutter float64) float64 {
		p := vid.ContentProfile{ObjectCount: 0, SizeFrac: 0.2, Speed: 1,
			Clutter: clutter, Archetype: "test"}
		v := vid.GenerateWithProfile("v", 5, vid.GenConfig{Frames: 1}, p)
		im := Render(v, vid.Frame{}, 48, 48)
		var energy float64
		for y := 0; y < im.H; y++ {
			for x := 1; x < im.W; x++ {
				d := im.Gray(x, y) - im.Gray(x-1, y)
				energy += d * d
			}
		}
		return energy
	}
	low, high := mk(0.05), mk(0.95)
	if high <= low*1.5 {
		t.Fatalf("clutter texture energy low=%v high=%v; expected clear increase", low, high)
	}
}

func TestGrayRange(t *testing.T) {
	v := testVideo(4)
	im := Render(v, v.Frames[0], 32, 32)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			g := im.Gray(x, y)
			if g < 0 || g > 255 {
				t.Fatalf("gray out of range: %v", g)
			}
		}
	}
}

func TestClassColorsDistinct(t *testing.T) {
	type rgb struct{ r, g, b float64 }
	seen := map[rgb]vid.Class{}
	for c := vid.Class(0); int(c) < vid.NumClasses; c++ {
		r, g, b := classColor(c)
		if r < 0 || r > 255 || g < 0 || g > 255 || b < 0 || b > 255 {
			t.Fatalf("class %v color out of range (%v,%v,%v)", c, r, g, b)
		}
		key := rgb{r, g, b}
		if prev, dup := seen[key]; dup {
			t.Fatalf("classes %v and %v share a color", prev, c)
		}
		seen[key] = c
	}
}

func TestNoiseDeterministicAndBounded(t *testing.T) {
	for i := int64(0); i < 200; i++ {
		n := noise(i, i*3, 99)
		if n < 0 || n >= 1 {
			t.Fatalf("noise out of [0,1): %v", n)
		}
		if n != noise(i, i*3, 99) {
			t.Fatal("noise not deterministic")
		}
	}
	if noise(1, 2, 3) == noise(1, 2, 4) {
		t.Error("noise ignores seed")
	}
}

func TestSmoothNoiseInterpolates(t *testing.T) {
	// At lattice points smoothNoise equals noise; between them it stays
	// within the hull of the corners.
	if smoothNoise(5, 7, 1) != noise(5, 7, 1) {
		t.Error("smoothNoise at lattice point should equal noise")
	}
	c00, c10 := noise(5, 7, 1), noise(6, 7, 1)
	mid := smoothNoise(5.5, 7, 1)
	lo, hi := c00, c10
	if lo > hi {
		lo, hi = hi, lo
	}
	if mid < lo-1e-12 || mid > hi+1e-12 {
		t.Fatalf("interpolated value %v outside corner hull [%v,%v]", mid, lo, hi)
	}
}

func BenchmarkRender64(b *testing.B) {
	v := testVideo(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Render(v, v.Frames[i%len(v.Frames)], 64, 64)
	}
}
