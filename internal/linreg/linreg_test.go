package linreg

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitExactLinear(t *testing.T) {
	// y = 3x0 - 2x1 + 5 recovered exactly from noiseless data.
	rng := rand.New(rand.NewSource(1))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 50; i++ {
		x0, x1 := rng.Float64()*10, rng.Float64()*10
		xs = append(xs, []float64{x0, x1})
		ys = append(ys, 3*x0-2*x1+5)
	}
	m, err := Fit(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-3) > 1e-6 || math.Abs(m.Coef[1]+2) > 1e-6 ||
		math.Abs(m.Intercept-5) > 1e-6 {
		t.Fatalf("model = %+v", m)
	}
	if r2 := m.R2(xs, ys); math.Abs(r2-1) > 1e-9 {
		t.Fatalf("R2 = %v, want 1", r2)
	}
}

func TestFitNoisyData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 2000; i++ {
		x := rng.Float64() * 4
		xs = append(xs, []float64{x})
		ys = append(ys, 2*x+1+rng.NormFloat64()*0.1)
	}
	m, err := Fit(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-2) > 0.05 || math.Abs(m.Intercept-1) > 0.05 {
		t.Fatalf("model = %+v", m)
	}
	if r2 := m.R2(xs, ys); r2 < 0.98 {
		t.Fatalf("R2 = %v", r2)
	}
}

func TestSingularWithoutRidge(t *testing.T) {
	// Duplicated feature column is rank-deficient. Fit used to surface
	// ErrSingular here; it now detects the deficiency and falls back to
	// an escalating ridge solve, so the caller gets finite coefficients.
	xs := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	ys := []float64{1, 2, 3}
	m0, err := Fit(xs, ys, 0)
	if err != nil {
		t.Fatalf("rank-deficient fit should ridge-fall-back, got %v", err)
	}
	if p := m0.Predict([]float64{2, 2}); math.Abs(p-2) > 0.01 {
		t.Fatalf("fallback prediction = %v, want ~2", p)
	}
	// Ridge regularization makes it solvable.
	m, err := Fit(xs, ys, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// Prediction still accurate even though coefficients are split.
	if p := m.Predict([]float64{2, 2}); math.Abs(p-2) > 0.01 {
		t.Fatalf("ridge prediction = %v, want ~2", p)
	}
}

func TestRidgeShrinksCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 40; i++ {
		x := rng.Float64()
		xs = append(xs, []float64{x})
		ys = append(ys, 10*x+rng.NormFloat64())
	}
	ols, err := Fit(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	ridge, err := Fit(xs, ys, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ridge.Coef[0]) >= math.Abs(ols.Coef[0]) {
		t.Fatalf("ridge |w|=%v not smaller than OLS |w|=%v",
			math.Abs(ridge.Coef[0]), math.Abs(ols.Coef[0]))
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil, 0); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, 0); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Fit([][]float64{{1}, {1, 2}}, []float64{1, 2}, 0); err == nil {
		t.Fatal("ragged features should error")
	}
}

func TestPredictPanicsOnWrongDim(t *testing.T) {
	m := &Model{Coef: []float64{1, 2}, Intercept: 0}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Predict([]float64{1})
}

func TestR2Degenerate(t *testing.T) {
	m := &Model{Coef: []float64{0}, Intercept: 5}
	// Constant targets: no variance to explain.
	if r2 := m.R2([][]float64{{1}, {2}}, []float64{5, 5}); r2 != 0 {
		t.Fatalf("R2 on constant targets = %v, want 0", r2)
	}
	if r2 := m.R2(nil, nil); r2 != 0 {
		t.Fatalf("R2 on empty = %v, want 0", r2)
	}
}

func TestInterceptOnlyModel(t *testing.T) {
	// Zero-dimensional features: model fits the mean.
	xs := [][]float64{{}, {}, {}, {}}
	ys := []float64{2, 4, 6, 8}
	m, err := Fit(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-5) > 1e-9 {
		t.Fatalf("intercept = %v, want 5", m.Intercept)
	}
	if p := m.Predict([]float64{}); math.Abs(p-5) > 1e-9 {
		t.Fatalf("predict = %v", p)
	}
}

func TestDuplicatedColumnFallsBackToRidge(t *testing.T) {
	// A duplicated feature column makes X'X exactly singular: OLS has no
	// unique solution. Fit must fall back to a ridge-regularized solve
	// and return finite coefficients whose predictions match the data,
	// never NaN.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 50; i++ {
		x := float64(i) / 10
		xs = append(xs, []float64{x, x, 1}) // col 1 duplicates col 0; col 2 constant
		ys = append(ys, 2+3*x)
	}
	m, err := Fit(xs, ys, 0)
	if err != nil {
		t.Fatalf("Fit on duplicated column: %v", err)
	}
	for i, c := range m.Coef {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("coef[%d] = %v, want finite", i, c)
		}
	}
	if math.IsNaN(m.Intercept) || math.IsInf(m.Intercept, 0) {
		t.Fatalf("intercept = %v, want finite", m.Intercept)
	}
	for i, x := range xs {
		if p := m.Predict(x); math.Abs(p-ys[i]) > 0.05 {
			t.Fatalf("predict(%v) = %v, want ~%v", x, p, ys[i])
		}
	}
}

func TestWellConditionedFitUnchangedByFallback(t *testing.T) {
	// The fallback must not engage on a healthy design: the plain OLS
	// solution is bit-identical with what solve() returns directly.
	xs := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}, {0.5, 2}}
	ys := []float64{1, 2, 3.1, 4, 4.9}
	m, err := Fit(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Coef {
		if m.Coef[i] != m2.Coef[i] {
			t.Fatalf("non-deterministic fit: %v vs %v", m.Coef, m2.Coef)
		}
	}
}
