// Package linreg implements ordinary-least-squares and ridge linear
// regression via the normal equations. The paper's per-branch latency
// model L0(b, f_L) is "a linear regression model defined on each branch b
// using the light-weight features f_L" (Sec. 3.2); package sched fits one
// Model per execution branch.
package linreg

import (
	"errors"
	"fmt"
	"math"
)

// Model is a fitted linear model y = Intercept + sum_i Coef[i] * x[i].
type Model struct {
	Coef      []float64
	Intercept float64
}

// ErrSingular is returned when the design matrix is rank deficient and no
// ridge penalty was supplied.
var ErrSingular = errors.New("linreg: singular design matrix")

// Fit solves min ||y - Xw||^2 + lambda ||w||^2 (lambda 0 gives OLS) and
// returns the fitted model. An intercept column is added automatically
// and is not penalized.
func Fit(xs [][]float64, ys []float64, lambda float64) (*Model, error) {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return nil, fmt.Errorf("linreg: %d samples vs %d targets", n, len(ys))
	}
	d := len(xs[0])
	for i, x := range xs {
		if len(x) != d {
			return nil, fmt.Errorf("linreg: sample %d has %d features, want %d", i, len(x), d)
		}
	}
	// Augmented dimension: intercept last.
	p := d + 1
	// Normal equations: A = X'X + lambda*I (no penalty on intercept),
	// b = X'y.
	a := make([][]float64, p)
	for i := range a {
		a[i] = make([]float64, p)
	}
	b := make([]float64, p)
	for i := 0; i < n; i++ {
		row := xs[i]
		for j := 0; j < d; j++ {
			for k := j; k < d; k++ {
				a[j][k] += row[j] * row[k]
			}
			a[j][d] += row[j]
			b[j] += row[j] * ys[i]
		}
		a[d][d]++
		b[d] += ys[i]
	}
	// Mirror the upper triangle and apply the ridge penalty.
	for j := 0; j < p; j++ {
		for k := 0; k < j; k++ {
			a[j][k] = a[k][j]
		}
	}
	for j := 0; j < d; j++ {
		a[j][j] += lambda
	}

	w, err := solve(a, b)
	if err == nil && finite(w) {
		return &Model{Coef: w[:d], Intercept: w[d]}, nil
	}
	// Rank-deficient (or numerically indistinguishable from it) design:
	// collinear feature columns make X'X singular, and a tiny ridge can
	// still leave the elimination with pivots small enough to blow
	// coefficients up to NaN/Inf. Escalate the ridge penalty until the
	// system solves with finite coefficients — the regularized solution
	// predicts correctly even though the collinear columns share their
	// weight arbitrarily.
	for l := math.Max(lambda, 1e-8) * 100; l <= 1e-2; l *= 100 {
		for j := 0; j < d; j++ {
			a[j][j] += l
		}
		if w, err = solve(a, b); err == nil && finite(w) {
			return &Model{Coef: w[:d], Intercept: w[d]}, nil
		}
	}
	if err == nil {
		err = ErrSingular
	}
	return nil, err
}

// finite reports whether every coefficient is a usable number.
func finite(w []float64) bool {
	for _, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// the system.
func solve(a [][]float64, b []float64) ([]float64, error) {
	p := len(a)
	m := make([][]float64, p)
	for i := range m {
		m[i] = append(append([]float64{}, a[i]...), b[i])
	}
	for col := 0; col < p; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < p; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv := 1 / m[col][col]
		for c := col; c <= p; c++ {
			m[col][c] *= inv
		}
		for r := 0; r < p; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col]
			for c := col; c <= p; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, p)
	for i := range out {
		out[i] = m[i][p]
	}
	return out, nil
}

// Predict evaluates the model on one feature vector.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != len(m.Coef) {
		panic(fmt.Sprintf("linreg: predict got %d features, want %d", len(x), len(m.Coef)))
	}
	y := m.Intercept
	for i, c := range m.Coef {
		y += c * x[i]
	}
	return y
}

// R2 returns the coefficient of determination of the model on the given
// data, or 0 when the targets have no variance.
func (m *Model) R2(xs [][]float64, ys []float64) float64 {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0
	}
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var ssRes, ssTot float64
	for i, x := range xs {
		d := ys[i] - m.Predict(x)
		ssRes += d * d
		t := ys[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}
