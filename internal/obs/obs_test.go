package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total")
	g := r.Gauge("depth")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
	if got := g.Value(); got != 999 {
		t.Fatalf("gauge = %v, want 999", got)
	}
	if r.Counter("hits_total") != c {
		t.Fatal("counter handle must be stable across lookups")
	}
	c.Add(-5)
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter moved backwards: %v", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", []float64{10, 20, 50})
	for _, v := range []float64{5, 10, 15, 30, 100} {
		h.Observe(v)
	}
	s := r.Snapshot()
	hs := s.Histograms["lat_ms"]
	want := []uint64{2, 1, 1, 1} // le=10 gets 5 and 10 (le is inclusive), le=20 gets 15, le=50 gets 30, +Inf gets 100
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
	if hs.Count != 5 || hs.Sum != 160 {
		t.Fatalf("count=%d sum=%v, want 5/160", hs.Count, hs.Sum)
	}
}

func TestSnapshotTextDeterministicAndPrometheusShaped(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		r.Counter("b_total").Add(2)
		r.Counter("a_total").Add(1)
		r.Gauge(`g{stream="s1"}`).Set(0.5)
		r.Gauge(`g{stream="s0"}`).Set(0.25)
		h := r.Histogram(`lat_ms{class="gold"}`, []float64{10, 20})
		h.Observe(5)
		h.Observe(15)
		h.Observe(99)
		return r.Snapshot()
	}
	text := build().Text()
	if text != build().Text() {
		t.Fatalf("identical registries must render identical text:\n%s", text)
	}
	for _, want := range []string{
		"# TYPE a_total counter",
		"# TYPE g gauge",
		`g{stream="s0"} 0.25`,
		"# TYPE lat_ms histogram",
		`lat_ms_bucket{class="gold",le="10"} 1`,
		`lat_ms_bucket{class="gold",le="20"} 2`,
		`lat_ms_bucket{class="gold",le="+Inf"} 3`,
		`lat_ms_sum{class="gold"} 119`,
		`lat_ms_count{class="gold"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("text missing %q:\n%s", want, text)
		}
	}
	// Families render in sorted order.
	if strings.Index(text, "a_total") > strings.Index(text, "b_total") {
		t.Fatalf("families not sorted:\n%s", text)
	}
}

func TestNilSafety(t *testing.T) {
	var o *Observer
	var r *Registry
	o.Registry().Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", []float64{1}).Observe(2)
	if v := r.Counter("x").Value(); v != 0 {
		t.Fatalf("nil counter value = %v", v)
	}
	so := o.StreamObserver(0, "s")
	if so != nil {
		t.Fatal("nil observer must yield a nil stream view")
	}
	so.BeginDecision(0, 0)
	if so.Pending() != nil {
		t.Fatal("nil stream view must have no pending decision")
	}
	so.EndGoF(8, 30)
	so.Close()
	if got := o.Decisions(); got != nil {
		t.Fatalf("nil observer decisions = %v", got)
	}
	if text := o.Snapshot().Text(); text != "" {
		t.Fatalf("nil observer snapshot text = %q", text)
	}
	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil observer trace: err=%v len=%d", err, buf.Len())
	}
}

func TestDecisionLifecycleAndOrdering(t *testing.T) {
	o := New()
	// Two streams recording interleaved, as parallel rounds would.
	s0 := o.StreamObserver(0, "a")
	s1 := o.StreamObserver(1, "b")
	d := s1.BeginDecision(0, 0)
	d.Branch = "s224_n1_det"
	s1.EndGoF(1, 40)
	d = s0.BeginDecision(0, 0)
	d.Branch = "s448_n20_kcf_g8_d2"
	s0.EndGoF(8, 25)
	d = s0.BeginDecision(8, 200)
	d.Branch = "s448_n20_kcf_g8_d2"
	s0.Close() // trailing GoF: committed without realized fields

	got := o.Decisions()
	if len(got) != 3 {
		t.Fatalf("decisions = %d, want 3", len(got))
	}
	if got[0].Stream != 0 || got[0].Seq != 0 || got[1].Seq != 1 || got[2].Stream != 1 {
		t.Fatalf("trace not ordered by (stream, seq): %+v", got)
	}
	if got[0].GoFFrames != 8 || got[0].RealizedMS != 25 {
		t.Fatalf("realized fields lost: %+v", got[0])
	}
	if got[0].StreamName != "a" || got[2].StreamName != "b" {
		t.Fatalf("stream names lost: %+v", got)
	}

	var b1, b2 bytes.Buffer
	if err := o.WriteTrace(&b1); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteTrace(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("repeated WriteTrace must be byte-identical")
	}
	if lines := bytes.Count(b1.Bytes(), []byte("\n")); lines != 3 {
		t.Fatalf("trace lines = %d, want 3", lines)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1.5)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_ms", DefaultLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 200))
	}
}

func BenchmarkDecisionRecord(b *testing.B) {
	o := New()
	so := o.StreamObserver(0, "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := so.BeginDecision(i, float64(i))
		d.Branch = "s448_n20_kcf_g8_d2"
		d.PredLatencyMS = 25
		so.EndGoF(8, 26)
	}
}

// TestLabeledMemoization pins the Labeled cache contract: canonical
// rendering (sorted keys, escaping, empty labels dropped) is unchanged,
// repeated calls return the identical string, call-order variants of
// one label set converge on one canonical name, and the steady-state
// hit path allocates nothing.
func TestLabeledMemoization(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Labeled("m"), "m"},
		{Labeled("m", L("b", "2"), L("a", "1")), `m{a="1",b="2"}`},
		{Labeled("m", L("a", "1"), L("b", "2")), `m{a="1",b="2"}`},
		{Labeled("m", L("", "x"), L("k", "")), "m"},
		{Labeled("m", L("k", `v"\`+"\n")), `m{k="v\"\\\n"}`},
		{Labeled("m", L("c", "3"), L("a", "1"), L("b", "2")), `m{a="1",b="2",c="3"}`},
		// 4+ labels bypass the cache but render identically.
		{Labeled("m", L("d", "4"), L("c", "3"), L("b", "2"), L("a", "1")),
			`m{a="1",b="2",c="3",d="4"}`},
	}
	for i, c := range cases {
		if c.got != c.want {
			t.Fatalf("case %d: got %q, want %q", i, c.got, c.want)
		}
	}
	// Repeat calls hit the cache and agree byte for byte.
	for i := 0; i < 3; i++ {
		if got := Labeled("serve_rounds_total", L("board", "b7"), L("class", "gold")); got != `serve_rounds_total{board="b7",class="gold"}` {
			t.Fatalf("repeat %d: got %q", i, got)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		Labeled("serve_rounds_total", L("board", "b7"), L("class", "gold"))
	})
	if allocs != 0 {
		t.Fatalf("cached Labeled allocates %v/op, want 0", allocs)
	}
}
