package obs

import (
	"encoding/json"
	"io"
)

// FleetEvent is one fleet-dispatcher action, recorded at a fleet
// barrier: a stream placed on a board, migrated between boards, retired
// with no placement, rejected by fleet backpressure, or a board health
// transition. The dispatcher records events single-threaded in barrier
// order, so for fixed seeds the fleet trace is byte-identical across
// runs — the fleet-level analogue of the decision trace.
type FleetEvent struct {
	// Seq is the event's position in the fleet trace; Barrier the fleet
	// barrier (round) index it was recorded at.
	Seq     int `json:"seq"`
	Barrier int `json:"barrier"`
	// Kind is "place", "migrate", "retire", "reject", "board" or
	// "adapt" (a staged-rollout gate opening: From is the board whose
	// promotions cleared the stage, To the board being enabled). Open-
	// world runs add the workload lifecycle: "arrive" (an open-loop
	// arrival entered the fleet queue), "depart" (a stream retired, From
	// names its board) and "preempt" (a board evicted the stream at a
	// round barrier; the Reason carries the triggering tier). Crash
	// recovery adds "crash" (a board declared dead in virtual time —
	// From names it, Reason distinguishes scheduled fail-stop from
	// lease expiry), "restore" (a checkpointed stream restored onto
	// a surviving board; Replayed counts the GoFs of lost progress) and
	// "requeue" (an evacuated stream or unrestorable checkpoint
	// re-entered the fleet admission queue to wait for capacity).
	Kind string `json:"kind"`
	// Stream/Name identify the stream for stream-scoped events.
	Stream int    `json:"stream,omitempty"`
	Name   string `json:"name,omitempty"`
	// Tier/Tenant carry the stream's SLO class and tenant on workload
	// lifecycle events.
	Tier   string `json:"tier,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// From/To name boards: the source and destination of a migration,
	// the destination of a placement, the subject of a board event.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Reason says why (migration trigger, retirement cause, board health
	// transition).
	Reason string `json:"reason,omitempty"`
	// CostMS is the migration hand-off cost charged to the stream.
	CostMS float64 `json:"cost_ms,omitempty"`
	// PredAcc/PredMS are the placement score of the chosen board's best
	// feasible branch (predicted accuracy and per-frame latency).
	PredAcc float64 `json:"pred_acc,omitempty"`
	PredMS  float64 `json:"pred_ms,omitempty"`
	// Replayed is the GoFs of progress a "restore" event replays: the
	// gap between the stream's last observed position and its
	// checkpoint, bounded by the checkpoint interval.
	Replayed int `json:"replayed,omitempty"`
}

// RecordFleetEvent appends one event to the fleet trace, assigning its
// sequence number.
func (o *Observer) RecordFleetEvent(e FleetEvent) {
	if o == nil {
		return
	}
	o.mu.Lock()
	e.Seq = len(o.fleet)
	o.fleet = append(o.fleet, e)
	o.mu.Unlock()
}

// FleetEvents returns a copy of the fleet trace in record order.
func (o *Observer) FleetEvents() []FleetEvent {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]FleetEvent(nil), o.fleet...)
}

// WriteFleetTrace writes the fleet trace as JSON Lines, one event per
// line, in record order.
func (o *Observer) WriteFleetTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range o.FleetEvents() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
