package obs

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestExpositionGolden pins the Prometheus exposition format byte for
// byte: family sorting, TYPE lines, canonical label ordering (the
// stream/board labels the serving and fleet layers emit), histogram
// bucket/sum/count suffixes and float rendering. Run with -update to
// rewrite the golden file after a deliberate format change.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()

	// Fleet-level counters and gauges, unlabeled.
	r.Counter("fleet_placements_total").Add(6)
	r.Counter("fleet_migrations_total").Add(2)
	r.Gauge("fleet_boards").Set(3)
	r.Gauge("fleet_boards_quarantined").Set(1)

	// Board-labeled engine metrics, registered out of order to prove
	// sorting; Labeled builds the canonical sorted-label name.
	r.Counter(Labeled("serve_rounds_total", L("board", "b1"))).Add(3)
	r.Counter(Labeled("serve_rounds_total", L("board", "b0"))).Add(18)

	// Per-stream gauges carrying both stream and board labels.
	r.Gauge(Labeled("serve_stream_contention",
		L("stream", "stream-1"), L("board", "b1"))).Set(0.25)
	r.Gauge(Labeled("serve_stream_contention",
		L("stream", "stream-0"), L("board", "b0"))).Set(0.5)
	// A standalone server has no board: the empty label is dropped.
	r.Gauge(Labeled("serve_stream_contention",
		L("stream", "solo"), L("board", ""))).Set(0.125)

	// Board-scoped fault counters with a class label.
	r.Counter(Labeled("fault_fired_total",
		L("class", "panic"), L("board", "b1"))).Add(3)

	// A labeled histogram with escaping-sensitive label values.
	h := r.Histogram(Labeled("serve_round_ms", L("board", `b"\1`)), []float64{50, 200})
	h.Observe(25)
	h.Observe(100)
	h.Observe(400)

	got := r.Snapshot().Text()
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition text drifted from golden file (run with -update if deliberate)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
