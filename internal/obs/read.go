package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// ReadDecisions decodes a JSONL decision trace previously written by
// WriteTrace. Decoding is strict about well-formedness: a malformed or
// truncated record (a crash mid-write leaves a partial final line)
// fails with an error identifying the record, never a silently short
// slice — replay correctness depends on seeing either the whole corpus
// or a loud failure. Unknown fields are ignored, so newer traces load
// under older schemas and vice versa.
func ReadDecisions(r io.Reader) ([]Decision, error) {
	dec := json.NewDecoder(r)
	var out []Decision
	for {
		var d Decision
		switch err := dec.Decode(&d); err {
		case nil:
			out = append(out, d)
		case io.EOF:
			return out, nil
		default:
			return nil, fmt.Errorf("obs: decision record %d: %w", len(out)+1, err)
		}
	}
}

// ReadFleetEvents decodes a JSONL fleet trace previously written by
// WriteFleetTrace, with the same strictness as ReadDecisions.
func ReadFleetEvents(r io.Reader) ([]FleetEvent, error) {
	dec := json.NewDecoder(r)
	var out []FleetEvent
	for {
		var e FleetEvent
		switch err := dec.Decode(&e); err {
		case nil:
			out = append(out, e)
		case io.EOF:
			return out, nil
		default:
			return nil, fmt.Errorf("obs: fleet record %d: %w", len(out)+1, err)
		}
	}
}
