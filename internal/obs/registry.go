// Package obs is the observability layer: a lightweight metrics registry
// (counters, gauges, fixed-bucket histograms — safe for concurrent use,
// snapshot-able without stopping the world) and a structured trace of
// scheduler decisions recorded at every Group-of-Frames boundary.
//
// The layer is strictly passive: recording never touches a clock or an
// RNG, so enabling an Observer changes no scheduling decision. All
// timestamps are simulated milliseconds read from the stream's latency
// clock, never wall time, which keeps traces byte-identical across runs
// for fixed seeds.
//
// Every handle type (*Counter, *Gauge, *Histogram, *Observer,
// *StreamObserver) is safe to use as a nil receiver: operations no-op
// and reads return zero values. Callers therefore wire observability
// unconditionally and pay a nil check, not a branch per call site.
package obs

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64, safe for concurrent use.
type Counter struct{ bits atomic.Uint64 }

// Add increases the counter by v. Negative deltas are ignored: a counter
// only moves forward.
func (c *Counter) Add(v float64) {
	if c == nil || v <= 0 {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a settable float64, safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. The bucket layout is
// frozen at registration, so Observe is a binary search plus two atomic
// adds — no allocation, no locks.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	sum    Counter
	n      atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (Prometheus "le")
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// DefaultLatencyBuckets is the standard bucket layout for per-frame
// latency histograms, in simulated milliseconds, spanning the paper's
// SLO regimes (33.3 ms to 100 ms) with headroom for stalls.
var DefaultLatencyBuckets = []float64{1, 2, 5, 10, 16.7, 25, 33.3, 50, 75, 100, 150, 250, 500}

// Registry is a named collection of metrics. Handles are get-or-create
// and stable: callers look a handle up once and record through it, so
// the registry lock is off every hot path.
//
// Names follow the Prometheus convention, optionally with a baked-in
// label set: "serve_stream_contention{stream=\"stream-0\"}".
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket bounds on first use. Later registrations keep the
// first layout.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra trailing
	// entry for the implicit +Inf bucket. Counts are per-bucket, not
	// cumulative.
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot is a point-in-time copy of a registry. Maps are fresh copies;
// mutating them does not touch the live registry.
type Snapshot struct {
	Counters   map[string]float64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies the registry's current values without stopping
// writers: handles are read atomically, so concurrent Observe/Add calls
// proceed during the copy.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Sum:    h.sum.Value(),
			Count:  h.n.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// Label is one metric label for Labeled names.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// escapeLabelValue escapes a label value per the Prometheus text format
// (backslash, double quote, newline).
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// labeledKey memoizes Labeled renders by (base, labels-as-given): a
// comparable struct, so the cache map needs no boxing and a hit
// allocates nothing. Up to three labels are keyed (no call site uses
// more); two call orders of the same set simply occupy two entries that
// map to the same canonical string.
type labeledKey struct {
	base       string
	n          int
	l0, l1, l2 Label
}

var (
	labeledMu    sync.RWMutex
	labeledCache = map[labeledKey]string{}
)

// Labeled renders the canonical registry name for a metric with labels:
// the base name followed by the label set sorted by key, with values
// escaped — e.g. Labeled("serve_stream_occupancy", L("stream", "s0"),
// L("board", "b1")) is `serve_stream_occupancy{board="b1",stream="s0"}`.
// Canonical ordering means every call site addresses the same series by
// the same name, exposition output sorts deterministically, and
// aggregation queries can select on any label dimension. Labels with an
// empty key or value are dropped (so optional dimensions, like the
// board label outside a fleet, simply vanish).
//
// Renders are memoized process-wide: round loops touch the same few
// (base, labels) tuples every barrier, so after warmup a call is one
// read-locked map probe with zero allocation. The cache is bounded by
// the distinct metric×label tuples a process ever renders.
func Labeled(base string, labels ...Label) string {
	if len(labels) > 3 {
		return renderLabeled(base, labels)
	}
	k := labeledKey{base: base, n: len(labels)}
	switch len(labels) {
	case 3:
		k.l2 = labels[2]
		fallthrough
	case 2:
		k.l1 = labels[1]
		fallthrough
	case 1:
		k.l0 = labels[0]
	}
	labeledMu.RLock()
	name, ok := labeledCache[k]
	labeledMu.RUnlock()
	if ok {
		return name
	}
	name = renderLabeled(base, labels)
	labeledMu.Lock()
	labeledCache[k] = name
	labeledMu.Unlock()
	return name
}

// renderLabeled is the uncached render. It keeps the label slice on the
// stack (fixed scratch array, closure-free insertion sort) so the
// variadic argument at Labeled call sites does not escape.
func renderLabeled(base string, labels []Label) string {
	var scratch [8]Label
	kept := scratch[:0]
	for _, l := range labels {
		if l.Key != "" && l.Value != "" {
			if len(kept) == cap(kept) { // >8 kept labels: grow off-stack
				grown := make([]Label, len(kept), 2*cap(kept))
				copy(grown, kept)
				kept = grown
			}
			kept = append(kept, l)
		}
	}
	if len(kept) == 0 {
		return base
	}
	for i := 1; i < len(kept); i++ { // insertion sort by key, stable
		for j := i; j > 0 && kept[j].Key < kept[j-1].Key; j-- {
			kept[j], kept[j-1] = kept[j-1], kept[j]
		}
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, l := range kept {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// splitName separates a metric name from its baked-in label set.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// formatFloat renders a sample value the way the Prometheus text format
// does, with the shortest round-trip representation (deterministic for
// identical values).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Text renders the snapshot in Prometheus exposition style: one # TYPE
// line per metric family, histogram buckets cumulative under "le"
// labels. Metric names are sorted and bucket lines keep their natural
// (ascending-bound) order, so identical snapshots render to identical
// bytes.
func (s Snapshot) Text() string {
	families := map[string]string{} // base name -> type
	note := func(name, typ string) {
		base, _ := splitName(name)
		families[base] = typ
	}
	for name := range s.Counters {
		note(name, "counter")
	}
	for name := range s.Gauges {
		note(name, "gauge")
	}
	for name := range s.Histograms {
		note(name, "histogram")
	}
	counters, gauges, hists := sortedKeys(s.Counters), sortedKeys(s.Gauges), sortedKeys(s.Histograms)

	var b strings.Builder
	for _, base := range sortedKeys(families) {
		b.WriteString("# TYPE " + base + " " + families[base] + "\n")
		for _, name := range counters {
			if nb, _ := splitName(name); nb == base {
				b.WriteString(name + " " + formatFloat(s.Counters[name]) + "\n")
			}
		}
		for _, name := range gauges {
			if nb, _ := splitName(name); nb == base {
				b.WriteString(name + " " + formatFloat(s.Gauges[name]) + "\n")
			}
		}
		for _, name := range hists {
			if nb, _ := splitName(name); nb != base {
				continue
			}
			h := s.Histograms[name]
			_, labels := splitName(name)
			withLE := func(le string) string {
				if labels == "" {
					return base + `_bucket{le="` + le + `"}`
				}
				return base + `_bucket{` + labels + `,le="` + le + `"}`
			}
			cum := uint64(0)
			for i, c := range h.Counts {
				cum += c
				le := "+Inf"
				if i < len(h.Bounds) {
					le = formatFloat(h.Bounds[i])
				}
				b.WriteString(withLE(le) + " " + strconv.FormatUint(cum, 10) + "\n")
			}
			suffix := ""
			if labels != "" {
				suffix = "{" + labels + "}"
			}
			b.WriteString(base + "_sum" + suffix + " " + formatFloat(h.Sum) + "\n")
			b.WriteString(base + "_count" + suffix + " " + strconv.FormatUint(h.Count, 10) + "\n")
		}
	}
	return b.String()
}
