package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// fullDecision returns a Decision with every field populated — fault,
// adaptation and recovery state, and the full replay payload — so the
// round-trip exercises the entire wire schema.
func fullDecision() Decision {
	return Decision{
		Stream: 3, StreamName: "stream-3", Seq: 7, Frame: 56, Gen: 2,
		SimMS:      1234.5,
		Policy:     "LiteReconfig",
		Contention: 0.42,
		Features:   []string{"resnet", "hoc"}, BenefitMAP: 0.031, FeatureCostMS: 11.5,
		Branch: "s8_n8_trk", Switched: true, SwitchCostMS: 3.25,
		PredAccuracy: 0.61, PredLatencyMS: 29.7, FeasibleBranches: 12, Fallback: true,
		SchedMS: 4.75,
		FaultMS: 8.5, FaultEvents: []string{"spike"},
		Degrade: 1, Breaker: "half-open", FailedFeatures: []string{"hog"},
		AdaptVersion: "s3.v2", AdaptEvent: "promote",
		AdaptChampErrMS: 2.1, AdaptChalErrMS: 1.6,
		GoFFrames: 8, RealizedMS: 31.25,
		Replay: &ReplayPayload{
			SLOMS: 33.3, SafetyFactor: 0.95, BudgetMS: 31.635,
			Hysteresis: 0.01, CostWeight: 0.5,
			S0MS: 1.5, SchedSpentMS: 4.75,
			ManageOverhead: true, DisableSwitchCost: true,
			HasCur: true, CurBranch: "s4_n4_det",
			SwitchMS: []float64{0, 1.5, 2.25},
			GPUScale: 1.31, CPUScale: 1.08, CPUAdj: 1.02,
			NumBranches: 3,
			Light:       []float64{0.1, 0.2, 0.3, 0.4},
			Heavy:       map[string][]float64{"resnet": {1, 2}, "hoc": {3}},
			AccLight:    []float64{0.5, 0.55, 0.6},
			Acc:         []float64{0.52, 0.57, 0.61},
			KernelMS:    []float64{10.5, 20.25, 30.125},
			FeatCostMS:  map[string]float64{"resnet": 9.5, "hoc": 2.25},
		},
	}
}

// TestDecisionRoundTrip pins the write → read → write cycle: a fully
// populated trace decodes back structurally identical and re-encodes to
// the same bytes. Any schema field that fails to survive the trip —
// replay payload included — breaks counterfactual replay.
func TestDecisionRoundTrip(t *testing.T) {
	o := New()
	o.record(fullDecision())
	bare := fullDecision()
	bare.Stream, bare.Seq, bare.Gen = 4, 0, 0
	bare.Replay = nil
	o.record(bare)

	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	got, err := ReadDecisions(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	want := o.Decisions()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip mutated the trace:\ngot  %+v\nwant %+v", got, want)
	}

	re := New()
	for _, d := range got {
		re.record(d)
	}
	var buf2 bytes.Buffer
	if err := re.WriteTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Fatalf("re-encoded trace differs from the original:\ngot  %s\nwant %s",
			buf2.String(), first)
	}
}

// TestDecisionSchemaGolden pins the serialized form of a fully
// populated decision against a golden file: field names, order and
// omitempty behavior are the wire contract that recorded corpora and
// external consumers depend on. Regenerate with -update after a
// deliberate schema change.
func TestDecisionSchemaGolden(t *testing.T) {
	o := New()
	o.record(fullDecision())
	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "decision_schema.golden.jsonl"), buf.Bytes())
}

// compareGolden pins got against the golden file, honoring the
// package's -update flag (shared with the exposition golden).
func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("serialized schema drifted from golden (run with -update if deliberate)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestDecisionOmitsOptional pins the other half of the omitempty
// contract: a minimal healthy decision without the replay flag must not
// leak any of the optional keys — that is what keeps pre-replay traces
// byte-identical.
func TestDecisionOmitsOptional(t *testing.T) {
	o := New()
	o.record(Decision{Stream: 1, Seq: 2, Frame: 16, SimMS: 10, Branch: "b", GoFFrames: 8})
	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"replay", "gen", "degrade", "breaker", "fault",
		"adapt", "failed_features", "policy", "features", "fallback", "switched"} {
		if strings.Contains(buf.String(), `"`+key) {
			t.Fatalf("minimal decision leaked optional key %q: %s", key, buf.String())
		}
	}
}

// TestFleetEventRoundTrip does the same write → read check for the
// fleet trace.
func TestFleetEventRoundTrip(t *testing.T) {
	o := New()
	o.RecordFleetEvent(FleetEvent{Barrier: 0, Kind: "place", Stream: 1, Name: "s1",
		Tier: "gold", Tenant: "t0", To: "b0", Reason: "admit", PredAcc: 0.6, PredMS: 30})
	o.RecordFleetEvent(FleetEvent{Barrier: 4, Kind: "migrate", Stream: 1, From: "b0",
		To: "b1", Reason: "pressure", CostMS: 12.5})
	o.RecordFleetEvent(FleetEvent{Barrier: 6, Kind: "restore", Stream: 1, To: "b2",
		Replayed: 2})

	var buf bytes.Buffer
	if err := o.WriteFleetTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFleetEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, o.FleetEvents()) {
		t.Fatalf("fleet round-trip mutated the trace:\ngot  %+v\nwant %+v",
			got, o.FleetEvents())
	}
}

// TestReadRejectsMalformed: decoders must identify the broken record,
// not return a silently short slice.
func TestReadRejectsMalformed(t *testing.T) {
	o := New()
	o.record(fullDecision())
	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadDecisions(bytes.NewReader(data[:len(data)-20])); err == nil {
		t.Fatal("truncated decision trace decoded without error")
	}
	if _, err := ReadFleetEvents(strings.NewReader("{\"kind\":\"place\"}\n{oops\n")); err == nil {
		t.Fatal("malformed fleet trace decoded without error")
	}
}
