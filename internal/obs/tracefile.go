package obs

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// CreateTrace creates a trace file for writing, transparently
// gzip-compressing when the path ends in ".gz". Replay-enriched traces
// carry per-branch prediction tables and heavy feature vectors, so
// compressed corpora are the expected on-disk form. The returned
// WriteCloser flushes the compressor and the file on Close.
func CreateTrace(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	return &gzipFile{zw: gzip.NewWriter(f), f: f}, nil
}

// gzipFile couples a gzip writer to its underlying file so one Close
// finishes both.
type gzipFile struct {
	zw *gzip.Writer
	f  *os.File
}

func (g *gzipFile) Write(p []byte) (int, error) { return g.zw.Write(p) }

func (g *gzipFile) Close() error {
	zerr := g.zw.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// OpenTrace opens a trace file for reading, transparently decompressing
// gzip. Detection is by content (the 0x1f 0x8b magic), not extension,
// so a compressed trace reads correctly whatever it was named.
func OpenTrace(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	br := bufio.NewReader(f)
	magic, err := br.Peek(2)
	if err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("obs: %s: %w", path, err)
		}
		return &gzipReadFile{zr: zr, f: f}, nil
	}
	// Short or plain files (including empty ones) read as-is.
	return &bufReadFile{br: br, f: f}, nil
}

type gzipReadFile struct {
	zr *gzip.Reader
	f  *os.File
}

func (g *gzipReadFile) Read(p []byte) (int, error) { return g.zr.Read(p) }

func (g *gzipReadFile) Close() error {
	zerr := g.zr.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

type bufReadFile struct {
	br *bufio.Reader
	f  *os.File
}

func (b *bufReadFile) Read(p []byte) (int, error) { return b.br.Read(p) }

func (b *bufReadFile) Close() error { return b.f.Close() }
