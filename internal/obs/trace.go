package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Decision is one scheduler decision at a Group-of-Frames boundary: what
// the scheduler saw, what it predicted, what it chose, and — filled in
// once the GoF has executed — what actually happened. Timestamps are
// simulated milliseconds on the stream's clock.
type Decision struct {
	// Stream and StreamName identify the stream; Seq is the per-stream
	// decision index and Frame the global frame index at the boundary.
	Stream     int    `json:"stream"`
	StreamName string `json:"stream_name,omitempty"`
	Seq        int    `json:"seq"`
	Frame      int    `json:"frame"`
	// Gen is the stream's recovery generation: 0 (omitted) for the
	// original incarnation, n for the incarnation restored from its
	// n-th checkpoint recovery. Replayed decisions after a board crash
	// would otherwise collide with the lost incarnation's (stream, seq)
	// coordinates in the shared trace.
	Gen int `json:"gen,omitempty"`
	// SimMS is the stream's simulated clock at decision start.
	SimMS float64 `json:"sim_ms"`

	// Policy is the scheduler variant; Contention the contention level
	// the scheduler planned against (sensed, or ground truth under the
	// oracle ablation).
	Policy     string  `json:"policy,omitempty"`
	Contention float64 `json:"contention"`

	// Features is the heavy feature set the cost-benefit analyzer
	// selected; BenefitMAP its Ben(f_H) verdict (net objective gain of
	// the set over light-only, in predicted mAP) and FeatureCostMS the
	// predicted extract+predict cost it weighed against that gain.
	Features      []string `json:"features,omitempty"`
	BenefitMAP    float64  `json:"benefit_map"`
	FeatureCostMS float64  `json:"feature_cost_ms"`

	// Branch is the chosen execution branch; Switched and SwitchCostMS
	// record the reconfiguration actually charged by the kernel.
	Branch       string  `json:"branch"`
	Switched     bool    `json:"switched,omitempty"`
	SwitchCostMS float64 `json:"switch_cost_ms"`

	// PredAccuracy and PredLatencyMS are the Eq. 3 terms for the chosen
	// branch: predicted A(b, f) and predicted per-frame latency L(b, f)
	// including the amortized scheduler and switching overhead.
	// FeasibleBranches counts the branches that fit the SLO budget;
	// Fallback marks a decision where none did and the scheduler
	// degraded to the cheapest branch.
	PredAccuracy     float64 `json:"pred_acc"`
	PredLatencyMS    float64 `json:"pred_lat_ms"`
	FeasibleBranches int     `json:"feasible_branches"`
	Fallback         bool    `json:"fallback,omitempty"`

	// SchedMS is the realized scheduler cost of this decision (feature
	// extraction, model inference, optimization) on the simulated clock.
	SchedMS float64 `json:"sched_ms"`

	// Fault and degradation state (all omitted on a healthy, unfaulted
	// decision, so unfaulted traces are byte-identical with older runs).
	// FaultMS is injected fault latency (spikes, stalls) charged at this
	// GoF boundary and FaultEvents names the fired events; Degrade is
	// the watchdog's branch-ladder level (0 = normal, higher = cheaper
	// branches forced); Breaker is the heavy-feature circuit state when
	// not closed ("open", "half-open"); FailedFeatures lists heavy
	// extractions that failed this decision.
	FaultMS        float64  `json:"fault_ms,omitempty"`
	FaultEvents    []string `json:"fault_events,omitempty"`
	Degrade        int      `json:"degrade,omitempty"`
	Breaker        string   `json:"breaker,omitempty"`
	FailedFeatures []string `json:"failed_features,omitempty"`

	// Online-adaptation state (all omitted when adaptation is off, so
	// unadapted traces are byte-identical with older runs). AdaptVersion
	// is the champion model version serving this decision ("v0" until
	// the first promotion, then registry labels like "s3.v2");
	// AdaptEvent marks a rollout action taken at the preceding GoF
	// barrier ("promote" or "demote"); AdaptChampErrMS and
	// AdaptChalErrMS are the shadow-error EWMAs (|predicted − realized|
	// per-frame GoF latency) of champion and challenger.
	AdaptVersion    string  `json:"adapt_version,omitempty"`
	AdaptEvent      string  `json:"adapt_event,omitempty"`
	AdaptChampErrMS float64 `json:"adapt_champ_err_ms,omitempty"`
	AdaptChalErrMS  float64 `json:"adapt_chal_err_ms,omitempty"`

	// GoFFrames and RealizedMS close the loop once the GoF has run: the
	// realized GoF length and its realized GoF-averaged per-frame
	// latency, directly comparable with PredLatencyMS.
	GoFFrames  int     `json:"gof_frames"`
	RealizedMS float64 `json:"realized_ms"`

	// Risk-aware admission state (all omitted under legacy mean
	// admission — RiskQuantile 0 — so existing traces stay
	// byte-identical; appended after the older fields so their
	// serialized order is unchanged). RiskQ is the configured admission
	// quantile; PredP95MS the chosen branch's q-quantile per-frame
	// latency — the point estimate lifted by the lognormal prediction
	// interval, named for the paper's default q = 0.95; FailProb its
	// predicted tracker-failure probability. RealizedMS <= PredP95MS
	// per decision is what the empirical-coverage calibration counts.
	RiskQ     float64 `json:"risk_q,omitempty"`
	PredP95MS float64 `json:"pred_p95_ms,omitempty"`
	FailProb  float64 `json:"fail_prob,omitempty"`

	// Replay is the opt-in counterfactual-replay payload: the full set
	// of scheduler *inputs* behind this decision, rich enough for
	// internal/replay to re-run the branch/feature optimization offline
	// under altered policy knobs. Nil (and omitted) unless the run was
	// configured with ReplayTrace, so existing traces stay
	// byte-identical. It is the last field so the serialized order of
	// all older fields is unchanged.
	Replay *ReplayPayload `json:"replay,omitempty"`
}

// ReplayPayload captures everything the scheduler consumed while taking
// one decision — knobs, sensed environment, feature vectors, and the
// per-branch prediction tables of Eq. 3 for the full candidate set.
// Replaying the *unchanged* policy over these inputs must reproduce the
// recorded decision exactly (the fidelity invariant internal/replay
// enforces); altering a knob yields a counterfactual decision priced by
// the same tables.
type ReplayPayload struct {
	// SLOMS, SafetyFactor, BudgetMS, Hysteresis and CostWeight are the
	// policy knobs the decision planned under (BudgetMS = SLO x safety).
	SLOMS        float64 `json:"slo_ms"`
	SafetyFactor float64 `json:"safety_factor"`
	BudgetMS     float64 `json:"budget_ms"`
	Hysteresis   float64 `json:"hysteresis,omitempty"`
	CostWeight   float64 `json:"cost_weight,omitempty"`
	// S0MS is the estimated light-path scheduler cost (extract +
	// predict) the cost-benefit analyzer amortizes; SchedSpentMS the
	// realized scheduler spend at constrained-optimization time (light
	// path plus any heavy extraction/prediction actually charged).
	S0MS         float64 `json:"s0_ms"`
	SchedSpentMS float64 `json:"sched_spent_ms"`
	// ManageOverhead mirrors the policy's overhead regime: false for
	// the greedy MaxContent/ForceFeature variants, which apply the SLO
	// to the kernel only. DisableSwitchCost mirrors the C(b0,b)
	// ablation knob.
	ManageOverhead    bool `json:"manage_overhead,omitempty"`
	DisableSwitchCost bool `json:"no_switch_cost,omitempty"`
	// HasCur and CurBranch identify the branch the kernel was on (the
	// b0 of the switching cost); SwitchMS is C(b0, b) per candidate
	// branch as the scheduler priced it (adapter-observed estimates
	// included), present only when HasCur.
	HasCur    bool      `json:"has_cur,omitempty"`
	CurBranch string    `json:"cur_branch,omitempty"`
	SwitchMS  []float64 `json:"switch_ms,omitempty"`
	// GPUScale and CPUScale convert base (TX2, zero-contention) costs
	// into planned milliseconds under the decision's device, sensed
	// contention and drift estimate: the scheduler's estimate(class, 1).
	// CPUAdj is the online-learned global CPU multiplier in effect.
	GPUScale float64 `json:"gpu_scale"`
	CPUScale float64 `json:"cpu_scale"`
	CPUAdj   float64 `json:"cpu_adj,omitempty"`
	// NumBranches pins the candidate-set size; a replay engine must
	// load a model bundle with the same branch space.
	NumBranches int `json:"num_branches"`
	// Light is the light feature vector; Heavy the extracted heavy
	// feature vectors by kind (only kinds that were actually extracted
	// this decision are present).
	Light []float64            `json:"light"`
	Heavy map[string][]float64 `json:"heavy,omitempty"`
	// AccLight is the content-agnostic per-branch accuracy prediction
	// A(b, f_L); Acc the content-aware A(b, f) under the extracted
	// feature set (omitted when no heavy feature survived — the two
	// are then identical). KernelMS is the per-branch kernel latency
	// estimate L0(b, f_L) scaled to planned milliseconds (device,
	// contention, drift, CPU adjustment and learned bias included).
	AccLight []float64 `json:"acc_light"`
	Acc      []float64 `json:"acc,omitempty"`
	KernelMS []float64 `json:"kernel_ms"`
	// FeatCostMS is the estimated extract+predict cost of every heavy
	// feature kind under this decision's device and contention — the
	// prices the cost-benefit analyzer weighed (recorded for all kinds,
	// selected or not, so replay can re-select under altered budgets).
	FeatCostMS map[string]float64 `json:"feat_cost_ms,omitempty"`
	// PolicyRev versions the admission procedure the decision was taken
	// under: 0 (omitted) is legacy mean admission, 1 is risk-aware
	// quantile admission. Replay dispatches on it so corpora recorded
	// before the risk procedure existed keep replaying under the old
	// procedure bit-exactly. RiskQ is the admission quantile, and
	// RiskFactor / FailProb carry the per-branch quantile inflation
	// factors and tracker-failure probabilities the admission consumed —
	// recorded verbatim so replay needs no variance state of its own.
	// All omitted under mean admission.
	PolicyRev  int       `json:"policy_rev,omitempty"`
	RiskQ      float64   `json:"risk_q,omitempty"`
	RiskFactor []float64 `json:"risk_factor,omitempty"`
	FailProb   []float64 `json:"fail_prob,omitempty"`
}

// Observer is the root observability sink for one run: a metrics
// Registry plus the decision trace. One Observer is shared by every
// stream of a run; per-stream recording goes through StreamObserver
// views. Safe for concurrent use.
type Observer struct {
	registry *Registry

	mu        sync.Mutex
	decisions []Decision
	fleet     []FleetEvent
}

// New builds an Observer with a fresh registry.
func New() *Observer { return &Observer{registry: NewRegistry()} }

// Registry returns the observer's metrics registry (nil for a nil
// observer, which every registry operation tolerates).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.registry
}

// Snapshot copies the observer's current metric values.
func (o *Observer) Snapshot() Snapshot { return o.Registry().Snapshot() }

// record appends one completed decision to the trace.
func (o *Observer) record(d Decision) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.decisions = append(o.decisions, d)
	o.mu.Unlock()
}

// Decisions returns a copy of the trace sorted by (stream, gen, seq).
// The order is independent of goroutine scheduling, so fixed-seed runs
// yield identical traces; a recovered stream's replayed decisions sort
// after its lost incarnation's.
func (o *Observer) Decisions() []Decision {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	out := append([]Decision(nil), o.decisions...)
	o.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stream != out[j].Stream {
			return out[i].Stream < out[j].Stream
		}
		if out[i].Gen != out[j].Gen {
			return out[i].Gen < out[j].Gen
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// WriteTrace writes the decision trace as JSON Lines, one decision per
// line, in (stream, seq) order.
func (o *Observer) WriteTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, d := range o.Decisions() {
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return nil
}

// StreamObserver is one stream's recording view: it builds up the
// pending decision across the scheduler (prediction-time fields) and
// the harness (realized-latency fields), then commits it to the shared
// trace. It is used from one goroutine at a time — the one running the
// stream's round — which the serving engine already guarantees.
type StreamObserver struct {
	o      *Observer
	stream int
	name   string
	gen    int

	seq        int
	pending    Decision
	hasPending bool
}

// StreamObserver returns a recording view bound to the given stream
// identity. A nil observer yields a nil view, on which every method
// no-ops.
func (o *Observer) StreamObserver(stream int, name string) *StreamObserver {
	return o.StreamObserverGen(stream, name, 0)
}

// StreamObserverGen is StreamObserver for a restored incarnation of a
// stream: decisions are stamped with the given recovery generation so
// they never collide with the lost incarnation's (stream, seq)
// coordinates. Generation 0 is the original incarnation and is omitted
// from the serialized trace.
func (o *Observer) StreamObserverGen(stream int, name string, gen int) *StreamObserver {
	if o == nil {
		return nil
	}
	return &StreamObserver{o: o, stream: stream, name: name, gen: gen}
}

// Registry returns the underlying metrics registry.
func (s *StreamObserver) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.o.Registry()
}

// BeginDecision opens the decision record for the GoF boundary at the
// given global frame and simulated time, committing any still-pending
// record first. The returned pointer stays valid until the next
// BeginDecision or EndGoF.
func (s *StreamObserver) BeginDecision(frame int, simMS float64) *Decision {
	if s == nil {
		return nil
	}
	s.commit()
	s.pending = Decision{
		Stream: s.stream, StreamName: s.name, Seq: s.seq, Gen: s.gen,
		Frame: frame, SimMS: simMS,
	}
	s.seq++
	s.hasPending = true
	return &s.pending
}

// Pending returns the open decision record, or nil when none is open.
// The scheduler uses it to attach prediction-time fields without
// knowing the stream identity.
func (s *StreamObserver) Pending() *Decision {
	if s == nil || !s.hasPending {
		return nil
	}
	return &s.pending
}

// EndGoF closes the open decision with the realized outcome of its GoF
// — frame count and GoF-averaged per-frame latency — and commits it.
func (s *StreamObserver) EndGoF(frames int, avgMS float64) {
	if s == nil || !s.hasPending {
		return
	}
	s.pending.GoFFrames = frames
	s.pending.RealizedMS = avgMS
	s.commit()
}

// Close commits a still-open decision (a trailing GoF cut short by the
// end of the corpus is flushed by the harness before Close, so this is
// a safety net).
func (s *StreamObserver) Close() {
	if s == nil {
		return
	}
	s.commit()
}

func (s *StreamObserver) commit() {
	if !s.hasPending {
		return
	}
	s.o.record(s.pending)
	s.hasPending = false
}
