package obs

import "litereconfig/internal/glm"

// RiskCalibration tallies the empirical prediction-interval coverage of
// a risk-admitted decision trace: per branch, the fraction of executed
// GoFs whose realized per-frame latency landed at or under the
// decision's predicted q-quantile. Decisions taken under mean admission
// (RiskQ 0) or never executed (GoFFrames 0) are skipped. Returns nil
// when the trace carries no risk-admitted decisions — the caller's cue
// that there is nothing to report.
func RiskCalibration(decisions []Decision) *glm.Calibration {
	var c *glm.Calibration
	for _, d := range decisions {
		if d.RiskQ <= 0 || d.GoFFrames <= 0 {
			continue
		}
		if c == nil {
			c = glm.NewCalibration(d.RiskQ)
		}
		c.Observe(d.Branch, d.RealizedMS <= d.PredP95MS+1e-9)
	}
	return c
}
