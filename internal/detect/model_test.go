package detect

import (
	"math"
	"math/rand"
	"testing"

	"litereconfig/internal/metric"
	"litereconfig/internal/vid"
)

func testVideo(seed int64) *vid.Video {
	return vid.Generate("v", seed, vid.GenConfig{Frames: 40})
}

func TestDetectDeterministic(t *testing.T) {
	v := testVideo(1)
	cfg := Config{Shape: 448, NProp: 50}
	a := FasterRCNN.Detect(v, v.Frames[5], cfg)
	b := FasterRCNN.Detect(v, v.Frames[5], cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("detection %d differs", i)
		}
	}
	// Different configs give different outcomes.
	c := FasterRCNN.Detect(v, v.Frames[5], Config{Shape: 224, NProp: 1})
	if len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
			}
		}
		if same {
			t.Fatal("different configs gave identical detections")
		}
	}
}

// mAPOf evaluates a model/config over several videos.
func mAPOf(t *testing.T, m Model, cfg Config, seeds ...int64) float64 {
	t.Helper()
	var frames []metric.FrameResult
	for _, s := range seeds {
		v := testVideo(s)
		for _, f := range v.Frames {
			frames = append(frames, metric.FrameResult{
				Truth: f.Objects,
				Dets:  m.Detect(v, f, cfg),
			})
		}
	}
	return metric.MeanAP(frames, metric.DefaultIoU)
}

var calibSeeds = []int64{1, 2, 3, 4, 5, 6, 7, 8}

func TestHeavierConfigsMoreAccurate(t *testing.T) {
	low := mAPOf(t, FasterRCNN, Config{Shape: 224, NProp: 1}, calibSeeds...)
	mid := mAPOf(t, FasterRCNN, Config{Shape: 448, NProp: 20}, calibSeeds...)
	high := mAPOf(t, FasterRCNN, Config{Shape: 576, NProp: 100}, calibSeeds...)
	if !(low < mid && mid < high) {
		t.Fatalf("accuracy not monotone in config weight: %.3f %.3f %.3f", low, mid, high)
	}
	if high < 0.45 {
		t.Fatalf("full-config Faster R-CNN mAP = %.3f, want >= 0.45", high)
	}
	if low > 0.45 {
		t.Fatalf("minimal-config mAP = %.3f suspiciously high", low)
	}
}

func TestCostMonotoneInConfig(t *testing.T) {
	m := FasterRCNN
	if m.CostMS(Config{Shape: 224, NProp: 1}) >= m.CostMS(Config{Shape: 576, NProp: 1}) {
		t.Fatal("cost not increasing in shape")
	}
	if m.CostMS(Config{Shape: 448, NProp: 1}) >= m.CostMS(Config{Shape: 448, NProp: 100}) {
		t.Fatal("cost not increasing in nprop")
	}
	// Single-stage models ignore nprop.
	if YOLOv3.CostMS(Config{Shape: 448, NProp: 1}) != YOLOv3.CostMS(Config{Shape: 448, NProp: 100}) {
		t.Fatal("YOLO cost should ignore nprop")
	}
}

func TestModelOrderingOnAccuracy(t *testing.T) {
	cfg := Config{Shape: 576, NProp: 100}
	frcnn := mAPOf(t, FasterRCNN, cfg, calibSeeds...)
	ssd := mAPOf(t, SSDMnasFPN, cfg, calibSeeds...)
	selsa := mAPOf(t, SELSA, cfg, calibSeeds...)
	effd0 := mAPOf(t, EfficientDetD0, cfg, calibSeeds...)
	if ssd >= frcnn {
		t.Fatalf("SSD (%.3f) should trail Faster R-CNN (%.3f)", ssd, frcnn)
	}
	if selsa <= frcnn {
		t.Fatalf("SELSA (%.3f) should beat Faster R-CNN (%.3f)", selsa, frcnn)
	}
	if selsa < 0.70 {
		t.Fatalf("SELSA mAP = %.3f, want >= 0.70 (paper band ~0.77)", selsa)
	}
	// EfficientDet-D0 sits between SSD and the video references.
	if effd0 <= ssd {
		t.Fatalf("EfficientDet-D0 (%.3f) should beat SSD (%.3f)", effd0, ssd)
	}
	d3 := mAPOf(t, EfficientDetD3, cfg, calibSeeds...)
	if d3 <= effd0 {
		t.Fatalf("EfficientDet-D3 (%.3f) should beat D0 (%.3f)", d3, effd0)
	}
}

func TestReferenceCostsMatchTable3(t *testing.T) {
	cfg := Config{Shape: 576, NProp: 100}
	if SELSA.CostMS(cfg) != 2112 {
		t.Fatalf("SELSA cost = %v", SELSA.CostMS(cfg))
	}
	if MEGA.CostMS(cfg) != 861 {
		t.Fatalf("MEGA cost = %v", MEGA.CostMS(cfg))
	}
	if REPP.CostMS(cfg) != 565 {
		t.Fatalf("REPP cost = %v", REPP.CostMS(cfg))
	}
	if EfficientDetD0.CostMS(cfg) != 138 || EfficientDetD3.CostMS(cfg) != 796 {
		t.Fatal("EfficientDet costs wrong")
	}
}

func TestAdaScaleCostBand(t *testing.T) {
	// Paper Table 3: AdaScale at scale 240 runs at 227.9 ms, scale 600
	// around 1049 ms.
	c240 := AdaScaleRCNN.CostMS(Config{Shape: 240})
	c600 := AdaScaleRCNN.CostMS(Config{Shape: 600})
	if c240 < 180 || c240 > 280 {
		t.Fatalf("AdaScale@240 cost = %v, want ~228", c240)
	}
	if c600 < 900 || c600 > 1200 {
		t.Fatalf("AdaScale@600 cost = %v, want ~1050", c600)
	}
}

func TestSmallObjectsNeedHighResolution(t *testing.T) {
	// On a small-object video, dropping the shape hurts much more than on
	// a large-object video.
	small := vid.GenerateWithProfile("s", 21, vid.GenConfig{Frames: 60},
		vid.ContentProfile{ObjectCount: 2, SizeFrac: 0.07, Speed: 3, Clutter: 0.3, Archetype: "t"})
	large := vid.GenerateWithProfile("l", 22, vid.GenConfig{Frames: 60},
		vid.ContentProfile{ObjectCount: 2, SizeFrac: 0.45, Speed: 3, Clutter: 0.3, Archetype: "t"})
	apOn := func(v *vid.Video, shape int) float64 {
		var frames []metric.FrameResult
		for _, f := range v.Frames {
			frames = append(frames, metric.FrameResult{
				Truth: f.Objects,
				Dets:  FasterRCNN.Detect(v, f, Config{Shape: shape, NProp: 100}),
			})
		}
		return metric.MeanAP(frames, metric.DefaultIoU)
	}
	dropSmall := apOn(small, 576) - apOn(small, 224)
	dropLarge := apOn(large, 576) - apOn(large, 224)
	if dropSmall <= dropLarge {
		t.Fatalf("small-object resolution drop %.3f should exceed large-object drop %.3f",
			dropSmall, dropLarge)
	}
}

func TestCrowdedScenesNeedMoreProposals(t *testing.T) {
	crowded := vid.GenerateWithProfile("c", 23, vid.GenConfig{Frames: 60},
		vid.ContentProfile{ObjectCount: 8, SizeFrac: 0.15, Speed: 3, Clutter: 0.5, Archetype: "t"})
	sparse := vid.GenerateWithProfile("p", 24, vid.GenConfig{Frames: 60},
		vid.ContentProfile{ObjectCount: 1, SizeFrac: 0.3, Speed: 3, Clutter: 0.2, Archetype: "t"})
	apOn := func(v *vid.Video, nprop int) float64 {
		var frames []metric.FrameResult
		for _, f := range v.Frames {
			frames = append(frames, metric.FrameResult{
				Truth: f.Objects,
				Dets:  FasterRCNN.Detect(v, f, Config{Shape: 576, NProp: nprop}),
			})
		}
		return metric.MeanAP(frames, metric.DefaultIoU)
	}
	gainCrowded := apOn(crowded, 100) - apOn(crowded, 1)
	gainSparse := apOn(sparse, 100) - apOn(sparse, 1)
	if gainCrowded <= gainSparse {
		t.Fatalf("crowded proposal gain %.3f should exceed sparse gain %.3f",
			gainCrowded, gainSparse)
	}
}

func TestScoresCorrelateWithCorrectness(t *testing.T) {
	// Mean score of matched detections should exceed that of unmatched.
	v := testVideo(9)
	var tpScore, fpScore float64
	var tpN, fpN int
	for _, f := range v.Frames {
		dets := FasterRCNN.Detect(v, f, Config{Shape: 448, NProp: 50})
		for _, d := range dets {
			matched := false
			for _, o := range f.Objects {
				if o.Class == d.Class && d.Box.IoU(o.Box) >= 0.5 {
					matched = true
					break
				}
			}
			if matched {
				tpScore += d.Score
				tpN++
			} else {
				fpScore += d.Score
				fpN++
			}
		}
	}
	if tpN == 0 || fpN == 0 {
		t.Skip("degenerate split")
	}
	if tpScore/float64(tpN) <= fpScore/float64(fpN) {
		t.Fatalf("TP mean score %.3f <= FP mean score %.3f",
			tpScore/float64(tpN), fpScore/float64(fpN))
	}
}

func TestDetectionsInsideFrame(t *testing.T) {
	v := testVideo(10)
	for _, f := range v.Frames {
		for _, d := range FasterRCNN.Detect(v, f, Config{Shape: 320, NProp: 10}) {
			if d.Box.X < -1e-9 || d.Box.Y < -1e-9 ||
				d.Box.MaxX() > float64(v.Width)+1e-9 ||
				d.Box.MaxY() > float64(v.Height)+1e-9 {
				t.Fatalf("detection outside frame: %v", d.Box)
			}
			if d.Score < 0 || d.Score > 1 {
				t.Fatalf("score out of range: %v", d.Score)
			}
		}
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Fatal("non-positive lambda must give 0")
	}
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += float64(poisson(rng, 2.5))
	}
	if mean := sum / float64(n); math.Abs(mean-2.5) > 0.1 {
		t.Fatalf("poisson mean = %v, want ~2.5", mean)
	}
}

func TestMemoryFootprints(t *testing.T) {
	// Models must carry plausible memory footprints for the OOM rows.
	for _, m := range []Model{FasterRCNN, SSDMnasFPN, YOLOv3,
		EfficientDetD0, EfficientDetD3, SELSA, MEGA, REPP, AdaScaleRCNN} {
		if m.MemoryGB <= 0 {
			t.Errorf("%s has no memory footprint", m.Name)
		}
	}
}

func TestMinScoreThresholdFiltersDetections(t *testing.T) {
	v := testVideo(15)
	cfg := Config{Shape: 448, NProp: 50}
	loose := FasterRCNN.Detect(v, v.Frames[0], cfg)
	strict := FasterRCNN.WithMinScore(0.5).Detect(v, v.Frames[0], cfg)
	if len(strict) > len(loose) {
		t.Fatalf("threshold increased detections: %d > %d", len(strict), len(loose))
	}
	for _, d := range strict {
		if d.Score < 0.5 {
			t.Fatalf("detection below threshold survived: %v", d.Score)
		}
	}
	// WithMinScore must not mutate the original.
	if FasterRCNN.MinScore != 0 {
		t.Fatal("WithMinScore mutated the base model")
	}
}

func TestMinScoreTradeoff(t *testing.T) {
	// A moderate threshold trades recall for fewer false positives; at an
	// extreme threshold nearly everything is dropped.
	none := mAPOf(t, SSDMnasFPN, Config{Shape: 576, NProp: 100}, calibSeeds...)
	extreme := mAPOf(t, SSDMnasFPN.WithMinScore(0.95), Config{Shape: 576, NProp: 100}, calibSeeds...)
	if extreme >= none {
		t.Fatalf("extreme threshold should hurt recall: %.3f >= %.3f", extreme, none)
	}
}
