// Package detect implements the parametric object-detector models that
// stand in for the CNN detectors of the paper (Faster R-CNN, SSD, YOLOv3,
// EfficientDet, and the accuracy-optimized SELSA/MEGA/REPP references).
//
// A Model is a calibrated envelope: detection probability, localization
// noise, score calibration and false-positive rate are explicit functions
// of the detector configuration (input shape, number of proposals) and of
// the content (object size, count, scene clutter). Latency is a smooth
// function of the configuration in TX2 milliseconds. The envelopes are
// calibrated so the relative orderings of the paper hold: heavier
// configurations dominate lighter ones in accuracy, two-stage Faster
// R-CNN has the best accuracy ceiling of the mobile models, and the
// reference models are far more accurate and far slower (Table 3).
//
// Detection outcomes are deterministic per (video, frame, model, config):
// running the same branch on the same frame always yields the same boxes,
// which is what lets offline-collected training labels transfer to online
// execution (the paper's iid assumption, Sec. 6).
package detect

import (
	"math"
	"math/rand"

	"litereconfig/internal/geom"
	"litereconfig/internal/metric"
	"litereconfig/internal/vid"
)

// Config is the per-pass detector configuration: the two detector knobs
// of the ApproxDet-style MBEK (Sec. 5.1).
type Config struct {
	Shape int // input short side in pixels (224..576)
	NProp int // number of region proposals in the RPN (1..100)
}

// Shapes and proposal counts exposed by the MBEK, as in ApproxDet.
var (
	Shapes = []int{224, 320, 448, 576}
	NProps = []int{1, 3, 5, 10, 20, 50, 100}
)

// Model is a calibrated detector envelope.
type Model struct {
	Name string

	// Accuracy calibration.
	BaseRecall  float64 // per-object detection probability ceiling
	SizeTheta   float64 // apparent-size (px) sigmoid midpoint for detection
	SizeTau     float64 // sigmoid temperature
	PropGain    float64 // proposal coverage rate per proposal
	ClutterMiss float64 // extra miss pressure from clutter
	LocNoise    float64 // box jitter as a fraction of object size
	ScoreNoise  float64 // score jitter (std)
	FPRate      float64 // expected false positives per frame at clutter 0.5
	ClassErr    float64 // probability of misclassifying a detected object

	// Latency calibration (TX2 milliseconds): cost =
	// CostBase + CostShape*(shape/576)^2 + CostProp*nprop*(shape/576).
	CostBase  float64
	CostShape float64
	CostProp  float64

	// MemoryGB is the resident working-set of the loaded model.
	MemoryGB float64

	// UsesNProp is false for single-stage and reference models, whose
	// NProp knob is ignored.
	UsesNProp bool

	// UsesFuture marks models that aggregate future frames (SELSA, MEGA,
	// REPP); they gain a recall bonus but cannot run in streaming mode.
	UsesFuture bool

	// MinScore drops detections below this confidence before they are
	// returned — the SSD+ baseline's extra tuning knob (Sec. 5.1), which
	// controls how many objects the tracker must carry.
	MinScore float64
}

// WithMinScore returns a copy of the model with the confidence threshold
// set.
func (m Model) WithMinScore(t float64) Model {
	m.MinScore = t
	return m
}

// The calibrated model zoo. Accuracy constants were tuned against the
// synthetic corpus so that end-to-end mAP values land in the bands the
// paper reports (see EXPERIMENTS.md).
var (
	// FasterRCNN is the MBEK's backbone detector (ResNet50 feature
	// extractor + RPN), the most accurate mobile model at full settings.
	FasterRCNN = Model{
		Name:       "faster_rcnn",
		BaseRecall: 0.96, SizeTheta: 30, SizeTau: 9,
		PropGain: 1.1, ClutterMiss: 0.25,
		LocNoise: 0.055, ScoreNoise: 0.08, FPRate: 0.35, ClassErr: 0.03,
		CostBase: 16, CostShape: 92, CostProp: 0.58,
		MemoryGB: 3.4, UsesNProp: true,
	}

	// SSDMnasFPN is SSD with a MobileNetV2 backbone and MnasFPN: cheaper,
	// lower ceiling, no proposal knob (SSD+ baseline).
	SSDMnasFPN = Model{
		Name:       "ssd_mnasfpn",
		BaseRecall: 0.86, SizeTheta: 40, SizeTau: 11,
		PropGain: 0, ClutterMiss: 0.42,
		LocNoise: 0.090, ScoreNoise: 0.12, FPRate: 0.65, ClassErr: 0.07,
		CostBase: 10, CostShape: 52, CostProp: 0,
		MemoryGB: 2.1,
	}

	// YOLOv3 sits between SSD and Faster R-CNN (YOLO+ baseline).
	YOLOv3 = Model{
		Name:       "yolov3",
		BaseRecall: 0.88, SizeTheta: 36, SizeTau: 10,
		PropGain: 0, ClutterMiss: 0.38,
		LocNoise: 0.085, ScoreNoise: 0.11, FPRate: 0.60, ClassErr: 0.06,
		CostBase: 12, CostShape: 68, CostProp: 0,
		MemoryGB: 2.4,
	}

	// EfficientDetD0 and D3 are static single-branch detectors (Table 3):
	// accurate but with a fixed, SLO-breaking cost.
	EfficientDetD0 = Model{
		Name:       "efficientdet_d0",
		BaseRecall: 0.92, SizeTheta: 30, SizeTau: 8,
		PropGain: 0, ClutterMiss: 0.28,
		LocNoise: 0.075, ScoreNoise: 0.10, FPRate: 0.55, ClassErr: 0.06,
		CostBase: 138, CostShape: 0, CostProp: 0,
		MemoryGB: 2.22,
	}
	EfficientDetD3 = Model{
		Name:       "efficientdet_d3",
		BaseRecall: 0.95, SizeTheta: 22, SizeTau: 7,
		PropGain: 0, ClutterMiss: 0.18,
		LocNoise: 0.062, ScoreNoise: 0.08, FPRate: 0.42, ClassErr: 0.045,
		CostBase: 796, CostShape: 0, CostProp: 0,
		MemoryGB: 5.68,
	}

	// AdaScaleRCNN is the Faster R-CNN variant AdaScale re-scales; it has
	// no tracker and no proposal knob exposed, and its base cost follows
	// the paper's Table 3 measurements (227.9 ms at scale 240).
	AdaScaleRCNN = Model{
		Name:       "adascale_rcnn",
		BaseRecall: 0.90, SizeTheta: 32, SizeTau: 9,
		PropGain: 0, ClutterMiss: 0.30,
		LocNoise: 0.080, ScoreNoise: 0.10, FPRate: 0.60, ClassErr: 0.07,
		CostBase: 72, CostShape: 901, CostProp: 0,
		MemoryGB: 3.18,
	}

	// The accuracy-optimized references (Table 3). Their streaming-mode
	// accuracy is reduced versus the published numbers, as in the paper
	// (Sec. 5.3: backbone downgrade + removal of future-frame references).
	SELSA = Model{
		Name:       "selsa_r50",
		BaseRecall: 0.97, SizeTheta: 16, SizeTau: 5,
		PropGain: 0, ClutterMiss: 0.10,
		LocNoise: 0.055, ScoreNoise: 0.07, FPRate: 0.35, ClassErr: 0.035,
		CostBase: 2112, CostShape: 0, CostProp: 0,
		MemoryGB: 6.70, UsesFuture: true,
	}
	MEGA = Model{
		Name:       "mega_r50_base",
		BaseRecall: 0.94, SizeTheta: 20, SizeTau: 6,
		PropGain: 0, ClutterMiss: 0.16,
		LocNoise: 0.065, ScoreNoise: 0.085, FPRate: 0.45, ClassErr: 0.050,
		CostBase: 861, CostShape: 0, CostProp: 0,
		MemoryGB: 3.16, UsesFuture: true,
	}
	REPP = Model{
		Name:       "repp_yolov3",
		BaseRecall: 0.96, SizeTheta: 17, SizeTau: 5,
		PropGain: 0, ClutterMiss: 0.12,
		LocNoise: 0.058, ScoreNoise: 0.075, FPRate: 0.38, ClassErr: 0.040,
		CostBase: 565, CostShape: 0, CostProp: 0,
		MemoryGB: 2.43, UsesFuture: true,
	}
)

// CostMS returns the detector's base latency in TX2 milliseconds for one
// pass under cfg. For models without knobs (EfficientDet, references) the
// configuration is ignored.
func (m Model) CostMS(cfg Config) float64 {
	s := float64(cfg.Shape) / 576.0
	cost := m.CostBase + m.CostShape*s*s
	if m.UsesNProp {
		cost += m.CostProp * float64(cfg.NProp) * s
	}
	return cost
}

// detSeed derives the deterministic RNG seed for one detector pass.
func detSeed(v *vid.Video, frame int, m Model, cfg Config) int64 {
	h := int64(1469598103934665603)
	mix := func(x int64) {
		h ^= x
		h *= 1099511628211
	}
	mix(v.Seed)
	mix(int64(frame) * 2654435761)
	for _, c := range m.Name {
		mix(int64(c))
	}
	mix(int64(cfg.Shape))
	mix(int64(cfg.NProp) * 97)
	return h
}

// Detect runs one simulated detector pass on frame f of video v under
// cfg and returns the detections, deterministically.
func (m Model) Detect(v *vid.Video, f vid.Frame, cfg Config) []metric.Detection {
	rng := rand.New(rand.NewSource(detSeed(v, f.Index, m, cfg)))
	short := v.ShortSide()
	clutter := v.Profile.Clutter
	var out []metric.Detection

	for _, o := range f.Objects {
		p := m.detectProb(o, len(f.Objects), cfg, short, clutter)
		if rng.Float64() >= p {
			continue
		}
		det := m.jitterBox(o, cfg, rng, v)
		// Confidence correlates with detection quality so the mAP ranking
		// sweep behaves like a real detector's.
		q := p * det.Box.IoU(o.Box)
		det.Score = clamp01(0.35 + 0.6*q + rng.NormFloat64()*m.ScoreNoise)
		if rng.Float64() < m.ClassErr*(1+clutter) {
			det.Class = vid.Class(rng.Intn(vid.NumClasses))
		}
		out = append(out, det)
	}

	// False positives: Poisson-distributed clutter responses with low
	// scores and plausible sizes.
	lambda := m.FPRate * (0.4 + 1.2*clutter) * sizeFPBoost(cfg, m)
	nFP := poisson(rng, lambda)
	for i := 0; i < nFP; i++ {
		side := short * (0.05 + rng.Float64()*0.25)
		w := side * (0.7 + rng.Float64()*0.6)
		h := side * (0.7 + rng.Float64()*0.6)
		x := rng.Float64() * (float64(v.Width) - w)
		y := rng.Float64() * (float64(v.Height) - h)
		cl := vid.Class(rng.Intn(vid.NumClasses))
		if len(f.Objects) > 0 && rng.Float64() < 0.5 {
			// FPs are biased toward classes present in the scene.
			cl = f.Objects[rng.Intn(len(f.Objects))].Class
		}
		out = append(out, metric.Detection{
			Class: cl,
			Box:   geom.Rect{X: x, Y: y, W: w, H: h},
			Score: clamp01(0.05 + rng.Float64()*0.45),
		})
	}
	if m.MinScore > 0 {
		kept := out[:0]
		for _, d := range out {
			if d.Score >= m.MinScore {
				kept = append(kept, d)
			}
		}
		out = kept
	}
	return out
}

// detectProb is the per-object detection probability.
func (m Model) detectProb(o vid.Object, nVisible int, cfg Config, short, clutter float64) float64 {
	// Apparent size: object size in pixels after resizing to cfg.Shape.
	apparent := math.Sqrt(o.Box.Area()) * float64(cfg.Shape) / short
	sizeTerm := 1 / (1 + math.Exp(-(apparent-m.SizeTheta)/m.SizeTau))

	propTerm := 1.0
	if m.UsesNProp {
		// Probability that at least one proposal covers the object: more
		// visible objects and more clutter dilute the proposal budget.
		demand := float64(nVisible) + 3*clutter
		propTerm = 1 - math.Exp(-m.PropGain*float64(cfg.NProp)/math.Max(demand, 1))
	}
	clutterTerm := 1 - m.ClutterMiss*clutter
	p := m.BaseRecall * sizeTerm * propTerm * clutterTerm
	if m.UsesFuture {
		// Future-frame aggregation recovers borderline objects.
		p = p + (1-p)*0.5
	}
	return clamp01(p)
}

// jitterBox applies configuration-dependent localization noise.
func (m Model) jitterBox(o vid.Object, cfg Config, rng *rand.Rand, v *vid.Video) metric.Detection {
	// Noise grows as the input shrinks below full resolution.
	resFactor := 1 + 0.9*(1-float64(cfg.Shape)/576.0)
	size := math.Sqrt(o.Box.Area())
	sigma := m.LocNoise * size * resFactor
	b := o.Box.Translate(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	scale := math.Exp(rng.NormFloat64() * m.LocNoise * resFactor)
	cx, cy := b.CenterX(), b.CenterY()
	b.W *= scale
	b.H *= scale
	b.X = cx - b.W/2
	b.Y = cy - b.H/2
	b = b.Clamp(float64(v.Width), float64(v.Height))
	return metric.Detection{Class: o.Class, Box: b}
}

// sizeFPBoost: very low-resolution, low-proposal configurations emit
// slightly fewer FPs (fewer proposals to misfire on).
func sizeFPBoost(cfg Config, m Model) float64 {
	s := float64(cfg.Shape) / 576.0
	boost := 0.5 + 0.5*s
	if m.UsesNProp {
		boost *= 0.6 + 0.4*math.Min(float64(cfg.NProp)/50.0, 1)
	}
	return boost
}

// poisson draws a Poisson variate via Knuth's method (lambda is small).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 50 {
			return k
		}
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
