// Package baseline implements the comparison systems of Sec. 5.1:
// ApproxDet, the efficiency-enhanced SSD+ and YOLO+, AdaScale, the static
// EfficientDet variants, and the accuracy-optimized references SELSA,
// MEGA and REPP.
package baseline

import (
	"strings"

	"litereconfig/internal/contend"
	"litereconfig/internal/detect"
	"litereconfig/internal/harness"
	"litereconfig/internal/mbek"
	"litereconfig/internal/metric"
	"litereconfig/internal/simlat"
	"litereconfig/internal/track"
	"litereconfig/internal/vid"
)

// EnhancedBranches enumerates the knob space of SSD+ and YOLO+ (Sec. 5.1:
// shape, GoF size, tracker type, downsampling ratio; single-stage models
// have no proposal knob).
func EnhancedBranches() []mbek.Branch {
	var out []mbek.Branch
	for _, shape := range detect.Shapes {
		out = append(out, mbek.Branch{Shape: shape, NProp: 100, GoF: 1,
			Tracker: track.KCF, DS: 1})
		for _, tk := range track.Kinds() {
			for _, gof := range []int{2, 4, 8, 20} {
				for _, ds := range []int{1, 4} {
					out = append(out, mbek.Branch{Shape: shape, NProp: 100,
						Tracker: tk, GoF: gof, DS: ds})
				}
			}
		}
	}
	return out
}

// Enhanced is SSD+ or YOLO+: a single-stage detector with the ApproxDet
// knobs, adaptive to the latency SLO via offline profiling but *not* to
// resource contention — its branch choice assumes the offline,
// zero-contention latency profile (Sec. 5.1), which is exactly why it
// fails under GPU contention in Table 2.
type Enhanced struct {
	Label    string
	Model    detect.Model
	SLO      float64
	Device   simlat.Device
	branch   mbek.Branch
	profiled bool
}

// ConfThresholds are the detector confidence thresholds SSD+ profiles
// over — its extra tuning knob versus YOLO+ (Sec. 5.1). A higher
// threshold tracks fewer objects (cheaper GoFs) at some recall cost.
var ConfThresholds = []float64{0, 0.35}

// NewEnhanced profiles the model's branches offline on the training
// videos (zero contention) and fixes the most accurate (branch,
// confidence-threshold) combination whose latency fits the SLO with a
// safety margin. Only SSD+ exposes the confidence knob; other models
// profile at threshold 0.
func NewEnhanced(label string, model detect.Model, slo float64,
	dev simlat.Device, trainVideos []*vid.Video) *Enhanced {

	e := &Enhanced{Label: label, Model: model, SLO: slo, Device: dev}
	thresholds := []float64{0}
	if strings.HasPrefix(model.Name, "ssd") {
		thresholds = ConfThresholds
	}
	type prof struct {
		b    mbek.Branch
		conf float64
		m    float64
		lat  float64 // worst per-video mean latency (planning number)
	}
	var profs []prof
	for bi, b := range EnhancedBranches() {
		for ci, conf := range thresholds {
			m := model.WithMinScore(conf)
			var mapSum, latMax float64
			n := 0
			for vi, v := range trainVideos {
				s := vid.Snippet{Video: v, Start: 0, N: min(v.Len(), 60)}
				ev := mbek.EvalBranch(m, s, b, dev, 0, int64(vi*1000+bi*7+ci))
				mapSum += ev.MAP
				if ev.MeanMS > latMax {
					latMax = ev.MeanMS
				}
				n++
			}
			if n == 0 {
				continue
			}
			profs = append(profs, prof{b: b, conf: conf,
				m: mapSum / float64(n), lat: latMax})
		}
	}
	best := -1
	for i, p := range profs {
		// The offline profile plans against the worst training video's
		// mean latency (content varies per-video cost, e.g. per-object
		// tracker work), with headroom for jitter.
		if p.lat*1.08 > slo*0.95 {
			continue
		}
		if best < 0 || p.m > profs[best].m {
			best = i
		}
	}
	if best < 0 {
		// Nothing fits: run the cheapest branch anyway (the protocol will
		// show as "F" in the tables).
		best = 0
		for i, p := range profs {
			if p.lat < profs[best].lat {
				best = i
			}
		}
	}
	e.branch = profs[best].b
	e.Model = model.WithMinScore(profs[best].conf)
	e.profiled = true
	return e
}

// Name implements harness.Protocol.
func (e *Enhanced) Name() string { return e.Label }

// Branch returns the offline-chosen branch.
func (e *Enhanced) Branch() mbek.Branch { return e.branch }

// fixedDecider always returns the same branch.
type fixedDecider struct{ b mbek.Branch }

// Decide implements harness.Decider.
func (d fixedDecider) Decide(*mbek.Kernel, *simlat.Clock, *vid.Video, vid.Frame) mbek.Branch {
	return d.b
}

// Run implements harness.Protocol.
func (e *Enhanced) Run(videos []*vid.Video, clock *simlat.Clock, cg contend.Generator) *harness.Result {
	if !e.profiled {
		panic("baseline: Enhanced not profiled")
	}
	res := &harness.Result{MemoryGB: e.Model.MemoryGB}
	k := mbek.NewKernel(e.Model, clock)
	harness.RunKernelLoop(k, fixedDecider{e.branch}, videos, clock, cg, res)
	return res
}

// Static is a fixed single-branch per-frame detector with no SLO
// adaptation: EfficientDet D0/D3, the AdaScale single-scale variants, and
// the runnable reference models.
type Static struct {
	Label string
	Model detect.Model
	Shape int // detector input scale
}

// Name implements harness.Protocol.
func (s *Static) Name() string { return s.Label }

// Run implements harness.Protocol.
func (s *Static) Run(videos []*vid.Video, clock *simlat.Clock, cg contend.Generator) *harness.Result {
	res := &harness.Result{MemoryGB: s.Model.MemoryGB}
	if !clock.Device().FitsMemory(s.Model.MemoryGB) {
		res.OOM = true
		return res
	}
	cfg := detect.Config{Shape: s.Shape, NProp: 100}
	frame := 0
	for _, v := range videos {
		for _, f := range v.Frames {
			clock.SetContention(cg.Level(frame))
			before := clock.Now()
			clock.Charge(mbek.CompDetector, simlat.GPU, s.Model.CostMS(cfg))
			dets := s.Model.Detect(v, f, cfg)
			res.Frames = append(res.Frames, metric.FrameResult{Truth: f.Objects, Dets: dets})
			res.Latency.Add(clock.Now() - before)
			frame++
		}
	}
	res.Breakdown = clock.Breakdown()
	res.Breakdown.AddFrames(frame)
	res.BranchCoverage = 1
	return res
}

// AdaScaleMS is AdaScale's multi-scale variant: it re-scales the input
// per frame based on the content (predicted object size), picking the
// smallest scale that keeps the apparent object size above a threshold.
type AdaScaleMS struct {
	Scales []int // defaults to 600, 480, 360, 240
}

// Name implements harness.Protocol.
func (a *AdaScaleMS) Name() string { return "AdaScale-MS" }

// Run implements harness.Protocol.
func (a *AdaScaleMS) Run(videos []*vid.Video, clock *simlat.Clock, cg contend.Generator) *harness.Result {
	scales := a.Scales
	if scales == nil {
		scales = []int{600, 480, 360, 240}
	}
	model := detect.AdaScaleRCNN
	res := &harness.Result{MemoryGB: 3.26}
	if !clock.Device().FitsMemory(res.MemoryGB) {
		res.OOM = true
		return res
	}
	used := map[int]bool{}
	frame := 0
	for _, v := range videos {
		for _, f := range v.Frames {
			clock.SetContention(cg.Level(frame))
			// Content-aware scale: smallest scale keeping the mean object
			// above ~40 apparent pixels (AdaScale's learned regressor is
			// approximated by this closed form).
			st := v.Stats(f)
			shape := scales[0]
			if st.MeanSize > 0 {
				for _, sc := range scales {
					apparent := st.MeanSize * float64(sc) / v.ShortSide()
					if apparent >= 40 {
						shape = sc
					}
				}
			}
			used[shape] = true
			cfg := detect.Config{Shape: shape, NProp: 100}
			before := clock.Now()
			clock.Charge(mbek.CompDetector, simlat.GPU, model.CostMS(cfg))
			dets := model.Detect(v, f, cfg)
			res.Frames = append(res.Frames, metric.FrameResult{Truth: f.Objects, Dets: dets})
			res.Latency.Add(clock.Now() - before)
			frame++
		}
	}
	res.Breakdown = clock.Breakdown()
	res.Breakdown.AddFrames(frame)
	res.BranchCoverage = len(used)
	return res
}

// ReferenceSpec is one Table 3 row for a model configuration that may or
// may not load on the device.
type ReferenceSpec struct {
	Label    string
	MemoryGB float64
	// Runnable is nil for configurations that OOM even on the larger
	// board in the paper (kept for table completeness).
	Runnable *detect.Model
	Shape    int
}

// ReferenceSpecs lists the accuracy-optimized configurations of Table 3.
func ReferenceSpecs() []ReferenceSpec {
	selsa, mega, repp := detect.SELSA, detect.MEGA, detect.REPP
	return []ReferenceSpec{
		{Label: "SELSA-ResNet-101", MemoryGB: 6.91, Runnable: nil},
		{Label: "SELSA-ResNet-50", MemoryGB: 6.70, Runnable: &selsa, Shape: 576},
		{Label: "MEGA-ResNet-101", MemoryGB: 9.38, Runnable: nil},
		{Label: "MEGA-ResNet-50", MemoryGB: 6.42, Runnable: nil},
		{Label: "MEGA-ResNet-50-base", MemoryGB: 3.16, Runnable: &mega, Shape: 576},
		{Label: "REPP-over-FGFA", MemoryGB: 10.02, Runnable: nil},
		{Label: "REPP-over-SELSA", MemoryGB: 8.13, Runnable: nil},
		{Label: "REPP-over-YOLOv3", MemoryGB: 2.43, Runnable: &repp, Shape: 576},
	}
}

// OOMResult builds the Table 3 row for a configuration that cannot run.
func OOMResult(spec ReferenceSpec, dev simlat.Device) *harness.Result {
	return &harness.Result{
		Protocol: spec.Label, Device: dev,
		OOM: true, MemoryGB: spec.MemoryGB,
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Compile-time interface checks.
var (
	_ harness.Protocol = (*Enhanced)(nil)
	_ harness.Protocol = (*Static)(nil)
	_ harness.Protocol = (*AdaScaleMS)(nil)
)
