package baseline

import (
	"testing"

	"litereconfig/internal/contend"
	"litereconfig/internal/detect"
	"litereconfig/internal/fixture"
	"litereconfig/internal/harness"
	"litereconfig/internal/simlat"
)

func setup(t *testing.T) *fixture.Setup {
	t.Helper()
	s, err := fixture.Small()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEnhancedBranches(t *testing.T) {
	bs := EnhancedBranches()
	want := 4 * (1 + 4*4*2)
	if len(bs) != want {
		t.Fatalf("branches = %d, want %d", len(bs), want)
	}
}

func TestEnhancedProfilesAndMeetsSLOUncontended(t *testing.T) {
	s := setup(t)
	e := NewEnhanced("SSD+", detect.SSDMnasFPN, 50, simlat.TX2, s.Corpus.DetTrain)
	if !e.profiled {
		t.Fatal("not profiled")
	}
	r := harness.Evaluate(e, s.Corpus.Val, simlat.TX2, 50, contend.Fixed{}, 5)
	t.Logf("SSD+ @50ms: mAP=%.3f p95=%.1f branch=%v", r.MAP(), r.Latency.P95(), e.Branch())
	if !r.MeetsSLO() {
		t.Fatalf("SSD+ should meet 50 ms uncontended: p95=%.1f", r.Latency.P95())
	}
	if r.MAP() < 0.2 {
		t.Fatalf("SSD+ mAP too low: %.3f", r.MAP())
	}
	if r.BranchCoverage != 1 {
		t.Fatalf("SSD+ coverage = %d, want 1 (no reconfiguration)", r.BranchCoverage)
	}
}

func TestEnhancedFailsUnderContention(t *testing.T) {
	// Contention-unaware: the offline-profiled branch blows through the
	// SLO once the GPU is 50% contended (the Table 2 failure mode).
	s := setup(t)
	e := NewEnhanced("YOLO+", detect.YOLOv3, 33.3, simlat.TX2, s.Corpus.DetTrain)
	r := harness.Evaluate(e, s.Corpus.Val, simlat.TX2, 33.3, contend.Fixed{G: 0.5}, 5)
	t.Logf("YOLO+ @33.3ms/50%%: p95=%.1f", r.Latency.P95())
	if r.MeetsSLO() {
		t.Fatal("YOLO+ should fail its SLO under 50% GPU contention")
	}
}

func TestEnhancedTighterSLOPicksCheaperBranch(t *testing.T) {
	s := setup(t)
	tight := NewEnhanced("SSD+", detect.SSDMnasFPN, 20, simlat.TX2, s.Corpus.DetTrain)
	loose := NewEnhanced("SSD+", detect.SSDMnasFPN, 100, simlat.TX2, s.Corpus.DetTrain)
	costOf := func(b interface{ DetConfig() detect.Config }) float64 {
		return detect.SSDMnasFPN.CostMS(b.DetConfig())
	}
	tb, lb := tight.Branch(), loose.Branch()
	if costOf(tb)/float64(tb.GoF) > costOf(lb)/float64(lb.GoF) {
		t.Fatalf("tight SLO picked heavier branch: %v vs %v", tb, lb)
	}
}

func TestStaticEfficientDet(t *testing.T) {
	s := setup(t)
	d0 := &Static{Label: "EfficientDet-D0", Model: detect.EfficientDetD0, Shape: 512}
	r := harness.Evaluate(d0, s.Corpus.Val[:2], simlat.TX2, 0, contend.Fixed{}, 5)
	if r.OOM {
		t.Fatal("D0 fits on TX2")
	}
	// D0 costs 138 TX2-ms per frame: mean in that band.
	if r.Latency.Mean() < 110 || r.Latency.Mean() > 170 {
		t.Fatalf("D0 mean latency = %.1f, want ~138", r.Latency.Mean())
	}
	if r.MAP() < 0.4 {
		t.Fatalf("D0 mAP = %.3f, want >= 0.4", r.MAP())
	}
}

func TestStaticOOM(t *testing.T) {
	big := detect.EfficientDetD3
	big.MemoryGB = 100
	p := &Static{Label: "huge", Model: big, Shape: 576}
	r := harness.Evaluate(p, nil, simlat.TX2, 0, contend.Fixed{}, 5)
	if !r.OOM {
		t.Fatal("should OOM")
	}
}

func TestReferenceOrdering(t *testing.T) {
	// SELSA beats MEGA-base beats LiteReconfig-band accuracy; latency
	// ordering is the reverse (Table 3's shape).
	s := setup(t)
	vids := s.Corpus.Val[:2]
	selsa := harness.Evaluate(&Static{Label: "SELSA", Model: detect.SELSA, Shape: 576},
		vids, simlat.TX2, 0, contend.Fixed{}, 5)
	mega := harness.Evaluate(&Static{Label: "MEGA", Model: detect.MEGA, Shape: 576},
		vids, simlat.TX2, 0, contend.Fixed{}, 5)
	if selsa.MAP() <= mega.MAP() {
		t.Fatalf("SELSA (%.3f) should beat MEGA (%.3f)", selsa.MAP(), mega.MAP())
	}
	if selsa.Latency.Mean() <= mega.Latency.Mean() {
		t.Fatal("SELSA should be slower than MEGA")
	}
	if selsa.Latency.Mean() < 1800 || selsa.Latency.Mean() > 2600 {
		t.Fatalf("SELSA mean = %.0f, want ~2112", selsa.Latency.Mean())
	}
}

func TestReferenceSpecsTable(t *testing.T) {
	specs := ReferenceSpecs()
	if len(specs) != 8 {
		t.Fatalf("specs = %d, want 8", len(specs))
	}
	runnable := 0
	for _, sp := range specs {
		if sp.Runnable != nil {
			runnable++
		}
		if sp.MemoryGB <= 0 {
			t.Fatalf("%s missing memory", sp.Label)
		}
	}
	if runnable != 3 {
		t.Fatalf("runnable = %d, want 3 (SELSA-R50, MEGA-base, REPP-YOLO)", runnable)
	}
	r := OOMResult(specs[2], simlat.TX2) // MEGA-R101
	if !r.OOM || r.MemoryGB != 9.38 {
		t.Fatalf("OOM row wrong: %+v", r)
	}
}

func TestAdaScaleMS(t *testing.T) {
	s := setup(t)
	a := &AdaScaleMS{}
	r := harness.Evaluate(a, s.Corpus.Val[:3], simlat.TX2, 0, contend.Fixed{}, 5)
	if r.OOM {
		t.Fatal("AdaScale fits on TX2")
	}
	// Multi-scale: latency between the 240-only and 600-only envelopes.
	if r.Latency.Mean() < 200 || r.Latency.Mean() > 1100 {
		t.Fatalf("AdaScale-MS mean = %.0f, want within scale envelope", r.Latency.Mean())
	}
	if r.MAP() < 0.35 {
		t.Fatalf("AdaScale-MS mAP = %.3f", r.MAP())
	}
	t.Logf("AdaScale-MS: mAP=%.3f mean=%.0fms scales=%d", r.MAP(), r.Latency.Mean(), r.BranchCoverage)
}

func TestApproxDetFailsTightMeetsLoose(t *testing.T) {
	s := setup(t)
	tight, err := NewApproxDet(s.Models, 33.3, simlat.TX2)
	if err != nil {
		t.Fatal(err)
	}
	rt := harness.Evaluate(tight, s.Corpus.Val, simlat.TX2, 33.3, contend.Fixed{}, 5)
	if rt.MeetsSLO() {
		t.Fatalf("ApproxDet should fail 33.3 ms on TX2 (p95=%.1f)", rt.Latency.P95())
	}
	loose, err := NewApproxDet(s.Models, 100, simlat.TX2)
	if err != nil {
		t.Fatal(err)
	}
	rl := harness.Evaluate(loose, s.Corpus.Val, simlat.TX2, 100, contend.Fixed{}, 5)
	t.Logf("ApproxDet @100ms: mAP=%.3f p95=%.1f", rl.MAP(), rl.Latency.P95())
	if !rl.MeetsSLO() {
		t.Fatalf("ApproxDet should meet 100 ms on TX2 (p95=%.1f)", rl.Latency.P95())
	}
	if tight.Name() != "ApproxDet" {
		t.Fatalf("name = %q", tight.Name())
	}
}

func TestApproxDetFailsAllXavierSLOs(t *testing.T) {
	s := setup(t)
	for _, slo := range []float64{20, 33.3, 50} {
		p, err := NewApproxDet(s.Models, slo, simlat.Xavier)
		if err != nil {
			t.Fatal(err)
		}
		r := harness.Evaluate(p, s.Corpus.Val, simlat.Xavier, slo, contend.Fixed{}, 5)
		if r.MeetsSLO() {
			t.Errorf("ApproxDet met %v ms on Xavier (p95=%.1f); paper says it fails all three",
				slo, r.Latency.P95())
		}
	}
}
