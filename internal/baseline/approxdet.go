package baseline

import (
	"math"

	"litereconfig/internal/core"
	"litereconfig/internal/sched"
	"litereconfig/internal/simlat"
)

// ApproxDetOverheadMS is the constant per-frame (CPU-class, TX2 ms)
// pipeline overhead of the ApproxDet baseline. ApproxDet shares the
// MBEK design but its TensorFlow-1.x implementation carries a heavy
// per-frame fixed cost (feature copies, Python glue); the paper measures
// it failing the 33.3 and 50 ms SLOs on the TX2 even without contention,
// and all three objectives on the Xavier (Sec. 5.3). Its scheduler is
// content-agnostic (light features only).
const ApproxDetOverheadMS = 62

// NewApproxDet builds the ApproxDet baseline: the MinCost (light-only)
// scheduler over the shared MBEK, with the constant per-frame pipeline
// overhead and an SLO budget reduced accordingly (ApproxDet's latency
// predictor covers its own overhead, so it plans around it).
func NewApproxDet(models *sched.Models, slo float64, dev simlat.Device) (*core.Pipeline, error) {
	overheadOnDev := ApproxDetOverheadMS * dev.CPUFactor
	kernelSLO := math.Max(slo-overheadOnDev, 1)
	p, err := core.NewPipeline(core.Options{
		Models: models,
		SLO:    kernelSLO,
		Policy: core.PolicyMinCost,
	})
	if err != nil {
		return nil, err
	}
	p.ExtraPerFrameMS = ApproxDetOverheadMS
	p.NameOverride = "ApproxDet"
	p.MemoryGB = 3.4 + 0.2
	return p, nil
}
