package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestRectFromCornersNormalizes(t *testing.T) {
	r := RectFromCorners(10, 20, 4, 6)
	want := Rect{X: 4, Y: 6, W: 6, H: 14}
	if r != want {
		t.Fatalf("RectFromCorners = %v, want %v", r, want)
	}
}

func TestEmptyAndArea(t *testing.T) {
	cases := []struct {
		r     Rect
		empty bool
		area  float64
	}{
		{Rect{}, true, 0},
		{Rect{W: 5, H: 0}, true, 0},
		{Rect{W: 0, H: 5}, true, 0},
		{Rect{W: -1, H: 5}, true, 0},
		{Rect{X: 1, Y: 2, W: 3, H: 4}, false, 12},
	}
	for _, c := range cases {
		if got := c.r.Empty(); got != c.empty {
			t.Errorf("%v.Empty() = %v, want %v", c.r, got, c.empty)
		}
		if got := c.r.Area(); !approxEq(got, c.area) {
			t.Errorf("%v.Area() = %v, want %v", c.r, got, c.area)
		}
	}
}

func TestCenterAndEdges(t *testing.T) {
	r := Rect{X: 10, Y: 20, W: 4, H: 8}
	if !approxEq(r.CenterX(), 12) || !approxEq(r.CenterY(), 24) {
		t.Errorf("center = (%v,%v), want (12,24)", r.CenterX(), r.CenterY())
	}
	if !approxEq(r.MaxX(), 14) || !approxEq(r.MaxY(), 28) {
		t.Errorf("max = (%v,%v), want (14,28)", r.MaxX(), r.MaxY())
	}
}

func TestTranslateScale(t *testing.T) {
	r := Rect{X: 1, Y: 2, W: 3, H: 4}
	tr := r.Translate(10, -2)
	if tr != (Rect{X: 11, Y: 0, W: 3, H: 4}) {
		t.Errorf("Translate = %v", tr)
	}
	sc := r.Scale(2)
	if sc != (Rect{X: 2, Y: 4, W: 6, H: 8}) {
		t.Errorf("Scale = %v", sc)
	}
}

func TestInflate(t *testing.T) {
	r := Rect{X: 10, Y: 10, W: 10, H: 10}
	g := r.Inflate(2)
	if g != (Rect{X: 8, Y: 8, W: 14, H: 14}) {
		t.Errorf("Inflate(2) = %v", g)
	}
	s := r.Inflate(-3)
	if s != (Rect{X: 13, Y: 13, W: 4, H: 4}) {
		t.Errorf("Inflate(-3) = %v", s)
	}
	// Shrinking past zero clamps to a degenerate box at the center.
	z := r.Inflate(-10)
	if !z.Empty() {
		t.Errorf("Inflate(-10) = %v, want empty", z)
	}
	if !approxEq(z.X, 15) || !approxEq(z.Y, 15) {
		t.Errorf("Inflate(-10) center drifted: %v", z)
	}
}

func TestIntersectUnion(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 10, H: 10}
	b := Rect{X: 5, Y: 5, W: 10, H: 10}
	i := a.Intersect(b)
	if i != (Rect{X: 5, Y: 5, W: 5, H: 5}) {
		t.Errorf("Intersect = %v", i)
	}
	u := a.Union(b)
	if u != (Rect{X: 0, Y: 0, W: 15, H: 15}) {
		t.Errorf("Union = %v", u)
	}
	// Disjoint intersection is empty.
	c := Rect{X: 100, Y: 100, W: 1, H: 1}
	if !a.Intersect(c).Empty() {
		t.Errorf("disjoint Intersect not empty: %v", a.Intersect(c))
	}
	// Union with empty returns the other operand.
	if got := a.Union(Rect{}); got != a {
		t.Errorf("Union with empty = %v, want %v", got, a)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Errorf("empty.Union = %v, want %v", got, a)
	}
}

func TestClamp(t *testing.T) {
	r := Rect{X: -5, Y: 8, W: 20, H: 20}
	c := r.Clamp(10, 10)
	if c != (Rect{X: 0, Y: 8, W: 10, H: 2}) {
		t.Errorf("Clamp = %v", c)
	}
	off := Rect{X: 50, Y: 50, W: 5, H: 5}
	if !off.Clamp(10, 10).Empty() {
		t.Errorf("off-frame Clamp not empty")
	}
}

func TestContains(t *testing.T) {
	r := Rect{X: 0, Y: 0, W: 10, H: 10}
	if !r.Contains(0, 0) {
		t.Error("should contain top-left corner")
	}
	if r.Contains(10, 10) {
		t.Error("should not contain bottom-right corner (exclusive)")
	}
	if !r.Contains(9.999, 5) {
		t.Error("should contain interior point")
	}
}

func TestIoUKnownValues(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 10, H: 10}
	cases := []struct {
		b    Rect
		want float64
	}{
		{a, 1.0},
		{Rect{X: 0, Y: 0, W: 5, H: 10}, 0.5},
		{Rect{X: 5, Y: 0, W: 10, H: 10}, 50.0 / 150.0},
		{Rect{X: 20, Y: 20, W: 10, H: 10}, 0},
		{Rect{}, 0},
	}
	for _, c := range cases {
		if got := a.IoU(c.b); !approxEq(got, c.want) {
			t.Errorf("IoU(%v, %v) = %v, want %v", a, c.b, got, c.want)
		}
	}
}

func randRect(r *rand.Rand) Rect {
	return Rect{
		X: r.Float64()*200 - 100,
		Y: r.Float64()*200 - 100,
		W: r.Float64() * 100,
		H: r.Float64() * 100,
	}
}

func TestIoUProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := randRect(rng), randRect(rng)
		ab, ba := a.IoU(b), b.IoU(a)
		if math.Abs(ab-ba) > 1e-12 {
			t.Fatalf("IoU not symmetric: %v vs %v for %v %v", ab, ba, a, b)
		}
		if ab < 0 || ab > 1 {
			t.Fatalf("IoU out of range: %v for %v %v", ab, a, b)
		}
		if !a.Empty() && math.Abs(a.IoU(a)-1) > 1e-12 {
			t.Fatalf("IoU(a,a) != 1 for %v", a)
		}
	}
}

func TestIntersectionPropertiesQuick(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := Rect{X: mod(ax, 100), Y: mod(ay, 100), W: mod(aw, 50), H: mod(ah, 50)}
		b := Rect{X: mod(bx, 100), Y: mod(by, 100), W: mod(bw, 50), H: mod(bh, 50)}
		i := a.Intersect(b)
		// The intersection never exceeds either operand's area.
		if i.Area() > a.Area()+1e-9 || i.Area() > b.Area()+1e-9 {
			return false
		}
		// The union contains both operands.
		u := a.Union(b)
		return u.Area()+1e-9 >= a.Area() && u.Area()+1e-9 >= b.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// mod maps an arbitrary float (possibly NaN/Inf from testing/quick) into a
// bounded non-negative range so property checks stay meaningful.
func mod(v, m float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(math.Abs(v), m)
}

func TestScaleIoUInvariant(t *testing.T) {
	// IoU is invariant under uniform scaling — the property the detector
	// relies on when it maps boxes between input shapes.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		a, b := randRect(rng), randRect(rng)
		s := 0.1 + rng.Float64()*5
		if math.Abs(a.IoU(b)-a.Scale(s).IoU(b.Scale(s))) > 1e-9 {
			t.Fatalf("IoU not scale invariant for %v %v s=%v", a, b, s)
		}
	}
}

func TestStringFormat(t *testing.T) {
	r := Rect{X: 1.25, Y: 2, W: 3, H: 4}
	if got := r.String(); got != "[1.2,2.0 3.0x4.0]" {
		t.Errorf("String() = %q", got)
	}
}
