// Package geom provides the rectangle and box algebra shared by the video
// model, detectors, trackers and the mAP metric.
//
// All boxes live in a continuous pixel coordinate system whose reference
// resolution is the native resolution of the video that produced them
// (see package vid). Boxes are axis-aligned and stored as the top-left
// corner plus width and height.
package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle. W and H must be non-negative for a
// valid rectangle; the zero Rect is an empty rectangle at the origin.
type Rect struct {
	X, Y float64 // top-left corner
	W, H float64 // extent; empty if either is <= 0
}

// RectFromCorners builds the rectangle spanning (x0,y0)-(x1,y1),
// normalizing corner order.
func RectFromCorners(x0, y0, x1, y1 float64) Rect {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	return Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// Empty reports whether r has no area.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Area returns the area of r, or 0 if r is empty.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.W * r.H
}

// CenterX returns the x coordinate of the center of r.
func (r Rect) CenterX() float64 { return r.X + r.W/2 }

// CenterY returns the y coordinate of the center of r.
func (r Rect) CenterY() float64 { return r.Y + r.H/2 }

// MaxX returns the right edge of r.
func (r Rect) MaxX() float64 { return r.X + r.W }

// MaxY returns the bottom edge of r.
func (r Rect) MaxY() float64 { return r.Y + r.H }

// Translate returns r moved by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	r.X += dx
	r.Y += dy
	return r
}

// Scale returns r with all coordinates multiplied by s. This maps a box
// between resolutions (e.g. native frame to a resized detector input).
func (r Rect) Scale(s float64) Rect {
	return Rect{X: r.X * s, Y: r.Y * s, W: r.W * s, H: r.H * s}
}

// Inflate returns r grown (or shrunk, for negative d) by d on every side,
// keeping the center fixed. The result is clamped to non-negative extent.
func (r Rect) Inflate(d float64) Rect {
	out := Rect{X: r.X - d, Y: r.Y - d, W: r.W + 2*d, H: r.H + 2*d}
	if out.W < 0 {
		out.X = r.CenterX()
		out.W = 0
	}
	if out.H < 0 {
		out.Y = r.CenterY()
		out.H = 0
	}
	return out
}

// Intersect returns the intersection of r and o (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	x0 := math.Max(r.X, o.X)
	y0 := math.Max(r.Y, o.Y)
	x1 := math.Min(r.MaxX(), o.MaxX())
	y1 := math.Min(r.MaxY(), o.MaxY())
	if x1 <= x0 || y1 <= y0 {
		return Rect{}
	}
	return Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// Union returns the smallest rectangle containing both r and o. If one is
// empty the other is returned.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	return RectFromCorners(
		math.Min(r.X, o.X), math.Min(r.Y, o.Y),
		math.Max(r.MaxX(), o.MaxX()), math.Max(r.MaxY(), o.MaxY()),
	)
}

// Clamp returns r clipped to the frame [0,w]x[0,h].
func (r Rect) Clamp(w, h float64) Rect {
	return r.Intersect(Rect{X: 0, Y: 0, W: w, H: h})
}

// Contains reports whether the point (x, y) lies inside r (inclusive of
// the top-left edge, exclusive of the bottom-right edge).
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X && x < r.MaxX() && y >= r.Y && y < r.MaxY()
}

// IoU returns the intersection-over-union overlap of r and o in [0, 1].
// Two empty rectangles have IoU 0.
func (r Rect) IoU(o Rect) float64 {
	inter := r.Intersect(o).Area()
	if inter <= 0 {
		return 0
	}
	union := r.Area() + o.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.1f,%.1f %.1fx%.1f]", r.X, r.Y, r.W, r.H)
}
