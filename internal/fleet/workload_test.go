package fleet

import (
	"bytes"
	"testing"

	"litereconfig/internal/obs"
	"litereconfig/internal/serve"
	"litereconfig/internal/simlat"
	"litereconfig/internal/workload"
)

// runScenario drives one open-loop workload run: a fresh schedule from
// the named scenario, one tx2 board (the lrload default), WFQ with tier
// preemption or the FIFO ablation.
func runScenario(t *testing.T, scenario string, seed int64, wfq bool,
	queueLimit int, observer *obs.Observer) (*Report, []workload.Tier) {

	t.Helper()
	s := setup(t)
	wcfg, err := workload.Scenario(scenario, "small", seed)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := simlat.DeviceByName("tx2")
	opts := Options{
		Models:     s.Models,
		Boards:     []BoardConfig{{Name: "b0", Device: dev, GPUSlots: 2}},
		Source:     sched,
		QueueLimit: queueLimit,
		Observer:   observer,
	}
	if wfq {
		opts.Admission = serve.AdmissionWFQ
		opts.ClassWeights = workload.Weights(wcfg.Tiers)
		opts.Preempt = true
	}
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return f.Run(), wcfg.Tiers
}

func classStats(rep *Report) map[string]serve.ClassStats {
	out := map[string]serve.ClassStats{}
	for _, c := range rep.Classes {
		out[c.Class] = c
	}
	return out
}

// The headline acceptance criterion: on the flash-crowd scenario,
// weighted-fair admission with tier preemption must strictly improve
// gold-tier SLO attainment over the FIFO ablation on the same arrival
// schedule, and must do so by actually preempting someone.
func TestFlashcrowdWFQBeatsFIFOForGold(t *testing.T) {
	repW, _ := runScenario(t, "flashcrowd", 7, true, 0, nil)
	repF, _ := runScenario(t, "flashcrowd", 7, false, 0, nil)

	if repW.Arrivals != repF.Arrivals {
		t.Fatalf("policies saw different schedules: %d vs %d arrivals",
			repW.Arrivals, repF.Arrivals)
	}
	if repW.Preemptions == 0 {
		t.Fatal("WFQ+preempt run recorded no preemptions")
	}
	if repF.Preemptions != 0 {
		t.Fatalf("FIFO ablation recorded %d preemptions, want 0", repF.Preemptions)
	}
	gw, gf := classStats(repW)["gold"], classStats(repF)["gold"]
	if gw.Completed == 0 {
		t.Fatal("no gold streams completed under WFQ")
	}
	if gw.AttainRate <= gf.AttainRate {
		t.Fatalf("gold attainment: wfq %.2f (%d/%d) vs fifo %.2f (%d/%d) — want a strict improvement",
			gw.AttainRate, gw.Attained, gw.Completed,
			gf.AttainRate, gf.Attained, gf.Completed)
	}
	// Fairness: the gold win must not come from starving the other tiers
	// outright — they still complete streams.
	for _, tier := range []string{"silver", "besteffort"} {
		if classStats(repW)[tier].Completed == 0 {
			t.Fatalf("tier %s completed nothing under WFQ+preempt", tier)
		}
	}
}

// Fixed-seed open-loop runs must stay byte-identical end to end: the
// merged scheduler decision trace and the fleet workload trace —
// including the arrive, depart and preempt events this subsystem adds —
// must match across two runs on fresh schedules.
func TestOpenLoopTraceDeterminism(t *testing.T) {
	trace := func() (string, string) {
		rep, _ := runScenario(t, "flashcrowd", 7, true, 0, obs.New())
		var dec, ev bytes.Buffer
		if err := rep.WriteTrace(&dec); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteFleetTrace(&ev); err != nil {
			t.Fatal(err)
		}
		return dec.String(), ev.String()
	}
	dec1, ev1 := trace()
	dec2, ev2 := trace()
	if dec1 != dec2 {
		t.Fatal("scheduler decision traces differ across fixed-seed runs")
	}
	if ev1 != ev2 {
		t.Fatal("fleet workload traces differ across fixed-seed runs")
	}
	for _, kind := range []string{`"kind":"arrive"`, `"kind":"depart"`, `"kind":"preempt"`} {
		if !bytes.Contains([]byte(ev1), []byte(kind)) {
			t.Fatalf("fleet trace missing %s events", kind)
		}
	}
}

// Conservation: every arrival the fleet admitted or refused must be
// accounted for — per tier, arrivals equal completions plus rejections,
// and preempted streams are not double-booked (they re-queue or retire
// into the completed set). A tight fleet queue forces the rejection
// term to be non-trivial.
func TestOpenLoopConservationPerTier(t *testing.T) {
	rep, tiers := runScenario(t, "flashcrowd", 7, true, 2, nil)
	if rep.Rejected == 0 {
		t.Fatal("queue limit 2 produced no rejections; conservation test is vacuous")
	}
	cs := classStats(rep)
	totalArr, totalDone, totalRej := 0, 0, 0
	for _, tier := range tiers {
		arr := rep.ArrivalsByClass[tier.Name]
		c := cs[tier.Name]
		if c.Completed+c.Rejected != arr {
			t.Fatalf("tier %s: completed %d + rejected %d != %d arrivals",
				tier.Name, c.Completed, c.Rejected, arr)
		}
		totalArr += arr
		totalDone += c.Completed
		totalRej += c.Rejected
	}
	if totalArr != rep.Arrivals {
		t.Fatalf("per-tier arrivals sum %d != fleet total %d", totalArr, rep.Arrivals)
	}
	if totalDone+totalRej != rep.Arrivals {
		t.Fatalf("completions %d + rejections %d != %d arrivals",
			totalDone, totalRej, rep.Arrivals)
	}
	if totalRej != rep.Rejected {
		t.Fatalf("per-tier rejections sum %d != fleet total %d", totalRej, rep.Rejected)
	}
}

// The diurnal scenario exercises mid-run arrival and departure without a
// burst: every arrival must still be fully accounted for under the
// default queue limit, and the run must terminate (Source exhausted,
// boards drained).
func TestDiurnalOpenLoopCompletes(t *testing.T) {
	rep, tiers := runScenario(t, "diurnal", 11, true, 0, nil)
	if rep.Arrivals == 0 {
		t.Fatal("diurnal scenario generated no arrivals")
	}
	cs := classStats(rep)
	for _, tier := range tiers {
		c := cs[tier.Name]
		if c.Completed+c.Rejected != rep.ArrivalsByClass[tier.Name] {
			t.Fatalf("tier %s: completed %d + rejected %d != %d arrivals",
				tier.Name, c.Completed, c.Rejected, rep.ArrivalsByClass[tier.Name])
		}
	}
	if rep.Barriers == 0 {
		t.Fatal("run recorded no barriers")
	}
}
