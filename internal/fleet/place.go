package fleet

import (
	"math"
	"sort"

	"litereconfig/internal/glm"
	"litereconfig/internal/mbek"
	"litereconfig/internal/obs"
	"litereconfig/internal/serve"
	"litereconfig/internal/simlat"
)

// estOcc resolves a stream config's admission-time occupancy estimate
// the way the serving engine does.
func estOcc(cfg serve.StreamConfig) float64 {
	switch {
	case cfg.EstOccupancy == 0:
		return serve.DefaultEstOccupancy
	case cfg.EstOccupancy < 0:
		return 0
	case cfg.EstOccupancy > 1:
		return 1
	}
	return cfg.EstOccupancy
}

// score is one board's placement score for one stream: the predicted
// accuracy and per-frame latency of the board's best SLO-feasible
// branch under the contention the stream would see there. When no
// branch is feasible the score falls back to the cheapest branch
// (feasible=false) so a best-effort placement is still ranked.
// Under risk-aware placement (Fleet.riskZ > 0) attain is the chosen
// branch's SLO-attainment probability — P(lognormal latency ≤ planning
// budget) — and outranks the accuracy comparison; it stays zero under
// mean placement so legacy ranking is untouched.
type score struct {
	feasible bool
	acc      float64 // predicted A(b, f_L) of the chosen branch
	lat      float64 // predicted per-frame latency of the chosen branch
	occ      float64 // board's aggregate occupancy at scoring time
	attain   float64 // P(SLO attained) of the chosen branch; 0 = mean placement
}

// better ranks scores: feasible beats infeasible, then (risk-aware
// placement only) higher SLO-attainment probability, then higher
// accuracy, then lower latency, then lower board occupancy. Ties beyond
// that are broken by board index at the call site, so placement is
// deterministic.
func (s score) better(o score) bool {
	if s.feasible != o.feasible {
		return s.feasible
	}
	if s.attain != o.attain {
		return s.attain > o.attain
	}
	if s.acc != o.acc {
		return s.acc > o.acc
	}
	if s.lat != o.lat {
		return s.lat < o.lat
	}
	return s.occ < o.occ
}

// scoreBoard prices the stream on the board under its current load:
// the stream's coupled contention level there would be
// clamp(floor + alpha * totalOcc/slots) — mirroring contend.Coupled —
// and each branch's per-frame latency is the predicted detector share
// scaled by the board's device and that contention, plus the tracker
// share scaled by the device's CPU factor (Eq. 2 priced for a remote
// board). The best feasible branch maximizes predicted accuracy under
// SLO * SafetyFactor; under risk-aware placement feasibility is judged
// at the configured latency quantile and the branch maximizing the
// SLO-attainment probability wins instead.
// selfOcc is the stream's own measured occupancy when it already lives
// on the board (its own load is not foreign to it); zero for placement
// candidates.
func (f *Fleet) scoreBoard(b *board, slo, floor float64, light []float64, selfOcc float64) score {
	act, qd := b.srv.Occupancy()
	total := act + qd
	foreign := (total - selfOcc) / float64(b.opts.GPUSlots)
	g := floor + b.opts.Coupling*foreign
	if g < 0 {
		g = 0
	}
	if g > 0.99 {
		g = 0.99
	}
	dev := b.opts.Device
	accs := f.models.PredictAccuracyLight(light)
	budget := slo * f.opts.SafetyFactor

	sc := score{occ: total, acc: -1}
	fallbackLat, fallbackAcc := 0.0, 0.0
	haveFallback := false
	riskOn := f.riskZ > 0
	for bi := range f.models.Branches {
		det, trk := f.models.PredictLatency(bi, light)
		lat := det*dev.Factor(simlat.GPU)*simlat.ContentionMultiplier(g) +
			trk*dev.Factor(simlat.CPU)
		// Under risk-aware placement a branch must fit the budget at the
		// configured latency quantile, not at the mean — the same
		// admission criterion the stream's own scheduler will apply once
		// placed, so placement never picks a board the scheduler would
		// immediately degrade on.
		planLat := lat
		if riskOn {
			planLat = lat * f.models.QuantileFactor(bi, f.riskZ)
		}
		if planLat <= budget {
			attain := 0.0
			if riskOn && lat > 0 {
				attain = glm.AttainProb(math.Log(lat), f.models.LatLogStd(bi),
					math.Log(budget))
			}
			if !sc.feasible || attain > sc.attain ||
				(attain == sc.attain && accs[bi] > sc.acc) ||
				(attain == sc.attain && accs[bi] == sc.acc && lat < sc.lat) {
				sc.feasible, sc.acc, sc.lat, sc.attain = true, accs[bi], lat, attain
			}
		} else if !haveFallback || lat < fallbackLat {
			haveFallback, fallbackLat, fallbackAcc = true, lat, accs[bi]
		}
	}
	if !sc.feasible {
		sc.acc, sc.lat = fallbackAcc, fallbackLat
	}
	return sc
}

// hasCapacity reports whether the board can take one more stream with
// the given occupancy estimate: aggregate occupancy within the board's
// admission threshold and a free queue slot.
func (b *board) hasCapacity(est float64) bool {
	act, qd := b.srv.Occupancy()
	_, queued, _ := b.srv.Counts()
	return act+qd+est <= b.opts.MaxOccupancy && queued < b.opts.QueueLimit
}

// bestBoard picks the placement target for a stream: among healthy
// boards with capacity (excluding `exclude`, the board a migrating
// stream is leaving), the best score wins; score ties break by board
// index. It returns nil when no board has capacity. requireFeasible
// additionally demands an SLO-feasible branch — SLO-driven migrations
// use it, since moving to another infeasible board just pays the
// hand-off for nothing.
func (f *Fleet) bestBoard(cfg serve.StreamConfig, light []float64,
	exclude *board, requireFeasible bool) (*board, score) {

	est := estOcc(cfg)
	var best *board
	var bestSc score
	for _, b := range f.boards {
		if b.quarantined || b == exclude || f.unresponsive(b) || !b.hasCapacity(est) {
			continue
		}
		sc := f.scoreBoard(b, cfg.SLO, cfg.BaseContention, light, 0)
		if requireFeasible && !sc.feasible {
			continue
		}
		if best == nil || sc.better(bestSc) {
			best, bestSc = b, sc
		}
	}
	return best, bestSc
}

// bestBoardQueue is the push-through variant of bestBoard: it only
// demands a free admission-queue slot, not spare occupancy. Under
// WFQ with preemption a high-tier arrival is handed to the best such
// board, whose own queue-head preemption evicts best-effort streams to
// make room — waiting in the fleet queue instead would hide the arrival
// from the board's admission controller.
func (f *Fleet) bestBoardQueue(cfg serve.StreamConfig, light []float64) (*board, score) {
	var best *board
	var bestSc score
	for _, b := range f.boards {
		if b.quarantined || f.unresponsive(b) {
			continue
		}
		if _, queued, _ := b.srv.Counts(); queued >= b.opts.QueueLimit {
			continue
		}
		sc := f.scoreBoard(b, cfg.SLO, cfg.BaseContention, light, 0)
		if best == nil || sc.better(bestSc) {
			best, bestSc = b, sc
		}
	}
	return best, bestSc
}

// weightOf resolves a stream's WFQ class weight from the fleet-wide
// ClassWeights (default 1).
func (f *Fleet) weightOf(cfg serve.StreamConfig) int {
	if w := f.opts.ClassWeights[serve.ClassOf(cfg)]; w > 0 {
		return w
	}
	return 1
}

// placeQueued walks the fleet queue and places every stream that some
// board can take. Under FIFO admission the walk is arrival order; under
// WFQ it is tier order (highest class weight first, arrival order
// within a tier), so a gold arrival never waits on board capacity
// behind best-effort backlog. Skipping is allowed — a heavy stream
// waiting for capacity does not block a light one behind it — but order
// is deterministic, so fixed-seed runs place identically.
func (f *Fleet) placeQueued() {
	f.mu.Lock()
	queue := append([]*waiting(nil), f.queue...)
	f.mu.Unlock()

	if f.opts.Admission == serve.AdmissionWFQ {
		sort.SliceStable(queue, func(i, j int) bool {
			wi, wj := f.weightOf(queue[i].cfg), f.weightOf(queue[j].cfg)
			if wi != wj {
				return wi > wj
			}
			return queue[i].id < queue[j].id
		})
	}

	var still []*waiting
	for _, w := range queue {
		// Re-entrants first: an evacuated live stream re-attaches (its
		// pipeline state travels with it), a dead board's checkpoint is
		// restored. Both were admitted long ago — placing them is not a
		// new arrival, and failing is not a rejection; they just wait.
		if w.det != nil || w.ck != nil {
			if !f.placeReentrant(w) {
				w.waits++
				still = append(still, w)
			}
			continue
		}
		b, sc := f.bestBoard(w.cfg, w.light, nil, false)
		pushed := false
		if b == nil && f.opts.Preempt && f.opts.Admission == serve.AdmissionWFQ &&
			f.weightOf(w.cfg) > 1 {
			b, sc = f.bestBoardQueue(w.cfg, w.light)
			pushed = b != nil
		}
		if b == nil {
			w.waits++
			still = append(still, w)
			continue
		}
		h, err := b.srv.Prepare(w.id, w.cfg)
		if err != nil {
			// The board refused after scoring said it fit (raced with its
			// own round). Keep the stream queued; capacity returns.
			w.waits++
			still = append(still, w)
			continue
		}
		f.live = append(f.live, &tracked{
			id: w.id, handle: h, board: b, cfg: w.cfg, light: w.light,
		})
		f.placed++
		f.met.placements.Inc()
		reason := "feasible"
		if !sc.feasible {
			reason = "best effort: no feasible branch on any board"
		}
		if pushed {
			reason = "pushed through: board-side preemption to make room"
		}
		f.event(obs.FleetEvent{Kind: "place", Stream: w.id, Name: w.cfg.Name,
			To: b.name, Tier: serve.ClassOf(w.cfg), Tenant: w.cfg.Tenant,
			Reason: reason, PredAcc: sc.acc, PredMS: sc.lat})
	}

	// The retained queue keeps arrival order regardless of the walk
	// order, so tier priority is re-derived fresh each barrier.
	sort.SliceStable(still, func(i, j int) bool { return still[i].id < still[j].id })
	f.mu.Lock()
	f.queue = still
	f.mu.Unlock()
}

// placeReentrant places one already-admitted queue re-entrant: an
// evacuee (det) is re-attached to the best board with capacity, paying
// the usual migration cost; an unrestorable checkpoint (ck) is
// restored. Reports false when no board can take it yet.
func (f *Fleet) placeReentrant(w *waiting) bool {
	if w.ck != nil {
		return f.tryRestore(*w.ck, w.light)
	}
	b, sc := f.bestBoard(w.cfg, w.light, nil, false)
	if b == nil {
		return false
	}
	cost := f.migrationCost(w.det)
	h, err := b.srv.Attach(w.det, cost)
	if err != nil {
		return false // board refused; the Detached is still ours to retry
	}
	f.live = append(f.live, &tracked{
		id: w.id, handle: h, board: b, cfg: w.cfg, light: w.light,
	})
	f.migrs++
	f.met.migrations.Inc()
	if f.store != nil {
		f.store.Rehome(w.id, b.name)
	}
	f.event(obs.FleetEvent{Kind: "migrate", Stream: w.id, Name: w.cfg.Name,
		To: b.name, Tier: serve.ClassOf(w.cfg), Tenant: w.cfg.Tenant,
		Reason: "re-placed after evacuation", CostMS: cost,
		PredAcc: sc.acc, PredMS: sc.lat})
	return true
}

// migrationCost prices the hand-off of a detached stream: one model
// clone on the destination plus warming the destination detector up to
// the stream's current branch, modeled as a switch from the cheapest
// branch (cold) to the current one — the fleet analogue of the paper's
// C(b0, b). A stream that never started (migrated out of a queue) only
// pays the clone.
func (f *Fleet) migrationCost(d *serve.Detached) float64 {
	cost := f.opts.CloneMS
	cur := d.Branch()
	if cur != (mbek.Branch{}) {
		cost += mbek.SwitchCostMS(mbek.MinCostBranch(f.models.Branches), cur)
	}
	return cost
}

// migrate moves a live stream to the destination board, charging the
// hand-off cost. It updates the tracked record and the fleet trace.
func (f *Fleet) migrate(t *tracked, dest *board, sc score, reason string) bool {
	from := t.board
	d, err := from.srv.Detach(t.handle)
	if err != nil {
		return false // retired by its board this very barrier
	}
	cost := f.migrationCost(d)
	h, err := dest.srv.Attach(d, cost)
	if err != nil {
		// Destination refused (draining — cannot happen mid-run, but be
		// safe): a failed Attach leaves the Detached intact, so retiring
		// it writes a proper fleet-retired row on the origin board.
		d.Retire("fleet: attach failed: " + err.Error())
		f.retired++
		f.met.retired.Inc()
		return false
	}
	t.handle, t.board = h, dest
	t.infeasible = 0
	t.migrations++
	f.migrs++
	f.met.migrations.Inc()
	if f.store != nil {
		f.store.Rehome(t.id, dest.name)
	}
	f.event(obs.FleetEvent{Kind: "migrate", Stream: t.id, Name: t.cfg.Name,
		From: from.name, To: dest.name, Reason: reason, CostMS: cost,
		PredAcc: sc.acc, PredMS: sc.lat})
	return true
}

// evacuate moves every live stream off a quarantined board: each goes
// to the best-scoring healthy board with capacity (feasible or not —
// anywhere beats a dead board). A stream no board can take right now is
// NOT retired: it is detached — pipeline, clock and tracker state
// intact — and re-enters the fleet admission queue, to be re-attached
// by placeQueued once capacity returns. Only the end of the run, with
// no capacity ever coming back, retires it.
func (f *Fleet) evacuate(b *board) {
	var still []*tracked
	for _, t := range f.live {
		if t.board != b || t.handle.Result() != nil {
			still = append(still, t)
			continue
		}
		dest, sc := f.bestBoard(t.cfg, t.light, b, false)
		if dest != nil {
			f.migrate(t, dest, sc, "board quarantined")
			still = append(still, t)
			continue
		}
		d, err := b.srv.Detach(t.handle)
		if err != nil {
			// The board retired the stream this very barrier; its row
			// already exists, so it is no longer ours to move.
			still = append(still, t)
			continue
		}
		f.mu.Lock()
		f.queue = append(f.queue, &waiting{id: t.id, cfg: t.cfg, light: t.light, det: d})
		f.mu.Unlock()
		f.event(obs.FleetEvent{Kind: "requeue", Stream: t.id,
			Name: t.cfg.Name, From: b.name, Tier: serve.ClassOf(t.cfg),
			Tenant: t.cfg.Tenant,
			Reason: "evacuated: no board with capacity, waiting in fleet queue"})
	}
	f.live = still
}

// checkMigrations runs the SLO-feasibility check for every live stream:
// a stream whose board-local contention leaves no branch within its
// planning budget for Hysteresis consecutive barriers is moved to a
// board with a feasible branch, if one exists and the stream has
// hand-offs left.
func (f *Fleet) checkMigrations() {
	occs := map[int]float64{}
	for _, b := range f.boards {
		for _, st := range b.srv.StreamStates() {
			occs[st.ID] = st.Occ
		}
	}
	for _, t := range f.live {
		if t.handle.Result() != nil || t.board.quarantined || t.board.crashed {
			continue
		}
		sc := f.scoreBoard(t.board, t.cfg.SLO, t.cfg.BaseContention, t.light, occs[t.id])
		if sc.feasible {
			t.infeasible = 0
			continue
		}
		t.infeasible++
		if t.infeasible < f.opts.Hysteresis || t.migrations >= f.opts.MaxMigrations {
			continue
		}
		dest, dsc := f.bestBoard(t.cfg, t.light, t.board, true)
		if dest == nil {
			continue // nowhere feasible; stay and let the scheduler degrade
		}
		f.migrate(t, dest, dsc, "SLO infeasible under board contention")
	}
}
