package fleet

import (
	"fmt"
	"sort"

	"litereconfig/internal/ckpt"
	"litereconfig/internal/obs"
	"litereconfig/internal/serve"
)

// This file is the fleet's crash-recovery layer: a capture pass that
// serializes per-stream recovery state into the fleet-held checkpoint
// store at GoF-aligned barriers, a virtual-time failure detector fed by
// barrier heartbeats (no wall-clock anywhere), and the recovery planner
// that — once a board is declared dead — fences it and restores every
// checkpointed stream onto the surviving boards through the placement
// scorer. All of it runs single-threaded at the barrier; none of it
// exists on a fault-free fleet (f.det == nil), so those runs and their
// traces are untouched.

// captureCheckpoints runs the barrier-side capture pass over every
// responsive board: a full sweep every CheckpointInterval barriers, and
// between sweeps a catch-up Put for streams with no stored checkpoint
// yet — a stream placed at barrier B is checkpointed at barrier B,
// before its board's earliest possible crash. Boards inside a blackout
// or already crashed are skipped: their frozen state is no newer than
// the checkpoint the store already holds. The same pass refreshes the
// per-stream GoF watermark (the replay-accounting baseline) and mirrors
// newly committed adapter model versions so restores can warm-start.
func (f *Fleet) captureCheckpoints() {
	if f.det == nil || f.ckInterval <= 0 {
		return
	}
	sweep := f.barrier%f.ckInterval == 0
	round := f.barrier + 1
	for _, b := range f.boards {
		if b.crashed {
			continue
		}
		if fc := b.opts.Faults; fc != nil {
			if start, end := fc.BlackoutWindow(); start > 0 && round >= start && round < end {
				continue
			}
		}
		for _, ck := range b.srv.Checkpoints() {
			f.lastGoFs[ck.ID] = ck.GoFs
			if sweep || !f.store.Has(ck.ID) {
				f.store.Put(b.name, f.barrier, ck)
			}
		}
		if reg := b.srv.AdaptRegistry(); reg != nil {
			for _, v := range reg.Versions() {
				if !f.mirrored[v.Label] {
					f.mirrored[v.Label] = true
					f.store.MirrorModel(v.Label, reg.Get(v.Label))
				}
			}
		}
	}
}

// observeFailures advances the failure detector by one barrier with the
// heartbeat set stepBoards collected and acts on its transitions:
// suspects and probes are traced, a recovered board (blackout ended)
// renews its lease, and a dead board is fenced and its streams
// restored. Transitions arrive in board-name order, so fixed-seed runs
// trace and recover identically.
func (f *Fleet) observeFailures() {
	if f.det == nil {
		return
	}
	for _, tr := range f.det.Observe(f.barrier, f.beats) {
		b := f.boardByName(tr.Board)
		switch tr.Kind {
		case "suspect":
			f.event(obs.FleetEvent{Kind: "board", From: b.name,
				Reason: "lease expired: suspect, probing"})
		case "probe":
			f.event(obs.FleetEvent{Kind: "board", From: b.name,
				Reason: fmt.Sprintf("lease probe %d: still silent", tr.Attempt)})
		case "recovered":
			f.event(obs.FleetEvent{Kind: "board", From: b.name,
				Reason: "lease renewed: blackout ended"})
		case "dead":
			reason := fmt.Sprintf("lease expired: dead after %d probe(s)", tr.Attempt)
			if fc := b.opts.Faults; fc != nil && fc.CrashRound > 0 && f.barrier+1 >= fc.CrashRound {
				reason = fmt.Sprintf("fail-stop crash at round %d, %s", fc.CrashRound, reason)
			}
			f.declareDead(b, reason)
		}
	}
}

// declareDead handles a board the detector gave up on: the board is
// fenced (killed even if a late blackout return would have arrived —
// once the fleet acts on its death, a comeback would be split-brain),
// quarantined out of placement, and its tracked streams — whose
// in-memory state died with it — are dropped from the live set and
// restored from the fleet-held checkpoints onto surviving boards, in
// stream-id order. A stream with no checkpoint (checkpointing disabled)
// is retired; a stream no survivor can take re-enters the fleet
// admission queue and is restored when capacity returns.
func (f *Fleet) declareDead(b *board, reason string) {
	b.srv.Kill()
	b.crashed = true
	b.quarantined = true
	f.deaths++
	f.met.boardDeaths.Inc()
	f.event(obs.FleetEvent{Kind: "crash", From: b.name, Reason: reason})

	// Prune the board's trackers from the live set — their in-memory
	// state died with the board — and recover each from its fleet-held
	// checkpoint, in stream-id order. A stream with no checkpoint
	// (checkpointing disabled) is retired rowlessly so per-class
	// conservation still balances.
	var still, lost []*tracked
	for _, t := range f.live {
		if t.board != b || t.handle.Result() != nil {
			still = append(still, t)
			continue
		}
		lost = append(lost, t)
	}
	f.live = still
	sort.Slice(lost, func(i, j int) bool { return lost[i].id < lost[j].id })

	for _, t := range lost {
		e, ok := f.store.Get(t.id)
		if !ok {
			class := serve.ClassOf(t.cfg)
			f.retired++
			f.met.retired.Inc()
			if f.retByClass == nil {
				f.retByClass = map[string]int{}
			}
			f.retByClass[class]++
			f.event(obs.FleetEvent{Kind: "retire", Stream: t.id, Name: t.cfg.Name,
				From: b.name, Tier: class, Tenant: t.cfg.Tenant,
				Reason: "lost in board crash: no checkpoint"})
			continue
		}
		if f.tryRestore(e, t.light) {
			continue
		}
		f.requeueCheckpoint(e, t.light, "no board with capacity after crash")
	}
}

// requeueCheckpoint parks an unrestorable checkpoint in the fleet
// admission queue; placeQueued retries the restore each barrier until a
// survivor has capacity. Re-entrants bypass the fleet queue limit and
// are not re-counted as arrivals.
func (f *Fleet) requeueCheckpoint(e ckpt.Entry, light []float64, why string) {
	ec := e
	f.mu.Lock()
	f.queue = append(f.queue, &waiting{id: e.Ck.ID, cfg: e.Ck.Cfg, light: light, ck: &ec})
	f.mu.Unlock()
	f.event(obs.FleetEvent{Kind: "requeue", Stream: e.Ck.ID, Name: e.Ck.Cfg.Name,
		From: e.Board, Tier: serve.ClassOf(e.Ck.Cfg), Tenant: e.Ck.Cfg.Tenant,
		Reason: why})
}

// tryRestore places one checkpointed stream of a dead board onto the
// best surviving board (scored exactly like a fresh placement) and
// fast-forwards it there: the restored incarnation replays the GoFs
// executed since the checkpoint — at most one sweep interval's worth —
// warm-starting from its adapted champion model when the fleet's
// registry mirror has it, and re-enters WFQ at the destination's
// current virtual time. Reports false when no survivor can take the
// stream right now.
func (f *Fleet) tryRestore(e ckpt.Entry, light []float64) bool {
	dest, sc := f.bestBoard(e.Ck.Cfg, light, nil, false)
	if dest == nil {
		return false
	}
	h, err := dest.srv.Restore(e.Ck, f.store.Model(e.Ck.AdaptVersion))
	if err != nil {
		return false
	}
	f.live = append(f.live, &tracked{
		id: e.Ck.ID, handle: h, board: dest, cfg: e.Ck.Cfg, light: light,
		migrations: e.Ck.Migrations,
	})
	f.store.Rehome(e.Ck.ID, dest.name)
	replayed := f.lastGoFs[e.Ck.ID] - e.Ck.GoFs
	if replayed < 0 {
		replayed = 0
	}
	f.recoveries++
	f.replayed += replayed
	f.met.recoveries.Inc()
	f.met.replayed.Add(float64(replayed))
	f.event(obs.FleetEvent{Kind: "restore", Stream: e.Ck.ID, Name: e.Ck.Cfg.Name,
		From: e.Board, To: dest.name, Tier: serve.ClassOf(e.Ck.Cfg),
		Tenant: e.Ck.Cfg.Tenant, Replayed: replayed,
		Reason:  fmt.Sprintf("checkpoint @barrier %d", e.Barrier),
		PredAcc: sc.acc, PredMS: sc.lat})
	return true
}

// unresponsive reports whether the board missed its most recent
// heartbeat — crashed, inside a blackout, or silently wedged. Such a
// board is no placement, migration or restore target even before its
// lease formally expires. Always false on a fault-free fleet, so
// placement there is exactly as before.
func (f *Fleet) unresponsive(b *board) bool {
	if f.det == nil {
		return false
	}
	return b.crashed || f.det.LastBeat(b.name) < f.barrier
}

// boardByName resolves a detector transition back to its board.
func (f *Fleet) boardByName(name string) *board {
	for _, b := range f.boards {
		if b.name == name {
			return b
		}
	}
	return nil
}
