package fleet

import (
	"testing"

	"litereconfig/internal/adapt"
	"litereconfig/internal/fault"
	"litereconfig/internal/obs"
)

// adaptForced is an adapter tuning that promotes on essentially every
// barrier: one shadow sample suffices and the margin is far negative,
// so any challenger within 10x of the champion wins. It exists to
// exercise the rollout *mechanics* (gates, events, registries) —
// promotion quality itself is covered by the adapt package's drift
// tests, which run the strict default tuning.
func adaptForced() *adapt.Config {
	return &adapt.Config{
		Margin:        -9,
		MinSamples:    1,
		PromoteWindow: 1,
		DemoteWindow:  1 << 20, // effectively never demote
	}
}

// TestFleetStagedRolloutOpensBoardsInOrder drives a staggered-rollout
// fleet where board 0's streams promote immediately, and asserts the
// canary sequence: each board's gate opens only after the previous
// board's registry records a promotion, in board order, with one
// "adapt" fleet event per opening.
func TestFleetStagedRolloutOpensBoardsInOrder(t *testing.T) {
	s := setup(t)
	f, err := New(Options{
		Models:       s.Models,
		Boards:       threeBoards(nil),
		Adapt:        adaptForced(),
		AdaptStagger: true,
		Observer:     obs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.adaptFrontier != 1 {
		t.Fatalf("staggered fleet starts with frontier %d, want 1", f.adaptFrontier)
	}
	submitN(t, f, 6)
	r := f.Run()

	if r.AdaptBoards != 3 {
		t.Fatalf("rollout reached %d boards, want 3", r.AdaptBoards)
	}
	if r.Promotions == 0 {
		t.Fatal("forced-promotion fleet promoted nothing")
	}
	var opens []obs.FleetEvent
	for _, e := range r.FleetEvents() {
		if e.Kind == "adapt" {
			opens = append(opens, e)
		}
	}
	if len(opens) != 2 {
		t.Fatalf("adapt events = %d, want 2 (b1 and b2 openings)", len(opens))
	}
	if opens[0].From != "b0" || opens[0].To != "b1" {
		t.Errorf("first gate opening %s->%s, want b0->b1", opens[0].From, opens[0].To)
	}
	if opens[1].From != "b1" || opens[1].To != "b2" {
		t.Errorf("second gate opening %s->%s, want b1->b2", opens[1].From, opens[1].To)
	}
	if opens[1].Barrier < opens[0].Barrier {
		t.Errorf("gate openings out of barrier order: %d then %d",
			opens[0].Barrier, opens[1].Barrier)
	}
	// The canary itself must have promoted before its downstream opened.
	if f.boards[0].srv.AdaptRegistry().Promotions() == 0 {
		t.Error("board b0 opened the rollout without any promotion of its own")
	}
	// Fleet totals reconcile with the per-board registries.
	regProms := 0
	for _, b := range f.boards {
		regProms += b.srv.AdaptRegistry().Promotions()
	}
	if regProms != r.Promotions {
		t.Errorf("registries hold %d promotions, report says %d", regProms, r.Promotions)
	}
}

// TestFleetAdaptMigrationCarriesLearnedState quarantines a faulty board
// under chaos with adaptation on everywhere, and asserts the adapter
// travels with its migrating streams: they keep adapting on the
// destination board and their promotions commit to the destination's
// registry under their origin-qualified labels.
func TestFleetAdaptMigrationCarriesLearnedState(t *testing.T) {
	s := setup(t)
	faulty := &fault.Config{Seed: 7, PanicRate: 0.5}
	f, err := New(Options{
		Models:          s.Models,
		Boards:          threeBoards(faulty),
		BoardPanicLimit: 3,
		Adapt:           adaptForced(),
		Observer:        obs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, f, 6)
	r := f.Run()

	migrated := 0
	for _, row := range r.Streams {
		if row.Migrations == 0 {
			continue
		}
		migrated++
		if row.ModelVersion == "" {
			t.Errorf("migrated stream %s lost its adapter", row.Name)
		}
	}
	if migrated == 0 {
		t.Fatal("chaos fleet migrated no streams; scenario is vacuous")
	}
	// Promotions across all registries reconcile with the fleet total:
	// a stream's commits may be split across boards, but none are lost
	// and labels never collide.
	regProms := 0
	crossBoard := false
	for _, b := range f.boards {
		reg := b.srv.AdaptRegistry()
		regProms += reg.Promotions()
		if len(reg.Versions()) != reg.Promotions() {
			t.Errorf("board %s: %d versions for %d promotions (label collision?)",
				b.name, len(reg.Versions()), reg.Promotions())
		}
		for _, v := range reg.Versions() {
			if len(v.Stream) > 3 && v.Stream[:3] != b.name+"/" {
				crossBoard = true
			}
		}
	}
	if regProms != r.Promotions {
		t.Errorf("registries hold %d promotions, report says %d", regProms, r.Promotions)
	}
	if !crossBoard {
		t.Error("no migrated stream ever promoted into its destination board's registry")
	}
}
