package fleet

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"litereconfig/internal/obs"
	"litereconfig/internal/serve"
)

// BoardReport is one board's slice of the fleet report.
type BoardReport struct {
	Name string
	// Quarantined marks a board the fleet took out of rotation.
	Quarantined bool
	// Rounds is how many rounds the board ran; Panics its recovered
	// worker panics.
	Rounds int
	Panics int
	// Result is the board's own drain report (streams it retired, in
	// fleet-id order).
	Result *serve.Result
}

// Report is the aggregate outcome of one fleet Run.
type Report struct {
	// Boards holds per-board reports in board order.
	Boards []BoardReport
	// Streams holds every stream's row — merged across boards, sorted by
	// fleet id. A migrated stream appears once, reported by the board
	// that retired it (its Board and Migrations fields tell the story).
	Streams []serve.StreamResult
	// Rejected counts fleet-level backpressure rejections; board-level
	// rejections (which the fleet avoids by checking capacity first) are
	// in the per-board results. RejectedByClass splits them per SLO
	// class (nil when none).
	Rejected        int
	RejectedByClass map[string]int `json:",omitempty"`
	// Arrivals counts every stream offered to the fleet — open-loop
	// Source arrivals plus direct Submits, accepted or not — and
	// ArrivalsByClass splits them per SLO class. Conservation: for every
	// class, Completed + Rejected + Retired + Recovered in Classes
	// equals its arrivals exactly, even under board crashes.
	Arrivals        int
	ArrivalsByClass map[string]int `json:",omitempty"`
	// Preemptions and PreemptRetired sum board-level admission evictions
	// and eviction-budget retirements fleet-wide.
	Preemptions    int
	PreemptRetired int
	// Classes aggregates per-SLO-class stats across all boards, sorted
	// by class name, with per-class conservation accounting.
	Classes []serve.ClassStats
	// Placed, Migrations and Retired count fleet placement actions:
	// initial placements, live board hand-offs, and streams retired
	// because no board could take them.
	Placed     int
	Migrations int
	Retired    int
	// Quarantined counts streams that ended quarantined (stream-level
	// failures plus fleet retirements); Panics sums recovered worker
	// panics fleet-wide.
	Quarantined int
	Panics      int
	// Barriers is how many fleet barriers the run took.
	Barriers int
	// Crash-recovery totals (all zero on a fault-free fleet):
	// BoardDeaths counts boards the failure detector declared dead,
	// Recoveries the streams restored from fleet-held checkpoints onto
	// survivors, and ReplayedGoFs the GoF windows of lost progress those
	// restores replayed (bounded per restore by the checkpoint sweep
	// interval's worth of progress).
	BoardDeaths  int
	Recoveries   int
	ReplayedGoFs int
	// AttainRate is the fleet-wide fraction of streams that completed
	// within their SLO.
	AttainRate float64
	// Promotions, Demotions and Refits sum the boards' online-
	// adaptation actions (all zero when adaptation is off);
	// AdaptBoards is how many boards had their rollout gate open by the
	// end of the run.
	Promotions  int
	Demotions   int
	Refits      int
	AdaptBoards int

	obsv *obs.Observer
}

// buildReport drains every board (in parallel — each is independent)
// and merges the results.
func (f *Fleet) buildReport() *Report {
	results := make([]*serve.Result, len(f.boards))
	var wg sync.WaitGroup
	for i, b := range f.boards {
		i, b := i, b
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = b.srv.Drain()
		}()
	}
	wg.Wait()

	f.mu.Lock()
	rejected := f.rejected
	rejByClass := make(map[string]int, len(f.rejByClass))
	for c, n := range f.rejByClass {
		rejByClass[c] = n
	}
	arrivals := f.arrivals
	arrByClass := make(map[string]int, len(f.arrByClass))
	for c, n := range f.arrByClass {
		arrByClass[c] = n
	}
	f.mu.Unlock()

	out := &Report{
		Rejected:     rejected,
		Arrivals:     arrivals,
		Placed:       f.placed,
		Migrations:   f.migrs,
		Retired:      f.retired,
		Barriers:     f.barrier,
		BoardDeaths:  f.deaths,
		Recoveries:   f.recoveries,
		ReplayedGoFs: f.replayed,
		obsv:         f.obsv,
	}
	if len(rejByClass) > 0 {
		out.RejectedByClass = rejByClass
	}
	if len(arrByClass) > 0 {
		out.ArrivalsByClass = arrByClass
	}
	attained := 0
	for i, b := range f.boards {
		r := results[i]
		out.Boards = append(out.Boards, BoardReport{
			Name:        b.name,
			Quarantined: b.quarantined,
			Rounds:      b.srv.Rounds(),
			Panics:      b.srv.Panics(),
			Result:      r,
		})
		out.Streams = append(out.Streams, r.Streams...)
		out.Quarantined += r.Quarantined
		out.Panics += r.Panics
		out.Preemptions += r.Preemptions
		out.PreemptRetired += r.PreemptRetired
		out.Promotions += r.Promotions
		out.Demotions += r.Demotions
		out.Refits += r.Refits
		if b.adaptGate != nil && b.adaptGate.Load() {
			out.AdaptBoards++
		}
	}
	sort.Slice(out.Streams, func(i, j int) bool {
		return out.Streams[i].ID < out.Streams[j].ID
	})
	for _, s := range out.Streams {
		if s.MeetsSLO && !s.Quarantined {
			attained++
		}
	}
	if len(out.Streams) > 0 {
		out.AttainRate = float64(attained) / float64(len(out.Streams))
	}
	out.Classes = mergeClasses(out.Streams, rejByClass, f.retByClass)
	return out
}

// mergeClasses recomputes per-SLO-class stats from the merged stream
// rows — a migrated stream counts once, on the board that retired it —
// and folds in the fleet's terminal per-class rejections and rowless
// retirements (streams lost in a crash with no restorable checkpoint
// leave no report row) so Completed + Rejected + Retired + Recovered
// per class equals its arrivals exactly. Board-level rejections are
// deliberately excluded: a board refusing a Prepare leaves the stream
// in the fleet queue to be retried, so counting them would double-book.
func mergeClasses(rows []serve.StreamResult, rejByClass, retByClass map[string]int) []serve.ClassStats {
	byClass := map[string]*serve.ClassStats{}
	for _, r := range rows {
		cs := byClass[r.Class]
		if cs == nil {
			cs = &serve.ClassStats{Class: r.Class}
			byClass[r.Class] = cs
		}
		cs.Streams++
		// One conservation bucket per row; fleet retirement wins over
		// recovery (a stream restored once and later lost for good was
		// not delivered).
		switch {
		case r.FleetRetired:
			cs.Retired++
		case r.Recovered:
			cs.Recovered++
		default:
			cs.Completed++
		}
		cs.Preemptions += r.Preemptions
		if r.PreemptRetired {
			cs.PreemptRetired++
		}
		cs.Frames += r.Frames
		cs.MeanMAP += r.MAP
		cs.ViolationRate += r.ViolationRate * float64(r.Frames)
		if r.MeetsSLO && !r.Quarantined {
			cs.Attained++
		}
	}
	for class, n := range rejByClass {
		cs := byClass[class]
		if cs == nil {
			cs = &serve.ClassStats{Class: class}
			byClass[class] = cs
		}
		cs.Rejected = n
	}
	for class, n := range retByClass {
		cs := byClass[class]
		if cs == nil {
			cs = &serve.ClassStats{Class: class}
			byClass[class] = cs
		}
		cs.Retired += n
	}
	names := make([]string, 0, len(byClass))
	for name := range byClass {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]serve.ClassStats, 0, len(names))
	for _, name := range names {
		cs := byClass[name]
		if cs.Streams > 0 {
			cs.AttainRate = float64(cs.Attained) / float64(cs.Streams)
			cs.MeanMAP /= float64(cs.Streams)
		}
		if cs.Frames > 0 {
			cs.ViolationRate /= float64(cs.Frames)
		}
		out = append(out, *cs)
	}
	return out
}

// Metrics returns a point-in-time snapshot of the fleet's shared
// metrics registry (empty for unobserved runs).
func (r *Report) Metrics() obs.Snapshot { return r.obsv.Snapshot() }

// Decisions returns the merged scheduler decision trace in (stream,
// seq) order — deterministic because fleet stream ids are global.
func (r *Report) Decisions() []obs.Decision { return r.obsv.Decisions() }

// WriteTrace writes the scheduler decision trace as JSON Lines.
func (r *Report) WriteTrace(w io.Writer) error { return r.obsv.WriteTrace(w) }

// FleetEvents returns the fleet placement/migration trace.
func (r *Report) FleetEvents() []obs.FleetEvent { return r.obsv.FleetEvents() }

// WriteFleetTrace writes the fleet trace as JSON Lines. Fixed-seed runs
// write byte-identical fleet traces.
func (r *Report) WriteFleetTrace(w io.Writer) error { return r.obsv.WriteFleetTrace(w) }

// Summary renders the fleet report: the fleet line, one line per board,
// and each board's own summary indented beneath it.
func (r *Report) Summary() string {
	s := fmt.Sprintf("fleet: boards=%d streams=%d attain=%.0f%% placed=%d migrations=%d retired=%d rejected=%d barriers=%d\n",
		len(r.Boards), len(r.Streams), r.AttainRate*100,
		r.Placed, r.Migrations, r.Retired, r.Rejected, r.Barriers)
	if r.Quarantined > 0 || r.Panics > 0 {
		s += fmt.Sprintf("  quarantined=%d panics=%d\n", r.Quarantined, r.Panics)
	}
	if r.BoardDeaths > 0 || r.Recoveries > 0 {
		s += fmt.Sprintf("  recovery: board_deaths=%d recoveries=%d replayed_gofs=%d\n",
			r.BoardDeaths, r.Recoveries, r.ReplayedGoFs)
	}
	if r.Arrivals > 0 {
		s += fmt.Sprintf("  arrivals=%d preemptions=%d (retired %d)\n",
			r.Arrivals, r.Preemptions, r.PreemptRetired)
		for _, c := range r.Classes {
			s += fmt.Sprintf("  tier %-10s arrivals=%d completed=%d rejected=%d retired=%d recovered=%d preemptions=%d attain=%.0f%%\n",
				c.Class, c.Completed+c.Rejected+c.Retired+c.Recovered,
				c.Completed, c.Rejected, c.Retired, c.Recovered,
				c.Preemptions, c.AttainRate*100)
		}
	}
	if r.AdaptBoards > 0 {
		s += fmt.Sprintf("  adapt: boards=%d refits=%d promotions=%d demotions=%d\n",
			r.AdaptBoards, r.Refits, r.Promotions, r.Demotions)
	}
	for _, b := range r.Boards {
		mark := ""
		if b.Quarantined {
			mark = " [QUARANTINED]"
		}
		s += fmt.Sprintf("board %-10s rounds=%d streams=%d%s\n",
			b.Name, b.Rounds, len(b.Result.Streams), mark)
		for _, line := range splitLines(b.Result.Summary()) {
			s += "  " + line + "\n"
		}
	}
	return s
}

// splitLines splits on newlines, dropping a trailing empty line.
func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
