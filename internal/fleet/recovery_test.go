package fleet

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"litereconfig/internal/fault"
	"litereconfig/internal/obs"
	"litereconfig/internal/serve"
	"litereconfig/internal/testutil"
)

// crashFleet builds the standard crash-chaos fleet: three boards, b1
// scheduled to fail-stop at round 6, b2 to black out for the default
// three rounds starting at round 4.
func crashFleet(t *testing.T, ckInterval int) *Fleet {
	t.Helper()
	s := setup(t)
	f, err := New(Options{
		Models: s.Models,
		Boards: []BoardConfig{
			{Name: "b0"},
			{Name: "b1", Faults: &fault.Config{Seed: 7, CrashRound: 6}},
			{Name: "b2", Faults: &fault.Config{Seed: 7, BlackoutRound: 4}},
		},
		CheckpointInterval: ckInterval,
		Observer:           obs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Six 120-frame streams: long enough that b1's streams are still
	// live when the detector declares it dead several barriers after
	// the crash round.
	for i := 0; i < 6; i++ {
		if _, err := f.Submit(serve.StreamConfig{
			Video: video(900+int64(i), 120), SLO: 100, Seed: 70 + int64(i),
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	return f
}

// conserve checks the four-bucket conservation law on every class:
// arrivals = completed + rejected + retired + recovered, exactly.
func conserve(t *testing.T, r *Report) {
	t.Helper()
	for _, cs := range r.Classes {
		arr := r.ArrivalsByClass[cs.Class]
		got := cs.Completed + cs.Rejected + cs.Retired + cs.Recovered
		if got != arr {
			t.Fatalf("class %s conservation broken: %d+%d+%d+%d = %d, arrivals %d",
				cs.Class, cs.Completed, cs.Rejected, cs.Retired, cs.Recovered, got, arr)
		}
	}
}

func TestFleetCrashRecoveryZeroStreamLoss(t *testing.T) {
	testutil.CheckGoroutines(t)
	f := crashFleet(t, 2)
	r := f.Run()

	if r.BoardDeaths != 1 {
		t.Fatalf("BoardDeaths = %d, want 1 (only b1 fail-stops)", r.BoardDeaths)
	}
	var crashes, restores, renewed []obs.FleetEvent
	for _, e := range r.FleetEvents() {
		switch {
		case e.Kind == "crash":
			crashes = append(crashes, e)
		case e.Kind == "restore":
			restores = append(restores, e)
		case e.Kind == "board" && strings.Contains(e.Reason, "lease renewed"):
			renewed = append(renewed, e)
		}
	}
	if len(crashes) != 1 || crashes[0].From != "b1" {
		t.Fatalf("crash events = %+v, want exactly one for b1", crashes)
	}
	if !strings.Contains(crashes[0].Reason, "fail-stop crash at round 6") {
		t.Fatalf("crash reason does not attribute the scheduled fault: %q", crashes[0].Reason)
	}
	// The blackout board rides out its silence on the lease ladder: it
	// renews, is never declared dead, and loses nothing.
	found := false
	for _, e := range renewed {
		if e.From == "b2" {
			found = true
		}
	}
	if !found {
		t.Fatal("no lease-renewed event for the blackout board b2")
	}

	// Zero stream loss: every submitted stream has a row, none retired,
	// and the streams that were on b1 completed via checkpoint restores.
	if len(r.Streams) != 6 {
		t.Fatalf("rows = %d, want 6 (a stream was lost)", len(r.Streams))
	}
	if r.Retired != 0 {
		t.Fatalf("Retired = %d, want 0 under checkpointing", r.Retired)
	}
	if r.Recoveries == 0 || r.Recoveries != len(restores) {
		t.Fatalf("Recoveries = %d, restore events = %d; want equal and > 0",
			r.Recoveries, len(restores))
	}
	recoveredRows, replayedSum := 0, 0
	for _, row := range r.Streams {
		if row.Recovered {
			recoveredRows++
			if row.Board == "b1" {
				t.Fatalf("restored stream %s still reports the dead board", row.Name)
			}
		}
		if row.Quarantined {
			t.Fatalf("stream %s quarantined: %s", row.Name, row.QuarantineReason)
		}
	}
	if recoveredRows == 0 {
		t.Fatal("no report row carries the Recovered mark")
	}

	// Replay bound: each restore replays at most one sweep interval of
	// progress — its checkpoint was cut no more than CheckpointInterval
	// barriers before the dead board's last heartbeat.
	lastBeat := f.det.LastBeat("b1")
	for _, e := range restores {
		if e.From != "b1" {
			t.Fatalf("restore from %s, want b1: %+v", e.From, e)
		}
		var ckBarrier int
		if _, err := fmt.Sscanf(e.Reason, "checkpoint @barrier %d", &ckBarrier); err != nil {
			t.Fatalf("restore reason %q is not a checkpoint stamp: %v", e.Reason, err)
		}
		if ckBarrier < lastBeat-f.ckInterval {
			t.Fatalf("stream %d restored from barrier %d, older than one sweep before the last beat %d",
				e.Stream, ckBarrier, lastBeat)
		}
		if e.Replayed < 0 {
			t.Fatalf("negative replay accounting: %+v", e)
		}
		replayedSum += e.Replayed
	}
	if r.ReplayedGoFs != replayedSum {
		t.Fatalf("ReplayedGoFs = %d, restore events sum to %d", r.ReplayedGoFs, replayedSum)
	}
	conserve(t, r)
	snap := r.Metrics()
	if got := snap.Counters["fleet_board_deaths_total"]; got != 1 {
		t.Fatalf("fleet_board_deaths_total = %v, want 1", got)
	}
	if got := snap.Counters["fleet_recoveries_total"]; got != float64(r.Recoveries) {
		t.Fatalf("fleet_recoveries_total = %v, want %d", got, r.Recoveries)
	}
}

func TestFleetCrashTraceByteIdentical(t *testing.T) {
	var fleetTraces, decisionTraces [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		r := crashFleet(t, 2).Run()
		if err := r.WriteFleetTrace(&fleetTraces[i]); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteTrace(&decisionTraces[i]); err != nil {
			t.Fatal(err)
		}
	}
	trace := fleetTraces[0].String()
	if !strings.Contains(trace, `"kind":"crash"`) || !strings.Contains(trace, `"kind":"restore"`) {
		t.Fatal("fleet trace missing crash/restore events; scenario is vacuous")
	}
	if !bytes.Equal(fleetTraces[0].Bytes(), fleetTraces[1].Bytes()) {
		t.Fatal("fleet traces differ between identical crash-chaos runs")
	}
	if !bytes.Equal(decisionTraces[0].Bytes(), decisionTraces[1].Bytes()) {
		t.Fatal("decision traces differ between identical crash-chaos runs")
	}
}

// TestFleetCheckpointingDisabledRetires is the ablation: with
// checkpointing off (negative interval) a board crash loses its live
// streams for good — they land in the Retired bucket, rowless, and the
// conservation law still balances exactly.
func TestFleetCheckpointingDisabledRetires(t *testing.T) {
	testutil.CheckGoroutines(t)
	f := crashFleet(t, -1)
	r := f.Run()

	if r.BoardDeaths != 1 {
		t.Fatalf("BoardDeaths = %d, want 1", r.BoardDeaths)
	}
	if r.Recoveries != 0 || r.ReplayedGoFs != 0 {
		t.Fatalf("recoveries = %d replayed = %d with checkpointing disabled",
			r.Recoveries, r.ReplayedGoFs)
	}
	if r.Retired == 0 {
		t.Fatal("crash with checkpointing disabled retired no streams; scenario is vacuous")
	}
	if got := len(r.Streams) + r.Retired + r.Rejected; got != 6 {
		t.Fatalf("rows(%d) + retired(%d) + rejected(%d) = %d, want 6 arrivals",
			len(r.Streams), r.Retired, r.Rejected, got)
	}
	for _, e := range r.FleetEvents() {
		if e.Kind == "retire" && !strings.Contains(e.Reason, "no checkpoint") {
			t.Fatalf("unexpected retire reason: %q", e.Reason)
		}
	}
	conserve(t, r)
}

// TestFleetEvacuationRequeuesWhenSurvivorFull is the regression test
// for the evacuation dead-end: when the only surviving board has no
// capacity, evacuated streams must re-enter the fleet admission queue
// (requeue events) and be re-placed once capacity returns — not be
// silently retired while survivors still have room coming.
func TestFleetEvacuationRequeuesWhenSurvivorFull(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := setup(t)
	f, err := New(Options{
		Models: s.Models,
		Boards: []BoardConfig{
			{Name: "b0", Faults: &fault.Config{Seed: 7, PanicRate: 0.5}, RetryLimit: 6},
			// The lone survivor: room for two streams' estimates and a
			// single queue slot, so a mid-run evacuation finds it full.
			{Name: "b1", MaxOccupancy: 1, QueueLimit: 1},
		},
		BoardPanicLimit: 3,
		Observer:        obs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := f.Submit(serve.StreamConfig{
			Video: video(900+int64(i), 60), SLO: 100, Seed: 70 + int64(i),
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	r := f.Run()

	var b0 *BoardReport
	for i := range r.Boards {
		if r.Boards[i].Name == "b0" {
			b0 = &r.Boards[i]
		}
	}
	if b0 == nil || !b0.Quarantined {
		t.Fatal("faulted board b0 was not quarantined; scenario is vacuous")
	}
	requeued := map[int]bool{}
	replaced := map[int]bool{}
	retired := map[int]bool{}
	for _, e := range r.FleetEvents() {
		switch {
		case e.Kind == "requeue" && e.From == "b0":
			if !strings.Contains(e.Reason, "evacuated") {
				t.Fatalf("requeue reason %q does not mark an evacuation", e.Reason)
			}
			requeued[e.Stream] = true
		case e.Kind == "migrate" && strings.Contains(e.Reason, "re-placed after evacuation"):
			replaced[e.Stream] = true
		case e.Kind == "retire":
			retired[e.Stream] = true
		}
	}
	if len(requeued) == 0 {
		t.Fatal("evacuation with a full survivor produced no requeue events")
	}
	// Every evacuee that waited in the queue was eventually re-placed
	// onto the survivor or retired with a row — never lost.
	for id := range requeued {
		if !replaced[id] && !retired[id] {
			t.Fatalf("evacuated stream %d neither re-placed nor retired", id)
		}
	}
	if len(replaced) == 0 {
		t.Fatal("no evacuee was re-placed once survivor capacity returned")
	}
	if len(r.Streams) != 6 {
		t.Fatalf("rows = %d, want 6 — evacuated streams must keep their report rows", len(r.Streams))
	}
	conserve(t, r)
}
