package fleet

import (
	"bytes"
	"testing"

	"litereconfig/internal/fault"
	"litereconfig/internal/fixture"
	"litereconfig/internal/obs"
	"litereconfig/internal/serve"
	"litereconfig/internal/testutil"
	"litereconfig/internal/vid"
)

func setup(t *testing.T) *fixture.Setup {
	t.Helper()
	s, err := fixture.Small()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func video(seed int64, frames int) *vid.Video {
	return vid.Generate("fleet", seed, vid.GenConfig{Frames: frames})
}

// threeBoards is the standard test fleet: three identical boards, with
// an optional board-scoped fault config on the middle one.
func threeBoards(faulty *fault.Config) []BoardConfig {
	// RetryLimit 4 on the faulted board, with the fleet's BoardPanicLimit
	// at 3 in the chaos runs: the board's aggregate panic count trips the
	// fleet quarantine before any single stream can exhaust its retries,
	// so evacuation always finds its streams alive.
	return []BoardConfig{
		{Name: "b0"},
		{Name: "b1", Faults: faulty, RetryLimit: 4},
		{Name: "b2"},
	}
}

// submitN submits n 60-frame streams with fixed seeds.
func submitN(t *testing.T, f *Fleet, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := f.Submit(serve.StreamConfig{
			Video: video(900+int64(i), 60), SLO: 100, Seed: 70 + int64(i),
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
}

func TestFleetValidation(t *testing.T) {
	s := setup(t)
	if _, err := New(Options{}); err == nil {
		t.Fatal("missing models must error")
	}
	if _, err := New(Options{Models: s.Models}); err == nil {
		t.Fatal("missing boards must error")
	}
	if _, err := New(Options{Models: s.Models,
		Boards: []BoardConfig{{Name: "x"}, {Name: "x"}}}); err == nil {
		t.Fatal("duplicate board names must error")
	}
	f, err := New(Options{Models: s.Models, Boards: threeBoards(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(serve.StreamConfig{SLO: 50}); err == nil {
		t.Fatal("stream without video must error")
	}
	if _, err := f.Submit(serve.StreamConfig{Video: video(1, 10)}); err == nil {
		t.Fatal("stream without SLO must error")
	}
}

func TestFleetServesAllStreamsAcrossBoards(t *testing.T) {
	s := setup(t)
	f, err := New(Options{Models: s.Models, Boards: threeBoards(nil),
		Observer: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, f, 6)
	r := f.Run()
	if len(r.Streams) != 6 {
		t.Fatalf("streams = %d, want 6", len(r.Streams))
	}
	if r.Placed != 6 {
		t.Fatalf("placed = %d, want 6", r.Placed)
	}
	boards := map[string]int{}
	for _, row := range r.Streams {
		if row.Quarantined {
			t.Fatalf("stream %s quarantined on a healthy fleet: %s",
				row.Name, row.QuarantineReason)
		}
		if row.Frames != 60 {
			t.Fatalf("stream %s processed %d frames, want 60", row.Name, row.Frames)
		}
		boards[row.Board]++
	}
	// Cost/content-aware placement must spread load: an empty board
	// always scores at least as well as a loaded identical one, so six
	// streams over three identical boards touch every board.
	if len(boards) != 3 {
		t.Fatalf("streams landed on %d boards, want 3: %v", len(boards), boards)
	}
	// Placement events recorded, one per stream.
	places := 0
	for _, e := range r.FleetEvents() {
		if e.Kind == "place" {
			places++
		}
	}
	if places != 6 {
		t.Fatalf("place events = %d, want 6", places)
	}
}

func TestFleetBackpressure(t *testing.T) {
	s := setup(t)
	f, err := New(Options{Models: s.Models, Boards: threeBoards(nil),
		QueueLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := f.Submit(serve.StreamConfig{Video: video(int64(i), 20), SLO: 60}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Submit(serve.StreamConfig{Video: video(9, 20), SLO: 60}); err == nil {
		t.Fatal("submission over the fleet queue limit must be rejected")
	}
	if f.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", f.Rejected())
	}
	r := f.Run()
	if len(r.Streams) != 2 || r.Rejected != 1 {
		t.Fatalf("streams = %d rejected = %d, want 2/1", len(r.Streams), r.Rejected)
	}
}

// runChaosFleet runs the standard chaos scenario: three boards, the
// middle one with a heavy worker-panic fault schedule that trips the
// fleet's board-quarantine threshold mid-run.
func runChaosFleet(t *testing.T, disableMigration bool) *Report {
	t.Helper()
	s := setup(t)
	faulty := &fault.Config{Seed: 7, PanicRate: 0.5}
	f, err := New(Options{
		Models:           s.Models,
		Boards:           threeBoards(faulty),
		BoardPanicLimit:  3,
		DisableMigration: disableMigration,
		Observer:         obs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Six streams over three boards: two per board at placement, so the
	// survivors have the headroom to absorb the faulted board's streams.
	submitN(t, f, 6)
	return f.Run()
}

func TestFleetChaosBoardQuarantineMigratesStreams(t *testing.T) {
	testutil.CheckGoroutines(t)
	r := runChaosFleet(t, false)

	if len(r.Streams) != 6 {
		t.Fatalf("streams = %d, want 6", len(r.Streams))
	}
	var b1 *BoardReport
	for i := range r.Boards {
		if r.Boards[i].Name == "b1" {
			b1 = &r.Boards[i]
		}
	}
	if b1 == nil || !b1.Quarantined {
		t.Fatalf("faulted board b1 not quarantined (panics=%d)", b1.Panics)
	}
	// Every stream that was on b1 at quarantine must migrate, not retire:
	// the acceptance bar is >= 95% migrated.
	migrated, retired := 0, 0
	touchedB1 := map[int]bool{}
	for _, e := range r.FleetEvents() {
		switch {
		case e.Kind == "place" && e.To == "b1":
			touchedB1[e.Stream] = true
		case e.Kind == "migrate" && e.From == "b1":
			migrated++
		case e.Kind == "retire" && e.From == "b1":
			retired++
		}
	}
	if len(touchedB1) == 0 {
		t.Fatal("placement never used board b1; chaos scenario is vacuous")
	}
	if migrated+retired == 0 {
		t.Fatal("board quarantine evacuated no streams")
	}
	if frac := float64(migrated) / float64(migrated+retired); frac < 0.95 {
		t.Fatalf("only %.0f%% of evacuated streams migrated (%d migrated, %d retired)",
			frac*100, migrated, retired)
	}
	if r.Migrations != migrated {
		t.Fatalf("report migrations = %d, events say %d", r.Migrations, migrated)
	}
	// Migrated streams complete on their new boards.
	for _, row := range r.Streams {
		if row.Migrations > 0 && row.Board == "b1" {
			t.Fatalf("stream %s reports board b1 after migrating away", row.Name)
		}
	}
}

func TestFleetMigrationBeatsNoMigration(t *testing.T) {
	with := runChaosFleet(t, false)
	without := runChaosFleet(t, true)
	if with.Migrations == 0 {
		t.Fatal("chaos run performed no migrations")
	}
	if without.Migrations != 0 {
		t.Fatalf("migration-disabled run migrated %d streams", without.Migrations)
	}
	if with.AttainRate <= without.AttainRate {
		t.Fatalf("migration must strictly improve attainment: with=%.2f without=%.2f",
			with.AttainRate, without.AttainRate)
	}
}

func TestFleetTraceByteIdentical(t *testing.T) {
	var fleetTraces, decisionTraces [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		r := runChaosFleet(t, false)
		if err := r.WriteFleetTrace(&fleetTraces[i]); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteTrace(&decisionTraces[i]); err != nil {
			t.Fatal(err)
		}
	}
	if fleetTraces[0].Len() == 0 {
		t.Fatal("empty fleet trace")
	}
	if !bytes.Equal(fleetTraces[0].Bytes(), fleetTraces[1].Bytes()) {
		t.Fatal("fleet traces differ between identical runs")
	}
	if !bytes.Equal(decisionTraces[0].Bytes(), decisionTraces[1].Bytes()) {
		t.Fatal("decision traces differ between identical runs")
	}
}
