// Package fleet is the multi-board dispatcher: it fronts N simulated
// boards — each a serve.Server with its own hardware profile, coupling
// and fault environment — with one shared admission queue, and places
// each incoming stream on the board where the scheduler's predicted
// best feasible branch maximizes accuracy under the stream's SLO
// (cost- and content-aware placement, the fleet-level analogue of the
// paper's per-GoF Eq. 3).
//
// The dispatcher advances the fleet in barriers: between barriers every
// board runs exactly one round in parallel; at the barrier the
// dispatcher — single-threaded — re-reads board occupancy and health,
// places queued streams, and migrates live streams off boards that have
// been quarantined (too many worker panics) or whose occupancy-coupled
// contention has made a stream's SLO infeasible. A migration detaches
// the stream at a GoF boundary with its pipeline, clock and tracker
// state intact, charges a hand-off cost (model clone plus detector
// warm-up, the fleet analogue of the paper's C(b0, b)), and re-admits
// it on the destination board. Because all cross-board decisions happen
// at the single-threaded barrier with deterministic tie-breaking, a
// fixed-seed fleet run yields byte-identical fleet traces.
package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"litereconfig/internal/adapt"
	"litereconfig/internal/ckpt"
	"litereconfig/internal/fault"
	"litereconfig/internal/glm"
	"litereconfig/internal/feat"
	"litereconfig/internal/obs"
	"litereconfig/internal/sched"
	"litereconfig/internal/serve"
	"litereconfig/internal/simlat"
)

// Defaults for Options fields left zero.
const (
	// DefaultQueueLimit bounds the fleet-wide admission queue.
	DefaultQueueLimit = 64
	// DefaultBoardPanicLimit is how many recovered worker panics a board
	// may accumulate before the fleet quarantines it and evacuates its
	// streams.
	DefaultBoardPanicLimit = 3
	// DefaultHysteresis is how many consecutive barriers a stream's SLO
	// must look infeasible on its board before the fleet migrates it.
	DefaultHysteresis = 2
	// DefaultCloneMS is the model-clone share of the migration cost, in
	// device milliseconds; the detector warm-up share comes from the
	// switching-cost model.
	DefaultCloneMS = 25
	// DefaultMaxMigrations caps per-stream hand-offs so an unplaceable
	// stream cannot ping-pong between boards forever.
	DefaultMaxMigrations = 3
	// DefaultSafetyFactor shrinks the SLO to a planning budget, matching
	// the stream scheduler's own safety factor.
	DefaultSafetyFactor = 0.88
	// DefaultTickMS is the simulated milliseconds of fleet virtual time
	// one barrier advances when driving an open-loop Source — the board
	// round length, so arrivals land at round boundaries.
	DefaultTickMS = 200
	// DefaultCheckpointInterval is the fleet barrier period of full
	// checkpoint sweeps when fail-stop faults are scheduled and the
	// caller left CheckpointInterval zero.
	DefaultCheckpointInterval = 4
)

// Source supplies open-loop stream arrivals to the fleet. The
// dispatcher polls it at every barrier with its virtual time (barrier
// index times TickMS); implementations must be deterministic for a
// fixed seed — internal/workload.Schedule is the canonical one.
type Source interface {
	// Take returns the configs of all arrivals due at or before nowMS,
	// in arrival order, consuming them.
	Take(nowMS float64) []serve.StreamConfig
	// Exhausted reports that no further arrivals will ever come.
	Exhausted() bool
}

// BoardConfig describes one board of the fleet. Zero fields take the
// serving engine's defaults.
type BoardConfig struct {
	// Name labels the board in reports, metrics and traces. Default
	// "board-<index>".
	Name string
	// Device is the board's hardware profile. Default TX2.
	Device simlat.Device
	// GPUSlots, MaxOccupancy, Coupling, QueueLimit, RoundMS, RetryLimit
	// and StallRounds configure the board's serving engine (see
	// serve.Options).
	GPUSlots     int
	MaxOccupancy float64
	Coupling     float64
	QueueLimit   int
	RoundMS      float64
	RetryLimit   int
	StallRounds  int
	// Faults is the board-scoped fault environment: every stream served
	// by this board inherits it unless the stream carries its own fault
	// config or plan. A migrated stream sheds the old board's faults and
	// inherits the destination's.
	Faults *fault.Config
}

// Options configures a Fleet.
type Options struct {
	// Models is the trained scheduler bundle. Every stream gets its own
	// clone (via its board); the fleet keeps one more clone for placement
	// scoring.
	Models *sched.Models
	// Boards describes the fleet's boards. At least one is required.
	Boards []BoardConfig
	// QueueLimit bounds the fleet-wide admission queue; submissions
	// beyond it are rejected (backpressure). Default 64.
	QueueLimit int
	// BoardPanicLimit quarantines a board once its recovered worker
	// panics reach this count. Default 3.
	BoardPanicLimit int
	// Hysteresis is the number of consecutive infeasible barriers before
	// an SLO-driven migration. Default 2.
	Hysteresis int
	// CloneMS is the model-clone share of the migration cost. Default 25.
	CloneMS float64
	// MaxMigrations caps per-stream board hand-offs. Default 3.
	MaxMigrations int
	// SafetyFactor shrinks SLOs to planning budgets. Default 0.88.
	SafetyFactor float64
	// DisableMigration turns off live migration (both SLO-driven and
	// board-quarantine evacuation): streams stay where they were placed,
	// which is the ablation baseline the fleet report compares against.
	DisableMigration bool
	// Adapt enables online model adaptation on every board: each board
	// gets its own model registry, every stream its own adapter (see
	// serve.Options.Adapt). A migrating stream keeps its learned
	// champion and re-points its rollout at the destination board's
	// registry, so learned state survives hand-offs.
	Adapt *adapt.Config
	// AdaptStagger stages the rollout board by board: only the first
	// board may promote challengers at first, and each next board's
	// promotion gate opens at a fleet barrier once the previous board's
	// registry has recorded at least one promotion — a canary sequence
	// across the fleet. Off, every board may promote from the start.
	AdaptStagger bool
	// Source supplies open-loop stream arrivals: the dispatcher polls it
	// at every barrier and feeds due arrivals into the fleet queue,
	// recording "arrive" (and terminal "depart") trace events. Nil keeps
	// the closed-loop Submit-then-Run regime.
	Source Source
	// TickMS is the simulated milliseconds of fleet virtual time one
	// barrier advances when polling Source. Default 200.
	TickMS float64
	// Admission selects every board's queue discipline: FIFO (default)
	// or weighted-fair queueing across SLO classes (see serve.Options).
	Admission serve.AdmissionPolicy
	// ClassWeights maps SLO class names to WFQ weights (default 1).
	// The same weights drive board admission, board preemption ranking
	// and tier-aware fleet placement order.
	ClassWeights map[string]int
	// Preempt enables barrier-time preemption on every board: lowest-
	// weight streams are evicted when a higher tier's SLO is infeasible
	// under board occupancy (see serve.Options.Preempt). PreemptLimit is
	// the per-stream eviction budget (0 = default, negative = retire on
	// first eviction).
	Preempt      bool
	PreemptLimit int
	// Observer is the shared observability sink for the whole fleet:
	// decision traces and metrics from every board land here with board
	// labels, plus the fleet's own placement/migration trace.
	Observer *obs.Observer

	// CheckpointInterval is the fleet barrier period of full checkpoint
	// sweeps: every interval barriers each responsive board serializes
	// per-stream recovery state into the fleet-held store (new streams
	// are checkpointed on their first barrier regardless). Zero means
	// auto — DefaultCheckpointInterval when any board schedules a
	// fail-stop fault (crash or blackout), off otherwise, so runs
	// without board faults pay nothing. Negative disables checkpointing
	// outright even under faults (crashed streams are then retired, not
	// restored — the ablation the chaos tests quantify).
	CheckpointInterval int
	// LeaseBarriers, RecoveryRetries and RecoveryBackoff tune the
	// virtual-time failure detector (see ckpt.DetectorConfig: the
	// heartbeat lease, the probe budget a suspect board gets before it
	// is declared dead, and the base probe backoff in barriers). Zero
	// fields take the ckpt defaults.
	LeaseBarriers   int
	RecoveryRetries int
	RecoveryBackoff int
	// RecoverySeed drives the detector's probe-backoff jitter; fixed
	// seeds give byte-identical recovery schedules. Default 1.
	RecoverySeed int64
	// ReplayTrace enriches every board's recorded decisions with the
	// scheduler input payload for offline counterfactual replay (see
	// serve.Options.ReplayTrace). Off by default.
	ReplayTrace bool
	// RiskQuantile enables probabilistic SLO admission fleet-wide: it is
	// forwarded to every board (serve.Options.RiskQuantile → each
	// stream's scheduler), and fleet placement switches from ranking
	// boards by predicted mean accuracy/latency to ranking them by the
	// stream's SLO-attainment probability there — the chance the chosen
	// branch's lognormal latency lands within the planning budget under
	// the board's contention. Zero keeps the legacy mean-based placement
	// byte-identical. Must be in [0, 1).
	RiskQuantile float64
}

func (o Options) withDefaults() Options {
	if o.QueueLimit <= 0 {
		o.QueueLimit = DefaultQueueLimit
	}
	if o.BoardPanicLimit <= 0 {
		o.BoardPanicLimit = DefaultBoardPanicLimit
	}
	if o.Hysteresis <= 0 {
		o.Hysteresis = DefaultHysteresis
	}
	if o.CloneMS == 0 {
		o.CloneMS = DefaultCloneMS
	}
	if o.MaxMigrations == 0 {
		o.MaxMigrations = DefaultMaxMigrations
	}
	if o.SafetyFactor <= 0 {
		o.SafetyFactor = DefaultSafetyFactor
	}
	if o.TickMS <= 0 {
		o.TickMS = DefaultTickMS
	}
	if o.RecoverySeed == 0 {
		o.RecoverySeed = 1
	}
	return o
}

// board is one fleet board and its dispatcher-side health state.
type board struct {
	idx  int
	name string
	srv  *serve.Server
	opts serve.Options // effective serving options, for scoring

	quarantined bool
	degraded    bool
	// crashed marks a fail-stop board: its in-memory state is gone (the
	// scheduled crash was enacted, or the lease detector declared it
	// dead and the fleet fenced it). A crashed board never beats, is
	// never stepped and never takes placements again.
	crashed bool

	// adaptGate is the board's promotion gate (nil when adaptation is
	// off); the dispatcher opens it at a barrier during staged rollout.
	adaptGate *atomic.Bool
}

// waiting is a stream in the fleet admission queue. Besides fresh
// submissions (only id/cfg/light set), the queue carries two kinds of
// already-admitted re-entrants, which bypass the fleet queue limit and
// are never re-counted as arrivals: a live stream evacuated off a
// quarantined board with no immediate destination (det != nil), and a
// checkpointed stream whose board died with no survivor able to take
// it right away (ck != nil).
type waiting struct {
	id    int
	cfg   serve.StreamConfig
	light []float64 // content features of frame 0, for placement scoring
	waits int
	det   *serve.Detached
	ck    *ckpt.Entry
}

// tracked is a live placed stream the dispatcher follows across boards.
type tracked struct {
	id         int
	handle     *serve.Stream
	board      *board
	cfg        serve.StreamConfig
	light      []float64
	infeasible int // consecutive barriers the SLO looked infeasible
	migrations int
}

// Fleet dispatches streams over several boards. Submit is safe for
// concurrent use until Run is called; Run drives the fleet to
// completion and may be called once.
type Fleet struct {
	opts   Options
	obsv   *obs.Observer
	models *sched.Models // fleet-private clone for placement scoring
	boards []*board
	// riskZ caches the standard-normal quantile of Options.RiskQuantile
	// for risk-aware placement scoring; zero under mean placement.
	riskZ float64

	mu         sync.Mutex
	nextID     int
	queue      []*waiting
	rejected   int
	rejByClass map[string]int // terminal rejections per SLO class
	arrivals   int            // open-loop arrivals taken from Source
	arrByClass map[string]int
	running    bool

	// Run-goroutine state (no lock needed once running).
	live    []*tracked // sorted by id
	barrier int
	placed  int
	migrs   int
	retired int
	// adaptFrontier indexes the first board whose promotion gate is
	// still closed (== len(boards) once rollout has reached every
	// board; 0 only before Run when staging is on).
	adaptFrontier int

	// Crash-recovery state (nil/zero when no board schedules fail-stop
	// faults and CheckpointInterval is unset, so fault-free runs take
	// none of these paths). All of it is barrier-side, single-threaded.
	store      *ckpt.Store    // fleet-held per-stream checkpoints
	det        *ckpt.Detector // virtual-time failure detector
	ckInterval int            // full-sweep period in barriers; 0 = checkpointing off
	beats      map[string]bool
	lastGoFs   map[int]int // GoFs per stream as of its board's last beat
	mirrored   map[string]bool
	deaths     int
	recoveries int
	replayed   int            // GoFs replayed across all restores
	retByClass map[string]int // rowless retired (unrestorable) per class

	met struct {
		placements  *obs.Counter
		migrations  *obs.Counter
		retired     *obs.Counter
		rejections  *obs.Counter
		arrivalsCtr *obs.Counter
		departs     *obs.Counter
		barriers    *obs.Counter
		recoveries  *obs.Counter
		replayed    *obs.Counter
		boardDeaths *obs.Counter
		boards      *obs.Gauge
		boardsQuar  *obs.Gauge
		queueDepth  *obs.Gauge
		liveGauge   *obs.Gauge
		adaptBoards *obs.Gauge
	}
}

// New builds a fleet: one serving engine per board, all sharing the
// observer, plus the fleet's private scoring clone of the models.
func New(opts Options) (*Fleet, error) {
	if opts.Models == nil {
		return nil, fmt.Errorf("fleet: models are required")
	}
	if len(opts.Boards) == 0 {
		return nil, fmt.Errorf("fleet: at least one board is required")
	}
	if opts.RiskQuantile < 0 || opts.RiskQuantile >= 1 {
		return nil, fmt.Errorf("fleet: RiskQuantile must be in [0, 1), got %v", opts.RiskQuantile)
	}
	opts = opts.withDefaults()
	models, err := opts.Models.Clone()
	if err != nil {
		return nil, fmt.Errorf("fleet: cloning scoring models: %w", err)
	}
	f := &Fleet{opts: opts, obsv: opts.Observer, models: models}
	if opts.RiskQuantile > 0 {
		f.riskZ = glm.NormalQuantile(opts.RiskQuantile)
	}
	seen := map[string]bool{}
	for i, bc := range opts.Boards {
		if bc.Name == "" {
			bc.Name = fmt.Sprintf("board-%d", i)
		}
		if seen[bc.Name] {
			return nil, fmt.Errorf("fleet: duplicate board name %q", bc.Name)
		}
		seen[bc.Name] = true
		// Per-board adaptation plumbing: each board gets its own model
		// registry (the server creates it) behind its own promotion
		// gate. Under staged rollout only board 0 starts enabled; the
		// barrier loop opens the rest as promotions land.
		var gate *atomic.Bool
		if opts.Adapt != nil {
			gate = new(atomic.Bool)
			gate.Store(!opts.AdaptStagger || i == 0)
		}
		var boardAdapt *adapt.Config
		if opts.Adapt != nil {
			ac := *opts.Adapt
			ac.Registry = nil // one registry per board, server-created
			ac.Gate = gate
			boardAdapt = &ac
		}
		srv, err := serve.New(serve.Options{
			Models:       opts.Models,
			Device:       bc.Device,
			GPUSlots:     bc.GPUSlots,
			MaxOccupancy: bc.MaxOccupancy,
			Coupling:     bc.Coupling,
			QueueLimit:   bc.QueueLimit,
			RoundMS:      bc.RoundMS,
			RetryLimit:   bc.RetryLimit,
			StallRounds:  bc.StallRounds,
			Board:        bc.Name,
			Faults:       bc.Faults,
			Observer:     opts.Observer,
			Adapt:        boardAdapt,
			Admission:    opts.Admission,
			ClassWeights: opts.ClassWeights,
			Preempt:      opts.Preempt,
			PreemptLimit: opts.PreemptLimit,
			SafetyFactor: opts.SafetyFactor,
			ReplayTrace:  opts.ReplayTrace,
			RiskQuantile: opts.RiskQuantile,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: board %q: %w", bc.Name, err)
		}
		f.boards = append(f.boards, &board{
			idx: i, name: bc.Name, srv: srv, opts: srv.Options(),
			adaptGate: gate,
		})
	}
	if opts.Adapt != nil {
		f.adaptFrontier = len(f.boards)
		if opts.AdaptStagger {
			f.adaptFrontier = 1
		}
	}
	// Crash-recovery plumbing exists only when it can matter: a board
	// schedules a fail-stop fault, or the caller asked for checkpoints
	// explicitly. Fault-free fleets skip every recovery code path.
	failStop := false
	for _, bc := range opts.Boards {
		if bc.Faults != nil && (bc.Faults.CrashRound > 0 || bc.Faults.BlackoutRound > 0) {
			failStop = true
			break
		}
	}
	if failStop || opts.CheckpointInterval > 0 {
		switch {
		case opts.CheckpointInterval > 0:
			f.ckInterval = opts.CheckpointInterval
		case opts.CheckpointInterval == 0:
			f.ckInterval = DefaultCheckpointInterval
		}
		f.store = ckpt.NewStore()
		names := make([]string, len(f.boards))
		for i, b := range f.boards {
			names[i] = b.name
		}
		f.det = ckpt.NewDetector(ckpt.DetectorConfig{
			LeaseBarriers: opts.LeaseBarriers,
			MaxRetries:    opts.RecoveryRetries,
			BackoffBase:   opts.RecoveryBackoff,
			Seed:          opts.RecoverySeed,
		}, names)
		f.beats = make(map[string]bool, len(f.boards))
		f.lastGoFs = map[int]int{}
		f.mirrored = map[string]bool{}
	}
	if r := opts.Observer.Registry(); r != nil {
		f.met.placements = r.Counter("fleet_placements_total")
		f.met.migrations = r.Counter("fleet_migrations_total")
		f.met.retired = r.Counter("fleet_retired_total")
		f.met.rejections = r.Counter("fleet_rejections_total")
		f.met.arrivalsCtr = r.Counter("fleet_arrivals_total")
		f.met.departs = r.Counter("fleet_departures_total")
		f.met.barriers = r.Counter("fleet_barriers_total")
		f.met.recoveries = r.Counter("fleet_recoveries_total")
		f.met.replayed = r.Counter("fleet_replayed_gofs_total")
		f.met.boardDeaths = r.Counter("fleet_board_deaths_total")
		f.met.boards = r.Gauge("fleet_boards")
		f.met.boardsQuar = r.Gauge("fleet_boards_quarantined")
		f.met.queueDepth = r.Gauge("fleet_queue_depth")
		f.met.liveGauge = r.Gauge("fleet_live_streams")
		f.met.adaptBoards = r.Gauge("fleet_adapt_boards_enabled")
	}
	f.met.boards.Set(float64(len(f.boards)))
	if opts.Adapt != nil {
		f.met.adaptBoards.Set(float64(f.adaptFrontier))
	}
	return f, nil
}

// Submit enqueues one stream for fleet placement. It returns the
// fleet-assigned stream id, or an error when the fleet queue is full
// (backpressure) or the config is invalid. Content features of the
// stream's first frame are extracted here, once, and reused for every
// placement decision the stream is ever part of.
func (f *Fleet) Submit(cfg serve.StreamConfig) (int, error) {
	if cfg.Video == nil {
		return 0, fmt.Errorf("fleet: stream needs a video")
	}
	if cfg.SLO <= 0 {
		return 0, fmt.Errorf("fleet: stream needs a positive SLO")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.running {
		return 0, fmt.Errorf("fleet: already running, not accepting streams")
	}
	f.countArrivalLocked(cfg)
	if len(f.queue) >= f.opts.QueueLimit {
		f.countRejectionLocked(cfg)
		return 0, fmt.Errorf("fleet: %w (%d streams), stream %q refused",
			serve.ErrQueueFull, f.opts.QueueLimit, cfg.Name)
	}
	id := f.nextID
	f.nextID++
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("stream-%d", id)
	}
	light := feat.LightVector(cfg.Video, cfg.Video.Frames[0])
	f.queue = append(f.queue, &waiting{id: id, cfg: cfg, light: light})
	return id, nil
}

// countArrivalLocked books one arrival (total and per class) for the
// fleet's conservation accounting. Caller holds the fleet mutex.
func (f *Fleet) countArrivalLocked(cfg serve.StreamConfig) {
	f.arrivals++
	f.met.arrivalsCtr.Inc()
	if f.arrByClass == nil {
		f.arrByClass = map[string]int{}
	}
	f.arrByClass[serve.ClassOf(cfg)]++
}

// countRejectionLocked books one terminal rejection (total and per
// class). Caller holds the fleet mutex.
func (f *Fleet) countRejectionLocked(cfg serve.StreamConfig) {
	f.rejected++
	f.met.rejections.Inc()
	if f.rejByClass == nil {
		f.rejByClass = map[string]int{}
	}
	f.rejByClass[serve.ClassOf(cfg)]++
}

// intakeArrivals polls the open-loop Source with the fleet's virtual
// time and feeds due arrivals into the queue, rejecting when the queue
// is full. Runs single-threaded at the barrier.
func (f *Fleet) intakeArrivals() {
	if f.opts.Source == nil {
		return
	}
	now := float64(f.barrier) * f.opts.TickMS
	for _, cfg := range f.opts.Source.Take(now) {
		f.mu.Lock()
		f.countArrivalLocked(cfg)
		class := serve.ClassOf(cfg)
		if len(f.queue) >= f.opts.QueueLimit {
			f.countRejectionLocked(cfg)
			f.mu.Unlock()
			f.event(obs.FleetEvent{Kind: "reject", Name: cfg.Name,
				Tier: class, Tenant: cfg.Tenant, Reason: "fleet queue full"})
			continue
		}
		id := f.nextID
		f.nextID++
		if cfg.Name == "" {
			cfg.Name = fmt.Sprintf("stream-%d", id)
		}
		light := feat.LightVector(cfg.Video, cfg.Video.Frames[0])
		f.queue = append(f.queue, &waiting{id: id, cfg: cfg, light: light})
		f.mu.Unlock()
		f.event(obs.FleetEvent{Kind: "arrive", Stream: id, Name: cfg.Name,
			Tier: class, Tenant: cfg.Tenant})
	}
}

// drainBoardEvents pulls the admission events every board buffered
// during its round (preemptions) onto the fleet trace, in board order —
// single-threaded at the barrier, so fixed-seed traces stay
// byte-identical even though boards stepped in parallel.
func (f *Fleet) drainBoardEvents() {
	for _, b := range f.boards {
		for _, ev := range b.srv.DrainStreamEvents() {
			reason := ev.Reason
			if ev.Retired {
				reason = "retired: " + reason
			}
			f.event(obs.FleetEvent{Kind: ev.Kind, Stream: ev.Stream,
				Name: ev.Name, From: b.name, Tier: ev.Class,
				Tenant: ev.Tenant, Reason: reason})
		}
	}
}

// Rejected returns the number of submissions refused by backpressure.
func (f *Fleet) Rejected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rejected
}

// Run drives the fleet to completion: barrier loop (place, step all
// boards in parallel, re-check health and SLO feasibility, migrate),
// then a final drain of every board, and returns the merged report.
func (f *Fleet) Run() *Report {
	f.mu.Lock()
	f.running = true
	f.mu.Unlock()

	for {
		f.intakeArrivals()
		f.placeQueued()
		f.captureCheckpoints()
		ran := f.stepBoards()
		f.barrier++
		f.met.barriers.Inc()
		f.observeFailures()
		f.drainBoardEvents()
		f.reapFinished()
		f.updateBoardHealth()
		f.advanceAdaptRollout()
		if !f.opts.DisableMigration {
			f.checkMigrations()
		}
		f.reapFinished()
		f.met.queueDepth.Set(float64(len(f.queue)))
		f.met.liveGauge.Set(float64(len(f.live)))
		if !ran && len(f.live) == 0 {
			if f.opts.Source != nil && !f.opts.Source.Exhausted() {
				continue // idle lull between arrivals; keep ticking
			}
			if len(f.queue) == 0 {
				break
			}
			// Nothing can run, nothing could be placed, and no more
			// arrivals are coming: every board is quarantined, dead or
			// out of capacity for good. Fresh submissions are rejected;
			// already-admitted re-entrants (evacuees and unrestorable
			// checkpoints) are retired — they were arrivals once, so
			// they land in the Retired conservation bucket, not Rejected.
			for _, w := range f.queue {
				class := serve.ClassOf(w.cfg)
				switch {
				case w.det != nil:
					w.det.Retire("fleet: no board with capacity")
					f.retired++
					f.met.retired.Inc()
					f.event(obs.FleetEvent{Kind: "retire", Stream: w.id,
						Name: w.cfg.Name, Tier: class, Tenant: w.cfg.Tenant,
						Reason: "evacuated stream: no board with capacity"})
				case w.ck != nil:
					f.retired++
					f.met.retired.Inc()
					if f.retByClass == nil {
						f.retByClass = map[string]int{}
					}
					f.retByClass[class]++
					f.event(obs.FleetEvent{Kind: "retire", Stream: w.id,
						Name: w.cfg.Name, Tier: class, Tenant: w.cfg.Tenant,
						Reason: "checkpoint unrestorable: no board with capacity"})
				default:
					f.mu.Lock()
					f.countRejectionLocked(w.cfg)
					f.mu.Unlock()
					f.event(obs.FleetEvent{Kind: "reject", Stream: w.id,
						Name: w.cfg.Name, Tier: class,
						Tenant: w.cfg.Tenant, Reason: "no board with capacity"})
				}
			}
			f.queue = nil
			break
		}
	}
	return f.buildReport()
}

// stepBoards runs one round of every board in parallel and reports
// whether any board had work. Each board is internally synchronized;
// cross-board state is only touched at the barrier.
//
// Fail-stop board faults are enacted here, single-threaded, before the
// parallel section: a board whose crash round has come is killed on the
// spot (its in-memory streams are gone — the fleet only learns through
// the missed heartbeats that follow), and a board inside its blackout
// window is not stepped at all (unresponsive, state frozen intact). A
// board that was stepped counts as having beaten its lease this barrier
// whether or not it had work; crashed and blacked-out boards do not.
func (f *Fleet) stepBoards() bool {
	ran := make([]bool, len(f.boards))
	stepped := make([]bool, len(f.boards))
	round := f.barrier + 1 // fault rounds are 1-based, like board rounds
	var wg sync.WaitGroup
	for i, b := range f.boards {
		if f.det != nil {
			if b.crashed {
				continue
			}
			if fc := b.opts.Faults; fc != nil {
				if start, end := fc.BlackoutWindow(); start > 0 && round >= start && round < end {
					continue
				}
				if fc.CrashRound > 0 && round >= fc.CrashRound {
					b.crashed = true
					b.srv.Kill()
					continue
				}
			}
		}
		stepped[i] = true
		i, b := i, b
		wg.Add(1)
		go func() {
			defer wg.Done()
			ran[i] = b.srv.StepRound()
		}()
	}
	wg.Wait()
	if f.det != nil {
		for k := range f.beats {
			delete(f.beats, k)
		}
		for i, b := range f.boards {
			if stepped[i] {
				f.beats[b.name] = true
			}
		}
	}
	for _, r := range ran {
		if r {
			return true
		}
	}
	return false
}

// reapFinished drops streams their board has retired (completed or
// stream-level quarantined) from the live set. Open-loop runs record a
// "depart" trace event per retirement, in live-set (id) order.
func (f *Fleet) reapFinished() {
	var still []*tracked
	for _, t := range f.live {
		res := t.handle.Result()
		if res == nil {
			still = append(still, t)
			continue
		}
		if f.store != nil {
			f.store.Drop(t.id) // nothing left to recover
		}
		f.met.departs.Inc()
		if f.opts.Source != nil {
			reason := "completed"
			switch {
			case res.Quarantined:
				reason = "quarantined: " + res.QuarantineReason
			case !res.MeetsSLO:
				reason = "completed (SLO violated)"
			}
			f.event(obs.FleetEvent{Kind: "depart", Stream: t.id,
				Name: t.cfg.Name, From: res.Board, Tier: res.Class,
				Tenant: res.Tenant, Reason: reason})
		}
	}
	f.live = still
}

// updateBoardHealth re-reads every board's panic tally and quarantines
// boards over the limit, evacuating their streams (unless migration is
// disabled, in which case the board keeps running and its streams fail
// at stream level — the ablation the fleet report quantifies).
func (f *Fleet) updateBoardHealth() {
	quar := 0
	for _, b := range f.boards {
		if b.quarantined {
			quar++
			continue
		}
		if b.crashed {
			continue // fail-stopped; the lease detector owns its fate
		}
		p := b.srv.Panics()
		if p >= f.opts.BoardPanicLimit {
			b.quarantined = true
			quar++
			f.event(obs.FleetEvent{Kind: "board", From: b.name,
				Reason: fmt.Sprintf("quarantined: %d worker panics", p)})
			if !f.opts.DisableMigration {
				f.evacuate(b)
			}
		} else if p > 0 && !b.degraded {
			b.degraded = true
			f.event(obs.FleetEvent{Kind: "board", From: b.name,
				Reason: fmt.Sprintf("degraded: %d worker panics", p)})
		}
	}
	f.met.boardsQuar.Set(float64(quar))
}

// advanceAdaptRollout stages online adaptation across the fleet: at
// each barrier, if the last rollout-enabled board's registry has
// recorded at least one promotion — the canary proved the adaptation
// loop improves prediction there — the next board's promotion gate
// opens. Gates only ever open (rollback is per-stream, via the
// adapter's own demotion machinery), and the single-threaded barrier
// keeps the opening sequence deterministic.
func (f *Fleet) advanceAdaptRollout() {
	for f.adaptFrontier > 0 && f.adaptFrontier < len(f.boards) {
		prev := f.boards[f.adaptFrontier-1]
		if prev.srv.AdaptRegistry().Promotions() < 1 {
			return
		}
		next := f.boards[f.adaptFrontier]
		next.adaptGate.Store(true)
		f.adaptFrontier++
		f.met.adaptBoards.Set(float64(f.adaptFrontier))
		f.event(obs.FleetEvent{Kind: "adapt", From: prev.name, To: next.name,
			Reason: fmt.Sprintf("staged rollout: %s promoted %d challenger(s)",
				prev.name, prev.srv.AdaptRegistry().Promotions())})
	}
}

// event records one fleet-trace event stamped with the current barrier.
func (f *Fleet) event(e obs.FleetEvent) {
	e.Barrier = f.barrier
	f.obsv.RecordFleetEvent(e)
}
