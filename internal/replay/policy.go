package replay

import (
	"fmt"
	"strings"

	"litereconfig/internal/core"
	"litereconfig/internal/feat"
	"litereconfig/internal/sched"
)

// DegradeKnob selects how replay treats the graceful-degradation state
// (watchdog branch ladder + heavy-feature circuit breaker).
type DegradeKnob int

const (
	// DegradeRecorded replays under the recorded per-decision ladder
	// level and breaker state — the identity-preserving default.
	DegradeRecorded DegradeKnob = iota
	// DegradeOff forces the ladder and breaker off: the counterfactual
	// where the run never degraded (chaos-absorption ablation).
	DegradeOff
	// DegradeSim re-simulates the watchdog ladder from each chain's
	// estimated GoF outcomes against the replay SLO, so a sweep to a
	// tighter SLO also sheds load the way the live watchdog would. The
	// breaker stays on its recorded state — extraction failures are
	// environmental, not policy.
	DegradeSim
)

// ParseDegrade maps the lrreplay -degrade token to a knob.
func ParseDegrade(s string) (DegradeKnob, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "recorded":
		return DegradeRecorded, nil
	case "off":
		return DegradeOff, nil
	case "sim":
		return DegradeSim, nil
	}
	return 0, fmt.Errorf("replay: unknown degrade mode %q (want recorded, off or sim)", s)
}

// Config configures a replay Engine. The zero value of every knob means
// "as recorded", so Config{Models: m} is the identity configuration the
// fidelity invariant is checked under.
type Config struct {
	// Models is the trained bundle the trace was served from (or an
	// alternate bundle for what-if runs): the replay engine takes the
	// branch space, the Ben(f_H) benefit table and — for decisions whose
	// replayed feature set differs from the recording — the content-
	// accuracy models from here. Required; identity replay further
	// requires the same bundle the recording used.
	Models *sched.Models
	// SLOMS overrides every decision's recorded SLO (> 0); zero keeps
	// the per-stream recorded objectives.
	SLOMS float64
	// SafetyFactor overrides the recorded planning safety factor (> 0).
	SafetyFactor float64
	// Hysteresis, CostWeight and DisableSwitchCost override the
	// corresponding recorded knobs when non-nil.
	Hysteresis        *float64
	CostWeight        *float64
	DisableSwitchCost *bool
	// Degrade selects the graceful-degradation treatment.
	Degrade DegradeKnob
	// Policy overrides the recorded scheduler variant for every decision
	// ("full", "mincost", "maxcontent-resnet", "maxcontent-mobilenet",
	// "force-<feature>"); empty replays each decision's recorded variant.
	Policy string
	// RiskQuantile overrides the probabilistic-admission quantile when
	// non-nil: a positive value re-admits every decision at that
	// q-quantile, deriving the per-branch inflation factors and
	// tracker-failure probabilities from Models (the "what if we had
	// served risk-aware at q" counterfactual); zero forces mean
	// admission even over risk-recorded corpora (the ablation). Nil
	// replays each decision as recorded — the payload's own risk factors
	// when it is a risk-admitted recording (PolicyRev ≥ 1), mean
	// admission otherwise — which is what identity replay requires.
	RiskQuantile *float64
	// UseModelPredictions recomputes the per-branch accuracy and latency
	// tables from Models and the recorded feature vectors and scale
	// factors, instead of trusting the recorded tables — the "what if we
	// had served from these models" mode (frozen alternates or adapted
	// bundles from the registry). Off, the recorded tables are used and
	// Models only supplies the Ben table, branch space and content
	// models for off-recording feature sets.
	UseModelPredictions bool
}

// variant is the per-decision scheduler behavior derived from the
// recorded policy name or the Config.Policy override.
type variant struct {
	policy core.Policy
	forced feat.Kind
}

// parsePolicyName maps a recorded Decision.Policy string back to the
// scheduler variant.
func parsePolicyName(name string) (variant, error) {
	switch name {
	case "LiteReconfig":
		return variant{policy: core.PolicyFull}, nil
	case "LiteReconfig-MinCost":
		return variant{policy: core.PolicyMinCost}, nil
	case "LiteReconfig-MaxContent-ResNet":
		return variant{policy: core.PolicyMaxContentResNet}, nil
	case "LiteReconfig-MaxContent-MobileNet":
		return variant{policy: core.PolicyMaxContentMobileNet}, nil
	}
	if rest, ok := strings.CutPrefix(name, "LiteReconfig-Force-"); ok {
		k, kok := feat.KindByName(rest)
		if !kok || !k.Heavy() {
			return variant{}, fmt.Errorf("replay: unknown forced feature in policy %q", name)
		}
		return variant{policy: core.PolicyForceFeature, forced: k}, nil
	}
	return variant{}, fmt.Errorf("replay: unknown recorded policy %q", name)
}

// parsePolicyOverride maps a Config.Policy token to the variant.
func parsePolicyOverride(s string) (variant, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "full", "litereconfig":
		return variant{policy: core.PolicyFull}, nil
	case "mincost":
		return variant{policy: core.PolicyMinCost}, nil
	case "maxcontent-resnet", "resnet":
		return variant{policy: core.PolicyMaxContentResNet}, nil
	case "maxcontent-mobilenet", "mobilenet":
		return variant{policy: core.PolicyMaxContentMobileNet}, nil
	}
	if rest, ok := strings.CutPrefix(strings.ToLower(strings.TrimSpace(s)), "force-"); ok {
		k, kok := feat.KindByName(rest)
		if kok && k.Heavy() {
			return variant{policy: core.PolicyForceFeature, forced: k}, nil
		}
	}
	return variant{}, fmt.Errorf("replay: unknown policy override %q", s)
}

// manageOverhead reports the variant's overhead regime (mirrors
// core.Scheduler: the greedy MaxContent/Force variants apply the SLO to
// the kernel only).
func (v variant) manageOverhead() bool {
	switch v.policy {
	case core.PolicyMaxContentResNet, core.PolicyMaxContentMobileNet, core.PolicyForceFeature:
		return false
	}
	return true
}
