package replay

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"litereconfig/internal/fault"
	"litereconfig/internal/fixture"
	"litereconfig/internal/fleet"
	"litereconfig/internal/obs"
	"litereconfig/internal/serve"
	"litereconfig/internal/vid"
)

// recordFleet runs a crash-chaos fleet with checkpoint recovery and the
// replay payload on, returning the observer (decisions and fleet
// events). The scenario produces interleaved recovery generations:
// board b1 fail-stops mid-run and its streams are restored from
// checkpoints onto survivors with gen > 0.
func recordFleet(t testing.TB) *obs.Observer {
	t.Helper()
	set, err := fixture.Small()
	if err != nil {
		t.Fatal(err)
	}
	observer := obs.New()
	f, err := fleet.New(fleet.Options{
		Models: set.Models,
		Boards: []fleet.BoardConfig{
			{Name: "b0"},
			{Name: "b1", Faults: &fault.Config{Seed: 7, CrashRound: 6}},
			{Name: "b2"},
		},
		CheckpointInterval: 2,
		Observer:           observer,
		ReplayTrace:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		v := vid.Generate("replayfleet", 900+int64(i), vid.GenConfig{Frames: 120})
		if _, err := f.Submit(serve.StreamConfig{
			Video: v, SLO: 100, Seed: 70 + int64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	f.Run()
	return observer
}

// TestIdentityFleetRecovery is the fidelity invariant over the hardest
// corpus: a fleet run with a board fail-stop, checkpoint restores and
// interleaved recovery generations. Every decision — original and
// replayed-after-restore incarnations alike — must reproduce exactly.
func TestIdentityFleetRecovery(t *testing.T) {
	observer := recordFleet(t)
	ds := observer.Decisions()
	requireIdentity(t, ds, "fleet-crash-recovery")

	gens := 0
	for i := range ds {
		if ds[i].Gen > 0 {
			gens++
		}
	}
	if gens == 0 {
		t.Fatal("scenario produced no gen>0 decisions — the recovery path went untested")
	}
}

// TestLoadTraceFiles round-trips decision and fleet traces through the
// gzip trace files and the corpus loader: sniffing must put each file
// in the right bucket, and a directory load must pick up both.
func TestLoadTraceFiles(t *testing.T) {
	observer := recordFleet(t)
	dir := t.TempDir()

	decPath := filepath.Join(dir, "decisions.jsonl.gz")
	w, err := obs.CreateTrace(decPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := observer.WriteTrace(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fleetPath := filepath.Join(dir, "fleet.jsonl")
	fw, err := obs.CreateTrace(fleetPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := observer.WriteFleetTrace(fw); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}

	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantDecisions := len(observer.Decisions())
	if c.Decisions() != wantDecisions {
		t.Fatalf("loaded %d decisions, want %d", c.Decisions(), wantDecisions)
	}
	if c.FleetEvents() == 0 {
		t.Fatal("fleet trace sniffed as decisions (no fleet events loaded)")
	}

	// The gzip decision file must actually compress: replay payloads
	// are highly redundant JSON.
	gz, err := os.Stat(decPath)
	if err != nil {
		t.Fatal(err)
	}
	plainPath := filepath.Join(dir, "decisions.jsonl")
	pw, err := obs.CreateTrace(plainPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := observer.WriteTrace(pw); err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	plain, err := os.Stat(plainPath)
	if err != nil {
		t.Fatal(err)
	}
	if gz.Size()*2 >= plain.Size() {
		t.Fatalf("gzip trace %d bytes vs plain %d — compression broken", gz.Size(), plain.Size())
	}

	// Identity replay straight from the loaded corpus (the fleet-event
	// file rides along without disturbing the decision replay).
	res, err := identityEngine(t).Replay(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.DivergedDecisions != 0 {
		t.Fatalf("%d divergences replaying the loaded corpus", res.DivergedDecisions)
	}
}

// TestTruncatedCorpusFailsLoudly: a trace whose final line was cut by a
// crash mid-write must fail the load — a silently shortened corpus
// would fake fidelity.
func TestTruncatedCorpusFailsLoudly(t *testing.T) {
	ds := recordServe(t, serve.Options{}, nil, []serve.StreamConfig{{SLO: 50, Seed: 1}})
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range ds {
		if err := enc.Encode(ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	data := buf.Bytes()
	if len(data) < 100 {
		t.Fatalf("trace too short to truncate meaningfully: %d bytes", len(data))
	}
	path := filepath.Join(t.TempDir(), "trunc.jsonl")
	if err := os.WriteFile(path, data[:len(data)-37], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("loading a truncated corpus succeeded")
	}
}

// TestEmptyTraceLoads: an empty file is a valid (empty) corpus, not an
// error — a run that recorded nothing is distinguishable from a
// corrupted one.
func TestEmptyTraceLoads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Decisions() != 0 || c.FleetEvents() != 0 {
		t.Fatal("empty trace loaded records")
	}
}
