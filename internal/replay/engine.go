package replay

import (
	"fmt"
	"math"

	"litereconfig/internal/core"
	"litereconfig/internal/feat"
	"litereconfig/internal/glm"
	"litereconfig/internal/mbek"
	"litereconfig/internal/obs"
	"litereconfig/internal/sched"
)

// Engine re-executes the scheduler over a corpus of replay-enriched
// decision traces. It is deterministic and single-goroutine; build one
// per configuration.
type Engine struct {
	cfg        Config
	models     *sched.Models
	branchIdx  map[string]int
	heavyKinds []feat.Kind

	override    *variant
	hasOverride bool
}

// New validates the configuration and builds an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Models == nil {
		return nil, fmt.Errorf("replay: Models is required")
	}
	e := &Engine{
		cfg:        cfg,
		models:     cfg.Models,
		branchIdx:  make(map[string]int, len(cfg.Models.Branches)),
		heavyKinds: feat.HeavyKinds(),
	}
	for i, b := range cfg.Models.Branches {
		e.branchIdx[b.String()] = i
	}
	if cfg.Policy != "" {
		v, err := parsePolicyOverride(cfg.Policy)
		if err != nil {
			return nil, err
		}
		e.override = &v
		e.hasOverride = true
	}
	if cfg.SLOMS < 0 || cfg.SafetyFactor < 0 {
		return nil, fmt.Errorf("replay: negative SLO or safety factor")
	}
	if cfg.RiskQuantile != nil && (*cfg.RiskQuantile < 0 || *cfg.RiskQuantile >= 1) {
		return nil, fmt.Errorf("replay: RiskQuantile override must be in [0, 1), got %v", *cfg.RiskQuantile)
	}
	return e, nil
}

// Redecision is one replayed scheduling decision, paired with its
// recorded counterpart's identity and the counterfactual outcome
// estimate.
type Redecision struct {
	File     string
	Stream   int
	Gen      int
	Seq      int
	SLOMS    float64 // the SLO this decision was replayed under
	Branch   string
	Features []string
	Feasible int
	Fallback bool
	PredAcc  float64
	PredMS   float64
	// EstMS is the estimated realized per-frame GoF latency of the
	// replayed decision: the recorded realization when the replay chose
	// the recorded branch and feature set, otherwise the replayed
	// prediction scaled by the recorded realized/predicted residual.
	EstMS    float64
	Frames   int
	Attained bool
	// Diverged lists the fields on which the replayed decision differs
	// from the recording (empty for a faithful reproduction). Under the
	// identity configuration any entry is a fidelity violation.
	Diverged []string
	// MissingHeavy counts heavy features the replay selected whose
	// vectors the recording never extracted — their content models could
	// not contribute, so the accuracy estimate for this decision is
	// partially content-blind.
	MissingHeavy int
}

// Outcome aggregates estimated results over a replayed (or recorded)
// decision stream. All means are frame-weighted; decisions whose GoF
// never executed (zero recorded frames) carry no weight.
type Outcome struct {
	Decisions int
	GoFs      int
	Frames    int
	// AttainRate is the fraction of frames inside GoFs whose estimated
	// per-frame latency met the (replay) SLO.
	AttainRate float64
	// MeanAccuracy is the mean predicted accuracy of the decisions that
	// governed each frame.
	MeanAccuracy float64
	// MeanMS is the mean estimated per-frame latency.
	MeanMS float64
}

// Result is one replay pass over a corpus.
type Result struct {
	// Redecisions holds every replayed decision in corpus order.
	Redecisions []Redecision
	// Replayed and Recorded are the outcome estimates of the replayed
	// and the recorded decision streams, both judged against the replay
	// SLO — their deltas are the counterfactual value of the knob change.
	Replayed Outcome
	Recorded Outcome
	// DivergedDecisions counts replayed decisions that differ from the
	// recording on any compared field; MissingHeavy sums the
	// content-blind feature selections (see Redecision.MissingHeavy).
	DivergedDecisions int
	MissingHeavy      int
}

// Divergences returns the redecisions that differ from the recording.
func (r *Result) Divergences() []Redecision {
	var out []Redecision
	for i := range r.Redecisions {
		if len(r.Redecisions[i].Diverged) > 0 {
			out = append(out, r.Redecisions[i])
		}
	}
	return out
}

// Replay re-decides every decision in the corpus under the engine's
// configuration. Decisions lacking the replay payload, or whose payload
// does not match the engine's branch space, fail loudly — a corpus that
// cannot be replayed must never read as "replayed with zero
// divergence".
func (e *Engine) Replay(c *Corpus) (*Result, error) {
	res := &Result{}
	var recAcc, recMS, repAcc, repMS weighted
	for fi := range c.Files {
		f := &c.Files[fi]
		for i := 0; i < len(f.Decisions); {
			j := i
			for j < len(f.Decisions) &&
				f.Decisions[j].Stream == f.Decisions[i].Stream &&
				f.Decisions[j].Gen == f.Decisions[i].Gen {
				j++
			}
			if err := e.replayChain(f.Path, f.Decisions[i:j], res,
				&recAcc, &recMS, &repAcc, &repMS); err != nil {
				return nil, err
			}
			i = j
		}
	}
	res.Replayed.MeanAccuracy = repAcc.mean()
	res.Replayed.MeanMS = repMS.mean()
	res.Replayed.finishRates()
	res.Recorded.MeanAccuracy = recAcc.mean()
	res.Recorded.MeanMS = recMS.mean()
	res.Recorded.finishRates()
	return res, nil
}

// weighted accumulates a frame-weighted mean.
type weighted struct{ sum, w float64 }

func (a *weighted) add(v, w float64) { a.sum += v * w; a.w += w }
func (a *weighted) mean() float64 {
	if a.w == 0 {
		return 0
	}
	return a.sum / a.w
}

// attained is tracked in Outcome.AttainRate as a frame count until
// finishRates converts it to a rate.
func (o *Outcome) finishRates() {
	if o.Frames > 0 {
		o.AttainRate /= float64(o.Frames)
	}
}

// replayChain replays one (file, stream, gen) chain in seq order,
// threading the counterfactual current-branch state and the simulated
// watchdog level through its decisions.
func (e *Engine) replayChain(path string, ds []obs.Decision, res *Result,
	recAcc, recMS, repAcc, repMS *weighted) error {

	curIdx := -1 // replayed current branch (chained), -1 before the first decision
	simLevel := 0
	// Until the replay's branch choice first diverges from the recording
	// the chain follows the recorded current-branch state verbatim —
	// including environmental discontinuities the scheduler never caused
	// (a kernel rebuilt fresh after recovery or migration). From the
	// first divergence on, the counterfactual branch chains forward.
	chainDiverged := false
	for di := range ds {
		d := &ds[di]
		rd, err := e.redecide(path, d, &curIdx, &simLevel, &chainDiverged)
		if err != nil {
			return err
		}
		res.Redecisions = append(res.Redecisions, rd)
		if len(rd.Diverged) > 0 {
			res.DivergedDecisions++
		}
		res.MissingHeavy += rd.MissingHeavy

		// Outcome accounting, replayed and recorded, both against the
		// replay SLO. Decisions whose GoF never ran carry no weight.
		res.Replayed.Decisions++
		res.Recorded.Decisions++
		if d.GoFFrames > 0 {
			w := float64(d.GoFFrames)
			res.Replayed.GoFs++
			res.Replayed.Frames += d.GoFFrames
			repAcc.add(rd.PredAcc, w)
			repMS.add(rd.EstMS, w)
			if rd.Attained {
				res.Replayed.AttainRate += w
			}
			res.Recorded.GoFs++
			res.Recorded.Frames += d.GoFFrames
			recAcc.add(d.PredAccuracy, w)
			recMS.add(d.RealizedMS, w)
			if d.RealizedMS <= rd.SLOMS {
				res.Recorded.AttainRate += w
			}
		}
	}
	return nil
}

// redecide mirrors core.Scheduler.Decide over one recorded decision's
// captured inputs. Every arithmetic step reproduces the scheduler's
// exact operation order, so with unchanged knobs the result is
// bit-identical to the recording.
func (e *Engine) redecide(path string, d *obs.Decision, curIdx, simLevel *int, chainDiverged *bool) (Redecision, error) {
	at := func() string {
		return fmt.Sprintf("%s: stream %d gen %d seq %d", path, d.Stream, d.Gen, d.Seq)
	}
	rp := d.Replay
	if rp == nil {
		return Redecision{}, fmt.Errorf("replay: %s: decision has no replay payload (record the trace with the replay flag on)", at())
	}
	n := len(e.models.Branches)
	if rp.NumBranches != n {
		return Redecision{}, fmt.Errorf("replay: %s: trace recorded %d branches, models have %d — wrong model bundle", at(), rp.NumBranches, n)
	}
	if len(rp.AccLight) != n || len(rp.KernelMS) != n {
		return Redecision{}, fmt.Errorf("replay: %s: payload tables truncated (acc_light %d, kernel_ms %d, want %d)", at(), len(rp.AccLight), len(rp.KernelMS), n)
	}
	if rp.SwitchMS != nil && len(rp.SwitchMS) != n {
		return Redecision{}, fmt.Errorf("replay: %s: switch_ms table truncated (%d, want %d)", at(), len(rp.SwitchMS), n)
	}

	// Effective knobs: configured overrides, else as recorded.
	slo := rp.SLOMS
	if e.cfg.SLOMS > 0 {
		slo = e.cfg.SLOMS
	}
	safety := rp.SafetyFactor
	if e.cfg.SafetyFactor > 0 {
		safety = e.cfg.SafetyFactor
	}
	budget := slo * safety
	hyst := rp.Hysteresis
	if e.cfg.Hysteresis != nil {
		hyst = *e.cfg.Hysteresis
	}
	costW := rp.CostWeight
	if e.cfg.CostWeight != nil {
		costW = *e.cfg.CostWeight
	}
	noSwitch := rp.DisableSwitchCost
	if e.cfg.DisableSwitchCost != nil {
		noSwitch = *e.cfg.DisableSwitchCost
	}

	// Variant: the override, else the recorded policy name.
	var v variant
	var manageOverhead bool
	if e.hasOverride {
		v = *e.override
		manageOverhead = v.manageOverhead()
	} else {
		var err error
		v, err = parsePolicyName(d.Policy)
		if err != nil {
			return Redecision{}, fmt.Errorf("%w (%s)", err, at())
		}
		manageOverhead = rp.ManageOverhead
	}

	// Current-branch state: a recorded fresh kernel (no branch yet —
	// stream start, or rebuilt after recovery or migration) resets the
	// chain; otherwise the recorded branch while the chain still tracks
	// the recording, the chained counterfactual branch after the first
	// divergence.
	hasCur := rp.HasCur
	recordedCur := -1
	if rp.HasCur {
		bi, ok := e.branchIdx[rp.CurBranch]
		if !ok {
			return Redecision{}, fmt.Errorf("replay: %s: recorded current branch %q not in model bundle", at(), rp.CurBranch)
		}
		recordedCur = bi
	} else {
		*curIdx = -1
	}
	cur := *curIdx
	if !*chainDiverged || cur < 0 {
		cur = recordedCur
	}
	// switchMS prices C(b0, b): the recorded per-branch costs (which
	// include adapter-observed estimates) whenever the counterfactual
	// sits on the recorded branch, the offline model otherwise.
	switchMS := func(bi int) float64 {
		if cur == recordedCur && rp.SwitchMS != nil {
			return rp.SwitchMS[bi]
		}
		return mbek.SwitchCostMS(e.models.Branches[cur], e.models.Branches[bi])
	}

	// Degradation state for this decision.
	degradeLevel := 0
	brkOpen := false
	switch e.cfg.Degrade {
	case DegradeRecorded:
		degradeLevel = d.Degrade
		brkOpen = d.Breaker == "open"
	case DegradeOff:
		// all zero
	case DegradeSim:
		degradeLevel = *simLevel
		brkOpen = d.Breaker == "open"
	}

	// Prediction tables: recorded, or recomputed from the bundle and
	// the recorded feature vectors + scale factors (UseModelPredictions).
	accLight := rp.AccLight
	kernelMS := rp.KernelMS
	cpuAdj := rp.CPUAdj
	if cpuAdj == 0 {
		cpuAdj = 1
	}
	if e.cfg.UseModelPredictions {
		if len(rp.Light) == 0 {
			return Redecision{}, fmt.Errorf("replay: %s: payload has no light feature vector", at())
		}
		accLight = e.models.PredictAccuracyLight(rp.Light)
		cpuAdj = e.models.CPUAdjFactor()
		kernelMS = make([]float64, n)
		for bi := range kernelMS {
			det, trk := e.models.PredictLatency(bi, rp.Light)
			kernelMS[bi] = det*rp.GPUScale + trk*rp.CPUScale*cpuAdj + e.models.LatencyBiasMS(bi)
		}
	}

	// Heavy-feature prices as the analyzer saw them.
	featCost := func(k feat.Kind) (float64, error) {
		c, ok := rp.FeatCostMS[k.String()]
		if !ok {
			return 0, fmt.Errorf("replay: %s: payload has no cost for feature %v", at(), k)
		}
		return c, nil
	}

	// Step 2 mirror: decide the heavy feature set.
	var selected []feat.Kind
	switch v.policy {
	case core.PolicyMinCost:
	case core.PolicyMaxContentResNet:
		selected = []feat.Kind{feat.ResNet50}
	case core.PolicyMaxContentMobileNet:
		selected = []feat.Kind{feat.MobileNetV2}
	case core.PolicyForceFeature:
		selected = []feat.Kind{v.forced}
	case core.PolicyFull:
		if degradeLevel > 0 || brkOpen {
			break
		}
		var err error
		selected, err = e.selectFeatures(rp, accLight, kernelMS, budget, slo, costW,
			hasCur, noSwitch, switchMS, featCost)
		if err != nil {
			return Redecision{}, err
		}
	}

	// Step 3 mirror: map the selected set onto the recorded extraction
	// environment. Recorded extraction failures fail again (they are
	// the environment, not the policy); selections the recording never
	// extracted have no vectors and degrade the estimate loudly.
	recorded := d.Features
	sameSet := equalKindNames(selected, recorded)
	failed := map[string]bool{}
	for _, name := range d.FailedFeatures {
		failed[name] = true
	}
	missingHeavy := 0
	var extracted []feat.Kind
	var heavy map[feat.Kind][]float64
	for _, k := range selected {
		name := k.String()
		if failed[name] {
			continue
		}
		vec, ok := rp.Heavy[name]
		if !ok {
			missingHeavy++
			continue
		}
		if heavy == nil {
			heavy = make(map[feat.Kind][]float64, len(selected))
		}
		heavy[k] = vec
		extracted = append(extracted, k)
	}
	var acc []float64
	switch {
	case sameSet && !e.cfg.UseModelPredictions:
		// Identity path: the recorded content-aware table when heavy
		// features survived, else the content-agnostic one (what
		// PredictAccuracySet returns for an empty set).
		if len(rp.Acc) == n {
			acc = rp.Acc
		} else {
			acc = accLight
		}
	case len(extracted) == 0:
		acc = accLight
	default:
		acc = e.models.PredictAccuracySet(extracted, rp.Light, heavy)
	}

	// Scheduler spend: the recorded realization when the feature set is
	// unchanged; otherwise adjusted by the estimated price delta of the
	// selection change.
	schedSpent := rp.SchedSpentMS
	if !sameSet {
		for _, name := range recorded {
			if c, ok := rp.FeatCostMS[name]; ok {
				schedSpent -= c
			}
		}
		for _, k := range selected {
			c, err := featCost(k)
			if err != nil {
				return Redecision{}, err
			}
			schedSpent += c
		}
		if schedSpent < 0 {
			schedSpent = 0
		}
	}

	// Risk-admission mirror: a risk-recorded payload (PolicyRev ≥ 1)
	// carries the exact per-branch quantile inflation factors and
	// tracker-failure probabilities the live admission used, so replay
	// reproduces the risk procedure bit-exactly without variance state.
	// The Config.RiskQuantile override instead re-derives both from the
	// engine's models (counterfactual risk level), or forces mean
	// admission at zero.
	riskOn := false
	var riskF, failP []float64
	if e.cfg.RiskQuantile == nil {
		if rp.PolicyRev >= 1 && rp.RiskQ > 0 {
			if len(rp.RiskFactor) != n || len(rp.FailProb) != n {
				return Redecision{}, fmt.Errorf("replay: %s: risk payload tables truncated (risk_factor %d, fail_prob %d, want %d)", at(), len(rp.RiskFactor), len(rp.FailProb), n)
			}
			riskOn = true
			riskF, failP = rp.RiskFactor, rp.FailProb
		}
	} else if q := *e.cfg.RiskQuantile; q > 0 {
		riskOn = true
		z := glm.NormalQuantile(q)
		riskF = make([]float64, n)
		failP = make([]float64, n)
		for bi := 0; bi < n; bi++ {
			riskF[bi] = e.models.QuantileFactor(bi, z)
			if len(rp.Light) > 0 {
				failP[bi] = e.models.PredictFailProb(bi, rp.Light)
			}
		}
	}

	// Step 4 mirror: constrained optimization over the candidate set.
	perFrame := func(bi int) float64 {
		p := kernelMS[bi]
		if manageOverhead {
			over := schedSpent
			if hasCur && !noSwitch {
				over += switchMS(bi)
			}
			p += over / float64(e.models.Branches[bi].GoF)
		}
		return p
	}
	riskMargin := func(bi int) float64 {
		if !riskOn {
			return 0
		}
		return kernelMS[bi] * (riskF[bi] - 1)
	}
	bestIdx := -1
	bestScore := math.Inf(-1)
	feasible := 0
	if degradeLevel > 0 {
		bestLat := math.Inf(1)
		for bi := range e.models.Branches {
			pf := perFrame(bi) + riskMargin(bi)
			if pf > budget {
				continue
			}
			feasible++
			if degradeLevel < core.MaxDegradeLevel && pf < bestLat {
				bestLat = pf
				bestIdx = bi
			}
		}
		if degradeLevel >= core.MaxDegradeLevel {
			bestIdx = 0
			for bi := range kernelMS {
				if kernelMS[bi] < kernelMS[bestIdx] {
					bestIdx = bi
				}
			}
		}
	} else {
		for bi := range e.models.Branches {
			if perFrame(bi)+riskMargin(bi) > budget {
				continue
			}
			feasible++
			score := acc[bi]
			if riskOn {
				score *= 1 - failP[bi]
			}
			if hasCur && bi == cur && hyst > 0 && v.policy == core.PolicyFull {
				score += hyst
			}
			if score > bestScore {
				bestScore = score
				bestIdx = bi
			}
		}
	}
	fallback := bestIdx < 0
	if fallback {
		bestIdx = 0
		for bi := range kernelMS {
			if kernelMS[bi] < kernelMS[bestIdx] {
				bestIdx = bi
			}
		}
	}
	predMS := perFrame(bestIdx)
	predAcc := acc[bestIdx]
	branchName := e.models.Branches[bestIdx].String()

	// Fidelity comparison against the recording.
	var diverged []string
	if branchName != d.Branch {
		diverged = append(diverged, "branch")
	}
	if !sameSet {
		diverged = append(diverged, "features")
	}
	if feasible != d.FeasibleBranches {
		diverged = append(diverged, "feasible")
	}
	if fallback != d.Fallback {
		diverged = append(diverged, "fallback")
	}
	if predAcc != d.PredAccuracy {
		diverged = append(diverged, "pred_acc")
	}
	if predMS != d.PredLatencyMS {
		diverged = append(diverged, "pred_lat")
	}

	// Counterfactual outcome estimate: ground truth when the replay
	// took the recorded action, else the replayed prediction anchored by
	// the recorded realized-vs-predicted residual.
	estMS := d.RealizedMS
	if branchName != d.Branch || !sameSet {
		ratio := 1.0
		if d.RealizedMS > 0 && d.PredLatencyMS > 0 {
			ratio = d.RealizedMS / d.PredLatencyMS
			if ratio < 0.25 {
				ratio = 0.25
			} else if ratio > 4 {
				ratio = 4
			}
		}
		estMS = predMS * ratio
	}

	rd := Redecision{
		File: path, Stream: d.Stream, Gen: d.Gen, Seq: d.Seq,
		SLOMS:        slo,
		Branch:       branchName,
		Feasible:     feasible,
		Fallback:     fallback,
		PredAcc:      predAcc,
		PredMS:       predMS,
		EstMS:        estMS,
		Frames:       d.GoFFrames,
		Attained:     estMS <= slo,
		Diverged:     diverged,
		MissingHeavy: missingHeavy,
	}
	for _, k := range selected {
		rd.Features = append(rd.Features, k.String())
	}

	// Chain state forward: the kernel leaves this GoF on the chosen
	// branch, and the simulated watchdog reacts to the estimated
	// realization the way ObserveGoF reacts to the real one.
	*curIdx = bestIdx
	if branchName != d.Branch {
		*chainDiverged = true
	}
	if e.cfg.Degrade == DegradeSim && d.GoFFrames > 0 {
		if estMS > slo {
			if *simLevel < core.MaxDegradeLevel {
				*simLevel++
			}
		} else if *simLevel > 0 {
			*simLevel--
		}
	}
	return rd, nil
}

// selectFeatures mirrors the cost-benefit analyzer (core.Scheduler
// .selectFeatures) over the recorded prices and tables: the same greedy
// loop, the same value function, the same operation order.
func (e *Engine) selectFeatures(rp *obs.ReplayPayload, accLight, kernelMS []float64,
	budget, slo, costW float64, hasCur, noSwitch bool,
	switchMS func(int) float64, featCost func(feat.Kind) (float64, error)) ([]feat.Kind, error) {

	safety := rp.SafetyFactor
	if e.cfg.SafetyFactor > 0 {
		safety = e.cfg.SafetyFactor
	}
	s0 := rp.S0MS

	value := func(set []feat.Kind) (float64, error) {
		var fc float64
		for _, kind := range set {
			c, err := featCost(kind)
			if err != nil {
				return 0, err
			}
			fc += c
		}
		best := math.Inf(-1)
		kernelBudget := 0.0
		bestGoF := 1.0
		for bi, b := range e.models.Branches {
			over := s0 + fc
			if hasCur && !noSwitch {
				over += switchMS(bi)
			}
			pf := kernelMS[bi] + over/float64(b.GoF)
			if pf > budget {
				continue
			}
			if accLight[bi] > best {
				best = accLight[bi]
				bestGoF = float64(b.GoF)
			}
			if kb := budget - over/float64(b.GoF); kb > kernelBudget {
				kernelBudget = kb
			}
		}
		if math.IsInf(best, -1) {
			return best, nil
		}
		v := best + e.models.Ben.SetBenefit(set, kernelBudget/safety)
		if costW > 0 {
			v -= costW * (fc / bestGoF) / budget
		}
		return v, nil
	}

	const stallFactor = 1.5
	stallCap := stallFactor * slo

	var set []feat.Kind
	curVal, err := value(set)
	if err != nil {
		return nil, err
	}
	var remaining []feat.Kind
	for _, k := range e.heavyKinds {
		c, err := featCost(k)
		if err != nil {
			return nil, err
		}
		if c <= stallCap {
			remaining = append(remaining, k)
		}
	}
	var trial []feat.Kind
	for len(remaining) > 0 {
		bestIdx := -1
		bestVal := curVal
		for i, cand := range remaining {
			trial = append(trial[:0], set...)
			trial = append(trial, cand)
			v, err := value(trial)
			if err != nil {
				return nil, err
			}
			if v > bestVal+1e-9 {
				bestVal = v
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		set = append(set, remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		curVal = bestVal
	}
	return set, nil
}

// equalKindNames reports whether the selected kinds equal the recorded
// name list, in order (the greedy emits a deterministic order, so order
// is part of the invariant).
func equalKindNames(kinds []feat.Kind, names []string) bool {
	if len(kinds) != len(names) {
		return false
	}
	for i, k := range kinds {
		if k.String() != names[i] {
			return false
		}
	}
	return true
}
