// Package replay is the counterfactual replay engine: it re-runs the
// LiteReconfig scheduler — and only the scheduler — over decision
// traces captured with the ReplayTrace payload, either verbatim (the
// fidelity invariant: an unchanged policy must reproduce the recorded
// decision stream exactly) or under altered policy knobs (a different
// SLO, the degradation ladder disabled or re-simulated, alternate
// model bundles from the adaptation registry), and estimates the
// counterfactual outcome of each re-decided GoF from the recorded
// per-branch prediction tables anchored by the realized-vs-predicted
// residual of the branch that actually ran. No kernels execute and no
// clocks advance, so replay runs orders of magnitude faster than the
// simulation that produced the trace.
package replay

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"litereconfig/internal/obs"
)

// TraceFile is one loaded trace: either a scheduler decision trace or a
// fleet placement/migration trace (never both — the writers keep them
// in separate files).
type TraceFile struct {
	Path      string
	Decisions []obs.Decision
	Fleet     []obs.FleetEvent
}

// Corpus is a set of loaded trace files. Decision replay treats each
// file as an independent scenario: stream ids are scoped to their file,
// so two runs' stream 0s never merge into one chain.
type Corpus struct {
	Files []TraceFile
}

// Decisions counts the decision records across all files.
func (c *Corpus) Decisions() int {
	n := 0
	for i := range c.Files {
		n += len(c.Files[i].Decisions)
	}
	return n
}

// FleetEvents counts the fleet events across all files.
func (c *Corpus) FleetEvents() int {
	n := 0
	for i := range c.Files {
		n += len(c.Files[i].Fleet)
	}
	return n
}

// Frames sums the realized GoF frames across all decision records.
func (c *Corpus) Frames() int {
	n := 0
	for i := range c.Files {
		for j := range c.Files[i].Decisions {
			n += c.Files[i].Decisions[j].GoFFrames
		}
	}
	return n
}

// SimMS returns the total simulated milliseconds the corpus covers:
// per (file, stream, gen) chain, realized GoF time summed over its
// decisions — the device time a real deployment would have needed.
func (c *Corpus) SimMS() float64 {
	total := 0.0
	for i := range c.Files {
		for j := range c.Files[i].Decisions {
			d := &c.Files[i].Decisions[j]
			total += d.RealizedMS * float64(d.GoFFrames)
		}
	}
	return total
}

// Load reads a corpus from the given paths. A path may be a trace file
// (plain or gzip JSONL) or a directory, which is scanned — not
// recursively — for *.jsonl and *.jsonl.gz entries. Each file is
// sniffed by content: records with a "kind" field are fleet events,
// everything else decision records. Malformed or truncated files fail
// loudly (a replay over a silently shortened corpus would report
// fidelity it never checked).
func Load(paths ...string) (*Corpus, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("replay: no trace paths given")
	}
	c := &Corpus{}
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, fmt.Errorf("replay: %w", err)
		}
		if !info.IsDir() {
			if err := c.loadFile(p); err != nil {
				return nil, err
			}
			continue
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return nil, fmt.Errorf("replay: %w", err)
		}
		found := 0
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() ||
				(!strings.HasSuffix(name, ".jsonl") && !strings.HasSuffix(name, ".jsonl.gz")) {
				continue
			}
			if err := c.loadFile(filepath.Join(p, name)); err != nil {
				return nil, err
			}
			found++
		}
		if found == 0 {
			return nil, fmt.Errorf("replay: directory %s holds no *.jsonl or *.jsonl.gz traces", p)
		}
	}
	return c, nil
}

func (c *Corpus) loadFile(path string) error {
	r, err := obs.OpenTrace(path)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	defer r.Close()

	tf := TraceFile{Path: path}
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("replay: %s: %w", path, err)
	}
	if len(bytes.TrimSpace(data)) == 0 {
		// Empty files load as empty traces.
		c.Files = append(c.Files, tf)
		return nil
	}
	// Sniff the record type from the first object, then decode the whole
	// stream as that type. Decision and fleet records never share a
	// file, and only fleet events carry a "kind" field.
	var first map[string]json.RawMessage
	if err := json.NewDecoder(bytes.NewReader(data)).Decode(&first); err != nil {
		return fmt.Errorf("replay: %s: record 1: %w", path, err)
	}
	if _, isFleet := first["kind"]; isFleet {
		tf.Fleet, err = obs.ReadFleetEvents(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("replay: %s: %w", path, err)
		}
	} else {
		tf.Decisions, err = obs.ReadDecisions(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("replay: %s: %w", path, err)
		}
		// Replay chains per-stream state in (stream, gen, seq) order; the
		// writers already emit that order, but enforce it so hand-edited
		// or concatenated corpora still chain correctly.
		sort.SliceStable(tf.Decisions, func(i, j int) bool {
			a, b := &tf.Decisions[i], &tf.Decisions[j]
			if a.Stream != b.Stream {
				return a.Stream < b.Stream
			}
			if a.Gen != b.Gen {
				return a.Gen < b.Gen
			}
			return a.Seq < b.Seq
		})
	}
	c.Files = append(c.Files, tf)
	return nil
}

// FromDecisions wraps an in-memory decision slice as a single-file
// corpus — the path tests and the bench harness take to replay a run
// they just produced without touching disk.
func FromDecisions(label string, ds []obs.Decision) *Corpus {
	out := append([]obs.Decision(nil), ds...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Stream != b.Stream {
			return a.Stream < b.Stream
		}
		if a.Gen != b.Gen {
			return a.Gen < b.Gen
		}
		return a.Seq < b.Seq
	})
	return &Corpus{Files: []TraceFile{{Path: label, Decisions: out}}}
}
