package replay

import (
	"testing"

	"litereconfig/internal/adapt"
	"litereconfig/internal/fault"
	"litereconfig/internal/fixture"
	"litereconfig/internal/obs"
	"litereconfig/internal/serve"
	"litereconfig/internal/vid"
)

// recordServe runs a fixed-seed serve scenario with the replay payload
// on and returns its decisions. The scenario exercises the full
// decision path: mixed SLO classes under WFQ contention, plus a faulted
// adaptive run (watchdog ladder, breaker, extraction failures, adapter
// shadow pricing and promotions).
func recordServe(t testing.TB, opts serve.Options, faults *fault.Config, policies []serve.StreamConfig) []obs.Decision {
	t.Helper()
	set, err := fixture.Small()
	if err != nil {
		t.Fatal(err)
	}
	observer := obs.New()
	opts.Models = set.Models
	opts.Observer = observer
	opts.ReplayTrace = true
	srv, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if policies == nil {
		for i := 0; i < 4; i++ {
			v := vid.Generate("replaytest", 900+int64(i), vid.GenConfig{Frames: 60})
			if _, err := srv.Submit(serve.StreamConfig{
				Video:          v,
				SLO:            []float64{33.3, 50, 100, 50}[i],
				Seed:           int64(i) + 1,
				BaseContention: 0.25,
				Faults:         faults,
			}); err != nil {
				t.Fatal(err)
			}
		}
	} else {
		for i := range policies {
			cfg := policies[i]
			cfg.Video = vid.Generate("replaytest", 900+int64(i), vid.GenConfig{Frames: 60})
			if _, err := srv.Submit(cfg); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv.Drain()
	return observer.Decisions()
}

func identityEngine(t testing.TB) *Engine {
	t.Helper()
	set, err := fixture.Small()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Models: set.Models})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// requireIdentity replays the corpus with the unchanged policy and
// fails on any divergence — the fidelity invariant.
func requireIdentity(t *testing.T, ds []obs.Decision, label string) {
	t.Helper()
	if len(ds) == 0 {
		t.Fatalf("%s: no decisions recorded", label)
	}
	res, err := identityEngine(t).Replay(FromDecisions(label, ds))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Redecisions) != len(ds) {
		t.Fatalf("%s: replayed %d of %d decisions", label, len(res.Redecisions), len(ds))
	}
	if res.DivergedDecisions != 0 {
		for _, rd := range res.Divergences()[:min(5, res.DivergedDecisions)] {
			t.Errorf("%s: stream %d gen %d seq %d diverged on %v (branch %s)",
				label, rd.Stream, rd.Gen, rd.Seq, rd.Diverged, rd.Branch)
		}
		t.Fatalf("%s: %d/%d decisions diverged under the identity replay",
			label, res.DivergedDecisions, len(ds))
	}
	if res.MissingHeavy != 0 {
		t.Fatalf("%s: identity replay selected %d unrecorded heavy features", label, res.MissingHeavy)
	}
}

// TestIdentityServe is the fidelity invariant over a plain contended
// WFQ serve run: the unchanged policy reproduces every recorded
// decision bit-exactly.
func TestIdentityServe(t *testing.T) {
	ds := recordServe(t, serve.Options{
		Admission:    serve.AdmissionWFQ,
		ClassWeights: map[string]int{"33.3ms": 4, "50ms": 2},
	}, nil, nil)
	requireIdentity(t, ds, "serve-wfq")
}

// TestIdentityFaultedAdaptive covers the hostile half of the invariant:
// injected faults (latency spikes, extraction failures) drive the
// watchdog ladder and circuit breaker, and online adaptation swaps
// model versions mid-run. Replay must reproduce all of it from the
// recorded planning state.
func TestIdentityFaultedAdaptive(t *testing.T) {
	ds := recordServe(t, serve.Options{
		Adapt: &adapt.Config{},
	}, &fault.Config{Seed: 11, SpikeRate: 0.05, ExtractFailRate: 0.1}, nil)
	requireIdentity(t, ds, "serve-faulted-adaptive")

	// The scenario must actually exercise the degradation machinery, or
	// this test proves nothing about it.
	sawDegrade, sawFail := false, false
	for i := range ds {
		if ds[i].Degrade > 0 {
			sawDegrade = true
		}
		if len(ds[i].FailedFeatures) > 0 {
			sawFail = true
		}
	}
	if !sawDegrade || !sawFail {
		t.Fatalf("scenario too tame: degrade=%v extract-failures=%v", sawDegrade, sawFail)
	}
}

// TestIdentityMixedPolicies replays every scheduler variant, including
// the unmanaged-overhead MaxContent pair.
func TestIdentityMixedPolicies(t *testing.T) {
	ds := recordServe(t, serve.Options{}, nil, []serve.StreamConfig{
		{SLO: 33.3, Seed: 1, Policy: 0 /* full */},
		{SLO: 50, Seed: 2, Policy: 1 /* mincost */},
		{SLO: 100, Seed: 3, Policy: 2 /* maxcontent-resnet */},
		{SLO: 100, Seed: 4, Policy: 3 /* maxcontent-mobilenet */},
	})
	requireIdentity(t, ds, "serve-mixed-policies")
	policies := map[string]bool{}
	for i := range ds {
		policies[ds[i].Policy] = true
	}
	if len(policies) < 4 {
		t.Fatalf("expected 4 policy variants in the trace, saw %v", policies)
	}
}

// TestCounterfactualSLO sweeps the SLO and checks the estimator's
// gross direction: every point replays without error, and the loosest
// SLO's estimated attainment is at least the tightest's. (Strict
// monotonicity is not guaranteed — a looser budget re-decides onto
// heavier branches whose estimated latencies sit closer to the new
// objective.)
func TestCounterfactualSLO(t *testing.T) {
	ds := recordServe(t, serve.Options{
		Admission:    serve.AdmissionWFQ,
		ClassWeights: map[string]int{"33.3ms": 4, "50ms": 2},
	}, nil, nil)
	set, err := fixture.Small()
	if err != nil {
		t.Fatal(err)
	}
	corpus := FromDecisions("sweep", ds)
	attain := map[float64]float64{}
	for _, slo := range []float64{15, 33.3, 50, 100} {
		e, err := New(Config{Models: set.Models, SLOMS: slo})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Replay(corpus)
		if err != nil {
			t.Fatal(err)
		}
		if res.Replayed.Frames == 0 {
			t.Fatalf("slo %v: no frames replayed", slo)
		}
		if r := res.Replayed.AttainRate; r < 0 || r > 1 {
			t.Fatalf("slo %v: attainment %v out of range", slo, r)
		}
		attain[slo] = res.Replayed.AttainRate
	}
	if attain[100] < attain[15] {
		t.Fatalf("loosest SLO attains %v, below the tightest's %v", attain[100], attain[15])
	}
}

// TestCounterfactualPolicyOverride forces MinCost over a Full-policy
// trace: every decision must replay (no errors), no heavy features may
// be selected, and the estimated accuracy must not exceed the recorded
// content-aware run's.
func TestCounterfactualPolicyOverride(t *testing.T) {
	ds := recordServe(t, serve.Options{}, nil, nil)
	set, err := fixture.Small()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Models: set.Models, Policy: "mincost"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Replay(FromDecisions("mincost", ds))
	if err != nil {
		t.Fatal(err)
	}
	for _, rd := range res.Redecisions {
		if len(rd.Features) != 0 {
			t.Fatalf("mincost override selected features %v", rd.Features)
		}
	}
	if res.Replayed.MeanAccuracy > res.Recorded.MeanAccuracy+1e-9 {
		t.Fatalf("content-blind replay accuracy %v beats the recorded content-aware %v",
			res.Replayed.MeanAccuracy, res.Recorded.MeanAccuracy)
	}
}

// TestDegradeKnobs replays a faulted trace with the ladder off and
// re-simulated; both must complete, and DegradeOff must never replay a
// degraded (ladder-forced) selection.
func TestDegradeKnobs(t *testing.T) {
	ds := recordServe(t, serve.Options{},
		&fault.Config{Seed: 11, SpikeRate: 0.08, ExtractFailRate: 0.1}, nil)
	set, err := fixture.Small()
	if err != nil {
		t.Fatal(err)
	}
	corpus := FromDecisions("degrade", ds)
	for _, knob := range []DegradeKnob{DegradeOff, DegradeSim} {
		e, err := New(Config{Models: set.Models, Degrade: knob})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Replay(corpus); err != nil {
			t.Fatalf("degrade knob %v: %v", knob, err)
		}
	}
}

// TestMissingPayloadFailsLoudly: a corpus recorded without the replay
// flag must error, not silently verify nothing.
func TestMissingPayloadFailsLoudly(t *testing.T) {
	ds := []obs.Decision{{Stream: 0, Seq: 0, Branch: "s1_n1_det", Policy: "LiteReconfig"}}
	_, err := identityEngine(t).Replay(FromDecisions("bare", ds))
	if err == nil {
		t.Fatal("replay of a payload-less trace succeeded")
	}
}

// TestWrongBundleFailsLoudly: replaying against a bundle with a
// different branch space must error.
func TestWrongBundleFailsLoudly(t *testing.T) {
	ds := recordServe(t, serve.Options{}, nil, []serve.StreamConfig{{SLO: 50, Seed: 1}})
	if len(ds) == 0 {
		t.Fatal("no decisions")
	}
	ds[0].Replay.NumBranches++
	_, err := identityEngine(t).Replay(FromDecisions("wrong-bundle", ds))
	if err == nil {
		t.Fatal("replay with a mismatched branch space succeeded")
	}
}

// TestIdentityMixedRiskCorpus is the satellite invariant for the
// policy_rev trace versioning: one corpus mixing a legacy mean-admitted
// recording (PolicyRev 0, risk fields absent) and a risk-admitted
// recording (PolicyRev 1, per-branch risk tables in the payload) must
// identity-replay with zero divergence — each file under its own
// recorded admission procedure — with no flags, no sniffing, nothing
// but the versioned payload steering the mirror.
func TestIdentityMixedRiskCorpus(t *testing.T) {
	mean := recordServe(t, serve.Options{
		Admission:    serve.AdmissionWFQ,
		ClassWeights: map[string]int{"33.3ms": 4, "50ms": 2},
	}, nil, nil)
	risk := recordServe(t, serve.Options{
		Admission:    serve.AdmissionWFQ,
		ClassWeights: map[string]int{"33.3ms": 4, "50ms": 2},
		RiskQuantile: 0.95,
	}, nil, nil)

	// The two recordings must carry distinct payload revisions.
	for i := range mean {
		if rp := mean[i].Replay; rp == nil || rp.PolicyRev != 0 || rp.RiskQ != 0 {
			t.Fatalf("mean decision %d: payload should be rev 0 with no risk fields, got %+v", i, rp)
		}
	}
	sawRev1 := false
	for i := range risk {
		if rp := risk[i].Replay; rp != nil && rp.PolicyRev == 1 && rp.RiskQ == 0.95 {
			sawRev1 = true
			break
		}
	}
	if !sawRev1 {
		t.Fatal("risk recording carries no PolicyRev 1 payloads")
	}

	corpus := FromDecisions("mean", mean)
	corpus.Files = append(corpus.Files, FromDecisions("risk", risk).Files...)
	res, err := identityEngine(t).Replay(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if res.DivergedDecisions != 0 || res.MissingHeavy != 0 {
		for _, rd := range res.Divergences()[:min(5, res.DivergedDecisions)] {
			t.Errorf("%s: stream %d gen %d seq %d diverged on %v (branch %s)",
				rd.File, rd.Stream, rd.Gen, rd.Seq, rd.Diverged, rd.Branch)
		}
		t.Fatalf("mixed-rev corpus diverged: %d decisions, %d content-blind",
			res.DivergedDecisions, res.MissingHeavy)
	}
}

// TestRiskQuantileOverride checks the counterfactual risk knob: forcing
// mean admission (q=0) over a risk-recorded corpus must re-decide at
// least one decision (the margin bound somewhere, or recording it was
// pointless), and re-running the recorded quantile through the
// override path — re-deriving factors from the same frozen bundle the
// recording served from — must reproduce the recording.
func TestRiskQuantileOverride(t *testing.T) {
	risk := recordServe(t, serve.Options{
		Admission:    serve.AdmissionWFQ,
		ClassWeights: map[string]int{"33.3ms": 4, "50ms": 2},
		RiskQuantile: 0.95,
	}, nil, nil)
	corpus := FromDecisions("risk", risk)
	set, err := fixture.Small()
	if err != nil {
		t.Fatal(err)
	}

	zero := 0.0
	eMean, err := New(Config{Models: set.Models, RiskQuantile: &zero})
	if err != nil {
		t.Fatal(err)
	}
	resMean, err := eMean.Replay(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if resMean.DivergedDecisions == 0 {
		t.Fatal("forcing mean admission over the risk corpus re-decided nothing; the risk margin never bound")
	}

	q := 0.95
	eSame, err := New(Config{Models: set.Models, RiskQuantile: &q})
	if err != nil {
		t.Fatal(err)
	}
	resSame, err := eSame.Replay(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if resSame.DivergedDecisions != 0 {
		for _, rd := range resSame.Divergences()[:min(5, resSame.DivergedDecisions)] {
			t.Errorf("stream %d gen %d seq %d diverged on %v",
				rd.Stream, rd.Gen, rd.Seq, rd.Diverged)
		}
		t.Fatalf("re-deriving q=0.95 from the recording's own bundle diverged on %d decisions",
			resSame.DivergedDecisions)
	}
}
