package report

import (
	"fmt"
	"strings"

	"litereconfig/internal/baseline"
	"litereconfig/internal/contend"
	"litereconfig/internal/core"
	"litereconfig/internal/detect"
	"litereconfig/internal/feat"
	"litereconfig/internal/fixture"
	"litereconfig/internal/harness"
	"litereconfig/internal/simlat"
)

// Table3Row is one accuracy-optimized baseline row (Table 3): mAP, mean
// latency and memory on the TX2, no SLO.
type Table3Row struct {
	Label    string
	MAP      float64
	MeanMS   float64
	MemoryGB float64
	OOM      bool
}

// RunTable3 evaluates the accuracy-optimized baselines and LiteReconfig
// at its three TX2 SLOs on the validation set.
func RunTable3(set *fixture.Setup) ([]Table3Row, error) {
	dev := simlat.TX2
	var rows []Table3Row
	add := func(label string, r *harness.Result) {
		rows = append(rows, Table3Row{
			Label: label, MAP: r.MAP(), MeanMS: r.Latency.Mean(),
			MemoryGB: r.MemoryGB, OOM: r.OOM,
		})
	}

	// References, including the configurations that OOM on the TX2.
	for _, spec := range baseline.ReferenceSpecs() {
		if spec.Runnable == nil || !dev.FitsMemory(spec.MemoryGB) {
			add(spec.Label, baseline.OOMResult(spec, dev))
			continue
		}
		p := &baseline.Static{Label: spec.Label, Model: *spec.Runnable, Shape: spec.Shape}
		add(spec.Label, harness.Evaluate(p, set.Corpus.Val, dev, 0, contend.Fixed{}, 77))
	}

	// EfficientDet D0 and D3.
	for _, s := range []baseline.Static{
		{Label: "EfficientDet-D3", Model: detect.EfficientDetD3, Shape: 576},
		{Label: "EfficientDet-D0", Model: detect.EfficientDetD0, Shape: 512},
	} {
		p := s
		add(p.Label, harness.Evaluate(&p, set.Corpus.Val, dev, 0, contend.Fixed{}, 77))
	}

	// AdaScale: multi-scale plus the four single-scale variants.
	add("AdaScale-MS", harness.Evaluate(&baseline.AdaScaleMS{}, set.Corpus.Val, dev, 0, contend.Fixed{}, 77))
	for _, scale := range []int{600, 480, 360, 240} {
		p := &baseline.Static{Label: fmt.Sprintf("AdaScale-SS-%d", scale),
			Model: detect.AdaScaleRCNN, Shape: scale}
		add(p.Label, harness.Evaluate(p, set.Corpus.Val, dev, 0, contend.Fixed{}, 77))
	}

	// LiteReconfig at its three TX2 SLOs.
	for _, slo := range []float64{100, 50, 33.3} {
		p, err := core.NewPipeline(core.Options{Models: set.Models, SLO: slo,
			Policy: core.PolicyFull})
		if err != nil {
			return nil, err
		}
		r := harness.Evaluate(p, set.Corpus.Val, dev, slo, contend.Fixed{}, 77)
		add(fmt.Sprintf("LiteReconfig, %.1f ms", slo), r)
	}
	return rows, nil
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: accuracy-optimized models vs LiteReconfig (TX2, no contention)\n")
	fmt.Fprintf(&b, "%-26s %8s %14s %10s\n", "model", "mAP(%)", "mean lat(ms)", "mem(GB)")
	for _, r := range rows {
		if r.OOM {
			fmt.Fprintf(&b, "%-26s %8s %14s %10.2f\n", r.Label, "OOM", "OOM", r.MemoryGB)
			continue
		}
		fmt.Fprintf(&b, "%-26s %8.1f %14.1f %10.2f\n",
			r.Label, r.MAP*100, r.MeanMS, r.MemoryGB)
	}
	return b.String()
}

// Table4Row is one (feature, SLO) cell of the per-feature effectiveness
// study: accuracy when always using one content feature, with the SLO
// applied to the MBEK only (feature overhead ignored).
type Table4Row struct {
	Feature string
	SLO     float64
	MAP     float64
}

// Table4SLOs are the latency objectives of Table 4.
var Table4SLOs = []float64{33.3, 50, 100}

// RunTable4 evaluates the content features individually.
func RunTable4(set *fixture.Setup) ([]Table4Row, error) {
	var rows []Table4Row
	for _, slo := range Table4SLOs {
		// "None": the content-agnostic scheduler.
		none, err := core.NewPipeline(core.Options{Models: set.Models, SLO: slo,
			Policy: core.PolicyMinCost})
		if err != nil {
			return nil, err
		}
		r := harness.Evaluate(none, set.Corpus.Val, simlat.TX2, slo, contend.Fixed{}, 55)
		rows = append(rows, Table4Row{Feature: "none", SLO: slo, MAP: r.MAP()})

		for _, k := range feat.HeavyKinds() {
			p, err := core.NewPipeline(core.Options{Models: set.Models, SLO: slo,
				Policy: core.PolicyForceFeature, ForcedFeature: k,
				IgnoreFeatureOverhead: true})
			if err != nil {
				return nil, err
			}
			r := harness.Evaluate(p, set.Corpus.Val, simlat.TX2, slo, contend.Fixed{}, 55)
			rows = append(rows, Table4Row{Feature: k.String(), SLO: slo, MAP: r.MAP()})
		}
	}
	return rows, nil
}

// FormatTable4 renders Table 4.
func FormatTable4(rows []Table4Row) string {
	byFeat := map[string]map[float64]float64{}
	var order []string
	for _, r := range rows {
		if byFeat[r.Feature] == nil {
			byFeat[r.Feature] = map[float64]float64{}
			order = append(order, r.Feature)
		}
		byFeat[r.Feature][r.SLO] = r.MAP
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: accuracy (mAP%%) of individual content features, overhead ignored\n")
	fmt.Fprintf(&b, "%-14s", "feature")
	for _, slo := range Table4SLOs {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("%.1f ms", slo))
	}
	fmt.Fprintln(&b)
	for _, f := range order {
		fmt.Fprintf(&b, "%-14s", f)
		for _, slo := range Table4SLOs {
			fmt.Fprintf(&b, " %10.1f", byFeat[f][slo]*100)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
