package report

// Shape-level checks of the artifact's major claims C1-C4 (Appendix
// A.4.1). Absolute numbers cannot transfer from the authors' Jetson
// testbed to a simulator, so these tests assert the *orderings and
// rough factors* the claims rest on; EXPERIMENTS.md records the measured
// values next to the paper's.

import (
	"testing"

	"litereconfig/internal/simlat"
)

// TestClaimC1 — LiteReconfig sustains 30 fps (33.3 ms) on the TX2 and
// 50 fps (20 ms) on the Xavier under no contention, at useful accuracy.
func TestClaimC1(t *testing.T) {
	s := setup(t)
	tx2, err := RunCell(s, "LiteReconfig", Scenario{Device: simlat.TX2, SLO: 33.3})
	if err != nil {
		t.Fatal(err)
	}
	if !tx2.MeetsSLO() {
		t.Errorf("C1: TX2 33.3 ms violated (p95=%.1f)", tx2.Latency.P95())
	}
	xv, err := RunCell(s, "LiteReconfig", Scenario{Device: simlat.Xavier, SLO: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !xv.MeetsSLO() {
		t.Errorf("C1: Xavier 20 ms violated (p95=%.1f)", xv.Latency.P95())
	}
	if tx2.MAP() < 0.30 || xv.MAP() < 0.30 {
		t.Errorf("C1: accuracy too low (tx2=%.3f xv=%.3f)", tx2.MAP(), xv.MAP())
	}
	t.Logf("C1: TX2@33.3 mAP=%.1f%% p95=%.1f | Xavier@20 mAP=%.1f%% p95=%.1f",
		tx2.MAP()*100, tx2.Latency.P95(), xv.MAP()*100, xv.Latency.P95())
}

// TestClaimC2 — LiteReconfig improves accuracy over the SOTA adaptive
// system (ApproxDet) at the same latency objective (paper: +1.8 to +3.5
// mAP at 100 ms).
func TestClaimC2(t *testing.T) {
	s := setup(t)
	for _, g := range []float64{0, 0.5} {
		sc := Scenario{Device: simlat.TX2, SLO: 100, Contention: g}
		lr, err := RunCell(s, "LiteReconfig", sc)
		if err != nil {
			t.Fatal(err)
		}
		ad, err := RunCell(s, "ApproxDet", sc)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("C2 (%.0f%% contention): LiteReconfig %.1f%% vs ApproxDet %.1f%%",
			g*100, lr.MAP()*100, ad.MAP()*100)
		if lr.MAP() <= ad.MAP() {
			t.Errorf("C2: LiteReconfig (%.3f) should beat ApproxDet (%.3f) at 100 ms, %.0f%% contention",
				lr.MAP(), ad.MAP(), g*100)
		}
	}
}

// TestClaimC3 — LiteReconfig at 33.3 ms is tens of times faster than
// SELSA, MEGA and REPP on the TX2 (paper: 74.9x, 30.5x, 20.3x).
func TestClaimC3(t *testing.T) {
	s := setup(t)
	rows, err := RunTable3(s)
	if err != nil {
		t.Fatal(err)
	}
	mean := map[string]float64{}
	for _, r := range rows {
		if !r.OOM {
			mean[r.Label] = r.MeanMS
		}
	}
	lr := mean["LiteReconfig, 33.3 ms"]
	if lr <= 0 {
		t.Fatal("missing LiteReconfig row")
	}
	checks := []struct {
		label string
		min   float64
	}{
		{"SELSA-ResNet-50", 30},
		{"MEGA-ResNet-50-base", 12},
		{"REPP-over-YOLOv3", 8},
	}
	for _, c := range checks {
		speedup := mean[c.label] / lr
		t.Logf("C3: %.1fx faster than %s", speedup, c.label)
		if speedup < c.min {
			t.Errorf("C3: speedup over %s = %.1fx, want >= %.0fx", c.label, speedup, c.min)
		}
	}
}

// TestClaimC4 — the full cost-benefit scheduler is not worse than the
// greedy MaxContent-ResNet variant in the paper's two comparison cells
// (paper: +1.0 and +2.2 mAP).
func TestClaimC4(t *testing.T) {
	s := setup(t)
	cells := []Scenario{
		{Device: simlat.TX2, Contention: 0, SLO: 33.3},
		{Device: simlat.TX2, Contention: 0.5, SLO: 50},
	}
	for _, sc := range cells {
		full, err := RunCell(s, "LiteReconfig", sc)
		if err != nil {
			t.Fatal(err)
		}
		resnet, err := RunCell(s, "LiteReconfig-MaxContent-ResNet", sc)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("C4 %v: full %.1f%% (p95 %.1f) vs MaxContent-ResNet %.1f%% (p95 %.1f)",
			sc, full.MAP()*100, full.Latency.P95(), resnet.MAP()*100, resnet.Latency.P95())
		// Shape assertion: within the noise floor, full must not lose to
		// the greedy variant while also honoring the SLO.
		if full.MAP() < resnet.MAP()-0.03 {
			t.Errorf("C4 %v: full (%.3f) clearly below MaxContent-ResNet (%.3f)",
				sc, full.MAP(), resnet.MAP())
		}
		if !full.MeetsSLO() {
			t.Errorf("C4 %v: full violates the SLO (p95=%.1f)", sc, full.Latency.P95())
		}
	}
}
