package report

import (
	"testing"

	"litereconfig/internal/feat"
	"litereconfig/internal/sched"
	"litereconfig/internal/vid"
)

// TestContentPredictorsGeneralize checks the paper's core premise end to
// end: on genuinely unseen videos, scheduling with the trained content
// models under a latency budget is at least as good as content-agnostic
// scheduling, and at least one content feature gives a real gain.
func TestContentPredictorsGeneralize(t *testing.T) {
	s := setup(t)
	var vids []*vid.Video
	for i := int64(0); i < 24; i++ {
		vids = append(vids, vid.Generate("gen", 9000+i, vid.GenConfig{Frames: 120}))
	}
	held := sched.Collect(s.Cfg, vids)
	budgets := []float64{15, 25, 33.3, 50, 90}
	quality := func(pred func(sm sched.Sample) []float64) float64 {
		var sum float64
		cnt := 0
		for _, sm := range held.Samples {
			p := pred(sm)
			for _, budget := range budgets {
				best, found := 0, false
				for b := range sm.DetMS {
					if sm.DetMS[b]+sm.TrkMS[b] > budget {
						continue
					}
					if !found || p[b] > p[best] {
						best = b
						found = true
					}
				}
				if found {
					sum += sm.MAP[best]
					cnt++
				}
			}
		}
		return sum / float64(cnt)
	}
	light := quality(func(sm sched.Sample) []float64 {
		return s.Models.PredictAccuracyLight(sm.Light)
	})
	bestGain := -1.0
	for _, k := range feat.HeavyKinds() {
		q := quality(func(sm sched.Sample) []float64 {
			return s.Models.PredictAccuracyContent(k, sm.Light, sm.Heavy[k])
		})
		t.Logf("%-12s constrained pick quality %.3f (light %.3f)", k, q, light)
		if q-light > bestGain {
			bestGain = q - light
		}
		if q < light-0.02 {
			t.Errorf("%v constrained quality %.3f clearly below light %.3f", k, q, light)
		}
	}
	if bestGain < 0.003 {
		t.Errorf("no content feature gains over light (best gain %.4f)", bestGain)
	}
}

// TestBenTableHasPositiveGains checks that the offline benefit table
// records positive gains for at least one feature at mid-range budgets —
// the signal the cost-benefit analyzer runs on.
func TestBenTableHasPositiveGains(t *testing.T) {
	s := setup(t)
	found := false
	for gi, budget := range s.Models.Ben.BudgetsMS {
		for _, k := range feat.HeavyKinds() {
			if g := s.Models.Ben.Gain[gi][k]; g > 0.003 {
				t.Logf("Ben(%v, %.1f ms) = %+.4f", k, budget, g)
				found = true
			}
		}
	}
	if !found {
		t.Error("benefit table has no positive entries; content-awareness inert")
	}
}
