package report

import (
	"strings"
	"testing"

	"litereconfig/internal/fixture"
	"litereconfig/internal/simlat"
)

func setup(t *testing.T) *fixture.Setup {
	t.Helper()
	s, err := fixture.Small()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTable1(t *testing.T) {
	rows := RunTable1()
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	out := FormatTable1(rows)
	for _, want := range []string{"light", "hoc", "hog", "resnet50", "cpop", "mobilenetv2", "153.96"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Scenarios(t *testing.T) {
	scs := Table2Scenarios()
	if len(scs) != 12 {
		t.Fatalf("scenarios = %d, want 12", len(scs))
	}
	tx2, xv := 0, 0
	for _, sc := range scs {
		switch sc.Device.Name {
		case "tx2":
			tx2++
		case "xv":
			xv++
		}
		if sc.String() == "" {
			t.Fatal("empty scenario string")
		}
	}
	if tx2 != 6 || xv != 6 {
		t.Fatalf("device split = %d/%d", tx2, xv)
	}
}

func TestRunTable2Subset(t *testing.T) {
	s := setup(t)
	scs := []Scenario{
		{Device: simlat.TX2, Contention: 0, SLO: 50},
		{Device: simlat.TX2, Contention: 0.5, SLO: 50},
	}
	rows, err := RunTable2(s, scs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(Table2Protocols) {
		t.Fatalf("rows = %d", len(rows))
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "LiteReconfig") || !strings.Contains(out, "tx2") {
		t.Fatalf("table 2 malformed:\n%s", out)
	}
	// LiteReconfig meets the SLO in both cells.
	for _, r := range rows {
		if r.Protocol == "LiteReconfig" && !r.Meets {
			t.Errorf("LiteReconfig violates SLO in %v (p95=%.1f)", r.Scenario, r.P95)
		}
	}
	t.Logf("\n%s", out)
}

func TestRunTable3(t *testing.T) {
	s := setup(t)
	rows, err := RunTable3(s)
	if err != nil {
		t.Fatal(err)
	}
	// 8 references + 2 EfficientDet + 5 AdaScale + 3 LiteReconfig = 18.
	if len(rows) != 18 {
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	byLabel := map[string]Table3Row{}
	oom := 0
	for _, r := range rows {
		byLabel[r.Label] = r
		if r.OOM {
			oom++
		}
	}
	if oom != 5 {
		t.Fatalf("OOM rows = %d, want 5", oom)
	}
	// Shape checks (Table 3's story): SELSA most accurate and slowest of
	// the runnable references; LiteReconfig far faster than every
	// reference.
	selsa := byLabel["SELSA-ResNet-50"]
	lr33 := byLabel["LiteReconfig, 33.3 ms"]
	if selsa.MAP <= lr33.MAP {
		t.Errorf("SELSA (%.3f) should be far more accurate than LiteReconfig (%.3f)",
			selsa.MAP, lr33.MAP)
	}
	speedup := selsa.MeanMS / lr33.MeanMS
	if speedup < 20 {
		t.Errorf("LiteReconfig speedup over SELSA = %.1fx, want >= 20x", speedup)
	}
	t.Logf("speedup over SELSA: %.1fx\n%s", speedup, FormatTable3(rows))
}

func TestRunTable4(t *testing.T) {
	s := setup(t)
	rows, err := RunTable4(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*6 { // 3 SLOs x (none + 5 features)
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	out := FormatTable4(rows)
	if !strings.Contains(out, "none") || !strings.Contains(out, "mobilenetv2") {
		t.Fatalf("table 4 malformed:\n%s", out)
	}
	// At the loosest SLO, the best single content feature should not be
	// worse than content-agnostic (Sec. 5.4: all features beat "None").
	best := map[float64]float64{}
	none := map[float64]float64{}
	for _, r := range rows {
		if r.Feature == "none" {
			none[r.SLO] = r.MAP
		} else if r.MAP > best[r.SLO] {
			best[r.SLO] = r.MAP
		}
	}
	if best[100] < none[100]-0.005 {
		t.Errorf("best feature (%.3f) clearly below none (%.3f) at 100 ms", best[100], none[100])
	}
	t.Logf("\n%s", out)
}

func TestRunFig2(t *testing.T) {
	s := setup(t)
	pts, err := RunFig2(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(Fig2Strategies)*len(Fig2SLOs) {
		t.Fatalf("points = %d", len(pts))
	}
	out := FormatFig2(pts)
	if !strings.Contains(out, "MaxContent-ResNet") {
		t.Fatalf("fig2 malformed:\n%s", out)
	}
	// Within each strategy, accuracy is non-decreasing in SLO on average
	// (compare the tightest and loosest points).
	byStrat := map[string][]Fig2Point{}
	for _, p := range pts {
		byStrat[p.Strategy] = append(byStrat[p.Strategy], p)
	}
	for strat, ps := range byStrat {
		if ps[len(ps)-1].MAP < ps[0].MAP-0.01 {
			t.Errorf("%s: accuracy at loose SLO (%.3f) below tight (%.3f)",
				strat, ps[len(ps)-1].MAP, ps[0].MAP)
		}
	}
}

func TestRunFig3(t *testing.T) {
	s := setup(t)
	rows, err := RunFig3(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*len(Fig3Protocols) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DetectorPct < 0 || r.TrackerPct < 0 || r.SchedulerPct < 0 || r.SwitchPct < 0 {
			t.Fatalf("negative breakdown: %+v", r)
		}
		// LiteReconfig's scheduling overhead stays below 10% of the SLO
		// (Sec. 5.5: "the overhead of LiteReconfig is always below 10%").
		if r.Protocol == "LiteReconfig" && r.SchedulerPct+r.SwitchPct > 10 {
			t.Errorf("LiteReconfig overhead %.1f%%+%.2f%% exceeds 10%% at %.1f ms",
				r.SchedulerPct, r.SwitchPct, r.SLO)
		}
	}
	t.Logf("\n%s", FormatFig3(rows))
}

func TestRunFig4(t *testing.T) {
	s := setup(t)
	rows, err := RunFig4(s)
	if err != nil {
		t.Fatal(err)
	}
	cov := map[string]int{}
	for _, r := range rows {
		cov[r.Protocol] += r.Coverage
	}
	// Fixed-branch baselines cover exactly 1 branch per SLO.
	if cov["SSD+"] != 3 || cov["YOLO+"] != 3 {
		t.Errorf("enhanced baselines should cover 1 branch per SLO: %v", cov)
	}
	// Adaptive protocols explore more branches than the fixed baselines.
	if cov["LiteReconfig"] <= cov["SSD+"] {
		t.Errorf("LiteReconfig coverage (%d) should exceed SSD+ (%d)",
			cov["LiteReconfig"], cov["SSD+"])
	}
	t.Logf("\n%s", FormatFig4(rows))
}

func TestRunFig5(t *testing.T) {
	s := setup(t)
	d, err := RunFig5(s)
	if err != nil {
		t.Fatal(err)
	}
	// Small fixture has 2 shapes x 2 nprops = 4 buckets.
	if len(d.Labels) != 4 {
		t.Fatalf("labels = %d", len(d.Labels))
	}
	if len(d.Online) != 2 {
		t.Fatalf("online SLOs = %d", len(d.Online))
	}
	for i := range d.Offline {
		if d.Offline[i][i] != 0 {
			t.Fatal("offline diagonal should be zero")
		}
	}
	out := FormatFig5(d)
	if !strings.Contains(out, "Figure 5(a)") || !strings.Contains(out, "Figure 5(b)") {
		t.Fatalf("fig5 malformed:\n%s", out)
	}
}

func TestBuildProtocolUnknown(t *testing.T) {
	s := setup(t)
	if _, err := BuildProtocol(s, "nope", Scenario{Device: simlat.TX2, SLO: 50}); err == nil {
		t.Fatal("unknown protocol should error")
	}
}
