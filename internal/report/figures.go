package report

import (
	"fmt"
	"sort"
	"strings"

	"litereconfig/internal/fixture"
	"litereconfig/internal/mbek"
	"litereconfig/internal/sched"
	"litereconfig/internal/simlat"
)

// Fig2Point is one point of the accuracy-vs-latency motivation curve
// (Figure 2): a strategy evaluated at one SLO.
type Fig2Point struct {
	Strategy string
	SLO      float64
	MeanMS   float64
	MAP      float64
}

// Fig2Strategies are the three strategies Figure 2 contrasts.
var Fig2Strategies = []string{
	"LiteReconfig-MinCost",              // content-agnostic
	"LiteReconfig-MaxContent-ResNet",    // content-aware, detector-shared feature
	"LiteReconfig-MaxContent-MobileNet", // content-aware, external feature
}

// Fig2SLOs is the SLO sweep of the curve.
var Fig2SLOs = []float64{33.3, 40, 50, 66.7, 80, 100}

// RunFig2 sweeps the three strategies over the SLO range on the TX2.
func RunFig2(set *fixture.Setup) ([]Fig2Point, error) {
	var pts []Fig2Point
	for _, name := range Fig2Strategies {
		for _, slo := range Fig2SLOs {
			r, err := RunCell(set, name, Scenario{Device: simlat.TX2, SLO: slo})
			if err != nil {
				return nil, err
			}
			pts = append(pts, Fig2Point{Strategy: name, SLO: slo,
				MeanMS: r.Latency.Mean(), MAP: r.MAP()})
		}
	}
	return pts, nil
}

// FormatFig2 renders the curve data.
func FormatFig2(pts []Fig2Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: accuracy vs latency per strategy (TX2, no contention)\n")
	fmt.Fprintf(&b, "%-36s %8s %12s %8s\n", "strategy", "SLO(ms)", "mean lat(ms)", "mAP(%)")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-36s %8.1f %12.1f %8.1f\n", p.Strategy, p.SLO, p.MeanMS, p.MAP*100)
	}
	return b.String()
}

// Fig3Row is one latency-breakdown bar (Figure 3): the share of the SLO
// spent per component, per protocol, per SLO.
type Fig3Row struct {
	Protocol string
	SLO      float64
	// Percent of the SLO per component (mean per-frame / SLO).
	DetectorPct  float64
	TrackerPct   float64
	SchedulerPct float64 // modeling cost: features, predictors, solver
	SwitchPct    float64
	Meets        bool
}

// Fig3Protocols are the bars of Figure 3.
var Fig3Protocols = []string{
	"SSD+", "YOLO+", "ApproxDet",
	"LiteReconfig-MinCost",
	"LiteReconfig-MaxContent-ResNet",
	"LiteReconfig-MaxContent-MobileNet",
	"LiteReconfig",
}

// RunFig3 profiles the component breakdown on the TX2 at the three SLOs.
func RunFig3(set *fixture.Setup) ([]Fig3Row, error) {
	var rows []Fig3Row
	for _, slo := range []float64{33.3, 50, 100} {
		for _, name := range Fig3Protocols {
			r, err := RunCell(set, name, Scenario{Device: simlat.TX2, SLO: slo})
			if err != nil {
				return nil, err
			}
			bd := r.Breakdown
			rows = append(rows, Fig3Row{
				Protocol: name, SLO: slo,
				DetectorPct:  bd.PerFrame(mbek.CompDetector) / slo * 100,
				TrackerPct:   bd.PerFrame(mbek.CompTracker) / slo * 100,
				SchedulerPct: (bd.PerFrame("scheduler") + bd.PerFrame("pipeline")) / slo * 100,
				SwitchPct:    bd.PerFrame(mbek.CompSwitch) / slo * 100,
				Meets:        r.MeetsSLO(),
			})
		}
	}
	return rows, nil
}

// FormatFig3 renders the breakdown table.
func FormatFig3(rows []Fig3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: %% of SLO per component (TX2; protocols violating the SLO marked F)\n")
	fmt.Fprintf(&b, "%-36s %8s %9s %9s %9s %9s %6s\n",
		"protocol", "SLO(ms)", "detector", "tracker", "sched", "switch", "fits")
	for _, r := range rows {
		fits := "yes"
		if !r.Meets {
			fits = "F"
		}
		fmt.Fprintf(&b, "%-36s %8.1f %8.1f%% %8.1f%% %8.1f%% %8.2f%% %6s\n",
			r.Protocol, r.SLO, r.DetectorPct, r.TrackerPct, r.SchedulerPct,
			r.SwitchPct, fits)
	}
	return b.String()
}

// Fig4Row is one branch-coverage bar (Figure 4).
type Fig4Row struct {
	Protocol string
	SLO      float64
	Coverage int
	Switches int
}

// RunFig4 measures branch coverage per protocol per SLO on the TX2.
func RunFig4(set *fixture.Setup) ([]Fig4Row, error) {
	var rows []Fig4Row
	for _, slo := range []float64{33.3, 50, 100} {
		for _, name := range Table2Protocols {
			r, err := RunCell(set, name, Scenario{Device: simlat.TX2, SLO: slo})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig4Row{Protocol: name, SLO: slo,
				Coverage: r.BranchCoverage, Switches: r.Switches})
		}
	}
	return rows, nil
}

// FormatFig4 renders the coverage table.
func FormatFig4(rows []Fig4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: branch coverage (distinct branches executed) and switches\n")
	fmt.Fprintf(&b, "%-36s %8s %9s %9s\n", "protocol", "SLO(ms)", "coverage", "switches")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-36s %8.1f %9d %9d\n", r.Protocol, r.SLO, r.Coverage, r.Switches)
	}
	return b.String()
}

// Fig5Data holds the offline switching-cost matrix and the online
// observed switch costs aggregated by (shape, nprop) buckets (Figure 5).
type Fig5Data struct {
	Labels  []string
	Offline [][]float64
	// Online[slo] aggregates observed switch costs per (from, to) label
	// pair; cells with no observed switches are -1.
	Online map[float64][][]float64
	// Outliers counts online switches above 100 ms (cold graph misses).
	Outliers map[float64]int
}

// RunFig5 computes the offline matrix and replays LiteReconfig at 33.3
// and 50 ms on the TX2 to harvest the online switch log.
func RunFig5(set *fixture.Setup) (*Fig5Data, error) {
	labels, offline := sched.SwitchMatrix(set.Models.Branches)
	idx := map[string]int{}
	for i, l := range labels {
		idx[l] = i
	}
	d := &Fig5Data{Labels: labels, Offline: offline,
		Online: map[float64][][]float64{}, Outliers: map[float64]int{}}
	for _, slo := range []float64{33.3, 50} {
		r, err := RunCell(set, "LiteReconfig", Scenario{Device: simlat.TX2, SLO: slo})
		if err != nil {
			return nil, err
		}
		sums := make([][]float64, len(labels))
		counts := make([][]int, len(labels))
		for i := range sums {
			sums[i] = make([]float64, len(labels))
			counts[i] = make([]int, len(labels))
		}
		for _, ev := range r.SwitchLog {
			from := fmt.Sprintf("(%d,%d)", ev.From.Shape, ev.From.NProp)
			to := fmt.Sprintf("(%d,%d)", ev.To.Shape, ev.To.NProp)
			fi, fok := idx[from]
			ti, tok := idx[to]
			if !fok || !tok {
				continue
			}
			sums[fi][ti] += ev.CostMS
			counts[fi][ti]++
			if ev.CostMS > 100 {
				d.Outliers[slo]++
			}
		}
		grid := make([][]float64, len(labels))
		for i := range grid {
			grid[i] = make([]float64, len(labels))
			for j := range grid[i] {
				if counts[i][j] == 0 {
					grid[i][j] = -1
				} else {
					grid[i][j] = sums[i][j] / float64(counts[i][j])
				}
			}
		}
		d.Online[slo] = grid
	}
	return d, nil
}

// FormatFig5 renders both heatmaps as text grids.
func FormatFig5(d *Fig5Data) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5(a): offline switching cost matrix (ms), (shape,nprop) buckets\n")
	writeGrid(&b, d.Labels, d.Offline)
	var slos []float64
	for slo := range d.Online {
		slos = append(slos, slo)
	}
	sort.Float64s(slos)
	for _, slo := range slos {
		fmt.Fprintf(&b, "\nFigure 5(b): online observed switch cost (ms) at %.1f ms SLO (- = no switch; %d cold-miss outliers)\n",
			slo, d.Outliers[slo])
		writeGrid(&b, d.Labels, d.Online[slo])
	}
	return b.String()
}

func writeGrid(b *strings.Builder, labels []string, grid [][]float64) {
	fmt.Fprintf(b, "%-11s", "")
	for _, l := range labels {
		fmt.Fprintf(b, " %9s", l)
	}
	fmt.Fprintln(b)
	for i, l := range labels {
		fmt.Fprintf(b, "%-11s", l)
		for j := range labels {
			v := grid[i][j]
			if v < 0 {
				fmt.Fprintf(b, " %9s", "-")
			} else {
				fmt.Fprintf(b, " %9.1f", v)
			}
		}
		fmt.Fprintln(b)
	}
}
