// Package report regenerates every table and figure of the paper's
// evaluation (Sec. 5) from the simulation: Table 1 (feature costs),
// Table 2 (main comparison), Table 3 (accuracy-optimized baselines),
// Table 4 (per-feature effectiveness), Figure 2 (cost-benefit motivation
// curve), Figure 3 (latency breakdown), Figure 4 (branch coverage) and
// Figure 5 (switching-cost heatmaps).
//
// Each experiment has a Run function returning structured rows and a
// Format function rendering the paper-style text table; cmd/lrbench and
// the top-level benchmarks drive both.
package report

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"litereconfig/internal/baseline"
	"litereconfig/internal/contend"
	"litereconfig/internal/core"
	"litereconfig/internal/detect"
	"litereconfig/internal/feat"
	"litereconfig/internal/fixture"
	"litereconfig/internal/harness"
	"litereconfig/internal/simlat"
)

// Scenario is one evaluation cell: device, contention level, SLO.
type Scenario struct {
	Device     simlat.Device
	Contention float64
	SLO        float64
}

// String implements fmt.Stringer.
func (s Scenario) String() string {
	return fmt.Sprintf("%s/%.0f%%/%.1fms", s.Device.Name, s.Contention*100, s.SLO)
}

// Table2Scenarios returns the paper's evaluation grid: TX2 at 33.3/50/100
// ms and Xavier at 20/33.3/50 ms, each at 0% and 50% GPU contention.
func Table2Scenarios() []Scenario {
	var out []Scenario
	for _, g := range []float64{0, 0.5} {
		for _, slo := range []float64{33.3, 50, 100} {
			out = append(out, Scenario{Device: simlat.TX2, Contention: g, SLO: slo})
		}
		for _, slo := range []float64{20, 33.3, 50} {
			out = append(out, Scenario{Device: simlat.Xavier, Contention: g, SLO: slo})
		}
	}
	return out
}

// Table2Protocols is the protocol lineup of Table 2, in row order.
var Table2Protocols = []string{
	"SSD+", "YOLO+", "ApproxDet",
	"LiteReconfig-MinCost",
	"LiteReconfig-MaxContent-ResNet",
	"LiteReconfig-MaxContent-MobileNet",
	"LiteReconfig",
}

// enhancedCache memoizes the expensive offline profiling of SSD+/YOLO+
// per (model, slo, device) triple.
var (
	enhancedMu    sync.Mutex
	enhancedCache = map[string]*baseline.Enhanced{}
)

func enhancedFor(set *fixture.Setup, label string, model detect.Model,
	slo float64, dev simlat.Device) *baseline.Enhanced {
	key := fmt.Sprintf("%s|%.1f|%s", label, slo, dev.Name)
	enhancedMu.Lock()
	defer enhancedMu.Unlock()
	if e, ok := enhancedCache[key]; ok {
		return e
	}
	e := baseline.NewEnhanced(label, model, slo, dev, set.Corpus.DetTrain)
	enhancedCache[key] = e
	return e
}

// BuildProtocol constructs a named protocol for a scenario.
func BuildProtocol(set *fixture.Setup, name string, sc Scenario) (harness.Protocol, error) {
	switch name {
	case "SSD+":
		return enhancedFor(set, "SSD+", detect.SSDMnasFPN, sc.SLO, sc.Device), nil
	case "YOLO+":
		return enhancedFor(set, "YOLO+", detect.YOLOv3, sc.SLO, sc.Device), nil
	case "ApproxDet":
		return baseline.NewApproxDet(set.Models, sc.SLO, sc.Device)
	case "LiteReconfig-MinCost":
		return core.NewPipeline(core.Options{Models: set.Models, SLO: sc.SLO,
			Policy: core.PolicyMinCost})
	case "LiteReconfig-MaxContent-ResNet":
		return core.NewPipeline(core.Options{Models: set.Models, SLO: sc.SLO,
			Policy: core.PolicyMaxContentResNet})
	case "LiteReconfig-MaxContent-MobileNet":
		return core.NewPipeline(core.Options{Models: set.Models, SLO: sc.SLO,
			Policy: core.PolicyMaxContentMobileNet})
	case "LiteReconfig":
		return core.NewPipeline(core.Options{Models: set.Models, SLO: sc.SLO,
			Policy: core.PolicyFull})
	}
	return nil, fmt.Errorf("report: unknown protocol %q", name)
}

// RunCell evaluates one protocol in one scenario over the validation set.
func RunCell(set *fixture.Setup, name string, sc Scenario) (*harness.Result, error) {
	p, err := BuildProtocol(set, name, sc)
	if err != nil {
		return nil, err
	}
	r := harness.Evaluate(p, set.Corpus.Val, sc.Device, sc.SLO,
		contend.Fixed{G: sc.Contention}, 1234)
	return r, nil
}

// Table1Row is one feature-cost row (Table 1).
type Table1Row struct {
	Name      string
	Dim       int
	ExtractMS float64
	PredictMS float64
	Class     string
}

// RunTable1 reads the feature registry.
func RunTable1() []Table1Row {
	var rows []Table1Row
	kinds := append([]feat.Kind{feat.Light}, feat.HeavyKinds()...)
	for _, k := range kinds {
		s := feat.SpecOf(k)
		rows = append(rows, Table1Row{
			Name: k.String(), Dim: s.Dim,
			ExtractMS: s.ExtractMS, PredictMS: s.PredictMS,
			Class: s.ExtractClass.String(),
		})
	}
	return rows
}

// FormatTable1 renders Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: scheduler features and costs (TX2 ms)\n")
	fmt.Fprintf(&b, "%-12s %6s %10s %10s %6s\n", "feature", "dim", "extract", "predict", "unit")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %6d %10.2f %10.2f %6s\n",
			r.Name, r.Dim, r.ExtractMS, r.PredictMS, r.Class)
	}
	return b.String()
}

// Table2Row is one (scenario, protocol) cell of the main comparison.
type Table2Row struct {
	Scenario Scenario
	Protocol string
	MAP      float64
	P95      float64
	Mean     float64
	Meets    bool
	Coverage int
	Switches int
}

// RunTable2 evaluates the full Table 2 grid. Scenarios may be narrowed
// for quick runs; nil means the full paper grid.
func RunTable2(set *fixture.Setup, scenarios []Scenario) ([]Table2Row, error) {
	if scenarios == nil {
		scenarios = Table2Scenarios()
	}
	var rows []Table2Row
	for _, sc := range scenarios {
		for _, name := range Table2Protocols {
			r, err := RunCell(set, name, sc)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table2Row{
				Scenario: sc, Protocol: name,
				MAP: r.MAP(), P95: r.Latency.P95(), Mean: r.Latency.Mean(),
				Meets: r.MeetsSLO(), Coverage: r.BranchCoverage,
				Switches: r.Switches,
			})
		}
	}
	return rows, nil
}

// FormatTable2 renders the main comparison in the paper's layout: one
// block per (device, contention), protocols as rows, SLOs as columns,
// with "F" marking SLO violations.
func FormatTable2(rows []Table2Row) string {
	type blockKey struct {
		dev  string
		cont float64
	}
	type cell struct{ row Table2Row }
	blocks := map[blockKey]map[string]map[float64]cell{}
	slosOf := map[blockKey][]float64{}
	for _, r := range rows {
		k := blockKey{r.Scenario.Device.Name, r.Scenario.Contention}
		if blocks[k] == nil {
			blocks[k] = map[string]map[float64]cell{}
		}
		if blocks[k][r.Protocol] == nil {
			blocks[k][r.Protocol] = map[float64]cell{}
		}
		blocks[k][r.Protocol][r.Scenario.SLO] = cell{r}
		found := false
		for _, s := range slosOf[k] {
			if s == r.Scenario.SLO {
				found = true
			}
		}
		if !found {
			slosOf[k] = append(slosOf[k], r.Scenario.SLO)
		}
	}
	var keys []blockKey
	for k := range blocks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dev != keys[j].dev {
			return keys[i].dev > keys[j].dev // tx2 before xv
		}
		return keys[i].cont < keys[j].cont
	})

	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: mAP%% / P95 latency (ms) per SLO; F = SLO violated\n")
	for _, k := range keys {
		slos := slosOf[k]
		sort.Float64s(slos)
		fmt.Fprintf(&b, "\n== %s, %.0f%% GPU contention ==\n", k.dev, k.cont*100)
		fmt.Fprintf(&b, "%-36s", "protocol")
		for _, s := range slos {
			fmt.Fprintf(&b, " %16s", fmt.Sprintf("SLO %.1fms", s))
		}
		fmt.Fprintln(&b)
		for _, name := range Table2Protocols {
			cells, ok := blocks[k][name]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%-36s", name)
			for _, s := range slos {
				c := cells[s]
				if !c.row.Meets {
					fmt.Fprintf(&b, " %16s", fmt.Sprintf("F (%.1f)", c.row.P95))
				} else {
					fmt.Fprintf(&b, " %16s", fmt.Sprintf("%.1f / %.1f", c.row.MAP*100, c.row.P95))
				}
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}
