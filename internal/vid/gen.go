package vid

import (
	"fmt"
	"math"
	"math/rand"

	"litereconfig/internal/geom"
)

// Archetype is a named family of content profiles. The corpus mixes
// archetypes so that no single branch of the execution kernel dominates
// everywhere — the precondition for content-aware scheduling to pay off.
type Archetype struct {
	Name          string
	ObjectCount   [2]int     // min, max concurrent objects
	SizeFrac      [2]float64 // min, max mean size fraction
	Speed         [2]float64 // min, max mean speed (px/frame)
	Clutter       [2]float64
	OcclusionRate [2]float64
}

// Archetypes is the default archetype mix, loosely mirroring the content
// diversity of the VID benchmark (road scenes, wildlife close-ups, fast
// sports-style motion, crowded scenes, static telephoto shots).
var Archetypes = []Archetype{
	{
		Name:        "slow-large", // telephoto wildlife: big, slow subjects
		ObjectCount: [2]int{1, 2}, SizeFrac: [2]float64{0.30, 0.55},
		Speed: [2]float64{0.5, 3}, Clutter: [2]float64{0.1, 0.4},
		OcclusionRate: [2]float64{0.000, 0.002},
	},
	{
		Name:        "fast-small", // distant fast motion: hardest for trackers
		ObjectCount: [2]int{1, 3}, SizeFrac: [2]float64{0.06, 0.16},
		Speed: [2]float64{8, 22}, Clutter: [2]float64{0.3, 0.7},
		OcclusionRate: [2]float64{0.002, 0.010},
	},
	{
		Name:        "crowded", // many mid-size objects: tracker cost scales
		ObjectCount: [2]int{5, 9}, SizeFrac: [2]float64{0.10, 0.22},
		Speed: [2]float64{2, 8}, Clutter: [2]float64{0.4, 0.8},
		OcclusionRate: [2]float64{0.004, 0.014},
	},
	{
		Name:        "road", // vehicles: moderate size, directed motion
		ObjectCount: [2]int{2, 5}, SizeFrac: [2]float64{0.15, 0.35},
		Speed: [2]float64{4, 14}, Clutter: [2]float64{0.3, 0.6},
		OcclusionRate: [2]float64{0.002, 0.008},
	},
	{
		Name:        "static", // near-static scene: trackers nearly free
		ObjectCount: [2]int{1, 4}, SizeFrac: [2]float64{0.18, 0.40},
		Speed: [2]float64{0.1, 1.5}, Clutter: [2]float64{0.1, 0.5},
		OcclusionRate: [2]float64{0.000, 0.003},
	},
	{
		Name:        "erratic", // hand-held close action: speed bursts
		ObjectCount: [2]int{1, 3}, SizeFrac: [2]float64{0.12, 0.30},
		Speed: [2]float64{5, 18}, Clutter: [2]float64{0.5, 0.9},
		OcclusionRate: [2]float64{0.006, 0.020},
	},
}

// GenConfig controls video generation.
type GenConfig struct {
	Width, Height int // native resolution; defaults to 1280x720
	Frames        int // frames per video; defaults to 240
}

func (c *GenConfig) applyDefaults() {
	if c.Width == 0 {
		c.Width = 1280
	}
	if c.Height == 0 {
		c.Height = 720
	}
	if c.Frames == 0 {
		c.Frames = 240
	}
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

func uniformInt(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// sampleProfile draws a concrete ContentProfile from an archetype.
func sampleProfile(a Archetype, rng *rand.Rand) ContentProfile {
	return ContentProfile{
		ObjectCount:   uniformInt(rng, a.ObjectCount[0], a.ObjectCount[1]),
		SizeFrac:      uniform(rng, a.SizeFrac[0], a.SizeFrac[1]),
		Speed:         uniform(rng, a.Speed[0], a.Speed[1]),
		Clutter:       uniform(rng, a.Clutter[0], a.Clutter[1]),
		OcclusionRate: uniform(rng, a.OcclusionRate[0], a.OcclusionRate[1]),
		Archetype:     a.Name,
	}
}

// actor is the internal simulated object state, which persists even while
// the object is occluded (hidden from the ground truth).
type actor struct {
	obj          Object
	occludedFor  int // remaining occlusion frames; 0 = visible
	speedSetting float64
}

// sampleIndependent draws a profile whose dimensions are statistically
// independent: object count and size (observable through the light
// features) carry no information about speed or clutter (observable only
// through content features). This independence is what VID-like corpora
// exhibit — a distant bird can be slow, a close car can be fast — and it
// is the property that gives heavy content features value beyond the
// light features.
func sampleIndependent(rng *rand.Rand) ContentProfile {
	logUniform := func(lo, hi float64) float64 {
		return lo * math.Exp(rng.Float64()*math.Log(hi/lo))
	}
	return ContentProfile{
		ObjectCount:   1 + rng.Intn(8),
		SizeFrac:      logUniform(0.07, 0.50),
		Speed:         logUniform(0.5, 20),
		Clutter:       uniform(rng, 0.1, 0.9),
		OcclusionRate: uniform(rng, 0, 0.015),
		Archetype:     "mixed",
	}
}

// Generate creates one synthetic video from the given seed, sampling an
// independent content profile (see sampleIndependent).
func Generate(name string, seed int64, cfg GenConfig) *Video {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(seed))
	return generateWith(name, seed, cfg, sampleIndependent(rng), rng)
}

// GenerateArchetype creates a video drawn from a named archetype —
// targeted scenarios for examples and tests. It falls back to the
// independent mix for an unknown name.
func GenerateArchetype(name, archetype string, seed int64, cfg GenConfig) *Video {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(seed))
	for _, a := range Archetypes {
		if a.Name == archetype {
			return generateWith(name, seed, cfg, sampleProfile(a, rng), rng)
		}
	}
	return generateWith(name, seed, cfg, sampleIndependent(rng), rng)
}

// GenerateWithProfile creates a video with an explicit content profile —
// used by tests and ablations that need controlled content.
func GenerateWithProfile(name string, seed int64, cfg GenConfig, p ContentProfile) *Video {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(seed))
	return generateWith(name, seed, cfg, p, rng)
}

func generateWith(name string, seed int64, cfg GenConfig, p ContentProfile, rng *rand.Rand) *Video {
	v := &Video{
		Name: name, Width: cfg.Width, Height: cfg.Height,
		Profile: p, Seed: seed,
	}
	short := math.Min(float64(cfg.Width), float64(cfg.Height))

	// Pick a small set of classes for the video (VID clips usually follow
	// one or two classes) and spawn the initial actors.
	classCount := 1 + rng.Intn(2)
	classes := make([]Class, classCount)
	for i := range classes {
		classes[i] = Class(rng.Intn(NumClasses))
	}
	nextID := 1
	spawn := func() *actor {
		cl := classes[rng.Intn(len(classes))]
		// Object size mixes the class-typical size with the profile mean,
		// weighted toward the profile so content archetypes control
		// apparent size (and thus resolution sensitivity).
		side := short * (0.3*TypicalSizeFrac(cl) + 0.7*p.SizeFrac) *
			math.Exp(rng.NormFloat64()*0.25)
		side = clampF(side, 8, short*0.9)
		aspect := math.Exp(rng.NormFloat64() * 0.3)
		w := side * math.Sqrt(aspect)
		h := side / math.Sqrt(aspect)
		x := rng.Float64() * (float64(cfg.Width) - w)
		y := rng.Float64() * (float64(cfg.Height) - h)
		speed := p.Speed * math.Exp(rng.NormFloat64()*0.3)
		dir := rng.Float64() * 2 * math.Pi
		a := &actor{
			obj: Object{
				ID: nextID, Class: cl,
				Box: geom.Rect{X: x, Y: y, W: w, H: h},
				VX:  speed * math.Cos(dir), VY: speed * math.Sin(dir),
			},
			speedSetting: speed,
		}
		nextID++
		return a
	}

	actors := make([]*actor, 0, p.ObjectCount)
	for i := 0; i < p.ObjectCount; i++ {
		actors = append(actors, spawn())
	}

	v.Frames = make([]Frame, cfg.Frames)
	for fi := 0; fi < cfg.Frames; fi++ {
		frame := Frame{Index: fi}
		for _, a := range actors {
			stepActor(a, cfg, p, rng)
			if a.occludedFor > 0 {
				a.occludedFor--
				continue
			}
			frame.Objects = append(frame.Objects, a.obj)
		}
		// Rare exit/entry churn keeps object identity non-trivial.
		if rng.Float64() < 0.01 && len(actors) > 1 {
			actors = append(actors[:0], actors[1:]...)
		}
		if rng.Float64() < 0.01 && len(actors) < p.ObjectCount+2 {
			actors = append(actors, spawn())
		}
		v.Frames[fi] = frame
	}
	return v
}

// stepActor advances one object by one frame: velocity jitter, occasional
// direction change, edge bounce, and occlusion events.
func stepActor(a *actor, cfg GenConfig, p ContentProfile, rng *rand.Rand) {
	o := &a.obj

	// Ornstein-Uhlenbeck-style velocity: jitter plus pull toward the
	// actor's own speed setting, so speed stays near the profile mean but
	// direction wanders.
	jitter := a.speedSetting * 0.15
	o.VX += rng.NormFloat64() * jitter
	o.VY += rng.NormFloat64() * jitter
	sp := math.Hypot(o.VX, o.VY)
	if sp > 1e-9 {
		target := a.speedSetting
		corr := 1 + 0.1*(target-sp)/math.Max(sp, 1e-9)
		o.VX *= corr
		o.VY *= corr
	}
	// Occasional sharp direction change (erratic content).
	if rng.Float64() < 0.01+0.02*p.Clutter {
		dir := rng.Float64() * 2 * math.Pi
		sp := math.Max(math.Hypot(o.VX, o.VY), 0.1)
		o.VX = sp * math.Cos(dir)
		o.VY = sp * math.Sin(dir)
	}

	o.Box = o.Box.Translate(o.VX, o.VY)

	// Bounce off frame edges, keeping the box inside.
	w, h := float64(cfg.Width), float64(cfg.Height)
	if o.Box.X < 0 {
		o.Box.X = -o.Box.X
		o.VX = math.Abs(o.VX)
	}
	if o.Box.Y < 0 {
		o.Box.Y = -o.Box.Y
		o.VY = math.Abs(o.VY)
	}
	if o.Box.MaxX() > w {
		o.Box.X -= 2 * (o.Box.MaxX() - w)
		o.VX = -math.Abs(o.VX)
	}
	if o.Box.MaxY() > h {
		o.Box.Y -= 2 * (o.Box.MaxY() - h)
		o.VY = -math.Abs(o.VY)
	}
	o.Box.X = clampF(o.Box.X, 0, math.Max(0, w-o.Box.W))
	o.Box.Y = clampF(o.Box.Y, 0, math.Max(0, h-o.Box.H))

	// Slow size breathing (approach/recede).
	scale := math.Exp(rng.NormFloat64() * 0.005)
	cx, cy := o.Box.CenterX(), o.Box.CenterY()
	o.Box.W = clampF(o.Box.W*scale, 6, w)
	o.Box.H = clampF(o.Box.H*scale, 6, h)
	o.Box.X = clampF(cx-o.Box.W/2, 0, math.Max(0, w-o.Box.W))
	o.Box.Y = clampF(cy-o.Box.H/2, 0, math.Max(0, h-o.Box.H))

	// Occlusion onset.
	if a.occludedFor == 0 && rng.Float64() < p.OcclusionRate {
		a.occludedFor = 2 + rng.Intn(8)
	}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Corpus is the dataset split used throughout: DetTrain mirrors the 90% of
// VID-train used to train the vision backbones (our parametric detectors
// are calibrated, not trained, but the split is kept for fidelity),
// SchedTrain is the 10% used to train the scheduler's predictors, and Val
// is held out for evaluation only (Sec. 5.2).
type Corpus struct {
	DetTrain   []*Video
	SchedTrain []*Video
	Val        []*Video
}

// CorpusConfig sizes the corpus.
type CorpusConfig struct {
	DetTrain   int // defaults to 36
	SchedTrain int // defaults to 24
	Val        int // defaults to 24
	Gen        GenConfig
	Seed       int64
}

func (c *CorpusConfig) applyDefaults() {
	if c.DetTrain == 0 {
		c.DetTrain = 36
	}
	if c.SchedTrain == 0 {
		c.SchedTrain = 24
	}
	if c.Val == 0 {
		c.Val = 24
	}
	if c.Seed == 0 {
		c.Seed = 20220405 // EuroSys '22 opening day
	}
}

// NewCorpus generates the full dataset deterministically from cfg.Seed.
// Splits use disjoint seed ranges, so the validation set is independent of
// the training sets (the paper's iid assumption, Sec. 6).
func NewCorpus(cfg CorpusConfig) *Corpus {
	cfg.applyDefaults()
	gen := func(prefix string, n int, base int64) []*Video {
		vs := make([]*Video, n)
		for i := 0; i < n; i++ {
			vs[i] = Generate(fmt.Sprintf("%s_%03d", prefix, i), base+int64(i), cfg.Gen)
		}
		return vs
	}
	return &Corpus{
		DetTrain:   gen("train", cfg.DetTrain, cfg.Seed),
		SchedTrain: gen("sched", cfg.SchedTrain, cfg.Seed+100000),
		Val:        gen("val", cfg.Val, cfg.Seed+200000),
	}
}
