package vid

import (
	"math"
	"testing"
)

func TestClassNames(t *testing.T) {
	if NumClasses != 30 {
		t.Fatalf("NumClasses = %d, want 30", NumClasses)
	}
	seen := map[string]bool{}
	for c := Class(0); int(c) < NumClasses; c++ {
		name := c.String()
		if name == "" || name == "unknown" {
			t.Errorf("class %d has bad name %q", c, name)
		}
		if seen[name] {
			t.Errorf("duplicate class name %q", name)
		}
		seen[name] = true
		if !c.Valid() {
			t.Errorf("class %d should be valid", c)
		}
	}
	if Class(-1).Valid() || Class(NumClasses).Valid() {
		t.Error("out-of-range classes should be invalid")
	}
	if Class(99).String() != "unknown" {
		t.Error("out-of-range String should be unknown")
	}
}

func TestTypicalSizeFracBounds(t *testing.T) {
	for c := Class(0); int(c) < NumClasses; c++ {
		f := TypicalSizeFrac(c)
		if f <= 0 || f >= 1 {
			t.Errorf("TypicalSizeFrac(%v) = %v out of (0,1)", c, f)
		}
	}
	if TypicalSizeFrac(Class(-5)) != 0.25 {
		t.Error("invalid class should fall back to 0.25")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate("v", 42, GenConfig{Frames: 60})
	b := Generate("v", 42, GenConfig{Frames: 60})
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Frames {
		fa, fb := a.Frames[i], b.Frames[i]
		if len(fa.Objects) != len(fb.Objects) {
			t.Fatalf("frame %d object counts differ", i)
		}
		for j := range fa.Objects {
			if fa.Objects[j] != fb.Objects[j] {
				t.Fatalf("frame %d object %d differs: %+v vs %+v",
					i, j, fa.Objects[j], fb.Objects[j])
			}
		}
	}
	c := Generate("v", 43, GenConfig{Frames: 60})
	same := true
	for i := range a.Frames {
		if len(a.Frames[i].Objects) != len(c.Frames[i].Objects) {
			same = false
			break
		}
		for j := range a.Frames[i].Objects {
			if a.Frames[i].Objects[j] != c.Frames[i].Objects[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical videos")
	}
}

func TestGeneratedBoxesInsideFrame(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		v := Generate("v", seed, GenConfig{Frames: 120})
		for _, f := range v.Frames {
			for _, o := range f.Objects {
				if o.Box.Empty() {
					t.Fatalf("seed %d frame %d: empty box %v", seed, f.Index, o.Box)
				}
				if o.Box.X < -1e-6 || o.Box.Y < -1e-6 ||
					o.Box.MaxX() > float64(v.Width)+1e-6 ||
					o.Box.MaxY() > float64(v.Height)+1e-6 {
					t.Fatalf("seed %d frame %d: box out of frame: %v (frame %dx%d)",
						seed, f.Index, o.Box, v.Width, v.Height)
				}
			}
		}
	}
}

func TestMotionSmoothness(t *testing.T) {
	// Boxes should move continuously: center displacement per frame is
	// bounded by a small multiple of the profile speed.
	v := Generate("v", 7, GenConfig{Frames: 200})
	limit := v.Profile.Speed*6 + 20
	prev := map[int]Object{}
	for _, f := range v.Frames {
		cur := map[int]Object{}
		for _, o := range f.Objects {
			cur[o.ID] = o
			if p, ok := prev[o.ID]; ok {
				dx := o.Box.CenterX() - p.Box.CenterX()
				dy := o.Box.CenterY() - p.Box.CenterY()
				if math.Hypot(dx, dy) > limit {
					t.Fatalf("frame %d object %d jumped %.1f px (limit %.1f)",
						f.Index, o.ID, math.Hypot(dx, dy), limit)
				}
			}
		}
		prev = cur
	}
}

func TestObjectIDsStableAndUniquePerFrame(t *testing.T) {
	v := Generate("v", 11, GenConfig{Frames: 150})
	classOf := map[int]Class{}
	for _, f := range v.Frames {
		seen := map[int]bool{}
		for _, o := range f.Objects {
			if seen[o.ID] {
				t.Fatalf("frame %d: duplicate object id %d", f.Index, o.ID)
			}
			seen[o.ID] = true
			if cl, ok := classOf[o.ID]; ok && cl != o.Class {
				t.Fatalf("object %d changed class %v -> %v", o.ID, cl, o.Class)
			}
			classOf[o.ID] = o.Class
		}
	}
}

func TestSnippets(t *testing.T) {
	v := Generate("v", 3, GenConfig{Frames: 250})
	ss := v.Snippets(100)
	total := 0
	for i, s := range ss {
		if s.Video != v {
			t.Fatalf("snippet %d has wrong video", i)
		}
		if s.Start != total {
			t.Fatalf("snippet %d starts at %d, want %d", i, s.Start, total)
		}
		total += s.N
	}
	if total != v.Len() {
		t.Fatalf("snippets cover %d frames, want %d", total, v.Len())
	}
	// 250 = 100 + 100 + 50 tail >= n/2, so three snippets.
	if len(ss) != 3 {
		t.Fatalf("got %d snippets, want 3", len(ss))
	}
	// A short tail folds into the previous snippet: 230 = 100 + 130.
	v2 := Generate("v2", 3, GenConfig{Frames: 230})
	ss2 := v2.Snippets(100)
	if len(ss2) != 2 || ss2[1].N != 130 {
		t.Fatalf("tail folding failed: %+v", ss2)
	}
	if got := len(ss2[1].Frames()); got != 130 {
		t.Fatalf("snippet Frames() length = %d, want 130", got)
	}
	if ss2[0].First().Index != 0 {
		t.Fatalf("First() index = %d", ss2[0].First().Index)
	}
}

func TestSnippetsPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	v := Generate("v", 1, GenConfig{Frames: 10})
	v.Snippets(0)
}

func TestStats(t *testing.T) {
	v := Generate("v", 5, GenConfig{Frames: 50})
	for _, f := range v.Frames {
		st := v.Stats(f)
		if st.Width != v.Width || st.Height != v.Height {
			t.Fatalf("stats dims wrong: %+v", st)
		}
		if st.ObjectCount != len(f.Objects) {
			t.Fatalf("object count wrong")
		}
		if len(f.Objects) > 0 && st.MeanSize <= 0 {
			t.Fatalf("mean size should be positive with objects present")
		}
	}
	empty := v.Stats(Frame{Index: 0})
	if empty.MeanSize != 0 || empty.MeanSpeed != 0 || empty.ObjectCount != 0 {
		t.Fatalf("empty frame stats should be zero: %+v", empty)
	}
}

func TestClassHistogram(t *testing.T) {
	f := Frame{Objects: []Object{
		{ID: 1, Class: Car}, {ID: 2, Class: Car}, {ID: 3, Class: Dog},
	}}
	h := ClassHistogram(f)
	if len(h) != NumClasses {
		t.Fatalf("histogram length %d", len(h))
	}
	if math.Abs(h[Car]-2.0/3) > 1e-12 || math.Abs(h[Dog]-1.0/3) > 1e-12 {
		t.Fatalf("histogram values wrong: car=%v dog=%v", h[Car], h[Dog])
	}
	sum := 0.0
	for _, x := range h {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("histogram sums to %v", sum)
	}
	he := ClassHistogram(Frame{})
	for _, x := range he {
		if x != 0 {
			t.Fatal("empty frame histogram should be zero")
		}
	}
}

func TestIndependentProfileBounds(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		v := Generate("v", seed, GenConfig{Frames: 2})
		p := v.Profile
		if p.Archetype != "mixed" {
			t.Fatalf("default generator archetype = %q, want mixed", p.Archetype)
		}
		if p.ObjectCount < 1 || p.ObjectCount > 8 {
			t.Errorf("object count %d out of [1,8]", p.ObjectCount)
		}
		if p.SizeFrac < 0.07 || p.SizeFrac > 0.50 {
			t.Errorf("size frac %v out of range", p.SizeFrac)
		}
		if p.Speed < 0.5 || p.Speed > 20 {
			t.Errorf("speed %v out of range", p.Speed)
		}
		if p.Clutter < 0.1 || p.Clutter > 0.9 {
			t.Errorf("clutter %v out of range", p.Clutter)
		}
	}
}

func TestProfileDimensionsDecorrelated(t *testing.T) {
	// Size (light-visible) must carry no information about speed
	// (content-only): correlation over many seeds stays near zero.
	var sx, sy, sxx, syy, sxy float64
	n := 300
	for seed := int64(0); seed < int64(n); seed++ {
		v := Generate("v", seed, GenConfig{Frames: 1})
		x := math.Log(v.Profile.SizeFrac)
		y := math.Log(v.Profile.Speed)
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	fn := float64(n)
	cov := sxy/fn - (sx/fn)*(sy/fn)
	vx := sxx/fn - (sx/fn)*(sx/fn)
	vy := syy/fn - (sy/fn)*(sy/fn)
	corr := cov / math.Sqrt(vx*vy)
	if math.Abs(corr) > 0.15 {
		t.Fatalf("size-speed correlation = %.3f, want ~0", corr)
	}
}

func TestGenerateArchetype(t *testing.T) {
	for _, a := range Archetypes {
		v := GenerateArchetype("v", a.Name, 5, GenConfig{Frames: 2})
		if v.Profile.Archetype != a.Name {
			t.Fatalf("archetype %q not applied: got %q", a.Name, v.Profile.Archetype)
		}
		p := v.Profile
		if p.Speed < a.Speed[0] || p.Speed > a.Speed[1] {
			t.Errorf("%s: speed %v out of %v", a.Name, p.Speed, a.Speed)
		}
	}
	// Unknown archetype falls back to the independent mix.
	v := GenerateArchetype("v", "bogus", 5, GenConfig{Frames: 2})
	if v.Profile.Archetype != "mixed" {
		t.Fatalf("fallback archetype = %q", v.Profile.Archetype)
	}
}

func TestGenerateWithProfile(t *testing.T) {
	p := ContentProfile{ObjectCount: 3, SizeFrac: 0.2, Speed: 5,
		Clutter: 0.5, OcclusionRate: 0.01, Archetype: "custom"}
	v := GenerateWithProfile("v", 9, GenConfig{Frames: 30}, p)
	if v.Profile != p {
		t.Fatalf("profile not preserved: %+v", v.Profile)
	}
	if len(v.Frames) != 30 {
		t.Fatalf("frames = %d", len(v.Frames))
	}
	// Should start with the requested number of actors.
	if n := len(v.Frames[0].Objects); n > p.ObjectCount {
		t.Fatalf("first frame has %d objects, profile wants <= %d", n, p.ObjectCount)
	}
}

func TestNewCorpus(t *testing.T) {
	c := NewCorpus(CorpusConfig{DetTrain: 4, SchedTrain: 3, Val: 2,
		Gen: GenConfig{Frames: 20}})
	if len(c.DetTrain) != 4 || len(c.SchedTrain) != 3 || len(c.Val) != 2 {
		t.Fatalf("split sizes wrong: %d/%d/%d",
			len(c.DetTrain), len(c.SchedTrain), len(c.Val))
	}
	names := map[string]bool{}
	for _, vs := range [][]*Video{c.DetTrain, c.SchedTrain, c.Val} {
		for _, v := range vs {
			if names[v.Name] {
				t.Fatalf("duplicate video name %q", v.Name)
			}
			names[v.Name] = true
		}
	}
	// Determinism of the whole corpus.
	c2 := NewCorpus(CorpusConfig{DetTrain: 4, SchedTrain: 3, Val: 2,
		Gen: GenConfig{Frames: 20}})
	if c.Val[0].Frames[5].Objects[0] != c2.Val[0].Frames[5].Objects[0] {
		t.Fatal("corpus not deterministic")
	}
}

func TestCorpusDefaultSizes(t *testing.T) {
	cfg := CorpusConfig{Gen: GenConfig{Frames: 2}}
	c := NewCorpus(cfg)
	if len(c.DetTrain) != 36 || len(c.SchedTrain) != 24 || len(c.Val) != 24 {
		t.Fatalf("default sizes wrong: %d/%d/%d",
			len(c.DetTrain), len(c.SchedTrain), len(c.Val))
	}
}

func TestContentDiversity(t *testing.T) {
	// Across many seeds the independent mix must span slow and fast,
	// small and large content.
	var fast, slow, small, large int
	for seed := int64(0); seed < 60; seed++ {
		v := Generate("v", seed, GenConfig{Frames: 1})
		if v.Profile.Speed > 8 {
			fast++
		}
		if v.Profile.Speed < 2 {
			slow++
		}
		if v.Profile.SizeFrac < 0.12 {
			small++
		}
		if v.Profile.SizeFrac > 0.35 {
			large++
		}
	}
	if fast < 5 || slow < 5 || small < 5 || large < 5 {
		t.Fatalf("content mix unbalanced: fast=%d slow=%d small=%d large=%d",
			fast, slow, small, large)
	}
}
