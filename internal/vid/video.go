package vid

import (
	"fmt"
	"math"

	"litereconfig/internal/geom"
)

// Object is one ground-truth object instance in a frame. The ID is stable
// across frames of the same video, so trackers and the mAP matcher can
// associate instances over time.
type Object struct {
	ID    int
	Class Class
	Box   geom.Rect
	// VX, VY is the instantaneous velocity in pixels per frame. It is part
	// of the ground truth (used by the motion model and by the synthetic
	// appearance features); real systems would estimate it.
	VX, VY float64
}

// Speed returns the instantaneous speed in pixels per frame.
func (o Object) Speed() float64 { return math.Hypot(o.VX, o.VY) }

// Frame is one video frame: its index and the visible ground-truth objects.
type Frame struct {
	Index   int
	Objects []Object
}

// ContentProfile summarizes the generating parameters of a video. It is
// the hidden content state that the scheduler tries to infer through
// features; online code must not read it directly (only the synthetic
// neural-feature extractors do, standing in for learned embeddings).
type ContentProfile struct {
	// ObjectCount is the target number of concurrently visible objects.
	ObjectCount int
	// SizeFrac is the mean object side length as a fraction of the frame
	// short side. Small values make low-resolution branches miss objects.
	SizeFrac float64
	// Speed is the mean object speed in pixels per frame at native
	// resolution. High values make trackers drift within a GoF.
	Speed float64
	// Clutter in [0,1] is background complexity; it raises false-positive
	// rates and makes cheap trackers lock onto background.
	Clutter float64
	// OcclusionRate is the per-object per-frame probability of starting a
	// short occlusion, during which the object is absent from ground truth.
	OcclusionRate float64
	// Archetype names the content archetype that produced this profile.
	Archetype string
}

// Video is a synthetic video clip with full ground-truth annotation.
type Video struct {
	Name    string
	Width   int
	Height  int
	Frames  []Frame
	Profile ContentProfile
	Seed    int64
}

// Len returns the number of frames.
func (v *Video) Len() int { return len(v.Frames) }

// ShortSide returns the shorter of the native width and height.
func (v *Video) ShortSide() float64 {
	return math.Min(float64(v.Width), float64(v.Height))
}

// Snippet is a window of consecutive frames of a video, the unit over
// which the paper defines snippet-level accuracy (Sec. 3.3, N = 100).
type Snippet struct {
	Video *Video
	Start int // index of the first frame
	N     int // number of frames
}

// Frames returns the frame slice covered by the snippet.
func (s Snippet) Frames() []Frame {
	end := s.Start + s.N
	if end > len(s.Video.Frames) {
		end = len(s.Video.Frames)
	}
	return s.Video.Frames[s.Start:end]
}

// First returns the first frame of the snippet. The scheduler may only
// look at this frame when predicting the snippet's accuracy (Sec. 4,
// footnote 7).
func (s Snippet) First() Frame { return s.Video.Frames[s.Start] }

// String implements fmt.Stringer.
func (s Snippet) String() string {
	return fmt.Sprintf("%s[%d:%d]", s.Video.Name, s.Start, s.Start+s.N)
}

// Snippets cuts the video into consecutive non-overlapping snippets of n
// frames. A final partial window shorter than n/2 is dropped; otherwise
// it is kept (the paper evaluates full videos).
func (v *Video) Snippets(n int) []Snippet {
	if n <= 0 {
		panic("vid: snippet length must be positive")
	}
	var out []Snippet
	for start := 0; start < len(v.Frames); start += n {
		remain := len(v.Frames) - start
		if remain < n/2 && start > 0 {
			// Fold a short tail into the previous snippet.
			out[len(out)-1].N += remain
			break
		}
		ln := n
		if remain < ln {
			ln = remain
		}
		out = append(out, Snippet{Video: v, Start: start, N: ln})
	}
	return out
}

// FrameStats are the light-weight per-frame statistics (height, width,
// object count, mean object size) that the paper's light features carry.
type FrameStats struct {
	Width, Height int
	ObjectCount   int
	MeanSize      float64 // mean sqrt(box area) in pixels; 0 when no objects
	MeanSpeed     float64 // mean object speed in px/frame; 0 when no objects
}

// Stats computes the light-weight statistics of frame f within video v.
func (v *Video) Stats(f Frame) FrameStats {
	st := FrameStats{Width: v.Width, Height: v.Height, ObjectCount: len(f.Objects)}
	if len(f.Objects) == 0 {
		return st
	}
	var size, speed float64
	for _, o := range f.Objects {
		size += math.Sqrt(o.Box.Area())
		speed += o.Speed()
	}
	st.MeanSize = size / float64(len(f.Objects))
	st.MeanSpeed = speed / float64(len(f.Objects))
	return st
}

// ClassHistogram returns the per-class object-presence mass over the
// frame: a NumClasses-length vector where entry c is the fraction of
// visible objects of class c (all zeros for an empty frame).
func ClassHistogram(f Frame) []float64 {
	h := make([]float64, NumClasses)
	if len(f.Objects) == 0 {
		return h
	}
	for _, o := range f.Objects {
		if o.Class.Valid() {
			h[o.Class]++
		}
	}
	inv := 1.0 / float64(len(f.Objects))
	for i := range h {
		h[i] *= inv
	}
	return h
}
