// Package vid provides the synthetic video dataset that stands in for the
// ILSVRC 2015 VID benchmark used by the paper.
//
// A Video is a sequence of Frames, each carrying ground-truth Objects with
// persistent identities, class labels and boxes that move smoothly under a
// seeded motion model. Every video is generated from a ContentProfile
// (object count, size, speed, clutter, occlusion), which is what drives
// the content-dependent accuracy and latency behaviour the LiteReconfig
// scheduler adapts to.
//
// Everything here is deterministic given the seed.
package vid

// Class identifies one of the 30 object categories of the ILSVRC VID
// benchmark. The zero value is Airplane.
type Class int

// The 30 VID object classes, in the benchmark's canonical order.
const (
	Airplane Class = iota
	Antelope
	Bear
	Bicycle
	Bird
	Bus
	Car
	Cattle
	Dog
	DomesticCat
	Elephant
	Fox
	GiantPanda
	Hamster
	Horse
	Lion
	Lizard
	Monkey
	Motorcycle
	Rabbit
	RedPanda
	Sheep
	Snake
	Squirrel
	Tiger
	Train
	Turtle
	Watercraft
	Whale
	Zebra

	// NumClasses is the number of object categories.
	NumClasses int = iota
)

var classNames = [NumClasses]string{
	"airplane", "antelope", "bear", "bicycle", "bird", "bus", "car",
	"cattle", "dog", "domestic_cat", "elephant", "fox", "giant_panda",
	"hamster", "horse", "lion", "lizard", "monkey", "motorcycle",
	"rabbit", "red_panda", "sheep", "snake", "squirrel", "tiger",
	"train", "turtle", "watercraft", "whale", "zebra",
}

// String returns the canonical lower-case class name.
func (c Class) String() string {
	if c < 0 || int(c) >= NumClasses {
		return "unknown"
	}
	return classNames[c]
}

// Valid reports whether c is one of the benchmark classes.
func (c Class) Valid() bool { return c >= 0 && int(c) < NumClasses }

// typicalSizeFrac is the typical object side length as a fraction of the
// frame's short side, per class. It seeds the size distribution so that,
// e.g., buses are big and hamsters are small, which makes class identity
// informative about detection difficulty (a property CPoP features exploit).
var typicalSizeFrac = [NumClasses]float64{
	0.38, 0.30, 0.34, 0.28, 0.14, 0.46, 0.30, 0.32, 0.26, 0.24,
	0.44, 0.20, 0.34, 0.12, 0.34, 0.32, 0.14, 0.20, 0.28, 0.16,
	0.20, 0.28, 0.16, 0.12, 0.32, 0.52, 0.20, 0.40, 0.44, 0.32,
}

// TypicalSizeFrac returns the typical side length of class c as a fraction
// of the frame short side.
func TypicalSizeFrac(c Class) float64 {
	if !c.Valid() {
		return 0.25
	}
	return typicalSizeFrac[c]
}
