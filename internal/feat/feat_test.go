package feat

import (
	"math"
	"testing"

	"litereconfig/internal/raster"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

func testVideo(seed int64) *vid.Video {
	return vid.Generate("v", seed, vid.GenConfig{Frames: 12})
}

func TestKindNamesAndLookup(t *testing.T) {
	if NumKinds != 6 {
		t.Fatalf("NumKinds = %d, want 6", NumKinds)
	}
	for k := Kind(0); int(k) < NumKinds; k++ {
		name := k.String()
		got, ok := KindByName(name)
		if !ok || got != k {
			t.Fatalf("round trip failed for %v", k)
		}
		if !k.Valid() {
			t.Fatalf("%v should be valid", k)
		}
	}
	if _, ok := KindByName("bogus"); ok {
		t.Fatal("bogus name resolved")
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("invalid kind name")
	}
	if Light.Heavy() {
		t.Fatal("light is not heavy")
	}
	hk := HeavyKinds()
	if len(hk) != 5 {
		t.Fatalf("HeavyKinds length %d", len(hk))
	}
	for _, k := range hk {
		if !k.Heavy() {
			t.Fatalf("%v should be heavy", k)
		}
	}
}

func TestSpecsMatchTable1(t *testing.T) {
	cases := []struct {
		k          Kind
		dim        int
		extract    float64
		predict    float64
		extractCls simlat.OpClass
	}{
		{Light, 4, 0.12, 3.71, simlat.CPU},
		{HoC, 768, 14.14, 4.94, simlat.CPU},
		{HOG, 1764, 25.32, 4.93, simlat.CPU},
		{ResNet50, 1024, 26.96, 6.07, simlat.GPU},
		{CPoP, 31, 3.62, 4.84, simlat.GPU},
		{MobileNetV2, 1280, 153.96, 9.33, simlat.GPU},
	}
	for _, c := range cases {
		s := SpecOf(c.k)
		if s.Dim != c.dim || s.ExtractMS != c.extract || s.PredictMS != c.predict {
			t.Errorf("%v spec = %+v", c.k, s)
		}
		if s.ExtractClass != c.extractCls {
			t.Errorf("%v extract class = %v", c.k, s.ExtractClass)
		}
		if s.ExtractSharedMS > s.ExtractMS {
			t.Errorf("%v shared cost exceeds standalone", c.k)
		}
	}
	// ResNet50 and CPoP are detector-shared: their shared cost must be a
	// small fraction of MobileNetV2's, which is the Figure 2 story.
	if SpecOf(ResNet50).ExtractSharedMS >= SpecOf(MobileNetV2).ExtractSharedMS/10 {
		t.Error("shared ResNet50 should be far cheaper than MobileNetV2")
	}
	if math.Abs(TotalCostMS(HoC)-(14.14+4.94)) > 1e-9 {
		t.Errorf("TotalCostMS(HoC) = %v", TotalCostMS(HoC))
	}
}

func TestSpecOfPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SpecOf(Kind(-1))
}

func TestExtractDimsMatchSpecs(t *testing.T) {
	e := NewExtractor(1)
	v := testVideo(1)
	for k := Kind(0); int(k) < NumKinds; k++ {
		vec := e.Extract(k, v, v.Frames[0])
		if len(vec) != SpecOf(k).Dim {
			t.Errorf("%v vector dim = %d, want %d", k, len(vec), SpecOf(k).Dim)
		}
		for i, x := range vec {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("%v[%d] = %v", k, i, x)
			}
		}
	}
}

func TestExtractDeterministic(t *testing.T) {
	e1, e2 := NewExtractor(5), NewExtractor(5)
	v := testVideo(2)
	for _, k := range []Kind{Light, HoC, HOG, ResNet50, CPoP, MobileNetV2} {
		a := e1.Extract(k, v, v.Frames[3])
		b := e2.Extract(k, v, v.Frames[3])
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v not deterministic at %d", k, i)
			}
		}
	}
}

func TestLightVector(t *testing.T) {
	v := testVideo(3)
	f := v.Frames[0]
	vec := LightVector(v, f)
	if vec[0] != float64(v.Height)/1000 || vec[1] != float64(v.Width)/1000 {
		t.Fatalf("light dims wrong: %v", vec)
	}
	if vec[2] != float64(len(f.Objects))/10 {
		t.Fatalf("light count wrong: %v", vec)
	}
}

func TestHoCProperties(t *testing.T) {
	v := testVideo(4)
	im := raster.Render(v, v.Frames[0], RasterSize, RasterSize)
	h := HoCVector(im)
	if len(h) != 768 {
		t.Fatalf("HoC dim = %d", len(h))
	}
	// Each channel's histogram sums to 1.
	for ch := 0; ch < 3; ch++ {
		var s float64
		for b := 0; b < HoCBins; b++ {
			s += h[ch*HoCBins+b]
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("channel %d sums to %v", ch, s)
		}
	}
	// Empty image yields zero vector, no panic.
	if z := HoCVector(raster.New(0, 0)); len(z) != 768 {
		t.Fatal("empty image HoC wrong length")
	}
}

func TestHoCDistinguishesContent(t *testing.T) {
	a := testVideo(5)
	b := testVideo(6)
	ha := HoCVector(raster.Render(a, a.Frames[0], RasterSize, RasterSize))
	hb := HoCVector(raster.Render(b, b.Frames[0], RasterSize, RasterSize))
	var diff float64
	for i := range ha {
		diff += math.Abs(ha[i] - hb[i])
	}
	if diff < 0.05 {
		t.Fatalf("HoC of different videos nearly identical: L1=%v", diff)
	}
}

func TestHOGProperties(t *testing.T) {
	v := testVideo(7)
	im := raster.Render(v, v.Frames[0], RasterSize, RasterSize)
	h := HOGVector(im)
	if len(h) != 1764 {
		t.Fatalf("HOG dim = %d, want 1764", len(h))
	}
	for _, x := range h {
		if x < 0 || math.IsNaN(x) {
			t.Fatalf("bad HOG value %v", x)
		}
	}
	// Each 36-dim block is approximately L2-normalized (<= 1).
	for b := 0; b < len(h)/36; b++ {
		var n float64
		for i := 0; i < 36; i++ {
			n += h[b*36+i] * h[b*36+i]
		}
		if n > 1+1e-6 {
			t.Fatalf("block %d norm %v > 1", b, n)
		}
	}
	// A flat image has zero gradients everywhere.
	flat := raster.New(RasterSize, RasterSize)
	for i := range flat.Pix {
		flat.Pix[i] = 128
	}
	for _, x := range HOGVector(flat) {
		if x != 0 {
			t.Fatal("flat image should have zero HOG")
		}
	}
	// Degenerate sizes.
	if HOGVector(raster.New(4, 4)) != nil {
		t.Fatal("tiny image should return nil")
	}
}

func TestHOGOrientationSelectivity(t *testing.T) {
	// A vertical edge produces horizontal gradients -> orientation bin 0.
	im := raster.New(RasterSize, RasterSize)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			var v byte
			if x >= im.W/2 {
				v = 255
			}
			i := (y*im.W + x) * 3
			im.Pix[i], im.Pix[i+1], im.Pix[i+2] = v, v, v
		}
	}
	h := HOGVector(im)
	// Sum per orientation bin across all blocks.
	bins := make([]float64, hogBins)
	for i, x := range h {
		bins[i%hogBins] += x
	}
	maxBin := 0
	for i := range bins {
		if bins[i] > bins[maxBin] {
			maxBin = i
		}
	}
	if maxBin != 0 {
		t.Fatalf("vertical edge peaked at bin %d, want 0 (bins=%v)", maxBin, bins)
	}
}

func TestCPoPReflectsClasses(t *testing.T) {
	v := testVideo(8)
	var frame vid.Frame
	for _, f := range v.Frames {
		if len(f.Objects) > 0 {
			frame = f
			break
		}
	}
	if len(frame.Objects) == 0 {
		t.Skip("no populated frame")
	}
	c := CPoPVector(v, frame)
	if len(c) != 31 {
		t.Fatalf("CPoP dim = %d", len(c))
	}
	// The present class must have more mass than a random absent class.
	present := frame.Objects[0].Class
	var absent vid.Class
	for cl := vid.Class(0); int(cl) < vid.NumClasses; cl++ {
		found := false
		for _, o := range frame.Objects {
			if o.Class == cl {
				found = true
			}
		}
		if !found {
			absent = cl
			break
		}
	}
	if c[present] <= c[absent] {
		t.Fatalf("present class %v mass %v <= absent %v mass %v",
			present, c[present], absent, c[absent])
	}
	// Empty frame: all mass on background.
	e := CPoPVector(v, vid.Frame{Index: 0})
	if e[30] < 0.9 {
		t.Fatalf("empty frame background mass = %v", e[30])
	}
}

func TestEmbeddingsCarryContentSignal(t *testing.T) {
	// Embeddings of the same frame under different extractor seeds differ
	// (different "network weights"), but under one extractor, frames from
	// very different content differ more than adjacent frames of the same
	// video.
	e := NewExtractor(1)
	slow := vid.GenerateWithProfile("s", 10, vid.GenConfig{Frames: 4},
		vid.ContentProfile{ObjectCount: 1, SizeFrac: 0.5, Speed: 1, Clutter: 0.1, Archetype: "t"})
	fast := vid.GenerateWithProfile("f", 11, vid.GenConfig{Frames: 4},
		vid.ContentProfile{ObjectCount: 6, SizeFrac: 0.1, Speed: 20, Clutter: 0.9, Archetype: "t"})
	d := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += (a[i] - b[i]) * (a[i] - b[i])
		}
		return math.Sqrt(s)
	}
	sameVid := d(e.Extract(ResNet50, slow, slow.Frames[0]),
		e.Extract(ResNet50, slow, slow.Frames[1]))
	crossVid := d(e.Extract(ResNet50, slow, slow.Frames[0]),
		e.Extract(ResNet50, fast, fast.Frames[0]))
	if crossVid <= sameVid {
		t.Fatalf("embedding does not separate content: same=%v cross=%v", sameVid, crossVid)
	}
}

func BenchmarkHOG(b *testing.B) {
	v := testVideo(1)
	im := raster.Render(v, v.Frames[0], RasterSize, RasterSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HOGVector(im)
	}
}

func BenchmarkHoC(b *testing.B) {
	v := testVideo(1)
	im := raster.Render(v, v.Frames[0], RasterSize, RasterSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HoCVector(im)
	}
}
