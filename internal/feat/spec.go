// Package feat implements the scheduler's feature space (Table 1 of the
// paper): the always-available light-weight features and the five
// heavy-weight content features — Histogram of Colors (HoC), Histogram of
// Oriented Gradients (HOG), ResNet50, Class Predictions on Proposal
// (CPoP) and MobileNetV2.
//
// HoC and HOG are real image-processing computations over rasters
// rendered from the synthetic scene. ResNet50, CPoP and MobileNetV2 are
// deterministic content-derived embeddings standing in for the learned
// features (see DESIGN.md §2); their *costs* follow Table 1.
package feat

import (
	"litereconfig/internal/simlat"
)

// Kind identifies a feature family.
type Kind int

// The feature kinds of Table 1.
const (
	Light Kind = iota
	HoC
	HOG
	ResNet50
	CPoP
	MobileNetV2

	// NumKinds is the number of feature kinds.
	NumKinds int = iota
)

var kindNames = [NumKinds]string{
	"light", "hoc", "hog", "resnet50", "cpop", "mobilenetv2",
}

// String returns the canonical lower-case feature name.
func (k Kind) String() string {
	if k < 0 || int(k) >= NumKinds {
		return "unknown"
	}
	return kindNames[k]
}

// KindByName resolves a feature name; ok is false for unknown names.
func KindByName(name string) (Kind, bool) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// Heavy reports whether k is a heavy-weight content feature.
func (k Kind) Heavy() bool { return k != Light && k.Valid() }

// Valid reports whether k is a known kind.
func (k Kind) Valid() bool { return k >= 0 && int(k) < NumKinds }

// HeavyKinds returns the heavy-weight feature kinds in Table 1 order.
func HeavyKinds() []Kind {
	return []Kind{HoC, HOG, ResNet50, CPoP, MobileNetV2}
}

// Spec is the static description of a feature: dimensionality and the
// extraction/prediction costs in TX2 milliseconds (Table 1).
type Spec struct {
	Kind Kind
	Dim  int
	// ExtractMS is the standalone extraction cost.
	ExtractMS float64
	// ExtractSharedMS is the extraction cost when the MBEK's Faster R-CNN
	// already runs on the same frame; ResNet50 and CPoP come out of the
	// detector, so they only pay a pooling cost (Sec. 1: "the ResNet
	// features come from the object detector in the MBEK, and thus only
	// incur minor additional extraction ... costs"). For external
	// features it equals ExtractMS.
	ExtractSharedMS float64
	// PredictMS is the cost of running the accuracy-prediction model on
	// the feature (per scheduler invocation, covering all branches).
	PredictMS float64
	// ExtractClass and PredictClass say which resource the work occupies;
	// Table 1: "ResNet50, CPoP, MobileNetV2 feature extractors and the
	// prediction models use the GPU; the others are mainly on the CPU."
	ExtractClass simlat.OpClass
	PredictClass simlat.OpClass
}

// specs mirrors Table 1. HOG's dimension differs from the paper's 5400
// because our rasters are 64x64 rather than full video frames; the cost
// model still charges the paper's measured 25.32 ms.
var specs = [NumKinds]Spec{
	Light: {
		Kind: Light, Dim: 4,
		ExtractMS: 0.12, ExtractSharedMS: 0.12, PredictMS: 3.71,
		ExtractClass: simlat.CPU, PredictClass: simlat.GPU,
	},
	HoC: {
		Kind: HoC, Dim: 768,
		ExtractMS: 14.14, ExtractSharedMS: 14.14, PredictMS: 4.94,
		ExtractClass: simlat.CPU, PredictClass: simlat.GPU,
	},
	HOG: {
		Kind: HOG, Dim: 1764,
		ExtractMS: 25.32, ExtractSharedMS: 25.32, PredictMS: 4.93,
		ExtractClass: simlat.CPU, PredictClass: simlat.GPU,
	},
	ResNet50: {
		Kind: ResNet50, Dim: 1024,
		ExtractMS: 26.96, ExtractSharedMS: 4.0, PredictMS: 6.07,
		ExtractClass: simlat.GPU, PredictClass: simlat.GPU,
	},
	CPoP: {
		Kind: CPoP, Dim: 31,
		ExtractMS: 3.62, ExtractSharedMS: 1.2, PredictMS: 4.84,
		ExtractClass: simlat.GPU, PredictClass: simlat.GPU,
	},
	MobileNetV2: {
		Kind: MobileNetV2, Dim: 1280,
		ExtractMS: 153.96, ExtractSharedMS: 153.96, PredictMS: 9.33,
		ExtractClass: simlat.GPU, PredictClass: simlat.GPU,
	},
}

// SpecOf returns the static spec of a feature kind.
func SpecOf(k Kind) Spec {
	if !k.Valid() {
		panic("feat: invalid feature kind")
	}
	return specs[k]
}

// TotalCostMS returns the standalone extract+predict cost of the feature
// on the TX2 (the quantity Sec. 3.4 reasons about).
func TotalCostMS(k Kind) float64 {
	s := SpecOf(k)
	return s.ExtractMS + s.PredictMS
}
