package feat

import "litereconfig/internal/raster"

// HoCBins is the number of histogram bins per color channel; 3 channels
// give the paper's 768-dim HoC feature.
const HoCBins = 256

// HoCVector computes the Histogram of Colors of an RGB image: a
// 256-bin histogram per channel (R, G, B concatenated), L1-normalized so
// each channel's bins sum to 1.
func HoCVector(im *raster.Image) []float64 {
	out := make([]float64, 3*HoCBins)
	n := im.W * im.H
	if n == 0 {
		return out
	}
	for i := 0; i < n; i++ {
		r := im.Pix[i*3]
		g := im.Pix[i*3+1]
		b := im.Pix[i*3+2]
		out[int(r)]++
		out[HoCBins+int(g)]++
		out[2*HoCBins+int(b)]++
	}
	inv := 1.0 / float64(n)
	for i := range out {
		out[i] *= inv
	}
	return out
}
