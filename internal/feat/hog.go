package feat

import (
	"math"

	"litereconfig/internal/raster"
)

// HOG parameters: 8x8-pixel cells, 9 unsigned orientation bins,
// 2x2-cell blocks with L2 normalization — the classic Dalal-Triggs
// configuration. Over a 64x64 raster this yields 7x7 blocks x 36 = 1764
// dimensions (the paper's 5400 comes from a larger input; see Spec).
const (
	hogCell   = 8
	hogBins   = 9
	hogBlock  = 2
	hogL2Eps  = 1e-6
	hogUnsign = math.Pi // orientations folded into [0, pi)
)

// HOGVector computes the Histogram of Oriented Gradients of an image.
func HOGVector(im *raster.Image) []float64 {
	cellsX := im.W / hogCell
	cellsY := im.H / hogCell
	if cellsX == 0 || cellsY == 0 {
		return nil
	}

	// Per-cell orientation histograms with linear vote interpolation
	// between the two nearest bins.
	cells := make([]float64, cellsX*cellsY*hogBins)
	for y := 0; y < cellsY*hogCell; y++ {
		for x := 0; x < cellsX*hogCell; x++ {
			gx := im.Gray(clampI(x+1, im.W-1), y) - im.Gray(clampI(x-1, im.W-1), y)
			gy := im.Gray(x, clampI(y+1, im.H-1)) - im.Gray(x, clampI(y-1, im.H-1))
			mag := math.Hypot(gx, gy)
			if mag == 0 {
				continue
			}
			ang := math.Atan2(gy, gx)
			if ang < 0 {
				ang += math.Pi
			}
			if ang >= hogUnsign {
				ang -= hogUnsign
			}
			pos := ang / hogUnsign * hogBins // in [0, 9)
			b0 := int(pos)
			frac := pos - float64(b0)
			b0 %= hogBins
			b1 := (b0 + 1) % hogBins
			ci := (y/hogCell)*cellsX + x/hogCell
			cells[ci*hogBins+b0] += mag * (1 - frac)
			cells[ci*hogBins+b1] += mag * frac
		}
	}

	// Block normalization: 2x2 cells per block, sliding by one cell,
	// each block L2-normalized.
	blocksX := cellsX - hogBlock + 1
	blocksY := cellsY - hogBlock + 1
	if blocksX <= 0 || blocksY <= 0 {
		return cells // too small for blocks: return raw cell histograms
	}
	out := make([]float64, 0, blocksX*blocksY*hogBlock*hogBlock*hogBins)
	for by := 0; by < blocksY; by++ {
		for bx := 0; bx < blocksX; bx++ {
			start := len(out)
			var norm float64
			for cy := 0; cy < hogBlock; cy++ {
				for cx := 0; cx < hogBlock; cx++ {
					ci := (by+cy)*cellsX + bx + cx
					h := cells[ci*hogBins : (ci+1)*hogBins]
					out = append(out, h...)
					for _, v := range h {
						norm += v * v
					}
				}
			}
			norm = math.Sqrt(norm + hogL2Eps)
			for i := start; i < len(out); i++ {
				out[i] /= norm
			}
		}
	}
	return out
}

func clampI(v, max int) int {
	if v < 0 {
		return 0
	}
	if v > max {
		return max
	}
	return v
}
