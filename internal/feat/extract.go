package feat

import (
	"fmt"
	"math"
	"math/rand"

	"litereconfig/internal/raster"
	"litereconfig/internal/vid"
)

// RasterSize is the side length of the rendered raster that HoC and HOG
// run over. 64 keeps extraction cheap while leaving 8x8 HOG cells.
const RasterSize = 64

// Extractor computes feature vectors for video frames. It is deterministic
// given its seed (which fixes the simulated embedding networks' weights)
// and safe to reuse across videos. It performs no latency accounting —
// callers charge the clock using the Spec costs.
type Extractor struct {
	projResNet [][]float64 // descriptorDim x 1024
	projMobile [][]float64 // descriptorDim x 1280
}

// descriptorDim is the size of the hidden content descriptor the simulated
// embeddings project from: 7 scalar statistics + the class histogram.
const descriptorDim = 7 + vid.NumClasses

// NewExtractor builds an extractor whose simulated embedding weights are
// derived from the seed.
func NewExtractor(seed int64) *Extractor {
	rng := rand.New(rand.NewSource(seed))
	mk := func(out int) [][]float64 {
		m := make([][]float64, descriptorDim)
		for i := range m {
			m[i] = make([]float64, out)
			for j := range m[i] {
				m[i][j] = rng.NormFloat64() / math.Sqrt(float64(descriptorDim))
			}
		}
		return m
	}
	return &Extractor{projResNet: mk(1024), projMobile: mk(1280)}
}

// Extract computes the feature vector of kind k for frame f of video v.
// The returned slice is freshly allocated with length SpecOf(k).Dim.
func (e *Extractor) Extract(k Kind, v *vid.Video, f vid.Frame) []float64 {
	switch k {
	case Light:
		return LightVector(v, f)
	case HoC:
		return HoCVector(raster.Render(v, f, RasterSize, RasterSize))
	case HOG:
		return HOGVector(raster.Render(v, f, RasterSize, RasterSize))
	case ResNet50:
		return e.embed(v, f, e.projResNet, 11)
	case CPoP:
		return CPoPVector(v, f)
	case MobileNetV2:
		return e.embed(v, f, e.projMobile, 13)
	}
	panic(fmt.Sprintf("feat: unknown kind %d", k))
}

// LightVector returns the paper's 4-dim light-weight feature: height,
// width, number of objects, averaged object size. Dimensions are scaled
// to comparable magnitudes so downstream models condition well.
func LightVector(v *vid.Video, f vid.Frame) []float64 {
	return LightVectorInto(nil, v, f)
}

// LightVectorInto writes the light features into dst (grown only when
// its capacity is short) and returns it resized to the light dimension —
// the allocation-free variant for the scheduler's per-GoF hot path.
func LightVectorInto(dst []float64, v *vid.Video, f vid.Frame) []float64 {
	st := v.Stats(f)
	short := v.ShortSide()
	if cap(dst) < 4 {
		dst = make([]float64, 4)
	}
	dst = dst[:4]
	dst[0] = float64(st.Height) / 1000.0
	dst[1] = float64(st.Width) / 1000.0
	dst[2] = float64(st.ObjectCount) / 10.0
	dst[3] = st.MeanSize / short
	return dst
}

// descriptor builds the hidden content descriptor the simulated neural
// embeddings observe. It reads the video's generating profile — this is
// the stand-in for what a real CNN would infer from pixels.
func descriptor(v *vid.Video, f vid.Frame) []float64 {
	st := v.Stats(f)
	short := v.ShortSide()
	d := make([]float64, 0, descriptorDim)
	d = append(d,
		float64(st.ObjectCount)/10.0,
		st.MeanSize/short,
		st.MeanSpeed/20.0,
		v.Profile.Clutter,
		v.Profile.OcclusionRate*50.0,
		v.Profile.SizeFrac,
		v.Profile.Speed/20.0,
	)
	d = append(d, vid.ClassHistogram(f)...)
	return d
}

// embed projects the content descriptor through the seeded weight matrix,
// applies tanh, and adds small deterministic per-frame noise, simulating
// a pooled CNN embedding.
func (e *Extractor) embed(v *vid.Video, f vid.Frame, proj [][]float64, salt int64) []float64 {
	d := descriptor(v, f)
	out := make([]float64, len(proj[0]))
	for i, di := range d {
		if di == 0 {
			continue
		}
		row := proj[i]
		for j := range out {
			out[j] += di * row[j]
		}
	}
	noise := rand.New(rand.NewSource(v.Seed*1000003 + int64(f.Index)*31 + salt))
	for j := range out {
		out[j] = math.Tanh(out[j]) + noise.NormFloat64()*0.02
	}
	return out
}

// CPoPVector returns the 31-dim Class-Predictions-on-Proposal feature:
// average prediction logits over region proposals, one entry per class
// plus a background class (index 30). We synthesize it as the softened
// ground-truth class histogram plus proposal noise, with the background
// mass reflecting how much of the frame is uncovered.
func CPoPVector(v *vid.Video, f vid.Frame) []float64 {
	out := make([]float64, vid.NumClasses+1)
	hist := vid.ClassHistogram(f)
	var covered float64
	frameArea := float64(v.Width) * float64(v.Height)
	for _, o := range f.Objects {
		covered += o.Box.Area()
	}
	coverFrac := math.Min(covered/frameArea, 1)
	noise := rand.New(rand.NewSource(v.Seed*999983 + int64(f.Index)*17))
	for c := 0; c < vid.NumClasses; c++ {
		out[c] = 0.8*hist[c]*coverFrac + math.Abs(noise.NormFloat64())*0.02
	}
	out[vid.NumClasses] = 1 - coverFrac + math.Abs(noise.NormFloat64())*0.02
	return out
}
