package glm

import (
	"math"
	"math/rand"
	"testing"
)

func TestIdentityLinkRecoversLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var ds Dataset
	for i := 0; i < 400; i++ {
		x := []float64{rng.Float64() * 4, rng.Float64() * 2}
		y := 3 + 2*x[0] - 1.5*x[1] + rng.NormFloat64()*0.05
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, y)
	}
	m, err := Fitter{Family: Gaussian, Link: LinkIdentity}.Fit(&ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-2) > 0.05 || math.Abs(m.Coef[1]+1.5) > 0.05 ||
		math.Abs(m.Intercept-3) > 0.05 {
		t.Fatalf("identity fit off: coef=%v intercept=%v", m.Coef, m.Intercept)
	}
	if m.ResidVar <= 0 || m.ResidVar > 0.01 {
		t.Fatalf("residual variance %v, want ~0.0025", m.ResidVar)
	}
}

func TestLogLinkRecoversMultiplicativeModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var ds Dataset
	// y = 10 * exp(0.8*x0) * noise — multiplicative contention shape.
	for i := 0; i < 500; i++ {
		x := []float64{rng.Float64() * 2}
		y := 10 * math.Exp(0.8*x[0]) * (1 + rng.NormFloat64()*0.02)
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, y)
	}
	m, err := Fitter{Family: Gaussian, Link: LinkLog}.Fit(&ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-0.8) > 0.05 {
		t.Fatalf("log-link slope %v, want ~0.8", m.Coef[0])
	}
	if math.Abs(m.Intercept-math.Log(10)) > 0.05 {
		t.Fatalf("log-link intercept %v, want ~%v", m.Intercept, math.Log(10))
	}
	got := m.Predict([]float64{1})
	want := 10 * math.Exp(0.8)
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("log-link prediction %v, want ~%v", got, want)
	}
}

func TestLogisticRecoversFailureProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var ds Dataset
	// P(fail) = logistic(-2 + 3*x).
	for i := 0; i < 4000; i++ {
		x := []float64{rng.Float64() * 2}
		p := 1 / (1 + math.Exp(-(-2 + 3*x[0])))
		y := 0.0
		if rng.Float64() < p {
			y = 1
		}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, y)
	}
	m, err := Fitter{Family: Binomial}.Fit(&ds)
	if err != nil {
		t.Fatal(err)
	}
	if m.Link != LinkLogit {
		t.Fatalf("binomial family should force logit link, got %v", m.Link)
	}
	for _, x := range []float64{0.2, 1.0, 1.8} {
		want := 1 / (1 + math.Exp(-(-2 + 3*x)))
		got := m.Predict([]float64{x})
		if math.Abs(got-want) > 0.06 {
			t.Fatalf("logistic prediction at x=%v: got %v want %v", x, got, want)
		}
	}
}

func TestCollinearDesignDoesNotNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var ds Dataset
	for i := 0; i < 100; i++ {
		x0 := rng.Float64()
		// Second column duplicates the first; third is constant zero.
		ds.X = append(ds.X, []float64{x0, x0, 0})
		ds.Y = append(ds.Y, 1+4*x0+rng.NormFloat64()*0.01)
	}
	m, err := Fitter{Family: Gaussian}.Fit(&ds)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range m.Coef {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("coef[%d] = %v on collinear design", i, c)
		}
	}
	// The duplicated columns split the true slope but predictions must
	// still be right.
	got := m.Predict([]float64{0.5, 0.5, 0})
	if math.Abs(got-3) > 0.05 {
		t.Fatalf("collinear prediction %v, want ~3", got)
	}
}

func TestNormalQuantileAndCDF(t *testing.T) {
	cases := []struct{ q, z float64 }{
		{0.5, 0},
		{0.95, 1.6448536269514722},
		{0.975, 1.959963984540054},
		{0.99, 2.3263478740408408},
		{0.05, -1.6448536269514722},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.q); math.Abs(got-c.z) > 1e-6 {
			t.Fatalf("NormalQuantile(%v) = %v, want %v", c.q, got, c.z)
		}
		if got := NormalCDF(c.z); math.Abs(got-c.q) > 1e-9 {
			t.Fatalf("NormalCDF(%v) = %v, want %v", c.z, got, c.q)
		}
	}
	// Clamped, not NaN, at the edges.
	if z := NormalQuantile(0); math.IsNaN(z) || !math.IsInf(z, 0) && z > -6 {
		t.Fatalf("NormalQuantile(0) = %v, want large negative finite", z)
	}
	if z := NormalQuantile(1); math.IsNaN(z) || z < 6 {
		t.Fatalf("NormalQuantile(1) = %v, want large positive finite", z)
	}
}

func TestVarAcc(t *testing.T) {
	var a VarAcc
	if a.Std() != 0 {
		t.Fatal("zero-value VarAcc must report zero std")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		a.Add(x)
	}
	if math.Abs(a.Mean-5) > 1e-12 {
		t.Fatalf("mean %v, want 5", a.Mean)
	}
	if math.Abs(a.Var()-4) > 1e-12 {
		t.Fatalf("var %v, want 4 (population)", a.Var())
	}
	w := a.N()
	a.Forget(0.5)
	if a.N() >= w {
		t.Fatal("Forget must shrink the effective weight")
	}
	var s VarAcc
	s.Seed(100, 9)
	if math.Abs(s.Std()-3) > 1e-12 {
		t.Fatalf("seeded std %v, want 3", s.Std())
	}
}

func TestAttainProb(t *testing.T) {
	if p := AttainProb(10, 0, 20); p != 1 {
		t.Fatalf("zero-std feasible: %v", p)
	}
	if p := AttainProb(30, 0, 20); p != 0 {
		t.Fatalf("zero-std infeasible: %v", p)
	}
	if p := AttainProb(20, 5, 20); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("at-budget prob %v, want 0.5", p)
	}
	if p := AttainProb(10, 5, 20); math.Abs(p-NormalCDF(2)) > 1e-12 {
		t.Fatalf("2-sigma prob %v", p)
	}
}

func TestCalibration(t *testing.T) {
	c := NewCalibration(0.95)
	for i := 0; i < 95; i++ {
		c.Observe("b", true)
	}
	for i := 0; i < 5; i++ {
		c.Observe("b", false)
	}
	cov, n := c.Coverage("b")
	if n != 100 || math.Abs(cov-0.95) > 1e-12 {
		t.Fatalf("coverage %v over %d", cov, n)
	}
	if _, n := c.Coverage("missing"); n != 0 {
		t.Fatal("missing key should report zero samples")
	}
	if got := c.Report(); got == "" {
		t.Fatal("empty report")
	}
}
