package glm

import (
	"fmt"
	"sort"
	"strings"
)

// Calibration tallies empirical interval coverage per key (the serving
// layers key by branch name): Observe records whether one realized
// outcome landed inside its predicted q-quantile interval, and Coverage
// answers the fraction that did. A well-calibrated p95 interval covers
// ~95% of outcomes; the CI smoke gate asserts coverage in [0.90, 0.99].
type Calibration struct {
	Quantile float64
	counts   map[string]*covCount
}

type covCount struct {
	n      int
	within int
}

// NewCalibration returns an empty tally for the given quantile.
func NewCalibration(q float64) *Calibration {
	return &Calibration{Quantile: q, counts: map[string]*covCount{}}
}

// Observe records one (realized <= predicted-quantile) outcome for key.
func (c *Calibration) Observe(key string, within bool) {
	cc := c.counts[key]
	if cc == nil {
		cc = &covCount{}
		c.counts[key] = cc
	}
	cc.n++
	if within {
		cc.within++
	}
}

// Coverage returns the empirical coverage for key and the sample count.
func (c *Calibration) Coverage(key string) (float64, int) {
	cc := c.counts[key]
	if cc == nil || cc.n == 0 {
		return 0, 0
	}
	return float64(cc.within) / float64(cc.n), cc.n
}

// Overall returns the pooled coverage across every key.
func (c *Calibration) Overall() (float64, int) {
	var n, within int
	for _, cc := range c.counts {
		n += cc.n
		within += cc.within
	}
	if n == 0 {
		return 0, 0
	}
	return float64(within) / float64(n), n
}

// Keys returns the observed keys in sorted order.
func (c *Calibration) Keys() []string {
	out := make([]string, 0, len(c.counts))
	for k := range c.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Report renders the per-key coverage table — the calibration report
// the serving CLIs print after a risk-admitted run.
func (c *Calibration) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p%.0f interval coverage (target %.2f):\n", 100*c.Quantile, c.Quantile)
	for _, k := range c.Keys() {
		cov, n := c.Coverage(k)
		fmt.Fprintf(&b, "  %-24s %6.2f%%  (%d decisions)\n", k, 100*cov, n)
	}
	cov, n := c.Overall()
	fmt.Fprintf(&b, "  %-24s %6.2f%%  (%d decisions)\n", "overall", 100*cov, n)
	return b.String()
}
