package glm

import "math"

// NormalQuantile returns z(q), the standard-normal inverse CDF, via
// Acklam's rational approximation (relative error below 1.15e-9 —
// far inside the noise of any latency model here). q outside (0,1) is
// clamped to the representable range so callers can pass user-supplied
// quantiles without guarding.
func NormalQuantile(q float64) float64 {
	const (
		lo = 1e-12
		hi = 1 - 1e-12
	)
	if q < lo {
		q = lo
	}
	if q > hi {
		q = hi
	}
	// Coefficients of Acklam's approximation.
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00}
	)
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case q < pLow:
		r := math.Sqrt(-2 * math.Log(q))
		return (((((c[0]*r+c[1])*r+c[2])*r+c[3])*r+c[4])*r + c[5]) /
			((((d[0]*r+d[1])*r+d[2])*r+d[3])*r + 1)
	case q > pHigh:
		r := math.Sqrt(-2 * math.Log(1-q))
		return -(((((c[0]*r+c[1])*r+c[2])*r+c[3])*r+c[4])*r + c[5]) /
			((((d[0]*r+d[1])*r+d[2])*r+d[3])*r + 1)
	default:
		r := q - 0.5
		s := r * r
		return (((((a[0]*s+a[1])*s+a[2])*s+a[3])*s+a[4])*s + a[5]) * r /
			(((((b[0]*s+b[1])*s+b[2])*s+b[3])*s+b[4])*s + 1)
	}
}

// NormalCDF returns Phi(z), the standard-normal CDF.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// AttainProb returns P(latency <= budget) under a normal latency model
// with the given mean and standard deviation. A zero or negative std
// degrades to the point-estimate verdict (1 if mean fits, 0 if not),
// which is exactly the legacy mean-admission behavior.
func AttainProb(mean, std, budget float64) float64 {
	if std <= 0 {
		if mean <= budget {
			return 1
		}
		return 0
	}
	return NormalCDF((budget - mean) / std)
}
