// Package glm is the risk-aware prediction core: generalized linear
// models with a statmodel-style separation between the data (Dataset),
// the model family and link (Family, Link), and the fitting procedure
// (Fitter, iteratively reweighted least squares). The scheduler's
// legacy per-branch latency fits are plain least squares — point
// estimates — which is exactly why tail latency blows through the SLO
// under contention: mobile-GPU contention effects are multiplicative
// and heavy-tailed, so the mean systematically under-states risk. This
// package supplies the pieces the decision layers need to reason about
// "P(L(b,f) <= SLO) >= q" instead of the mean:
//
//   - Gaussian regression under an identity or log link (the log link
//     models multiplicative contention effects additively in the linear
//     predictor), fit by IRLS with a ridge fallback on rank-deficient
//     designs;
//   - logistic (binomial) regression for tracker-failure probability;
//   - per-branch residual-variance accumulators (VarAcc) that turn a
//     point prediction into a prediction interval; and
//   - the normal quantile/CDF helpers that convert a variance into a
//     q-quantile latency margin or an SLO-attainment probability.
package glm

import (
	"errors"
	"fmt"
	"math"
)

// Family selects the response distribution.
type Family int

const (
	// Gaussian is ordinary regression: continuous response, normal
	// errors. Pair with LinkIdentity for additive effects or LinkLog
	// for multiplicative ones.
	Gaussian Family = iota
	// Binomial is logistic regression: a {0,1} response modeling an
	// event probability. Pair with LinkLogit.
	Binomial
)

// Link maps the linear predictor eta to the response mean mu.
type Link int

const (
	// LinkIdentity: mu = eta.
	LinkIdentity Link = iota
	// LinkLog: mu = exp(eta) — effects multiply on the response scale.
	LinkLog
	// LinkLogit: mu = 1/(1+exp(-eta)) — the canonical binomial link.
	LinkLogit
)

// String names the link for reports.
func (l Link) String() string {
	switch l {
	case LinkIdentity:
		return "identity"
	case LinkLog:
		return "log"
	case LinkLogit:
		return "logit"
	}
	return fmt.Sprintf("link(%d)", int(l))
}

// Dataset is the design matrix and response a fit consumes. Rows of X
// are observations; an intercept column is implicit (the fitter appends
// it), matching internal/linreg's convention. Weights are optional
// per-observation weights (nil = unweighted).
type Dataset struct {
	X       [][]float64
	Y       []float64
	Weights []float64
}

// Validate checks the dataset's shape.
func (d *Dataset) Validate() error {
	if len(d.X) == 0 || len(d.X) != len(d.Y) {
		return errors.New("glm: need equal, non-zero numbers of rows and responses")
	}
	if d.Weights != nil && len(d.Weights) != len(d.Y) {
		return errors.New("glm: weights length mismatch")
	}
	p := len(d.X[0])
	for _, r := range d.X {
		if len(r) != p {
			return errors.New("glm: ragged design matrix")
		}
	}
	return nil
}

// Fitter holds the IRLS configuration. The zero value is usable:
// defaults are applied on Fit.
type Fitter struct {
	Family Family
	Link   Link
	// Ridge is the L2 penalty on the non-intercept coefficients. Zero
	// means "as small as numerically safe": the fitter starts at 1e-8
	// and escalates on rank-deficient designs instead of returning NaN.
	Ridge float64
	// MaxIter bounds the IRLS iterations (default 60). Identity-link
	// Gaussian fits converge in one step.
	MaxIter int
	// Tol is the relative deviance-change convergence threshold
	// (default 1e-9).
	Tol float64
}

// Model is a fitted GLM: coefficients on the original (unstandardized)
// features plus the link that maps the linear predictor to the
// response scale. All fields are exported so models survive gob
// round-trips alongside sched.Models.
type Model struct {
	Coef      []float64
	Intercept float64
	Link      Link
	Family    Family
	// ResidVar is the training-set residual variance on the response
	// scale (Gaussian families only) — the seed for prediction
	// intervals before any online samples arrive.
	ResidVar float64
	// N is the number of training observations.
	N int
}

// LinearPredictor returns eta = x'beta + intercept.
func (m *Model) LinearPredictor(x []float64) float64 {
	eta := m.Intercept
	for i, c := range m.Coef {
		if i < len(x) {
			eta += c * x[i]
		}
	}
	return eta
}

// Predict returns the response-scale mean mu = g^{-1}(eta).
func (m *Model) Predict(x []float64) float64 {
	return invLink(m.Link, m.LinearPredictor(x))
}

func invLink(l Link, eta float64) float64 {
	switch l {
	case LinkLog:
		// Clamp so a wild extrapolation cannot overflow to +Inf.
		if eta > 50 {
			eta = 50
		}
		return math.Exp(eta)
	case LinkLogit:
		return 1 / (1 + math.Exp(-eta))
	}
	return eta
}

// mu'(eta) — derivative of the inverse link.
func dInvLink(l Link, eta float64) float64 {
	switch l {
	case LinkLog:
		if eta > 50 {
			eta = 50
		}
		return math.Exp(eta)
	case LinkLogit:
		mu := 1 / (1 + math.Exp(-eta))
		return mu * (1 - mu)
	}
	return 1
}

// variance function V(mu) of the family.
func varFunc(f Family, mu float64) float64 {
	if f == Binomial {
		v := mu * (1 - mu)
		if v < 1e-9 {
			v = 1e-9
		}
		return v
	}
	return 1
}

// Fit runs IRLS on the dataset and returns the fitted model. Designs
// with collinear or constant columns do not produce NaN coefficients:
// the weighted normal equations are solved with an escalating ridge
// fallback, so the minimum-norm-ish ridge solution is returned instead.
func (f Fitter) Fit(ds *Dataset) (*Model, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if f.MaxIter <= 0 {
		f.MaxIter = 60
	}
	if f.Tol <= 0 {
		f.Tol = 1e-9
	}
	ridge := f.Ridge
	if ridge <= 0 {
		ridge = 1e-8
	}
	link := f.Link
	if f.Family == Binomial {
		link = LinkLogit
	}

	n, p := len(ds.X), len(ds.X[0])
	beta := make([]float64, p+1) // beta[p] is the intercept
	// Start the log link from the mean response so the first working
	// response is finite.
	if link == LinkLog {
		var mean float64
		for _, y := range ds.Y {
			mean += y
		}
		mean /= float64(n)
		if mean < 1e-6 {
			mean = 1e-6
		}
		beta[p] = math.Log(mean)
	}

	eta := make([]float64, n)
	w := make([]float64, n)
	z := make([]float64, n)
	prevDev := math.Inf(1)
	for iter := 0; iter < f.MaxIter; iter++ {
		dev := 0.0
		for i, row := range ds.X {
			e := beta[p]
			for j, x := range row {
				e += beta[j] * x
			}
			eta[i] = e
			mu := invLink(link, e)
			d := dInvLink(link, e)
			if d < 1e-9 {
				d = 1e-9
			}
			v := varFunc(f.Family, mu)
			// IRLS working weight and working response.
			wi := d * d / v
			if ds.Weights != nil {
				wi *= ds.Weights[i]
			}
			w[i] = wi
			z[i] = e + (ds.Y[i]-mu)/d
			r := ds.Y[i] - mu
			dev += r * r / v
		}
		nb, err := solveWeightedRidge(ds.X, z, w, ridge)
		if err != nil {
			return nil, err
		}
		beta = nb
		if math.Abs(prevDev-dev) <= f.Tol*(math.Abs(dev)+1e-12) {
			break
		}
		prevDev = dev
		if f.Family == Gaussian && link == LinkIdentity {
			break // one weighted LS step is exact
		}
	}

	m := &Model{
		Coef:      append([]float64(nil), beta[:p]...),
		Intercept: beta[p],
		Link:      link,
		Family:    f.Family,
		N:         n,
	}
	if f.Family == Gaussian {
		var ss float64
		for i, row := range ds.X {
			r := ds.Y[i] - m.Predict(row)
			ss += r * r
		}
		denom := float64(n - p - 1)
		if denom < 1 {
			denom = 1
		}
		m.ResidVar = ss / denom
	}
	return m, nil
}

// solveWeightedRidge solves the weighted ridge normal equations
// (X'WX + lambda I) beta = X'Wz with the intercept appended last and
// unpenalized. On a singular or non-finite solve it escalates lambda
// up to 1e-2 before giving up — collinear designs get the ridge
// solution, never NaN.
func solveWeightedRidge(X [][]float64, z, w []float64, lambda float64) ([]float64, error) {
	p := len(X[0])
	d := p + 1
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d)
	}
	b := make([]float64, d)
	row := make([]float64, d)
	for i, xr := range X {
		copy(row, xr)
		row[p] = 1
		wi := w[i]
		for j := 0; j < d; j++ {
			if row[j] == 0 {
				continue
			}
			wj := wi * row[j]
			for k := j; k < d; k++ {
				a[j][k] += wj * row[k]
			}
			b[j] += wj * z[i]
		}
	}
	for j := 0; j < d; j++ {
		for k := 0; k < j; k++ {
			a[j][k] = a[k][j]
		}
	}
	for l := lambda; l <= 1e-2; l *= 100 {
		beta, err := solveRidge(a, b, l, p)
		if err == nil && allFinite(beta) {
			return beta, nil
		}
	}
	return nil, errors.New("glm: design matrix unsalvageably singular")
}

// solveRidge copies a, adds l to the non-intercept diagonal, and runs
// Gaussian elimination with partial pivoting.
func solveRidge(a [][]float64, b []float64, l float64, p int) ([]float64, error) {
	d := len(b)
	m := make([][]float64, d)
	for i := range m {
		m[i] = make([]float64, d+1)
		copy(m[i], a[i])
		m[i][d] = b[i]
	}
	for j := 0; j < p; j++ {
		m[j][j] += l
	}
	for col := 0; col < d; col++ {
		piv := col
		for r := col + 1; r < d; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, errors.New("glm: singular")
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < d; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= d; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	beta := make([]float64, d)
	for i := d - 1; i >= 0; i-- {
		s := m[i][d]
		for j := i + 1; j < d; j++ {
			s -= m[i][j] * beta[j]
		}
		beta[i] = s / m[i][i]
	}
	return beta, nil
}

func allFinite(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
