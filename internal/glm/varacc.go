package glm

import "math"

// VarAcc is a per-branch residual-variance accumulator: Welford's
// online algorithm with an optional exponential forgetting step so the
// interval width tracks drift. All fields are exported so accumulators
// ride along inside sched.Models through gob save/load; the zero value
// means "no variance information" and every reader degrades to the
// point estimate (Std() == 0), which is how model bundles saved before
// this field existed keep loading and predicting unchanged.
type VarAcc struct {
	// W is the effective sample weight (the count, decayed by Forget).
	W float64
	// Mean is the running residual mean.
	Mean float64
	// M2 is the running sum of squared deviations (times weight).
	M2 float64
}

// Add folds one residual into the accumulator.
func (a *VarAcc) Add(x float64) {
	a.W++
	d := x - a.Mean
	a.Mean += d / a.W
	a.M2 += d * (x - a.Mean)
}

// Forget decays the accumulator's effective weight by lambda in (0,1],
// so subsequent Adds dominate old history — the "one extra accumulator"
// update the online refit performs per branch. Lambda outside (0,1] is
// a no-op.
func (a *VarAcc) Forget(lambda float64) {
	if lambda <= 0 || lambda >= 1 {
		return
	}
	a.W *= lambda
	a.M2 *= lambda
}

// Var returns the residual variance, or 0 with fewer than two effective
// samples.
func (a *VarAcc) Var() float64 {
	if a.W < 2 {
		return 0
	}
	return a.M2 / a.W
}

// Std returns the residual standard deviation (0 when unknown).
func (a *VarAcc) Std() float64 { return math.Sqrt(a.Var()) }

// N returns the effective sample weight.
func (a *VarAcc) N() float64 { return a.W }

// Seed initializes the accumulator from an offline fit: n observations
// with the given residual variance around a zero-mean residual.
func (a *VarAcc) Seed(n int, variance float64) {
	if n <= 0 || variance <= 0 {
		*a = VarAcc{}
		return
	}
	a.W = float64(n)
	a.Mean = 0
	a.M2 = variance * float64(n)
}
