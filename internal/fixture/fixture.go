// Package fixture builds shared, cached evaluation setups (corpus +
// trained scheduler models) for tests, benchmarks and examples. Training
// the scheduler is the expensive offline phase, so each setup is built at
// most once per process.
package fixture

import (
	"sync"

	"litereconfig/internal/mbek"
	"litereconfig/internal/sched"
	"litereconfig/internal/track"
	"litereconfig/internal/vid"
)

// Setup bundles a corpus with models trained on its SchedTrain split.
type Setup struct {
	Corpus *vid.Corpus
	Models *sched.Models
	Cfg    sched.Config
}

// SmallBranches is a compact branch space that still spans the
// accuracy-latency envelope: 2 shapes x 2 nprops x (det-only + 2 trackers
// x 2 GoF x 1 ds) = 20 branches.
func SmallBranches() []mbek.Branch {
	var out []mbek.Branch
	for _, shape := range []int{224, 576} {
		for _, np := range []int{1, 100} {
			out = append(out, mbek.Branch{Shape: shape, NProp: np, GoF: 1,
				Tracker: track.KCF, DS: 1})
			for _, tk := range []track.Kind{track.MedianFlow, track.KCF} {
				for _, gof := range []int{4, 20} {
					out = append(out, mbek.Branch{Shape: shape, NProp: np,
						Tracker: tk, GoF: gof, DS: 1})
				}
			}
		}
	}
	return out
}

// MediumBranches is the benchmark branch space: 4 shapes x 3 nprops x
// (det-only + 4 trackers x 3 GoF x 2 ds) = 300 branches, preserving the
// knob structure of the full 528-branch space at lower training cost.
func MediumBranches() []mbek.Branch {
	var out []mbek.Branch
	for _, shape := range []int{224, 320, 448, 576} {
		for _, np := range []int{1, 20, 100} {
			out = append(out, mbek.Branch{Shape: shape, NProp: np, GoF: 1,
				Tracker: track.KCF, DS: 1})
			for _, tk := range track.Kinds() {
				for _, gof := range []int{4, 8, 20} {
					for _, ds := range []int{1, 4} {
						out = append(out, mbek.Branch{Shape: shape, NProp: np,
							Tracker: tk, GoF: gof, DS: ds})
					}
				}
			}
		}
	}
	return out
}

var (
	smallOnce sync.Once
	smallSet  *Setup
	smallErr  error

	fullOnce sync.Once
	fullSet  *Setup
	fullErr  error
)

// Small returns a fast fixture for unit tests: a small corpus, the
// 20-branch space, and small predictor networks.
func Small() (*Setup, error) {
	smallOnce.Do(func() {
		corpus := vid.NewCorpus(vid.CorpusConfig{
			DetTrain: 8, SchedTrain: 60, Val: 8,
			Gen: vid.GenConfig{Frames: 120},
		})
		cfg := sched.Config{
			Branches:   SmallBranches(),
			SnippetLen: 60, SnippetStride: 10,
			Seed: 11, ProjDim: 8, Hidden: []int{16}, Epochs: 600,
			SketchDim: 48,
			BudgetsMS: []float64{8, 15, 25, 33.3, 50, 90},
		}
		ds := sched.Collect(cfg, corpus.SchedTrain)
		m, err := sched.Train(cfg, ds)
		if err != nil {
			smallErr = err
			return
		}
		smallSet = &Setup{Corpus: corpus, Models: m, Cfg: cfg}
	})
	return smallSet, smallErr
}

// Full returns the benchmark fixture: the default corpus sizes of the
// evaluation (Sec. 5.2's split structure at reduced scale), the
// 300-branch space, and the default network sizes. Building it takes
// tens of seconds; benches share the cached result.
func Full() (*Setup, error) {
	fullOnce.Do(func() {
		corpus := vid.NewCorpus(vid.CorpusConfig{
			DetTrain: 8, SchedTrain: 20, Val: 20,
			Gen: vid.GenConfig{Frames: 240},
		})
		cfg := sched.Config{
			Branches:   MediumBranches(),
			SnippetLen: 100, SnippetStride: 20,
			Seed: 7, ProjDim: 24, Hidden: []int{48}, Epochs: 250,
		}
		ds := sched.Collect(cfg, corpus.SchedTrain)
		m, err := sched.Train(cfg, ds)
		if err != nil {
			fullErr = err
			return
		}
		fullSet = &Setup{Corpus: corpus, Models: m, Cfg: cfg}
	})
	return fullSet, fullErr
}
