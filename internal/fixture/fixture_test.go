package fixture

import (
	"testing"
)

func TestSmallFixture(t *testing.T) {
	s, err := Small()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Models.Branches) != len(SmallBranches()) {
		t.Fatalf("branches = %d", len(s.Models.Branches))
	}
	if len(s.Corpus.Val) == 0 {
		t.Fatal("empty val corpus")
	}
	// Cached: second call returns the identical setup.
	s2, err := Small()
	if err != nil || s2 != s {
		t.Fatal("fixture not cached")
	}
}

func TestFullFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("full fixture build skipped in -short mode")
	}
	s, err := Full()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Models.Branches) != len(MediumBranches()) {
		t.Fatalf("branches = %d", len(s.Models.Branches))
	}
}

func TestBranchSpaces(t *testing.T) {
	if len(SmallBranches()) != 20 {
		t.Fatalf("small = %d, want 20", len(SmallBranches()))
	}
	if len(MediumBranches()) != 300 {
		t.Fatalf("medium = %d, want 300", len(MediumBranches()))
	}
}
