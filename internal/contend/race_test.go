package contend

import (
	"sync"
	"testing"
)

// TestWalkConcurrentLevel is the -race regression for Walk's lazy memo:
// one Walk shared as an external contention source is queried from many
// goroutines at once (as concurrently-served streams do), and every
// goroutine must see the same deterministic levels.
func TestWalkConcurrentLevel(t *testing.T) {
	w := &Walk{Seed: 7}
	want := make([]float64, 200)
	for i := range want {
		want[i] = w.Level(i)
	}
	w2 := &Walk{Seed: 7}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Mixed access orders: forward, backward, strided.
			for i := 0; i < 200; i++ {
				frame := i
				switch g % 3 {
				case 1:
					frame = 199 - i
				case 2:
					frame = (i * 37) % 200
				}
				if got := w2.Level(frame); got != want[frame] {
					select {
					case errs <- "level mismatch under concurrency":
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

func TestCoupledFloorSource(t *testing.T) {
	cg := Coupled{
		Alpha:       -1, // uncoupled: only the floor applies
		Floor:       0.9,
		FloorSource: Trace{Levels: []float64{0.1, 0.2, 0.3}},
	}
	if got := cg.Level(1); got != 0.2 {
		t.Fatalf("FloorSource ignored: %v", got)
	}
	// Exhausted trace holds its last level; the constant Floor stays
	// ignored while a source is installed.
	if got := cg.Level(100); got != 0.3 {
		t.Fatalf("exhausted trace level = %v, want 0.3", got)
	}
}
