package contend

import "testing"

func TestFixed(t *testing.T) {
	g := Fixed{G: 0.5}
	for _, f := range []int{0, 10, 1000} {
		if g.Level(f) != 0.5 {
			t.Fatalf("Fixed level at %d = %v", f, g.Level(f))
		}
	}
	if (Fixed{G: -1}).Level(0) != 0 {
		t.Fatal("negative level should clamp to 0")
	}
	if (Fixed{G: 2}).Level(0) != 0.99 {
		t.Fatal("over-1 level should clamp to 0.99")
	}
	if (Fixed{G: 0.5}).Name() != "fixed50%" {
		t.Fatalf("name = %q", (Fixed{G: 0.5}).Name())
	}
}

func TestPhasedCycles(t *testing.T) {
	p := Phased{Phases: []Phase{{Frames: 10, G: 0}, {Frames: 5, G: 0.5}}}
	if p.Level(0) != 0 || p.Level(9) != 0 {
		t.Fatal("first phase should be 0")
	}
	if p.Level(10) != 0.5 || p.Level(14) != 0.5 {
		t.Fatal("second phase should be 0.5")
	}
	if p.Level(15) != 0 {
		t.Fatal("schedule should cycle")
	}
	if p.Level(25) != 0.5 {
		t.Fatal("cycle offset wrong")
	}
	if p.Level(-1) != 0 {
		t.Fatal("negative frame should be 0")
	}
	if (Phased{}).Level(5) != 0 {
		t.Fatal("empty schedule should be 0")
	}
	if p.Name() != "phased2" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestWalkBoundedAndMemoized(t *testing.T) {
	w := &Walk{Seed: 3}
	for f := 0; f < 500; f++ {
		l := w.Level(f)
		if l < 0 || l > 0.8 {
			t.Fatalf("walk level %v at %d out of [0,0.8]", l, f)
		}
	}
	// Memoized: re-querying must return identical values.
	first := w.Level(123)
	if w.Level(123) != first {
		t.Fatal("walk not memoized")
	}
	// Deterministic across instances with same seed.
	w2 := &Walk{Seed: 3}
	for f := 0; f < 100; f++ {
		if w.Level(f) != w2.Level(f) {
			t.Fatalf("walk not deterministic at frame %d", f)
		}
	}
	// Out-of-order queries are consistent with in-order ones.
	w3 := &Walk{Seed: 3}
	l200 := w3.Level(200)
	if l200 != w.Level(200) {
		t.Fatal("out-of-order walk query inconsistent")
	}
	if w.Level(-5) != 0 {
		t.Fatal("negative frame should be 0")
	}
	if w.Name() != "walk" {
		t.Fatalf("name = %q", w.Name())
	}
}

func TestWalkActuallyMoves(t *testing.T) {
	w := &Walk{Seed: 9, Step: 0.1}
	varies := false
	prev := w.Level(0)
	for f := 1; f < 200; f++ {
		if w.Level(f) != prev {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("walk never changed level")
	}
}

func TestTraceReplaysAndClamps(t *testing.T) {
	tr := Trace{Levels: []float64{0, 0.3, 1.7, -0.2, 0.5}}
	want := []float64{0, 0.3, 0.99, 0, 0.5}
	for f, w := range want {
		if got := tr.Level(f); got != w {
			t.Fatalf("Level(%d) = %v, want %v", f, got, w)
		}
	}
	// Past the end the trace holds the last recorded level.
	if tr.Level(5) != 0.5 || tr.Level(1000) != 0.5 {
		t.Fatal("trace must hold the last level past its end")
	}
	if tr.Level(-1) != 0 {
		t.Fatal("negative frame must read as zero")
	}
	if tr.Name() != "trace5" {
		t.Fatalf("name = %q", tr.Name())
	}
	var empty Trace
	if empty.Level(0) != 0 || empty.Level(7) != 0 {
		t.Fatal("empty trace must read as zero contention")
	}
}

func TestCoupledDerivesFromSource(t *testing.T) {
	occ := 0.0
	c := Coupled{Source: func(int) float64 { return occ }, Alpha: 0.5}
	if c.Level(0) != 0 {
		t.Fatal("no foreign occupancy should mean no contention")
	}
	occ = 0.8
	if got := c.Level(0); got != 0.4 {
		t.Fatalf("Level = %v, want 0.4", got)
	}
	occ = 5 // oversubscribed board
	if got := c.Level(0); got != 0.99 {
		t.Fatalf("Level = %v, want clamp at 0.99", got)
	}
	occ = -1 // defensive: a broken source must not produce negative levels
	if got := c.Level(0); got != 0 {
		t.Fatalf("Level = %v, want 0", got)
	}
	if c.Name() != "coupled" {
		t.Fatalf("name = %q", c.Name())
	}
}

func TestCoupledFloorAndDefaults(t *testing.T) {
	// A nil source with a floor behaves like Fixed at the floor.
	c := Coupled{Floor: 0.5}
	if got := c.Level(3); got != 0.5 {
		t.Fatalf("Level = %v, want floor 0.5", got)
	}
	// Default alpha is identity, and floor adds before clamping.
	c2 := Coupled{Source: func(int) float64 { return 0.3 }, Floor: 0.2}
	if got := c2.Level(0); got != 0.5 {
		t.Fatalf("Level = %v, want 0.5", got)
	}
	c3 := Coupled{Source: func(int) float64 { return 0.9 }, Floor: 0.9}
	if got := c3.Level(0); got != 0.99 {
		t.Fatalf("Level = %v, want clamp at 0.99", got)
	}
	// Negative alpha is an explicit zero: foreign occupancy is ignored and
	// only the floor applies.
	c4 := Coupled{Source: func(int) float64 { return 0.9 }, Alpha: -1, Floor: 0.2}
	if got := c4.Level(0); got != 0.2 {
		t.Fatalf("Level = %v, want floor-only 0.2 with negative alpha", got)
	}
}
