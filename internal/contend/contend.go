// Package contend implements the contention generator (CG) of Sec. 6: a
// stand-in for co-located applications competing for the mobile GPU. The
// paper's CG is tunable from 0% to 99% GPU contention; it evaluates the
// two representative levels 0% and 50%.
//
// A Generator maps a frame index to a contention level; the harness feeds
// that level into the latency clock before each frame. Fixed generators
// reproduce the paper's evaluation; Phased and Walk generators exercise
// the scheduler's reaction to contention changes (examples/contention).
package contend

import (
	"fmt"
	"math/rand"
	"sync"
)

// Generator yields the GPU contention level (in [0, 0.99]) in effect at a
// given frame index.
type Generator interface {
	// Level returns the contention level at the given frame.
	Level(frame int) float64
	// Name identifies the generator in logs and tables.
	Name() string
}

// Fixed holds contention constant, like the paper's `LiteReconfig_CG.py
// --GPU <pct>`.
type Fixed struct{ G float64 }

// Level implements Generator.
func (f Fixed) Level(int) float64 { return clamp(f.G) }

// Name implements Generator.
func (f Fixed) Name() string { return fmt.Sprintf("fixed%.0f%%", clamp(f.G)*100) }

// Phase is one segment of a phased schedule.
type Phase struct {
	Frames int     // duration of the phase in frames
	G      float64 // contention level during the phase
}

// Phased cycles through a sequence of phases, modeling background
// applications that start and stop.
type Phased struct{ Phases []Phase }

// Level implements Generator.
func (p Phased) Level(frame int) float64 {
	total := 0
	for _, ph := range p.Phases {
		total += ph.Frames
	}
	if total <= 0 || frame < 0 {
		return 0
	}
	pos := frame % total
	for _, ph := range p.Phases {
		if pos < ph.Frames {
			return clamp(ph.G)
		}
		pos -= ph.Frames
	}
	return 0
}

// Name implements Generator.
func (p Phased) Name() string { return fmt.Sprintf("phased%d", len(p.Phases)) }

// Walk is a seeded bounded random walk — a stress generator for tests and
// ablations, representing erratically varying background load.
type Walk struct {
	Seed int64
	Step float64 // per-frame step magnitude; defaults to 0.02
	Max  float64 // upper bound; defaults to 0.8

	// mu guards the lazy memoization: one Walk may be shared across
	// streams (and therefore goroutines) as an external contention
	// source, and an unsynchronized append both races and can hand a
	// caller a stale backing array.
	mu     sync.Mutex
	levels []float64
}

// Level implements Generator. Levels are generated lazily and memoized so
// repeated queries are consistent; the memo is mutex-guarded, so a Walk
// shared by concurrently-served streams is safe.
func (w *Walk) Level(frame int) float64 {
	if frame < 0 {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	step := w.Step
	if step == 0 {
		step = 0.02
	}
	max := w.Max
	if max == 0 {
		max = 0.8
	}
	if len(w.levels) == 0 {
		w.levels = append(w.levels, 0)
	}
	for len(w.levels) <= frame {
		// One RNG per step, seeded by the step index, so levels are
		// identical whether queried in order or at random.
		rng := rand.New(rand.NewSource(w.Seed + int64(len(w.levels))))
		prev := w.levels[len(w.levels)-1]
		next := prev + (rng.Float64()*2-1)*step
		if next < 0 {
			next = 0
		}
		if next > max {
			next = max
		}
		w.levels = append(w.levels, next)
	}
	return clamp(w.levels[frame])
}

// Name implements Generator.
func (w *Walk) Name() string { return "walk" }

// Trace replays a recorded per-frame contention trace — e.g. one logged
// from a real co-located workload or exported from a prior run. Levels
// are clamped like Fixed/Phased; frames past the end of the trace hold
// the last recorded level (an empty trace reads as zero contention).
type Trace struct{ Levels []float64 }

// Level implements Generator.
func (t Trace) Level(frame int) float64 {
	if len(t.Levels) == 0 || frame < 0 {
		return 0
	}
	if frame >= len(t.Levels) {
		frame = len(t.Levels) - 1
	}
	return clamp(t.Levels[frame])
}

// Name implements Generator.
func (t Trace) Name() string { return fmt.Sprintf("trace%d", len(t.Levels)) }

// Coupled derives a stream's contention from the GPU occupancy of the
// *other* streams sharing the board: in the multi-stream serving regime
// the co-located applications are not a synthetic generator but the
// sibling video pipelines themselves. The serving engine installs a
// Source reporting the foreign occupancy (sum of the other streams'
// GPU-busy fractions, normalized by the board's GPU slots).
type Coupled struct {
	// Source reports the aggregate foreign occupancy at a frame. Values
	// may exceed 1 on an oversubscribed board; the resulting level is
	// clamped to the generator range [0, 0.99].
	Source func(frame int) float64
	// Alpha scales occupancy into contention. Zero means 1 (identity); a
	// negative value means an explicit zero (foreign occupancy ignored,
	// only Floor applies).
	Alpha float64
	// Floor is a base contention level added before clamping, modeling
	// load external to the served streams.
	Floor float64
	// FloorSource, when non-nil, supplies a per-frame external floor
	// (e.g. a recorded Trace) instead of the constant Floor, which is
	// then ignored.
	FloorSource Generator
}

// Level implements Generator.
func (c Coupled) Level(frame int) float64 {
	alpha := c.Alpha
	if alpha == 0 {
		alpha = 1
	} else if alpha < 0 {
		alpha = 0
	}
	floor := c.Floor
	if c.FloorSource != nil {
		floor = c.FloorSource.Level(frame)
	}
	level := clamp(floor)
	if c.Source != nil {
		occ := c.Source(frame)
		if occ > 0 {
			level += alpha * occ
		}
	}
	return clamp(level)
}

// Name implements Generator.
func (c Coupled) Name() string { return "coupled" }

func clamp(g float64) float64 {
	if g < 0 {
		return 0
	}
	if g > 0.99 {
		return 0.99
	}
	return g
}
