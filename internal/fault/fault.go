// Package fault is the deterministic fault-injection subsystem: a
// seeded, per-stream schedule of adverse events that the pipeline and
// the serving engine must absorb without deadlocking or silently
// blowing the latency SLO. It models the failure modes a deployed
// LiteReconfig board actually faces beyond the paper's well-behaved
// contention generator (Sec. 6): latency spikes on the detector,
// tracker or feature-extraction path, heavy-feature extraction
// failures, contention bursts from co-located applications, whole
// stream stalls, and worker crashes.
//
// Determinism is the design constraint: every draw is keyed by
// (seed, class, frame[, feature]) through an order-independent hash, so
// a fixed seed yields the same fault schedule regardless of query
// order, and two runs of the same chaos configuration produce
// byte-identical decision traces. One-shot events (worker panics and
// explicit Plan entries) fire exactly once and stay fired, which keeps
// bounded retry of a failed round from re-triggering the same fault
// forever.
//
// An Injector belongs to one stream and is queried only from the
// goroutine currently running that stream (the serving engine's round
// barrier orders handoffs); it is not safe for concurrent use.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"litereconfig/internal/contend"
)

// Class identifies a fault family.
type Class int

// The injectable fault classes.
const (
	// LatencySpike charges extra simulated milliseconds at a GoF
	// boundary, attributed to the detector, tracker or feature path.
	LatencySpike Class = iota
	// ExtractFail makes one heavy-feature extraction fail: the
	// extraction cost is still paid (the work was attempted) but no
	// feature vector is produced.
	ExtractFail
	// ContentionBurst adds a burst of GPU contention on top of whatever
	// the stream's contention generator reports, for a window of frames.
	ContentionBurst
	// StreamStall freezes the stream for a block of simulated
	// milliseconds at a GoF boundary (an I/O hiccup, a decoder reset).
	StreamStall
	// WorkerPanic panics the goroutine running the stream's round; the
	// serving engine must contain it. One-shot per scheduled event.
	WorkerPanic

	// NumClasses is the number of fault classes.
	NumClasses int = iota
)

var classNames = [NumClasses]string{
	"spike", "extract_fail", "burst", "stall", "panic",
}

// String returns the canonical lower-case class name.
func (c Class) String() string {
	if c < 0 || int(c) >= NumClasses {
		return "unknown"
	}
	return classNames[c]
}

// Spike targets, cycled deterministically per event.
var spikeComponents = []string{"detector", "tracker", "feature"}

// Event is one concrete fault: either an explicit Plan entry or a
// rate-driven draw that fired.
type Event struct {
	Class Class
	// Frame is the global frame index the event is anchored at. A
	// scheduled event fires at the first opportunity at or after Frame.
	Frame int
	// MS is the magnitude of latency-shaped faults (spike, stall).
	MS float64
	// Level and Frames describe a contention burst: added level and
	// window length.
	Level  float64
	Frames int
	// Feature names the extraction target of an ExtractFail ("" = any
	// heavy feature).
	Feature string
	// Component names the spike target (detector, tracker, feature).
	Component string
}

// String renders the event for traces: "spike:detector:40ms",
// "extract_fail:hoc", "stall:250ms", "burst:0.40x30", "panic".
func (e Event) String() string {
	switch e.Class {
	case LatencySpike:
		return fmt.Sprintf("spike:%s:%.0fms", e.Component, e.MS)
	case ExtractFail:
		f := e.Feature
		if f == "" {
			f = "any"
		}
		return "extract_fail:" + f
	case ContentionBurst:
		return fmt.Sprintf("burst:%.2fx%d", e.Level, e.Frames)
	case StreamStall:
		return fmt.Sprintf("stall:%.0fms", e.MS)
	case WorkerPanic:
		return "panic"
	}
	return "unknown"
}

// Plan is an explicit per-stream fault schedule. Scheduled events are
// one-shot: each fires at the first query at or after its frame, then
// never again.
type Plan struct{ Events []Event }

// Config describes a rate-driven fault schedule. All rates are
// per-opportunity probabilities (per GoF boundary for spikes, stalls
// and panics; per extraction for failures; per frame for burst starts);
// zero disables the class. Magnitudes left zero take the defaults.
type Config struct {
	// Seed drives every draw; the injector mixes in the stream's own
	// seed so sibling streams see distinct schedules.
	Seed int64

	// SpikeRate / SpikeMS: latency spikes at GoF boundaries.
	SpikeRate float64
	SpikeMS   float64 // default 40

	// ExtractFailRate: heavy-feature extraction failures.
	ExtractFailRate float64

	// BurstRate / BurstLevel / BurstFrames: contention bursts.
	BurstRate   float64
	BurstLevel  float64 // default 0.4
	BurstFrames int     // default 30

	// StallRate / StallMS: whole-stream stalls at GoF boundaries.
	StallRate float64
	StallMS   float64 // default 250

	// PanicRate: worker panics, checked once per GoF step.
	PanicRate float64

	// CrashRound schedules a fail-stop board crash: at the given 1-based
	// fleet round the whole board dies permanently and every live
	// stream's in-memory state is lost. Zero disables. Board-scoped:
	// only the fleet dispatcher interprets it; per-stream injectors
	// ignore it.
	CrashRound int

	// BlackoutRound / BlackoutRounds schedule a transient board
	// blackout: starting at the given 1-based fleet round the board is
	// unresponsive (skipped at barriers, state frozen intact) for
	// BlackoutRounds rounds, then returns. Zero BlackoutRound disables;
	// zero BlackoutRounds takes the default. Board-scoped like
	// CrashRound.
	BlackoutRound  int
	BlackoutRounds int
}

// Defaults for Config magnitudes left zero.
const (
	DefaultSpikeMS        = 40.0
	DefaultBurstLevel     = 0.4
	DefaultBurstFrames    = 30
	DefaultStallMS        = 250.0
	DefaultBlackoutRounds = 3
)

func (c Config) withDefaults() Config {
	if c.SpikeMS <= 0 {
		c.SpikeMS = DefaultSpikeMS
	}
	if c.BurstLevel <= 0 {
		c.BurstLevel = DefaultBurstLevel
	}
	if c.BurstFrames <= 0 {
		c.BurstFrames = DefaultBurstFrames
	}
	if c.StallMS <= 0 {
		c.StallMS = DefaultStallMS
	}
	if c.BlackoutRounds <= 0 {
		c.BlackoutRounds = DefaultBlackoutRounds
	}
	return c
}

// Enabled reports whether any per-stream fault class has a positive
// rate. Board-scoped fail-stop faults (crash, blackout) deliberately do
// not count: they are enacted by the fleet dispatcher, not by stream
// injectors, so a crash-only board config must not create injectors.
func (c Config) Enabled() bool {
	return c.SpikeRate > 0 || c.ExtractFailRate > 0 || c.BurstRate > 0 ||
		c.StallRate > 0 || c.PanicRate > 0
}

// BlackoutWindow returns the board blackout window [start, end) in
// 1-based fleet rounds, or (0, 0) when no blackout is scheduled.
func (c Config) BlackoutWindow() (start, end int) {
	if c.BlackoutRound <= 0 {
		return 0, 0
	}
	rounds := c.BlackoutRounds
	if rounds <= 0 {
		rounds = DefaultBlackoutRounds
	}
	return c.BlackoutRound, c.BlackoutRound + rounds
}

// Injector drives one stream's faults. The zero of every query on a
// nil *Injector is "no fault", so callers wire it unconditionally.
type Injector struct {
	cfg  Config
	plan Plan
	seed int64

	// fired marks consumed one-shot events: plan entries by index,
	// rate-driven panics by frame.
	firedPlan  map[int]bool
	firedPanic map[int]bool

	counts [NumClasses]int
}

// NewInjector builds a rate-driven injector. streamSeed is the stream's
// own seed, mixed with cfg.Seed so every stream draws an independent
// deterministic schedule.
func NewInjector(cfg Config, streamSeed int64) *Injector {
	return &Injector{
		cfg:        cfg.withDefaults(),
		seed:       cfg.Seed*1000003 + streamSeed*40503,
		firedPlan:  map[int]bool{},
		firedPanic: map[int]bool{},
	}
}

// FromPlan builds an injector that fires exactly the scheduled events.
func FromPlan(p Plan) *Injector {
	in := NewInjector(Config{}, 0)
	in.plan = p
	return in
}

// draw returns the deterministic uniform draw for (class, frame, salt).
// The key is a hash, not a sequence position, so draws are identical
// whether frames are queried in order, backwards, or with gaps.
func (in *Injector) draw(class Class, frame int, salt int64) *rand.Rand {
	h := in.seed
	h = h*1000003 + int64(class+1)*7919
	h = h*1000003 + int64(frame)*2654435761
	h = h*1000003 + salt
	return rand.New(rand.NewSource(h))
}

// takePlan fires (at most one per call) an unfired plan event of the
// class anchored at or before frame, matching the feature filter.
func (in *Injector) takePlan(class Class, frame int, feature string) (Event, bool) {
	for i, e := range in.plan.Events {
		if e.Class != class || e.Frame > frame || in.firedPlan[i] {
			continue
		}
		if class == ExtractFail && e.Feature != "" && e.Feature != feature {
			continue
		}
		in.firedPlan[i] = true
		return e, true
	}
	return Event{}, false
}

// Boundary returns the latency faults (spikes and stalls) due at the
// GoF boundary anchored at the given global frame: the total extra
// simulated milliseconds to charge, plus the fired events for the
// trace. It must be called at most once per boundary.
func (in *Injector) Boundary(frame int) (ms float64, events []Event) {
	if in == nil {
		return 0, nil
	}
	if e, ok := in.takePlan(LatencySpike, frame, ""); ok {
		if e.Component == "" {
			e.Component = spikeComponents[frame%len(spikeComponents)]
		}
		ms += e.MS
		events = append(events, e)
		in.counts[LatencySpike]++
	}
	if e, ok := in.takePlan(StreamStall, frame, ""); ok {
		ms += e.MS
		events = append(events, e)
		in.counts[StreamStall]++
	}
	if in.cfg.SpikeRate > 0 {
		rng := in.draw(LatencySpike, frame, 0)
		if rng.Float64() < in.cfg.SpikeRate {
			e := Event{
				Class: LatencySpike, Frame: frame,
				// Half-to-full magnitude, and a deterministic target.
				MS:        in.cfg.SpikeMS * (0.5 + rng.Float64()*0.5),
				Component: spikeComponents[rng.Intn(len(spikeComponents))],
			}
			ms += e.MS
			events = append(events, e)
			in.counts[LatencySpike]++
		}
	}
	if in.cfg.StallRate > 0 {
		rng := in.draw(StreamStall, frame, 0)
		if rng.Float64() < in.cfg.StallRate {
			e := Event{Class: StreamStall, Frame: frame,
				MS: in.cfg.StallMS * (0.5 + rng.Float64()*0.5)}
			ms += e.MS
			events = append(events, e)
			in.counts[StreamStall]++
		}
	}
	return ms, events
}

// ExtractFails reports whether the heavy-feature extraction of the
// named feature at the given decision frame fails.
func (in *Injector) ExtractFails(frame int, feature string) bool {
	if in == nil {
		return false
	}
	if _, ok := in.takePlan(ExtractFail, frame, feature); ok {
		in.counts[ExtractFail]++
		return true
	}
	if in.cfg.ExtractFailRate <= 0 {
		return false
	}
	var salt int64
	for _, b := range []byte(feature) {
		salt = salt*131 + int64(b)
	}
	if in.draw(ExtractFail, frame, salt).Float64() < in.cfg.ExtractFailRate {
		in.counts[ExtractFail]++
		return true
	}
	return false
}

// Contention returns the burst contention level added at the given
// frame: the strongest burst whose window covers it. Burst windows are
// pure functions of the schedule, so this query is stateless and safe
// at any frame.
func (in *Injector) Contention(frame int) float64 {
	if in == nil || frame < 0 {
		return 0
	}
	level := 0.0
	for _, e := range in.plan.Events {
		if e.Class == ContentionBurst && frame >= e.Frame &&
			(e.Frames <= 0 || frame < e.Frame+e.Frames) && e.Level > level {
			level = e.Level
		}
	}
	if in.cfg.BurstRate > 0 {
		for start := frame - in.cfg.BurstFrames + 1; start <= frame; start++ {
			if start < 0 {
				continue
			}
			rng := in.draw(ContentionBurst, start, 0)
			if rng.Float64() < in.cfg.BurstRate {
				if l := in.cfg.BurstLevel * (0.5 + rng.Float64()*0.5); l > level {
					level = l
				}
			}
		}
	}
	return level
}

// PanicDue reports whether a worker panic is scheduled at or before the
// given frame. Every firing is one-shot: after the serving engine
// recovers and retries the round, the same frame does not re-panic.
func (in *Injector) PanicDue(frame int) bool {
	if in == nil {
		return false
	}
	if _, ok := in.takePlan(WorkerPanic, frame, ""); ok {
		in.counts[WorkerPanic]++
		return true
	}
	if in.cfg.PanicRate <= 0 || in.firedPanic[frame] {
		return false
	}
	if in.draw(WorkerPanic, frame, 0).Float64() < in.cfg.PanicRate {
		in.firedPanic[frame] = true
		in.counts[WorkerPanic]++
		return true
	}
	return false
}

// Counts returns how many events of each class have fired so far.
func (in *Injector) Counts() map[string]int {
	out := map[string]int{}
	if in == nil {
		return out
	}
	for c, n := range in.counts {
		if n > 0 {
			out[Class(c).String()] = n
		}
	}
	return out
}

// burstGenerator layers the injector's contention bursts on top of an
// inner generator.
type burstGenerator struct {
	inner contend.Generator
	inj   *Injector
}

// Level implements contend.Generator.
func (b burstGenerator) Level(frame int) float64 {
	level := b.inner.Level(frame) + b.inj.Contention(frame)
	if level > 0.99 {
		level = 0.99
	}
	return level
}

// Name implements contend.Generator.
func (b burstGenerator) Name() string { return b.inner.Name() + "+bursts" }

// WrapContention layers the injector's contention bursts on top of a
// generator. A nil injector returns the generator unchanged.
func WrapContention(g contend.Generator, inj *Injector) contend.Generator {
	if inj == nil {
		return g
	}
	return burstGenerator{inner: g, inj: inj}
}

// ParseSpec parses the -faults flag grammar: comma-separated key=value
// pairs, where the keys are the class rates (spike, extract, burst,
// stall, panic), the magnitudes (spike_ms, burst_level, burst_frames,
// stall_ms), the board-scoped fail-stop schedules (crash, blackout,
// blackout_rounds — 1-based fleet rounds) and seed. Example:
//
//	spike=0.05,extract=0.1,burst=0.02,stall=0.01,panic=0.005,seed=42
//	crash=8            (board dies permanently at round 8)
//	blackout=5,blackout_rounds=3  (board unresponsive rounds 5-7)
//
// Errors name the offending token and its 1-based position in the spec.
// Repeating a key (including via an alias such as extract/extract_fail)
// is an error rather than a silent last-one-wins.
func ParseSpec(spec string) (*Config, error) {
	cfg := &Config{}
	seen := map[string]int{} // canonical key -> first token position
	pos := 0
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		pos++
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("fault: bad spec token %q at position %d (want key=value)", tok, pos)
		}
		key = strings.TrimSpace(key)
		canon := key
		if key == "extract_fail" {
			canon = "extract"
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad value %q for key %q at position %d (token %q)",
				strings.TrimSpace(val), key, pos, tok)
		}
		switch key {
		case "seed":
			cfg.Seed = int64(f)
		case "spike":
			cfg.SpikeRate = f
		case "spike_ms":
			cfg.SpikeMS = f
		case "extract", "extract_fail":
			cfg.ExtractFailRate = f
		case "burst":
			cfg.BurstRate = f
		case "burst_level":
			cfg.BurstLevel = f
		case "burst_frames":
			cfg.BurstFrames = int(f)
		case "stall":
			cfg.StallRate = f
		case "stall_ms":
			cfg.StallMS = f
		case "panic":
			cfg.PanicRate = f
		case "crash":
			cfg.CrashRound = int(f)
		case "blackout":
			cfg.BlackoutRound = int(f)
		case "blackout_rounds":
			cfg.BlackoutRounds = int(f)
		default:
			return nil, fmt.Errorf("fault: unknown key %q at position %d (token %q; known: %s)",
				key, pos, tok, strings.Join(specKeys(), ", "))
		}
		if first, dup := seen[canon]; dup {
			return nil, fmt.Errorf("fault: duplicate key %q at position %d (first set at position %d)",
				key, pos, first)
		}
		seen[canon] = pos
	}
	return cfg, nil
}

// ParseBoardSpecs parses the board-scoped fault grammar used by the
// fleet dispatcher: semicolon-separated entries, each either a bare
// ParseSpec spec (applied to every board, keyed "*") or "<board>:<spec>"
// scoping the schedule to one named board. Later entries may not repeat
// a board. Example:
//
//	"spike=0.01;b1:panic=0.2,stall=0.1"
//
// injects a mild spike schedule fleet-wide and a panic/stall storm on
// board b1 only. The returned map keys are board names plus "*" for the
// fleet-wide default; an empty spec yields an empty map.
func ParseBoardSpecs(spec string) (map[string]*Config, error) {
	out := map[string]*Config{}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		board, body := "*", entry
		if head, rest, ok := strings.Cut(entry, ":"); ok && !strings.Contains(head, "=") {
			board, body = strings.TrimSpace(head), rest
			if board == "" {
				board = "*"
			}
		}
		cfg, err := ParseSpec(body)
		if err != nil {
			return nil, fmt.Errorf("board %q: %w", board, err)
		}
		if _, dup := out[board]; dup {
			return nil, fmt.Errorf("fault: duplicate board %q in spec %q", board, spec)
		}
		out[board] = cfg
	}
	return out, nil
}

// BoardConfig resolves the schedule for one board from a ParseBoardSpecs
// map: the board's own entry if present, else the "*" default, else nil.
func BoardConfig(specs map[string]*Config, board string) *Config {
	if c, ok := specs[board]; ok {
		return c
	}
	return specs["*"]
}

// ValidateBoards rejects a ParseBoardSpecs map naming a board that is
// not in the fleet: a typo'd board label would otherwise silently
// inject nothing. The "*" fleet-wide default is always accepted. The
// error names the unknown label and the known board set.
func ValidateBoards(specs map[string]*Config, known []string) error {
	knownSet := make(map[string]bool, len(known))
	for _, k := range known {
		knownSet[k] = true
	}
	labels := make([]string, 0, len(specs))
	for label := range specs {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		if label == "*" || knownSet[label] {
			continue
		}
		sorted := append([]string(nil), known...)
		sort.Strings(sorted)
		return fmt.Errorf("fault: spec names unknown board %q (known boards: %s)",
			label, strings.Join(sorted, ", "))
	}
	return nil
}

// specKeys lists the ParseSpec grammar's keys for error messages.
func specKeys() []string {
	keys := []string{"seed", "spike", "spike_ms", "extract", "burst",
		"burst_level", "burst_frames", "stall", "stall_ms", "panic",
		"crash", "blackout", "blackout_rounds"}
	sort.Strings(keys)
	return keys
}
