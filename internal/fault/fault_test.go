package fault

import (
	"testing"

	"litereconfig/internal/contend"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if ms, evs := in.Boundary(3); ms != 0 || evs != nil {
		t.Fatalf("nil Boundary = %v, %v", ms, evs)
	}
	if in.ExtractFails(3, "hoc") || in.PanicDue(3) {
		t.Fatal("nil injector fired a fault")
	}
	if in.Contention(3) != 0 {
		t.Fatal("nil injector reported contention")
	}
	if len(in.Counts()) != 0 {
		t.Fatal("nil injector has counts")
	}
}

func TestRateDrawsAreOrderIndependent(t *testing.T) {
	cfg := Config{Seed: 9, SpikeRate: 0.3, ExtractFailRate: 0.3, StallRate: 0.2}
	forward := NewInjector(cfg, 5)
	backward := NewInjector(cfg, 5)

	type sample struct {
		ms   float64
		fail bool
	}
	const n = 50
	fwd := make([]sample, n)
	for f := 0; f < n; f++ {
		ms, _ := forward.Boundary(f)
		fwd[f] = sample{ms: ms, fail: forward.ExtractFails(f, "hog")}
	}
	for f := n - 1; f >= 0; f-- {
		ms, _ := backward.Boundary(f)
		if ms != fwd[f].ms {
			t.Fatalf("frame %d spike diverged under reversed query order: %v vs %v",
				f, ms, fwd[f].ms)
		}
		if got := backward.ExtractFails(f, "hog"); got != fwd[f].fail {
			t.Fatalf("frame %d extract_fail diverged under reversed query order", f)
		}
	}
	fired := 0
	for _, s := range fwd {
		if s.ms > 0 {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("no spike or stall fired over 50 boundaries at rate 0.3+0.2")
	}
}

func TestStreamSeedsDecorrelateSchedules(t *testing.T) {
	cfg := Config{Seed: 9, SpikeRate: 0.3}
	a, b := NewInjector(cfg, 1), NewInjector(cfg, 2)
	same := true
	for f := 0; f < 80; f++ {
		msA, _ := a.Boundary(f)
		msB, _ := b.Boundary(f)
		if (msA > 0) != (msB > 0) {
			same = false
		}
	}
	if same {
		t.Fatal("two streams with distinct seeds drew identical spike schedules")
	}
}

func TestPlanEventsAreOneShot(t *testing.T) {
	in := FromPlan(Plan{Events: []Event{
		{Class: WorkerPanic, Frame: 10},
		{Class: LatencySpike, Frame: 4, MS: 100},
		{Class: ExtractFail, Frame: 0, Feature: "hoc"},
	}})
	if in.PanicDue(9) {
		t.Fatal("panic fired before its frame")
	}
	if !in.PanicDue(12) {
		t.Fatal("panic did not fire at/after its frame")
	}
	if in.PanicDue(12) || in.PanicDue(100) {
		t.Fatal("one-shot panic fired twice")
	}
	ms, evs := in.Boundary(4)
	if ms != 100 || len(evs) != 1 || evs[0].Class != LatencySpike {
		t.Fatalf("spike = %v, %v", ms, evs)
	}
	if ms, _ := in.Boundary(4); ms != 0 {
		t.Fatal("one-shot spike fired twice")
	}
	if in.ExtractFails(0, "hog") {
		t.Fatal("hoc-targeted failure hit hog")
	}
	if !in.ExtractFails(0, "hoc") {
		t.Fatal("targeted extract failure did not fire")
	}
	if in.ExtractFails(0, "hoc") {
		t.Fatal("one-shot extract failure fired twice")
	}
	counts := in.Counts()
	if counts["panic"] != 1 || counts["spike"] != 1 || counts["extract_fail"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestBurstWindowAndWrapContention(t *testing.T) {
	in := FromPlan(Plan{Events: []Event{
		{Class: ContentionBurst, Frame: 10, Level: 0.5, Frames: 5},
	}})
	for _, tc := range []struct {
		frame int
		want  float64
	}{{9, 0}, {10, 0.5}, {14, 0.5}, {15, 0}} {
		if got := in.Contention(tc.frame); got != tc.want {
			t.Fatalf("Contention(%d) = %v, want %v", tc.frame, got, tc.want)
		}
	}
	g := WrapContention(contend.Fixed{G: 0.2}, in)
	if got := g.Level(12); got != 0.7 {
		t.Fatalf("wrapped level = %v, want 0.7", got)
	}
	if got := g.Level(0); got != 0.2 {
		t.Fatalf("wrapped level outside burst = %v, want 0.2", got)
	}
	// Clamped at the generator ceiling.
	hot := WrapContention(contend.Fixed{G: 0.9}, in)
	if got := hot.Level(12); got != 0.99 {
		t.Fatalf("wrapped level = %v, want clamp at 0.99", got)
	}
	if WrapContention(contend.Fixed{G: 0.2}, nil).Name() != "fixed20%" {
		t.Fatal("nil injector must not wrap the generator")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("spike=0.05, extract=0.1,burst=0.02,stall=0.01,panic=0.005,seed=42,spike_ms=80,stall_ms=300,burst_level=0.5,burst_frames=40")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 42, SpikeRate: 0.05, SpikeMS: 80, ExtractFailRate: 0.1,
		BurstRate: 0.02, BurstLevel: 0.5, BurstFrames: 40,
		StallRate: 0.01, StallMS: 300, PanicRate: 0.005}
	if *cfg != want {
		t.Fatalf("parsed %+v, want %+v", *cfg, want)
	}
	if !cfg.Enabled() {
		t.Fatal("parsed config should be enabled")
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config should be disabled")
	}
	for _, bad := range []string{"spike", "spike=x", "bogus=1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q should not parse", bad)
		}
	}
	if cfg, err := ParseSpec(""); err != nil || cfg.Enabled() {
		t.Fatalf("empty spec: %v, %+v", err, cfg)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{SpikeRate: 1, StallRate: 1, BurstRate: 1}.withDefaults()
	if c.SpikeMS != DefaultSpikeMS || c.StallMS != DefaultStallMS ||
		c.BurstLevel != DefaultBurstLevel || c.BurstFrames != DefaultBurstFrames {
		t.Fatalf("defaults not applied: %+v", c)
	}
}

func TestParseSpecFailStop(t *testing.T) {
	cfg, err := ParseSpec("crash=8")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CrashRound != 8 {
		t.Fatalf("CrashRound = %d, want 8", cfg.CrashRound)
	}
	// A crash-only board config must NOT be "enabled": enabling it would
	// hand every stream on the board a fault injector for rates that are
	// all zero, perturbing decision traces for no reason. The fleet reads
	// the fail-stop schedule directly off the config.
	if cfg.Enabled() {
		t.Fatal("crash-only config must not enable stream-level injection")
	}

	cfg, err = ParseSpec("blackout=5,blackout_rounds=2")
	if err != nil {
		t.Fatal(err)
	}
	start, end := cfg.BlackoutWindow()
	if start != 5 || end != 7 {
		t.Fatalf("blackout window = [%d,%d), want [5,7)", start, end)
	}
	// Default window length applies when blackout_rounds is omitted.
	cfg, err = ParseSpec("blackout=5")
	if err != nil {
		t.Fatal(err)
	}
	if start, end = cfg.BlackoutWindow(); end-start != DefaultBlackoutRounds {
		t.Fatalf("default blackout window = [%d,%d), want %d rounds", start, end, DefaultBlackoutRounds)
	}
	// No blackout scheduled: empty window.
	if s, e := (&Config{}).BlackoutWindow(); s != 0 || e != 0 {
		t.Fatalf("zero config window = [%d,%d), want [0,0)", s, e)
	}
}

func TestValidateBoardsRejectsUnknownLabel(t *testing.T) {
	specs, err := ParseBoardSpecs("spike=0.01;b1:crash=4;b9:panic=0.3")
	if err != nil {
		t.Fatal(err)
	}
	err = ValidateBoards(specs, []string{"b0", "b1", "b2"})
	if err == nil {
		t.Fatal("unknown board b9 not rejected")
	}
	// The error must name the bad label and the known set, so the typo
	// is diagnosable from the message alone.
	for _, want := range []string{"b9", "b0", "b1", "b2"} {
		if !contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}

	// The fleet-wide "*" default and exact labels pass.
	specs, err = ParseBoardSpecs("stall=0.01;b2:crash=3")
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBoards(specs, []string{"b0", "b1", "b2"}); err != nil {
		t.Fatalf("valid specs rejected: %v", err)
	}
	if err := ValidateBoards(nil, []string{"b0"}); err != nil {
		t.Fatalf("nil specs rejected: %v", err)
	}
}

// contains reports substring presence without importing strings just
// for tests.
func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
