package mbek

import (
	"litereconfig/internal/detect"
	"litereconfig/internal/metric"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

// BranchEval is the outcome of executing one branch over one snippet: the
// snippet-level mAP (the training label of the content-aware accuracy
// model, Sec. 4) and the mean per-frame kernel latency.
type BranchEval struct {
	MAP    float64
	MeanMS float64
	// DetMS and TrkMS are the per-frame detector and tracker shares.
	DetMS float64
	TrkMS float64
}

// EvalBranch executes branch b over snippet s on a fresh kernel and
// clock, with no scheduler in the loop, and returns the snippet metrics.
// This is the offline measurement primitive used both to build training
// labels and to evaluate oracle accuracy.
func EvalBranch(det detect.Model, s vid.Snippet, b Branch, dev simlat.Device, contention float64, seed int64) BranchEval {
	ev, _ := EvalBranchSeries(det, s, b, dev, contention, seed)
	return ev
}

// EvalBranchSeries is EvalBranch plus the per-frame kernel latency
// series (ms per frame, chronological). The series is what risk
// training needs: snippet means average away exactly the
// GoF-granularity execution noise that serve-time prediction intervals
// must cover, so the variance accumulators are seeded from GoF-window
// means of this series rather than from the aggregate.
func EvalBranchSeries(det detect.Model, s vid.Snippet, b Branch, dev simlat.Device, contention float64, seed int64) (BranchEval, []float64) {
	clock := simlat.NewClock(dev, seed)
	clock.SetContention(contention)
	k := NewKernel(det, clock)
	k.ColdMisses = false
	k.Start(s.Video)
	k.SetBranch(b, s.Start)

	frames := s.Frames()
	results := make([]metric.FrameResult, 0, len(frames))
	series := make([]float64, 0, len(frames))
	prev := clock.Now()
	for _, f := range frames {
		dets := k.ProcessFrame(f)
		results = append(results, metric.FrameResult{Truth: f.Objects, Dets: dets})
		now := clock.Now()
		series = append(series, now-prev)
		prev = now
	}
	n := float64(len(frames))
	bd := clock.Breakdown()
	return BranchEval{
		MAP:    metric.MeanAP(results, metric.DefaultIoU),
		MeanMS: clock.Now() / n,
		DetMS:  bd.Total(CompDetector) / n,
		TrkMS:  bd.Total(CompTracker) / n,
	}, series
}
