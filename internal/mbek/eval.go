package mbek

import (
	"litereconfig/internal/detect"
	"litereconfig/internal/metric"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

// BranchEval is the outcome of executing one branch over one snippet: the
// snippet-level mAP (the training label of the content-aware accuracy
// model, Sec. 4) and the mean per-frame kernel latency.
type BranchEval struct {
	MAP    float64
	MeanMS float64
	// DetMS and TrkMS are the per-frame detector and tracker shares.
	DetMS float64
	TrkMS float64
}

// EvalBranch executes branch b over snippet s on a fresh kernel and
// clock, with no scheduler in the loop, and returns the snippet metrics.
// This is the offline measurement primitive used both to build training
// labels and to evaluate oracle accuracy.
func EvalBranch(det detect.Model, s vid.Snippet, b Branch, dev simlat.Device, contention float64, seed int64) BranchEval {
	clock := simlat.NewClock(dev, seed)
	clock.SetContention(contention)
	k := NewKernel(det, clock)
	k.ColdMisses = false
	k.Start(s.Video)
	k.SetBranch(b, s.Start)

	frames := s.Frames()
	results := make([]metric.FrameResult, 0, len(frames))
	for _, f := range frames {
		dets := k.ProcessFrame(f)
		results = append(results, metric.FrameResult{Truth: f.Objects, Dets: dets})
	}
	n := float64(len(frames))
	bd := clock.Breakdown()
	return BranchEval{
		MAP:    metric.MeanAP(results, metric.DefaultIoU),
		MeanMS: clock.Now() / n,
		DetMS:  bd.Total(CompDetector) / n,
		TrkMS:  bd.Total(CompTracker) / n,
	}
}
