// Package mbek implements the Multi-Branch Execution Kernel (Sec. 2.4):
// an ApproxDet-style tracking-by-detection pipeline whose execution
// branches are defined by five knobs — detector input shape, number of
// region proposals (nprop), tracker type, Group-of-Frames size (si,
// detector on the first frame, tracker on the rest), and tracker
// downsampling ratio (ds).
//
// The kernel executes one branch at a time over a streaming video,
// charging all work to a simlat.Clock, and supports switching branches at
// GoF boundaries with a pair-dependent switching cost (Sec. 3.5).
package mbek

import (
	"fmt"
	"math"

	"litereconfig/internal/detect"
	"litereconfig/internal/track"
)

// Branch is one execution branch of the MBEK.
type Branch struct {
	Shape   int        // detector input short side
	NProp   int        // region proposals
	Tracker track.Kind // tracker type (ignored when GoF == 1)
	GoF     int        // frames per Group-of-Frames; 1 = detect every frame
	DS      int        // tracker downsampling ratio (ignored when GoF == 1)
}

// String renders the branch in the paper's (shape, nprop) style extended
// with the tracker knobs, e.g. "s448_n20_kcf_g8_d2".
func (b Branch) String() string {
	if b.GoF <= 1 {
		return fmt.Sprintf("s%d_n%d_det", b.Shape, b.NProp)
	}
	return fmt.Sprintf("s%d_n%d_%s_g%d_d%d", b.Shape, b.NProp, b.Tracker, b.GoF, b.DS)
}

// DetConfig returns the detector configuration of the branch.
func (b Branch) DetConfig() detect.Config {
	return detect.Config{Shape: b.Shape, NProp: b.NProp}
}

// Weight is the normalized "heaviness" of the branch's detector
// configuration in [0, 1]; the switching-cost model and Figure 5 use it.
func (b Branch) Weight() float64 {
	s := float64(b.Shape) / 576.0
	n := float64(b.NProp) / 100.0
	return s * s * (0.3 + 0.7*n)
}

// GoF sizes exposed by the kernel (si knob). Size 1 means the detector
// runs on every frame with no tracker.
var GoFSizes = []int{1, 2, 4, 8, 20}

// branchNProps is the proposal subset enumerated in the default space
// (the full ApproxDet grid is larger; this keeps the space tractable
// while spanning the same envelope).
var branchNProps = []int{1, 5, 20, 100}

// DefaultBranches enumerates the kernel's branch space in a stable,
// deterministic order. Detector-only branches (GoF 1) collapse the
// tracker knobs. The default space has 4 shapes x 4 nprops x
// (1 + 4 trackers x 4 GoF sizes x 2 ds) = 528 branches.
func DefaultBranches() []Branch {
	var out []Branch
	for _, shape := range detect.Shapes {
		for _, np := range branchNProps {
			out = append(out, Branch{Shape: shape, NProp: np, GoF: 1,
				Tracker: track.KCF, DS: 1})
			for _, tk := range track.Kinds() {
				for _, gof := range GoFSizes {
					if gof == 1 {
						continue
					}
					for _, ds := range []int{1, 4} {
						out = append(out, Branch{Shape: shape, NProp: np,
							Tracker: tk, GoF: gof, DS: ds})
					}
				}
			}
		}
	}
	return out
}

// BranchIndex builds a lookup from branch value to its position in the
// given slice.
func BranchIndex(branches []Branch) map[Branch]int {
	m := make(map[Branch]int, len(branches))
	for i, b := range branches {
		m[b] = i
	}
	return m
}

// MinCostBranch returns the branch from the set with the lowest detector
// weight and longest GoF — the fallback the scheduler uses when nothing
// fits the SLO.
func MinCostBranch(branches []Branch) Branch {
	best := branches[0]
	bestCost := math.Inf(1)
	for _, b := range branches {
		// Approximate per-frame cost: detector amortized over the GoF
		// plus one cheap tracker step.
		det := detect.FasterRCNN.CostMS(b.DetConfig()) / float64(b.GoF)
		trk := 0.0
		if b.GoF > 1 {
			trk = track.CostMS(b.Tracker, b.DS, 2)
		}
		if c := det + trk; c < bestCost {
			bestCost = c
			best = b
		}
	}
	return best
}

// SwitchCostMS is the offline switching-cost model C(b0, b): the latency
// penalty of the first inference after moving from branch `from` to
// branch `to`. Per the paper's Figure 5, costs are generally below 10 ms
// but rise with a light source branch (cold destination graph regions)
// and with a heavy destination branch. Staying put is free.
func SwitchCostMS(from, to Branch) float64 {
	if from == to {
		return 0
	}
	cost := 0.8 + 5.5*to.Weight() + 2.0*(1-from.Weight())
	if from.Tracker != to.Tracker && to.GoF > 1 {
		cost += 1.0
	}
	if from.GoF != to.GoF || from.DS != to.DS {
		cost += 0.2
	}
	return cost
}
