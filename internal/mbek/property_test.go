package mbek

import (
	"math/rand"
	"testing"
	"testing/quick"

	"litereconfig/internal/detect"
	"litereconfig/internal/simlat"
	"litereconfig/internal/track"
	"litereconfig/internal/vid"
)

// randomBranch draws a valid branch from the default space.
func randomBranch(rng *rand.Rand) Branch {
	bs := DefaultBranches()
	return bs[rng.Intn(len(bs))]
}

func TestSwitchCostProperties_Quick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomBranch(r), randomBranch(r)
		c := SwitchCostMS(a, b)
		// Non-negative, bounded, zero iff same branch.
		if c < 0 || c > 12 {
			return false
		}
		if a == b && c != 0 {
			return false
		}
		if a != b && c == 0 {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBranchWeightMonotoneInKnobs(t *testing.T) {
	// Weight grows with shape and with nprop.
	for _, np := range []int{1, 5, 20, 100} {
		prev := -1.0
		for _, shape := range detect.Shapes {
			b := Branch{Shape: shape, NProp: np, Tracker: track.KCF, GoF: 8, DS: 1}
			if w := b.Weight(); w <= prev {
				t.Fatalf("weight not increasing in shape at nprop=%d", np)
			} else {
				prev = w
			}
		}
	}
	for _, shape := range detect.Shapes {
		prev := -1.0
		for _, np := range []int{1, 5, 20, 100} {
			b := Branch{Shape: shape, NProp: np, Tracker: track.KCF, GoF: 8, DS: 1}
			if w := b.Weight(); w <= prev {
				t.Fatalf("weight not increasing in nprop at shape=%d", shape)
			} else {
				prev = w
			}
		}
	}
}

func TestKernelDetectorCadenceInvariant(t *testing.T) {
	// Over N frames with GoF g, the detector runs exactly ceil(N/g) times
	// and the tracker N - ceil(N/g) times.
	v := vid.Generate("v", 31, vid.GenConfig{Frames: 60})
	for _, gof := range []int{1, 2, 4, 8, 20} {
		clock := simlat.NewClock(simlat.TX2, 1)
		k := NewKernel(detect.FasterRCNN, clock)
		k.Start(v)
		k.SetBranch(Branch{Shape: 320, NProp: 5, Tracker: track.KCF,
			GoF: gof, DS: 1}, 0)
		detRuns := 0
		for i := 0; i < 43; i++ {
			before := clock.Breakdown().Total(CompDetector)
			k.ProcessFrame(v.Frames[i])
			if clock.Breakdown().Total(CompDetector) > before {
				detRuns++
			}
		}
		want := (43 + gof - 1) / gof
		if detRuns != want {
			t.Fatalf("gof=%d: detector ran %d times over 43 frames, want %d",
				gof, detRuns, want)
		}
	}
}

func TestLastDetectorObservation(t *testing.T) {
	v := vid.Generate("v", 32, vid.GenConfig{Frames: 10})
	clock := simlat.NewClock(simlat.TX2, 1)
	clock.SetContention(0.5)
	k := NewKernel(detect.FasterRCNN, clock)
	k.Start(v)
	if a, base := k.LastDetectorObservation(); a != 0 || base != 0 {
		t.Fatal("observation before any detector pass should be zero")
	}
	b := Branch{Shape: 448, NProp: 20, Tracker: track.KCF, GoF: 4, DS: 1}
	k.SetBranch(b, 0)
	k.ProcessFrame(v.Frames[0])
	actual, base := k.LastDetectorObservation()
	if base != detect.FasterRCNN.CostMS(b.DetConfig()) {
		t.Fatalf("base = %v, want model cost", base)
	}
	// Actual is the contended, jittered charge: well above the base times
	// the device factor.
	if actual < base*1.3 {
		t.Fatalf("actual %v should reflect 50%% contention over base %v", actual, base)
	}
	// Tracker frames must not clobber the observation.
	k.ProcessFrame(v.Frames[1])
	if a2, _ := k.LastDetectorObservation(); a2 != actual {
		t.Fatal("tracker frame overwrote detector observation")
	}
}

func TestEvalBranchOnEmptyVideo(t *testing.T) {
	// A video whose frames contain no objects must evaluate without
	// panicking; mAP is 0 (nothing to detect) and latency is positive.
	v := vid.GenerateWithProfile("empty", 5, vid.GenConfig{Frames: 30},
		vid.ContentProfile{ObjectCount: 0, SizeFrac: 0.2, Speed: 1, Archetype: "t"})
	for i := range v.Frames {
		v.Frames[i].Objects = nil
	}
	s := vid.Snippet{Video: v, Start: 0, N: 30}
	b := Branch{Shape: 448, NProp: 20, Tracker: track.KCF, GoF: 4, DS: 1}
	ev := EvalBranch(detect.FasterRCNN, s, b, simlat.TX2, 0, 1)
	if ev.MAP != 0 {
		t.Fatalf("empty video mAP = %v", ev.MAP)
	}
	if ev.MeanMS <= 0 {
		t.Fatal("latency must still accrue")
	}
}
