package mbek

import (
	"litereconfig/internal/detect"
	"litereconfig/internal/metric"
	"litereconfig/internal/simlat"
	"litereconfig/internal/track"
	"litereconfig/internal/vid"
)

// Component labels used when charging the clock; the Figure 3 breakdown
// plots these.
const (
	CompDetector = "detector"
	CompTracker  = "tracker"
	CompSwitch   = "switch"
)

// ColdMissProb is the probability that an online branch switch hits a
// cold graph miss, producing the 1-5 s outliers of Figure 5(b).
const ColdMissProb = 0.003

// Kernel executes one branch at a time over a streaming video. All
// simulated work is charged to the clock.
type Kernel struct {
	Det   detect.Model
	Clock *simlat.Clock

	video      *vid.Video
	branch     Branch
	hasBranch  bool
	tracker    *track.Tracker
	frameInGoF int
	// ColdMisses disables the online cold-miss outliers when false
	// (offline measurement mode).
	ColdMisses bool

	switches  int
	usedSet   map[Branch]int
	switchLog []SwitchEvent

	// lastDetActualMS and lastDetBaseMS record the most recent detector
	// pass: the simulated cost actually charged and the branch's base
	// (TX2, zero-contention) cost. Contention sensors divide the two to
	// estimate the current GPU contention level.
	lastDetActualMS float64
	lastDetBaseMS   float64
	// lastTrkActualMS / lastTrkBaseMS are the same observation for the
	// most recent tracker step (CPU-side drift estimation, Sec. 6).
	lastTrkActualMS float64
	lastTrkBaseMS   float64
	// detBaseTotalMS / trkBaseTotalMS accumulate the base (TX2,
	// zero-contention) cost of every executed detector pass and tracker
	// step since kernel construction. The online-adaptation harness
	// diffs them across GoF boundaries to recover the exact base-unit
	// cost of each completed GoF — the refit target that keeps device
	// scaling and contention out of the learned coefficients.
	detBaseTotalMS float64
	trkBaseTotalMS float64
}

// SwitchEvent records one online branch transition and its charged cost,
// feeding the Figure 5(b) heatmap.
type SwitchEvent struct {
	Frame  int
	From   Branch
	To     Branch
	CostMS float64
}

// NewKernel creates a kernel around the given detector model and clock.
func NewKernel(det detect.Model, clock *simlat.Clock) *Kernel {
	return &Kernel{Det: det, Clock: clock, ColdMisses: true,
		usedSet: map[Branch]int{}}
}

// Start resets the kernel for a new video without resetting branch usage
// statistics.
func (k *Kernel) Start(v *vid.Video) {
	k.video = v
	k.frameInGoF = 0
	k.tracker = nil
	k.hasBranch = false
}

// Branch returns the currently configured branch.
func (k *Kernel) Branch() Branch { return k.branch }

// HasBranch reports whether a branch has been configured since Start.
func (k *Kernel) HasBranch() bool { return k.hasBranch }

// AtGoFBoundary reports whether the next ProcessFrame call starts a new
// Group-of-Frames (i.e. the scheduler may reconfigure now).
func (k *Kernel) AtGoFBoundary() bool { return k.frameInGoF == 0 }

// Switches returns the number of branch transitions performed.
func (k *Kernel) Switches() int { return k.switches }

// BranchCoverage returns the number of distinct branches executed so far
// (Figure 4's metric).
func (k *Kernel) BranchCoverage() int { return len(k.usedSet) }

// SwitchLog returns the recorded switch events.
func (k *Kernel) SwitchLog() []SwitchEvent { return k.switchLog }

// SetBranch reconfigures the kernel to branch b effective at frame
// frameIdx, charging the switching cost. It must only be called at a GoF
// boundary. It returns the charged switch cost (0 when b is already
// active).
func (k *Kernel) SetBranch(b Branch, frameIdx int) float64 {
	if !k.AtGoFBoundary() {
		panic("mbek: SetBranch outside GoF boundary")
	}
	if k.hasBranch && b == k.branch {
		return 0
	}
	var cost float64
	if k.hasBranch {
		cost = SwitchCostMS(k.branch, b)
		if k.ColdMisses && k.Clock.Rand().Float64() < ColdMissProb {
			// Cold miss of a neural-network graph: a 1-5 s stall.
			cost += 1000 + k.Clock.Rand().Float64()*4000
		}
		cost = k.Clock.ChargeExact(CompSwitch, cost)
		k.switches++
		k.switchLog = append(k.switchLog, SwitchEvent{
			Frame: frameIdx, From: k.branch, To: b, CostMS: cost,
		})
	}
	k.branch = b
	k.hasBranch = true
	k.tracker = nil
	k.frameInGoF = 0
	return cost
}

// trackerSeed derives the deterministic tracker seed for a GoF.
func trackerSeed(v *vid.Video, frame int, b Branch) int64 {
	h := v.Seed*2654435761 + int64(frame)*40503
	h = h*31 + int64(b.Shape)
	h = h*31 + int64(b.NProp)
	h = h*31 + int64(b.Tracker)
	h = h*31 + int64(b.GoF)
	h = h*31 + int64(b.DS)
	return h
}

// ProcessFrame executes the current branch on frame f: a detector pass on
// the first frame of each GoF (re-initializing the tracker), a tracker
// step on the rest. It returns the frame's detections.
func (k *Kernel) ProcessFrame(f vid.Frame) []metric.Detection {
	if !k.hasBranch {
		panic("mbek: ProcessFrame before SetBranch")
	}
	k.usedSet[k.branch]++
	var dets []metric.Detection
	if k.frameInGoF == 0 {
		cfg := k.branch.DetConfig()
		k.lastDetBaseMS = k.Det.CostMS(cfg)
		k.detBaseTotalMS += k.lastDetBaseMS
		k.lastDetActualMS = k.Clock.Charge(CompDetector, simlat.GPU, k.lastDetBaseMS)
		dets = k.Det.Detect(k.video, f, cfg)
		if k.branch.GoF > 1 {
			k.tracker = track.New(k.branch.Tracker, k.branch.DS,
				trackerSeed(k.video, f.Index, k.branch))
			k.tracker.Init(f, dets)
		}
	} else {
		k.lastTrkBaseMS = track.CostMS(k.branch.Tracker, k.branch.DS, k.tracker.NumTracked())
		k.trkBaseTotalMS += k.lastTrkBaseMS
		k.lastTrkActualMS = k.Clock.Charge(CompTracker, simlat.CPU, k.lastTrkBaseMS)
		dets = k.tracker.Step(k.video, f)
	}
	k.frameInGoF++
	if k.frameInGoF >= k.branch.GoF {
		k.frameInGoF = 0
	}
	return dets
}

// DetectorSharesFrame reports whether the detector will run on the next
// processed frame — true exactly at GoF boundaries. The scheduler uses
// this to price detector-shared features (ResNet50, CPoP) at their
// pooled cost.
func (k *Kernel) DetectorSharesFrame() bool { return k.AtGoFBoundary() }

// LastDetectorObservation returns the most recent detector pass's actual
// charged cost and its base (TX2, zero-contention) cost. Both are zero
// before the first detector pass.
func (k *Kernel) LastDetectorObservation() (actualMS, baseMS float64) {
	return k.lastDetActualMS, k.lastDetBaseMS
}

// LastTrackerObservation returns the most recent tracker step's actual
// charged cost and its base (TX2) cost. Both are zero before the first
// tracker step.
func (k *Kernel) LastTrackerObservation() (actualMS, baseMS float64) {
	return k.lastTrkActualMS, k.lastTrkBaseMS
}

// BaseCostTotals returns the cumulative base (TX2, zero-contention)
// detector and tracker cost of all work executed so far. Diffing two
// snapshots brackets the base cost of everything between them.
func (k *Kernel) BaseCostTotals() (detMS, trkMS float64) {
	return k.detBaseTotalMS, k.trkBaseTotalMS
}
