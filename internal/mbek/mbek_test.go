package mbek

import (
	"math"
	"strings"
	"testing"

	"litereconfig/internal/detect"
	"litereconfig/internal/simlat"
	"litereconfig/internal/track"
	"litereconfig/internal/vid"
)

func TestBranchString(t *testing.T) {
	b := Branch{Shape: 448, NProp: 20, Tracker: track.KCF, GoF: 8, DS: 2}
	if got := b.String(); got != "s448_n20_kcf_g8_d2" {
		t.Fatalf("String = %q", got)
	}
	d := Branch{Shape: 576, NProp: 100, GoF: 1}
	if got := d.String(); got != "s576_n100_det" {
		t.Fatalf("detector-only String = %q", got)
	}
}

func TestDefaultBranches(t *testing.T) {
	bs := DefaultBranches()
	want := 4 * 4 * (1 + 4*4*2)
	if len(bs) != want {
		t.Fatalf("branch count = %d, want %d", len(bs), want)
	}
	// All distinct.
	idx := BranchIndex(bs)
	if len(idx) != len(bs) {
		t.Fatal("duplicate branches in default space")
	}
	// Stable order.
	bs2 := DefaultBranches()
	for i := range bs {
		if bs[i] != bs2[i] {
			t.Fatal("branch enumeration not stable")
		}
	}
	for _, b := range bs {
		if b.GoF == 1 && (b.Tracker != track.KCF || b.DS != 1) {
			t.Fatalf("detector-only branch not normalized: %v", b)
		}
		if w := b.Weight(); w <= 0 || w > 1 {
			t.Fatalf("weight out of range for %v: %v", b, w)
		}
	}
}

func TestMinCostBranch(t *testing.T) {
	bs := DefaultBranches()
	mc := MinCostBranch(bs)
	// The cheapest branch must have the smallest shape/nprop and the
	// longest GoF.
	if mc.Shape != 224 || mc.NProp != 1 || mc.GoF != 20 {
		t.Fatalf("min-cost branch = %v", mc)
	}
	if mc.Tracker != track.MedianFlow {
		t.Fatalf("min-cost tracker = %v, want medianflow", mc.Tracker)
	}
}

func TestSwitchCostProperties(t *testing.T) {
	light := Branch{Shape: 224, NProp: 1, Tracker: track.KCF, GoF: 8, DS: 1}
	heavy := Branch{Shape: 576, NProp: 100, Tracker: track.KCF, GoF: 8, DS: 1}
	if SwitchCostMS(light, light) != 0 {
		t.Fatal("self-switch must be free")
	}
	// Heavier destination costs more.
	if SwitchCostMS(light, heavy) <= SwitchCostMS(heavy, light) {
		t.Fatalf("heavy destination should dominate: l->h %v vs h->l %v",
			SwitchCostMS(light, heavy), SwitchCostMS(heavy, light))
	}
	// Light source costs more than heavy source for same destination.
	mid := Branch{Shape: 448, NProp: 20, Tracker: track.KCF, GoF: 8, DS: 1}
	if SwitchCostMS(light, mid) <= SwitchCostMS(heavy, mid) {
		t.Fatal("light source should cost more than heavy source")
	}
	// Typical costs are below 10 ms (Figure 5a).
	bs := DefaultBranches()
	over := 0
	for i := 0; i < len(bs); i += 7 {
		for j := 0; j < len(bs); j += 7 {
			c := SwitchCostMS(bs[i], bs[j])
			if c < 0 {
				t.Fatalf("negative switch cost %v", c)
			}
			if c > 10 {
				over++
			}
		}
	}
	if over > 0 {
		t.Fatalf("%d sampled switch costs exceed 10 ms", over)
	}
	// Tracker change adds cost.
	a := Branch{Shape: 448, NProp: 20, Tracker: track.KCF, GoF: 8, DS: 1}
	b := Branch{Shape: 448, NProp: 20, Tracker: track.CSRT, GoF: 8, DS: 1}
	if SwitchCostMS(a, b) <= SwitchCostMS(a, Branch{Shape: 448, NProp: 20, Tracker: track.KCF, GoF: 4, DS: 1}) {
		t.Fatal("tracker change should cost more than GoF change")
	}
}

func testVideo(seed int64) *vid.Video {
	return vid.Generate("v", seed, vid.GenConfig{Frames: 60})
}

func TestKernelExecutionPattern(t *testing.T) {
	v := testVideo(1)
	clock := simlat.NewClock(simlat.TX2, 1)
	k := NewKernel(detect.FasterRCNN, clock)
	k.Start(v)
	b := Branch{Shape: 448, NProp: 20, Tracker: track.KCF, GoF: 4, DS: 1}
	k.SetBranch(b, 0)

	for i := 0; i < 12; i++ {
		if (i%4 == 0) != k.AtGoFBoundary() {
			t.Fatalf("frame %d: boundary state wrong", i)
		}
		before := clock.Breakdown().Total(CompDetector)
		k.ProcessFrame(v.Frames[i])
		after := clock.Breakdown().Total(CompDetector)
		ranDetector := after > before
		if (i%4 == 0) != ranDetector {
			t.Fatalf("frame %d: detector ran = %v, want %v", i, ranDetector, i%4 == 0)
		}
	}
	// 3 detector passes, 9 tracker steps charged.
	bd := clock.Breakdown()
	if bd.Total(CompDetector) <= 0 || bd.Total(CompTracker) <= 0 {
		t.Fatal("missing charges")
	}
}

func TestKernelDetectorOnlyBranch(t *testing.T) {
	v := testVideo(2)
	clock := simlat.NewClock(simlat.TX2, 1)
	k := NewKernel(detect.FasterRCNN, clock)
	k.Start(v)
	k.SetBranch(Branch{Shape: 320, NProp: 5, GoF: 1, Tracker: track.KCF, DS: 1}, 0)
	for i := 0; i < 5; i++ {
		if !k.AtGoFBoundary() {
			t.Fatal("GoF=1 should always be at boundary")
		}
		k.ProcessFrame(v.Frames[i])
	}
	if clock.Breakdown().Total(CompTracker) != 0 {
		t.Fatal("detector-only branch should never charge tracker")
	}
}

func TestKernelSwitchCharging(t *testing.T) {
	v := testVideo(3)
	clock := simlat.NewClock(simlat.TX2, 1)
	k := NewKernel(detect.FasterRCNN, clock)
	k.ColdMisses = false
	k.Start(v)
	a := Branch{Shape: 224, NProp: 1, Tracker: track.KCF, GoF: 2, DS: 1}
	b := Branch{Shape: 576, NProp: 100, Tracker: track.KCF, GoF: 2, DS: 1}
	// First configuration is free (model preloading, footnote 6).
	if c := k.SetBranch(a, 0); c != 0 {
		t.Fatalf("first SetBranch charged %v", c)
	}
	k.ProcessFrame(v.Frames[0])
	k.ProcessFrame(v.Frames[1])
	c := k.SetBranch(b, 2)
	if math.Abs(c-SwitchCostMS(a, b)) > 1e-9 {
		t.Fatalf("switch charged %v, want %v", c, SwitchCostMS(a, b))
	}
	if k.Switches() != 1 {
		t.Fatalf("switches = %d", k.Switches())
	}
	if got := k.SetBranch(b, 2); got != 0 {
		t.Fatal("re-setting same branch should be free")
	}
	log := k.SwitchLog()
	if len(log) != 1 || log[0].From != a || log[0].To != b || log[0].Frame != 2 {
		t.Fatalf("switch log wrong: %+v", log)
	}
	k.ProcessFrame(v.Frames[2])
	if k.BranchCoverage() != 2 {
		t.Fatalf("coverage = %d, want 2", k.BranchCoverage())
	}
}

func TestKernelPanicsOnMisuse(t *testing.T) {
	v := testVideo(4)
	clock := simlat.NewClock(simlat.TX2, 1)
	k := NewKernel(detect.FasterRCNN, clock)
	k.Start(v)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ProcessFrame before SetBranch should panic")
			}
		}()
		k.ProcessFrame(v.Frames[0])
	}()
	k.SetBranch(Branch{Shape: 448, NProp: 20, Tracker: track.KCF, GoF: 4, DS: 1}, 0)
	k.ProcessFrame(v.Frames[0])
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetBranch mid-GoF should panic")
			}
		}()
		k.SetBranch(Branch{Shape: 224, NProp: 1, Tracker: track.KCF, GoF: 4, DS: 1}, 1)
	}()
}

func TestEvalBranchDeterministicAndSane(t *testing.T) {
	v := testVideo(5)
	s := v.Snippets(30)[0]
	b := Branch{Shape: 576, NProp: 100, Tracker: track.KCF, GoF: 4, DS: 1}
	e1 := EvalBranch(detect.FasterRCNN, s, b, simlat.TX2, 0, 7)
	e2 := EvalBranch(detect.FasterRCNN, s, b, simlat.TX2, 0, 7)
	if e1 != e2 {
		t.Fatal("EvalBranch not deterministic")
	}
	if e1.MAP < 0 || e1.MAP > 1 {
		t.Fatalf("mAP out of range: %v", e1.MAP)
	}
	if e1.MeanMS <= 0 {
		t.Fatal("mean latency must be positive")
	}
	if e1.DetMS <= 0 || e1.TrkMS <= 0 {
		t.Fatalf("breakdown missing: %+v", e1)
	}
	if e1.MeanMS < e1.DetMS+e1.TrkMS-1e-9 {
		t.Fatal("mean must cover detector + tracker")
	}
}

func TestEvalBranchTradeoffs(t *testing.T) {
	v := testVideo(6)
	s := v.Snippets(40)[0]
	heavy := Branch{Shape: 576, NProp: 100, Tracker: track.KCF, GoF: 2, DS: 1}
	light := Branch{Shape: 224, NProp: 1, Tracker: track.MedianFlow, GoF: 20, DS: 4}
	eh := EvalBranch(detect.FasterRCNN, s, heavy, simlat.TX2, 0, 7)
	el := EvalBranch(detect.FasterRCNN, s, light, simlat.TX2, 0, 7)
	if eh.MeanMS <= el.MeanMS {
		t.Fatalf("heavy branch should cost more: %v vs %v", eh.MeanMS, el.MeanMS)
	}
	if eh.MAP <= el.MAP {
		t.Fatalf("heavy branch should be more accurate: %v vs %v", eh.MAP, el.MAP)
	}
}

func TestEvalBranchContentionRaisesLatency(t *testing.T) {
	v := testVideo(7)
	s := v.Snippets(30)[0]
	b := Branch{Shape: 448, NProp: 20, Tracker: track.KCF, GoF: 4, DS: 1}
	e0 := EvalBranch(detect.FasterRCNN, s, b, simlat.TX2, 0, 7)
	e50 := EvalBranch(detect.FasterRCNN, s, b, simlat.TX2, 0.5, 7)
	if e50.MeanMS <= e0.MeanMS*1.2 {
		t.Fatalf("contention did not raise latency: %v -> %v", e0.MeanMS, e50.MeanMS)
	}
	// Accuracy is unaffected by contention (only latency is).
	if math.Abs(e50.MAP-e0.MAP) > 1e-9 {
		t.Fatalf("contention changed accuracy: %v vs %v", e0.MAP, e50.MAP)
	}
}

func TestBranchNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range DefaultBranches() {
		s := b.String()
		if seen[s] {
			t.Fatalf("duplicate branch name %q", s)
		}
		if !strings.HasPrefix(s, "s") {
			t.Fatalf("unexpected name format %q", s)
		}
		seen[s] = true
	}
}
