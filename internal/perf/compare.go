package perf

import (
	"fmt"
	"strings"
)

// GateResult is the outcome of comparing a fresh report against the
// committed baseline. Failures fail CI; Warnings do not.
type GateResult struct {
	Failures []string
	Warnings []string
}

// OK reports whether the gate passed.
func (g *GateResult) OK() bool { return len(g.Failures) == 0 }

// Summary renders the gate outcome as a human-readable block.
func (g *GateResult) Summary() string {
	var b strings.Builder
	for _, w := range g.Warnings {
		fmt.Fprintf(&b, "WARN  %s\n", w)
	}
	for _, f := range g.Failures {
		fmt.Fprintf(&b, "FAIL  %s\n", f)
	}
	if g.OK() {
		b.WriteString("perf gate: PASS\n")
	} else {
		fmt.Fprintf(&b, "perf gate: FAIL (%d regressions)\n", len(g.Failures))
	}
	return b.String()
}

// Compare gates cur against base:
//
//   - allocs/op on the decision path must not grow at all (hard fail —
//     the count is deterministic, so any growth is a real regression);
//   - bytes/op on the decision path must not grow (hard fail, same
//     reasoning);
//   - calibration-normalized per-GoF wall time may drift up to wallTol
//     (e.g. 0.15 = +15%; timing is noisy, so the tolerance is soft by
//     design and a negative wallTol disables the check entirely).
//
// Cells present in cur but missing from base warn (new cells are not
// gated until the baseline is refreshed); cells in base but absent from
// cur are ignored (a small-scale smoke run gates only the cells it ran).
func Compare(cur, base *Report, wallTol float64) *GateResult {
	g := &GateResult{}
	baseByName := map[string]*CellResult{}
	for i := range base.Cells {
		baseByName[base.Cells[i].Cell.Name] = &base.Cells[i]
	}
	for i := range cur.Cells {
		c := &cur.Cells[i]
		name := c.Cell.Name
		b, ok := baseByName[name]
		if !ok {
			g.Warnings = append(g.Warnings,
				fmt.Sprintf("%s: no baseline cell (refresh BENCH_perf.json to gate it)", name))
			continue
		}
		if c.Mem.DecisionAllocs > b.Mem.DecisionAllocs {
			g.Failures = append(g.Failures, fmt.Sprintf(
				"%s: allocs/decision %d > baseline %d",
				name, c.Mem.DecisionAllocs, b.Mem.DecisionAllocs))
		}
		if c.Mem.DecisionBytes > b.Mem.DecisionBytes {
			g.Failures = append(g.Failures, fmt.Sprintf(
				"%s: bytes/decision %d > baseline %d",
				name, c.Mem.DecisionBytes, b.Mem.DecisionBytes))
		}
		if wallTol >= 0 {
			switch {
			case cur.CalibMS <= 0 || base.CalibMS <= 0:
				g.Warnings = append(g.Warnings, fmt.Sprintf(
					"%s: missing calibration (cur %.3f, base %.3f), wall gate skipped",
					name, cur.CalibMS, base.CalibMS))
			case c.Wall.GoFP50MS <= 0 || b.Wall.GoFP50MS <= 0:
				g.Warnings = append(g.Warnings, fmt.Sprintf(
					"%s: missing wall sample (cur %.3f, base %.3f), wall gate skipped",
					name, c.Wall.GoFP50MS, b.Wall.GoFP50MS))
			default:
				// Gate on the median step, not the mean: a single GC
				// pause or scheduler hiccup in a short pass inflates the
				// mean by 20% but leaves the median untouched.
				curN := c.Wall.GoFP50MS / cur.CalibMS
				baseN := b.Wall.GoFP50MS / base.CalibMS
				if curN > baseN*(1+wallTol) {
					g.Failures = append(g.Failures, fmt.Sprintf(
						"%s: normalized GoF wall p50 %.4f > baseline %.4f +%.0f%% (raw %.3fms vs %.3fms, calib %.1f/%.1f)",
						name, curN, baseN, wallTol*100,
						c.Wall.GoFP50MS, b.Wall.GoFP50MS, cur.CalibMS, base.CalibMS))
				}
			}
		}
	}
	return g
}

// BuildCampaign derives the before/after record for every cell present
// in both reports, using the decision-path allocation numbers.
func BuildCampaign(before, after *Report, note string) *Campaign {
	camp := &Campaign{Note: note}
	for i := range after.Cells {
		a := &after.Cells[i]
		b := before.Cell(a.Cell.Name)
		if b == nil {
			continue
		}
		cc := CampaignCell{
			Name:         a.Cell.Name,
			AllocsBefore: b.Mem.DecisionAllocs,
			AllocsAfter:  a.Mem.DecisionAllocs,
			BytesBefore:  b.Mem.DecisionBytes,
			BytesAfter:   a.Mem.DecisionBytes,
		}
		if cc.AllocsBefore > 0 {
			cc.Reduction = round6(1 - float64(cc.AllocsAfter)/float64(cc.AllocsBefore))
		}
		camp.Cells = append(camp.Cells, cc)
	}
	return camp
}
