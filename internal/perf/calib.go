package perf

import (
	"math"
	"time"
)

// calibSink defeats dead-code elimination of the calibration loop.
var calibSink float64

// Calibrate times a fixed, deterministic CPU spin (8M sqrt-accumulate
// iterations) and returns the best of three runs in milliseconds. The
// wall-time regression gate compares GoFMeanMS/CalibMS ratios between
// reports, so a baseline recorded on a fast workstation still gates a
// slow CI runner: both numerator and denominator scale with the
// machine.
func Calibrate() float64 {
	best := math.Inf(1)
	for r := 0; r < 3; r++ {
		t0 := time.Now()
		x := 0.0
		for i := 1; i <= 8_000_000; i++ {
			x += math.Sqrt(float64(i))
		}
		calibSink = x
		if ms := float64(time.Since(t0).Nanoseconds()) / 1e6; ms < best {
			best = ms
		}
	}
	return best
}
