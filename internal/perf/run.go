package perf

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"litereconfig/internal/adapt"
	"litereconfig/internal/contend"
	"litereconfig/internal/core"
	"litereconfig/internal/fault"
	"litereconfig/internal/fleet"
	"litereconfig/internal/harness"
	"litereconfig/internal/mbek"
	"litereconfig/internal/obs"
	"litereconfig/internal/sched"
	"litereconfig/internal/serve"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

// RunOptions tunes a sweep.
type RunOptions struct {
	// Seed drives every cell's stochastic realization. Default 1.
	Seed int64
	// DecisionOps is the measured iteration count of the decision-path
	// allocation loop (after warmup). Default 300.
	DecisionOps int
	// SkipWall skips the timed passes (engine run still happens for the
	// simulated stats, but its wall time is not trusted anywhere).
	SkipWall bool
	// Log, when set, receives one progress line per cell.
	Log func(string)
}

func (o *RunOptions) defaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.DecisionOps == 0 {
		o.DecisionOps = 300
	}
}

// sloLadder cycles streams through the three tenant tiers used across
// the repo's workloads.
var sloLadder = []struct {
	slo    float64
	class  string
	weight int
}{
	{33.3, "gold", 4},
	{50, "silver", 2},
	{100, "besteffort", 1},
}

func cellFaults(c Cell, seed int64) *fault.Config {
	if !c.Faults {
		return nil
	}
	return &fault.Config{Seed: seed + 5, SpikeRate: 0.05, ExtractFailRate: 0.08}
}

func cellVideo(c Cell, seed int64, i int) *vid.Video {
	return vid.Generate(fmt.Sprintf("perf-%s-%d", c.Scale, i),
		seed*101+int64(i), vid.GenConfig{Frames: c.Frames})
}

// Run sweeps the cells and assembles a Report. The models bundle is
// shared read-only; every engine/loop works on its own clone.
func Run(models *sched.Models, cells []Cell, opts RunOptions) (*Report, error) {
	opts.defaults()
	rep := &Report{
		Schema: Schema,
		Seed:   opts.Seed,
		Env: Env{
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
		},
	}
	if !opts.SkipWall {
		rep.CalibMS = Calibrate()
	}
	for _, c := range cells {
		cr, err := runCell(models, c, opts)
		if err != nil {
			return nil, fmt.Errorf("perf: cell %s: %w", c.Name, err)
		}
		rep.Cells = append(rep.Cells, cr)
		if opts.Log != nil {
			opts.Log(fmt.Sprintf(
				"%-28s gofs=%-5d attain=%.2f allocs/dec=%d B/dec=%d gof_mean=%.3fms",
				c.Name, cr.Sim.GoFs, cr.Sim.AttainRate,
				cr.Mem.DecisionAllocs, cr.Mem.DecisionBytes, cr.Wall.GoFMeanMS))
		}
	}
	return rep, nil
}

func runCell(models *sched.Models, c Cell, opts RunOptions) (CellResult, error) {
	var cr CellResult
	cr.Cell = c

	sim, engineMS, err := runEngine(models, c, opts.Seed)
	if err != nil {
		return cr, err
	}
	cr.Sim = sim

	gofAllocs, gofBytes, gofTimes, err := measureGoFLoop(models, c, opts.Seed, !opts.SkipWall)
	if err != nil {
		return cr, err
	}
	decAllocs, decBytes, err := measureDecisionLoop(models, c, opts.Seed, opts.DecisionOps)
	if err != nil {
		return cr, err
	}
	cr.Mem = MemStats{
		DecisionAllocs: decAllocs, DecisionBytes: decBytes,
		GoFAllocs: gofAllocs, GoFBytes: gofBytes,
	}
	if !opts.SkipWall {
		cr.Wall = wallStats(engineMS, gofTimes, sim.GoFs)
	}
	return cr, nil
}

func wallStats(engineMS float64, gofTimes []float64, gofs int) WallStats {
	w := WallStats{EngineMS: engineMS}
	if len(gofTimes) > 0 {
		sort.Float64s(gofTimes)
		sum := 0.0
		for _, t := range gofTimes {
			sum += t
		}
		w.GoFMeanMS = sum / float64(len(gofTimes))
		w.GoFP50MS = quantile(gofTimes, 0.50)
		w.GoFP99MS = quantile(gofTimes, 0.99)
	}
	if engineMS > 0 {
		w.GoFsPerSec = float64(gofs) / (engineMS / 1000)
	}
	return w
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// runEngine drives the cell's full engine — serve for one board, fleet
// for several — and reports simulated-domain stats plus the run's wall
// time. All simulated numbers are a pure function of the seed.
func runEngine(models *sched.Models, c Cell, seed int64) (SimStats, float64, error) {
	observer := obs.New()
	faults := cellFaults(c, seed)
	weights := map[string]int{}
	for _, t := range sloLadder {
		weights[t.class] = t.weight
	}
	var adaptCfg *adapt.Config
	if c.Adapt {
		adaptCfg = &adapt.Config{}
	}

	start := time.Now()
	var (
		sim SimStats
		dec []obs.Decision
	)
	if c.Boards <= 1 {
		o := serve.Options{Models: models, Observer: observer, Faults: faults,
			RiskQuantile: c.RiskQ}
		if c.Admission == "wfq" {
			o.Admission = serve.AdmissionWFQ
			o.ClassWeights = weights
			o.Preempt = true
		}
		if c.Adapt {
			o.Adapt = adaptCfg
		}
		srv, err := serve.New(o)
		if err != nil {
			return sim, 0, err
		}
		for i := 0; i < c.Streams; i++ {
			t := sloLadder[i%len(sloLadder)]
			if _, err := srv.Submit(serve.StreamConfig{
				Video:          cellVideo(c, seed, i),
				SLO:            t.slo,
				Class:          t.class,
				Seed:           seed + int64(i),
				BaseContention: c.Contention,
			}); err != nil {
				return sim, 0, err
			}
		}
		res := srv.Drain()
		dec = res.Decisions()
		sim = SimStats{
			Streams:    len(res.Streams),
			Frames:     res.TotalFrames,
			Rounds:     res.Rounds,
			AttainRate: res.AttainRate,
		}
	} else {
		boards := make([]fleet.BoardConfig, c.Boards)
		for b := range boards {
			boards[b] = fleet.BoardConfig{
				Name:   fmt.Sprintf("b%d", b),
				Faults: faults,
			}
		}
		o := fleet.Options{Models: models, Boards: boards, Observer: observer,
			RiskQuantile: c.RiskQ}
		if c.Admission == "wfq" {
			o.Admission = serve.AdmissionWFQ
			o.ClassWeights = weights
			o.Preempt = true
		}
		if c.Adapt {
			o.Adapt = adaptCfg
		}
		fl, err := fleet.New(o)
		if err != nil {
			return sim, 0, err
		}
		for i := 0; i < c.Streams; i++ {
			t := sloLadder[i%len(sloLadder)]
			if _, err := fl.Submit(serve.StreamConfig{
				Video:          cellVideo(c, seed, i),
				SLO:            t.slo,
				Class:          t.class,
				Seed:           seed + int64(i),
				BaseContention: c.Contention,
			}); err != nil {
				return sim, 0, err
			}
		}
		res := fl.Run()
		dec = res.Decisions()
		rounds, frames := 0, 0
		for _, b := range res.Boards {
			rounds += b.Rounds
		}
		for _, s := range res.Streams {
			frames += s.Frames
		}
		sim = SimStats{
			Streams:    len(res.Streams),
			Frames:     frames,
			Rounds:     rounds,
			AttainRate: res.AttainRate,
		}
	}
	engineMS := float64(time.Since(start).Nanoseconds()) / 1e6

	sim.GoFs = len(dec)
	if len(dec) > 0 {
		lat := make([]float64, 0, len(dec))
		sum := 0.0
		for _, d := range dec {
			lat = append(lat, d.RealizedMS)
			sum += d.RealizedMS
		}
		sort.Float64s(lat)
		sim.MeanGoFMS = round6(sum / float64(len(lat)))
		sim.P99GoFMS = round6(quantile(lat, 0.99))
	}
	sim.AttainRate = round6(sim.AttainRate)
	return sim, engineMS, nil
}

// round6 trims float noise so JSON reports stay stable to diff. The
// inputs are already deterministic; this only shortens the rendering.
func round6(x float64) float64 { return math.Round(x*1e6) / 1e6 }

// buildLoop constructs the single-stream pipeline used by both hot-path
// measurement loops: a fresh model clone, a fixed-contention clock, and
// the cell's fault/adaptation configuration.
func buildLoop(models *sched.Models, c Cell, seed int64) (*core.Pipeline, *mbek.Kernel, *simlat.Clock, *vid.Video, error) {
	var adaptCfg *adapt.Config
	if c.Adapt {
		adaptCfg = &adapt.Config{Label: "perf"}
	}
	clone, err := models.Clone()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	p, err := core.NewPipeline(core.Options{
		Models:       clone,
		SLO:          50,
		Policy:       core.PolicyFull,
		Adapt:        adaptCfg,
		RiskQuantile: c.RiskQ,
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	clock := simlat.NewClock(simlat.TX2, seed)
	clock.SetContention(c.Contention)
	k := mbek.NewKernel(p.Det, clock)
	v := cellVideo(c, seed, 0)
	if c.Faults {
		inj := fault.NewInjector(*cellFaults(c, seed), seed)
		p.Sched.SetInjector(inj)
	}
	return p, k, clock, v, nil
}

// newStepper builds the single-stream harness loop for a cell.
func newStepper(models *sched.Models, c Cell, seed int64) (*harness.Stepper, error) {
	p, k, clock, v, err := buildLoop(models, c, seed)
	if err != nil {
		return nil, err
	}
	res := &harness.Result{}
	st := harness.NewStepper(k, p.Sched, []*vid.Video{v}, clock,
		contend.Fixed{G: c.Contention}, res)
	if c.Faults {
		st.SetInjector(fault.NewInjector(*cellFaults(c, seed), seed))
	}
	return st, nil
}

// measureGoFLoop steps one full stream through the harness twice: a
// timed pass (per-Step wall times) and an allocation pass (Mallocs /
// TotalAlloc deltas per Step, single goroutine, GC quiesced,
// construction excluded from the measured window).
func measureGoFLoop(models *sched.Models, c Cell, seed int64, timed bool) (allocs, bytes uint64, times []float64, err error) {
	if timed {
		// Best-of-5 by median: the per-GoF work here is tens of
		// microseconds, where any single pass is at the mercy of
		// scheduler and frequency noise. The repetition with the lowest
		// median step time is the noise-floor estimate — stable enough
		// run to run for a ±15% wall gate to compare (means are not:
		// one GC pause in a 40-step pass moves them 20%). Every
		// repetition replays the identical fixed-seed step sequence, so
		// reps differ only in timing.
		const wallReps = 5
		best := math.Inf(1)
		for rep := 0; rep < wallReps; rep++ {
			st, err := newStepper(models, c, seed)
			if err != nil {
				return 0, 0, nil, err
			}
			var repTimes []float64
			for {
				t0 := time.Now()
				more := st.Step()
				if !more {
					break
				}
				repTimes = append(repTimes, float64(time.Since(t0).Nanoseconds())/1e6)
			}
			sorted := append([]float64(nil), repTimes...)
			sort.Float64s(sorted)
			if med := quantile(sorted, 50); med < best {
				best = med
				times = repTimes
			}
		}
	}

	st, err := newStepper(models, c, seed)
	if err != nil {
		return 0, 0, nil, err
	}
	allocs, bytes = measureAllocs(nil, func() bool { return st.Step() })
	return allocs, bytes, times, nil
}

// measureDecisionLoop isolates the scheduler decision path — the per-GoF
// Decide + SetBranch pair on a warm pipeline, no kernel execution — and
// returns exact allocs/op + bytes/op. This is the hard-gated number.
func measureDecisionLoop(models *sched.Models, c Cell, seed int64, ops int) (allocs, bytes uint64, err error) {
	p, k, clock, v, err := buildLoop(models, c, seed)
	if err != nil {
		return 0, 0, err
	}
	k.Start(v)
	i := 0
	op := func() {
		f := v.Frames[i%len(v.Frames)]
		b := p.Sched.Decide(k, clock, v, f)
		k.SetBranch(b, i)
		i++
	}
	const warmup = 50
	a, by := measureAllocs(
		func() {
			for j := 0; j < warmup; j++ {
				op()
			}
		},
		func() bool {
			if i >= warmup+ops {
				return false
			}
			op()
			return true
		},
	)
	return a, by, nil
}

// measureAllocs pins the scheduler to one processor, runs warmup (lazy
// initialization, cache fills) outside the measured window, quiesces
// the GC, then drives op until it returns false, returning exact
// per-iteration Mallocs and TotalAlloc deltas. Determinism: on a single
// goroutine with no timers the runtime performs no background heap
// allocation, so the same seed yields the same counts on every machine.
func measureAllocs(warmup func(), op func() bool) (allocsPerOp, bytesPerOp uint64) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	if warmup != nil {
		warmup()
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	n := uint64(0)
	for op() {
		n++
	}
	runtime.ReadMemStats(&m1)
	if n == 0 {
		return 0, 0
	}
	return (m1.Mallocs - m0.Mallocs) / n, (m1.TotalAlloc - m0.TotalAlloc) / n
}
