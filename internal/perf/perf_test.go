package perf

import (
	"bytes"
	"testing"

	"litereconfig/internal/fixture"
)

func TestMatrixScales(t *testing.T) {
	for _, scale := range []string{"small", "medium"} {
		cells, err := Matrix(scale)
		if err != nil {
			t.Fatal(err)
		}
		if len(cells) != 6 {
			t.Fatalf("%s: got %d cells, want 6", scale, len(cells))
		}
		seen := map[string]bool{}
		for _, c := range cells {
			if seen[c.Name] {
				t.Fatalf("duplicate cell name %q", c.Name)
			}
			seen[c.Name] = true
			if c.Scale != scale {
				t.Fatalf("cell %s has scale %q, want %q", c.Name, c.Scale, scale)
			}
			if c.Streams <= 0 || c.Frames <= 0 || c.Boards <= 0 {
				t.Fatalf("cell %s has empty shape: %+v", c.Name, c)
			}
		}
	}
	all, err := Matrix("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 12 {
		t.Fatalf("all: got %d cells, want 12", len(all))
	}
	if _, err := Matrix("huge"); err == nil {
		t.Fatal("unknown scale accepted")
	}
	// Coverage: every matrix dimension must be exercised somewhere.
	var faults, adapt, wfq, fleet, risk bool
	for _, c := range all {
		faults = faults || c.Faults
		adapt = adapt || c.Adapt
		wfq = wfq || c.Admission == "wfq"
		fleet = fleet || c.Boards > 1
		risk = risk || c.RiskQ > 0
	}
	if !faults || !adapt || !wfq || !fleet || !risk {
		t.Fatalf("matrix misses a dimension: faults=%v adapt=%v wfq=%v fleet=%v risk=%v",
			faults, adapt, wfq, fleet, risk)
	}
}

func TestFilterCells(t *testing.T) {
	all, _ := Matrix("all")
	got := FilterCells(all, "fleet")
	if len(got) != 2 {
		t.Fatalf("fleet filter: got %d, want 2", len(got))
	}
	if len(FilterCells(all, "")) != len(all) {
		t.Fatal("empty filter must keep all cells")
	}
	if len(FilterCells(all, "nosuchcell")) != 0 {
		t.Fatal("non-matching filter must drop all cells")
	}
}

// TestFixedSeedDeterminism is the satellite contract: two sweeps at the
// same seed must report byte-identical JSON once timing fields are
// stripped — simulated metrics AND allocation counts included (the
// alloc numbers are measured on one quiesced goroutine, so they are
// exact, which is what lets CI hard-fail on any growth).
func TestFixedSeedDeterminism(t *testing.T) {
	set, err := fixture.Small()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := Matrix("small")
	if err != nil {
		t.Fatal(err)
	}
	// Two cells keep the test fast while covering both the faulted and
	// the clean decision paths.
	cells = append(FilterCells(cells, "serve_fifo"), FilterCells(cells, "serve_faults")...)
	if len(cells) != 2 {
		t.Fatalf("expected 2 cells, got %d", len(cells))
	}
	opts := RunOptions{Seed: 7, DecisionOps: 120, SkipWall: true}
	run := func() []byte {
		rep, err := Run(set.Models, cells, opts)
		if err != nil {
			t.Fatal(err)
		}
		rep.StripTiming()
		b, err := rep.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed reports differ after StripTiming:\n--- run1\n%s\n--- run2\n%s", a, b)
	}
}

func TestStripTiming(t *testing.T) {
	r := &Report{
		Schema:  Schema,
		CalibMS: 12.5,
		Env:     Env{GoVersion: "go1.x", GOMAXPROCS: 8, NumCPU: 8},
		Cells: []CellResult{{
			Cell: Cell{Name: "x"},
			Sim:  SimStats{GoFs: 10},
			Mem:  MemStats{DecisionAllocs: 3},
			Wall: WallStats{GoFMeanMS: 1.5, EngineMS: 100},
		}},
	}
	r.StripTiming()
	if r.CalibMS != 0 || r.Env != (Env{}) || r.Cells[0].Wall != (WallStats{}) {
		t.Fatalf("timing fields survived StripTiming: %+v", r)
	}
	if r.Cells[0].Sim.GoFs != 10 || r.Cells[0].Mem.DecisionAllocs != 3 {
		t.Fatal("StripTiming must not touch simulated fields")
	}
}

func TestRoundTrip(t *testing.T) {
	r := &Report{Schema: Schema, Seed: 3,
		Cells: []CellResult{{Cell: Cell{Name: "a"}, Mem: MemStats{DecisionAllocs: 7}}}}
	b, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 3 || got.Cell("a") == nil || got.Cell("a").Mem.DecisionAllocs != 7 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := Unmarshal([]byte(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func mkReport(calib float64, cells ...CellResult) *Report {
	return &Report{Schema: Schema, CalibMS: calib, Cells: cells}
}

func cell(name string, allocs, byts uint64, gofP50 float64) CellResult {
	return CellResult{
		Cell: Cell{Name: name},
		Mem:  MemStats{DecisionAllocs: allocs, DecisionBytes: byts},
		Wall: WallStats{GoFMeanMS: gofP50, GoFP50MS: gofP50},
	}
}

func TestCompareGate(t *testing.T) {
	base := mkReport(10, cell("a", 20, 800, 1.0), cell("b", 5, 100, 2.0))

	t.Run("pass", func(t *testing.T) {
		g := Compare(mkReport(10, cell("a", 20, 800, 1.05), cell("b", 4, 90, 2.0)), base, 0.15)
		if !g.OK() {
			t.Fatalf("expected pass: %s", g.Summary())
		}
	})
	t.Run("allocs regression is a hard fail", func(t *testing.T) {
		g := Compare(mkReport(10, cell("a", 21, 800, 1.0)), base, 0.15)
		if g.OK() || len(g.Failures) != 1 {
			t.Fatalf("expected 1 failure: %s", g.Summary())
		}
	})
	t.Run("bytes regression is a hard fail", func(t *testing.T) {
		g := Compare(mkReport(10, cell("a", 20, 801, 1.0)), base, 0.15)
		if g.OK() {
			t.Fatalf("expected fail: %s", g.Summary())
		}
	})
	t.Run("wall within tolerance passes", func(t *testing.T) {
		g := Compare(mkReport(10, cell("a", 20, 800, 1.14)), base, 0.15)
		if !g.OK() {
			t.Fatalf("expected pass: %s", g.Summary())
		}
	})
	t.Run("wall beyond tolerance fails", func(t *testing.T) {
		g := Compare(mkReport(10, cell("a", 20, 800, 1.2)), base, 0.15)
		if g.OK() {
			t.Fatalf("expected fail: %s", g.Summary())
		}
	})
	t.Run("wall gate normalizes by calibration", func(t *testing.T) {
		// 2x slower machine (calib 20 vs 10): raw wall doubled is fine.
		g := Compare(mkReport(20, cell("a", 20, 800, 2.0)), base, 0.15)
		if !g.OK() {
			t.Fatalf("expected pass on slower machine: %s", g.Summary())
		}
		// Same machine speed but wall doubled: fail.
		g = Compare(mkReport(10, cell("a", 20, 800, 2.0)), base, 0.15)
		if g.OK() {
			t.Fatal("expected fail for real wall regression")
		}
	})
	t.Run("negative tolerance disables wall gate", func(t *testing.T) {
		g := Compare(mkReport(10, cell("a", 20, 800, 99)), base, -1)
		if !g.OK() {
			t.Fatalf("expected pass with wall gate off: %s", g.Summary())
		}
	})
	t.Run("new cell warns, does not fail", func(t *testing.T) {
		g := Compare(mkReport(10, cell("new", 99, 9999, 9)), base, 0.15)
		if !g.OK() || len(g.Warnings) != 1 {
			t.Fatalf("expected warn-only: %s", g.Summary())
		}
	})
	t.Run("missing calibration warns instead of gating wall", func(t *testing.T) {
		g := Compare(mkReport(0, cell("a", 20, 800, 99)), base, 0.15)
		if !g.OK() || len(g.Warnings) == 0 {
			t.Fatalf("expected warn-only: %s", g.Summary())
		}
	})
}

func TestBuildCampaign(t *testing.T) {
	before := mkReport(10, cell("a", 20, 800, 1), cell("gone", 9, 9, 1))
	after := mkReport(10, cell("a", 10, 400, 1), cell("new", 1, 1, 1))
	camp := BuildCampaign(before, after, "halved")
	if camp.Note != "halved" || len(camp.Cells) != 1 {
		t.Fatalf("unexpected campaign: %+v", camp)
	}
	c := camp.Cells[0]
	if c.Name != "a" || c.AllocsBefore != 20 || c.AllocsAfter != 10 || c.Reduction != 0.5 {
		t.Fatalf("unexpected campaign cell: %+v", c)
	}
}

func TestQuantile(t *testing.T) {
	if q := quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	s := []float64{1, 2, 3, 4}
	if q := quantile(s, 0.5); q != 2 {
		t.Fatalf("p50 of 1..4 = %v, want 2", q)
	}
	if q := quantile(s, 0.99); q != 4 {
		t.Fatalf("p99 of 1..4 = %v, want 4", q)
	}
	if q := quantile(s, 0); q != 1 {
		t.Fatalf("p0 of 1..4 = %v, want 1", q)
	}
}
