// Package perf is the continuous performance harness: a deterministic
// driver that sweeps a configuration matrix over the serving and fleet
// engines and emits a comparable JSON report (BENCH_perf.json) of
// wall-clock per-GoF latency, simulated-GoF throughput, and allocs/op +
// bytes/op on the scheduler decision path, plus the regression-gate
// compare logic CI runs against the committed baseline.
//
// Every number in a report is either *simulated* (Sim, Mem) — a pure
// function of the seed, identical across runs and machines — or
// *timing* (Wall, CalibMS, Env), which varies with hardware and load.
// The split is structural so the gate can be strict where determinism
// allows (allocs/op must never grow) and tolerant where it does not
// (wall time is compared calibration-normalized with a soft tolerance).
package perf

import (
	"encoding/json"
	"fmt"
)

// Schema identifies the report layout; bump when fields change meaning.
const Schema = "lrperf/v1"

// Cell is one point of the configuration matrix: an engine shape
// ({streams, boards, contention, faults, adapt, admission}) at a scale.
type Cell struct {
	Name       string  `json:"name"`
	Scale      string  `json:"scale"` // "small" | "medium"
	Streams    int     `json:"streams"`
	Boards     int     `json:"boards"` // 1 = serve engine, >1 = fleet
	Frames     int     `json:"frames"` // per stream
	Contention float64 `json:"contention"`
	Faults     bool    `json:"faults"`
	Adapt      bool    `json:"adapt"`
	Admission  string  `json:"admission"` // "fifo" | "wfq"
	// RiskQ, when positive, turns on probabilistic admission at that
	// quantile for the cell — the decision path then also derives
	// per-branch quantile factors and failure probabilities, which must
	// stay allocation-free like the rest of the hot path.
	RiskQ float64 `json:"risk_q,omitempty"`
}

// SimStats are simulated-domain results: identical for identical seeds.
type SimStats struct {
	Streams    int     `json:"streams"`
	Frames     int     `json:"frames"` // frames actually served
	GoFs       int     `json:"gofs"`   // scheduler decisions recorded
	Rounds     int     `json:"rounds"`
	MeanGoFMS  float64 `json:"mean_gof_ms"` // realized GoF-avg per-frame latency
	P99GoFMS   float64 `json:"p99_gof_ms"`
	AttainRate float64 `json:"attain_rate"`
}

// MemStats are allocation counts on the hot paths, measured with
// runtime.ReadMemStats deltas on a single goroutine (GOMAXPROCS(1), GC
// quiesced) so they are exact and reproducible. DecisionAllocs is the
// gated number: allocations per scheduler Decide+SetBranch on a warm
// pipeline. GoFAllocs covers the full harness step (kernel execution,
// feedback, adapter) for context.
type MemStats struct {
	DecisionAllocs uint64 `json:"allocs_per_decision"`
	DecisionBytes  uint64 `json:"bytes_per_decision"`
	GoFAllocs      uint64 `json:"allocs_per_gof"`
	GoFBytes       uint64 `json:"bytes_per_gof"`
}

// WallStats are wall-clock timings: machine-dependent, never gated
// except through the calibration-normalized soft tolerance.
type WallStats struct {
	EngineMS   float64 `json:"engine_ms"`   // full engine run (Submit..Drain/Run)
	GoFMeanMS  float64 `json:"gof_mean_ms"` // wall time per harness GoF step
	GoFP50MS   float64 `json:"gof_p50_ms"`
	GoFP99MS   float64 `json:"gof_p99_ms"`
	GoFsPerSec float64 `json:"gofs_per_sec"` // simulated GoFs per wall second
}

// CellResult is one matrix cell's full measurement.
type CellResult struct {
	Cell Cell      `json:"cell"`
	Sim  SimStats  `json:"sim"`
	Mem  MemStats  `json:"mem"`
	Wall WallStats `json:"wall"`
}

// Env records the machine the timing numbers came from.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// CampaignCell records one cell's before/after allocation numbers from
// an optimization campaign (produced by lrperf -campaign).
type CampaignCell struct {
	Name         string  `json:"name"`
	AllocsBefore uint64  `json:"allocs_per_decision_before"`
	AllocsAfter  uint64  `json:"allocs_per_decision_after"`
	BytesBefore  uint64  `json:"bytes_per_decision_before"`
	BytesAfter   uint64  `json:"bytes_per_decision_after"`
	Reduction    float64 `json:"reduction"` // 1 - after/before
}

// Campaign is the before/after record committed alongside a baseline
// refresh so the trajectory of the hot path stays in the repo.
type Campaign struct {
	Note  string         `json:"note,omitempty"`
	Cells []CampaignCell `json:"cells"`
}

// Report is the full lrperf output.
type Report struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	// CalibMS is the wall time of a fixed deterministic CPU spin on this
	// machine; the wall gate compares GoFMeanMS/CalibMS ratios so a
	// baseline from one machine transfers to another.
	CalibMS  float64      `json:"calib_ms"`
	Env      Env          `json:"env"`
	Cells    []CellResult `json:"cells"`
	Campaign *Campaign    `json:"campaign,omitempty"`
}

// StripTiming zeroes every machine-dependent field in place, leaving
// only the deterministic simulated metrics — the form the fixed-seed
// determinism test diffs.
func (r *Report) StripTiming() {
	r.CalibMS = 0
	r.Env = Env{}
	for i := range r.Cells {
		r.Cells[i].Wall = WallStats{}
	}
}

// Cell returns the named cell result, or nil.
func (r *Report) Cell(name string) *CellResult {
	for i := range r.Cells {
		if r.Cells[i].Cell.Name == name {
			return &r.Cells[i]
		}
	}
	return nil
}

// Marshal renders the report as stable, indented JSON.
func (r *Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Unmarshal parses a report and checks its schema tag.
func Unmarshal(b []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("perf: parse report: %w", err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("perf: report schema %q, want %q", r.Schema, Schema)
	}
	return &r, nil
}

// Matrix returns the cells for a scale: "small", "medium", or "all".
// Each scale covers every matrix dimension — FIFO vs WFQ admission,
// contention, faults, adaptation, single board vs fleet — so a hot-path
// regression in any subsystem lands in at least one cell.
func Matrix(scale string) ([]Cell, error) {
	switch scale {
	case "small":
		return matrixAt("small", 4, 60, 2, 6), nil
	case "medium":
		return matrixAt("medium", 8, 120, 3, 9), nil
	case "all":
		return append(matrixAt("small", 4, 60, 2, 6),
			matrixAt("medium", 8, 120, 3, 9)...), nil
	default:
		return nil, fmt.Errorf("perf: unknown scale %q (small|medium|all)", scale)
	}
}

func matrixAt(scale string, streams, frames, fleetBoards, fleetStreams int) []Cell {
	return []Cell{
		{Name: "serve_fifo/" + scale, Scale: scale, Streams: streams, Boards: 1,
			Frames: frames, Contention: 0.1, Admission: "fifo"},
		{Name: "serve_wfq_contend/" + scale, Scale: scale, Streams: streams, Boards: 1,
			Frames: frames, Contention: 0.3, Admission: "wfq"},
		{Name: "serve_faults/" + scale, Scale: scale, Streams: streams, Boards: 1,
			Frames: frames, Contention: 0.1, Faults: true, Admission: "fifo"},
		{Name: "serve_adapt/" + scale, Scale: scale, Streams: streams, Boards: 1,
			Frames: frames, Contention: 0.1, Adapt: true, Admission: "fifo"},
		{Name: "serve_risk/" + scale, Scale: scale, Streams: streams, Boards: 1,
			Frames: frames, Contention: 0.3, Admission: "wfq", RiskQ: 0.95},
		{Name: "fleet_mixed/" + scale, Scale: scale, Streams: fleetStreams, Boards: fleetBoards,
			Frames: frames, Contention: 0.2, Admission: "wfq"},
	}
}

// FilterCells keeps cells whose name contains the substring (empty
// keeps all).
func FilterCells(cells []Cell, substr string) []Cell {
	if substr == "" {
		return cells
	}
	out := cells[:0:0]
	for _, c := range cells {
		if containsFold(c.Name, substr) {
			out = append(out, c)
		}
	}
	return out
}

func containsFold(s, sub string) bool {
	// simple case-sensitive contains; cell names are lowercase already
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
