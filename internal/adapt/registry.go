package adapt

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"litereconfig/internal/sched"
)

// Version is the metadata of one committed model snapshot.
type Version struct {
	// Label is the snapshot's unique name, e.g. "s3.v2": stream label
	// plus per-stream promotion index. Offline baselines use "offline.v0".
	Label string
	// Parent is the label of the champion this version replaced (empty
	// for baselines).
	Parent string
	// Source says how the version came to be: "offline", "promote" or
	// "rollback".
	Source string
	// Stream is the owning stream's label; Seq its per-stream promotion
	// index. Together they order a registry listing deterministically
	// even when streams promote concurrently.
	Stream string
	Seq    int
	// ChampErrMS and ChalErrMS are the shadow prediction errors (EWMA of
	// |predicted − realized| per-frame GoF latency, ms) of the outgoing
	// champion and the promoted challenger at commit time. A "promote"
	// version always has ChalErrMS < ChampErrMS.
	ChampErrMS float64
	ChalErrMS  float64
	// Samples is how many GoF outcomes the challenger had been shadow-
	// scored on at commit time.
	Samples int
}

// Registry holds versioned copy-on-write sched.Models snapshots. A
// snapshot committed here is frozen: promotion hands the mutable
// challenger role to a fresh Clone, so registry entries are never
// written again and may be shared. The registry is concurrency-safe;
// one registry serves all streams of a board.
type Registry struct {
	mu       sync.Mutex
	versions []Version
	models   map[string]*sched.Models

	promotions atomic.Int64
	demotions  atomic.Int64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: map[string]*sched.Models{}}
}

// Commit stores one frozen snapshot under v.Label. Committing a label
// twice is an error (labels are per-stream sequenced, so a collision
// means two streams share a label).
func (r *Registry) Commit(v Version, m *sched.Models) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[v.Label]; ok {
		return fmt.Errorf("adapt: version %q already committed", v.Label)
	}
	r.versions = append(r.versions, v)
	r.models[v.Label] = m
	return nil
}

// Get returns the snapshot committed under label, or nil.
func (r *Registry) Get(label string) *sched.Models {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.models[label]
}

// Versions lists the committed versions sorted by (Stream, Seq, Label)
// — a deterministic order regardless of which stream committed first.
func (r *Registry) Versions() []Version {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Version, len(r.versions))
	copy(out, r.versions)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stream != out[j].Stream {
			return out[i].Stream < out[j].Stream
		}
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// Len reports how many versions are committed.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.versions)
}

// Promotions and Demotions report rollout actions recorded against
// this registry by its adapters.
func (r *Registry) Promotions() int {
	if r == nil {
		return 0
	}
	return int(r.promotions.Load())
}

func (r *Registry) Demotions() int {
	if r == nil {
		return 0
	}
	return int(r.demotions.Load())
}

// persistedRegistry is the gob wire form: versions in deterministic
// order with the snapshots in matching positions.
type persistedRegistry struct {
	Versions []Version
	Models   []*sched.Models
}

// Save writes the registry as a gob stream (versions in deterministic
// (Stream, Seq) order, each with its model snapshot).
func (r *Registry) Save(w io.Writer) error {
	vs := r.Versions()
	p := persistedRegistry{Versions: vs}
	r.mu.Lock()
	for _, v := range vs {
		p.Models = append(p.Models, r.models[v.Label])
	}
	r.mu.Unlock()
	return gob.NewEncoder(w).Encode(&p)
}

// Load reads a registry previously written by Save.
func LoadRegistry(rd io.Reader) (*Registry, error) {
	var p persistedRegistry
	if err := gob.NewDecoder(rd).Decode(&p); err != nil {
		return nil, fmt.Errorf("adapt: decode registry: %w", err)
	}
	if len(p.Versions) != len(p.Models) {
		return nil, fmt.Errorf("adapt: corrupt registry: %d versions, %d models",
			len(p.Versions), len(p.Models))
	}
	r := NewRegistry()
	for i, v := range p.Versions {
		if err := r.Commit(v, p.Models[i]); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// SaveFile writes the registry to path.
func (r *Registry) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadRegistryFile reads a registry from path.
func LoadRegistryFile(path string) (*Registry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadRegistry(f)
}
