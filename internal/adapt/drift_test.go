package adapt_test

import (
	"bytes"
	"math"
	"testing"

	"litereconfig/internal/adapt"
	"litereconfig/internal/contend"
	"litereconfig/internal/core"
	"litereconfig/internal/fixture"
	"litereconfig/internal/harness"
	"litereconfig/internal/obs"
	"litereconfig/internal/simlat"
)

const driftSLO = 33.3

// runDrift evaluates the scheduler on the examples/drift scenario — a
// TX2 whose CPU thermally throttles to 1.8x the profiled cost — with
// the hand-built EWMA drift estimator DISABLED, so the frozen models
// face the drift unaided (the examples/drift ablation row). cfg != nil
// turns on online adaptation, which must learn the drift into the
// models instead. Returns the run's observer plus the scheduler (for
// adapter stats).
func runDrift(t *testing.T, cfg *adapt.Config) (*obs.Observer, *core.Scheduler) {
	t.Helper()
	set, err := fixture.Small()
	if err != nil {
		t.Fatal(err)
	}
	throttled := simlat.TX2
	throttled.Name = "tx2-throttled"
	throttled.CPUFactor = 1.8
	assumed := simlat.TX2

	observer := obs.New()
	p, err := core.NewPipeline(core.Options{
		Models: set.Models, SLO: driftSLO, Policy: core.PolicyFull,
		AssumedDevice:            &assumed,
		DisableDriftCompensation: true,
		Adapt:                    cfg,
		Observer:                 observer.StreamObserver(0, "drift"),
	})
	if err != nil {
		t.Fatal(err)
	}
	harness.Evaluate(p, set.Corpus.Val, throttled, driftSLO, contend.Fixed{}, 9)
	return observer, p.Sched
}

// meanAbsErr is the acceptance metric: mean |predicted − realized|
// per-frame GoF latency over all completed decisions.
func meanAbsErr(ds []obs.Decision) float64 {
	sum, n := 0.0, 0
	for _, d := range ds {
		if d.GoFFrames <= 0 {
			continue
		}
		sum += math.Abs(d.PredLatencyMS - d.RealizedMS)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TestDriftRefitBeatsFrozen is the tentpole acceptance criterion: under
// the injected 1.8x CPU-throttle drift, online refit must cut the mean
// |predicted − realized| GoF latency error by at least 40% versus
// frozen models, and must promote at least one challenger to do it.
func TestDriftRefitBeatsFrozen(t *testing.T) {
	frozenObs, _ := runDrift(t, nil)
	reg := adapt.NewRegistry()
	adaptObs, sch := runDrift(t, &adapt.Config{Label: "s0", Registry: reg})

	frozen := meanAbsErr(frozenObs.Decisions())
	adapted := meanAbsErr(adaptObs.Decisions())
	t.Logf("frozen err=%.3f ms adapted err=%.3f ms (reduction %.0f%%), promotions=%d demotions=%d refits=%d",
		frozen, adapted, 100*(1-adapted/frozen),
		sch.Adapter().Promotions(), sch.Adapter().Demotions(), sch.Adapter().Refits())

	if frozen <= 0 {
		t.Fatal("frozen baseline produced no decisions")
	}
	if adapted > 0.6*frozen {
		t.Errorf("adapted error %.3f ms not ≥40%% below frozen %.3f ms", adapted, frozen)
	}
	if sch.Adapter().Promotions() < 1 {
		t.Error("no challenger was ever promoted")
	}
}

// TestPromotionsNeverRegress asserts the safety half of the rollout:
// every promoted version must have beaten the champion's shadow error
// at commit time.
func TestPromotionsNeverRegress(t *testing.T) {
	reg := adapt.NewRegistry()
	runDrift(t, &adapt.Config{Label: "s0", Registry: reg})
	vs := reg.Versions()
	if len(vs) == 0 {
		t.Fatal("no versions committed")
	}
	for _, v := range vs {
		if v.Source != "promote" {
			continue
		}
		if !(v.ChalErrMS < v.ChampErrMS) {
			t.Errorf("version %s promoted with challenger err %.3f ≥ champion err %.3f",
				v.Label, v.ChalErrMS, v.ChampErrMS)
		}
		if v.Samples == 0 {
			t.Errorf("version %s promoted with zero shadow samples", v.Label)
		}
	}
}

// TestAdaptTraceDeterminism runs the adapted drift scenario twice and
// requires byte-identical decision traces: promotions happen only at
// GoF barriers, so a fixed seed fixes every decision and every adapt
// event.
func TestAdaptTraceDeterminism(t *testing.T) {
	var traces [2]bytes.Buffer
	for i := range traces {
		o, _ := runDrift(t, &adapt.Config{Label: "s0"})
		if err := o.WriteTrace(&traces[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(traces[0].Bytes(), traces[1].Bytes()) {
		t.Fatal("adapted runs with identical seeds wrote different traces")
	}
	// Adapt events must actually be present in the adapted trace.
	if !bytes.Contains(traces[0].Bytes(), []byte(`"adapt_version"`)) {
		t.Error("adapted trace carries no adapt_version fields")
	}
	if !bytes.Contains(traces[0].Bytes(), []byte(`"adapt_event":"promote"`)) {
		t.Error("adapted trace carries no promote event")
	}
}

// TestUnadaptedTraceUnchanged asserts the omitempty contract: a run
// without adaptation must not emit any adapt_* fields.
func TestUnadaptedTraceUnchanged(t *testing.T) {
	o, _ := runDrift(t, nil)
	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("adapt_")) {
		t.Error("unadapted trace contains adapt_* fields")
	}
}
