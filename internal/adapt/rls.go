// Package adapt closes the loop from realized GoF outcomes back into
// the scheduler's predictors: it collects per-branch residuals, refits
// the L0(b,f_L) latency regressions online with recursive least
// squares, recalibrates A(b,f) outputs with an EWMA affine transform,
// refreshes observed switch costs C(b0,b), and rolls the refit models
// out with a champion–challenger state machine backed by a versioned
// copy-on-write registry.
package adapt

// RLS is a recursive-least-squares updater for one linear model
// y ≈ w·x + b with exponential forgetting. It is seeded from an
// offline fit (the coefficients of a linreg.Model) and refines the
// weights one (x, y) sample at a time; the loop is O(d²) per update
// with d = len(x)+1 (the intercept rides as a constant regressor).
//
// The inverse-covariance estimate P starts as delta·I: a large delta
// means a weak prior on the offline weights (fast early adaptation),
// a small delta trusts them longer.
type RLS struct {
	w      []float64 // weights; w[len-1] is the intercept
	p      []float64 // d×d inverse covariance, row-major
	forget float64   // exponential forgetting factor λ in (0, 1]
	d      int
	n      int       // samples absorbed
	zbuf   []float64 // Update scratch: augmented regressor + P·z, 2d wide
}

// NewRLS builds an updater of input dimension dim (excluding the
// intercept), seeded with the given coefficients and intercept.
func NewRLS(coef []float64, intercept, forget, delta float64) *RLS {
	d := len(coef) + 1
	r := &RLS{
		w:      make([]float64, d),
		p:      make([]float64, d*d),
		forget: forget,
		d:      d,
	}
	copy(r.w, coef)
	r.w[d-1] = intercept
	for i := 0; i < d; i++ {
		r.p[i*d+i] = delta
	}
	return r
}

// Update absorbs one sample: features x (length dim) and target y.
func (r *RLS) Update(x []float64, y float64) {
	if len(x)+1 != r.d {
		return
	}
	d := r.d
	if r.zbuf == nil {
		r.zbuf = make([]float64, 2*d)
	}
	// Augmented regressor z = [x, 1].
	z := r.zbuf[:d]
	copy(z, x)
	z[d-1] = 1

	// k = P z / (λ + zᵀ P z)
	pz := r.zbuf[d : 2*d]
	for i := 0; i < d; i++ {
		s := 0.0
		row := r.p[i*d : i*d+d]
		for j := 0; j < d; j++ {
			s += row[j] * z[j]
		}
		pz[i] = s
	}
	den := r.forget
	for i := 0; i < d; i++ {
		den += z[i] * pz[i]
	}
	if den <= 0 {
		return
	}

	// Prediction error before the update.
	pred := 0.0
	for i := 0; i < d; i++ {
		pred += r.w[i] * z[i]
	}
	err := y - pred

	// w += k·err ; P = (P − k zᵀ P) / λ
	inv := 1 / den
	for i := 0; i < d; i++ {
		k := pz[i] * inv
		r.w[i] += k * err
		for j := 0; j < d; j++ {
			r.p[i*d+j] = (r.p[i*d+j] - k*pz[j]) / r.forget
		}
	}
	r.n++
}

// Coef copies the current weights into coef (length dim) and returns
// the intercept.
func (r *RLS) Coef(coef []float64) (intercept float64) {
	copy(coef, r.w[:r.d-1])
	return r.w[r.d-1]
}

// Samples reports how many updates the estimator has absorbed.
func (r *RLS) Samples() int { return r.n }

// Predict evaluates the current weights on x.
func (r *RLS) Predict(x []float64) float64 {
	if len(x)+1 != r.d {
		return 0
	}
	s := r.w[r.d-1]
	for i, v := range x {
		s += r.w[i] * v
	}
	return s
}
