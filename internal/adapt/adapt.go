package adapt

import (
	"fmt"
	"math"
	"sync/atomic"

	"litereconfig/internal/glm"
	"litereconfig/internal/mbek"
	"litereconfig/internal/obs"
	"litereconfig/internal/sched"
)

// varForget is the exponential forgetting factor applied to a branch's
// residual-variance accumulator before each online update: a ~200-GoF
// effective window, long enough for a stable p95 margin, short enough
// that a contention-regime change re-widens the interval within a few
// seconds of simulated time.
const varForget = 0.995

// Config tunes one stream's online adapter. The zero value of every
// field means its default; pass the zero Config for the stock tuning.
type Config struct {
	// Label names the owning stream; it prefixes version labels
	// ("s3.v2") so concurrent streams never collide in a shared
	// registry. Default "s".
	Label string
	// Registry, when set, receives every promoted snapshot. One
	// registry is shared by all streams of a board.
	Registry *Registry
	// Gate, when set, must be true for promotions (and demotions) to
	// fire; refit and shadow scoring continue regardless. The fleet
	// layer uses it to stage rollout board by board.
	Gate *atomic.Bool

	// WarmupSamples is how many GoF outcomes the adapter only watches
	// before it starts refitting: the contention and drift EWMAs are
	// still converging then, and residuals computed against a cold
	// sensor would bake the (soon-to-be-sensed) drift into the
	// challenger's coefficients — double compensation. Default 4.
	WarmupSamples int
	// MinSamples is how many shadow-scored GoF outcomes the challenger
	// needs before it may be promoted. Default 12.
	MinSamples int
	// PromoteWindow is the hysteresis window: the challenger's shadow
	// error must beat the champion's by Margin for this many consecutive
	// GoF barriers. Default 4.
	PromoteWindow int
	// Margin is the relative shadow-error improvement required for
	// promotion (0.08 = 8% better). Default 0.08.
	Margin float64
	// DemoteWindow and DemoteMargin govern rollback: once the live
	// champion's shadow error exceeds its promotion-time error by
	// DemoteMargin (relative) for DemoteWindow consecutive barriers, the
	// previous champion is restored. Defaults 8 and 0.3.
	DemoteWindow int
	DemoteMargin float64

	// ErrAlpha smooths the shadow-error EWMAs. Default 0.15.
	ErrAlpha float64
	// BiasAlpha smooths the per-branch additive latency bias. Default 0.1.
	BiasAlpha float64
	// CPUAdjAlpha smooths the global CPU-side latency multiplier. Each
	// GoF yields an exact implied multiplier (base-cost shares are
	// known, so the only noise is clock jitter), hence a fairly fast
	// default of 0.4.
	CPUAdjAlpha float64
	// AccAlpha smooths the accuracy-recalibration moment estimates.
	// Default 0.1.
	AccAlpha float64
	// Forget is the RLS exponential forgetting factor. Default 0.995.
	Forget float64
	// Delta scales the RLS prior covariance delta·I: larger adapts
	// faster away from the offline fit. Default 10.
	Delta float64
	// MaxBiasMS clamps the learned per-branch latency bias. Default 30.
	MaxBiasMS float64
	// SwitchAlpha smooths observed switch costs; SwitchMinSamples is how
	// many observations a (from, to) pair needs before the observed
	// estimate overrides the C(b0, b) model. Defaults 0.3 and 2.
	SwitchAlpha      float64
	SwitchMinSamples int
}

func (c *Config) applyDefaults() {
	if c.Label == "" {
		c.Label = "s"
	}
	if c.WarmupSamples == 0 {
		c.WarmupSamples = 4
	}
	if c.MinSamples == 0 {
		c.MinSamples = 12
	}
	if c.PromoteWindow == 0 {
		c.PromoteWindow = 4
	}
	if c.Margin == 0 {
		c.Margin = 0.08
	}
	if c.DemoteWindow == 0 {
		c.DemoteWindow = 8
	}
	if c.DemoteMargin == 0 {
		c.DemoteMargin = 0.3
	}
	if c.ErrAlpha == 0 {
		c.ErrAlpha = 0.15
	}
	if c.BiasAlpha == 0 {
		c.BiasAlpha = 0.1
	}
	if c.CPUAdjAlpha == 0 {
		c.CPUAdjAlpha = 0.4
	}
	if c.AccAlpha == 0 {
		c.AccAlpha = 0.1
	}
	if c.Forget == 0 {
		c.Forget = 0.995
	}
	if c.Delta == 0 {
		c.Delta = 10
	}
	if c.MaxBiasMS == 0 {
		c.MaxBiasMS = 30
	}
	if c.SwitchAlpha == 0 {
		c.SwitchAlpha = 0.3
	}
	if c.SwitchMinSamples == 0 {
		c.SwitchMinSamples = 2
	}
}

// Sample is one decision's context, recorded by the scheduler at the
// GoF boundary and matched with the GoF's realized outcome at the next
// barrier.
type Sample struct {
	// Branch is the chosen branch's index.
	Branch int
	// Light is the light feature vector the latency regressions saw.
	Light []float64
	// GPUScale and CPUScale are the multipliers the scheduler applied
	// on top of the base-cost regressions (device factor × contention
	// multiplier, device factor × drift ratio). They let the adapter
	// normalize realized costs back to base-cost units, so RLS learns
	// only what the EWMA sensors cannot explain.
	GPUScale float64
	CPUScale float64
	// OverheadMS is the amortized per-frame scheduler + switching
	// overhead included in PredMS.
	OverheadMS float64
	// PredMS is the champion's per-frame latency prediction for the
	// chosen branch; PredAcc its (calibrated) accuracy prediction.
	PredMS  float64
	PredAcc float64

	chalMS float64 // challenger's shadow prediction, filled by Begin
}

// Outcome is one GoF's realized result, delivered at the next barrier.
type Outcome struct {
	// Frames is the GoF's executed frame count; AvgMS its realized mean
	// per-frame latency.
	Frames int
	AvgMS  float64
	// MeanAP is the GoF's realized detection accuracy; HasAcc marks it
	// valid (ground truth may be absent).
	MeanAP float64
	HasAcc bool
	// DetBaseMS and TrkBaseMS are the GoF's total detector and tracker
	// cost in base units (TX2, zero contention), exact deltas of the
	// kernel's cumulative base-cost counters. TrkBaseMS is zero for a
	// detect-every-frame GoF.
	DetBaseMS float64
	TrkBaseMS float64
}

// branchPair keys the observed switch-cost table.
type branchPair struct{ from, to mbek.Branch }

type switchEstimate struct {
	ms float64
	n  int
}

// Adapter closes the adaptation loop for one stream. It shadows every
// decision, refits a challenger copy of the models from realized
// outcomes, and swaps the challenger in as champion only at GoF
// barriers once it provably predicts better. An Adapter is used from
// one stream's goroutine, like the Scheduler that owns it; only the
// promotion Gate and the shared Registry are cross-stream safe.
type Adapter struct {
	cfg Config

	champion   *sched.Models
	challenger *sched.Models
	detRLS     []*RLS
	trkRLS     []*RLS

	pending Sample
	// lightBuf backs pending.Light: the scheduler passes its own
	// reusable scratch in Begin, and every consumer of the pending
	// sample (shadow pricing, RLS refit) reads it synchronously, so one
	// adapter-owned buffer reused per decision suffices.
	lightBuf   []float64
	hasPending bool

	// Shadow scoring: EWMAs of |predicted − realized| per-frame GoF
	// latency for champion and challenger.
	champErr float64
	chalErr  float64
	errWarm  bool
	shadowN  int

	promoteStreak int
	demoteStreak  int
	// Rollback state: the previous champion and the promoted champion's
	// shadow error at promotion time.
	prevChampion *sched.Models
	prevLabel    string
	promErr      float64

	// Accuracy recalibration moments: EWMA of x (de-calibrated
	// prediction), y (realized AP), x², x·y.
	accMX, accMY, accMXX, accMXY float64
	accN                         int

	switches map[branchPair]*switchEstimate

	versionLabel string
	promSeq      int
	promotions   int
	demotions    int
	refits       int
	samples      int
	event        string // pending trace event: "promote" or "demote"
	broken       bool   // clone failed; adaptation disabled

	samplesCtr *obs.Counter
	refitsCtr  *obs.Counter
	promoteCtr *obs.Counter
	demoteCtr  *obs.Counter
}

// New builds an adapter around the live models: models stays the
// champion the scheduler reads, and a deep clone becomes the mutable
// challenger. Returns an error only when the models cannot be cloned.
func New(cfg Config, models *sched.Models) (*Adapter, error) {
	cfg.applyDefaults()
	chal, err := models.Clone()
	if err != nil {
		return nil, fmt.Errorf("adapt: clone challenger: %w", err)
	}
	a := &Adapter{
		cfg:          cfg,
		champion:     models,
		challenger:   chal,
		switches:     map[branchPair]*switchEstimate{},
		versionLabel: "v0",
	}
	a.buildRLS()
	return a, nil
}

// buildRLS seeds the per-branch RLS banks from the challenger's
// current regression coefficients.
func (a *Adapter) buildRLS() {
	n := len(a.challenger.Branches)
	a.detRLS = make([]*RLS, n)
	a.trkRLS = make([]*RLS, n)
	for bi := 0; bi < n; bi++ {
		d := a.challenger.LatDet[bi]
		t := a.challenger.LatTrk[bi]
		a.detRLS[bi] = NewRLS(d.Coef, d.Intercept, a.cfg.Forget, a.cfg.Delta)
		a.trkRLS[bi] = NewRLS(t.Coef, t.Intercept, a.cfg.Forget, a.cfg.Delta)
	}
	if a.challenger.LatBiasMS == nil {
		a.challenger.LatBiasMS = make([]float64, n)
	}
}

// SetMetrics caches the adapt_* counters on the given registry (nil
// detaches).
func (a *Adapter) SetMetrics(r *obs.Registry) {
	a.samplesCtr, a.refitsCtr, a.promoteCtr, a.demoteCtr = nil, nil, nil, nil
	if r != nil {
		a.samplesCtr = r.Counter("adapt_samples_total")
		a.refitsCtr = r.Counter("adapt_refits_total")
		a.promoteCtr = r.Counter("adapt_promotions_total")
		a.demoteCtr = r.Counter("adapt_demotions_total")
	}
}

// SetRegistry re-points the adapter at another board's registry — the
// migration path: a stream hands its learned champion over, future
// promotions commit to the destination board.
func (a *Adapter) SetRegistry(r *Registry) { a.cfg.Registry = r }

// SetGate swaps the promotion gate (nil = always allowed).
func (a *Adapter) SetGate(g *atomic.Bool) { a.cfg.Gate = g }

// gateOpen reports whether rollout actions may fire.
func (a *Adapter) gateOpen() bool {
	return a.cfg.Gate == nil || a.cfg.Gate.Load()
}

// Champion returns the models the scheduler should currently serve
// from.
func (a *Adapter) Champion() *sched.Models { return a.champion }

// Begin records one decision's context and shadow-prices the
// challenger on the same branch (predict-only — nothing is charged to
// the clock and nothing executes).
func (a *Adapter) Begin(s Sample) {
	if a.broken {
		return
	}
	det, trk := a.challenger.PredictLatency(s.Branch, s.Light)
	s.chalMS = det*s.GPUScale + trk*s.CPUScale*a.challenger.CPUAdjFactor() +
		s.OverheadMS + a.challenger.LatencyBiasMS(s.Branch)
	// The scheduler hands us its reusable light-feature scratch; the
	// sample is retained until ObserveOutcome, so keep our own copy in a
	// buffer reused across decisions.
	a.lightBuf = append(a.lightBuf[:0], s.Light...)
	s.Light = a.lightBuf
	a.pending = s
	a.hasPending = true
}

// ObserveSwitch feeds one realized branch-switch cost into the observed
// C(b0, b) table. Cold-miss spikes are clamped to a multiple of the
// model cost so one pathological hand-off cannot poison the estimate.
func (a *Adapter) ObserveSwitch(from, to mbek.Branch, costMS float64) {
	if a.broken || costMS <= 0 {
		return
	}
	model := mbek.SwitchCostMS(from, to)
	if limit := 4*model + 10; costMS > limit {
		costMS = limit
	}
	key := branchPair{from, to}
	e := a.switches[key]
	if e == nil {
		a.switches[key] = &switchEstimate{ms: costMS, n: 1}
		return
	}
	e.ms = (1-a.cfg.SwitchAlpha)*e.ms + a.cfg.SwitchAlpha*costMS
	e.n++
}

// SwitchCostMS returns the observed estimate for a (from, to) pair once
// it has enough samples; ok is false when the scheduler should fall
// back to the offline C(b0, b) model.
func (a *Adapter) SwitchCostMS(from, to mbek.Branch) (ms float64, ok bool) {
	e := a.switches[branchPair{from, to}]
	if e == nil || e.n < a.cfg.SwitchMinSamples {
		return 0, false
	}
	return e.ms, true
}

// ObserveOutcome absorbs one GoF's realized result at the barrier:
// shadow-scores champion and challenger, refits the challenger, and
// runs the champion–challenger state machine. When a promotion or
// demotion fires it returns the new champion and changed=true; the
// scheduler must adopt the returned models before its next decision —
// this barrier hand-off is what keeps fixed-seed runs byte-identical.
func (a *Adapter) ObserveOutcome(o Outcome) (m *sched.Models, changed bool) {
	if a.broken || !a.hasPending || o.Frames <= 0 {
		a.hasPending = false
		return a.champion, false
	}
	p := a.pending
	a.hasPending = false
	a.samples++
	a.samplesCtr.Inc()

	// Shadow scoring.
	ce := math.Abs(p.PredMS - o.AvgMS)
	che := math.Abs(p.chalMS - o.AvgMS)
	if !a.errWarm {
		a.champErr, a.chalErr = ce, che
		a.errWarm = true
	} else {
		al := a.cfg.ErrAlpha
		a.champErr = (1-al)*a.champErr + al*ce
		a.chalErr = (1-al)*a.chalErr + al*che
	}
	a.shadowN++

	if a.samples > a.cfg.WarmupSamples {
		a.refit(p, o)
	}

	if !a.gateOpen() {
		a.promoteStreak, a.demoteStreak = 0, 0
		return a.champion, false
	}
	if a.tryPromote() {
		return a.champion, true
	}
	if a.tryDemote() {
		return a.champion, true
	}
	return a.champion, false
}

// refit folds one (sample, outcome) pair into the challenger.
func (a *Adapter) refit(p Sample, o Outcome) {
	bi := p.Branch
	if bi < 0 || bi >= len(a.challenger.Branches) {
		return
	}
	did := false

	// L0(b, f_L) coefficients: RLS toward the executed GoF's per-frame
	// base-cost shares — the same label convention the offline fit used
	// (detector pass amortized over the GoF, tracker steps on the
	// remaining frames). The kernel reports the executed configuration's
	// base costs directly, so these targets are sensor-free: device
	// scaling, contention and drift stay entirely with the EWMA sensors
	// and are never baked into the coefficients.
	if o.DetBaseMS > 0 && o.Frames > 0 {
		a.detRLS[bi].Update(p.Light, o.DetBaseMS/float64(o.Frames))
		d := a.challenger.LatDet[bi]
		d.Intercept = a.detRLS[bi].Coef(d.Coef)
		did = true
	}
	if o.TrkBaseMS > 0 && o.Frames > 1 {
		a.trkRLS[bi].Update(p.Light, o.TrkBaseMS/float64(o.Frames))
		t := a.challenger.LatTrk[bi]
		t.Intercept = a.trkRLS[bi].Coef(t.Coef)
		did = true
	}

	// Global CPU-side multiplier: because the GoF's base-cost shares
	// are known exactly, the realized latency pins down the effective
	// CPU scale the sensors missed (thermal throttle, firmware) up to
	// clock jitter. One shared EWMA generalizes the correction to
	// branches this stream has never executed — the per-branch bias
	// below cannot.
	if o.TrkBaseMS > 0 && o.Frames > 1 {
		fr := float64(o.Frames)
		den := o.TrkBaseMS / fr * p.CPUScale
		if den > 0.5 {
			implied := (o.AvgMS - p.OverheadMS - o.DetBaseMS/fr*p.GPUScale) / den
			implied = math.Max(0.25, math.Min(4, implied))
			cur := a.challenger.CPUAdjFactor()
			a.challenger.LatCPUAdj = (1-a.cfg.CPUAdjAlpha)*cur + a.cfg.CPUAdjAlpha*implied
			did = true
		}
	}

	// Per-branch additive bias: EWMA toward the residual between the
	// realized GoF latency and the challenger's own base prediction —
	// it absorbs everything systematic the regressions miss (amortized
	// overhead error, tracker-count dynamics, profile skew).
	det, trk := a.challenger.PredictLatency(bi, p.Light)
	base := det*p.GPUScale + trk*p.CPUScale*a.challenger.CPUAdjFactor() +
		p.OverheadMS
	resid := o.AvgMS - base
	cur := a.challenger.LatencyBiasMS(bi)
	nb := (1-a.cfg.BiasAlpha)*cur + a.cfg.BiasAlpha*resid
	if nb > a.cfg.MaxBiasMS {
		nb = a.cfg.MaxBiasMS
	} else if nb < -a.cfg.MaxBiasMS {
		nb = -a.cfg.MaxBiasMS
	}
	a.challenger.LatBiasMS[bi] = nb
	did = true

	// Risk interval tracking: one extra accumulator per branch. The
	// realized-vs-predicted log ratio feeds the branch's residual-
	// variance accumulator (after an exponential forgetting step, so
	// drift widens or narrows the interval instead of being averaged
	// away), which is what keeps the q-quantile admission margins
	// calibrated online. Purely additive state: point predictions — and
	// thus every mean-admission decision — are untouched.
	if o.AvgMS > 1e-3 && base > 1e-3 {
		if a.challenger.LatVar == nil {
			a.challenger.LatVar = make([]glm.VarAcc, len(a.challenger.Branches))
		}
		a.challenger.LatVar[bi].Forget(varForget)
		a.challenger.LatVar[bi].Add(math.Log(o.AvgMS / base))
	}

	// A(b, f) recalibration: an EWMA linear regression of realized GoF
	// accuracy on the de-calibrated prediction gives the affine
	// (temperature, bias) pair; uniform across branches, so the argmax
	// ordering the optimizer sees is preserved.
	if o.HasAcc && p.PredAcc > 0.01 {
		scale := a.champion.AccScale
		if scale == 0 {
			scale = 1
		}
		x := (p.PredAcc - a.champion.AccBias) / scale
		y := o.MeanAP
		if a.accN == 0 {
			a.accMX, a.accMY, a.accMXX, a.accMXY = x, y, x*x, x*y
		} else {
			al := a.cfg.AccAlpha
			a.accMX = (1-al)*a.accMX + al*x
			a.accMY = (1-al)*a.accMY + al*y
			a.accMXX = (1-al)*a.accMXX + al*x*x
			a.accMXY = (1-al)*a.accMXY + al*x*y
		}
		a.accN++
		if a.accN >= 8 {
			if v := a.accMXX - a.accMX*a.accMX; v > 1e-6 {
				sc := (a.accMXY - a.accMX*a.accMY) / v
				sc = math.Max(0.25, math.Min(2.5, sc))
				b := a.accMY - sc*a.accMX
				b = math.Max(-0.5, math.Min(0.5, b))
				a.challenger.AccScale, a.challenger.AccBias = sc, b
				did = true
			}
		}
	}

	if did {
		a.refits++
		a.refitsCtr.Inc()
	}
}

// tryPromote advances the promotion hysteresis and fires the swap once
// the challenger has beaten the champion by the margin for the whole
// window. The promoted snapshot is frozen and committed to the
// registry; a fresh clone takes over as challenger.
func (a *Adapter) tryPromote() bool {
	if a.shadowN >= a.cfg.MinSamples && a.chalErr < a.champErr*(1-a.cfg.Margin) {
		a.promoteStreak++
	} else {
		a.promoteStreak = 0
	}
	if a.promoteStreak < a.cfg.PromoteWindow {
		return false
	}
	next, err := a.challenger.Clone()
	if err != nil {
		a.broken = true
		return false
	}
	a.promSeq++
	label := fmt.Sprintf("%s.v%d", a.cfg.Label, a.promSeq)
	v := Version{
		Label:      label,
		Parent:     a.versionLabel,
		Source:     "promote",
		Stream:     a.cfg.Label,
		Seq:        a.promSeq,
		ChampErrMS: a.champErr,
		ChalErrMS:  a.chalErr,
		Samples:    a.shadowN,
	}
	if r := a.cfg.Registry; r != nil {
		_ = r.Commit(v, a.challenger)
		r.promotions.Add(1)
	}
	a.prevChampion = a.champion
	a.prevLabel = a.versionLabel
	a.promErr = a.chalErr
	a.champion = a.challenger
	a.challenger = next
	a.versionLabel = label
	a.champErr = a.chalErr
	a.promoteStreak, a.demoteStreak = 0, 0
	a.promotions++
	a.promoteCtr.Inc()
	a.event = "promote"
	return true
}

// tryDemote rolls the previous champion back when the live champion's
// shadow error has regressed past its promotion-time error by the
// demotion margin for a full window.
func (a *Adapter) tryDemote() bool {
	if a.prevChampion == nil {
		return false
	}
	if a.champErr > a.promErr*(1+a.cfg.DemoteMargin) {
		a.demoteStreak++
	} else {
		a.demoteStreak = 0
	}
	if a.demoteStreak < a.cfg.DemoteWindow {
		return false
	}
	chal, err := a.prevChampion.Clone()
	if err != nil {
		a.broken = true
		return false
	}
	a.champion = a.prevChampion
	a.versionLabel = a.prevLabel
	a.challenger = chal
	a.buildRLS()
	a.prevChampion = nil
	a.errWarm = false
	a.champErr, a.chalErr = 0, 0
	a.shadowN = 0
	a.promoteStreak, a.demoteStreak = 0, 0
	a.demotions++
	a.demoteCtr.Inc()
	if r := a.cfg.Registry; r != nil {
		r.demotions.Add(1)
	}
	a.event = "demote"
	return true
}

// TakeEvent returns and clears the pending rollout trace event
// ("promote" or "demote", set at the previous barrier).
func (a *Adapter) TakeEvent() string {
	e := a.event
	a.event = ""
	return e
}

// VersionLabel returns the champion's registry label ("v0" until the
// first promotion).
func (a *Adapter) VersionLabel() string { return a.versionLabel }

// ChampErrMS and ChalErrMS return the current shadow-error EWMAs.
func (a *Adapter) ChampErrMS() float64 { return a.champErr }
func (a *Adapter) ChalErrMS() float64  { return a.chalErr }

// Promotions, Demotions, Refits and Samples report lifetime counts.
func (a *Adapter) Promotions() int { return a.promotions }
func (a *Adapter) Demotions() int  { return a.demotions }
func (a *Adapter) Refits() int     { return a.refits }
func (a *Adapter) Samples() int    { return a.samples }
