package sched

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"litereconfig/internal/detect"
	"litereconfig/internal/feat"
	"litereconfig/internal/glm"
	"litereconfig/internal/linreg"
	"litereconfig/internal/mbek"
	"litereconfig/internal/nn"
)

// Models bundles everything the online scheduler loads: the branch space,
// the content-agnostic and content-aware accuracy predictors, the
// per-branch latency regressions, the feature standardizers, and the
// benefit table.
type Models struct {
	Branches []mbek.Branch
	Det      detect.Model

	// LightNet is the content-agnostic accuracy model A(b, f_L).
	LightNet *nn.Net
	// ContentNets holds one two-tower accuracy model per heavy feature
	// kind. Each is trained on the *residual* of the light model:
	// A(b, [f_L, f_H^k]) = A(b, f_L) + tower_k(f_L, f_H^k). The residual
	// parameterization plus strong L2 keeps the high-dimensional content
	// features from overfitting small offline datasets — with no signal,
	// the content-aware prediction degrades gracefully to the
	// content-agnostic one.
	ContentNets map[feat.Kind]*nn.TwoTower

	// LatDet and LatTrk are per-branch linear regressions predicting the
	// per-frame detector (GPU) and tracker (CPU) base costs from the
	// light features.
	LatDet []*linreg.Model
	LatTrk []*linreg.Model

	// LatVar holds one residual-variance accumulator per branch, over
	// *log-ratio* residuals ln(realized / predicted) of the total kernel
	// latency. Contention effects on mobile-GPU latency are
	// multiplicative, so the interval is lognormal: the q-quantile
	// latency is prediction x exp(z(q) x sigma(b)), and the margin
	// scales with whatever device/contention factor the point estimate
	// was scaled by. Seeded offline from the training residuals; the
	// online refit folds realized GoF outcomes in (one extra accumulator
	// per branch). Nil or all-zero — every bundle saved before risk
	// admission existed — reads as "no variance info" and every quantile
	// degrades to the point estimate.
	LatVar []glm.VarAcc

	// FailNets holds one logistic (logit-link binomial GLM) model per
	// branch predicting the tracker-failure probability from the light
	// features: the probability that the branch's snippet mAP collapses
	// below half the best achievable mAP (the tracker lost its objects
	// before the next detector refresh). Stored by value so gob encodes
	// the slice; a zero-value entry (no coefficients) — including every
	// pre-risk bundle — predicts zero failure probability.
	FailNets []glm.Model

	// LightNorm standardizes the light features; HeavyNorm standardizes
	// each heavy feature.
	LightNorm *Standardizer
	HeavyNorm map[feat.Kind]*Standardizer

	// Sketch holds the frozen random projection (rows x SketchDim) per
	// heavy feature, applied after standardization and before the tower.
	Sketch map[feat.Kind][][]float64

	// Ben is the offline benefit table of Sec. 3.4.
	Ben *BenTable

	// LatBiasMS, AccScale and AccBias hold the online-adaptation
	// calibration state (package adapt); all zero on freshly trained or
	// pre-adaptation models. LatBiasMS is a per-branch additive
	// correction in realized (post device/contention scaling)
	// milliseconds applied on top of the L0 regressions; AccScale and
	// AccBias recalibrate the accuracy predictor's outputs with a
	// uniform affine transform a' = AccScale·a + AccBias — uniform so
	// the branch argmax ordering is preserved, only the magnitude the
	// optimizer trades against latency changes. AccScale == 0 is read
	// as identity so models saved before adaptation load unchanged.
	// LatCPUAdj is a global multiplier on the tracker (CPU) side of the
	// latency estimate, applied on top of whatever device/drift scaling
	// the scheduler's sensors provide: the adapter solves it per GoF
	// from exact base-cost shares, so a board-wide CPU slowdown is
	// learned once and generalizes to branches never yet executed.
	// Like AccScale, 0 is read as identity.
	LatBiasMS []float64
	AccScale  float64
	AccBias   float64
	LatCPUAdj float64

	// FeatureSeed identifies the feature-extractor instance (the
	// simulated embedding networks' weights) the training features came
	// from. The online scheduler MUST extract with the same seed, or the
	// content towers see inputs from a different distribution.
	FeatureSeed int64

	// Reusable scratch for the ...Into predictor variants. Unexported,
	// so gob serialization (Save/Load/Clone) drops it: every clone
	// starts with nil scratch and grows its own, which is what makes
	// per-stream clones safe to use concurrently. A single Models value
	// is NOT safe for concurrent predictor calls.
	scrNorm    []float64 // LightNorm output
	scrHeavy   []float64 // HeavyNorm output
	scrSketch  []float64 // random-projection output
	scrContent []float64 // per-kind content prediction inside Set ensembling
}

// Train fits all models on a collected dataset.
func Train(cfg Config, ds *Dataset) (*Models, error) {
	cfg.applyDefaults()
	if len(ds.Samples) == 0 {
		return nil, fmt.Errorf("sched: empty dataset")
	}
	m := &Models{
		Branches:    cfg.Branches,
		Det:         cfg.Det,
		ContentNets: map[feat.Kind]*nn.TwoTower{},
		HeavyNorm:   map[feat.Kind]*Standardizer{},
		Sketch:      map[feat.Kind][][]float64{},
		FeatureSeed: cfg.Seed,
	}
	sketchRng := rand.New(rand.NewSource(cfg.Seed + 9999))
	for _, k := range feat.HeavyKinds() {
		dim := feat.SpecOf(k).Dim
		sk := cfg.SketchDim
		if sk > dim {
			sk = dim
		}
		proj := make([][]float64, dim)
		scale := 1 / math.Sqrt(float64(dim))
		for i := range proj {
			proj[i] = make([]float64, sk)
			for j := range proj[i] {
				proj[i][j] = sketchRng.NormFloat64() * scale
			}
		}
		m.Sketch[k] = proj
	}

	// Split the offline samples: most train the predictors, a held-out
	// fraction measures the benefit table so Ben(f_H) reflects the gain
	// the content features generalize to, not training-set optimism.
	period := 0
	if cfg.BenHoldoutFrac > 0 && cfg.BenHoldoutFrac < 1 {
		period = int(math.Round(1 / cfg.BenHoldoutFrac))
	}
	var train, hold []Sample
	for i, s := range ds.Samples {
		if period > 1 && i%period == period-1 {
			hold = append(hold, s)
		} else {
			train = append(train, s)
		}
	}
	if len(train) == 0 {
		train = ds.Samples
	}
	if len(hold) == 0 {
		hold = train
	}

	// Standardizers (fit on the training split).
	lights := make([][]float64, len(train))
	for i, s := range train {
		lights[i] = s.Light
	}
	m.LightNorm = FitStandardizer(lights)
	for _, k := range feat.HeavyKinds() {
		rows := make([][]float64, len(train))
		for i, s := range train {
			rows[i] = s.Heavy[k]
		}
		m.HeavyNorm[k] = FitStandardizer(rows)
	}

	// Normalized inputs and accuracy targets.
	normLights := make([][]float64, len(train))
	targets := make([][]float64, len(train))
	for i, s := range train {
		normLights[i] = m.LightNorm.Apply(s.Light)
		targets[i] = s.MAP
	}

	batch := 64
	if batch > len(train) {
		batch = len(train)
	}
	trainer := nn.Trainer{
		LR: 0.01, Momentum: 0.9, L2: 1e-4,
		Epochs: cfg.Epochs, Batch: batch, Seed: cfg.Seed,
		Tol: 1e-6, Patience: 25,
	}

	// Content-agnostic accuracy model.
	sizes := append([]int{feat.SpecOf(feat.Light).Dim}, cfg.Hidden...)
	sizes = append(sizes, len(cfg.Branches))
	m.LightNet = nn.NewNet(cfg.Seed+100, sizes...)
	trainer.FitNet(m.LightNet, normLights, targets)

	// Content-aware accuracy models, one per heavy feature, trained on
	// the light model's residual with stronger weight decay.
	residuals := make([][]float64, len(train))
	for i := range train {
		pred := m.LightNet.Forward(normLights[i])
		res := make([]float64, len(pred))
		for j := range pred {
			res[j] = targets[i][j] - pred[j]
		}
		residuals[i] = res
	}
	for _, k := range feat.HeavyKinds() {
		heavy := make([][]float64, len(train))
		for i, s := range train {
			heavy[i] = append([]float64(nil), m.sketchApplyInto(k, s.Heavy[k])...)
		}
		net := nn.NewTwoTower(nn.TwoTowerConfig{
			InA: feat.SpecOf(feat.Light).Dim, InB: len(heavy[0]),
			ProjDim: cfg.ProjDim, Hidden: cfg.Hidden,
			Out: len(cfg.Branches), Seed: cfg.Seed + 200 + int64(k),
		})
		tt := trainer
		tt.Seed += int64(k)
		tt.L2 = 1e-3
		tt.FitTwoTower(net, normLights, heavy, residuals)
		m.ContentNets[k] = net
		// Holdout-gated residual scaling: keep the residual only when it
		// improves branch selection on unseen snippets by a clear margin;
		// a tower that learned noise degrades to the light model rather
		// than misleading the scheduler.
		gateContentTower(m, k, hold, cfg.BudgetsMS)
	}

	// Per-branch latency regressions on raw light features.
	m.LatDet = make([]*linreg.Model, len(cfg.Branches))
	m.LatTrk = make([]*linreg.Model, len(cfg.Branches))
	ysDet := make([]float64, len(train))
	ysTrk := make([]float64, len(train))
	for bi := range cfg.Branches {
		for i, s := range train {
			ysDet[i] = s.DetMS[bi]
			ysTrk[i] = s.TrkMS[bi]
		}
		var err error
		if m.LatDet[bi], err = linreg.Fit(lights, ysDet, 1e-6); err != nil {
			return nil, fmt.Errorf("sched: latency fit (det, branch %d): %w", bi, err)
		}
		if m.LatTrk[bi], err = linreg.Fit(lights, ysTrk, 1e-6); err != nil {
			return nil, fmt.Errorf("sched: latency fit (trk, branch %d): %w", bi, err)
		}
	}
	trainRisk(cfg, train, m)

	m.Ben = buildBenTable(cfg, hold, m)
	return m, nil
}

// driftPrior is the contention-drift component of the prediction
// interval: log latency-multiplier ratios log(M(g+delta)/M(g)) for a
// grid of decide-time loads g in {0, 0.25, 0.5} and within-GoF drifts
// delta in {0, 0.1, 0.25} under the simulator's contention model
// M(g) = 1 + 1.2g. A scheduler prices a GoF at the contention it sees
// when it decides, but on a live board admissions and preemptions move
// the load before the GoF finishes; crossing every window residual with
// this grid folds that stationary drift assumption into the per-branch
// residual mean and variance, which is what lets the empirical p95
// coverage hold on open-world workloads and not only in closed replays.
var driftPrior = func() []float64 {
	mult := func(g float64) float64 { return 1 + 1.2*g }
	var out []float64
	for _, g := range []float64{0, 0.25, 0.5} {
		for _, d := range []float64{0, 0.1, 0.25} {
			out = append(out, math.Log(mult(g+d)/mult(g)))
		}
	}
	return out
}()

// trainRisk fits the risk-side models: per-branch log-ratio residual
// variance of the latency fits (seeding the prediction intervals) and
// the per-branch logistic tracker-failure model.
func trainRisk(cfg Config, train []Sample, m *Models) {
	m.LatVar = make([]glm.VarAcc, len(cfg.Branches))
	m.FailNets = make([]glm.Model, len(cfg.Branches))
	lights := make([][]float64, len(train))
	fails := make([]float64, len(train))
	for i, s := range train {
		lights[i] = s.Light
	}
	for bi := range cfg.Branches {
		positives := 0
		for i, s := range train {
			pd, pt := m.PredictLatency(bi, s.Light)
			pred := pd + pt
			// GoF-window residuals: each window mean carries the
			// execution noise a serve-time GoF realizes, which the
			// snippet aggregate averages away. Each window residual is
			// crossed with the contention-drift prior so the interval
			// also budgets for the board's load moving between decide
			// and execute. When a dataset predates the window series
			// (no WinMS), fall back to the aggregate so old datasets
			// still train.
			if wins := winsOf(s, bi); len(wins) > 0 {
				for _, w := range wins {
					if w > 1e-6 && pred > 1e-6 {
						r := math.Log(w / pred)
						for _, dt := range driftPrior {
							m.LatVar[bi].Add(r + dt)
						}
					}
				}
			} else if total := s.DetMS[bi] + s.TrkMS[bi]; total > 1e-6 && pred > 1e-6 {
				m.LatVar[bi].Add(math.Log(total / pred))
			}
			// Tracker failure: the branch's snippet mAP collapsed below
			// half the best achievable mAP on the same snippet.
			best := s.MAP[0]
			for _, v := range s.MAP[1:] {
				if v > best {
					best = v
				}
			}
			fails[i] = 0
			if best > 0 && s.MAP[bi] < 0.5*best {
				fails[i] = 1
				positives++
			}
		}
		// A branch that never (or always) fails on the training set has
		// no separable signal; nil keeps the constant verdict implicit.
		if positives == 0 || positives == len(train) {
			continue
		}
		fm, err := (glm.Fitter{Family: glm.Binomial}).Fit(&glm.Dataset{
			X: lights, Y: append([]float64(nil), fails...),
		})
		if err == nil {
			m.FailNets[bi] = *fm
		}
	}
}

// winsOf returns sample s's GoF-window latency means for branch bi, or
// nil when the dataset predates window collection.
func winsOf(s Sample, bi int) []float64 {
	if bi >= len(s.WinMS) {
		return nil
	}
	return s.WinMS[bi]
}

// PredictAccuracyLight returns the content-agnostic per-branch accuracy
// prediction A(b, f_L). The result is a fresh slice.
func (m *Models) PredictAccuracyLight(light []float64) []float64 {
	return m.PredictAccuracyLightInto(nil, light)
}

// PredictAccuracyLightInto is the allocation-free variant of
// PredictAccuracyLight: the prediction is written into dst (grown only
// when its capacity is short) and the normalization runs through
// model-owned scratch. The returned slice aliases dst's backing store
// and stays valid until the caller's next use of that buffer.
func (m *Models) PredictAccuracyLightInto(dst, light []float64) []float64 {
	m.scrNorm = m.LightNorm.ApplyInto(m.scrNorm, light)
	out := m.LightNet.Forward(m.scrNorm)
	dst = append(dst[:0], out...)
	if m.AccScale != 0 && (m.AccScale != 1 || m.AccBias != 0) {
		for i := range dst {
			dst[i] = m.AccScale*dst[i] + m.AccBias
		}
	} else if m.AccBias != 0 {
		for i := range dst {
			dst[i] += m.AccBias
		}
	}
	return dst
}

// CPUAdjFactor returns the online-learned global CPU-side latency
// multiplier (1 on freshly trained or pre-adaptation models).
func (m *Models) CPUAdjFactor() float64 {
	if m.LatCPUAdj == 0 {
		return 1
	}
	return m.LatCPUAdj
}

// LatencyBiasMS returns branch bi's online-learned additive latency
// correction in realized milliseconds (zero before any adaptation).
func (m *Models) LatencyBiasMS(bi int) float64 {
	if bi < 0 || bi >= len(m.LatBiasMS) {
		return 0
	}
	return m.LatBiasMS[bi]
}

// PredictAccuracyContent returns the content-aware per-branch accuracy
// prediction A(b, [f_L, f_H^k]) for one heavy feature: the light model's
// prediction plus the feature's residual tower.
func (m *Models) PredictAccuracyContent(k feat.Kind, light, heavy []float64) []float64 {
	return m.predictAccuracyContentInto(nil, k, light, heavy)
}

// predictAccuracyContentInto writes the content-aware prediction into
// dst, reusing the model-owned normalization and sketch scratch. The
// normalized light vector PredictAccuracyLightInto leaves in scrNorm is
// exactly what the residual tower needs, so the standardizer runs once.
func (m *Models) predictAccuracyContentInto(dst []float64, k feat.Kind, light, heavy []float64) []float64 {
	net, ok := m.ContentNets[k]
	if !ok {
		panic(fmt.Sprintf("sched: no content model for %v", k))
	}
	dst = m.PredictAccuracyLightInto(dst, light)
	res := net.Forward(m.scrNorm, m.sketchApplyInto(k, heavy))
	for i := range dst {
		dst[i] += res[i]
	}
	return dst
}

// PredictAccuracySet returns A(b, f) for a set of selected heavy features:
// the per-feature model outputs are ensembled by averaging. An empty set
// yields the content-agnostic prediction.
func (m *Models) PredictAccuracySet(kinds []feat.Kind, light []float64, heavy map[feat.Kind][]float64) []float64 {
	return m.PredictAccuracySetInto(nil, kinds, light, heavy)
}

// PredictAccuracySetInto is the allocation-free variant of
// PredictAccuracySet: the ensemble accumulates into dst (grown only when
// its capacity is short) and each per-feature prediction lands in
// model-owned scratch. The returned slice aliases dst's backing store.
func (m *Models) PredictAccuracySetInto(dst []float64, kinds []feat.Kind, light []float64, heavy map[feat.Kind][]float64) []float64 {
	if len(kinds) == 0 {
		return m.PredictAccuracyLightInto(dst, light)
	}
	if cap(dst) < len(m.Branches) {
		dst = make([]float64, len(m.Branches))
	} else {
		dst = dst[:len(m.Branches)]
		for i := range dst {
			dst[i] = 0
		}
	}
	for _, k := range kinds {
		m.scrContent = m.predictAccuracyContentInto(m.scrContent, k, light, heavy[k])
		for i := range dst {
			dst[i] += m.scrContent[i]
		}
	}
	inv := 1.0 / float64(len(kinds))
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}

// PredictLatency returns the per-frame base costs (detector GPU ms,
// tracker CPU ms, both in TX2 units at zero contention) for branch bi.
func (m *Models) PredictLatency(bi int, light []float64) (detMS, trkMS float64) {
	detMS = math.Max(m.LatDet[bi].Predict(light), 0)
	trkMS = math.Max(m.LatTrk[bi].Predict(light), 0)
	return detMS, trkMS
}

// LatLogStd returns branch bi's log-ratio residual standard deviation
// (0 when the bundle carries no variance information — pre-risk
// bundles, or a branch with too few residuals).
func (m *Models) LatLogStd(bi int) float64 {
	if bi < 0 || bi >= len(m.LatVar) {
		return 0
	}
	return m.LatVar[bi].Std()
}

// QuantileFactor returns the multiplicative factor exp(mu(bi) + z x
// sigma(bi)) that lifts branch bi's point latency estimate to its
// z-score quantile under the lognormal residual model. The residual
// mean enters because the accumulated residuals are not centered: the
// drift prior and serve-side feedback both shift realized latency
// systematically above the fit, and a quantile that ignores the shift
// under-covers by exactly that bias. It is 1 when no variance is
// known, so risk-blind bundles degrade to mean admission. Allocation
// free: the per-GoF decision path multiplies every branch's planned
// kernel latency by this.
func (m *Models) QuantileFactor(bi int, z float64) float64 {
	s := m.LatLogStd(bi)
	if s <= 0 || z == 0 {
		return 1
	}
	// Clamp to [1, 4]: the interval never undercuts the point estimate,
	// and a cold, noisy accumulator cannot veto every branch — 4x covers
	// any plausible contention tail.
	f := math.Exp(m.LatVar[bi].Mean + z*s)
	if f < 1 {
		f = 1
	}
	if f > 4 {
		f = 4
	}
	return f
}

// PredictQuantile returns the q-quantile of branch bi's per-frame base
// kernel latency (TX2 units, zero contention): the point prediction
// lifted by the lognormal interval. q <= 0.5 with no variance info
// degrades to the point estimate — PredictQuantile(bi, f, 0.5) equals
// PredictLatency's total.
func (m *Models) PredictQuantile(bi int, light []float64, q float64) float64 {
	det, trk := m.PredictLatency(bi, light)
	return (det + trk) * m.QuantileFactor(bi, glm.NormalQuantile(q))
}

// PredictFailProb returns branch bi's predicted tracker-failure
// probability under the light features, or 0 when the bundle has no
// failure model for the branch.
func (m *Models) PredictFailProb(bi int, light []float64) float64 {
	if bi < 0 || bi >= len(m.FailNets) || m.FailNets[bi].N == 0 {
		return 0
	}
	return m.FailNets[bi].Predict(light)
}

// gateContentTower picks the residual scale in {1, 0.5, 0.25, 0} that
// maximizes the mean true accuracy of the branches the content predictor
// selects on the holdout samples, and bakes it into the tower's output
// layer.
func gateContentTower(m *Models, k feat.Kind, hold []Sample, budgets []float64) {
	net := m.ContentNets[k]
	out := net.Trunk.Layers[len(net.Trunk.Layers)-1]
	origW := append([]float64(nil), out.W...)
	origB := append([]float64(nil), out.B...)
	apply := func(scale float64) {
		for i := range out.W {
			out.W[i] = origW[i] * scale
		}
		for i := range out.B {
			out.B[i] = origB[i] * scale
		}
	}
	// Quality of the fully gated tower (scale 0 == the light model).
	apply(0)
	q0 := contentPickQuality(m, k, hold, budgets)
	// A nonzero residual must beat the light model by a clear margin on
	// the holdout; otherwise selection noise (winner's curse on a small
	// split) would keep residuals that hurt on genuinely unseen videos.
	const gateMargin = 0.004
	bestScale, bestQ := 0.0, q0+gateMargin
	for _, scale := range []float64{1, 0.5, 0.25} {
		apply(scale)
		if q := contentPickQuality(m, k, hold, budgets); q > bestQ+1e-12 {
			bestQ = q
			bestScale = scale
		}
	}
	apply(bestScale)
}

// contentPickQuality is the mean true accuracy of the branches the
// content predictor for k selects over the given samples, averaged over
// the latency-budget buckets. Measuring the *constrained* argmax matters:
// unconstrained, one heavy branch dominates all content, and the value of
// content features only appears once the feasible set is budget-limited
// (exactly the scheduler's operating regime).
func contentPickQuality(m *Models, k feat.Kind, samples []Sample, budgets []float64) float64 {
	var sum float64
	n := 0
	for _, s := range samples {
		pred := m.PredictAccuracyContent(k, s.Light, s.Heavy[k])
		for _, budget := range budgets {
			feasible := feasibleSet(s, budget)
			if len(feasible) == 0 {
				continue
			}
			sum += s.MAP[argmaxOver(pred, feasible)]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// sketchApplyInto standardizes a heavy feature and applies its frozen
// random projection, both through model-owned scratch buffers.
func (m *Models) sketchApplyInto(k feat.Kind, heavy []float64) []float64 {
	m.scrHeavy = m.HeavyNorm[k].ApplyInto(m.scrHeavy, heavy)
	z := m.scrHeavy
	proj := m.Sketch[k]
	if len(proj) == 0 {
		return z
	}
	if cap(m.scrSketch) < len(proj[0]) {
		m.scrSketch = make([]float64, len(proj[0]))
	}
	out := m.scrSketch[:len(proj[0])]
	for j := range out {
		out[j] = 0
	}
	for i, zi := range z {
		if zi == 0 {
			continue
		}
		row := proj[i]
		for j := range out {
			out[j] += zi * row[j]
		}
	}
	m.scrSketch = out
	return out
}

// BenTable is the offline-computed benefit lookup of Sec. 3.4: the
// expected accuracy gain of scheduling with one heavy feature versus the
// light-only scheduler, bucketed by the available per-frame kernel
// latency budget. Implemented as a lookup table "to further reduce the
// online cost" (Sec. 3.4).
type BenTable struct {
	BudgetsMS []float64
	// Gain[bucket][kind] is the mean true-mAP improvement.
	Gain [][]float64
}

// Benefit returns Ben({k}) at the given kernel budget. The lookup is
// conservative: for a budget between two buckets it returns the *minimum*
// of the two, so a feature is only credited with gains that hold across
// the whole budget neighborhood (optimistic nearest-bucket lookups pull
// regime-boundary gains into regimes where the feature actually hurts).
func (t *BenTable) Benefit(k feat.Kind, budgetMS float64) float64 {
	if len(t.BudgetsMS) == 0 {
		return 0
	}
	// BudgetsMS is sorted ascending; find the bracketing buckets.
	lo := 0
	for i, b := range t.BudgetsMS {
		if b <= budgetMS {
			lo = i
		}
	}
	hi := lo
	if lo+1 < len(t.BudgetsMS) && t.BudgetsMS[lo] < budgetMS {
		hi = lo + 1
	}
	return math.Min(t.Gain[lo][k], t.Gain[hi][k])
}

// SetBenefit estimates Ben(S) for a feature set with submodular
// diminishing returns: the best singleton counts fully, every further
// feature contributes 30% of its singleton benefit.
func (t *BenTable) SetBenefit(set []feat.Kind, budgetMS float64) float64 {
	if len(set) == 0 {
		return 0
	}
	// Scheduler feature sets never exceed the heavy-kind count, so a
	// fixed stack array keeps this off the heap; the summation below
	// walks the same descending order the old sort produced, so results
	// are bit-identical.
	var scratch [8]float64
	gains := scratch[:0]
	if len(set) > len(scratch) {
		gains = make([]float64, 0, len(set))
	}
	for _, k := range set {
		gains = append(gains, t.Benefit(k, budgetMS))
	}
	for i := 1; i < len(gains); i++ {
		g := gains[i]
		j := i - 1
		for j >= 0 && gains[j] < g {
			gains[j+1] = gains[j]
			j--
		}
		gains[j+1] = g
	}
	total := gains[0]
	for _, g := range gains[1:] {
		if g > 0 {
			total += 0.3 * g
		}
	}
	return total
}

// buildBenTable replays the trained predictors over the training
// snippets: for each budget bucket, the benefit of a feature is the mean
// difference in *true* snippet mAP between the branch its predictor
// selects and the branch the light-only predictor selects, restricted to
// branches whose measured kernel latency fits the bucket.
func buildBenTable(cfg Config, samples []Sample, m *Models) *BenTable {
	t := &BenTable{BudgetsMS: cfg.BudgetsMS}
	t.Gain = make([][]float64, len(cfg.BudgetsMS))
	for gi, budget := range cfg.BudgetsMS {
		t.Gain[gi] = make([]float64, feat.NumKinds)
		counts := 0
		sums := make([]float64, feat.NumKinds)
		for _, s := range samples {
			// Feasible branches under this sample's measured latencies.
			feasible := feasibleSet(s, budget)
			if len(feasible) == 0 {
				continue
			}
			counts++
			baseIdx := argmaxOver(m.PredictAccuracyLight(s.Light), feasible)
			baseTrue := s.MAP[baseIdx]
			for _, k := range feat.HeavyKinds() {
				pred := m.PredictAccuracyContent(k, s.Light, s.Heavy[k])
				idx := argmaxOver(pred, feasible)
				sums[k] += s.MAP[idx] - baseTrue
			}
		}
		if counts > 0 {
			for k := range sums {
				t.Gain[gi][k] = sums[k] / float64(counts)
			}
		}
	}
	return t
}

// feasibleSet returns the branch indices whose measured per-frame kernel
// latency fits the budget.
func feasibleSet(s Sample, budgetMS float64) []int {
	var out []int
	for bi := range s.DetMS {
		if s.DetMS[bi]+s.TrkMS[bi] <= budgetMS {
			out = append(out, bi)
		}
	}
	return out
}

// argmaxOver returns the index in `over` with the highest value.
func argmaxOver(values []float64, over []int) int {
	best := over[0]
	for _, i := range over[1:] {
		if values[i] > values[best] {
			best = i
		}
	}
	return best
}

// SwitchMatrix measures the offline switching-cost matrix over the
// detector-knob grid (shape, nprop), aggregating branches that share a
// detector configuration — the data behind Figure 5(a).
func SwitchMatrix(branches []mbek.Branch) (labels []string, costs [][]float64) {
	type dc struct{ shape, nprop int }
	seen := map[dc]mbek.Branch{}
	var order []dc
	for _, b := range branches {
		k := dc{b.Shape, b.NProp}
		if _, ok := seen[k]; !ok {
			seen[k] = b
			order = append(order, k)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].shape != order[j].shape {
			return order[i].shape < order[j].shape
		}
		return order[i].nprop < order[j].nprop
	})
	labels = make([]string, len(order))
	costs = make([][]float64, len(order))
	for i, k := range order {
		labels[i] = fmt.Sprintf("(%d,%d)", k.shape, k.nprop)
		costs[i] = make([]float64, len(order))
		for j, k2 := range order {
			costs[i][j] = mbek.SwitchCostMS(seen[k], seen[k2])
		}
	}
	return labels, costs
}
