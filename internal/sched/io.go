package sched

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Save serializes the trained models with encoding/gob. Only exported
// fields persist; network working buffers are reallocated lazily on
// first use after Load.
func (m *Models) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m); err != nil {
		return fmt.Errorf("sched: encode models: %w", err)
	}
	return nil
}

// Load deserializes models previously written by Save.
func Load(r io.Reader) (*Models, error) {
	var m Models
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("sched: decode models: %w", err)
	}
	return &m, nil
}

// SaveFile writes the models to path.
func (m *Models) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sched: %w", err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads models from path.
func LoadFile(path string) (*Models, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Clone returns a deep copy of the models via a gob round-trip. The
// prediction networks cache working buffers inside their layers, so a
// *Models is not safe for concurrent use; the serving engine gives each
// stream its own clone.
func (m *Models) Clone() (*Models, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, err
	}
	return Load(&buf)
}
