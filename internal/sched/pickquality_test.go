package sched

import (
	"testing"

	"litereconfig/internal/feat"
	"litereconfig/internal/vid"
)

// pickQuality returns the mean true accuracy of the branches a predictor
// selects over held-out samples.
func pickQuality(samples []Sample, pred func(Sample) []float64) float64 {
	var sum float64
	for _, s := range samples {
		p := pred(s)
		best := 0
		for i := range p {
			if p[i] > p[best] {
				best = i
			}
		}
		sum += s.MAP[best]
	}
	return sum / float64(len(samples))
}

// TestContentModelsNeverMuchWorseThanLight is the holdout-gating
// guarantee: on unseen videos, scheduling with any single content feature
// must not be clearly worse than content-agnostic scheduling.
func TestContentModelsNeverMuchWorseThanLight(t *testing.T) {
	_, m := fixture(t)
	cfg := tinyConfig()
	var vids []*vid.Video
	for i := int64(0); i < 5; i++ {
		vids = append(vids, vid.Generate("pq", 700+i, vid.GenConfig{Frames: 80}))
	}
	held := Collect(cfg, vids)
	light := pickQuality(held.Samples, func(s Sample) []float64 {
		return m.PredictAccuracyLight(s.Light)
	})
	for _, k := range feat.HeavyKinds() {
		q := pickQuality(held.Samples, func(s Sample) []float64 {
			return m.PredictAccuracyContent(k, s.Light, s.Heavy[k])
		})
		t.Logf("%-12s pick quality %.3f (light %.3f)", k, q, light)
		if q < light-0.05 {
			t.Errorf("%v pick quality %.3f clearly below light %.3f", k, q, light)
		}
	}
}
