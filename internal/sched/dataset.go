// Package sched implements the offline training pipeline of the
// scheduler (Sec. 4 and 5.2): it executes every execution branch over the
// scheduler-training snippets to collect (features, per-branch accuracy,
// per-branch latency) labels, trains the content-aware accuracy
// prediction networks and the per-branch latency regressions, and builds
// the benefit table Ben(f_H) used by the online cost-benefit analyzer.
package sched

import (
	"fmt"
	"math"

	"litereconfig/internal/detect"
	"litereconfig/internal/feat"
	"litereconfig/internal/mbek"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

// Config controls label collection and training.
type Config struct {
	// Branches is the branch space the predictors cover. Defaults to
	// mbek.DefaultBranches().
	Branches []mbek.Branch
	// Det is the MBEK's detector model. Defaults to detect.FasterRCNN.
	Det detect.Model
	// SnippetLen is the look-ahead window N (Sec. 3.3). Defaults to 100.
	SnippetLen int
	// SnippetStride is the offset between training snippet starts;
	// overlapping snippets multiply the training set. Defaults to
	// SnippetLen/2.
	SnippetStride int
	// Device is the measurement board for latency labels. Defaults to TX2.
	Device simlat.Device
	// Seed drives every stochastic component. Defaults to 1.
	Seed int64

	// Network shape. The paper uses ProjDim 256 and four 256-wide hidden
	// layers; the defaults here are smaller so offline training finishes
	// in seconds on a laptop while preserving the architecture.
	ProjDim int   // defaults to 32
	Hidden  []int // defaults to [64]
	Epochs  int   // defaults to 120 with early stopping
	// SketchDim is the width of the frozen random projection applied to
	// each heavy feature before its trainable tower (a Johnson-
	// Lindenstrauss sketch). It bounds the trainable parameter count of
	// the high-dimensional features, which is what keeps the content
	// models sample-efficient on small offline datasets. Defaults to 64.
	SketchDim int
	// BenHoldoutFrac is the fraction of offline samples withheld from
	// predictor training and used only to measure the benefit table, so
	// Ben(f_H) reflects generalization gain rather than training-set
	// optimism. Defaults to 0.25.
	BenHoldoutFrac float64

	// BudgetsMS are the kernel-latency buckets of the benefit table.
	BudgetsMS []float64
}

func (c *Config) applyDefaults() {
	if c.Branches == nil {
		c.Branches = mbek.DefaultBranches()
	}
	if c.Det.Name == "" {
		c.Det = detect.FasterRCNN
	}
	if c.SnippetLen == 0 {
		c.SnippetLen = 100
	}
	if c.SnippetStride == 0 {
		c.SnippetStride = c.SnippetLen / 2
	}
	if c.Device.Name == "" {
		c.Device = simlat.TX2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ProjDim == 0 {
		c.ProjDim = 32
	}
	if c.Hidden == nil {
		c.Hidden = []int{64}
	}
	if c.Epochs == 0 {
		c.Epochs = 120
	}
	if c.SketchDim == 0 {
		c.SketchDim = 64
	}
	if c.BenHoldoutFrac == 0 {
		c.BenHoldoutFrac = 0.25
	}
	if c.BudgetsMS == nil {
		c.BudgetsMS = []float64{10, 15, 20, 27, 33.3, 50, 75, 100}
	}
}

// Sample is one labeled training snippet.
type Sample struct {
	Light []float64               // light features of the first frame
	Heavy map[feat.Kind][]float64 // heavy features of the first frame
	MAP   []float64               // per-branch snippet mAP
	DetMS []float64               // per-branch per-frame detector ms (TX2, no contention)
	TrkMS []float64               // per-branch per-frame tracker ms
	// WinMS holds, per branch, the mean per-frame latency of each
	// GoF-length window of the snippet (window = the branch's own GoF
	// size). Snippet aggregates (DetMS+TrkMS) average away exactly the
	// execution noise a serve-time GoF realizes; the window means keep
	// it, and risk training measures its residual variance from them.
	WinMS [][]float64
}

// Dataset is the collected offline label set.
type Dataset struct {
	Cfg     Config
	Samples []Sample
}

// snippetsOf cuts a video into overlapping training snippets.
func snippetsOf(v *vid.Video, length, stride int) []vid.Snippet {
	var out []vid.Snippet
	for start := 0; start+length <= v.Len(); start += stride {
		out = append(out, vid.Snippet{Video: v, Start: start, N: length})
	}
	if len(out) == 0 && v.Len() > 0 {
		out = append(out, vid.Snippet{Video: v, Start: 0, N: v.Len()})
	}
	return out
}

// Collect executes every branch over every training snippet and extracts
// all features of each snippet's first frame. This is the expensive
// offline phase ("10% of the training dataset to train the scheduler",
// Sec. 5.2).
func Collect(cfg Config, videos []*vid.Video) *Dataset {
	cfg.applyDefaults()
	ex := feat.NewExtractor(cfg.Seed)
	ds := &Dataset{Cfg: cfg}
	for vi, v := range videos {
		for si, s := range snippetsOf(v, cfg.SnippetLen, cfg.SnippetStride) {
			sample := Sample{
				Light: feat.LightVector(v, s.First()),
				Heavy: map[feat.Kind][]float64{},
				MAP:   make([]float64, len(cfg.Branches)),
				DetMS: make([]float64, len(cfg.Branches)),
				TrkMS: make([]float64, len(cfg.Branches)),
				WinMS: make([][]float64, len(cfg.Branches)),
			}
			for _, k := range feat.HeavyKinds() {
				sample.Heavy[k] = ex.Extract(k, v, s.First())
			}
			for bi, b := range cfg.Branches {
				ev, series := mbek.EvalBranchSeries(cfg.Det, s, b, cfg.Device, 0,
					cfg.Seed+int64(vi)*100003+int64(si)*307+int64(bi))
				sample.MAP[bi] = ev.MAP
				sample.DetMS[bi] = ev.DetMS
				sample.TrkMS[bi] = ev.TrkMS
				sample.WinMS[bi] = windowMeans(series, b.GoF)
			}
			ds.Samples = append(ds.Samples, sample)
		}
	}
	return ds
}

// windowMeans folds a per-frame latency series into per-window means of
// the given window size (the branch's GoF length; <1 treated as 1). A
// trailing partial window is dropped: serve-time GoFs are full-length,
// and a short tail would overweight single-frame noise.
func windowMeans(series []float64, win int) []float64 {
	if win < 1 {
		win = 1
	}
	var out []float64
	for i := 0; i+win <= len(series); i += win {
		sum := 0.0
		for _, v := range series[i : i+win] {
			sum += v
		}
		out = append(out, sum/float64(win))
	}
	return out
}

// Standardizer stores per-dimension mean and standard deviation for
// feature normalization; networks train on standardized inputs.
type Standardizer struct {
	Mean []float64
	Std  []float64
}

// FitStandardizer computes per-dimension statistics over the rows.
func FitStandardizer(rows [][]float64) *Standardizer {
	if len(rows) == 0 {
		return &Standardizer{}
	}
	d := len(rows[0])
	s := &Standardizer{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, r := range rows {
		for i, x := range r {
			s.Mean[i] += x
		}
	}
	inv := 1.0 / float64(len(rows))
	for i := range s.Mean {
		s.Mean[i] *= inv
	}
	for _, r := range rows {
		for i, x := range r {
			dx := x - s.Mean[i]
			s.Std[i] += dx * dx
		}
	}
	for i := range s.Std {
		s.Std[i] = math.Sqrt(s.Std[i] * inv)
		if s.Std[i] < 1e-8 {
			s.Std[i] = 1
		}
	}
	return s
}

// Apply returns the standardized copy of x.
func (s *Standardizer) Apply(x []float64) []float64 {
	return s.ApplyInto(nil, x)
}

// ApplyInto standardizes x into dst, growing it only when its capacity
// is short; the returned slice is dst's backing store resized to len(x).
// Callers that hold a reusable buffer avoid the per-call allocation of
// Apply on the scheduler's per-GoF hot path.
func (s *Standardizer) ApplyInto(dst, x []float64) []float64 {
	if len(x) != len(s.Mean) {
		panic(fmt.Sprintf("sched: standardizer got %d dims, want %d", len(x), len(s.Mean)))
	}
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	} else {
		dst = dst[:len(x)]
	}
	for i, v := range x {
		dst[i] = (v - s.Mean[i]) / s.Std[i]
	}
	return dst
}
