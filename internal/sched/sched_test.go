package sched

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"litereconfig/internal/feat"
	"litereconfig/internal/mbek"
	"litereconfig/internal/track"
	"litereconfig/internal/vid"
)

// tinyConfig keeps tests fast: a small branch space and small nets.
func tinyConfig() Config {
	var branches []mbek.Branch
	for _, shape := range []int{224, 576} {
		for _, np := range []int{1, 100} {
			branches = append(branches, mbek.Branch{Shape: shape, NProp: np,
				GoF: 1, Tracker: track.KCF, DS: 1})
			for _, gof := range []int{4, 20} {
				branches = append(branches, mbek.Branch{Shape: shape, NProp: np,
					Tracker: track.KCF, GoF: gof, DS: 1})
			}
		}
	}
	return Config{
		Branches: branches, SnippetLen: 40, SnippetStride: 40,
		Seed: 3, ProjDim: 8, Hidden: []int{16}, Epochs: 800,
		BudgetsMS: []float64{10, 30, 80},
	}
}

func trainVideos(n int, frames int) []*vid.Video {
	vs := make([]*vid.Video, n)
	for i := range vs {
		vs[i] = vid.Generate("t", int64(i)+50, vid.GenConfig{Frames: frames})
	}
	return vs
}

// shared fixture: collecting and training once keeps the suite fast.
var (
	fixtureOnce sync.Once
	fixtureDS   *Dataset
	fixtureM    *Models
	fixtureErr  error
)

func fixture(t *testing.T) (*Dataset, *Models) {
	t.Helper()
	fixtureOnce.Do(func() {
		cfg := tinyConfig()
		fixtureDS = Collect(cfg, trainVideos(10, 80))
		fixtureM, fixtureErr = Train(cfg, fixtureDS)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureDS, fixtureM
}

func TestCollectShapes(t *testing.T) {
	ds, _ := fixture(t)
	if len(ds.Samples) != 20 { // 10 videos x 2 snippets (80/40)
		t.Fatalf("samples = %d, want 20", len(ds.Samples))
	}
	nb := len(tinyConfig().Branches)
	for _, s := range ds.Samples {
		if len(s.MAP) != nb || len(s.DetMS) != nb || len(s.TrkMS) != nb {
			t.Fatalf("per-branch label lengths wrong")
		}
		if len(s.Light) != 4 {
			t.Fatalf("light dim = %d", len(s.Light))
		}
		for _, k := range feat.HeavyKinds() {
			if len(s.Heavy[k]) != feat.SpecOf(k).Dim {
				t.Fatalf("heavy %v dim wrong", k)
			}
		}
		for bi := range s.MAP {
			if s.MAP[bi] < 0 || s.MAP[bi] > 1 {
				t.Fatalf("mAP label out of range: %v", s.MAP[bi])
			}
			if s.DetMS[bi] <= 0 {
				t.Fatalf("detector cost label missing")
			}
		}
	}
}

func TestLabelsShowAccuracyLatencyTradeoff(t *testing.T) {
	ds, _ := fixture(t)
	cfg := tinyConfig()
	// Identify the heaviest and lightest branch.
	var heavy, light int
	for i, b := range cfg.Branches {
		if b.Shape == 576 && b.NProp == 100 && b.GoF == 1 {
			heavy = i
		}
		if b.Shape == 224 && b.NProp == 1 && b.GoF == 20 {
			light = i
		}
	}
	var mapH, mapL, msH, msL float64
	for _, s := range ds.Samples {
		mapH += s.MAP[heavy]
		mapL += s.MAP[light]
		msH += s.DetMS[heavy] + s.TrkMS[heavy]
		msL += s.DetMS[light] + s.TrkMS[light]
	}
	if mapH <= mapL {
		t.Fatalf("heavy branch mAP %.3f should beat light %.3f", mapH, mapL)
	}
	if msH <= msL {
		t.Fatalf("heavy branch cost %.1f should exceed light %.1f", msH, msL)
	}
}

func TestTrainProducesAllModels(t *testing.T) {
	_, m := fixture(t)
	nb := len(tinyConfig().Branches)
	if m.LightNet == nil || len(m.ContentNets) != 5 {
		t.Fatal("missing accuracy models")
	}
	if len(m.LatDet) != nb || len(m.LatTrk) != nb {
		t.Fatal("missing latency models")
	}
	if m.Ben == nil || len(m.Ben.Gain) != 3 {
		t.Fatal("missing benefit table")
	}
}

func TestAccuracyPredictorsUseful(t *testing.T) {
	// On held-out videos, the light predictor's argmax branch should be
	// much better than a random branch, and content predictors should not
	// be worse than light on average (true accuracy of selected branch).
	_, m := fixture(t)
	cfg := tinyConfig()
	held := Collect(cfg, []*vid.Video{
		vid.Generate("h1", 901, vid.GenConfig{Frames: 80}),
		vid.Generate("h2", 902, vid.GenConfig{Frames: 80}),
		vid.Generate("h3", 903, vid.GenConfig{Frames: 80}),
	})
	var lightPick, meanAll, bestPick float64
	n := 0
	for _, s := range held.Samples {
		pred := m.PredictAccuracyLight(s.Light)
		pick := argmax(pred)
		lightPick += s.MAP[pick]
		best := 0
		var sum float64
		for bi, v := range s.MAP {
			sum += v
			if v > s.MAP[best] {
				best = bi
			}
		}
		bestPick += s.MAP[best]
		meanAll += sum / float64(len(s.MAP))
		n++
	}
	lightPick /= float64(n)
	meanAll /= float64(n)
	bestPick /= float64(n)
	if lightPick <= meanAll {
		t.Fatalf("light predictor pick (%.3f) no better than random branch (%.3f)",
			lightPick, meanAll)
	}
	t.Logf("light pick %.3f, random %.3f, oracle %.3f", lightPick, meanAll, bestPick)
}

func argmax(v []float64) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

func TestLatencyPredictionAccuracy(t *testing.T) {
	ds, m := fixture(t)
	// Relative error of predicted kernel latency within 25% on average.
	var relErr float64
	n := 0
	for _, s := range ds.Samples {
		for bi := range m.Branches {
			det, trk := m.PredictLatency(bi, s.Light)
			pred := det + trk
			truth := s.DetMS[bi] + s.TrkMS[bi]
			relErr += math.Abs(pred-truth) / truth
			n++
		}
	}
	relErr /= float64(n)
	if relErr > 0.25 {
		t.Fatalf("mean relative latency error %.3f, want <= 0.25", relErr)
	}
}

func TestPredictLatencyNonNegative(t *testing.T) {
	_, m := fixture(t)
	weird := []float64{0, 0, 0, 0}
	for bi := range m.Branches {
		det, trk := m.PredictLatency(bi, weird)
		if det < 0 || trk < 0 {
			t.Fatalf("negative latency prediction at branch %d", bi)
		}
	}
}

func TestBenTable(t *testing.T) {
	_, m := fixture(t)
	// Conservative lookup: a budget between two buckets returns the
	// minimum of the two.
	synthetic := &BenTable{
		BudgetsMS: []float64{10, 30, 80},
		Gain: [][]float64{
			{0, 0, 0.05, 0, 0, 0},
			{0, 0, -0.02, 0, 0, 0},
			{0, 0, 0.01, 0, 0, 0},
		},
	}
	if g := synthetic.Benefit(feat.HOG, 20); g != -0.02 {
		t.Fatalf("between-bucket lookup = %v, want min(-0.02, 0.05) = -0.02", g)
	}
	if g := synthetic.Benefit(feat.HOG, 30); g != -0.02 {
		t.Fatalf("exact-bucket lookup = %v, want -0.02", g)
	}
	if g := synthetic.Benefit(feat.HOG, 200); g != 0.01 {
		t.Fatalf("beyond-range lookup = %v, want last bucket 0.01", g)
	}
	if g := synthetic.Benefit(feat.HOG, 5); g != 0.05 {
		t.Fatalf("below-range lookup = %v, want first bucket 0.05", g)
	}
	// Set benefit: empty set is 0; singleton equals Benefit; larger sets
	// are at least the best singleton.
	if m.Ben.SetBenefit(nil, 30) != 0 {
		t.Fatal("empty set benefit should be 0")
	}
	s1 := m.Ben.SetBenefit([]feat.Kind{feat.HoC}, 30)
	if math.Abs(s1-m.Ben.Benefit(feat.HoC, 30)) > 1e-12 {
		t.Fatal("singleton set benefit mismatch")
	}
	s2 := m.Ben.SetBenefit([]feat.Kind{feat.HoC, feat.HOG}, 30)
	best := math.Max(m.Ben.Benefit(feat.HoC, 30), m.Ben.Benefit(feat.HOG, 30))
	if s2 < best-1e-12 {
		t.Fatal("set benefit below best singleton")
	}
	// Empty table returns 0.
	var empty BenTable
	if empty.Benefit(feat.HoC, 10) != 0 {
		t.Fatal("empty table should return 0")
	}
}

func TestPredictAccuracySetEnsemble(t *testing.T) {
	ds, m := fixture(t)
	s := ds.Samples[0]
	a := m.PredictAccuracyContent(feat.HoC, s.Light, s.Heavy[feat.HoC])
	b := m.PredictAccuracyContent(feat.CPoP, s.Light, s.Heavy[feat.CPoP])
	ens := m.PredictAccuracySet([]feat.Kind{feat.HoC, feat.CPoP}, s.Light, s.Heavy)
	for i := range ens {
		want := (a[i] + b[i]) / 2
		if math.Abs(ens[i]-want) > 1e-9 {
			t.Fatalf("ensemble[%d] = %v, want %v", i, ens[i], want)
		}
	}
	// Empty set falls back to the light model.
	l := m.PredictAccuracyLight(s.Light)
	e := m.PredictAccuracySet(nil, s.Light, s.Heavy)
	for i := range l {
		if l[i] != e[i] {
			t.Fatal("empty set should equal light prediction")
		}
	}
}

func TestStandardizer(t *testing.T) {
	rows := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	s := FitStandardizer(rows)
	if math.Abs(s.Mean[0]-3) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean)
	}
	// Constant column gets std 1, avoiding division blowup.
	if s.Std[1] != 1 {
		t.Fatalf("constant column std = %v", s.Std[1])
	}
	out := s.Apply([]float64{5, 10})
	if math.Abs(out[1]) > 1e-12 {
		t.Fatalf("constant column should standardize to 0, got %v", out[1])
	}
	if FitStandardizer(nil).Mean != nil {
		t.Fatal("empty standardizer should be empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch should panic")
		}
	}()
	s.Apply([]float64{1})
}

func TestTrainEmptyDataset(t *testing.T) {
	if _, err := Train(tinyConfig(), &Dataset{}); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds, m := fixture(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Samples[0]
	a := m.PredictAccuracyLight(s.Light)
	b := m2.PredictAccuracyLight(s.Light)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("light prediction differs after round trip at %d", i)
		}
	}
	ca := m.PredictAccuracyContent(feat.MobileNetV2, s.Light, s.Heavy[feat.MobileNetV2])
	cb := m2.PredictAccuracyContent(feat.MobileNetV2, s.Light, s.Heavy[feat.MobileNetV2])
	for i := range ca {
		if math.Abs(ca[i]-cb[i]) > 1e-12 {
			t.Fatalf("content prediction differs after round trip at %d", i)
		}
	}
	d1, t1 := m.PredictLatency(0, s.Light)
	d2, t2 := m2.PredictLatency(0, s.Light)
	if d1 != d2 || t1 != t2 {
		t.Fatal("latency prediction differs after round trip")
	}
}

func TestSaveLoadRoundTripAfterRefit(t *testing.T) {
	// Mutate a trained bundle the way the online adapter does — RLS-moved
	// latency coefficients, per-branch bias, accuracy recalibration, the
	// global CPU-side multiplier — and check a gob round trip preserves
	// every prediction bit for bit. This is what makes a promoted
	// challenger snapshot in the registry equivalent to the live champion.
	ds, orig := fixture(t)
	m, err := orig.Clone()
	if err != nil {
		t.Fatal(err)
	}
	for bi, lr := range m.LatDet {
		for i := range lr.Coef {
			lr.Coef[i] += 0.01 * float64(bi+1) * float64(i+1)
		}
		lr.Intercept += 0.5 * float64(bi)
	}
	for bi, lr := range m.LatTrk {
		lr.Intercept -= 0.25 * float64(bi)
	}
	m.LatBiasMS = make([]float64, len(m.Branches))
	for i := range m.LatBiasMS {
		m.LatBiasMS[i] = 0.125 * float64(i)
	}
	m.AccScale = 0.9375
	m.AccBias = 0.015625
	m.LatCPUAdj = 1.8125

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Samples[0]
	a, b := m.PredictAccuracyLight(s.Light), m2.PredictAccuracyLight(s.Light)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("recalibrated accuracy differs after round trip at branch %d: %v vs %v",
				i, a[i], b[i])
		}
	}
	for bi := range m.Branches {
		d1, t1 := m.PredictLatency(bi, s.Light)
		d2, t2 := m2.PredictLatency(bi, s.Light)
		if d1 != d2 || t1 != t2 {
			t.Fatalf("refit latency differs after round trip at branch %d", bi)
		}
		if m.LatencyBiasMS(bi) != m2.LatencyBiasMS(bi) {
			t.Fatalf("latency bias differs after round trip at branch %d", bi)
		}
	}
	if m.CPUAdjFactor() != m2.CPUAdjFactor() {
		t.Fatalf("CPU adj factor differs after round trip: %v vs %v",
			m.CPUAdjFactor(), m2.CPUAdjFactor())
	}
	// The refit state never leaks back into the bundle it was cloned from.
	if orig.AccScale != 0 || orig.LatCPUAdj != 0 || len(orig.LatBiasMS) != 0 {
		t.Fatal("refitting the clone mutated the original bundle")
	}
}

func TestSwitchMatrix(t *testing.T) {
	labels, costs := SwitchMatrix(mbek.DefaultBranches())
	if len(labels) != 16 { // 4 shapes x 4 nprops
		t.Fatalf("labels = %d, want 16", len(labels))
	}
	for i := range costs {
		if costs[i][i] != 0 {
			t.Fatalf("diagonal not zero at %d", i)
		}
		for j := range costs[i] {
			if costs[i][j] < 0 || costs[i][j] > 12 {
				t.Fatalf("cost out of band: %v", costs[i][j])
			}
		}
	}
	if labels[0] != "(224,1)" {
		t.Fatalf("first label = %q", labels[0])
	}
}

func TestSnippetsOfShortVideo(t *testing.T) {
	v := vid.Generate("s", 1, vid.GenConfig{Frames: 20})
	ss := snippetsOf(v, 100, 50)
	if len(ss) != 1 || ss[0].N != 20 {
		t.Fatalf("short video snippets = %+v", ss)
	}
}

func TestLoadCorruptedModels(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("corrupted stream should error")
	}
	if _, err := LoadFile("/nonexistent/path/models.gob"); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestSaveFileRoundTrip(t *testing.T) {
	_, m := fixture(t)
	path := t.TempDir() + "/models.gob"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Branches) != len(m.Branches) {
		t.Fatal("branches lost in file round trip")
	}
	if m2.FeatureSeed != m.FeatureSeed {
		t.Fatal("feature seed lost in file round trip")
	}
}

// The risk-model state — per-branch latency variance accumulators and
// tracker-failure nets — must survive a gob round trip bit for bit, and
// a pre-risk bundle (zero-value risk fields) must load as "no variance
// info": quantile factors collapse to 1 and failure probabilities to 0,
// so old bundles keep behaving exactly as before.
func TestRiskModelsGobRoundTrip(t *testing.T) {
	ds, m := fixture(t)
	if len(m.LatVar) == 0 {
		t.Fatal("trained fixture has no latency variance accumulators")
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	light := ds.Samples[0].Light
	for bi := range m.Branches {
		if a, b := m.LatLogStd(bi), m2.LatLogStd(bi); a != b {
			t.Fatalf("branch %d: LatLogStd %v != %v after round trip", bi, a, b)
		}
		for _, q := range []float64{0.9, 0.95, 0.99} {
			a := m.PredictQuantile(bi, light, q)
			b := m2.PredictQuantile(bi, light, q)
			if a != b {
				t.Fatalf("branch %d q=%v: PredictQuantile %v != %v after round trip", bi, q, a, b)
			}
		}
		if a, b := m.PredictFailProb(bi, light), m2.PredictFailProb(bi, light); a != b {
			t.Fatalf("branch %d: PredictFailProb %v != %v after round trip", bi, a, b)
		}
	}

	// Pre-risk bundle shape: strip the risk state and round-trip — the
	// degraded predictions must be the exact point estimates.
	m2.LatVar = nil
	m2.FailNets = nil
	var buf2 bytes.Buffer
	if err := m2.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	m3, err := Load(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	for bi := range m3.Branches {
		if got := m3.QuantileFactor(bi, 1.6448536269514722); got != 1 {
			t.Fatalf("branch %d: quantile factor without variance info = %v, want 1", bi, got)
		}
		if got := m3.PredictFailProb(bi, light); got != 0 {
			t.Fatalf("branch %d: fail prob without a net = %v, want 0", bi, got)
		}
		det, trk := m3.PredictLatency(bi, light)
		if got, want := m3.PredictQuantile(bi, light, 0.95), det+trk; got != want {
			t.Fatalf("branch %d: degraded PredictQuantile %v != point estimate %v", bi, got, want)
		}
	}
}
