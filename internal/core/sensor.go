package core

import (
	"math"

	"litereconfig/internal/simlat"
)

// ContentionSensor estimates the current GPU contention level from
// observed detector latencies, the way ApproxDet's contention sensor
// does on real hardware: every detector pass whose base cost is known
// yields one noisy observation of the contention multiplier, and an
// exponentially weighted average smooths the jitter.
//
// The inversion uses the same multiplier model as the simulator
// (simlat.ContentionMultiplier: 1 + 1.2 g), which on real hardware
// corresponds to the offline-profiled contention response curve.
//
// Warm-up semantics: the very first valid observation sets the
// estimate directly (no smoothing against the zero initial state —
// otherwise a cold sensor would under-report contention for the first
// ~1/alpha GoFs); every later observation blends in with weight alpha.
// Before the first observation Level reports 0 (assume no contention).
type ContentionSensor struct {
	est   float64
	warm  bool
	alpha float64 // EWMA weight of a new observation
}

// DefaultSensorAlpha and DefaultDriftAlpha are the stock EWMA smoothing
// weights of the contention sensor and the CPU drift estimator.
const (
	DefaultSensorAlpha = 0.4
	DefaultDriftAlpha  = 0.2
)

// NewContentionSensor returns a sensor with the default smoothing.
func NewContentionSensor() *ContentionSensor {
	return NewContentionSensorAlpha(0)
}

// NewContentionSensorAlpha returns a sensor with the given EWMA weight;
// alpha <= 0 means DefaultSensorAlpha.
func NewContentionSensorAlpha(alpha float64) *ContentionSensor {
	if alpha <= 0 {
		alpha = DefaultSensorAlpha
	}
	return &ContentionSensor{alpha: alpha}
}

// Observe ingests one detector pass: the actually measured cost and the
// branch's base (TX2, zero-contention) cost, on the given device.
func (s *ContentionSensor) Observe(dev simlat.Device, actualMS, baseMS float64) {
	if actualMS <= 0 || baseMS <= 0 {
		return
	}
	mult := actualMS / (baseMS * dev.GPUFactor)
	// Invert ContentionMultiplier(g) = 1 + 1.2 g.
	g := (mult - 1) / 1.2
	g = math.Max(0, math.Min(g, 0.99))
	if !s.warm {
		s.est = g
		s.warm = true
		return
	}
	s.est = (1-s.alpha)*s.est + s.alpha*g
}

// Level returns the smoothed contention estimate in [0, 0.99].
func (s *ContentionSensor) Level() float64 {
	if !s.warm {
		return 0
	}
	return s.est
}

// Warm reports whether the sensor has seen at least one observation.
func (s *ContentionSensor) Warm() bool { return s.warm }

// CPUDriftEstimator tracks the ratio between observed and predicted
// CPU-side (tracker) costs — the online-drift mechanism of Sec. 6: "if
// the compute capability or runtime environment of the devices change,
// one may re-train the latency predictor". Instead of re-training, the
// scheduler multiplies its CPU latency estimates by the smoothed ratio,
// which adapts to thermal throttling, background CPU load, or a device
// whose CPU factor differs from the profiled one. (GPU-side drift is
// indistinguishable from contention and is absorbed by the
// ContentionSensor.)
//
// Warm-up semantics match the ContentionSensor: the first valid
// observation sets the ratio directly, later ones blend in with weight
// alpha, and before any observation Ratio reports 1 (trust the
// profile).
type CPUDriftEstimator struct {
	ratio float64
	warm  bool
	alpha float64
	// expectedFactor is the CPU device factor the latency predictions
	// already account for; observations are normalized by it.
	expectedFactor float64
}

// NewCPUDriftEstimator returns an estimator for the given device profile.
func NewCPUDriftEstimator(dev simlat.Device) *CPUDriftEstimator {
	return NewCPUDriftEstimatorAlpha(dev, 0)
}

// NewCPUDriftEstimatorAlpha returns an estimator with the given EWMA
// weight; alpha <= 0 means DefaultDriftAlpha.
func NewCPUDriftEstimatorAlpha(dev simlat.Device, alpha float64) *CPUDriftEstimator {
	if alpha <= 0 {
		alpha = DefaultDriftAlpha
	}
	return &CPUDriftEstimator{alpha: alpha, expectedFactor: dev.CPUFactor}
}

// Observe ingests one tracker step: observed cost and the base (TX2)
// cost it was predicted from.
func (e *CPUDriftEstimator) Observe(actualMS, baseMS float64) {
	if actualMS <= 0 || baseMS <= 0 {
		return
	}
	r := actualMS / (baseMS * e.expectedFactor)
	r = math.Max(0.25, math.Min(r, 4))
	if !e.warm {
		e.ratio = r
		e.warm = true
		return
	}
	e.ratio = (1-e.alpha)*e.ratio + e.alpha*r
}

// Ratio returns the smoothed drift multiplier (1 = no drift).
func (e *CPUDriftEstimator) Ratio() float64 {
	if !e.warm {
		return 1
	}
	return e.ratio
}
