package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"litereconfig/internal/contend"
	"litereconfig/internal/harness"
	"litereconfig/internal/obs"
	"litereconfig/internal/simlat"
)

func TestRiskQuantileValidation(t *testing.T) {
	s := setup(t)
	for _, q := range []float64{-0.1, 1, 1.5} {
		if _, err := NewPipeline(Options{Models: s.Models, SLO: 50,
			RiskQuantile: q}); err == nil {
			t.Fatalf("RiskQuantile %v should be rejected", q)
		}
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.999} {
		if _, err := NewPipeline(Options{Models: s.Models, SLO: 50,
			RiskQuantile: q}); err != nil {
			t.Fatalf("RiskQuantile %v should be accepted: %v", q, err)
		}
	}
}

// riskTrace runs a seeded evaluation at the given admission quantile
// and returns the trace bytes and decoded decisions.
func riskTrace(t *testing.T, q float64) ([]byte, []obs.Decision) {
	t.Helper()
	fx := setup(t)
	p, err := NewPipeline(Options{Models: fx.Models, SLO: 33.3,
		Policy: PolicyFull, RiskQuantile: q, ReplayTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	p.SetObserver(o.StreamObserver(0, "risk"))
	harness.Evaluate(p, fx.Corpus.Val, simlat.TX2, 33.3,
		contend.Phased{Phases: []contend.Phase{{Frames: 40, G: 0.1}, {Frames: 40, G: 0.7}}}, 42)
	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), o.Decisions()
}

// Mean admission (RiskQuantile 0) must leave the trace byte-identical
// to a pipeline that never heard of risk: no risk_q / pred_p95_ms /
// fail_prob / policy_rev fields may appear, and two same-seed runs
// agree byte for byte — the invariant that lets pinned golden traces
// from the pre-risk era keep passing.
func TestRiskOffTraceByteIdentical(t *testing.T) {
	a, _ := riskTrace(t, 0)
	b, _ := riskTrace(t, 0)
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed mean-admission runs produced different traces")
	}
	for _, field := range []string{"risk_q", "pred_p95_ms", "fail_prob", "policy_rev", "risk_factor"} {
		if bytes.Contains(a, []byte(`"`+field+`"`)) {
			t.Fatalf("mean-admission trace leaks risk field %q", field)
		}
	}
}

// Risk admission at q=0.95 must annotate every decision with the
// quantile, a q-quantile latency prediction at or above the mean
// prediction, a failure probability in [0, 1), and a versioned replay
// payload carrying the per-branch risk tables.
func TestRiskDecisionsAnnotated(t *testing.T) {
	raw, ds := riskTrace(t, 0.95)
	if len(ds) == 0 {
		t.Fatal("no decisions")
	}
	for i := range ds {
		d := &ds[i]
		if d.RiskQ != 0.95 {
			t.Fatalf("decision %d: RiskQ = %v, want 0.95", i, d.RiskQ)
		}
		if d.PredP95MS < d.PredLatencyMS {
			t.Fatalf("decision %d: PredP95MS %v below mean prediction %v",
				i, d.PredP95MS, d.PredLatencyMS)
		}
		if d.FailProb < 0 || d.FailProb >= 1 {
			t.Fatalf("decision %d: FailProb %v outside [0, 1)", i, d.FailProb)
		}
		rp := d.Replay
		if rp == nil || rp.PolicyRev != 1 || rp.RiskQ != 0.95 {
			t.Fatalf("decision %d: risk payload not versioned: %+v", i, rp)
		}
		if len(rp.RiskFactor) != rp.NumBranches || len(rp.FailProb) != rp.NumBranches {
			t.Fatalf("decision %d: risk tables truncated", i)
		}
		for bi, f := range rp.RiskFactor {
			if f < 1 || f > 4 {
				t.Fatalf("decision %d: RiskFactor[%d] = %v outside [1, 4]", i, bi, f)
			}
		}
	}
	// The trace must decode as plain JSON lines with the fields present.
	line := raw[:bytes.IndexByte(raw, '\n')]
	var m map[string]any
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["risk_q"]; !ok {
		t.Fatal("first trace line lacks risk_q")
	}
}

// The q-quantile admission must actually change scheduling under
// contention: planning with a multiplicative tail margin shrinks the
// feasible set, so the q=0.95 run takes different (more conservative)
// decisions than the mean run somewhere in the corpus, while mean
// predicted latency never rises above the mean-run budget behavior.
func TestRiskAdmissionChangesDecisions(t *testing.T) {
	_, mean := riskTrace(t, 0)
	_, risk := riskTrace(t, 0.95)
	if len(mean) != len(risk) {
		// Different branch choices change GoF sizes, so decision counts
		// may legitimately differ — that alone proves divergence.
		return
	}
	diverged := false
	for i := range mean {
		if mean[i].Branch != risk[i].Branch || mean[i].PredLatencyMS != risk[i].PredLatencyMS {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("risk admission at q=0.95 reproduced the mean-admission decisions exactly; the margin never bound")
	}
}
