package core

import (
	"bytes"
	"testing"

	"litereconfig/internal/contend"
	"litereconfig/internal/fault"
	"litereconfig/internal/harness"
	"litereconfig/internal/mbek"
	"litereconfig/internal/obs"
	"litereconfig/internal/simlat"
)

func TestBreakerTransitions(t *testing.T) {
	b := newBreaker(3, 4, 7)
	if !b.allowHeavy() {
		t.Fatal("fresh breaker should be closed")
	}
	b.recordBad()
	b.recordBad()
	b.recordGood() // resets the consecutive count
	b.recordBad()
	b.recordBad()
	if b.state != breakerClosed {
		t.Fatal("two consecutive bads should not trip k=3")
	}
	b.recordBad()
	if b.state != breakerOpen || b.allowHeavy() {
		t.Fatal("three consecutive bads should open the breaker")
	}
	if b.opens != 1 {
		t.Fatalf("opens = %d", b.opens)
	}
	// Cooldown: waiting is in [cooldown, 2*cooldown); tick it down.
	if b.waiting < 4 || b.waiting >= 8 {
		t.Fatalf("cooldown out of range: %d", b.waiting)
	}
	for i := 0; i < 8 && b.state == breakerOpen; i++ {
		b.tick()
	}
	if b.state != breakerHalfOpen {
		t.Fatal("cooldown should end in half-open")
	}
	if !b.allowHeavy() {
		t.Fatal("half-open must allow the probe")
	}
	// Failed probe re-opens immediately.
	b.recordBad()
	if b.state != breakerOpen || b.opens != 2 {
		t.Fatalf("failed probe should re-open: state=%v opens=%d", b.state, b.opens)
	}
	for i := 0; i < 8 && b.state == breakerOpen; i++ {
		b.tick()
	}
	// Successful probe closes.
	b.recordGood()
	if b.state != breakerClosed {
		t.Fatal("good probe should close the breaker")
	}
}

func TestNilBreakerIsInert(t *testing.T) {
	var b *breaker
	if !b.allowHeavy() {
		t.Fatal("nil breaker must allow heavy features")
	}
	b.tick()
	b.recordBad()
	b.recordGood()
}

func TestWatchdogLadder(t *testing.T) {
	s := setup(t)
	schd, err := New(Options{Models: s.Models, SLO: 50, Policy: PolicyFull,
		Degrade: DegradeOn})
	if err != nil {
		t.Fatal(err)
	}
	// Over-budget GoFs walk down the ladder, capped at the floor.
	for i := 0; i < 5; i++ {
		schd.ObserveGoF(8, 80)
	}
	if schd.DegradeLevel() != MaxDegradeLevel {
		t.Fatalf("degrade level = %d, want cap %d", schd.DegradeLevel(), MaxDegradeLevel)
	}
	if schd.Overruns() != 5 {
		t.Fatalf("overruns = %d", schd.Overruns())
	}
	// Clean GoFs climb back up.
	schd.ObserveGoF(8, 20)
	if schd.DegradeLevel() != MaxDegradeLevel-1 {
		t.Fatalf("clean GoF did not recover a rung: %d", schd.DegradeLevel())
	}
	schd.ObserveGoF(8, 20)
	schd.ObserveGoF(8, 20)
	if schd.DegradeLevel() != 0 {
		t.Fatalf("ladder did not recover to 0: %d", schd.DegradeLevel())
	}
}

func TestWatchdogInertWithoutInjectorUnderAuto(t *testing.T) {
	s := setup(t)
	schd, err := New(Options{Models: s.Models, SLO: 50, Policy: PolicyFull})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		schd.ObserveGoF(8, 500)
	}
	if schd.DegradeLevel() != 0 || schd.Overruns() != 0 {
		t.Fatal("DegradeAuto without an injector must be inert")
	}
}

func TestDegradedDecisionSkipsHeavyFeatures(t *testing.T) {
	s := setup(t)
	// A loose SLO would normally select content features; at degrade
	// level > 0 the full policy must go light-only and pick the cheapest
	// feasible branch.
	opts := Options{Models: s.Models, SLO: 100, Policy: PolicyFull, Degrade: DegradeOn}
	schd, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	schd.ObserveGoF(8, 500) // one overrun: level 1
	v := s.Corpus.Val[0]
	clock := simlat.NewClock(simlat.TX2, 3)
	k := mbek.NewKernel(schd.models.Det, clock)
	k.Start(v)
	b := schd.Decide(k, clock, v, v.Frames[0])
	if len(schd.FeatureUse()) != 0 {
		t.Fatalf("degraded decision extracted heavy features: %v", schd.FeatureUse())
	}
	// Compare against the undegraded decision at the same SLO: the
	// degraded branch must not be more expensive.
	schd2, _ := New(Options{Models: s.Models, SLO: 100, Policy: PolicyFull})
	clock2 := simlat.NewClock(simlat.TX2, 3)
	k2 := mbek.NewKernel(schd2.models.Det, clock2)
	k2.Start(v)
	b2 := schd2.Decide(k2, clock2, v, v.Frames[0])
	cost := func(b0 mbek.Branch) float64 {
		return s.Models.Det.CostMS(b0.DetConfig())
	}
	if cost(b)/float64(b.GoF) > cost(b2)/float64(b2.GoF) {
		t.Fatalf("degraded branch %v dearer than normal %v", b, b2)
	}
}

func TestExtractionFailuresOpenBreaker(t *testing.T) {
	s := setup(t)
	// Every heavy extraction fails; a loose SLO makes the full policy
	// keep trying until the breaker disconnects the heavy path.
	p, err := NewPipeline(Options{Models: s.Models, SLO: 100, Policy: PolicyFull,
		Faults: &fault.Config{Seed: 5, ExtractFailRate: 1}})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	p.SetObserver(o.StreamObserver(0, "chaos"))
	r := harness.Evaluate(p, s.Corpus.Val, simlat.TX2, 100, contend.Fixed{}, 42)
	if r.Latency.Count() == 0 {
		t.Fatal("no latency samples")
	}
	if p.Sched.BreakerOpens() == 0 {
		t.Fatal("total extraction failure never opened the breaker")
	}
	snap := o.Snapshot()
	if snap.Counters["sched_extract_failures_total"] == 0 {
		t.Fatal("extraction failures not counted")
	}
	if snap.Counters["sched_breaker_opens_total"] == 0 {
		t.Fatal("breaker opens not counted")
	}
	// The trace must carry the failures and the open-breaker state.
	sawFail, sawOpen := false, false
	for _, d := range o.Decisions() {
		if len(d.FailedFeatures) > 0 {
			sawFail = true
		}
		if d.Breaker == "open" {
			sawOpen = true
		}
	}
	if !sawFail || !sawOpen {
		t.Fatalf("trace missing failure evidence: fail=%v open=%v", sawFail, sawOpen)
	}
}

func TestSpikesTriggerWatchdogAndStayBounded(t *testing.T) {
	s := setup(t)
	cfg := &fault.Config{Seed: 9, SpikeRate: 0.3, SpikeMS: 120}
	run := func(mode DegradeMode) *harness.Result {
		p, err := NewPipeline(Options{Models: s.Models, SLO: 50,
			Policy: PolicyFull, Faults: cfg, Degrade: mode})
		if err != nil {
			t.Fatal(err)
		}
		return harness.Evaluate(p, s.Corpus.Val, simlat.TX2, 50, contend.Fixed{}, 42)
	}
	r := run(DegradeAuto)
	off := run(DegradeOff)
	vr, vrOff := r.Latency.ViolationRate(50), off.Latency.ViolationRate(50)
	t.Logf("spike chaos: violations with degradation %.3f, without %.3f", vr, vrOff)
	if vr > 0.5 {
		t.Fatalf("SLO-miss rate unbounded under spikes: %.3f", vr)
	}
	if vr > vrOff+0.02 {
		t.Fatalf("degradation made violations worse: %.3f vs %.3f", vr, vrOff)
	}
}

func TestFaultedRunDeterministic(t *testing.T) {
	s := setup(t)
	cfg := &fault.Config{Seed: 11, SpikeRate: 0.1, ExtractFailRate: 0.2,
		BurstRate: 0.05, StallRate: 0.02}
	trace := func() []byte {
		p, err := NewPipeline(Options{Models: s.Models, SLO: 50,
			Policy: PolicyFull, Faults: cfg})
		if err != nil {
			t.Fatal(err)
		}
		o := obs.New()
		p.SetObserver(o.StreamObserver(0, "chaos"))
		harness.Evaluate(p, s.Corpus.Val, simlat.TX2, 50, contend.Fixed{}, 42)
		var buf bytes.Buffer
		if err := o.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := trace(), trace()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed faulted runs produced different traces")
	}
}

func TestUnfaultedTraceUnchangedByFaultMachinery(t *testing.T) {
	s := setup(t)
	// A nil Faults config and a zero-rate config must both take exactly
	// the decisions (and clock draws) of the pre-fault pipeline.
	trace := func(cfg *fault.Config) []byte {
		p, err := NewPipeline(Options{Models: s.Models, SLO: 50,
			Policy: PolicyFull, Faults: cfg})
		if err != nil {
			t.Fatal(err)
		}
		o := obs.New()
		p.SetObserver(o.StreamObserver(0, "s"))
		harness.Evaluate(p, s.Corpus.Val, simlat.TX2, 50, contend.Fixed{}, 42)
		var buf bytes.Buffer
		if err := o.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(trace(nil), trace(&fault.Config{Seed: 3})) {
		t.Fatal("zero-rate fault config changed the decision trace")
	}
}
