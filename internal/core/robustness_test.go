package core

import (
	"testing"

	"litereconfig/internal/contend"
	"litereconfig/internal/harness"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

// TestPipelineHandlesEmptyScenes runs the full system over a video whose
// frames contain no ground-truth objects: the scheduler still decides,
// the detector emits only (possible) false positives, nothing panics.
func TestPipelineHandlesEmptyScenes(t *testing.T) {
	s := setup(t)
	v := vid.GenerateWithProfile("empty", 5, vid.GenConfig{Frames: 60},
		vid.ContentProfile{ObjectCount: 0, SizeFrac: 0.2, Speed: 1,
			Clutter: 0.5, Archetype: "t"})
	for i := range v.Frames {
		v.Frames[i].Objects = nil
	}
	p, err := NewPipeline(Options{Models: s.Models, SLO: 33.3, Policy: PolicyFull})
	if err != nil {
		t.Fatal(err)
	}
	r := harness.Evaluate(p, []*vid.Video{v}, simlat.TX2, 33.3, contend.Fixed{}, 1)
	if r.Latency.Count() != 60 {
		t.Fatalf("latency samples = %d", r.Latency.Count())
	}
	if !r.MeetsSLO() {
		t.Fatalf("empty scene broke the SLO: p95=%.1f", r.Latency.P95())
	}
	if r.MAP() != 0 {
		t.Fatalf("empty scene mAP = %v, want 0", r.MAP())
	}
}

// TestPipelineHandlesSingleFrameVideos exercises the GoF-flush edge: a
// one-frame video still produces exactly one latency sample.
func TestPipelineHandlesSingleFrameVideos(t *testing.T) {
	s := setup(t)
	v := vid.Generate("one", 9, vid.GenConfig{Frames: 1})
	p, err := NewPipeline(Options{Models: s.Models, SLO: 50, Policy: PolicyMinCost})
	if err != nil {
		t.Fatal(err)
	}
	r := harness.Evaluate(p, []*vid.Video{v}, simlat.TX2, 50, contend.Fixed{}, 1)
	if r.Latency.Count() != 1 || len(r.Frames) != 1 {
		t.Fatalf("counts: lat=%d frames=%d", r.Latency.Count(), len(r.Frames))
	}
}

// TestPipelineSurvivesExtremeContention: at 99% contention nothing fits
// the SLO; the system must degrade to cheap branches, not stall or panic.
func TestPipelineSurvivesExtremeContention(t *testing.T) {
	s := setup(t)
	p, err := NewPipeline(Options{Models: s.Models, SLO: 33.3, Policy: PolicyFull})
	if err != nil {
		t.Fatal(err)
	}
	r := harness.Evaluate(p, s.Corpus.Val[:2], simlat.TX2, 33.3,
		contend.Fixed{G: 0.99}, 1)
	if r.Latency.Count() == 0 {
		t.Fatal("no output under extreme contention")
	}
	t.Logf("99%% contention: mAP=%.3f p95=%.1f (SLO inevitably violated)",
		r.MAP(), r.Latency.P95())
}

// TestPipelineCrossVideoIsolation: the per-video kernel reset means a
// branch carried over from one video must not track objects into the
// next (fresh Start per video).
func TestPipelineCrossVideoIsolation(t *testing.T) {
	s := setup(t)
	p, err := NewPipeline(Options{Models: s.Models, SLO: 50, Policy: PolicyMinCost})
	if err != nil {
		t.Fatal(err)
	}
	a := vid.Generate("a", 21, vid.GenConfig{Frames: 30})
	b := vid.Generate("b", 22, vid.GenConfig{Frames: 30})
	r := harness.Evaluate(p, []*vid.Video{a, b}, simlat.TX2, 50, contend.Fixed{}, 1)
	if len(r.Frames) != 60 {
		t.Fatalf("frames = %d", len(r.Frames))
	}
	// Frame 30 is video b's first frame: it must start a fresh GoF, i.e.
	// its truth matches b's first frame.
	if len(r.Frames[30].Truth) != len(b.Frames[0].Objects) {
		t.Fatal("video boundary broke frame alignment")
	}
}

// TestSchedulerManyDevices: the same models drive both device profiles.
func TestSchedulerManyDevices(t *testing.T) {
	s := setup(t)
	for _, dev := range []simlat.Device{simlat.TX2, simlat.Xavier} {
		p, err := NewPipeline(Options{Models: s.Models, SLO: 50, Policy: PolicyFull})
		if err != nil {
			t.Fatal(err)
		}
		r := harness.Evaluate(p, s.Corpus.Val[:2], dev, 50, contend.Fixed{}, 1)
		if !r.MeetsSLO() {
			t.Errorf("%s: p95=%.1f violates 50 ms", dev.Name, r.Latency.P95())
		}
	}
}
