package core

import "math/rand"

// breakerState is the heavy-feature circuit state.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String returns the canonical state name.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker defaults.
const (
	// DefaultBreakerK is the number of consecutive bad heavy-feature
	// outcomes (failed extraction, or an over-budget GoF that used heavy
	// features) before the breaker opens.
	DefaultBreakerK = 3
	// DefaultBreakerCooldown is the number of scheduler decisions the
	// breaker stays open before a half-open probe; the actual cooldown
	// adds a seeded jitter of up to the same amount so co-located
	// streams do not probe in lockstep.
	DefaultBreakerCooldown = 8
)

// breaker is the heavy-feature circuit breaker (Table 1's cost
// asymmetry): when heavy-feature extraction keeps failing or keeps
// blowing the budget, the scheduler falls back to light-features-only
// mode rather than paying for extractions that cannot help, then
// probes its way back with a single half-open decision after a seeded
// cooldown.
type breaker struct {
	k        int // consecutive bad outcomes to open
	cooldown int // base open duration, in decisions
	rng      *rand.Rand

	state   breakerState
	bad     int // consecutive bad outcomes while closed
	waiting int // decisions left in the open state
	opens   int // times the breaker tripped
}

// newBreaker builds a breaker; k and cooldown fall back to the
// defaults when non-positive, and seed drives the cooldown jitter.
func newBreaker(k, cooldown int, seed int64) *breaker {
	if k <= 0 {
		k = DefaultBreakerK
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &breaker{k: k, cooldown: cooldown,
		rng: rand.New(rand.NewSource(seed))}
}

// allowHeavy reports whether heavy-feature extraction may run this
// decision: always while closed, exactly the probe while half-open.
func (b *breaker) allowHeavy() bool {
	return b == nil || b.state != breakerOpen
}

// tick advances the open-state cooldown; call once per decision before
// consulting allowHeavy.
func (b *breaker) tick() {
	if b == nil || b.state != breakerOpen {
		return
	}
	b.waiting--
	if b.waiting <= 0 {
		b.state = breakerHalfOpen
	}
}

// recordBad notes a failed extraction or an over-budget heavy GoF. A
// half-open probe that fails re-opens immediately.
func (b *breaker) recordBad() {
	if b == nil {
		return
	}
	switch b.state {
	case breakerClosed:
		b.bad++
		if b.bad >= b.k {
			b.trip()
		}
	case breakerHalfOpen:
		b.trip()
	}
}

// recordGood notes a successful heavy-feature outcome. A successful
// half-open probe closes the circuit.
func (b *breaker) recordGood() {
	if b == nil {
		return
	}
	switch b.state {
	case breakerClosed:
		b.bad = 0
	case breakerHalfOpen:
		b.state = breakerClosed
		b.bad = 0
	}
}

// trip opens the circuit with a seeded-jittered cooldown.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.bad = 0
	b.opens++
	b.waiting = b.cooldown + b.rng.Intn(b.cooldown)
}
