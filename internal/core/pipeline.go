package core

import (
	"litereconfig/internal/contend"
	"litereconfig/internal/detect"
	"litereconfig/internal/fault"
	"litereconfig/internal/harness"
	"litereconfig/internal/mbek"
	"litereconfig/internal/obs"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

// Pipeline is the end-to-end LiteReconfig system: the MBEK (Faster R-CNN
// plus trackers) driven by a Scheduler variant. It implements
// harness.Protocol.
type Pipeline struct {
	Sched *Scheduler
	Det   detect.Model

	// ExtraPerFrameMS adds a constant CPU-side per-frame pipeline
	// overhead, charged to the "pipeline" component. Zero for
	// LiteReconfig; the ApproxDet baseline models its heavier TF-1.x
	// pipeline with it.
	ExtraPerFrameMS float64
	// NameOverride replaces the scheduler variant name (baselines reuse
	// this pipeline under their own name).
	NameOverride string
	// MemoryGB is the resident working set reported in Table 3.
	MemoryGB float64
	// Observer is the opt-in observability view Run attaches to its
	// stepper (decision trace + GoF latency metrics). Copied from
	// Options.Observer by NewPipeline; to attach one after construction
	// use SetObserver, which also wires the scheduler.
	Observer *obs.StreamObserver

	// Faults is the rate-driven fault schedule (nil or disabled = no
	// faults). Run builds a fresh injector per run, seeded by FaultSeed,
	// attaches it to the scheduler and stepper, and wraps the contention
	// generator with the injector's burst windows. Copied from
	// Options.Faults by NewPipeline.
	Faults *fault.Config
	// FaultSeed decorrelates fault schedules across streams sharing one
	// Faults config; zero means stream 1.
	FaultSeed int64
}

// SetObserver attaches the observability view to both the pipeline's
// stepper wiring and its scheduler. Must be called before Run.
func (p *Pipeline) SetObserver(so *obs.StreamObserver) {
	p.Observer = so
	p.Sched.SetObserver(so)
}

// NewPipeline builds the standard LiteReconfig pipeline for the given
// scheduler options.
func NewPipeline(opts Options) (*Pipeline, error) {
	s, err := New(opts)
	if err != nil {
		return nil, err
	}
	mem := 3.4 + 0.27 // detector + light predictor
	switch opts.Policy {
	case PolicyFull, PolicyMaxContentMobileNet:
		mem += 0.45 // MobileNetV2 extractor resident
	}
	return &Pipeline{Sched: s, Det: detect.FasterRCNN, MemoryGB: mem,
		Observer: opts.Observer, Faults: opts.Faults}, nil
}

// Name implements harness.Protocol.
func (p *Pipeline) Name() string {
	if p.NameOverride != "" {
		return p.NameOverride
	}
	return p.Sched.Name()
}

// overheadDecider wraps the scheduler, charging the pipeline's constant
// per-frame overhead once per GoF frame via the decider hook.
type pipelineDecider struct{ p *Pipeline }

// Decide implements harness.Decider.
func (d pipelineDecider) Decide(k *mbek.Kernel, clock *simlat.Clock, v *vid.Video, f vid.Frame) mbek.Branch {
	return d.p.Sched.Decide(k, clock, v, f)
}

// ObserveGoF implements harness.GoFFeedback, feeding realized GoF
// latency into the scheduler's degradation watchdog.
func (d pipelineDecider) ObserveGoF(frames int, avgMS float64) {
	d.p.Sched.ObserveGoF(frames, avgMS)
}

// AdaptActive and ObserveGoFOutcome implement harness.OutcomeFeedback;
// ObserveSwitch implements harness.SwitchFeedback. All three forward to
// the scheduler's online adapter.
func (d pipelineDecider) AdaptActive() bool { return d.p.Sched.AdaptActive() }

func (d pipelineDecider) ObserveGoFOutcome(o harness.GoFOutcome) {
	d.p.Sched.ObserveGoFOutcome(o)
}

func (d pipelineDecider) ObserveSwitch(from, to mbek.Branch, costMS float64) {
	d.p.Sched.ObserveSwitch(from, to, costMS)
}

// injector builds the per-run fault injector, or nil for an unfaulted
// run.
func (p *Pipeline) injector() *fault.Injector {
	if p.Faults == nil || !p.Faults.Enabled() {
		return nil
	}
	seed := p.FaultSeed
	if seed == 0 {
		seed = 1
	}
	return fault.NewInjector(*p.Faults, seed)
}

// Run implements harness.Protocol.
func (p *Pipeline) Run(videos []*vid.Video, clock *simlat.Clock, cg contend.Generator) *harness.Result {
	res := &harness.Result{MemoryGB: p.MemoryGB}
	k := mbek.NewKernel(p.Det, clock)
	var d harness.Decider = pipelineDecider{p}
	if p.ExtraPerFrameMS > 0 {
		// Charge the constant pipeline overhead through the decider hook.
		d = chargingDecider{p}
	}
	inj := p.injector()
	p.Sched.SetInjector(inj) // resets degradation state every run
	cg = fault.WrapContention(cg, inj)
	s := harness.NewStepper(k, d, videos, clock, cg, res)
	s.SetObserver(p.Observer)
	s.SetInjector(inj)
	for s.Step() {
	}
	s.Finish()
	res.FeatureUse = p.Sched.FeatureUse()
	return res
}

// chargingDecider charges the per-GoF share of the pipeline overhead at
// each decision (GoF boundary), approximating a constant per-frame cost
// without modifying the shared loop: the overhead for the *previous* GoF
// is charged when the next boundary is reached.
type chargingDecider struct{ p *Pipeline }

// Decide implements harness.Decider.
func (d chargingDecider) Decide(k *mbek.Kernel, clock *simlat.Clock, v *vid.Video, f vid.Frame) mbek.Branch {
	b := d.p.Sched.Decide(k, clock, v, f)
	// Pre-charge this GoF's pipeline overhead: constant per frame times
	// the chosen GoF length.
	clock.Charge("pipeline", simlat.CPU, d.p.ExtraPerFrameMS*float64(b.GoF))
	return b
}

// ObserveGoF implements harness.GoFFeedback.
func (d chargingDecider) ObserveGoF(frames int, avgMS float64) {
	d.p.Sched.ObserveGoF(frames, avgMS)
}

// AdaptActive and ObserveGoFOutcome implement harness.OutcomeFeedback;
// ObserveSwitch implements harness.SwitchFeedback.
func (d chargingDecider) AdaptActive() bool { return d.p.Sched.AdaptActive() }

func (d chargingDecider) ObserveGoFOutcome(o harness.GoFOutcome) {
	d.p.Sched.ObserveGoFOutcome(o)
}

func (d chargingDecider) ObserveSwitch(from, to mbek.Branch, costMS float64) {
	d.p.Sched.ObserveSwitch(from, to, costMS)
}
