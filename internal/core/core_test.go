package core

import (
	"testing"

	"litereconfig/internal/contend"
	"litereconfig/internal/feat"
	"litereconfig/internal/fixture"
	"litereconfig/internal/harness"
	"litereconfig/internal/mbek"
	"litereconfig/internal/simlat"
)

func setup(t *testing.T) *fixture.Setup {
	t.Helper()
	s, err := fixture.Small()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	s := setup(t)
	if _, err := New(Options{SLO: 33}); err == nil {
		t.Error("missing models should error")
	}
	if _, err := New(Options{Models: s.Models}); err == nil {
		t.Error("missing SLO should error")
	}
	if _, err := New(Options{Models: s.Models, SLO: 33,
		Policy: PolicyForceFeature, ForcedFeature: feat.Light}); err == nil {
		t.Error("forcing the light feature should error")
	}
	if _, err := New(Options{Models: s.Models, SLO: 33}); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[Policy]string{
		PolicyFull:                "LiteReconfig",
		PolicyMinCost:             "LiteReconfig-MinCost",
		PolicyMaxContentResNet:    "LiteReconfig-MaxContent-ResNet",
		PolicyMaxContentMobileNet: "LiteReconfig-MaxContent-MobileNet",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
	if Policy(99).String() != "unknown" {
		t.Error("unknown policy name")
	}
}

// decideOnce runs one scheduling decision on a fresh kernel.
func decideOnce(t *testing.T, s *fixture.Setup, opts Options, contention float64) (mbek.Branch, *simlat.Clock, *Scheduler) {
	t.Helper()
	opts.Models = s.Models
	schd, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	v := s.Corpus.Val[0]
	clock := simlat.NewClock(simlat.TX2, 3)
	clock.SetContention(contention)
	k := mbek.NewKernel(schd.models.Det, clock)
	k.Start(v)
	b := schd.Decide(k, clock, v, v.Frames[0])
	return b, clock, schd
}

func TestDecideChargesScheduler(t *testing.T) {
	s := setup(t)
	_, clock, schd := decideOnce(t, s, Options{SLO: 50, Policy: PolicyMinCost}, 0)
	if clock.Breakdown().Total(CompScheduler) <= 0 {
		t.Fatal("scheduler work not charged")
	}
	if schd.Decisions() != 1 {
		t.Fatalf("decisions = %d", schd.Decisions())
	}
}

func TestMinCostNeverUsesHeavyFeatures(t *testing.T) {
	s := setup(t)
	_, _, schd := decideOnce(t, s, Options{SLO: 100, Policy: PolicyMinCost}, 0)
	if len(schd.FeatureUse()) != 0 {
		t.Fatalf("MinCost used heavy features: %v", schd.FeatureUse())
	}
}

func TestMaxContentAlwaysUsesItsFeature(t *testing.T) {
	s := setup(t)
	_, _, schd := decideOnce(t, s, Options{SLO: 33.3, Policy: PolicyMaxContentResNet}, 0)
	if schd.FeatureUse()[feat.ResNet50] != 1 {
		t.Fatalf("ResNet variant did not use ResNet50: %v", schd.FeatureUse())
	}
	_, _, schd2 := decideOnce(t, s, Options{SLO: 33.3, Policy: PolicyMaxContentMobileNet}, 0)
	if schd2.FeatureUse()[feat.MobileNetV2] != 1 {
		t.Fatalf("MobileNet variant did not use MobileNetV2: %v", schd2.FeatureUse())
	}
}

func TestForceFeatureVariant(t *testing.T) {
	s := setup(t)
	b, clock, schd := decideOnce(t, s, Options{SLO: 33.3, Policy: PolicyForceFeature,
		ForcedFeature: feat.HOG, IgnoreFeatureOverhead: true}, 0)
	if schd.FeatureUse()[feat.HOG] != 1 {
		t.Fatalf("forced feature unused: %v", schd.FeatureUse())
	}
	if b.GoF <= 0 {
		t.Fatal("invalid branch")
	}
	// With overhead ignored, the scheduler charge should be roughly the
	// light-feature cost only (no 25 ms HOG extraction).
	if got := clock.Breakdown().Total(CompScheduler); got > 15 {
		t.Fatalf("ignored overhead still charged: %.2f ms", got)
	}
}

func TestTightSLOPicksCheapBranches(t *testing.T) {
	s := setup(t)
	tight, _, _ := decideOnce(t, s, Options{SLO: 12, Policy: PolicyMinCost}, 0)
	loose, _, _ := decideOnce(t, s, Options{SLO: 120, Policy: PolicyMinCost}, 0)
	// The loose-SLO choice must not be cheaper than the tight-SLO choice.
	cheapCost := func(b mbek.Branch) float64 {
		return s.Models.Det.CostMS(b.DetConfig()) / float64(b.GoF)
	}
	if cheapCost(tight) > cheapCost(loose) {
		t.Fatalf("tight SLO picked heavier branch (%v) than loose SLO (%v)", tight, loose)
	}
}

func TestCostBenefitSkipsMobileNetUnderTightSLO(t *testing.T) {
	// At a 33.3 ms SLO, MobileNetV2's 154 ms extraction cannot pay for
	// itself; the full policy must not select it.
	s := setup(t)
	_, _, schd := decideOnce(t, s, Options{SLO: 33.3, Policy: PolicyFull}, 0)
	if schd.FeatureUse()[feat.MobileNetV2] != 0 {
		t.Fatalf("full policy picked MobileNetV2 at 33.3 ms: %v", schd.FeatureUse())
	}
}

func runPipeline(t *testing.T, s *fixture.Setup, opts Options, dev simlat.Device,
	slo, contention float64) *harness.Result {
	t.Helper()
	opts.Models = s.Models
	opts.SLO = slo
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	return harness.Evaluate(p, s.Corpus.Val, dev, slo, contend.Fixed{G: contention}, 42)
}

func TestPipelineMeetsSLO(t *testing.T) {
	s := setup(t)
	for _, slo := range []float64{33.3, 50, 100} {
		r := runPipeline(t, s, Options{Policy: PolicyFull}, simlat.TX2, slo, 0)
		if !r.MeetsSLO() {
			t.Errorf("full policy violates %v ms SLO: p95=%.1f", slo, r.Latency.P95())
		}
		if r.MAP() <= 0.1 {
			t.Errorf("mAP at %v ms suspiciously low: %.3f", slo, r.MAP())
		}
		t.Logf("SLO %5.1f: mAP=%.3f p95=%.1f coverage=%d switches=%d",
			slo, r.MAP(), r.Latency.P95(), r.BranchCoverage, r.Switches)
	}
}

func TestPipelineAccuracyImprovesWithSLO(t *testing.T) {
	s := setup(t)
	tight := runPipeline(t, s, Options{Policy: PolicyFull}, simlat.TX2, 20, 0)
	loose := runPipeline(t, s, Options{Policy: PolicyFull}, simlat.TX2, 100, 0)
	if loose.MAP() <= tight.MAP() {
		t.Fatalf("looser SLO should improve accuracy: %.3f @20ms vs %.3f @100ms",
			tight.MAP(), loose.MAP())
	}
}

func TestPipelineAdaptsToContention(t *testing.T) {
	s := setup(t)
	r := runPipeline(t, s, Options{Policy: PolicyFull}, simlat.TX2, 50, 0.5)
	if !r.MeetsSLO() {
		t.Fatalf("full policy violates 50 ms SLO under contention: p95=%.1f", r.Latency.P95())
	}
	r0 := runPipeline(t, s, Options{Policy: PolicyFull}, simlat.TX2, 50, 0)
	if r.MAP() > r0.MAP()+0.06 {
		t.Fatalf("contention should not improve accuracy: %.3f vs %.3f", r.MAP(), r0.MAP())
	}
}

func TestPipelineXavierFasterThanTX2(t *testing.T) {
	s := setup(t)
	// At the same SLO the Xavier affords heavier branches, so accuracy
	// should be at least as good and the 20 ms SLO should be satisfiable.
	r := runPipeline(t, s, Options{Policy: PolicyFull}, simlat.Xavier, 20, 0)
	if !r.MeetsSLO() {
		t.Fatalf("full policy violates 20 ms on Xavier: p95=%.1f", r.Latency.P95())
	}
}

func TestFullUsesContentFeaturesAtLooseSLO(t *testing.T) {
	s := setup(t)
	opts := Options{Models: s.Models, SLO: 100, Policy: PolicyFull}
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	harness.Evaluate(p, s.Corpus.Val, simlat.TX2, 100, contend.Fixed{}, 42)
	use := p.Sched.FeatureUse()
	total := 0
	for _, n := range use {
		total += n
	}
	t.Logf("feature use at 100 ms: %v over %d decisions", use, p.Sched.Decisions())
	if total == 0 {
		t.Error("full policy never used a content feature at 100 ms SLO")
	}
}

func TestHysteresisReducesSwitches(t *testing.T) {
	s := setup(t)
	with := runPipeline(t, s, Options{Policy: PolicyFull, Hysteresis: 0.01}, simlat.TX2, 50, 0)
	without := runPipeline(t, s, Options{Policy: PolicyFull, Hysteresis: -1}, simlat.TX2, 50, 0)
	if with.Switches > without.Switches {
		t.Fatalf("hysteresis increased switches: %d vs %d", with.Switches, without.Switches)
	}
	t.Logf("switches with hysteresis %d, without %d", with.Switches, without.Switches)
}

func TestPipelineName(t *testing.T) {
	s := setup(t)
	p, err := NewPipeline(Options{Models: s.Models, SLO: 50, Policy: PolicyFull})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "LiteReconfig" {
		t.Fatalf("name = %q", p.Name())
	}
	p.NameOverride = "Custom"
	if p.Name() != "Custom" {
		t.Fatal("name override ignored")
	}
	fp, err := New(Options{Models: s.Models, SLO: 50, Policy: PolicyForceFeature,
		ForcedFeature: feat.CPoP})
	if err != nil {
		t.Fatal(err)
	}
	if fp.Name() != "LiteReconfig-Force-cpop" {
		t.Fatalf("forced name = %q", fp.Name())
	}
}

func TestSchedulerDeterministic(t *testing.T) {
	s := setup(t)
	run := func() (mbek.Branch, float64) {
		b, clock, _ := decideOnce(t, s, Options{SLO: 50, Policy: PolicyFull}, 0)
		return b, clock.Now()
	}
	b1, t1 := run()
	b2, t2 := run()
	if b1 != b2 || t1 != t2 {
		t.Fatal("scheduling not deterministic")
	}
}

func TestFallbackWhenNothingFits(t *testing.T) {
	s := setup(t)
	// A 0.5 ms SLO is infeasible; the scheduler must still return a
	// branch (the cheapest), not panic.
	b, _, _ := decideOnce(t, s, Options{SLO: 0.5, Policy: PolicyFull}, 0.5)
	if b.GoF == 0 {
		t.Fatal("fallback branch invalid")
	}
	found := false
	for _, cand := range s.Models.Branches {
		if cand == b {
			found = true
		}
	}
	if !found {
		t.Fatal("fallback branch not in space")
	}
}

func TestPipelineWithPhasedContention(t *testing.T) {
	s := setup(t)
	p, err := NewPipeline(Options{Models: s.Models, SLO: 50, Policy: PolicyFull})
	if err != nil {
		t.Fatal(err)
	}
	cg := contend.Phased{Phases: []contend.Phase{{Frames: 60, G: 0}, {Frames: 60, G: 0.5}}}
	r := harness.Evaluate(p, s.Corpus.Val, simlat.TX2, 50, cg, 42)
	if r.Latency.Count() == 0 {
		t.Fatal("no latency samples")
	}
	t.Logf("phased contention: mAP=%.3f p95=%.1f violations=%.3f",
		r.MAP(), r.Latency.P95(), r.Latency.ViolationRate(50))
	if r.Latency.ViolationRate(50) > 0.10 {
		t.Fatalf("too many violations under phased contention: %.3f",
			r.Latency.ViolationRate(50))
	}
}
