// Package core implements the paper's primary contribution: the
// LiteReconfig scheduler. At every Group-of-Frames boundary it
//
//  1. extracts the light-weight features and predicts per-branch latency
//     (Sec. 3.2, Eq. 2) and content-agnostic accuracy;
//  2. runs the cost-benefit analyzer (Sec. 3.4): using the offline
//     benefit table Ben(f_H) — never the heavy features themselves — it
//     greedily selects the subset of heavy-weight content features whose
//     expected accuracy gain survives their extraction + prediction cost;
//  3. extracts the selected features, runs the corresponding
//     content-aware accuracy models, and solves the constrained
//     optimization of Eq. 3: maximize predicted accuracy subject to
//     predicted latency — including scheduler cost S0 + S(f_H) and the
//     switching cost C(b0, b) — staying within the latency SLO.
//
// Four variants are provided (Sec. 4): the full cost-benefit scheduler,
// the content-agnostic MinCost, and the two greedy MaxContent variants
// that always use one fixed content feature.
package core

import (
	"fmt"
	"math"

	"litereconfig/internal/adapt"
	"litereconfig/internal/fault"
	"litereconfig/internal/feat"
	"litereconfig/internal/glm"
	"litereconfig/internal/harness"
	"litereconfig/internal/mbek"
	"litereconfig/internal/obs"
	"litereconfig/internal/sched"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

// CompScheduler is the clock component label for all scheduler work
// (feature extraction, model inference, optimization).
const CompScheduler = "scheduler"

// Policy selects the scheduler variant.
type Policy int

const (
	// PolicyFull is the complete LiteReconfig: cost-benefit feature
	// selection plus switching-cost-aware constrained optimization.
	PolicyFull Policy = iota
	// PolicyMinCost is the content-agnostic variant: light features only.
	PolicyMinCost
	// PolicyMaxContentResNet always uses the ResNet50 content feature,
	// applying the SLO to the execution kernel only (greedy content
	// maximization; its own overhead is unmanaged).
	PolicyMaxContentResNet
	// PolicyMaxContentMobileNet always uses the MobileNetV2 feature, same
	// greedy regime.
	PolicyMaxContentMobileNet
	// PolicyForceFeature always uses Options.ForcedFeature — the Table 4
	// methodology ("always extract a particular feature ... with the
	// latency objective applied to the MBEK only").
	PolicyForceFeature
)

// DegradeMode controls the graceful-degradation machinery (the per-GoF
// latency watchdog and the heavy-feature circuit breaker).
type DegradeMode int

const (
	// DegradeAuto enables degradation exactly when a fault injector is
	// attached: chaos runs degrade gracefully, while unfaulted runs take
	// the same decisions they always did.
	DegradeAuto DegradeMode = iota
	// DegradeOn forces the watchdog and breaker on even without faults
	// (natural overruns then also trigger the ladder).
	DegradeOn
	// DegradeOff forces them off (chaos ablation: absorb nothing).
	DegradeOff
)

// MaxDegradeLevel is the watchdog ladder's floor: at this level the
// scheduler gives up on feasibility reasoning entirely and runs the
// absolute cheapest branch until GoFs come back under budget. Exported
// so the counterfactual replay engine (internal/replay) mirrors the
// ladder semantics exactly.
const MaxDegradeLevel = 2

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyFull:
		return "LiteReconfig"
	case PolicyMinCost:
		return "LiteReconfig-MinCost"
	case PolicyMaxContentResNet:
		return "LiteReconfig-MaxContent-ResNet"
	case PolicyMaxContentMobileNet:
		return "LiteReconfig-MaxContent-MobileNet"
	case PolicyForceFeature:
		return "LiteReconfig-ForceFeature"
	}
	return "unknown"
}

// Options configures a Scheduler.
type Options struct {
	Models *sched.Models
	SLO    float64 // per-frame latency objective, ms
	Policy Policy

	// ForcedFeature is the feature used by PolicyForceFeature.
	ForcedFeature feat.Kind
	// IgnoreFeatureOverhead stops charging feature costs to the clock
	// (Table 4's "ignoring the overhead of that feature").
	IgnoreFeatureOverhead bool

	// SafetyFactor shrinks the SLO to a planning budget so that latency
	// jitter keeps the P95 under the objective. Defaults to 0.88.
	SafetyFactor float64
	// Hysteresis is the predicted-accuracy margin a new branch must beat
	// the current branch by before the full policy switches — the
	// cost-aware guard against fruitless reconfigurations. Defaults to
	// 0.004; set negative to disable.
	Hysteresis float64
	// DisableSwitchCost drops C(b0, b) from the latency constraint
	// (ablation).
	DisableSwitchCost bool
	// AssumedDevice is the device profile the scheduler *believes* it
	// runs on (the one its offline latency labels were scaled for). It
	// defaults to the actual device; setting it to a different profile
	// models online drift (Sec. 6) — e.g. thermal throttling makes the
	// actual CPU slower than the assumed profile, and only the drift
	// estimator can close the gap.
	AssumedDevice *simlat.Device
	// DisableDriftCompensation turns off the CPU-side online-drift
	// estimator (Sec. 6); the scheduler then trusts its offline latency
	// profile for CPU work unconditionally (ablation).
	DisableDriftCompensation bool
	// OracleContention makes the scheduler read the simulator's true
	// contention level instead of sensing it from observed detector
	// latencies (ablation; a real deployment can only sense).
	OracleContention bool
	// CostWeight converts scheduler latency into accuracy-equivalent
	// cost in the feature-selection objective: spending the whole
	// per-frame budget on features would cost CostWeight of predicted
	// mAP. It is the knob that keeps the analyzer from stacking every
	// marginally-useful feature. Defaults to 0.08; set negative to
	// disable (ablation).
	CostWeight float64
	// FeatureSeed seeds the feature extractor. Defaults to the trained
	// models' FeatureSeed — online extraction must use the same simulated
	// extractor weights the offline features came from.
	FeatureSeed int64
	// Faults is the rate-driven fault schedule the pipeline will inject
	// around this scheduler; the scheduler itself only stores it here so
	// Pipeline.Run can build a fresh per-run injector. Attach a live
	// injector with SetInjector.
	Faults *fault.Config
	// Degrade controls the graceful-degradation machinery: the per-GoF
	// latency watchdog (on overrun, fall down a branch ladder to the
	// cheapest SLO-feasible branch) and the heavy-feature circuit
	// breaker (after BreakerK consecutive failed or over-budget heavy
	// extractions, run light-features-only until a half-open probe
	// succeeds). DegradeAuto (the default) enables both exactly when a
	// fault injector is attached.
	Degrade DegradeMode
	// BreakerK and BreakerCooldown tune the circuit breaker: K
	// consecutive bad heavy outcomes open it, and it stays open for
	// Cooldown decisions (plus a seeded jitter) before a half-open
	// probe. Zero means the defaults (3 and 8).
	BreakerK        int
	BreakerCooldown int
	// Observer is the opt-in observability view for this scheduler's
	// stream: every Decide attaches its selected features, Ben(f_H)
	// verdict, chosen branch, predicted accuracy/latency and feasible
	// branch count to the decision the harness opened at the GoF
	// boundary. Recording is passive — it reads the clock, never charges
	// it — so decisions are identical with the observer on or off.
	Observer *obs.StreamObserver
	// SensorAlpha and DriftAlpha override the EWMA smoothing weights of
	// the contention sensor (core.DefaultSensorAlpha = 0.4) and the CPU
	// drift estimator (core.DefaultDriftAlpha = 0.2). Both estimators
	// warm up from their first observation — see the type docs in
	// sensor.go. Zero means the default.
	SensorAlpha float64
	DriftAlpha  float64
	// Adapt enables the online model-adaptation subsystem: the
	// scheduler shadows every decision, refits a challenger copy of the
	// models from realized GoF outcomes, and swaps it in at a GoF
	// barrier once it provably predicts better (champion–challenger
	// rollout). Nil means frozen models (plus the EWMA sensors above).
	Adapt *adapt.Config
	// Adapter attaches a pre-built adapter instead; it must wrap the
	// same Models the scheduler serves from. The serving engine uses
	// this to wire per-board registries and staged-rollout gates.
	// Overrides Adapt.
	Adapter *adapt.Adapter
	// ReplayTrace enriches every recorded decision with the scheduler's
	// full input set (obs.ReplayPayload): feature vectors, sensed
	// contention scales, budgets, and the per-branch A(b,f)/L(b,f)
	// tables for the whole candidate set, so internal/replay can re-run
	// the decision offline under altered policy knobs. Capture is
	// passive (reads only; no clock or RNG interaction) and requires an
	// Observer; with the flag off the trace bytes are identical to
	// pre-replay builds. Off by default — enriched traces are large.
	ReplayTrace bool
	// RiskQuantile switches the admission test from the mean to the
	// q-quantile of the predicted latency: a branch is feasible only
	// when its q-quantile per-frame latency — the point estimate lifted
	// by the per-branch lognormal prediction interval (sched.Models'
	// residual-variance accumulators) — fits the planning budget, i.e.
	// the scheduler admits on P(L(b,f) <= budget) >= q instead of
	// E[L(b,f)] <= budget. The branch argmax also discounts predicted
	// accuracy by the logistic tracker-failure probability. 0 (the
	// default) is legacy mean admission: the decision stream and trace
	// bytes are identical to pre-risk builds. Must be in [0, 1).
	RiskQuantile float64
}

// Scheduler is the online reconfiguration engine.
type Scheduler struct {
	opts   Options
	models *sched.Models
	ex     *feat.Extractor
	sensor *ContentionSensor
	drift  *CPUDriftEstimator

	// adapter is the online model-adaptation loop (nil = frozen
	// models). The scheduler reads s.models, which the adapter swaps to
	// a promoted challenger only inside ObserveGoFOutcome — a GoF
	// barrier — so every decision within a GoF window sees one
	// consistent model version.
	adapter *adapt.Adapter

	// decision statistics for analysis
	featureUse map[feat.Kind]int
	decisions  int

	// Graceful-degradation state: the attached fault injector (nil for
	// an unfaulted run), the heavy-feature circuit breaker, and the
	// watchdog's branch-ladder level with its overrun tally.
	inj          *fault.Injector
	brk          *breaker
	degradeLevel int
	overruns     int
	// lastHeavy marks that the previous decision actually extracted
	// heavy features, so the next ObserveGoF can attribute an overrun
	// (or a clean GoF) to the heavy path for the breaker.
	lastHeavy bool

	// cached metric handles (nil when unobserved)
	decisionsCtr   *obs.Counter
	fallbackCtr    *obs.Counter
	featureCtr     map[feat.Kind]*obs.Counter
	wdCtr          *obs.Counter
	brkOpenCtr     *obs.Counter
	extractFailCtr *obs.Counter
	degradedCtr    *obs.Counter

	// Per-decision scratch, reused across Decide calls so the per-GoF
	// hot path stays off the heap. Everything here is dead by the time
	// Decide returns — nothing downstream retains these slices (the
	// adapter copies the light vector it keeps, the observer renders
	// feature kinds to strings) — and a Scheduler only ever runs one
	// decision at a time.
	heavyKinds   []feat.Kind // cached feat.HeavyKinds()
	scrLight     []float64
	scrAccLight  []float64
	scrKernelMS  []float64
	scrAcc       []float64
	scrHeavy     map[feat.Kind][]float64
	scrSet       []feat.Kind
	scrRemaining []feat.Kind
	scrCand      []feat.Kind
	scrExtracted []feat.Kind
	scrFailed    []feat.Kind
	scrRiskF     []float64 // per-branch quantile inflation factors
	scrFailP     []float64 // per-branch tracker-failure probabilities

	// riskZ is the cached normal z-score of Options.RiskQuantile, so
	// the per-decision risk path never touches the inverse CDF.
	riskZ float64
}

// New validates the options and builds a scheduler.
func New(opts Options) (*Scheduler, error) {
	if opts.Models == nil {
		return nil, fmt.Errorf("core: Models is required")
	}
	if opts.SLO <= 0 {
		return nil, fmt.Errorf("core: SLO must be positive, got %v", opts.SLO)
	}
	if opts.SafetyFactor == 0 {
		opts.SafetyFactor = 0.88
	}
	if opts.Hysteresis == 0 {
		opts.Hysteresis = 0.004
	}
	if opts.FeatureSeed == 0 {
		opts.FeatureSeed = opts.Models.FeatureSeed
	}
	if opts.FeatureSeed == 0 {
		opts.FeatureSeed = 1
	}
	if opts.CostWeight == 0 {
		opts.CostWeight = 0.08
	}
	if opts.Policy == PolicyForceFeature && !opts.ForcedFeature.Heavy() {
		return nil, fmt.Errorf("core: ForceFeature needs a heavy feature, got %v", opts.ForcedFeature)
	}
	if opts.RiskQuantile < 0 || opts.RiskQuantile >= 1 {
		return nil, fmt.Errorf("core: RiskQuantile must be in [0, 1), got %v", opts.RiskQuantile)
	}
	s := &Scheduler{
		opts:       opts,
		models:     opts.Models,
		ex:         feat.NewExtractor(opts.FeatureSeed),
		sensor:     NewContentionSensorAlpha(opts.SensorAlpha),
		featureUse: map[feat.Kind]int{},
		adapter:    opts.Adapter,
		heavyKinds: feat.HeavyKinds(),
		scrHeavy:   map[feat.Kind][]float64{},
	}
	if s.adapter == nil && opts.Adapt != nil {
		a, err := adapt.New(*opts.Adapt, opts.Models)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		s.adapter = a
	}
	if opts.RiskQuantile > 0 {
		s.riskZ = glm.NormalQuantile(opts.RiskQuantile)
	}
	s.SetObserver(opts.Observer)
	return s, nil
}

// SetObserver attaches (or detaches, with nil) the scheduler's
// observability view. Normally set via Options.Observer; exposed so a
// pipeline built without one can be wired after construction. Must be
// called before the first Decide.
func (s *Scheduler) SetObserver(so *obs.StreamObserver) {
	s.opts.Observer = so
	s.decisionsCtr, s.fallbackCtr, s.featureCtr = nil, nil, nil
	s.wdCtr, s.brkOpenCtr, s.extractFailCtr, s.degradedCtr = nil, nil, nil, nil
	if r := so.Registry(); r != nil {
		s.decisionsCtr = r.Counter("sched_decisions_total")
		s.fallbackCtr = r.Counter("sched_fallback_total")
		s.featureCtr = map[feat.Kind]*obs.Counter{}
		for _, k := range feat.HeavyKinds() {
			s.featureCtr[k] = r.Counter(`sched_feature_use_total{feature="` + k.String() + `"}`)
		}
		s.wdCtr = r.Counter("sched_watchdog_overruns_total")
		s.brkOpenCtr = r.Counter("sched_breaker_opens_total")
		s.extractFailCtr = r.Counter("sched_extract_failures_total")
		s.degradedCtr = r.Counter("sched_degraded_decisions_total")
	}
	if s.adapter != nil {
		s.adapter.SetMetrics(so.Registry())
	}
}

// Adapter returns the attached online adapter (nil when adaptation is
// off).
func (s *Scheduler) Adapter() *adapt.Adapter { return s.adapter }

// AdaptActive implements harness.OutcomeFeedback: it gates the
// stepper's extra per-GoF accounting to adaptive runs.
func (s *Scheduler) AdaptActive() bool { return s.adapter != nil }

// ObserveGoFOutcome implements harness.OutcomeFeedback: the realized
// GoF outcome feeds the adapter's residual collector and refit loop,
// and — this being a GoF barrier — any promotion or demotion the
// adapter decides takes effect here, before the next decision.
func (s *Scheduler) ObserveGoFOutcome(o harness.GoFOutcome) {
	if s.adapter == nil {
		return
	}
	m, changed := s.adapter.ObserveOutcome(adapt.Outcome{
		Frames:    o.Frames,
		AvgMS:     o.AvgMS,
		MeanAP:    o.MeanAP,
		HasAcc:    o.HasAcc,
		DetBaseMS: o.DetBaseMS,
		TrkBaseMS: o.TrkBaseMS,
	})
	if changed {
		s.models = m
	}
}

// ObserveSwitch implements harness.SwitchFeedback, refreshing the
// adapter's observed C(b0, b) table with realized switch costs.
func (s *Scheduler) ObserveSwitch(from, to mbek.Branch, costMS float64) {
	if s.adapter != nil {
		s.adapter.ObserveSwitch(from, to, costMS)
	}
}

// switchCostMS prices a reconfiguration: the adapter's observed
// estimate once it has enough samples for the pair, the offline
// C(b0, b) model otherwise.
func (s *Scheduler) switchCostMS(from, to mbek.Branch) float64 {
	if s.adapter != nil {
		if ms, ok := s.adapter.SwitchCostMS(from, to); ok {
			return ms
		}
	}
	return mbek.SwitchCostMS(from, to)
}

// SetInjector attaches the stream's fault injector (nil detaches) and
// resets the graceful-degradation state — watchdog ladder, overrun
// tally, breaker — so each run starts healthy. Must be called before
// the first Decide of a run.
func (s *Scheduler) SetInjector(inj *fault.Injector) {
	s.inj = inj
	s.brk = nil
	s.degradeLevel = 0
	s.overruns = 0
	s.lastHeavy = false
}

// degradationActive reports whether the watchdog and breaker are live.
func (s *Scheduler) degradationActive() bool {
	switch s.opts.Degrade {
	case DegradeOn:
		return true
	case DegradeOff:
		return false
	}
	return s.inj != nil
}

// ensureBreaker lazily builds the circuit breaker, seeded by the
// feature seed so the half-open probe jitter is deterministic.
func (s *Scheduler) ensureBreaker() {
	if s.brk == nil {
		s.brk = newBreaker(s.opts.BreakerK, s.opts.BreakerCooldown, s.opts.FeatureSeed)
	}
}

// breakerBad records a bad heavy outcome and counts a trip if it opened
// the circuit.
func (s *Scheduler) breakerBad() {
	if s.brk == nil {
		return
	}
	before := s.brk.opens
	s.brk.recordBad()
	if s.brk.opens > before {
		s.brkOpenCtr.Inc()
	}
}

// ObserveGoF feeds the realized outcome of the previous GoF back into
// the watchdog: an over-SLO GoF pushes the scheduler one rung down the
// branch ladder (and charges the breaker if heavy features were used),
// a within-budget GoF climbs one rung back up. The harness calls it at
// every GoF flush; it is a no-op unless degradation is active.
func (s *Scheduler) ObserveGoF(frames int, avgMS float64) {
	if !s.degradationActive() || frames <= 0 {
		return
	}
	heavy := s.lastHeavy
	s.lastHeavy = false
	s.ensureBreaker()
	if avgMS > s.opts.SLO {
		s.overruns++
		s.wdCtr.Inc()
		if s.degradeLevel < MaxDegradeLevel {
			s.degradeLevel++
		}
		if heavy {
			s.breakerBad()
		}
	} else {
		if s.degradeLevel > 0 {
			s.degradeLevel--
		}
		if heavy {
			s.brk.recordGood()
		}
	}
}

// Overruns returns how many realized GoFs blew the SLO while the
// watchdog was active.
func (s *Scheduler) Overruns() int { return s.overruns }

// DegradeLevel returns the watchdog's current branch-ladder level
// (0 = normal operation).
func (s *Scheduler) DegradeLevel() int { return s.degradeLevel }

// BreakerOpens returns how many times the heavy-feature circuit
// breaker tripped.
func (s *Scheduler) BreakerOpens() int {
	if s.brk == nil {
		return 0
	}
	return s.brk.opens
}

// Name returns the variant name.
func (s *Scheduler) Name() string {
	if s.opts.Policy == PolicyForceFeature {
		return fmt.Sprintf("LiteReconfig-Force-%s", s.opts.ForcedFeature)
	}
	return s.opts.Policy.String()
}

// FeatureUse returns how many decisions used each heavy feature.
func (s *Scheduler) FeatureUse() map[feat.Kind]int {
	out := make(map[feat.Kind]int, len(s.featureUse))
	for k, v := range s.featureUse {
		out[k] = v
	}
	return out
}

// Decisions returns the number of scheduling decisions taken.
func (s *Scheduler) Decisions() int { return s.decisions }

// estimate prices a base cost under the device and the scheduler's view
// of contention — the sensed estimate by default, the simulator's ground
// truth with OracleContention.
func (s *Scheduler) assumedDevice(clock *simlat.Clock) simlat.Device {
	if s.opts.AssumedDevice != nil {
		return *s.opts.AssumedDevice
	}
	return clock.Device()
}

func (s *Scheduler) estimate(clock *simlat.Clock, class simlat.OpClass, baseMS float64) float64 {
	if baseMS <= 0 {
		return 0
	}
	dev := s.assumedDevice(clock)
	est := baseMS * dev.Factor(class)
	switch class {
	case simlat.GPU:
		if s.opts.OracleContention {
			est *= simlat.ContentionMultiplier(clock.Contention())
		} else {
			est *= simlat.ContentionMultiplier(s.sensor.Level())
		}
	case simlat.CPU:
		if s.drift != nil && !s.opts.DisableDriftCompensation {
			est *= s.drift.Ratio()
		}
	}
	return est
}

// Decide selects the execution branch for the upcoming GoF starting at
// frame f. It charges all scheduler work (feature extraction, model
// inference) to the clock and returns the branch the kernel should run.
// Must be called at a GoF boundary.
func (s *Scheduler) Decide(k *mbek.Kernel, clock *simlat.Clock, v *vid.Video, f vid.Frame) mbek.Branch {
	s.decisions++
	s.decisionsCtr.Inc()
	sect := clock.StartSection()

	// Sense contention from the previous GoF's detector pass (Sec. 2.3:
	// the scheduler must adapt to resource contention it cannot directly
	// observe), and CPU-side drift from its tracker steps (Sec. 6).
	if actual, base := k.LastDetectorObservation(); actual > 0 {
		s.sensor.Observe(s.assumedDevice(clock), actual, base)
	}
	if s.drift == nil {
		s.drift = NewCPUDriftEstimatorAlpha(s.assumedDevice(clock), s.opts.DriftAlpha)
	}
	if actual, base := k.LastTrackerObservation(); actual > 0 {
		s.drift.Observe(actual, base)
	}

	// Step 1: light features and the models that ride on them.
	lightSpec := feat.SpecOf(feat.Light)
	clock.Charge(CompScheduler, lightSpec.ExtractClass, lightSpec.ExtractMS)
	s.scrLight = feat.LightVectorInto(s.scrLight, v, f)
	light := s.scrLight
	clock.Charge(CompScheduler, lightSpec.PredictClass, lightSpec.PredictMS)
	s.scrAccLight = s.models.PredictAccuracyLightInto(s.scrAccLight, light)
	accLight := s.scrAccLight

	// Per-branch kernel latency estimate under the current device and
	// contention level: detector share scales with GPU contention, the
	// tracker share does not (Eq. 2's L0(b, f_L)).
	if cap(s.scrKernelMS) < len(s.models.Branches) {
		s.scrKernelMS = make([]float64, len(s.models.Branches))
	}
	kernelMS := s.scrKernelMS[:len(s.models.Branches)]
	cpuAdj := s.models.CPUAdjFactor()
	for bi := range s.models.Branches {
		det, trk := s.models.PredictLatency(bi, light)
		kernelMS[bi] = s.estimate(clock, simlat.GPU, det) +
			s.estimate(clock, simlat.CPU, trk)*cpuAdj +
			s.models.LatencyBiasMS(bi)
	}

	budget := s.opts.SLO * s.opts.SafetyFactor
	s0 := s.estimate(clock, lightSpec.ExtractClass, lightSpec.ExtractMS) +
		s.estimate(clock, lightSpec.PredictClass, lightSpec.PredictMS)

	// Risk tables for probabilistic admission. The quantile factor lifts
	// each branch's kernel estimate to its q-quantile under the
	// lognormal residual model — the margin scales multiplicatively, so
	// a contention-inflated estimate gets a contention-inflated margin.
	// The feature-selection analyzer below stays risk-blind: it
	// estimates benefit, not admission; only the constrained
	// optimization admits branches.
	riskOn := s.opts.RiskQuantile > 0
	var riskF, failP []float64
	if riskOn {
		if cap(s.scrRiskF) < len(s.models.Branches) {
			s.scrRiskF = make([]float64, len(s.models.Branches))
			s.scrFailP = make([]float64, len(s.models.Branches))
		}
		riskF = s.scrRiskF[:len(s.models.Branches)]
		failP = s.scrFailP[:len(s.models.Branches)]
		for bi := range s.models.Branches {
			riskF[bi] = s.models.QuantileFactor(bi, s.riskZ)
			failP[bi] = s.models.PredictFailProb(bi, light)
		}
	}

	// Graceful degradation: advance the breaker's cooldown and read the
	// state this decision plans under. The watchdog ladder (fed by
	// ObserveGoF) and an open breaker both pull the heavy-feature path.
	degrading := s.degradationActive()
	degradeLevel := 0
	brkState := breakerClosed
	if degrading {
		s.ensureBreaker()
		s.brk.tick()
		degradeLevel = s.degradeLevel
		brkState = s.brk.state
		if degradeLevel > 0 {
			s.degradedCtr.Inc()
		}
	}

	// Step 2: decide the heavy feature set.
	var selected []feat.Kind
	benefit := 0.0
	manageOverhead := true
	switch s.opts.Policy {
	case PolicyMinCost:
		// No heavy features.
	case PolicyMaxContentResNet:
		selected = []feat.Kind{feat.ResNet50}
		manageOverhead = false
	case PolicyMaxContentMobileNet:
		selected = []feat.Kind{feat.MobileNetV2}
		manageOverhead = false
	case PolicyForceFeature:
		selected = []feat.Kind{s.opts.ForcedFeature}
		manageOverhead = false
	case PolicyFull:
		if degradeLevel > 0 || brkState == breakerOpen {
			// Light-features-only mode: the watchdog is shedding load, or
			// the breaker has disconnected the heavy path (Table 1's cost
			// asymmetry — heavy features are the expendable budget item).
			break
		}
		selected, benefit = s.selectFeatures(k, clock, accLight, kernelMS, budget, s0)
	}
	for _, kind := range selected {
		s.featureUse[kind]++
		s.featureCtr[kind].Inc()
	}

	// Step 3: extract selected features and run their accuracy models.
	// An injected extraction failure still pays the extraction cost (the
	// work was attempted) but yields no vector and skips the prediction
	// model; the accuracy set falls back to whatever survived.
	heavy := s.scrHeavy
	for k := range heavy {
		delete(heavy, k)
	}
	extracted := s.scrExtracted[:0]
	failed := s.scrFailed[:0]
	for _, kind := range selected {
		spec := feat.SpecOf(kind)
		if !s.opts.IgnoreFeatureOverhead {
			clock.Charge(CompScheduler, spec.ExtractClass, s.extractBase(spec))
		}
		if s.inj.ExtractFails(f.Index, kind.String()) {
			failed = append(failed, kind)
			s.extractFailCtr.Inc()
			continue
		}
		if !s.opts.IgnoreFeatureOverhead {
			clock.Charge(CompScheduler, spec.PredictClass, spec.PredictMS)
		}
		heavy[kind] = s.ex.Extract(kind, v, f)
		extracted = append(extracted, kind)
	}
	s.scrExtracted, s.scrFailed = extracted, failed
	if degrading {
		if len(failed) > 0 {
			s.breakerBad()
		} else if len(extracted) > 0 {
			s.brk.recordGood()
		}
		s.lastHeavy = len(extracted) > 0
	}
	s.scrAcc = s.models.PredictAccuracySetInto(s.scrAcc, extracted, light, heavy)
	acc := s.scrAcc

	// Step 4: constrained optimization (Eq. 3). The per-invocation costs
	// (scheduler so far + switching) amortize over the candidate branch's
	// GoF, since the scheduler re-evaluates once per GoF (Sec. 3.5).
	schedSpent := sect.Elapsed()
	cur := k.Branch()
	hasCur := k.HasBranch()
	// perFrame prices branch bi for the constraint check: kernel estimate
	// plus, under managed overhead, the amortized scheduler and switching
	// cost.
	perFrame := func(bi int) float64 {
		b := s.models.Branches[bi]
		p := kernelMS[bi]
		if manageOverhead {
			over := schedSpent
			if hasCur && !s.opts.DisableSwitchCost {
				over += s.switchCostMS(cur, b)
			}
			p += over / float64(b.GoF)
		}
		return p
	}
	// riskMargin is the extra per-frame milliseconds the q-quantile adds
	// over the mean for branch bi (0 under legacy mean admission).
	riskMargin := func(bi int) float64 {
		if !riskOn {
			return 0
		}
		return kernelMS[bi] * (riskF[bi] - 1)
	}
	bestIdx := -1
	bestScore := math.Inf(-1)
	feasible := 0
	if degradeLevel > 0 {
		// Watchdog ladder: stop maximizing accuracy and shed latency.
		// One rung down picks the *cheapest* SLO-feasible branch; at the
		// ladder floor, feasibility reasoning itself is distrusted (the
		// predictions just missed) and the absolute cheapest branch runs.
		bestLat := math.Inf(1)
		for bi := range s.models.Branches {
			pf := perFrame(bi) + riskMargin(bi)
			if pf > budget {
				continue
			}
			feasible++
			if degradeLevel < MaxDegradeLevel && pf < bestLat {
				bestLat = pf
				bestIdx = bi
			}
		}
		if degradeLevel >= MaxDegradeLevel {
			bestIdx = 0
			for bi := range kernelMS {
				if kernelMS[bi] < kernelMS[bestIdx] {
					bestIdx = bi
				}
			}
		}
	} else {
		for bi, b := range s.models.Branches {
			if perFrame(bi)+riskMargin(bi) > budget {
				continue
			}
			feasible++
			score := acc[bi]
			if riskOn {
				// Discount by the tracker-failure probability: the argmax
				// maximizes accuracy *conditional on the branch surviving
				// its GoF*.
				score *= 1 - failP[bi]
			}
			if hasCur && b == cur && s.opts.Hysteresis > 0 && s.opts.Policy == PolicyFull {
				score += s.opts.Hysteresis
			}
			if score > bestScore {
				bestScore = score
				bestIdx = bi
			}
		}
	}
	fallback := bestIdx < 0
	if fallback {
		// Nothing fits: fall back to the cheapest branch by predicted
		// latency, degrading accuracy rather than stalling.
		s.fallbackCtr.Inc()
		bestIdx = 0
		for bi := range kernelMS {
			if kernelMS[bi] < kernelMS[bestIdx] {
				bestIdx = bi
			}
		}
	}

	predMS := perFrame(bestIdx)
	if s.adapter != nil {
		// Record the decision's context for the residual collector: the
		// chosen branch, the light features its latency came from, and
		// the scale factors that turn base costs into realized
		// milliseconds, so the refit can normalize them back out. The
		// adapter also shadow-prices the challenger here (predict-only).
		over := 0.0
		if manageOverhead {
			over = schedSpent
			if hasCur && !s.opts.DisableSwitchCost {
				over += s.switchCostMS(cur, s.models.Branches[bestIdx])
			}
			over /= float64(s.models.Branches[bestIdx].GoF)
		}
		s.adapter.Begin(adapt.Sample{
			Branch:     bestIdx,
			Light:      light,
			GPUScale:   s.estimate(clock, simlat.GPU, 1),
			CPUScale:   s.estimate(clock, simlat.CPU, 1),
			OverheadMS: over,
			PredMS:     predMS,
			PredAcc:    acc[bestIdx],
		})
	}

	if d := s.opts.Observer.Pending(); d != nil {
		d.Policy = s.Name()
		if s.opts.OracleContention {
			d.Contention = clock.Contention()
		} else {
			d.Contention = s.sensor.Level()
		}
		for _, kind := range selected {
			d.Features = append(d.Features, kind.String())
			d.FeatureCostMS += s.featureCost(clock, kind)
		}
		d.BenefitMAP = benefit
		d.PredAccuracy = acc[bestIdx]
		d.PredLatencyMS = predMS
		d.FeasibleBranches = feasible
		if s.adapter != nil {
			d.AdaptVersion = s.adapter.VersionLabel()
			d.AdaptEvent = s.adapter.TakeEvent()
			d.AdaptChampErrMS = s.adapter.ChampErrMS()
			d.AdaptChalErrMS = s.adapter.ChalErrMS()
		}
		d.Fallback = fallback
		d.SchedMS = sect.Elapsed()
		d.Degrade = degradeLevel
		if riskOn {
			d.RiskQ = s.opts.RiskQuantile
			d.PredP95MS = predMS + riskMargin(bestIdx)
			d.FailProb = failP[bestIdx]
		}
		if brkState != breakerClosed {
			d.Breaker = brkState.String()
		}
		for _, kind := range failed {
			d.FailedFeatures = append(d.FailedFeatures, kind.String())
		}
		if s.opts.ReplayTrace {
			// Capture the decision's full input set for counterfactual
			// replay. Everything is copied — the scratch slices above are
			// reused by the next Decide — and every read is passive, so
			// the decision stream is identical with the flag off.
			rp := &obs.ReplayPayload{
				SLOMS:             s.opts.SLO,
				SafetyFactor:      s.opts.SafetyFactor,
				BudgetMS:          budget,
				Hysteresis:        s.opts.Hysteresis,
				CostWeight:        s.opts.CostWeight,
				S0MS:              s0,
				SchedSpentMS:      schedSpent,
				ManageOverhead:    manageOverhead,
				DisableSwitchCost: s.opts.DisableSwitchCost,
				HasCur:            hasCur,
				GPUScale:          s.estimate(clock, simlat.GPU, 1),
				CPUScale:          s.estimate(clock, simlat.CPU, 1),
				CPUAdj:            cpuAdj,
				NumBranches:       len(s.models.Branches),
				Light:             append([]float64(nil), light...),
				AccLight:          append([]float64(nil), accLight...),
				KernelMS:          append([]float64(nil), kernelMS...),
			}
			if hasCur {
				rp.CurBranch = cur.String()
				rp.SwitchMS = make([]float64, len(s.models.Branches))
				for bi, b := range s.models.Branches {
					rp.SwitchMS[bi] = s.switchCostMS(cur, b)
				}
			}
			if len(extracted) > 0 {
				rp.Acc = append([]float64(nil), acc...)
				rp.Heavy = make(map[string][]float64, len(extracted))
				for _, kind := range extracted {
					rp.Heavy[kind.String()] = append([]float64(nil), heavy[kind]...)
				}
			}
			rp.FeatCostMS = make(map[string]float64, len(s.heavyKinds))
			for _, kind := range s.heavyKinds {
				rp.FeatCostMS[kind.String()] = s.featureCost(clock, kind)
			}
			if riskOn {
				// Risk-admitted corpora are versioned (PolicyRev 1) and
				// carry the exact per-branch inflation factors and failure
				// probabilities the admission used, so identity replay
				// mirrors the risk procedure without re-deriving variance
				// state, and legacy corpora (PolicyRev 0, fields absent)
				// keep replaying under mean admission bit-exactly.
				rp.PolicyRev = 1
				rp.RiskQ = s.opts.RiskQuantile
				rp.RiskFactor = append([]float64(nil), riskF...)
				rp.FailProb = append([]float64(nil), failP...)
			}
			d.Replay = rp
		}
	}
	return s.models.Branches[bestIdx]
}

// extractBase prices extraction, using the detector-shared cost for
// features that come out of the MBEK's own detector (the scheduler always
// runs right before a detector frame).
func (s *Scheduler) extractBase(spec feat.Spec) float64 {
	return spec.ExtractSharedMS
}

// featureCost estimates the extract+predict cost of a heavy feature under
// the current device and contention, without charging the clock.
func (s *Scheduler) featureCost(clock *simlat.Clock, kind feat.Kind) float64 {
	spec := feat.SpecOf(kind)
	return s.estimate(clock, spec.ExtractClass, s.extractBase(spec)) +
		s.estimate(clock, spec.PredictClass, spec.PredictMS)
}

// selectFeatures is the cost-benefit analyzer (Sec. 3.4): the nested
// greedy optimization that adds heavy features one at a time as long as
// the benefit-table gain survives the shrinking kernel budget. It never
// extracts a heavy feature — costs come from the Spec table and benefits
// from the offline Ben table. The second return value is the analyzer's
// verdict: the net objective gain (predicted mAP, cost-priced) of the
// selected set over scheduling with light features only — zero when the
// set is empty.
func (s *Scheduler) selectFeatures(k *mbek.Kernel, clock *simlat.Clock,
	accLight, kernelMS []float64, budget, s0 float64) ([]feat.Kind, float64) {

	cur := k.Branch()
	hasCur := k.HasBranch()

	// value returns the objective of Eq. 3.4 for a candidate feature set:
	// the best feasible content-agnostic accuracy plus the set's tabled
	// benefit minus the accuracy-equivalent price of the scheduler
	// latency it spends, or -Inf when no branch fits.
	value := func(set []feat.Kind) float64 {
		var featCost float64
		for _, kind := range set {
			featCost += s.featureCost(clock, kind)
		}
		best := math.Inf(-1)
		kernelBudget := 0.0
		bestGoF := 1.0
		for bi, b := range s.models.Branches {
			over := s0 + featCost
			if hasCur && !s.opts.DisableSwitchCost {
				over += s.switchCostMS(cur, b)
			}
			perFrame := kernelMS[bi] + over/float64(b.GoF)
			if perFrame > budget {
				continue
			}
			if accLight[bi] > best {
				best = accLight[bi]
				bestGoF = float64(b.GoF)
			}
			if kb := budget - over/float64(b.GoF); kb > kernelBudget {
				kernelBudget = kb
			}
		}
		if math.IsInf(best, -1) {
			return best
		}
		// The Ben table was built on true measured kernel latencies; the
		// online budget carries the planning safety factor, so divide it
		// out to query on the same scale.
		v := best + s.models.Ben.SetBenefit(set, kernelBudget/s.opts.SafetyFactor)
		if s.opts.CostWeight > 0 {
			v -= s.opts.CostWeight * (featCost / bestGoF) / budget
		}
		return v
	}

	// Tail-latency stall guard: feature extraction runs synchronously at
	// the GoF boundary, so a feature whose one-shot cost dwarfs the SLO
	// stalls several consecutive frames past the objective no matter how
	// it amortizes — exactly why MaxContent-MobileNet violates the tight
	// SLOs in Table 2. Candidates whose stall exceeds stallCap frames'
	// worth of budget are excluded outright.
	const stallFactor = 1.5
	stallCap := stallFactor * s.opts.SLO

	set := s.scrSet[:0]
	curVal := value(set)
	baseVal := curVal
	remaining := s.scrRemaining[:0]
	for _, k := range s.heavyKinds {
		if s.featureCost(clock, k) <= stallCap {
			remaining = append(remaining, k)
		}
	}
	for len(remaining) > 0 {
		bestIdx := -1
		bestVal := curVal
		for i, cand := range remaining {
			// Evaluate set+cand through reusable scratch instead of an
			// append-copy per candidate.
			trial := append(s.scrCand[:0], set...)
			trial = append(trial, cand)
			s.scrCand = trial
			v := value(trial)
			if v > bestVal+1e-9 {
				bestVal = v
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		set = append(set, remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		curVal = bestVal
	}
	s.scrSet, s.scrRemaining = set, remaining[:0]
	gain := curVal - baseVal
	if len(set) == 0 || math.IsInf(gain, 0) || math.IsNaN(gain) {
		gain = 0
	}
	return set, gain
}
