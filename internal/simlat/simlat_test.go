package simlat

import (
	"math"
	"testing"
)

func TestDeviceByName(t *testing.T) {
	if d, ok := DeviceByName("tx2"); !ok || d.Name != "tx2" {
		t.Fatalf("tx2 lookup failed: %v %v", d, ok)
	}
	for _, alias := range []string{"xv", "xavier", "agx"} {
		if d, ok := DeviceByName(alias); !ok || d.Name != "xv" {
			t.Fatalf("%s lookup failed: %v %v", alias, d, ok)
		}
	}
	if _, ok := DeviceByName("nano"); ok {
		t.Fatal("unknown device should not resolve")
	}
}

func TestXavierFasterThanTX2(t *testing.T) {
	if Xavier.GPUFactor >= TX2.GPUFactor || Xavier.CPUFactor >= TX2.CPUFactor {
		t.Fatal("Xavier must be faster than TX2 in both factors")
	}
	if !Xavier.FitsMemory(9.38) {
		t.Fatal("Xavier has 32GB and should fit MEGA-R101")
	}
	if TX2.FitsMemory(9.38) {
		t.Fatal("TX2 has 8GB and should OOM on MEGA-R101")
	}
}

func TestOpClassString(t *testing.T) {
	if GPU.String() != "gpu" || CPU.String() != "cpu" {
		t.Fatal("OpClass String wrong")
	}
}

func TestContentionMultiplier(t *testing.T) {
	if ContentionMultiplier(0) != 1 {
		t.Fatal("no contention must be identity")
	}
	m50 := ContentionMultiplier(0.5)
	if m50 < 1.4 || m50 > 1.8 {
		t.Fatalf("50%% contention multiplier = %v, want ~1.6", m50)
	}
	if ContentionMultiplier(0.3) >= m50 {
		t.Fatal("multiplier must increase with contention")
	}
	// Saturation near 100%.
	if m := ContentionMultiplier(5.0); m != ContentionMultiplier(0.99) {
		t.Fatalf("over-1 contention should clamp: %v", m)
	}
	if ContentionMultiplier(-1) != 1 {
		t.Fatal("negative contention should clamp to 1")
	}
}

func TestClockChargeAdvancesAndAttributes(t *testing.T) {
	c := NewClock(TX2, 1)
	got := c.Charge("detector", GPU, 100)
	if got <= 0 {
		t.Fatal("charge must be positive")
	}
	if math.Abs(c.Now()-got) > 1e-12 {
		t.Fatalf("clock now %v != charge %v", c.Now(), got)
	}
	if c.Breakdown().Total("detector") != got {
		t.Fatal("breakdown not charged")
	}
	if c.Charge("x", GPU, 0) != 0 || c.Charge("x", GPU, -5) != 0 {
		t.Fatal("non-positive base must charge nothing")
	}
}

func TestClockDeterminism(t *testing.T) {
	a, b := NewClock(TX2, 42), NewClock(TX2, 42)
	for i := 0; i < 50; i++ {
		if a.Charge("op", GPU, 10) != b.Charge("op", GPU, 10) {
			t.Fatal("same seed must give identical charges")
		}
	}
}

func TestChargeMeanNearBase(t *testing.T) {
	// Jitter is mean-one lognormal: the average charge over many ops must
	// land close to the base cost.
	c := NewClock(TX2, 7)
	n := 20000
	for i := 0; i < n; i++ {
		c.Charge("op", CPU, 10)
	}
	mean := c.Now() / float64(n)
	if math.Abs(mean-10) > 0.2 {
		t.Fatalf("mean charge %v, want ~10", mean)
	}
}

func TestContentionSlowsOnlyGPU(t *testing.T) {
	mean := func(class OpClass, g float64) float64 {
		c := NewClock(TX2, 9)
		c.SetContention(g)
		for i := 0; i < 5000; i++ {
			c.Charge("op", class, 10)
		}
		return c.Now() / 5000
	}
	gpu0, gpu50 := mean(GPU, 0), mean(GPU, 0.5)
	cpu0, cpu50 := mean(CPU, 0), mean(CPU, 0.5)
	if gpu50 < gpu0*1.4 {
		t.Fatalf("GPU op not slowed enough: %v -> %v", gpu0, gpu50)
	}
	if math.Abs(cpu50-cpu0) > 0.3 {
		t.Fatalf("CPU op should be unaffected: %v -> %v", cpu0, cpu50)
	}
}

func TestDeviceScaling(t *testing.T) {
	meanOn := func(dev Device) float64 {
		c := NewClock(dev, 3)
		for i := 0; i < 5000; i++ {
			c.Charge("op", GPU, 10)
		}
		return c.Now() / 5000
	}
	tx2, xv := meanOn(TX2), meanOn(Xavier)
	ratio := tx2 / xv
	want := TX2.GPUFactor / Xavier.GPUFactor
	if math.Abs(ratio-want) > 0.15 {
		t.Fatalf("device ratio %v, want ~%v", ratio, want)
	}
}

func TestChargeExactNoJitter(t *testing.T) {
	c := NewClock(Xavier, 5)
	c.SetContention(0.5)
	if got := c.ChargeExact("switch", 7.5); got != 7.5 {
		t.Fatalf("ChargeExact = %v", got)
	}
	if c.Now() != 7.5 {
		t.Fatalf("now = %v", c.Now())
	}
	if c.ChargeExact("switch", -1) != 0 {
		t.Fatal("negative exact charge must be 0")
	}
}

func TestEstimateMatchesExpectation(t *testing.T) {
	c := NewClock(TX2, 11)
	c.SetContention(0.5)
	est := c.Estimate(GPU, 10)
	want := 10 * ContentionMultiplier(0.5)
	if math.Abs(est-want) > 1e-9 {
		t.Fatalf("estimate = %v, want %v", est, want)
	}
	if c.Now() != 0 {
		t.Fatal("Estimate must not advance the clock")
	}
	if c.Estimate(CPU, 10) != 10 {
		t.Fatal("CPU estimate should ignore contention")
	}
	if c.Estimate(GPU, 0) != 0 {
		t.Fatal("zero estimate")
	}
}

func TestSection(t *testing.T) {
	c := NewClock(TX2, 13)
	s := c.StartSection()
	c.Charge("a", CPU, 5)
	c.Charge("b", CPU, 5)
	if e := s.Elapsed(); math.Abs(e-c.Now()) > 1e-12 {
		t.Fatalf("section elapsed %v != now %v", e, c.Now())
	}
	s2 := c.StartSection()
	if s2.Elapsed() != 0 {
		t.Fatal("fresh section should be zero")
	}
}

func TestSetContentionClamps(t *testing.T) {
	c := NewClock(TX2, 1)
	c.SetContention(-0.5)
	if c.Contention() != 0 {
		t.Fatal("negative contention should clamp to 0")
	}
	c.SetContention(2)
	if c.Contention() != 0.99 {
		t.Fatal("contention should clamp to 0.99")
	}
}

func TestGPUBusyTracksOnlyGPUCharges(t *testing.T) {
	c := NewClock(TX2, 9)
	gpu := c.Charge("detector", GPU, 50)
	if math.Abs(c.GPUBusyMS()-gpu) > 1e-12 {
		t.Fatalf("GPU busy %v != GPU charge %v", c.GPUBusyMS(), gpu)
	}
	c.Charge("tracker", CPU, 30)
	if math.Abs(c.GPUBusyMS()-gpu) > 1e-12 {
		t.Fatal("CPU charge must not advance GPU busy time")
	}
	c.ChargeExact("switch", 20)
	if math.Abs(c.GPUBusyMS()-gpu) > 1e-12 {
		t.Fatal("exact charge must not advance GPU busy time")
	}
	gpu2 := c.Charge("detector", GPU, 10)
	if math.Abs(c.GPUBusyMS()-(gpu+gpu2)) > 1e-12 {
		t.Fatal("GPU busy time must accumulate across GPU charges")
	}
	if c.GPUBusyMS() >= c.Now() {
		t.Fatal("GPU busy time must stay below total simulated time here")
	}
}
