package simlat

import (
	"math"
	"math/rand"

	"litereconfig/internal/metric"
)

// ContentionMultiplier returns the latency multiplier a GPU-class op
// suffers at contention level g in [0, 1). It is calibrated so that 50%
// contention slows GPU work by about 1.6x, matching the paper's observed
// pipeline slowdown of roughly 1.4x once CPU-side work is accounted for.
func ContentionMultiplier(g float64) float64 {
	if g <= 0 {
		return 1
	}
	if g > 0.99 {
		g = 0.99
	}
	return 1 + 1.2*g
}

// ContentionForMultiplier inverts ContentionMultiplier: the highest
// contention level at which a GPU-class op still fits within the given
// latency multiplier. Results are clamped to the model's [0, 0.99]
// domain, so a multiplier below 1 yields 0 and a very large one 0.99.
func ContentionForMultiplier(m float64) float64 {
	g := (m - 1) / 1.2
	if g < 0 {
		return 0
	}
	if g > 0.99 {
		return 0.99
	}
	return g
}

// Clock is the virtual latency clock. It is not safe for concurrent use;
// each simulated pipeline owns one clock.
type Clock struct {
	dev        Device
	contention float64
	now        float64 // simulated ms since start
	gpuBusy    float64 // simulated ms charged to GPU-class ops
	rng        *rand.Rand
	breakdown  *metric.Breakdown
	// jitterSigma is the lognormal sigma applied to each charge; the
	// contention level adds variance on top (contended GPUs are noisy).
	jitterSigma float64
}

// NewClock returns a clock for the device, with deterministic jitter
// derived from the seed.
func NewClock(dev Device, seed int64) *Clock {
	return &Clock{
		dev:         dev,
		rng:         rand.New(rand.NewSource(seed)),
		breakdown:   metric.NewBreakdown(),
		jitterSigma: 0.05,
	}
}

// Device returns the board profile the clock simulates.
func (c *Clock) Device() Device { return c.dev }

// SetDevice rebinds the clock to a new board profile: subsequent charges
// use the new device's speed factors while accumulated time, jitter
// state and breakdowns carry over. The fleet dispatcher uses it when a
// live stream migrates between heterogeneous boards.
func (c *Clock) SetDevice(dev Device) { c.dev = dev }

// SetContention sets the current GPU contention level in [0, 1).
func (c *Clock) SetContention(g float64) {
	if g < 0 {
		g = 0
	}
	if g > 0.99 {
		g = 0.99
	}
	c.contention = g
}

// Contention returns the current GPU contention level.
func (c *Clock) Contention() float64 { return c.contention }

// Now returns the simulated time in milliseconds.
func (c *Clock) Now() float64 { return c.now }

// GPUBusyMS returns the cumulative simulated milliseconds charged to
// GPU-class operations. The ratio of GPUBusyMS deltas to Now deltas is
// the stream's GPU occupancy over a window — the quantity the serving
// engine couples across co-located streams.
func (c *Clock) GPUBusyMS() float64 { return c.gpuBusy }

// Rand exposes the clock's deterministic RNG for cost models that need
// extra randomness (e.g. rare cold-miss switch outliers).
func (c *Clock) Rand() *rand.Rand { return c.rng }

// Restore fast-forwards a fresh clock to a checkpointed position:
// simulated time and cumulative GPU-busy time are set directly, with no
// per-component breakdown attribution (the pre-crash breakdown died
// with the board) and no jitter draw. The jitter RNG restarts from the
// clock's own seed, which keeps recovery deterministic run-to-run —
// the invariant is identical traces across runs, not identical
// pre/post-crash schedules within one run.
func (c *Clock) Restore(nowMS, gpuBusyMS float64) {
	if nowMS > c.now {
		c.now = nowMS
	}
	if gpuBusyMS > c.gpuBusy {
		c.gpuBusy = gpuBusyMS
	}
}

// Breakdown returns the per-component latency accumulator.
func (c *Clock) Breakdown() *metric.Breakdown { return c.breakdown }

// Charge advances the clock by baseMS scaled by the device factor, the
// contention multiplier (GPU ops only) and lognormal jitter, attributing
// the time to the named component. It returns the actual simulated cost.
func (c *Clock) Charge(component string, class OpClass, baseMS float64) float64 {
	if baseMS <= 0 {
		return 0
	}
	cost := baseMS * c.dev.Factor(class)
	if class == GPU {
		cost *= ContentionMultiplier(c.contention)
	}
	sigma := c.jitterSigma
	if class == GPU {
		sigma += 0.10 * c.contention
	}
	cost *= math.Exp(c.rng.NormFloat64()*sigma - sigma*sigma/2)
	c.now += cost
	if class == GPU {
		c.gpuBusy += cost
	}
	c.breakdown.Charge(component, cost)
	return cost
}

// ChargeExact advances the clock by exactly ms without device scaling,
// contention or jitter — used for offline-measured quantities (e.g. a
// switching cost drawn from the measured matrix) that are already in
// device milliseconds.
func (c *Clock) ChargeExact(component string, ms float64) float64 {
	if ms <= 0 {
		return 0
	}
	c.now += ms
	c.breakdown.Charge(component, ms)
	return ms
}

// Estimate returns what a charge would cost in expectation (device and
// contention applied, no jitter) without advancing the clock. Predictors
// use this to model costs.
func (c *Clock) Estimate(class OpClass, baseMS float64) float64 {
	return c.EstimateWith(class, baseMS, c.contention)
}

// EstimateWith is Estimate under an explicit contention level — used by
// schedulers that *sense* contention rather than read the simulator's
// ground truth.
func (c *Clock) EstimateWith(class OpClass, baseMS, contention float64) float64 {
	if baseMS <= 0 {
		return 0
	}
	cost := baseMS * c.dev.Factor(class)
	if class == GPU {
		cost *= ContentionMultiplier(contention)
	}
	return cost
}

// Section measures a span of simulated time.
type Section struct {
	clock *Clock
	start float64
}

// StartSection begins measuring a span.
func (c *Clock) StartSection() Section { return Section{clock: c, start: c.now} }

// Elapsed returns the simulated ms elapsed since the section started.
func (s Section) Elapsed() float64 { return s.clock.now - s.start }
