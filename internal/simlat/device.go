// Package simlat provides the virtual-clock latency simulator that stands
// in for wall-clock measurement on the NVIDIA Jetson TX2 and AGX Xavier
// boards.
//
// Every operation in the pipeline (detector pass, tracker update, feature
// extraction, predictor inference, branch switch) charges a base cost in
// "TX2 milliseconds" to a Clock. The clock applies the device speed
// factor, the current GPU contention multiplier (GPU-class ops only) and
// a small lognormal jitter, then accumulates the result into per-component
// breakdowns. All latencies reported by the repository are these simulated
// milliseconds; see DESIGN.md §2.
package simlat

// OpClass says which execution resource an operation occupies. GPU ops
// are slowed by GPU contention; CPU ops are not (the paper's contention
// generator hogs the GPU).
type OpClass int

const (
	// GPU marks work running on the mobile GPU (detector backbones,
	// neural feature extractors, predictor inference).
	GPU OpClass = iota
	// CPU marks work running on the CPU cores (classic trackers, HoC and
	// HOG extraction, the optimization solver).
	CPU
)

// String implements fmt.Stringer.
func (c OpClass) String() string {
	if c == GPU {
		return "gpu"
	}
	return "cpu"
}

// Device is a mobile-GPU board profile. Costs are calibrated in TX2
// milliseconds, and each device scales them by its speed factors.
type Device struct {
	Name     string
	MemoryGB float64
	// GPUFactor scales GPU-class op costs relative to the TX2 (< 1 is
	// faster). CPUFactor does the same for CPU-class ops.
	GPUFactor float64
	CPUFactor float64
}

// The two boards used in the paper's evaluation. The AGX Xavier (512-core
// Volta, 32 GB) sustains roughly twice the TX2's throughput, which is why
// the paper tightens its SLO to 20 ms (50 fps) there.
var (
	TX2    = Device{Name: "tx2", MemoryGB: 8, GPUFactor: 1.0, CPUFactor: 1.0}
	Xavier = Device{Name: "xv", MemoryGB: 32, GPUFactor: 0.48, CPUFactor: 0.72}
)

// DeviceByName resolves the CLI names used by the paper's artifact
// ("tx2", "xv"). It returns TX2 for unknown names.
func DeviceByName(name string) (Device, bool) {
	switch name {
	case "tx2":
		return TX2, true
	case "xv", "xavier", "agx":
		return Xavier, true
	}
	return TX2, false
}

// Factor returns the device's speed factor for the op class.
func (d Device) Factor(c OpClass) float64 {
	if c == GPU {
		return d.GPUFactor
	}
	return d.CPUFactor
}

// FitsMemory reports whether a model with the given working-set size can
// load on the device (reproduces the OOM rows of Table 3).
func (d Device) FitsMemory(requiredGB float64) bool {
	return requiredGB <= d.MemoryGB
}
