package serve

import (
	"fmt"

	"litereconfig/internal/contend"
	"litereconfig/internal/core"
	"litereconfig/internal/fault"
	"litereconfig/internal/harness"
	"litereconfig/internal/mbek"
	"litereconfig/internal/obs"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

// StreamConfig describes one video stream submitted for service.
type StreamConfig struct {
	// Name labels the stream in reports. Default "stream-<id>".
	Name string
	// Video is the stream's content. Required.
	Video *vid.Video
	// SLO is the stream's per-frame latency objective in simulated ms.
	// Required.
	SLO float64
	// Class groups streams for aggregate SLO attainment (e.g. "gold",
	// "33ms"). Default: derived from the SLO.
	Class string
	// Policy is the scheduler variant. Default core.PolicyFull.
	Policy core.Policy
	// Degrade controls the stream scheduler's graceful-degradation
	// machinery (watchdog ladder + heavy-feature circuit breaker). The
	// default, core.DegradeAuto, engages it exactly when the stream has
	// a fault injector.
	Degrade core.DegradeMode
	// Seed fixes the stream's stochastic realization. Default 1 + id,
	// assigned under the server lock once the id is known, so unseeded
	// streams get distinct realizations.
	Seed int64
	// Faults overrides the server-wide fault schedule (Options.Faults)
	// for this stream; the injector mixes the stream's seed in, so
	// sibling streams sharing one config still draw distinct schedules.
	Faults *fault.Config
	// FaultPlan schedules explicit one-shot fault events for this stream
	// and takes precedence over any rate-driven config.
	FaultPlan *fault.Plan
	// BaseContention is a contention floor external to the served
	// streams (contend.Coupled's Floor).
	BaseContention float64
	// ContentionTrace replays a recorded per-frame external contention
	// floor instead of the constant BaseContention; frames past the end
	// of the trace hold its last level.
	ContentionTrace []float64
	// EstOccupancy is the admission-time GPU occupancy estimate used
	// until the stream's first measured round. Zero means "use the
	// default" (0.5); a negative value requests an explicit zero
	// estimate (admit unconditionally until first measurement).
	EstOccupancy float64
}

// stream is the engine-internal state of one admitted or queued stream.
// All fields except foreign are touched either under the server mutex or
// exclusively by the worker running the stream's round; foreign is
// written at the round barrier and read during the round (ordered by the
// task dispatch and the round WaitGroup).
type stream struct {
	id  int
	srv *Server
	cfg StreamConfig

	pipeline *core.Pipeline
	clock    *simlat.Clock
	kernel   *mbek.Kernel
	stepper  *harness.Stepper
	res      *harness.Result

	// foreign is the aggregate occupancy of the other streams, set at
	// each round barrier; the Coupled generator reads it per frame.
	foreign float64

	// occ is the stream's measured GPU occupancy over its last round
	// (EstOccupancy before the first measurement).
	occ              float64
	lastNow, lastGPU float64

	rounds      int
	waitRounds  int
	contSum     float64 // sum of per-round applied contention levels
	finishedRun bool
	result      *StreamResult

	// Health state. panicked/panicMsg are written by the worker that ran
	// the round and read at the barrier (ordered by the round WaitGroup);
	// everything else is barrier-side only.
	health      Health
	panicked    bool
	panicMsg    string
	panics      int // recovered worker panics, total
	stallRounds int // consecutive rounds with zero frame progress
	lastFrames  int
	quarReason  string

	// Per-stream board gauges (nil when unobserved), sampled at each
	// round barrier under the server lock.
	contGauge *obs.Gauge
	occGauge  *obs.Gauge
}

// newStream builds the per-stream pipeline on its own clock and models
// clone. The caller has already assigned the id, name and seed and
// reserved a queue slot; the expensive clone happens here, off the
// server lock and only for accepted submissions.
func (s *Server) newStream(id int, cfg StreamConfig) (*stream, error) {
	models, err := s.opts.Models.Clone()
	if err != nil {
		return nil, err
	}
	s.clones.Add(1)
	s.met.cloneCtr.Inc()
	so := s.opts.Observer.StreamObserver(id, cfg.Name)
	p, err := core.NewPipeline(core.Options{
		Models: models, SLO: cfg.SLO, Policy: cfg.Policy, Observer: so,
		Degrade: cfg.Degrade,
	})
	if err != nil {
		return nil, err
	}
	// Per-stream fault injector: an explicit plan wins, then the stream's
	// own rate config, then the server-wide default. The scheduler owns
	// the graceful-degradation reaction; the stepper charges boundary
	// faults; the worker fires scheduled panics.
	var inj *fault.Injector
	if cfg.FaultPlan != nil {
		inj = fault.FromPlan(*cfg.FaultPlan)
	} else if fc := cfg.Faults; fc != nil && fc.Enabled() {
		inj = fault.NewInjector(*fc, cfg.Seed)
	} else if fc := s.opts.Faults; fc != nil && fc.Enabled() {
		inj = fault.NewInjector(*fc, cfg.Seed)
	}
	p.Sched.SetInjector(inj)
	if cfg.EstOccupancy == 0 {
		cfg.EstOccupancy = DefaultEstOccupancy
	} else if cfg.EstOccupancy < 0 {
		cfg.EstOccupancy = 0 // negative = explicit zero estimate
	}
	if cfg.EstOccupancy > 1 {
		cfg.EstOccupancy = 1
	}
	st := &stream{id: id, srv: s, cfg: cfg, pipeline: p, occ: cfg.EstOccupancy}
	st.clock = simlat.NewClock(s.opts.Device, cfg.Seed)
	st.kernel = mbek.NewKernel(p.Det, st.clock)
	st.res = &harness.Result{MemoryGB: p.MemoryGB}
	cg := contend.Coupled{
		Source: func(int) float64 { return st.foreign },
		Alpha:  s.opts.Coupling,
		Floor:  cfg.BaseContention,
	}
	if s.opts.Coupling == 0 {
		// withDefaults resolved a negative Coupling to an explicit zero;
		// translate it to Coupled's own convention (where a zero Alpha
		// means identity, not "uncoupled").
		cg.Alpha = -1
	}
	if len(cfg.ContentionTrace) > 0 {
		cg.FloorSource = contend.Trace{Levels: cfg.ContentionTrace}
	}
	st.stepper = harness.NewStepper(st.kernel, p.Sched,
		[]*vid.Video{cfg.Video}, st.clock, fault.WrapContention(cg, inj), st.res)
	st.stepper.SetObserver(so)
	st.stepper.SetInjector(inj)
	if r := s.opts.Observer.Registry(); r != nil {
		st.contGauge = r.Gauge(fmt.Sprintf("serve_stream_contention{stream=%q}", cfg.Name))
		st.occGauge = r.Gauge(fmt.Sprintf("serve_stream_occupancy{stream=%q}", cfg.Name))
	}
	return st, nil
}

// run advances the stream by one board round: it steps Group-of-Frames
// until roundMS simulated milliseconds elapse on the stream's clock or
// the video ends. Runs on a worker-pool goroutine. Scheduled worker
// panics fire here, before the step, so the recover in the round task
// never catches the stepper mid-mutation; PanicDue is one-shot, so the
// retried round resumes cleanly past the fault.
func (st *stream) run(roundMS float64) {
	st.rounds++
	target := st.clock.Now() + roundMS
	for st.clock.Now() < target {
		if st.stepper.Injector().PanicDue(st.stepper.Frames()) {
			panic(fmt.Sprintf("fault: injected worker panic (stream %q, frame %d)",
				st.cfg.Name, st.stepper.Frames()))
		}
		if !st.stepper.Step() {
			st.finishedRun = true
			break
		}
	}
}

// measure updates the stream's GPU occupancy from the clock deltas of
// the round just run. Called at the round barrier under the server lock.
func (st *stream) measure() {
	now, gpu := st.clock.Now(), st.clock.GPUBusyMS()
	if dNow := now - st.lastNow; dNow > 0 {
		occ := (gpu - st.lastGPU) / dNow
		if occ > 1 {
			occ = 1
		}
		st.occ = occ
	}
	st.lastNow, st.lastGPU = now, gpu
	st.contSum += st.clock.Contention()
	st.contGauge.Set(st.clock.Contention())
	st.occGauge.Set(st.occ)
}

// finalize closes the stream's result and computes its report row.
func (st *stream) finalize(dev simlat.Device) {
	st.stepper.Finish()
	st.res.Protocol = st.pipeline.Name()
	st.res.Device = dev
	st.res.SLO = st.cfg.SLO
	st.res.FeatureUse = st.pipeline.Sched.FeatureUse()
	meanCont := 0.0
	if st.rounds > 0 {
		meanCont = st.contSum / float64(st.rounds)
	}
	meanOcc := 0.0
	if now := st.clock.Now(); now > 0 {
		meanOcc = st.clock.GPUBusyMS() / now
	}
	st.result = &StreamResult{
		ID:               st.id,
		Name:             st.cfg.Name,
		Class:            st.className(),
		SLO:              st.cfg.SLO,
		Policy:           st.res.Protocol,
		Frames:           len(st.res.Frames),
		MAP:              st.res.MAP(),
		MeanMS:           st.res.Latency.Mean(),
		P95MS:            st.res.Latency.P95(),
		MeetsSLO:         st.res.MeetsSLO(),
		ViolationRate:    st.res.Latency.ViolationRate(st.cfg.SLO),
		Switches:         st.res.Switches,
		BranchCoverage:   st.res.BranchCoverage,
		MeanContention:   meanCont,
		MeanOccupancy:    meanOcc,
		Rounds:           st.rounds,
		WaitRounds:       st.waitRounds,
		Health:           st.health.String(),
		Panics:           st.panics,
		Quarantined:      st.health == HealthQuarantined,
		QuarantineReason: st.quarReason,
		Raw:              st.res,
	}
}

// updateHealth recomputes a live stream's health at the round barrier:
// degraded while the scheduler's watchdog ladder is engaged, the stream
// is failing to make progress, or it has already survived a panic;
// healthy otherwise. Quarantine is terminal and set elsewhere.
func (st *stream) updateHealth() {
	if st.health == HealthQuarantined {
		return
	}
	if st.pipeline.Sched.DegradeLevel() > 0 || st.stallRounds > 0 || st.panics > 0 {
		st.health = HealthDegraded
	} else {
		st.health = HealthHealthy
	}
}

// className returns the stream's SLO class, deriving one from the SLO
// when unset.
func (st *stream) className() string {
	if st.cfg.Class != "" {
		return st.cfg.Class
	}
	return deriveClass(st.cfg.SLO)
}

// Stream is the caller's handle to a submitted stream.
type Stream struct{ st *stream }

// ID returns the stream's server-assigned id (submission order).
func (h *Stream) ID() int { return h.st.id }

// Name returns the stream's label.
func (h *Stream) Name() string { return h.st.cfg.Name }

// Result returns the stream's report row, or nil before the server has
// drained the stream to completion.
func (h *Stream) Result() *StreamResult { return h.st.result }

// Health returns the stream's health state as of its last round barrier
// (or its final state once drained).
func (h *Stream) Health() Health { return h.st.health }
