package serve

import (
	"fmt"

	"litereconfig/internal/adapt"
	"litereconfig/internal/contend"
	"litereconfig/internal/core"
	"litereconfig/internal/fault"
	"litereconfig/internal/harness"
	"litereconfig/internal/mbek"
	"litereconfig/internal/obs"
	"litereconfig/internal/sched"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

// StreamConfig describes one video stream submitted for service.
type StreamConfig struct {
	// Name labels the stream in reports. Default "stream-<id>".
	Name string
	// Video is the stream's content. Required.
	Video *vid.Video
	// SLO is the stream's per-frame latency objective in simulated ms.
	// Required.
	SLO float64
	// Class groups streams for aggregate SLO attainment (e.g. "gold",
	// "33ms"). Default: derived from the SLO.
	Class string
	// Tenant identifies the customer the stream belongs to. Optional;
	// when set, per-tenant completion/rejection counters are exported and
	// the tenant is carried on trace events and report rows.
	Tenant string
	// Policy is the scheduler variant. Default core.PolicyFull.
	Policy core.Policy
	// Degrade controls the stream scheduler's graceful-degradation
	// machinery (watchdog ladder + heavy-feature circuit breaker). The
	// default, core.DegradeAuto, engages it exactly when the stream has
	// a fault injector.
	Degrade core.DegradeMode
	// Seed fixes the stream's stochastic realization. Default 1 + id,
	// assigned under the server lock once the id is known, so unseeded
	// streams get distinct realizations.
	Seed int64
	// Faults overrides the server-wide fault schedule (Options.Faults)
	// for this stream; the injector mixes the stream's seed in, so
	// sibling streams sharing one config still draw distinct schedules.
	Faults *fault.Config
	// FaultPlan schedules explicit one-shot fault events for this stream
	// and takes precedence over any rate-driven config.
	FaultPlan *fault.Plan
	// BaseContention is a contention floor external to the served
	// streams (contend.Coupled's Floor).
	BaseContention float64
	// ContentionTrace replays a recorded per-frame external contention
	// floor instead of the constant BaseContention; frames past the end
	// of the trace hold its last level.
	ContentionTrace []float64
	// EstOccupancy is the admission-time GPU occupancy estimate used
	// until the stream's first measured round. Zero means "use the
	// default" (0.5); a negative value requests an explicit zero
	// estimate (admit unconditionally until first measurement).
	EstOccupancy float64
}

// stream is the engine-internal state of one admitted or queued stream.
// All fields except foreign are touched either under the server mutex or
// exclusively by the worker running the stream's round; foreign is
// written at the round barrier and read during the round (ordered by the
// task dispatch and the round WaitGroup).
type stream struct {
	id  int
	srv *Server
	cfg StreamConfig

	pipeline *core.Pipeline
	clock    *simlat.Clock
	kernel   *mbek.Kernel
	stepper  *harness.Stepper
	res      *harness.Result

	// foreign is the aggregate occupancy of the other streams, set at
	// each round barrier; the Coupled generator reads it per frame.
	foreign float64

	// occ is the stream's measured GPU occupancy over its last round
	// (EstOccupancy before the first measurement).
	occ              float64
	lastNow, lastGPU float64

	rounds      int
	waitRounds  int
	contSum     float64 // sum of per-round applied contention levels
	finishedRun bool
	result      *StreamResult

	// Admission-control state, all barrier-side under the server mutex.
	// weight is the stream's WFQ class weight on its current board;
	// finishTag its virtual finish time while queued under WFQ.
	// recentP95/lastCont snapshot the tail per-frame latency and applied
	// contention of the round just run (feasibleOccLocked inverts them —
	// the tail, not the mean, because SLO attainment is a P95 criterion);
	// feasOcc is the aggregate occupancy cap under which the stream's SLO
	// stays feasible, refreshed each barrier by preemptLocked. snapDegrade
	// mirrors the scheduler's degradation rung as of the last barrier so
	// StreamStates never reads worker-side state mid-round.
	weight         int
	finishTag      float64
	recentP95      float64
	lastLatIdx     int
	lastCont       float64
	feasOcc        float64
	preemptions    int
	preemptRetired bool
	snapDegrade    int

	// Health state. panicked/panicMsg are written by the worker that ran
	// the round and read at the barrier (ordered by the round WaitGroup);
	// everything else is barrier-side only.
	health      Health
	panicked    bool
	panicMsg    string
	panics      int // recovered worker panics on the current board
	panicsTotal int // recovered worker panics across all boards
	stallRounds int // consecutive rounds with zero frame progress
	lastFrames  int
	lastGoFs    int // completed GoFs as of the last barrier (checkpoint unit)
	quarReason  string

	// Crash-recovery state. recoveries counts checkpoint restores after
	// board deaths; resumeFrame is the global frame the latest
	// incarnation resumed from (its result rows cover [resumeFrame, end)
	// — pre-checkpoint detail died with the board). fleetRetired marks a
	// stream the fleet retired with no board able to take it, so the
	// conservation accounting can tell retirement from completion.
	recoveries   int
	resumeFrame  int
	fleetRetired bool

	// Migration state: how many times the stream moved between boards,
	// and the per-class fired-fault counts already exported to the
	// registry (so a mid-life export at a migration hand-off and the
	// final export at retirement never double-count).
	migrations int
	exported   map[string]int

	// Per-stream board gauges (nil when unobserved), sampled at each
	// round barrier under the server lock.
	contGauge *obs.Gauge
	occGauge  *obs.Gauge
}

// validateStreamConfig rejects configs the engine cannot serve.
func validateStreamConfig(cfg StreamConfig) error {
	if cfg.Video == nil {
		return fmt.Errorf("serve: stream needs a video")
	}
	if cfg.SLO <= 0 {
		return fmt.Errorf("serve: stream needs a positive SLO")
	}
	return nil
}

// buildStream builds the per-stream pipeline on its own clock and models
// clone. The caller has already assigned the id and reserved a queue
// slot; the expensive clone happens here, off the server lock and only
// for accepted submissions.
func (s *Server) buildStream(id int, cfg StreamConfig) (*stream, error) {
	return s.buildStreamWith(id, cfg, nil, 0)
}

// buildStreamWith is buildStream with recovery hooks: a non-nil warm
// model bundle is cloned instead of the server's base models (restoring
// a stream's adapted champion from the fleet's registry mirror), and a
// nonzero generation stamps the stream's decisions as a restored
// incarnation so they never collide with the lost one's trace
// coordinates.
func (s *Server) buildStreamWith(id int, cfg StreamConfig, warm *sched.Models, gen int) (*stream, error) {
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("stream-%d", id)
	}
	if cfg.Seed == 0 {
		// Documented default: each stream gets its own stochastic
		// realization, derived from the (unique) id.
		cfg.Seed = 1 + int64(id)
	}
	base := s.opts.Models
	if warm != nil {
		base = warm
	}
	models, err := base.Clone()
	if err != nil {
		return nil, err
	}
	s.clones.Add(1)
	s.met.cloneCtr.Inc()
	so := s.opts.Observer.StreamObserverGen(id, cfg.Name, gen)
	// Per-stream online adapter, wrapping the stream's own models clone.
	// The version label is board-qualified ("b1/s3.v2") so streams that
	// migrate never collide with the destination board's native labels
	// in its registry.
	var adapter *adapt.Adapter
	if ac := s.opts.Adapt; ac != nil {
		acfg := *ac
		acfg.Label = fmt.Sprintf("s%d", id)
		if s.opts.Board != "" {
			acfg.Label = s.opts.Board + "/" + acfg.Label
		}
		acfg.Registry = s.adaptReg
		acfg.Gate = s.adaptGate
		adapter, err = adapt.New(acfg, models)
		if err != nil {
			return nil, err
		}
	}
	p, err := core.NewPipeline(core.Options{
		Models: models, SLO: cfg.SLO, Policy: cfg.Policy, Observer: so,
		Degrade: cfg.Degrade, Adapter: adapter,
		ReplayTrace:  s.opts.ReplayTrace,
		RiskQuantile: s.opts.RiskQuantile,
	})
	if err != nil {
		return nil, err
	}
	// Per-stream fault injector: an explicit plan wins, then the stream's
	// own rate config, then the board-wide default. The scheduler owns
	// the graceful-degradation reaction; the stepper charges boundary
	// faults; the worker fires scheduled panics.
	var inj *fault.Injector
	if cfg.FaultPlan != nil {
		inj = fault.FromPlan(*cfg.FaultPlan)
	} else if fc := cfg.Faults; fc != nil && fc.Enabled() {
		inj = fault.NewInjector(*fc, cfg.Seed)
	} else if fc := s.opts.Faults; fc != nil && fc.Enabled() {
		inj = fault.NewInjector(*fc, cfg.Seed)
	}
	p.Sched.SetInjector(inj)
	if cfg.EstOccupancy == 0 {
		cfg.EstOccupancy = DefaultEstOccupancy
	} else if cfg.EstOccupancy < 0 {
		cfg.EstOccupancy = 0 // negative = explicit zero estimate
	}
	if cfg.EstOccupancy > 1 {
		cfg.EstOccupancy = 1
	}
	st := &stream{id: id, srv: s, cfg: cfg, pipeline: p, occ: cfg.EstOccupancy}
	st.weight = s.weightOf(st.className())
	st.clock = simlat.NewClock(s.opts.Device, cfg.Seed)
	st.kernel = mbek.NewKernel(p.Det, st.clock)
	st.res = &harness.Result{MemoryGB: p.MemoryGB}
	st.stepper = harness.NewStepper(st.kernel, p.Sched,
		[]*vid.Video{cfg.Video}, st.clock, nil, st.res)
	st.stepper.SetObserver(so)
	st.stepper.SetInjector(inj)
	st.bindBoard()
	return st, nil
}

// bindBoard wires the stream's board-dependent plumbing to its current
// server: the coupled contention generator (foreign occupancy scaled by
// the board's coupling, layered under the stream's injector) and the
// board-labeled per-stream gauges. Called at build time and again by
// rebind after a migration.
func (st *stream) bindBoard() {
	s := st.srv
	cg := contend.Coupled{
		Source: func(int) float64 { return st.foreign },
		Alpha:  s.opts.Coupling,
		Floor:  st.cfg.BaseContention,
	}
	if s.opts.Coupling == 0 {
		// withDefaults resolved a negative Coupling to an explicit zero;
		// translate it to Coupled's own convention (where a zero Alpha
		// means identity, not "uncoupled").
		cg.Alpha = -1
	}
	if len(st.cfg.ContentionTrace) > 0 {
		cg.FloorSource = contend.Trace{Levels: st.cfg.ContentionTrace}
	}
	st.stepper.SetGenerator(fault.WrapContention(cg, st.stepper.Injector()))
	if r := s.opts.Observer.Registry(); r != nil {
		st.contGauge = r.Gauge(obs.Labeled("serve_stream_contention",
			obs.L("stream", st.cfg.Name), obs.L("board", s.opts.Board)))
		st.occGauge = r.Gauge(obs.Labeled("serve_stream_occupancy",
			obs.L("stream", st.cfg.Name), obs.L("board", s.opts.Board)))
	} else {
		st.contGauge, st.occGauge = nil, nil
	}
}

// rebind moves a detached stream onto server s: the clock keeps its
// accumulated time but charges at the new board's speed, the contention
// generator couples to the new board's streams, and — unless the stream
// carries its own fault schedule — the injector is rebuilt from the new
// board's fault environment. Board-local health counters reset (a fresh
// board owes the stream a fresh retry budget); panicsTotal keeps the
// lifetime tally for the report. Steppers rest at GoF boundaries between
// rounds, so none of this lands mid-GoF.
func (st *stream) rebind(s *Server) {
	st.srv = s
	st.clock.SetDevice(s.opts.Device)
	if st.cfg.FaultPlan == nil && (st.cfg.Faults == nil || !st.cfg.Faults.Enabled()) {
		// Board-scoped faults travel with the board, not the stream.
		var inj *fault.Injector
		if fc := s.opts.Faults; fc != nil && fc.Enabled() {
			inj = fault.NewInjector(*fc, st.cfg.Seed)
		}
		st.stepper.SetInjector(inj)
		st.exported = nil // fresh injector: exports restart from zero
	}
	// Fresh board, fresh degradation state: the watchdog ladder and the
	// heavy-feature breaker were reacting to the old board's environment.
	st.pipeline.Sched.SetInjector(st.stepper.Injector())
	// The adapter travels with the stream — its learned champion,
	// challenger and RLS state survive the hand-off — but its rollout
	// plumbing is board-scoped: future promotions commit to the
	// destination's registry and answer to the destination's gate.
	if a := st.pipeline.Sched.Adapter(); a != nil {
		a.SetRegistry(s.adaptReg)
		a.SetGate(s.adaptGate)
	}
	st.bindBoard()
	// Class weight is a board policy, re-resolved on the new board; the
	// latency measurements and preemption budget travel with the stream.
	st.weight = s.weightOf(st.className())
	st.foreign = 0
	st.panics = 0
	st.stallRounds = 0
	st.lastFrames = st.stepper.Frames()
	st.migrations++
	st.updateHealth()
}

// exportFaultCounts publishes the injector's per-class fired counts to
// the registry as deltas since the last export, under the current
// board's label. Retirement calls it once; a migration hand-off calls it
// early so faults fired on the old board are attributed there.
func (st *stream) exportFaultCounts() {
	r := st.srv.opts.Observer.Registry()
	inj := st.stepper.Injector()
	if r == nil || inj == nil {
		return
	}
	if st.exported == nil {
		st.exported = map[string]int{}
	}
	for class, n := range inj.Counts() {
		if d := n - st.exported[class]; d > 0 {
			r.Counter(obs.Labeled("fault_fired_total",
				obs.L("class", class), obs.L("board", st.srv.opts.Board))).Add(float64(d))
			st.exported[class] = n
		}
	}
}

// run advances the stream by one board round: it steps Group-of-Frames
// until roundMS simulated milliseconds elapse on the stream's clock or
// the video ends. Runs on a worker-pool goroutine. Scheduled worker
// panics fire here, before the step, so the recover in the round task
// never catches the stepper mid-mutation; PanicDue is one-shot, so the
// retried round resumes cleanly past the fault.
func (st *stream) run(roundMS float64) {
	st.rounds++
	target := st.clock.Now() + roundMS
	for st.clock.Now() < target {
		if st.stepper.Injector().PanicDue(st.stepper.Frames()) {
			panic(fmt.Sprintf("fault: injected worker panic (stream %q, frame %d)",
				st.cfg.Name, st.stepper.Frames()))
		}
		if !st.stepper.Step() {
			st.finishedRun = true
			break
		}
	}
}

// measure updates the stream's GPU occupancy from the clock deltas of
// the round just run. Called at the round barrier under the server lock.
func (st *stream) measure() {
	now, gpu := st.clock.Now(), st.clock.GPUBusyMS()
	if dNow := now - st.lastNow; dNow > 0 {
		occ := (gpu - st.lastGPU) / dNow
		if occ > 1 {
			occ = 1
		}
		st.occ = occ
	}
	st.lastNow, st.lastGPU = now, gpu
	if n := st.res.Latency.Count(); n > st.lastLatIdx {
		st.recentP95 = st.res.Latency.PercentileSince(st.lastLatIdx, st.srv.tailPct())
		st.lastLatIdx = n
	}
	st.lastCont = st.clock.Contention()
	st.snapDegrade = st.pipeline.Sched.DegradeLevel()
	st.lastGoFs = st.stepper.GoFs()
	st.contSum += st.clock.Contention()
	st.contGauge.Set(st.clock.Contention())
	st.occGauge.Set(st.occ)
}

// finalize closes the stream's result and computes its report row.
func (st *stream) finalize(dev simlat.Device) {
	st.stepper.Finish()
	st.res.Protocol = st.pipeline.Name()
	st.res.Device = dev
	st.res.SLO = st.cfg.SLO
	st.res.FeatureUse = st.pipeline.Sched.FeatureUse()
	meanCont := 0.0
	if st.rounds > 0 {
		meanCont = st.contSum / float64(st.rounds)
	}
	meanOcc := 0.0
	if now := st.clock.Now(); now > 0 {
		meanOcc = st.clock.GPUBusyMS() / now
	}
	st.result = &StreamResult{
		ID:               st.id,
		Name:             st.cfg.Name,
		Class:            st.className(),
		Tenant:           st.cfg.Tenant,
		SLO:              st.cfg.SLO,
		Board:            st.srv.opts.Board,
		Migrations:       st.migrations,
		Preemptions:      st.preemptions,
		PreemptRetired:   st.preemptRetired,
		Policy:           st.res.Protocol,
		Frames:           len(st.res.Frames),
		MAP:              st.res.MAP(),
		MeanMS:           st.res.Latency.Mean(),
		P95MS:            st.res.Latency.P95(),
		MeetsSLO:         st.res.MeetsSLO(),
		ViolationRate:    st.res.Latency.ViolationRate(st.cfg.SLO),
		Switches:         st.res.Switches,
		BranchCoverage:   st.res.BranchCoverage,
		MeanContention:   meanCont,
		MeanOccupancy:    meanOcc,
		Rounds:           st.rounds,
		WaitRounds:       st.waitRounds,
		Health:           st.health.String(),
		Panics:           st.panicsTotal,
		Quarantined:      st.health == HealthQuarantined,
		QuarantineReason: st.quarReason,
		Recovered:        st.recoveries > 0,
		Recoveries:       st.recoveries,
		ResumeFrame:      st.resumeFrame,
		FleetRetired:     st.fleetRetired,
		Raw:              st.res,
	}
	if a := st.pipeline.Sched.Adapter(); a != nil {
		st.result.ModelVersion = a.VersionLabel()
		st.result.Promotions = a.Promotions()
		st.result.Demotions = a.Demotions()
		st.result.Refits = a.Refits()
	}
}

// updateHealth recomputes a live stream's health at the round barrier:
// degraded while the scheduler's watchdog ladder is engaged, the stream
// is failing to make progress, or it has already survived a panic;
// healthy otherwise. Quarantine is terminal and set elsewhere.
func (st *stream) updateHealth() {
	if st.health == HealthQuarantined {
		return
	}
	if st.pipeline.Sched.DegradeLevel() > 0 || st.stallRounds > 0 || st.panics > 0 {
		st.health = HealthDegraded
	} else {
		st.health = HealthHealthy
	}
}

// className returns the stream's SLO class, deriving one from the SLO
// when unset.
func (st *stream) className() string {
	if st.cfg.Class != "" {
		return st.cfg.Class
	}
	return deriveClass(st.cfg.SLO)
}

// Stream is the caller's handle to a submitted stream.
type Stream struct{ st *stream }

// ID returns the stream's server-assigned id (submission order).
func (h *Stream) ID() int { return h.st.id }

// Name returns the stream's label.
func (h *Stream) Name() string { return h.st.cfg.Name }

// Result returns the stream's report row, or nil before the server has
// drained the stream to completion.
func (h *Stream) Result() *StreamResult { return h.st.result }

// Health returns the stream's health state as of its last round barrier
// (or its final state once drained).
func (h *Stream) Health() Health { return h.st.health }
