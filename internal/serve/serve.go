// Package serve is the multi-stream serving engine: it multiplexes many
// concurrent video streams over one shared simulated board. Each stream
// owns a full LiteReconfig pipeline (scheduler + kernel) and a latency
// clock; a worker pool bounded by the board's GPU-slot count executes
// Group-of-Frames work; and the contention each stream's scheduler must
// adapt to is not a synthetic generator but the measured GPU occupancy
// of the *other* streams (contend.Coupled), closing the loop the paper's
// contention generator (Sec. 6) stands in for.
//
// The board advances in rounds of RoundMS simulated milliseconds. Within
// a round every admitted stream runs independently on its own clock (in
// parallel, on the worker pool); at the round barrier the engine
// re-measures each stream's GPU occupancy and recomputes every stream's
// coupled contention level for the next round. Because coupling only
// changes at barriers, results are deterministic for a fixed submission
// order and fixed seeds, regardless of goroutine scheduling.
//
// Admission control keeps the aggregate declared occupancy of admitted
// streams below MaxOccupancy: streams over the threshold wait in a FIFO
// queue, and once the queue is full further submissions are rejected
// (backpressure). Drain stops intake, serves everything admitted or
// queued to completion, and returns the per-stream and per-class report.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"litereconfig/internal/adapt"
	"litereconfig/internal/fault"
	"litereconfig/internal/obs"
	"litereconfig/internal/sched"
	"litereconfig/internal/simlat"
)

// ErrQueueFull reports a submission refused by admission backpressure.
// Under open-loop arrivals rejection is an expected outcome, not a
// fault: callers match it with errors.Is and count it rather than
// string-matching the message. Every rejection is also counted in the
// serve_rejections_total metric.
var ErrQueueFull = errors.New("serve: admission queue full")

// Defaults for Options fields left zero.
const (
	DefaultGPUSlots   = 2
	DefaultCoupling   = 0.5
	DefaultQueueLimit = 16
	DefaultRoundMS    = 200
	// DefaultEstOccupancy is the admission-time occupancy estimate used
	// for a stream before its first measured round.
	DefaultEstOccupancy = 0.5
	// DefaultRetryLimit is how many recovered worker panics a stream may
	// accumulate before it is quarantined.
	DefaultRetryLimit = 2
	// DefaultStallRounds is how many consecutive zero-progress rounds
	// quarantine a stream.
	DefaultStallRounds = 10
	// DefaultPreemptLimit is how many evictions a stream absorbs before
	// a further preemption retires it with partial results.
	DefaultPreemptLimit = 3
	// DefaultSafetyFactor shrinks a stream's SLO to the planning budget
	// used for barrier-time feasibility scoring, matching the stream
	// scheduler's own headroom.
	DefaultSafetyFactor = 0.88
)

// Options configures a Server.
type Options struct {
	// Models is the trained scheduler bundle. Each stream receives its
	// own deep clone (the prediction networks are not concurrency-safe).
	Models *sched.Models
	// Device is the simulated board shared by all streams. Default TX2.
	Device simlat.Device
	// GPUSlots bounds the worker pool: at most this many streams execute
	// simultaneously, and foreign occupancy is normalized by it. Default 2.
	GPUSlots int
	// MaxOccupancy is the admission threshold on the aggregate GPU
	// occupancy (sum over admitted streams, each in [0, 1]). Default
	// 2 x GPUSlots (a 2x-oversubscribed board).
	MaxOccupancy float64
	// Coupling scales foreign occupancy into a contention level
	// (contend.Coupled's Alpha). Zero means "use the default" (0.5); an
	// explicitly uncoupled board (Alpha = 0) is requested with any
	// negative value.
	Coupling float64
	// QueueLimit bounds the admission queue; submissions beyond it are
	// rejected. Default 16.
	QueueLimit int
	// RoundMS is the simulated length of one board round. Default 200.
	RoundMS float64
	// Board labels this server as one board of a fleet: engine metrics
	// and per-stream gauges gain a board="<name>" label, and reports name
	// the board that retired each stream. Empty for a standalone server
	// (no label is emitted).
	Board string
	// Faults is the default rate-driven fault schedule applied to every
	// stream (override per stream with StreamConfig.Faults or FaultPlan).
	// Each stream's injector mixes in its own seed, so schedules stay
	// decorrelated across streams.
	Faults *fault.Config
	// RetryLimit is how many recovered worker panics one stream may
	// accumulate before quarantine; a panicked round below the limit is
	// simply retried (one-shot faults do not re-fire). Zero means the
	// default (2); negative means quarantine on the first panic.
	RetryLimit int
	// StallRounds quarantines a stream after this many consecutive
	// rounds with zero frame progress. Zero means the default (10).
	StallRounds int
	// Observer is the opt-in observability sink: scheduler decision
	// traces at every GoF boundary plus engine metrics (per-round
	// occupancy, queue depth, admissions, rejections, per-stream coupled
	// contention). All samples are timestamped by the simulated clock,
	// and recording is passive, so an observed run takes exactly the
	// same scheduling decisions as an unobserved one.
	Observer *obs.Observer
	// Admission selects the queue discipline: AdmissionFIFO (default,
	// submission order, no skipping) or AdmissionWFQ (weighted-fair
	// order across SLO classes by ClassWeights).
	Admission AdmissionPolicy
	// ClassWeights maps an SLO class name to its weighted-fair-queueing
	// weight (default 1). Higher-weight classes are admitted more often
	// under backlog and outrank lower-weight classes for preemption.
	ClassWeights map[string]int
	// Preempt enables barrier-time preemption: when a higher-weight
	// stream's SLO is infeasible under the board's current occupancy
	// (or a higher-weight arrival cannot be admitted), the lowest-weight
	// active streams are evicted back to the admission queue — or, past
	// PreemptLimit evictions, retired with partial results. Feasibility
	// is judged from each stream's own measured latency inverted through
	// the board's contention model; no extra model state is needed.
	Preempt bool
	// PreemptLimit is the per-stream eviction budget; zero means the
	// default (3), negative means retire on the first preemption.
	PreemptLimit int
	// SafetyFactor shrinks SLOs to planning budgets for feasibility
	// scoring. Zero means the default (0.88).
	SafetyFactor float64
	// Adapt enables online model adaptation for every served stream:
	// each stream's scheduler shadows its decisions, refits a challenger
	// copy of its cloned models from realized GoF outcomes, and promotes
	// it champion–challenger style at GoF barriers. The server overrides
	// the config's per-stream fields — Label becomes the stream's
	// board-qualified id, Registry the board's shared registry
	// (Adapt.Registry if set, otherwise one the server creates), and
	// Gate the board's rollout gate (Adapt.Gate, which a fleet uses for
	// staged rollout; nil means promotions are always allowed).
	Adapt *adapt.Config
	// ReplayTrace enriches every recorded decision with the scheduler's
	// full input set (obs.ReplayPayload) for offline counterfactual
	// replay via internal/replay. Requires an Observer; off by default —
	// with the flag off, traces are byte-identical to older builds.
	ReplayTrace bool
	// RiskQuantile enables probabilistic SLO admission on every served
	// stream's scheduler (core.Options.RiskQuantile): branches are
	// admitted on their q-quantile predicted latency instead of the
	// mean, and the preemption controller inverts the same quantile of
	// each stream's recent measured latency — not the fixed P95 —
	// through the contention model when judging feasibility. 0 (the
	// default) is legacy mean admission with byte-identical traces.
	RiskQuantile float64
}

func (o Options) withDefaults() Options {
	if o.Device.Name == "" {
		o.Device = simlat.TX2
	}
	if o.GPUSlots <= 0 {
		o.GPUSlots = DefaultGPUSlots
	}
	if o.MaxOccupancy <= 0 {
		o.MaxOccupancy = 2 * float64(o.GPUSlots)
	}
	if o.Coupling == 0 {
		o.Coupling = DefaultCoupling
	} else if o.Coupling < 0 {
		o.Coupling = 0 // negative = explicitly uncoupled
	}
	if o.QueueLimit <= 0 {
		o.QueueLimit = DefaultQueueLimit
	}
	if o.RoundMS <= 0 {
		o.RoundMS = DefaultRoundMS
	}
	if o.RetryLimit == 0 {
		o.RetryLimit = DefaultRetryLimit
	} else if o.RetryLimit < 0 {
		o.RetryLimit = 0 // negative = quarantine on first panic
	}
	if o.StallRounds <= 0 {
		o.StallRounds = DefaultStallRounds
	}
	if o.PreemptLimit == 0 {
		o.PreemptLimit = DefaultPreemptLimit
	} else if o.PreemptLimit < 0 {
		o.PreemptLimit = 0 // negative = retire on first preemption
	}
	if o.SafetyFactor <= 0 {
		o.SafetyFactor = DefaultSafetyFactor
	}
	return o
}

// Server multiplexes streams over one simulated board. Submit and Drain
// are safe for concurrent use.
type Server struct {
	opts Options

	tasks    chan func()
	workerWG sync.WaitGroup

	// clones counts Models deep-clones — one per accepted stream, never
	// one for a rejected or post-drain submission.
	clones atomic.Int64

	// adaptReg is the board's shared model registry (nil when adaptation
	// is off): every stream's promoted snapshots commit here, and a
	// stream migrating in re-points its adapter at it. adaptGate is the
	// board's rollout gate, owned by the fleet for staged rollout (nil =
	// promotions always allowed).
	adaptReg  *adapt.Registry
	adaptGate *atomic.Bool

	drainOnce sync.Once
	drained   chan struct{} // closed once the report exists

	mu          sync.Mutex
	nextID      int
	reserved    int       // queue slots held by submissions still building
	queue       []*stream // submitted, awaiting admission (FIFO or WFQ tag order)
	active      []*stream // admitted, not finished
	finished    []*stream // in completion order; report sorts by ID
	rejected    int
	rejByClass  map[string]int // backpressure rejections per SLO class
	preempts    int            // preemption evictions, all streams
	preemptRet  int            // streams retired by exhausted preemption budget
	rounds      int            // board rounds run so far
	panicsTotal int            // recovered worker panics, all streams
	quarantined int            // streams retired to quarantine
	draining    bool
	report      *Result

	// WFQ state: the system virtual time and each class's last finish
	// tag (see enqueueLocked). events buffers admission events for the
	// dispatcher to drain between rounds.
	wfqVirt  float64
	wfqLastF map[string]float64
	events   []StreamEvent

	// met holds the engine's cached metric handles; all nil (and every
	// call a no-op) when no Observer is configured.
	met struct {
		admissions  *obs.Counter
		rejections  *obs.Counter
		cloneCtr    *obs.Counter
		rounds      *obs.Counter
		panics      *obs.Counter
		retries     *obs.Counter
		quarantines *obs.Counter
		preempts    *obs.Counter
		preemptRet  *obs.Counter
		active      *obs.Gauge
		queued      *obs.Gauge
		degraded    *obs.Gauge
		occupancy   *obs.Gauge
		boardMS     *obs.Gauge
		occHist     *obs.Histogram
	}
}

// New builds a serving engine and starts its worker pool.
func New(opts Options) (*Server, error) {
	if opts.Models == nil {
		return nil, fmt.Errorf("serve: models are required")
	}
	if opts.RiskQuantile < 0 || opts.RiskQuantile >= 1 {
		return nil, fmt.Errorf("serve: RiskQuantile must be in [0, 1), got %v", opts.RiskQuantile)
	}
	opts = opts.withDefaults()
	s := &Server{opts: opts, tasks: make(chan func()), drained: make(chan struct{})}
	if ac := opts.Adapt; ac != nil {
		s.adaptReg = ac.Registry
		if s.adaptReg == nil {
			s.adaptReg = adapt.NewRegistry()
		}
		s.adaptGate = ac.Gate
	}
	if r := opts.Observer.Registry(); r != nil {
		// Board-labeled names: on a fleet every board shares one registry,
		// so engine series carry board="<name>"; standalone servers (empty
		// Board) keep the bare names.
		name := func(base string) string {
			return obs.Labeled(base, obs.L("board", opts.Board))
		}
		s.met.admissions = r.Counter(name("serve_admissions_total"))
		s.met.rejections = r.Counter(name("serve_rejections_total"))
		s.met.cloneCtr = r.Counter(name("serve_model_clones_total"))
		s.met.rounds = r.Counter(name("serve_rounds_total"))
		s.met.panics = r.Counter(name("serve_panics_total"))
		s.met.retries = r.Counter(name("serve_retries_total"))
		s.met.quarantines = r.Counter(name("serve_quarantined_total"))
		s.met.preempts = r.Counter(name("serve_preemptions_total"))
		s.met.preemptRet = r.Counter(name("serve_preempt_retired_total"))
		s.met.active = r.Gauge(name("serve_active_streams"))
		s.met.queued = r.Gauge(name("serve_queued_streams"))
		s.met.degraded = r.Gauge(name("serve_degraded_streams"))
		s.met.occupancy = r.Gauge(name("serve_aggregate_occupancy"))
		s.met.boardMS = r.Gauge(name("serve_board_sim_ms"))
		s.met.occHist = r.Histogram(name("serve_round_occupancy"),
			[]float64{0.25, 0.5, 1, 1.5, 2, 3, 4, 6, 8})
	}
	for i := 0; i < opts.GPUSlots; i++ {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for task := range s.tasks {
				task()
			}
		}()
	}
	return s, nil
}

// Options returns the server's effective (defaulted) options.
func (s *Server) Options() Options { return s.opts }

// AdaptRegistry returns the board's shared model registry, or nil when
// online adaptation is off.
func (s *Server) AdaptRegistry() *adapt.Registry { return s.adaptReg }

// Submit queues one stream for service. It returns a rejection error —
// and counts the rejection — when the admission queue is full, and a
// plain error when the server is draining or the config is invalid.
//
// Validation, backpressure and identity assignment all happen before
// the expensive Models deep-clone: a rejected or post-drain submission
// never pays for a pipeline it will not run. The queue slot is reserved
// under the lock, the clone runs outside it, and the stream only enters
// the queue if the server has not started draining in the meantime.
func (s *Server) Submit(cfg StreamConfig) (*Stream, error) {
	if err := validateStreamConfig(cfg); err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: server is draining, not accepting streams")
	}
	if len(s.queue)+s.reserved >= s.opts.QueueLimit {
		err := s.rejectLocked(cfg)
		s.mu.Unlock()
		return nil, err
	}
	s.reserved++
	id := s.nextID
	s.nextID++
	s.mu.Unlock()

	st, err := s.buildStream(id, cfg)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.reserved--
	if err != nil {
		return nil, err
	}
	if s.draining {
		return nil, fmt.Errorf("serve: server is draining, not accepting streams")
	}
	s.enqueueLocked(st)
	return &Stream{st: st}, nil
}

// rejectLocked counts one backpressure rejection (total, per class, per
// tenant) and returns the typed error. Caller holds the server mutex.
func (s *Server) rejectLocked(cfg StreamConfig) error {
	s.rejected++
	s.met.rejections.Inc()
	class := ClassOf(cfg)
	if s.rejByClass == nil {
		s.rejByClass = map[string]int{}
	}
	s.rejByClass[class]++
	s.classCounter("serve_class_rejections_total", class).Inc()
	s.tenantCounter("serve_tenant_rejections_total", cfg.Tenant).Inc()
	return fmt.Errorf("serve: %w (%d streams), stream %q refused",
		ErrQueueFull, s.opts.QueueLimit, cfg.Name)
}

// Clones returns the number of Models deep-clones performed; rejected
// submissions do not clone.
func (s *Server) Clones() int { return int(s.clones.Load()) }

// Rejected returns the number of submissions turned away by backpressure.
func (s *Server) Rejected() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejected
}

// QueueDepth returns the number of streams waiting for admission.
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// admitLocked moves queued streams into the active set while the
// aggregate occupancy stays within the threshold. Admission takes the
// queue strictly in its head order — submission order under FIFO,
// (finishTag, id) order under WFQ — with no skipping, so a heavy
// head-of-line stream queues rather than starves. Under preemption the
// threshold is further tightened by the feasibility caps of active
// higher-weight streams (capForLocked), so an evicted best-effort stream
// cannot bounce straight back onto the board it was evicted from. An
// idle board always admits the head: serving something beats waiting for
// an occupancy estimate that can never fit.
func (s *Server) admitLocked() {
	for len(s.queue) > 0 {
		agg := 0.0
		for _, st := range s.active {
			agg += st.occ
		}
		head := s.queue[0]
		if len(s.active) > 0 && agg+head.occ > s.headCapLocked(head) {
			return
		}
		s.queue = s.queue[1:]
		if head.finishTag > s.wfqVirt {
			// Serving this tag advances the system virtual time, so a class
			// that went idle re-enters at the current front of the schedule
			// instead of with banked credit.
			s.wfqVirt = head.finishTag
		}
		s.active = append(s.active, head)
		s.met.admissions.Inc()
	}
}

// Drain stops intake and serves every admitted and queued stream to
// completion, then stops the worker pool and returns the report. It is
// idempotent and safe to call concurrently: exactly one caller runs the
// round loop (sync.Once guards the task-channel close), every other
// caller blocks until the report exists and returns the same report.
func (s *Server) Drain() *Result {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()

		for s.runRound() {
		}
		close(s.tasks)
		s.workerWG.Wait()

		s.mu.Lock()
		s.report = s.buildReportLocked(s.rounds)
		s.mu.Unlock()
		close(s.drained)
	})
	<-s.drained
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report
}

// Kill fail-stops the board: every live (active or queued) stream is
// discarded — its in-memory pipeline, clock and tracker state are gone,
// exactly what a board crash loses — the worker pool stops, and the
// report is built from the streams that had already finished (their
// completion reports were delivered at the barrier they finished at, so
// they survive the crash). Kill shares Drain's once-guard: a later
// Drain on a killed board returns the stored report instead of running
// rounds. The fleet dispatcher calls Kill only at its own barrier, with
// no round in flight.
func (s *Server) Kill() {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.active = nil
		s.queue = nil
		s.wfqLastF = nil
		s.mu.Unlock()

		close(s.tasks)
		s.workerWG.Wait()

		s.mu.Lock()
		s.report = s.buildReportLocked(s.rounds)
		s.mu.Unlock()
		close(s.drained)
	})
	<-s.drained
}

// runRound admits from the queue, couples contention from the current
// occupancies, runs one RoundMS round of every active stream on the
// worker pool, and retires finished streams at the barrier. It reports
// false once no stream is active or queued.
func (s *Server) runRound() bool {
	s.mu.Lock()
	s.preemptLocked()
	s.admitLocked()
	if len(s.active) == 0 {
		s.mu.Unlock()
		return false
	}
	round := append([]*stream(nil), s.active...)
	total := 0.0
	for _, st := range round {
		total += st.occ
	}
	for _, st := range round {
		// Foreign occupancy: everyone else's load, spread over the
		// board's GPU slots. The stream's Coupled generator turns this
		// into its contention level for the whole round.
		st.foreign = (total - st.occ) / float64(s.opts.GPUSlots)
	}
	for _, st := range s.queue {
		st.waitRounds++
	}
	s.rounds++
	// Per-round board samples, all under the lock in deterministic
	// order; the board's timestamp is its simulated round horizon.
	s.met.rounds.Inc()
	s.met.active.Set(float64(len(round)))
	s.met.queued.Set(float64(len(s.queue)))
	s.met.occupancy.Set(total)
	s.met.occHist.Observe(total)
	s.met.boardMS.Set(float64(s.rounds) * s.opts.RoundMS)
	s.mu.Unlock()

	var wg sync.WaitGroup
	for _, st := range round {
		st := st
		wg.Add(1)
		s.tasks <- func() {
			defer wg.Done()
			// Contain panics (injected or real) to the stream that raised
			// them: mark the stream and let the barrier decide between
			// retry and quarantine. The worker goroutine survives and
			// wg.Wait never wedges. Recover runs before wg.Done (LIFO).
			defer func() {
				if r := recover(); r != nil {
					st.panicked = true
					st.panicMsg = fmt.Sprint(r)
				}
			}()
			st.run(s.opts.RoundMS)
		}
	}
	wg.Wait()

	s.mu.Lock()
	var still []*stream
	degraded := 0
	for _, st := range round {
		st.measure()
		progressed := st.stepper.Frames() > st.lastFrames
		st.lastFrames = st.stepper.Frames()
		if st.panicked {
			st.panicked = false
			st.panics++
			st.panicsTotal++
			s.panicsTotal++
			s.met.panics.Inc()
			if st.panics > s.opts.RetryLimit {
				s.quarantineLocked(st, "panic retries exhausted: "+st.panicMsg)
				continue
			}
			// Bounded retry: the stream stays active and re-runs from
			// where its clock stopped; one-shot faults do not re-fire.
			s.met.retries.Inc()
		}
		if st.finishedRun {
			st.updateHealth()
			st.retireLocked()
			continue
		}
		if !progressed {
			if st.stallRounds++; st.stallRounds >= s.opts.StallRounds {
				s.quarantineLocked(st, fmt.Sprintf("no progress for %d rounds", st.stallRounds))
				continue
			}
		} else {
			st.stallRounds = 0
		}
		st.updateHealth()
		if st.health == HealthDegraded {
			degraded++
		}
		still = append(still, st)
	}
	s.active = still
	s.pruneWFQLocked()
	s.met.degraded.Set(float64(degraded))
	s.mu.Unlock()
	return true
}

// quarantineLocked retires a failed stream: its partial results are
// finalized into the report with the terminal health state and the
// reason. Caller holds the server mutex.
func (s *Server) quarantineLocked(st *stream, reason string) {
	st.health = HealthQuarantined
	st.quarReason = reason
	s.quarantined++
	s.met.quarantines.Inc()
	st.retireLocked()
}

// retireLocked finalizes a stream (completed or quarantined) into the
// finished set and exports its injector's per-class fired-fault counts
// under the board's label. Caller holds the server mutex; the method is
// on stream's server for access to device, registry and the finished
// list.
func (st *stream) retireLocked() {
	srv := st.srv
	st.finalize(srv.opts.Device)
	st.exportFaultCounts()
	srv.classCounter("serve_class_completions_total", st.className()).Inc()
	srv.tenantCounter("serve_tenant_completions_total", st.cfg.Tenant).Inc()
	srv.finished = append(srv.finished, st)
}
