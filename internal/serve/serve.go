// Package serve is the multi-stream serving engine: it multiplexes many
// concurrent video streams over one shared simulated board. Each stream
// owns a full LiteReconfig pipeline (scheduler + kernel) and a latency
// clock; a worker pool bounded by the board's GPU-slot count executes
// Group-of-Frames work; and the contention each stream's scheduler must
// adapt to is not a synthetic generator but the measured GPU occupancy
// of the *other* streams (contend.Coupled), closing the loop the paper's
// contention generator (Sec. 6) stands in for.
//
// The board advances in rounds of RoundMS simulated milliseconds. Within
// a round every admitted stream runs independently on its own clock (in
// parallel, on the worker pool); at the round barrier the engine
// re-measures each stream's GPU occupancy and recomputes every stream's
// coupled contention level for the next round. Because coupling only
// changes at barriers, results are deterministic for a fixed submission
// order and fixed seeds, regardless of goroutine scheduling.
//
// Admission control keeps the aggregate declared occupancy of admitted
// streams below MaxOccupancy: streams over the threshold wait in a FIFO
// queue, and once the queue is full further submissions are rejected
// (backpressure). Drain stops intake, serves everything admitted or
// queued to completion, and returns the per-stream and per-class report.
package serve

import (
	"fmt"
	"sync"

	"litereconfig/internal/sched"
	"litereconfig/internal/simlat"
)

// Defaults for Options fields left zero.
const (
	DefaultGPUSlots   = 2
	DefaultCoupling   = 0.5
	DefaultQueueLimit = 16
	DefaultRoundMS    = 200
	// DefaultEstOccupancy is the admission-time occupancy estimate used
	// for a stream before its first measured round.
	DefaultEstOccupancy = 0.5
)

// Options configures a Server.
type Options struct {
	// Models is the trained scheduler bundle. Each stream receives its
	// own deep clone (the prediction networks are not concurrency-safe).
	Models *sched.Models
	// Device is the simulated board shared by all streams. Default TX2.
	Device simlat.Device
	// GPUSlots bounds the worker pool: at most this many streams execute
	// simultaneously, and foreign occupancy is normalized by it. Default 2.
	GPUSlots int
	// MaxOccupancy is the admission threshold on the aggregate GPU
	// occupancy (sum over admitted streams, each in [0, 1]). Default
	// 2 x GPUSlots (a 2x-oversubscribed board).
	MaxOccupancy float64
	// Coupling scales foreign occupancy into a contention level
	// (contend.Coupled's Alpha). Default 0.5.
	Coupling float64
	// QueueLimit bounds the admission queue; submissions beyond it are
	// rejected. Default 16.
	QueueLimit int
	// RoundMS is the simulated length of one board round. Default 200.
	RoundMS float64
}

func (o Options) withDefaults() Options {
	if o.Device.Name == "" {
		o.Device = simlat.TX2
	}
	if o.GPUSlots <= 0 {
		o.GPUSlots = DefaultGPUSlots
	}
	if o.MaxOccupancy <= 0 {
		o.MaxOccupancy = 2 * float64(o.GPUSlots)
	}
	if o.Coupling == 0 {
		o.Coupling = DefaultCoupling
	}
	if o.QueueLimit <= 0 {
		o.QueueLimit = DefaultQueueLimit
	}
	if o.RoundMS <= 0 {
		o.RoundMS = DefaultRoundMS
	}
	return o
}

// Server multiplexes streams over one simulated board. Submit and Drain
// are safe for concurrent use.
type Server struct {
	opts Options

	tasks    chan func()
	workerWG sync.WaitGroup

	mu       sync.Mutex
	nextID   int
	queue    []*stream // submitted, awaiting admission (FIFO)
	active   []*stream // admitted, not finished
	finished []*stream // in completion order; report sorts by ID
	rejected int
	draining bool
	report   *Result
}

// New builds a serving engine and starts its worker pool.
func New(opts Options) (*Server, error) {
	if opts.Models == nil {
		return nil, fmt.Errorf("serve: models are required")
	}
	opts = opts.withDefaults()
	s := &Server{opts: opts, tasks: make(chan func())}
	for i := 0; i < opts.GPUSlots; i++ {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for task := range s.tasks {
				task()
			}
		}()
	}
	return s, nil
}

// Options returns the server's effective (defaulted) options.
func (s *Server) Options() Options { return s.opts }

// Submit queues one stream for service. It returns a rejection error —
// and counts the rejection — when the admission queue is full, and a
// plain error when the server is draining or the config is invalid.
func (s *Server) Submit(cfg StreamConfig) (*Stream, error) {
	if cfg.Video == nil {
		return nil, fmt.Errorf("serve: stream needs a video")
	}
	if cfg.SLO <= 0 {
		return nil, fmt.Errorf("serve: stream needs a positive SLO")
	}
	st, err := s.newStream(cfg)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, fmt.Errorf("serve: server is draining, not accepting streams")
	}
	if len(s.queue) >= s.opts.QueueLimit {
		s.rejected++
		return nil, fmt.Errorf("serve: admission queue full (%d streams), stream %q rejected",
			s.opts.QueueLimit, st.cfg.Name)
	}
	st.id = s.nextID
	s.nextID++
	if st.cfg.Name == "" {
		st.cfg.Name = fmt.Sprintf("stream-%d", st.id)
	}
	s.queue = append(s.queue, st)
	return &Stream{st: st}, nil
}

// Rejected returns the number of submissions turned away by backpressure.
func (s *Server) Rejected() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejected
}

// QueueDepth returns the number of streams waiting for admission.
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// admitLocked moves queued streams into the active set while the
// aggregate occupancy stays within the threshold. Admission is FIFO with
// no skipping, so a heavy head-of-line stream queues rather than starves.
// An idle board always admits the head: serving something beats waiting
// for an occupancy estimate that can never fit.
func (s *Server) admitLocked() {
	for len(s.queue) > 0 {
		agg := 0.0
		for _, st := range s.active {
			agg += st.occ
		}
		head := s.queue[0]
		if len(s.active) > 0 && agg+head.occ > s.opts.MaxOccupancy {
			return
		}
		s.queue = s.queue[1:]
		s.active = append(s.active, head)
	}
}

// Drain stops intake and serves every admitted and queued stream to
// completion, then stops the worker pool and returns the report. It is
// idempotent: later calls return the same report.
func (s *Server) Drain() *Result {
	s.mu.Lock()
	if s.report != nil {
		r := s.report
		s.mu.Unlock()
		return r
	}
	s.draining = true
	s.mu.Unlock()

	rounds := 0
	for s.runRound() {
		rounds++
	}
	close(s.tasks)
	s.workerWG.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.report = s.buildReportLocked(rounds)
	return s.report
}

// runRound admits from the queue, couples contention from the current
// occupancies, runs one RoundMS round of every active stream on the
// worker pool, and retires finished streams at the barrier. It reports
// false once no stream is active or queued.
func (s *Server) runRound() bool {
	s.mu.Lock()
	s.admitLocked()
	if len(s.active) == 0 {
		s.mu.Unlock()
		return false
	}
	round := append([]*stream(nil), s.active...)
	total := 0.0
	for _, st := range round {
		total += st.occ
	}
	for _, st := range round {
		// Foreign occupancy: everyone else's load, spread over the
		// board's GPU slots. The stream's Coupled generator turns this
		// into its contention level for the whole round.
		st.foreign = (total - st.occ) / float64(s.opts.GPUSlots)
	}
	for _, st := range s.queue {
		st.waitRounds++
	}
	s.mu.Unlock()

	var wg sync.WaitGroup
	for _, st := range round {
		st := st
		wg.Add(1)
		s.tasks <- func() {
			defer wg.Done()
			st.run(s.opts.RoundMS)
		}
	}
	wg.Wait()

	s.mu.Lock()
	var still []*stream
	for _, st := range round {
		st.measure()
		if st.finishedRun {
			st.finalize(s.opts.Device)
			s.finished = append(s.finished, st)
		} else {
			still = append(still, st)
		}
	}
	s.active = still
	s.mu.Unlock()
	return true
}
