package serve

import (
	"fmt"

	"litereconfig/internal/mbek"
)

// This file is the board-side API of the fleet layer: a dispatcher
// driving several Servers as boards uses these hooks to allocate
// globally unique stream ids, step boards round by round, observe
// occupancy and health between rounds, and move live streams between
// boards. A standalone Server never calls any of it.

// Prepare submits a stream under a caller-assigned id. The fleet
// dispatcher allocates ids globally so decision traces from streams on
// different boards never collide in the shared observer. The server's
// own id counter advances past the given id, so Prepare and Submit can
// be mixed without collisions.
func (s *Server) Prepare(id int, cfg StreamConfig) (*Stream, error) {
	if err := validateStreamConfig(cfg); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: server is draining, not accepting streams")
	}
	if len(s.queue)+s.reserved >= s.opts.QueueLimit {
		err := s.rejectLocked(cfg)
		s.mu.Unlock()
		return nil, err
	}
	s.reserved++
	if id >= s.nextID {
		s.nextID = id + 1
	}
	s.mu.Unlock()

	st, err := s.buildStream(id, cfg)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.reserved--
	if err != nil {
		return nil, err
	}
	if s.draining {
		return nil, fmt.Errorf("serve: server is draining, not accepting streams")
	}
	s.queue = append(s.queue, st)
	return &Stream{st: st}, nil
}

// StepRound advances the board by exactly one round (admission, one
// RoundMS of every active stream on the worker pool, barrier). It
// reports false when the board had nothing to run. The fleet dispatcher
// drives boards with StepRound between its own barriers; Drain remains
// the single-board entry point and runs the same rounds in a loop.
func (s *Server) StepRound() bool { return s.runRound() }

// Occupancy returns the aggregate measured GPU occupancy of the active
// streams and the aggregate estimated occupancy of the queued ones.
func (s *Server) Occupancy() (active, queued float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.active {
		active += st.occ
	}
	for _, st := range s.queue {
		queued += st.occ
	}
	return active, queued
}

// Counts returns the board's stream population: active, queued and
// finished (retired) streams.
func (s *Server) Counts() (active, queued, finished int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active), len(s.queue), len(s.finished)
}

// Rounds returns the number of board rounds run so far.
func (s *Server) Rounds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rounds
}

// Panics returns the recovered worker panics across all streams the
// board has run — the fleet's board-health signal.
func (s *Server) Panics() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.panicsTotal
}

// QuarantinedStreams returns how many streams this board retired to
// quarantine.
func (s *Server) QuarantinedStreams() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// StreamState is a between-rounds snapshot of one live (active or
// queued) stream, exposed for fleet placement and migration decisions.
type StreamState struct {
	ID           int
	Name         string
	Class        string
	Tenant       string
	SLO          float64
	Weight       int     // WFQ class weight on this board
	Occ          float64 // measured GPU occupancy (estimate while queued)
	Health       Health
	DegradeLevel int // scheduler's degradation rung as of the last barrier
	Frames       int // frames processed as of the last barrier
	GoFs         int // completed GoF windows as of the last barrier
	Panics       int // recovered panics on this board
	Migrations   int // lifetime board hand-offs
	Preemptions  int // lifetime admission evictions
	Queued       bool
}

// StreamStates snapshots the board's live streams (active first, then
// queued, both in order). Every field it reads is barrier-side state
// guarded by the server mutex — frame and degradation progress are the
// snapshots taken at the last round barrier, never the worker-side
// counters a round mutates in flight — so the method is safe to call at
// any time, though mid-round callers see the previous barrier's view.
func (s *Server) StreamStates() []StreamState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StreamState, 0, len(s.active)+len(s.queue))
	snap := func(st *stream, queued bool) StreamState {
		return StreamState{
			ID:           st.id,
			Name:         st.cfg.Name,
			Class:        st.className(),
			Tenant:       st.cfg.Tenant,
			SLO:          st.cfg.SLO,
			Weight:       st.weight,
			Occ:          st.occ,
			Health:       st.health,
			DegradeLevel: st.snapDegrade,
			Frames:       st.lastFrames,
			GoFs:         st.lastGoFs,
			Panics:       st.panics,
			Migrations:   st.migrations,
			Preemptions:  st.preemptions,
			Queued:       queued,
		}
	}
	for _, st := range s.active {
		out = append(out, snap(st, false))
	}
	for _, st := range s.queue {
		out = append(out, snap(st, true))
	}
	return out
}

// Detached is a live stream lifted off its board mid-run: pipeline,
// clock, kernel and tracker state intact, resting at a GoF boundary.
// Exactly one of Attach (on another board) or Retire consumes it.
type Detached struct {
	st   *stream
	from *Server
}

// ID returns the stream's fleet-assigned id.
func (d *Detached) ID() int { return d.st.id }

// Name returns the stream's label.
func (d *Detached) Name() string { return d.st.cfg.Name }

// SLO returns the stream's latency objective.
func (d *Detached) SLO() float64 { return d.st.cfg.SLO }

// Occ returns the stream's last measured GPU occupancy.
func (d *Detached) Occ() float64 { return d.st.occ }

// Branch returns the kernel's current execution branch — the "from"
// side of the migration cost (warming the destination detector is
// charged like a branch switch plus the model clone).
func (d *Detached) Branch() mbek.Branch { return d.st.kernel.Branch() }

// Detach lifts the stream off the board between rounds. Its fired-fault
// counts are exported under this board's label first, so a later export
// on the destination board only covers faults fired there. Detaching a
// queued stream is allowed (evacuating a dead board's queue).
func (s *Server) Detach(h *Stream) (*Detached, error) {
	if h == nil || h.st == nil {
		return nil, fmt.Errorf("serve: nil stream handle")
	}
	st := h.st
	s.mu.Lock()
	defer s.mu.Unlock()
	if st.srv != s {
		return nil, fmt.Errorf("serve: stream %q is not on this board", st.cfg.Name)
	}
	for i, a := range s.active {
		if a == st {
			s.active = append(s.active[:i:i], s.active[i+1:]...)
			s.pruneWFQLocked()
			st.exportFaultCounts()
			return &Detached{st: st, from: s}, nil
		}
	}
	for i, q := range s.queue {
		if q == st {
			s.queue = append(s.queue[:i:i], s.queue[i+1:]...)
			s.pruneWFQLocked()
			st.exportFaultCounts()
			return &Detached{st: st, from: s}, nil
		}
	}
	return nil, fmt.Errorf("serve: stream %q is not live (already finished?)", st.cfg.Name)
}

// Attach lands a detached stream on this board, charging migrationMS of
// hand-off cost (model clone plus detector warm-up, in device
// milliseconds) to the stream's clock before it re-enters admission.
// Migrated streams bypass the queue limit: the fleet already owns
// admission, and bouncing an evacuation off backpressure would strand
// the stream.
func (s *Server) Attach(d *Detached, migrationMS float64) (*Stream, error) {
	if d == nil || d.st == nil {
		return nil, fmt.Errorf("serve: nil detached stream")
	}
	st := d.st
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		// Not consumed: the caller still holds a live Detached and can
		// try another board or Retire it with a proper report row.
		return nil, fmt.Errorf("serve: server is draining, not accepting streams")
	}
	d.st = nil // consume: a Detached attaches or retires exactly once
	st.clock.ChargeExact("migrate", migrationMS)
	st.rebind(s)
	s.enqueueLocked(st)
	return &Stream{st: st}, nil
}

// Retire finalizes a detached stream that no board can take: it is
// quarantined into the report of the board it was detached from, and
// marked fleet-retired so conservation accounting counts it in the
// Retired bucket rather than Completed.
func (d *Detached) Retire(reason string) {
	if d == nil || d.st == nil {
		return
	}
	st, from := d.st, d.from
	d.st = nil
	from.mu.Lock()
	defer from.mu.Unlock()
	st.fleetRetired = true
	from.quarantineLocked(st, reason)
}
