package serve

import (
	"strings"
	"testing"

	"litereconfig/internal/core"
	"litereconfig/internal/fixture"
	"litereconfig/internal/vid"
)

func setup(t *testing.T) *fixture.Setup {
	t.Helper()
	s, err := fixture.Small()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func video(seed int64, frames int) *vid.Video {
	return vid.Generate("serve", seed, vid.GenConfig{Frames: frames})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("missing models must error")
	}
	s := setup(t)
	srv, err := New(Options{Models: s.Models})
	if err != nil {
		t.Fatal(err)
	}
	opts := srv.Options()
	if opts.GPUSlots != DefaultGPUSlots || opts.RoundMS != DefaultRoundMS {
		t.Fatalf("defaults not applied: %+v", opts)
	}
	if opts.MaxOccupancy != 2*float64(opts.GPUSlots) {
		t.Fatalf("default occupancy threshold = %v", opts.MaxOccupancy)
	}
	if _, err := srv.Submit(StreamConfig{SLO: 33}); err == nil {
		t.Fatal("missing video must error")
	}
	if _, err := srv.Submit(StreamConfig{Video: video(1, 10)}); err == nil {
		t.Fatal("missing SLO must error")
	}
	srv.Drain()
}

// run8 submits n identical-shape streams (distinct seeds/videos) and
// drains the board.
func run8(t *testing.T, s *fixture.Setup, n int) *Result {
	t.Helper()
	srv, err := New(Options{Models: s.Models, GPUSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		cfg := StreamConfig{
			Video: video(300+int64(i), 60),
			SLO:   33.3,
			Seed:  100 + int64(i),
		}
		if i%2 == 1 {
			cfg.SLO = 50
			cfg.Policy = core.PolicyMinCost
		}
		if _, err := srv.Submit(cfg); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	return srv.Drain()
}

func TestEightStreamsDeterministic(t *testing.T) {
	s := setup(t)
	a := run8(t, s, 8)
	b := run8(t, s, 8)
	if len(a.Streams) != 8 || len(b.Streams) != 8 {
		t.Fatalf("streams = %d / %d, want 8", len(a.Streams), len(b.Streams))
	}
	for i := range a.Streams {
		x, y := a.Streams[i], b.Streams[i]
		if x.MAP != y.MAP || x.P95MS != y.P95MS || x.MeanMS != y.MeanMS {
			t.Fatalf("stream %d diverged: mAP %v/%v p95 %v/%v mean %v/%v",
				i, x.MAP, y.MAP, x.P95MS, y.P95MS, x.MeanMS, y.MeanMS)
		}
		if x.Switches != y.Switches || x.Frames != y.Frames ||
			x.MeanContention != y.MeanContention || x.Rounds != y.Rounds {
			t.Fatalf("stream %d bookkeeping diverged: %+v vs %+v", i, x, y)
		}
		if x.Frames != 60 {
			t.Fatalf("stream %d frames = %d, want 60", i, x.Frames)
		}
	}
	if a.Rounds != b.Rounds || a.AttainRate != b.AttainRate {
		t.Fatalf("aggregate diverged: %+v vs %+v", a, b)
	}
}

func TestCrossStreamContentionCoupling(t *testing.T) {
	s := setup(t)
	r := run8(t, s, 8)
	if r.MeanContention <= 0 {
		t.Fatal("co-located streams must generate contention for each other")
	}
	for i, st := range r.Streams {
		if st.MeanContention <= 0 {
			t.Fatalf("stream %d saw zero cross-stream contention", i)
		}
		if st.MeanOccupancy <= 0 || st.MeanOccupancy > 1 {
			t.Fatalf("stream %d occupancy out of range: %v", i, st.MeanOccupancy)
		}
	}
	// A lone stream sees no contention at all: the coupling comes only
	// from the other streams, not from a synthetic generator.
	solo := run8(t, s, 1)
	if got := solo.Streams[0].MeanContention; got != 0 {
		t.Fatalf("solo stream contention = %v, want 0", got)
	}
	// And a crowded board contends harder than a pair.
	pair := run8(t, s, 2)
	if r.MeanContention <= pair.MeanContention {
		t.Fatalf("8 streams (%v) should contend harder than 2 (%v)",
			r.MeanContention, pair.MeanContention)
	}
}

func TestClassAggregation(t *testing.T) {
	s := setup(t)
	r := run8(t, s, 4) // alternating SLO 33.3 ("slo33.3ms") and 50 ("slo50ms")
	if len(r.Classes) != 2 {
		t.Fatalf("classes = %+v, want 2", r.Classes)
	}
	if r.Classes[0].Class != "slo33.3ms" || r.Classes[1].Class != "slo50ms" {
		t.Fatalf("class names = %q, %q", r.Classes[0].Class, r.Classes[1].Class)
	}
	for _, c := range r.Classes {
		if c.Streams != 2 || c.Frames != 120 {
			t.Fatalf("class stats wrong: %+v", c)
		}
		if c.Attained != int(c.AttainRate*float64(c.Streams)+0.5) {
			t.Fatalf("attain rate inconsistent: %+v", c)
		}
	}
	if !strings.Contains(r.Summary(), "class slo33.3ms") {
		t.Fatalf("summary missing class rows:\n%s", r.Summary())
	}
	if !strings.Contains(r.Streams[0].Summary(), "slo=") {
		t.Fatalf("stream summary malformed: %s", r.Streams[0].Summary())
	}
}

func TestAdmissionQueuesOverThreshold(t *testing.T) {
	s := setup(t)
	// Threshold of 0.6 with estimates of 0.5: only one stream fits at a
	// time, so later streams must wait in the queue.
	srv, err := New(Options{Models: s.Models, GPUSlots: 2, MaxOccupancy: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	var handles []*Stream
	for i := 0; i < 3; i++ {
		h, err := srv.Submit(StreamConfig{Video: video(400+int64(i), 40), SLO: 50,
			Seed: int64(i) + 1})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if got := srv.QueueDepth(); got != 3 {
		t.Fatalf("queue depth = %d, want 3", got)
	}
	r := srv.Drain()
	if len(r.Streams) != 3 {
		t.Fatalf("streams served = %d, want 3", len(r.Streams))
	}
	if r.Streams[0].WaitRounds != 0 {
		t.Fatalf("first stream should be admitted immediately, waited %d",
			r.Streams[0].WaitRounds)
	}
	if r.Streams[2].WaitRounds == 0 {
		t.Fatal("third stream should have queued behind the occupancy threshold")
	}
	if h := handles[2]; h.Result() == nil || h.Result().ID != 2 {
		t.Fatal("handle must expose the finished stream's result")
	}
}

func TestBackpressureRejectsWhenQueueFull(t *testing.T) {
	s := setup(t)
	srv, err := New(Options{Models: s.Models, QueueLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := srv.Submit(StreamConfig{Video: video(500+int64(i), 20), SLO: 50}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.Submit(StreamConfig{Video: video(510, 20), SLO: 50}); err == nil {
		t.Fatal("submission beyond the queue limit must be rejected")
	}
	if srv.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", srv.Rejected())
	}
	r := srv.Drain()
	if r.Rejected != 1 || len(r.Streams) != 2 {
		t.Fatalf("report: rejected=%d streams=%d", r.Rejected, len(r.Streams))
	}
}

func TestDrainStopsIntakeAndIsIdempotent(t *testing.T) {
	s := setup(t)
	srv, err := New(Options{Models: s.Models})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(StreamConfig{Video: video(600, 20), SLO: 50}); err != nil {
		t.Fatal(err)
	}
	r1 := srv.Drain()
	if _, err := srv.Submit(StreamConfig{Video: video(601, 20), SLO: 50}); err == nil {
		t.Fatal("submit after drain must error")
	}
	r2 := srv.Drain()
	if r1 != r2 {
		t.Fatal("drain must be idempotent")
	}
	if len(r1.Streams) != 1 || r1.Streams[0].Frames != 20 {
		t.Fatalf("drain report wrong: %+v", r1)
	}
	if r1.Streams[0].Raw == nil || r1.Streams[0].Raw.Breakdown == nil {
		t.Fatal("raw result with breakdown must be attached")
	}
}
