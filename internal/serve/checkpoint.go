package serve

import (
	"fmt"

	"litereconfig/internal/sched"
)

// This file is the board-side half of the crash-recovery layer: between
// rounds a fleet dispatcher snapshots every live stream's durable
// recovery state into Checkpoints (held fleet-side, surviving the
// board), and after a fail-stop board death it Restores each checkpoint
// onto a surviving board. Checkpoints are cut at GoF boundaries — the
// paper's natural reconfiguration points are also the natural
// consistency points — so recovery replays whole GoFs, never partial
// ones. A standalone Server never uses any of it.

// Checkpoint is the durable recovery state of one live stream: enough
// to rebuild the stream on another board and fast-forward it to the
// checkpointed position, losing at most the GoFs executed since the
// checkpoint was cut. It deliberately excludes volatile state that is
// cheaper to re-derive than to ship — the tracker (re-warmed by the
// first post-restore detection), the watchdog ladder and breaker
// (re-engage from realized outcomes), and the WFQ virtual-finish tag
// (a restored stream re-enters WFQ at the destination's current
// virtual time; restoring a stale tag would hand it banked credit —
// the PR 7 lesson). All fields are exported plain data, so the fleet
// store can gob-encode checkpoints as its durability format.
type Checkpoint struct {
	// ID is the stream's fleet-assigned id; Cfg its full submission
	// config (self-contained: video, SLO, class, seeds, fault schedule).
	ID  int
	Cfg StreamConfig

	// Progress as of the checkpoint barrier: frames and completed GoF
	// windows executed, and the stream clock's simulated position.
	Frames    int
	GoFs      int
	SimMS     float64
	GPUBusyMS float64

	// Occ is the last measured GPU occupancy — the restore-time
	// admission estimate, better than the config's cold default.
	Occ float64

	// Scheduling identity and lifetime counters carried across the
	// restore so reports stay honest.
	Class        string
	DegradeLevel int
	Preemptions  int
	Migrations   int
	WaitRounds   int
	PanicsTotal  int
	Recoveries   int

	// FaultCounts is the injector's per-class fired tally at the
	// checkpoint, kept for observability; the restored injector re-fires
	// the same draws over replayed frames (draws are hash-keyed by
	// frame, not sequence position).
	FaultCounts map[string]int

	// AdaptVersion is the champion model version serving the stream at
	// the checkpoint ("" when adaptation is off, "v0" before the first
	// promotion). The fleet's registry mirror resolves it to a warm
	// model bundle at restore time.
	AdaptVersion string
}

// Checkpoints cuts a checkpoint of every live (active or queued)
// stream. Call it only between rounds: streams rest at GoF boundaries
// there, so the clock and stepper positions it reads are consistent.
// The fleet dispatcher calls it at its own barrier, which satisfies
// this by construction.
func (s *Server) Checkpoints() []Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Checkpoint, 0, len(s.active)+len(s.queue))
	for _, st := range s.active {
		out = append(out, st.checkpoint())
	}
	for _, st := range s.queue {
		out = append(out, st.checkpoint())
	}
	return out
}

// checkpoint cuts one stream's recovery state. Caller holds the server
// mutex with no round in flight, so reading the clock and stepper
// directly is safe.
func (st *stream) checkpoint() Checkpoint {
	ck := Checkpoint{
		ID:           st.id,
		Cfg:          st.cfg,
		Frames:       st.stepper.Frames(),
		GoFs:         st.stepper.GoFs(),
		SimMS:        st.clock.Now(),
		GPUBusyMS:    st.clock.GPUBusyMS(),
		Occ:          st.occ,
		Class:        st.className(),
		DegradeLevel: st.snapDegrade,
		Preemptions:  st.preemptions,
		Migrations:   st.migrations,
		WaitRounds:   st.waitRounds,
		PanicsTotal:  st.panicsTotal,
		Recoveries:   st.recoveries,
	}
	if inj := st.stepper.Injector(); inj != nil {
		ck.FaultCounts = inj.Counts()
	}
	if a := st.pipeline.Sched.Adapter(); a != nil {
		ck.AdaptVersion = a.VersionLabel()
	}
	return ck
}

// Restore rebuilds a checkpointed stream on this board after its
// original board fail-stopped: a fresh pipeline (on warm models when
// the fleet's registry mirror resolved the checkpoint's adapted
// champion, else the board's base models) is fast-forwarded to the
// checkpoint position and re-enters admission at the board's current
// WFQ virtual time. Progress past the checkpoint is replayed: the
// injector's draws are hash-keyed by frame, so replayed frames re-fire
// identical faults, and the restored incarnation's decisions are
// stamped with the next recovery generation so they never collide with
// the lost incarnation's trace coordinates. Like Attach, Restore
// bypasses the queue limit — the fleet already owns admission, and
// bouncing a recovery off backpressure would lose the stream.
func (s *Server) Restore(ck Checkpoint, warm *sched.Models) (*Stream, error) {
	if err := validateStreamConfig(ck.Cfg); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: server is draining, not accepting streams")
	}
	s.reserved++
	if ck.ID >= s.nextID {
		s.nextID = ck.ID + 1
	}
	s.mu.Unlock()

	st, err := s.buildStreamWith(ck.ID, ck.Cfg, warm, ck.Recoveries+1)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.reserved--
	if err != nil {
		return nil, err
	}
	if s.draining {
		return nil, fmt.Errorf("serve: server is draining, not accepting streams")
	}
	// Fast-forward to the checkpointed position. The stepper opens a
	// clean latency window at the restored clock time, so the first
	// post-restore GoF is not billed for pre-crash time.
	st.clock.Restore(ck.SimMS, ck.GPUBusyMS)
	st.stepper.Resume(ck.Frames, ck.GoFs)
	st.lastNow, st.lastGPU = st.clock.Now(), st.clock.GPUBusyMS()
	st.lastFrames = ck.Frames
	st.lastGoFs = ck.GoFs
	if ck.Occ > 0 {
		st.occ = ck.Occ
	}
	st.preemptions = ck.Preemptions
	st.migrations = ck.Migrations
	st.waitRounds = ck.WaitRounds
	st.panicsTotal = ck.PanicsTotal
	st.recoveries = ck.Recoveries + 1
	st.resumeFrame = ck.Frames
	s.enqueueLocked(st)
	return &Stream{st: st}, nil
}
