package serve

import (
	"fmt"
	"io"
	"sort"

	"litereconfig/internal/harness"
	"litereconfig/internal/obs"
)

// StreamResult is one stream's row of the serving report.
type StreamResult struct {
	ID     int
	Name   string
	Class  string
	Tenant string `json:",omitempty"`
	SLO    float64
	Policy string
	// Board names the board that retired the stream (empty outside a
	// fleet); Migrations counts live hand-offs between boards.
	Board      string
	Migrations int
	// Preemptions counts admission evictions the stream absorbed;
	// PreemptRetired marks a stream retired with partial results because
	// its eviction budget ran out.
	Preemptions    int  `json:",omitempty"`
	PreemptRetired bool `json:",omitempty"`

	Frames         int
	MAP            float64
	MeanMS         float64
	P95MS          float64
	MeetsSLO       bool
	ViolationRate  float64
	Switches       int
	BranchCoverage int

	// MeanContention is the average coupled contention level applied to
	// the stream across its rounds; on a multi-stream board it is > 0
	// even with no external generator.
	MeanContention float64
	// MeanOccupancy is the fraction of the stream's timeline spent in
	// GPU-class work.
	MeanOccupancy float64
	// Rounds is how many board rounds the stream ran; WaitRounds how
	// many it spent queued before admission.
	Rounds     int
	WaitRounds int

	// Health is the stream's final health state ("healthy", "degraded",
	// "quarantined"). Panics counts recovered worker panics. A
	// Quarantined stream was retired before completing its video —
	// QuarantineReason says why — and its metrics cover only the frames
	// it actually processed.
	Health           string
	Panics           int
	Quarantined      bool
	QuarantineReason string

	// Crash-recovery accounting (all zero/false outside a crashed
	// fleet). Recovered marks a stream restored from a checkpoint after
	// a board death; Recoveries counts the restores; ResumeFrame is the
	// global frame the final incarnation resumed from (its metrics cover
	// [ResumeFrame, end) — pre-checkpoint detail died with the board).
	// FleetRetired marks a stream the fleet retired because no surviving
	// board could take it; it counts in the Retired conservation bucket,
	// not Completed.
	Recovered    bool `json:",omitempty"`
	Recoveries   int  `json:",omitempty"`
	ResumeFrame  int  `json:",omitempty"`
	FleetRetired bool `json:",omitempty"`

	// Online-adaptation stats, zero/empty when adaptation is off.
	// ModelVersion is the registry label of the champion the stream
	// retired on ("v0" until its first promotion); Promotions, Demotions
	// and Refits count the stream's rollout actions and challenger
	// updates.
	ModelVersion string
	Promotions   int
	Demotions    int
	Refits       int

	// Raw is the underlying harness result (per-frame detail, latency
	// series, component breakdown).
	Raw *harness.Result
}

// Summary renders the stream's report row.
func (r *StreamResult) Summary() string {
	mark := "ok"
	switch {
	case r.Quarantined:
		mark = "QUARANTINED"
	case !r.MeetsSLO:
		mark = "VIOLATED"
	}
	s := fmt.Sprintf(
		"%-12s class=%-8s slo=%5.1fms  mAP=%5.1f%%  p95=%6.1fms [%s]  cont=%.2f  occ=%.2f  switches=%d",
		r.Name, r.Class, r.SLO, r.MAP*100, r.P95MS, mark,
		r.MeanContention, r.MeanOccupancy, r.Switches)
	if r.Panics > 0 {
		s += fmt.Sprintf("  panics=%d", r.Panics)
	}
	if r.Migrations > 0 {
		s += fmt.Sprintf("  migrations=%d", r.Migrations)
	}
	if r.ModelVersion != "" {
		s += fmt.Sprintf("  model=%s", r.ModelVersion)
		if r.Promotions > 0 || r.Demotions > 0 {
			s += fmt.Sprintf(" (+%d/-%d)", r.Promotions, r.Demotions)
		}
	}
	if r.Quarantined {
		s += "  (" + r.QuarantineReason + ")"
	}
	return s
}

// ClassStats aggregates SLO attainment over the streams of one class.
type ClassStats struct {
	Class   string
	Streams int
	// Attained is the number of streams whose P95 stayed within their
	// SLO; AttainRate is the fraction.
	Attained   int
	AttainRate float64
	// ViolationRate is the frames-weighted fraction of frames over SLO.
	ViolationRate float64
	Frames        int
	MeanMAP       float64
	// Conservation accounting for open-loop runs: every stream submitted
	// to this class ends in exactly one of four disjoint buckets —
	// retired into Streams on its original (or restored) incarnation
	// (Completed, including quarantined partials), rejected by
	// backpressure (Rejected), lost to the fleet with no board able to
	// take or restore it (Retired), or restored from a checkpoint after
	// a board death and then completed (Recovered). Per class,
	// Completed + Rejected + Retired + Recovered equals total arrivals.
	// Preemptions counts evictions absorbed by the class's streams;
	// PreemptRetired the streams whose eviction budget ran out (a subset
	// of Completed).
	Completed      int
	Rejected       int
	Retired        int
	Recovered      int
	Preemptions    int
	PreemptRetired int
}

// Result is the aggregate outcome of one Drain.
type Result struct {
	// Streams holds the per-stream rows in submission (id) order.
	Streams []StreamResult
	// Classes holds per-SLO-class attainment, sorted by class name.
	Classes []ClassStats
	// Rejected counts submissions refused by backpressure, and
	// RejectedByClass splits them per SLO class (nil when none).
	Rejected        int
	RejectedByClass map[string]int `json:",omitempty"`
	// Preemptions counts admission evictions across all streams;
	// PreemptRetired the streams retired by an exhausted eviction budget.
	Preemptions    int
	PreemptRetired int
	// Quarantined counts streams retired before completing their video
	// (panic retries exhausted, or stalled); their partial rows stay in
	// Streams but never count as attained.
	Quarantined int
	// Panics counts recovered worker panics across all streams.
	Panics int
	// Migrations counts live board hand-offs summed over the streams this
	// board retired (only a fleet produces nonzero values).
	Migrations int
	// Rounds is the number of board rounds the drain ran.
	Rounds int
	// AttainRate is the overall fraction of streams meeting their SLO.
	AttainRate float64
	// MeanContention averages the applied coupled contention over
	// streams — the cross-stream interference the board generated.
	MeanContention float64
	TotalFrames    int

	// Promotions, Demotions and Refits sum the streams' online-
	// adaptation actions (all zero when adaptation is off).
	Promotions int
	Demotions  int
	Refits     int

	// obsv is the run's observer (nil for unobserved runs).
	obsv *obs.Observer
}

// Metrics returns a point-in-time snapshot of the run's metrics
// registry. It is empty for unobserved runs.
func (r *Result) Metrics() obs.Snapshot { return r.obsv.Snapshot() }

// Decisions returns the scheduler decision trace in (stream, seq)
// order, or nil for unobserved runs.
func (r *Result) Decisions() []obs.Decision { return r.obsv.Decisions() }

// WriteTrace writes the decision trace as JSON Lines. Two runs with
// identical options and seeds write byte-identical traces.
func (r *Result) WriteTrace(w io.Writer) error { return r.obsv.WriteTrace(w) }

// deriveClass labels a stream's SLO class from its latency objective
// when the submitter did not name one. %g keeps fractional SLOs
// distinct ("slo33.3ms" vs "slo33.4ms"); %.0f collapsed them into one
// class and silently merged their attainment stats.
func deriveClass(slo float64) string { return fmt.Sprintf("slo%gms", slo) }

// ClassOf resolves the SLO class a stream config will be reported
// under: its explicit Class, or one derived from the SLO. Exported for
// dispatchers that account arrivals per class before submission.
func ClassOf(cfg StreamConfig) string {
	if cfg.Class != "" {
		return cfg.Class
	}
	return deriveClass(cfg.SLO)
}

// buildReportLocked assembles the drain report from the finished
// streams. Caller holds the server mutex.
func (s *Server) buildReportLocked(rounds int) *Result {
	out := &Result{
		Rejected:       s.rejected,
		Preemptions:    s.preempts,
		PreemptRetired: s.preemptRet,
		Rounds:         rounds,
		obsv:           s.opts.Observer,
	}
	if len(s.rejByClass) > 0 {
		out.RejectedByClass = make(map[string]int, len(s.rejByClass))
		for class, n := range s.rejByClass {
			out.RejectedByClass[class] = n
		}
	}
	rows := make([]StreamResult, 0, len(s.finished))
	for _, st := range s.finished {
		rows = append(rows, *st.result)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	out.Streams = rows

	byClass := map[string]*ClassStats{}
	attained := 0
	for _, r := range rows {
		cs := byClass[r.Class]
		if cs == nil {
			cs = &ClassStats{Class: r.Class}
			byClass[r.Class] = cs
		}
		cs.Streams++
		// Each row lands in exactly one conservation bucket; fleet
		// retirement wins over recovery (a stream restored once and
		// later lost for good was not delivered).
		switch {
		case r.FleetRetired:
			cs.Retired++
		case r.Recovered:
			cs.Recovered++
		default:
			cs.Completed++
		}
		cs.Preemptions += r.Preemptions
		if r.PreemptRetired {
			cs.PreemptRetired++
		}
		cs.Frames += r.Frames
		cs.MeanMAP += r.MAP
		cs.ViolationRate += r.ViolationRate * float64(r.Frames)
		if r.MeetsSLO && !r.Quarantined {
			cs.Attained++
			attained++
		}
		if r.Quarantined {
			out.Quarantined++
		}
		out.Panics += r.Panics
		out.Migrations += r.Migrations
		out.MeanContention += r.MeanContention
		out.TotalFrames += r.Frames
		out.Promotions += r.Promotions
		out.Demotions += r.Demotions
		out.Refits += r.Refits
	}
	// A class can exist purely through rejections (every arrival bounced);
	// it still gets a row so the per-class conservation sum holds.
	for class, n := range s.rejByClass {
		cs := byClass[class]
		if cs == nil {
			cs = &ClassStats{Class: class}
			byClass[class] = cs
		}
		cs.Rejected = n
	}
	names := make([]string, 0, len(byClass))
	for name := range byClass {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cs := byClass[name]
		if cs.Streams > 0 {
			cs.AttainRate = float64(cs.Attained) / float64(cs.Streams)
			cs.MeanMAP /= float64(cs.Streams)
		}
		if cs.Frames > 0 {
			cs.ViolationRate /= float64(cs.Frames)
		}
		out.Classes = append(out.Classes, *cs)
	}
	if len(rows) > 0 {
		out.AttainRate = float64(attained) / float64(len(rows))
		out.MeanContention /= float64(len(rows))
	}
	return out
}

// Summary renders the aggregate report (per-class attainment plus board
// totals).
func (r *Result) Summary() string {
	s := fmt.Sprintf("streams=%d rejected=%d rounds=%d attain=%.0f%% cross-contention=%.2f\n",
		len(r.Streams), r.Rejected, r.Rounds, r.AttainRate*100, r.MeanContention)
	if r.Quarantined > 0 || r.Panics > 0 {
		s += fmt.Sprintf("  quarantined=%d panics=%d\n", r.Quarantined, r.Panics)
	}
	if r.Preemptions > 0 {
		s += fmt.Sprintf("  preemptions=%d (retired %d)\n", r.Preemptions, r.PreemptRetired)
	}
	if r.Refits > 0 || r.Promotions > 0 || r.Demotions > 0 {
		s += fmt.Sprintf("  adapt: refits=%d promotions=%d demotions=%d\n",
			r.Refits, r.Promotions, r.Demotions)
	}
	for _, c := range r.Classes {
		s += fmt.Sprintf("  class %-8s streams=%d attained=%d (%.0f%%) violation=%.1f%% mAP=%.1f%%\n",
			c.Class, c.Streams, c.Attained, c.AttainRate*100,
			c.ViolationRate*100, c.MeanMAP*100)
	}
	return s
}
