package serve

import (
	"fmt"
	"math"
	"sort"

	"litereconfig/internal/obs"
	"litereconfig/internal/simlat"
)

// This file is the tier-aware admission controller: a weighted-fair
// queue discipline over SLO classes (replacing the single FIFO under
// Options.Admission == AdmissionWFQ) and barrier-time preemption of
// lower-weight streams when a higher tier's SLO is infeasible under the
// board's current occupancy (Options.Preempt). Everything here runs at
// the round barrier under the server mutex, so admission and preemption
// decisions are single-threaded and deterministic for fixed seeds.

// AdmissionPolicy selects the order in which queued streams are
// admitted onto the board.
type AdmissionPolicy int

const (
	// AdmissionFIFO admits strictly in submission order with no
	// skipping — the closed-loop default, and the ablation baseline for
	// the open-world workload experiments.
	AdmissionFIFO AdmissionPolicy = iota
	// AdmissionWFQ admits by weighted-fair order across SLO classes:
	// each class advances a virtual-finish-tag chain at rate 1/weight
	// per enqueued stream, and the queue is served in increasing tag
	// order, so a weight-4 gold class gets four admissions for every
	// one a weight-1 best-effort class gets when both are backlogged.
	AdmissionWFQ
)

// String returns the canonical policy name.
func (p AdmissionPolicy) String() string {
	if p == AdmissionWFQ {
		return "wfq"
	}
	return "fifo"
}

// StreamEvent is one admission-control action the board took at a round
// barrier. Boards accumulate events under the server mutex; the fleet
// dispatcher (or any open-loop runner) drains them between rounds with
// DrainStreamEvents and records them on the shared event trace in board
// order, keeping fixed-seed traces byte-identical even though boards
// step in parallel.
type StreamEvent struct {
	// Round is the board round the event fired at.
	Round int
	// Kind is "preempt" (stream evicted to the queue) — retired
	// preemptions additionally set Retired.
	Kind string
	// Stream identity, as in the report row.
	Stream int
	Name   string
	Class  string
	Tenant string
	// Reason says which tier's infeasibility (or queue pressure)
	// triggered the eviction.
	Reason string
	// Retired marks a preemption that exhausted the stream's preemption
	// budget: the stream was retired with partial results instead of
	// re-queued.
	Retired bool
}

// DrainStreamEvents returns the admission events accumulated since the
// last drain and clears the buffer. Safe to call between rounds; the
// fleet dispatcher calls it at every barrier.
func (s *Server) DrainStreamEvents() []StreamEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := s.events
	s.events = nil
	return ev
}

// weightOf resolves the WFQ weight of an SLO class (default 1).
func (s *Server) weightOf(class string) int {
	if w := s.opts.ClassWeights[class]; w > 0 {
		return w
	}
	return 1
}

// enqueueLocked places a built (or preempted, or migrated-in) stream on
// the admission queue. Under FIFO the queue is submission-ordered; under
// WFQ the stream is tagged with its class's next virtual finish time and
// inserted in (tag, id) order. Caller holds the server mutex.
func (s *Server) enqueueLocked(st *stream) {
	if s.opts.Admission != AdmissionWFQ {
		s.queue = append(s.queue, st)
		return
	}
	class := st.className()
	start := s.wfqLastF[class]
	if start < s.wfqVirt {
		start = s.wfqVirt
	}
	st.finishTag = start + 1/float64(st.weight)
	if s.wfqLastF == nil {
		s.wfqLastF = map[string]float64{}
	}
	s.wfqLastF[class] = st.finishTag
	i := sort.Search(len(s.queue), func(i int) bool {
		q := s.queue[i]
		if q.finishTag != st.finishTag {
			return q.finishTag > st.finishTag
		}
		return q.id > st.id
	})
	s.queue = append(s.queue, nil)
	copy(s.queue[i+1:], s.queue[i:])
	s.queue[i] = st
}

// pruneWFQLocked drops the virtual-finish tags of classes with no
// remaining presence on the board (no active and no queued stream).
// Without this, a class whose last stream departed with an unserved tag
// — preempt-retired from the queue, or migrated away — keeps a finish
// tag above the system virtual time forever, and a stream of that class
// arriving much later inherits the stale tag as its start time, losing
// its fair share on re-arrival. A pruned class re-enters at the current
// front of the schedule (s.wfqVirt), the standard start-time-fair
// treatment of an idle class. Called at every round barrier and on
// migration detach. Caller holds the server mutex.
func (s *Server) pruneWFQLocked() {
	if len(s.wfqLastF) == 0 {
		return
	}
	for class := range s.wfqLastF {
		live := false
		for _, st := range s.active {
			if st.className() == class {
				live = true
				break
			}
		}
		if !live {
			for _, st := range s.queue {
				if st.className() == class {
					live = true
					break
				}
			}
		}
		if !live {
			delete(s.wfqLastF, class)
		}
	}
}

// capForLocked is the occupancy ceiling that applies to admitting a
// stream of the given weight: the board threshold, tightened by the
// feasibility demands of active streams of strictly higher weight (a
// best-effort stream may not re-enter while its presence would keep a
// gold stream's SLO infeasible). Feasibility caps are refreshed once
// per barrier by preemptLocked; without preemption the ceiling is just
// MaxOccupancy. Caller holds the server mutex.
func (s *Server) capForLocked(weight int) float64 {
	cap := s.opts.MaxOccupancy
	if !s.opts.Preempt {
		return cap
	}
	for _, st := range s.active {
		if st.weight > weight && st.feasOcc < cap {
			cap = st.feasOcc
		}
	}
	return cap
}

// headCapLocked is the occupancy ceiling for admitting the queue's head
// stream: capForLocked, further tightened for a high-weight stream that
// has never run a round — with no measurement to invert yet, the board
// threshold is scaled down by the stream's weight so a gold arrival is
// not dropped into a saturated board, where one round at full contention
// would poison its lifetime latency tail before the measurement-driven
// preemption pass could react. Caller holds the server mutex.
func (s *Server) headCapLocked(head *stream) float64 {
	cap := s.capForLocked(head.weight)
	if s.opts.Preempt && head.weight > 1 && head.recentP95 == 0 {
		if w := s.opts.MaxOccupancy / float64(head.weight); w < cap {
			cap = w
		}
	}
	return cap
}

// tailPct is the latency percentile the preemption controller plans
// against. Under mean admission it is the SLO attainment criterion's
// P95; under probabilistic admission (Options.RiskQuantile > 0) the
// measured tail tracks the same q-quantile the schedulers admit on, so
// feasibleOccLocked inverts the configured quantile — not the mean, and
// not a hardwired tail — through the contention model.
func (s *Server) tailPct() float64 {
	if s.opts.RiskQuantile > 0 {
		return 100 * s.opts.RiskQuantile
	}
	return 95
}

// feasibleOccLocked computes the highest aggregate board occupancy at
// which the stream's SLO stays feasible, by inverting its own measured
// latency through the board's contention model: the stream's recent
// tail (P95) per-frame latency — the tail, because SLO attainment is a
// P95 criterion — splits into a GPU share (its measured occupancy, the
// part the contention multiplier inflates) and a fixed CPU share, the
// multiplier that would bring the tail within the planning budget is
// solved for, and the implied contention headroom is converted back
// through the board's occupancy coupling into an aggregate-occupancy
// cap. It returns +Inf when preemption cannot help: the board is
// uncoupled, the stream has no measurement yet, or the budget is out of
// reach even with the board to itself. Caller holds the server mutex;
// all inputs are barrier-side snapshots.
func (s *Server) feasibleOccLocked(st *stream) float64 {
	if s.opts.Coupling <= 0 || st.recentP95 <= 0 || st.occ <= 0 {
		return math.Inf(1)
	}
	gpuMS := st.recentP95 * st.occ // share inflated by contention
	cpuMS := st.recentP95 - gpuMS
	mCur := simlat.ContentionMultiplier(st.lastCont)
	// solve inverts lat(g) = cpuMS + gpuMS*mult(g)/mult(cur) <= target
	// for the contention level g; negative means unreachable.
	solve := func(target float64) float64 {
		if target <= cpuMS {
			return -1
		}
		return simlat.ContentionForMultiplier(mCur * (target - cpuMS) / gpuMS)
	}
	// Plan against the safety-shrunk budget, but when even an idle board
	// cannot hit it, protect the raw SLO instead — a stream that can just
	// barely meet its SLO alone must not be written off as hopeless.
	gStar := solve(st.cfg.SLO * s.opts.SafetyFactor)
	if gStar <= st.cfg.BaseContention {
		gStar = solve(st.cfg.SLO)
	}
	if gStar <= st.cfg.BaseContention {
		return math.Inf(1) // infeasible even with the board to itself
	}
	return st.occ + float64(s.opts.GPUSlots)*(gStar-st.cfg.BaseContention)/s.opts.Coupling
}

// preemptLocked runs the barrier preemption pass: it refreshes every
// active stream's feasible-occupancy cap, then evicts the lowest-weight
// active streams while (a) a strictly higher-weight active stream's SLO
// is infeasible under the current aggregate occupancy, or (b) the
// queue's head cannot be admitted under the board threshold and
// outranks an active stream. Evicted streams re-enter the admission
// queue with a fresh WFQ tag, or — once their preemption budget is
// exhausted — retire with partial results. Caller holds the server
// mutex; runs before admission at each round barrier.
func (s *Server) preemptLocked() {
	if !s.opts.Preempt || len(s.active) == 0 {
		return
	}
	for _, st := range s.active {
		st.feasOcc = s.feasibleOccLocked(st)
	}
	for len(s.active) > 0 {
		agg := 0.0
		for _, st := range s.active {
			agg += st.occ
		}
		needW, reason := 0, ""
		for _, st := range s.active {
			if st.weight > needW && agg > st.feasOcc {
				needW = st.weight
				reason = fmt.Sprintf("tier %s SLO infeasible at occupancy %.2f (cap %.2f)",
					st.className(), agg, st.feasOcc)
			}
		}
		if needW == 0 && len(s.queue) > 0 {
			head := s.queue[0]
			if agg+head.occ > s.headCapLocked(head) {
				needW = head.weight
				reason = fmt.Sprintf("queued tier %s cannot be admitted at occupancy %.2f",
					head.className(), agg)
			}
		}
		if needW == 0 {
			return
		}
		victim := s.victimLocked(needW)
		if victim == nil {
			return
		}
		s.preemptOneLocked(victim, reason)
	}
}

// victimLocked picks the active stream to preempt for a demand of the
// given weight: the lowest-weight stream with weight strictly below the
// demand, ties broken by highest measured occupancy (evicting it frees
// the most headroom), then by highest id (youngest first). Returns nil
// when no active stream is outranked. Caller holds the server mutex.
func (s *Server) victimLocked(needW int) *stream {
	var victim *stream
	for _, st := range s.active {
		if st.weight >= needW {
			continue
		}
		if victim == nil ||
			st.weight < victim.weight ||
			(st.weight == victim.weight && st.occ > victim.occ) ||
			(st.weight == victim.weight && st.occ == victim.occ && st.id > victim.id) {
			victim = st
		}
	}
	return victim
}

// preemptOneLocked evicts one active stream: it leaves the active set at
// the barrier (its pipeline rests at a GoF boundary, the intra-board
// analogue of the migration Detach), is counted and traced, and either
// re-enters the admission queue or — past Options.PreemptLimit — retires
// with partial results. Caller holds the server mutex.
func (s *Server) preemptOneLocked(victim *stream, reason string) {
	for i, a := range s.active {
		if a == victim {
			s.active = append(s.active[:i:i], s.active[i+1:]...)
			break
		}
	}
	victim.preemptions++
	s.preempts++
	s.met.preempts.Inc()
	s.classCounter("serve_class_preemptions_total", victim.className()).Inc()
	ev := StreamEvent{
		Round:  s.rounds,
		Kind:   "preempt",
		Stream: victim.id,
		Name:   victim.cfg.Name,
		Class:  victim.className(),
		Tenant: victim.cfg.Tenant,
		Reason: reason,
	}
	if victim.preemptions > s.opts.PreemptLimit {
		ev.Retired = true
		victim.preemptRetired = true
		s.preemptRet++
		s.met.preemptRet.Inc()
		s.quarantineLocked(victim, fmt.Sprintf(
			"preemption budget exhausted (%d evictions): %s", victim.preemptions, reason))
	} else {
		s.enqueueLocked(victim)
	}
	s.events = append(s.events, ev)
}

// classCounter returns the board- and class-labeled counter for the
// given base metric name (a nil no-op counter when unobserved).
func (s *Server) classCounter(base, class string) *obs.Counter {
	r := s.opts.Observer.Registry()
	if r == nil {
		return nil
	}
	return r.Counter(obs.Labeled(base, obs.L("board", s.opts.Board), obs.L("class", class)))
}

// tenantCounter returns the board- and tenant-labeled counter, or nil
// when unobserved or the stream carries no tenant.
func (s *Server) tenantCounter(base, tenant string) *obs.Counter {
	r := s.opts.Observer.Registry()
	if r == nil || tenant == "" {
		return nil
	}
	return r.Counter(obs.Labeled(base, obs.L("board", s.opts.Board), obs.L("tenant", tenant)))
}
