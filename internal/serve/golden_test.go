package serve

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"litereconfig/internal/adapt"
	"litereconfig/internal/fault"
	"litereconfig/internal/fixture"
	"litereconfig/internal/obs"
	"litereconfig/internal/vid"
)

var updateGolden = flag.Bool("update_golden", false,
	"rewrite testdata/decision_trace.golden.jsonl from the current code")

// goldenTrace runs the pinned scenario: two fixed-seed serve runs — one
// plain WFQ board under contention, one faulted board with online
// adaptation — and returns their concatenated decision traces. Every
// hot-path optimization must leave these bytes untouched: the scenario
// covers the full decision path (light features, cost-benefit selection,
// heavy extraction, constrained optimization, watchdog/breaker
// degradation, adapter shadow pricing) across mixed SLO classes.
func goldenTrace(t *testing.T) []byte {
	t.Helper()
	return goldenScenario(t, false)
}

// goldenScenario runs the pinned two-run scenario with or without the
// replay payload; the payload-off bytes are the legacy-format pin, the
// payload-on bytes the replay-format pin.
func goldenScenario(t *testing.T, replayTrace bool) []byte {
	t.Helper()
	set, err := fixture.Small()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer

	run := func(opts Options, faults *fault.Config) {
		observer := obs.New()
		opts.Models = set.Models
		opts.Observer = observer
		opts.ReplayTrace = replayTrace
		srv, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			v := vid.Generate("golden", 900+int64(i), vid.GenConfig{Frames: 60})
			if _, err := srv.Submit(StreamConfig{
				Video:          v,
				SLO:            []float64{33.3, 50, 100, 50}[i],
				Seed:           int64(i) + 1,
				BaseContention: 0.25,
				Faults:         faults,
			}); err != nil {
				t.Fatal(err)
			}
		}
		srv.Drain()
		if err := observer.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
	}

	run(Options{
		Admission:    AdmissionWFQ,
		ClassWeights: map[string]int{"33.3ms": 4, "50ms": 2},
	}, nil)
	run(Options{
		Adapt: &adapt.Config{},
	}, &fault.Config{Seed: 11, SpikeRate: 0.05, ExtractFailRate: 0.1})

	return buf.Bytes()
}

// TestDecisionTraceGolden pins the byte-exact decision trace of the
// golden scenario. It is the before/after proof for the hot-path
// allocation campaign: any change to scheduling arithmetic, feature
// selection, degradation, or trace rendering shows up as a diff here.
func TestDecisionTraceGolden(t *testing.T) {
	got := goldenTrace(t)
	path := filepath.Join("testdata", "decision_trace.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %d bytes", len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update_golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		gotLines := bytes.Split(got, []byte("\n"))
		wantLines := bytes.Split(want, []byte("\n"))
		for i := range gotLines {
			if i >= len(wantLines) || !bytes.Equal(gotLines[i], wantLines[i]) {
				t.Fatalf("trace diverges from golden at line %d:\n got: %s\nwant: %s",
					i+1, gotLines[i], wantLines[min(i, len(wantLines)-1)])
			}
		}
		t.Fatalf("trace diverges from golden: got %d bytes, want %d", len(got), len(want))
	}
}
