package serve

import (
	"bytes"
	"fmt"
	"testing"

	"litereconfig/internal/core"
	"litereconfig/internal/fault"
	"litereconfig/internal/fixture"
	"litereconfig/internal/obs"
	"litereconfig/internal/testutil"
)

// chaosDrain builds a server under the given fault config, submits n
// streams and drains it, returning the report.
func chaosDrain(t *testing.T, s *fixture.Setup, cfg *fault.Config, n int,
	mode core.DegradeMode) *Result {
	t.Helper()
	srv, err := New(Options{Models: s.Models, GPUSlots: 2,
		Faults: cfg, Observer: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, err := srv.Submit(StreamConfig{
			Video: video(700+int64(i), 60), SLO: 50,
			Seed: 40 + int64(i), Degrade: mode,
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	return srv.Drain()
}

// allClasses is the kitchen-sink chaos schedule: every fault class at
// once, panics included.
func allClasses(seed int64) *fault.Config {
	return &fault.Config{Seed: seed, SpikeRate: 0.1, ExtractFailRate: 0.15,
		BurstRate: 0.02, StallRate: 0.03, PanicRate: 0.01}
}

func TestChaosDrainCompletesWithoutGoroutineLeak(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := setup(t)
	r := chaosDrain(t, s, allClasses(1), 4, core.DegradeAuto)
	if len(r.Streams) != 4 {
		t.Fatalf("streams = %d, want 4", len(r.Streams))
	}
}

func TestChaosSLOMissBoundedPerFaultClass(t *testing.T) {
	s := setup(t)
	classes := map[string]*fault.Config{
		"spike":        {Seed: 2, SpikeRate: 0.2, SpikeMS: 80},
		"extract_fail": {Seed: 2, ExtractFailRate: 0.5},
		"burst":        {Seed: 2, BurstRate: 0.03},
		"stall":        {Seed: 2, StallRate: 0.05},
		"panic":        {Seed: 2, PanicRate: 0.02},
	}
	for name, cfg := range classes {
		r := chaosDrain(t, s, cfg, 3, core.DegradeAuto)
		if len(r.Streams) != 3 {
			t.Fatalf("%s: streams = %d", name, len(r.Streams))
		}
		for _, row := range r.Streams {
			// Bounded, not zero: injected adversity may cost frames, but
			// graceful degradation must keep the miss rate from collapsing
			// the stream (an undegraded stall/spike storm would blow far
			// past this).
			if row.ViolationRate > 0.5 {
				t.Errorf("%s: stream %s SLO-miss rate unbounded: %.2f",
					name, row.Name, row.ViolationRate)
			}
		}
		t.Logf("%-13s attain=%.0f%% quarantined=%d panics=%d",
			name, r.AttainRate*100, r.Quarantined, r.Panics)
	}
}

func TestChaosFaultCountersExported(t *testing.T) {
	s := setup(t)
	r := chaosDrain(t, s, allClasses(3), 4, core.DegradeAuto)
	snap := r.Metrics()
	fired := 0.0
	for name, v := range snap.Counters {
		if len(name) > 11 && name[:11] == "fault_fired" {
			fired += v
		}
	}
	if fired == 0 {
		t.Fatal("no fault_fired_total counters exported")
	}
	if snap.Counters[`fault_injected_total{class="spike"}`] == 0 &&
		snap.Counters[`fault_injected_total{class="stall"}`] == 0 {
		t.Fatal("boundary fault counters missing")
	}
}

func TestChaosPanicRetryThenQuarantine(t *testing.T) {
	s := setup(t)
	srv, err := New(Options{Models: s.Models, Observer: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	// Stream 0: one scheduled panic — survives via bounded retry.
	// Stream 1: panics scheduled past the retry limit — quarantined.
	// Stream 2: healthy sibling — must complete untouched.
	one, err := srv.Submit(StreamConfig{
		Video: video(20, 40), SLO: 50, Seed: 3,
		FaultPlan: &fault.Plan{Events: []fault.Event{
			{Class: fault.WorkerPanic, Frame: 5},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	doomed, err := srv.Submit(StreamConfig{
		Video: video(21, 40), SLO: 50, Seed: 4,
		FaultPlan: &fault.Plan{Events: []fault.Event{
			{Class: fault.WorkerPanic, Frame: 0},
			{Class: fault.WorkerPanic, Frame: 1},
			{Class: fault.WorkerPanic, Frame: 2},
			{Class: fault.WorkerPanic, Frame: 3},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := srv.Submit(StreamConfig{Video: video(22, 40), SLO: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := srv.Drain()
	if len(r.Streams) != 3 {
		t.Fatalf("streams = %d", len(r.Streams))
	}

	or := one.Result()
	if or.Quarantined || or.Panics != 1 {
		t.Fatalf("single-panic stream: quarantined=%v panics=%d", or.Quarantined, or.Panics)
	}
	if or.Frames != 40 {
		t.Fatalf("single-panic stream did not finish its video: %d frames", or.Frames)
	}
	if or.Health != "degraded" {
		t.Fatalf("panic survivor health = %q, want degraded", or.Health)
	}

	dr := doomed.Result()
	if !dr.Quarantined {
		t.Fatal("over-limit panicker not quarantined")
	}
	if dr.Panics != DefaultRetryLimit+1 {
		t.Fatalf("doomed panics = %d, want %d", dr.Panics, DefaultRetryLimit+1)
	}
	if dr.Health != "quarantined" || dr.QuarantineReason == "" {
		t.Fatalf("quarantine row incomplete: health=%q reason=%q", dr.Health, dr.QuarantineReason)
	}

	hr := healthy.Result()
	if hr.Health != "healthy" || hr.Frames != 40 || hr.Panics != 0 {
		t.Fatalf("healthy sibling disturbed: %+v", hr)
	}

	if r.Quarantined != 1 || r.Panics != 1+DefaultRetryLimit+1 {
		t.Fatalf("report totals: quarantined=%d panics=%d", r.Quarantined, r.Panics)
	}
	snap := r.Metrics()
	if snap.Counters["serve_panics_total"] != float64(r.Panics) {
		t.Fatalf("panic counter = %v", snap.Counters["serve_panics_total"])
	}
	if snap.Counters["serve_quarantined_total"] != 1 {
		t.Fatalf("quarantine counter = %v", snap.Counters["serve_quarantined_total"])
	}
	if snap.Counters["serve_retries_total"] == 0 {
		t.Fatal("retries not counted")
	}
}

func TestChaosTraceByteIdentical(t *testing.T) {
	s := setup(t)
	trace := func() ([]byte, string) {
		r := chaosDrain(t, s, allClasses(7), 4, core.DegradeAuto)
		var buf bytes.Buffer
		if err := r.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), r.Summary()
	}
	a, sa := trace()
	b, sb := trace()
	if len(a) == 0 {
		t.Fatal("empty chaos trace")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed chaos runs produced different decision traces")
	}
	if sa != sb {
		t.Fatalf("summaries differ:\n%s\nvs\n%s", sa, sb)
	}
	// The trace must actually carry fault and degradation evidence.
	var hasFault, hasDegrade bool
	for _, line := range bytes.Split(a, []byte("\n")) {
		if bytes.Contains(line, []byte(`"fault_events"`)) {
			hasFault = true
		}
		if bytes.Contains(line, []byte(`"degrade"`)) || bytes.Contains(line, []byte(`"breaker"`)) {
			hasDegrade = true
		}
	}
	if !hasFault || !hasDegrade {
		t.Fatalf("chaos trace missing evidence: fault=%v degrade=%v", hasFault, hasDegrade)
	}
}

func TestChaosAccuracyDegradesMonotonically(t *testing.T) {
	s := setup(t)
	// Rising extraction-failure rates must not *improve* accuracy: each
	// failed extraction deprives the scheduler of content features it
	// would otherwise have used. Loose SLO so features are worth having.
	meanMAP := func(rate float64) float64 {
		var cfg *fault.Config
		if rate > 0 {
			cfg = &fault.Config{Seed: 5, ExtractFailRate: rate}
		}
		srv, err := New(Options{Models: s.Models, Faults: cfg})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := srv.Submit(StreamConfig{
				Video: video(900+int64(i), 60), SLO: 100, Seed: 60 + int64(i),
			}); err != nil {
				t.Fatal(err)
			}
		}
		r := srv.Drain()
		total := 0.0
		for _, row := range r.Streams {
			total += row.MAP
		}
		return total / float64(len(r.Streams))
	}
	m0, m50, m100 := meanMAP(0), meanMAP(0.5), meanMAP(1)
	t.Logf("mAP vs extract-fail rate: 0%%=%.3f 50%%=%.3f 100%%=%.3f", m0, m50, m100)
	const eps = 0.01
	if m50 > m0+eps || m100 > m50+eps {
		t.Fatalf("accuracy not monotone under rising fault rate: %.3f, %.3f, %.3f",
			m0, m50, m100)
	}
}

func TestChaosDegradeOffAblation(t *testing.T) {
	s := setup(t)
	cfg := &fault.Config{Seed: 8, SpikeRate: 0.25, SpikeMS: 100}
	auto := chaosDrain(t, s, cfg, 3, core.DegradeAuto)
	off := chaosDrain(t, s, cfg, 3, core.DegradeOff)
	vr := func(r *Result) float64 {
		total, frames := 0.0, 0
		for _, row := range r.Streams {
			total += row.ViolationRate * float64(row.Frames)
			frames += row.Frames
		}
		return total / float64(frames)
	}
	va, vo := vr(auto), vr(off)
	t.Logf("spike chaos SLO-miss: degradation on %.3f, off %.3f", va, vo)
	if va > vo+0.02 {
		t.Fatalf("degradation made the miss rate worse: %.3f vs %.3f", va, vo)
	}
}

func TestChaosStallQuarantine(t *testing.T) {
	s := setup(t)
	// The zero-progress detector is the backstop for a stream that wedges
	// without exhausting its panic retries: with a generous RetryLimit, a
	// stream that panics every round (one one-shot event per retry, all
	// anchored at its current frame) makes no frame progress until
	// StallRounds rounds have burned, then is retired with the stall
	// reason rather than the panic one.
	srv, err := New(Options{Models: s.Models, RetryLimit: 10, StallRounds: 3,
		Observer: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	events := make([]fault.Event, 6)
	for i := range events {
		events[i] = fault.Event{Class: fault.WorkerPanic, Frame: 0}
	}
	h, err := srv.Submit(StreamConfig{
		Video: video(30, 40), SLO: 50, Seed: 6,
		FaultPlan: &fault.Plan{Events: events},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Drain()
	res := h.Result()
	if !res.Quarantined {
		t.Fatalf("wedged stream not quarantined: %+v", res)
	}
	if res.QuarantineReason != "no progress for 3 rounds" {
		t.Fatalf("quarantine reason = %q", res.QuarantineReason)
	}
	if res.Panics != 3 {
		t.Fatalf("panics = %d, want 3 (one per burned round)", res.Panics)
	}
	if res.Frames != 0 {
		t.Fatalf("wedged stream reported %d frames", res.Frames)
	}
}

// TestChaosSummaryRendering keeps the human-facing report honest: a
// quarantined stream must be visibly marked.
func TestChaosSummaryRendering(t *testing.T) {
	r := StreamResult{Name: "s0", Class: "slo50ms", SLO: 50, MeetsSLO: true,
		Quarantined: true, QuarantineReason: "panic retries exhausted", Panics: 3}
	sum := r.Summary()
	for _, want := range []string{"QUARANTINED", "panics=3", "panic retries exhausted"} {
		if !bytes.Contains([]byte(sum), []byte(want)) {
			t.Fatalf("summary %q missing %q", sum, want)
		}
	}
	_ = fmt.Sprint(HealthHealthy, HealthDegraded, HealthQuarantined, Health(9))
}
